// Package gpunion_test holds the benchmark harness that regenerates
// every table and figure in the paper's evaluation (see DESIGN.md's
// experiment index and EXPERIMENTS.md for paper-vs-measured numbers).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Each experiment bench prints the paper-style rows once and reports
// its headline quantities as benchmark metrics.
package gpunion_test

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpunion/internal/auth"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/heartbeat"
	"gpunion/internal/netsim"
	"gpunion/internal/obs"
	"gpunion/internal/scheduler"
	"gpunion/internal/sim"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/wal"
	"gpunion/internal/workload"
)

var benchEpoch = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

// once-guards so each experiment's table prints a single time even
// though the benchmark harness re-runs bodies with growing b.N.
var (
	onceTable1      sync.Once
	onceFig2        sync.Once
	onceFig3        sync.Once
	onceImpact      sync.Once
	onceTraffic     sync.Once
	onceScalability sync.Once
	onceALCvsCRIU   sync.Once
)

// --- Table 1: platform comparison ---

func BenchmarkTable1PlatformComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sim.Table1()
		if len(rows) != 12 {
			b.Fatalf("table rows = %d", len(rows))
		}
	}
	onceTable1.Do(func() {
		fmt.Println("\n--- Table 1: platform comparison ---")
		_ = sim.WriteTable1(os.Stdout)
	})
}

// --- Fig. 2: campus utilization (34% → 67%, +40% sessions) ---

func BenchmarkFig2Utilization(b *testing.B) {
	var last sim.Fig2Result
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFig2(sim.Fig2Config{Weeks: 1, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.BaselineUtilization, "manual_util_%")
	b.ReportMetric(100*last.GPUnionUtilization, "gpunion_util_%")
	b.ReportMetric(100*last.SessionGain(), "session_gain_%")
	onceFig2.Do(func() {
		fmt.Printf("\n--- Fig. 2 (1 week): utilization %.0f%% -> %.0f%%, sessions %d -> %d (paper: 34%%->67%%, +40%%) ---\n",
			100*last.BaselineUtilization, 100*last.GPUnionUtilization,
			last.BaselineSessions, last.GPUnionSessions)
	})
}

// --- Fig. 3: migration under interruptions ---

func BenchmarkFig3Migration(b *testing.B) {
	var last sim.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFig3(sim.Fig3Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.Scheduled.MigrationSuccessRate, "scheduled_success_%")
	b.ReportMetric(last.Emergency.MeanWorkLost.Seconds(), "emergency_loss_s")
	b.ReportMetric(100*last.MigratedBackFraction, "migrate_back_%")
	onceFig3.Do(func() {
		fmt.Printf("\n--- Fig. 3: scheduled %.0f%%, emergency %.0f%% (loss %v of %v interval), temporary %.0f%%, migrate-back %.0f%% (paper: 94%%, loss ≈ interval, 67%%) ---\n",
			100*last.Scheduled.MigrationSuccessRate,
			100*last.Emergency.MigrationSuccessRate,
			last.Emergency.MeanWorkLost.Round(time.Second), last.CheckpointInterval,
			100*last.Temporary.MigrationSuccessRate,
			100*last.MigratedBackFraction)
	})
}

// --- §4 Training impact: 2–4 interruptions ⇒ 3–7% ---

func BenchmarkTrainingImpact(b *testing.B) {
	var rows []sim.ImpactRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.RunTrainingImpact(sim.ImpactConfig{MaxInterruptions: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum, n float64
	for _, r := range rows {
		if r.Interruptions >= 2 && r.Interruptions <= 4 {
			sum += r.IncreasePct()
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/n, "mean_increase_2to4_%")
	}
	onceImpact.Do(func() {
		fmt.Println("\n--- Training impact (paper: 2–4 interruptions => 3–7%) ---")
		for _, r := range rows {
			if r.Interruptions >= 2 && r.Interruptions <= 4 {
				mem := ""
				if r.MemoryIntensive {
					mem = " (memory-intensive)"
				}
				fmt.Printf("  %s%s k=%d: +%.1f%%\n", r.Class, mem, r.Interruptions, r.IncreasePct())
			}
		}
	})
}

// --- §4 Network traffic: incremental backup < 2% of bandwidth ---

func BenchmarkNetworkTraffic(b *testing.B) {
	var inc, full sim.TrafficResult
	for i := 0; i < b.N; i++ {
		var err error
		inc, err = sim.RunTraffic(sim.TrafficConfig{Hours: 12, Jobs: 20, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		full, err = sim.RunTraffic(sim.TrafficConfig{Hours: 12, Jobs: 20, Seed: 5, ForceFull: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*inc.PeakUtilization, "incremental_peak_%")
	b.ReportMetric(100*full.PeakUtilization, "full_peak_%")
	onceTraffic.Do(func() {
		fmt.Printf("\n--- Network traffic: incremental peak %.2f%% / full peak %.2f%% of backbone (paper: < 2%% with incrementality) ---\n",
			100*inc.PeakUtilization, 100*full.PeakUtilization)
	})
}

// --- §5.3 Scalability: sub-second to 50 nodes, bottlenecks beyond 200 ---

func BenchmarkScalability(b *testing.B) {
	var rows []sim.ScalabilityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.RunScalability(sim.ScalabilityConfig{DecisionsPerPoint: 100})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Nodes == 50 {
			b.ReportMetric(float64(r.P95SchedulingLatency.Microseconds()), "p95_sched_us_at_50")
		}
		if r.Nodes == 400 {
			b.ReportMetric(r.Headroom, "db_headroom_at_400")
			b.ReportMetric(r.SingleMutexHeadroom, "mutex_headroom_at_400")
			b.ReportMetric(r.BatchSpeedup, "batch_speedup_at_400")
		}
		if r.Nodes == 800 {
			b.ReportMetric(r.CoalesceSpeedup, "coalesce_speedup_at_800")
		}
	}
	onceScalability.Do(func() {
		fmt.Println("\n--- Scalability (paper: sub-second to 50 nodes; bottlenecks beyond 200) ---")
		for _, r := range rows {
			fmt.Printf("  n=%-4d sched p95=%-12v batch/decision=%-10v sub-second=%-5v db headroom sharded=%.1fx mutex=%.1fx coalesce=%.1fx\n",
				r.Nodes, r.P95SchedulingLatency, r.BatchMeanPerDecision, r.SubSecond,
				r.Headroom, r.SingleMutexHeadroom, r.CoalesceSpeedup)
		}
	})
}

// --- §3.5 ablation: ALC vs CRIU across heterogeneous hardware ---

func BenchmarkALCvsCRIU(b *testing.B) {
	type cell struct {
		mech      string
		cuda      bool
		srcArch   gpu.Architecture
		dstArch   gpu.Architecture
		srcKernel string
		dstKernel string
	}
	// The campus migration matrix: GPU workloads moving across the
	// paper's heterogeneous park.
	cells := []cell{
		{"alc", true, gpu.Ampere, gpu.Ampere, "5.15", "5.15"},
		{"alc", true, gpu.Ampere, gpu.Ada, "5.15", "6.1"},
		{"criu", true, gpu.Ampere, gpu.Ampere, "5.15", "5.15"},
		{"criu", false, gpu.Ampere, gpu.Ampere, "5.15", "5.15"},
		{"criu", false, gpu.Ampere, gpu.Ada, "5.15", "5.15"},
		{"criu", false, gpu.Ampere, gpu.Ampere, "5.15", "6.1"},
	}
	success := make([]bool, len(cells))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ci, c := range cells {
			img := checkpoint.NewMemoryImage(64, 1<<20)
			src := checkpoint.Source{
				JobID: "ablate", Image: img,
				Progress: checkpoint.Progress{Step: 100},
				Env: checkpoint.Env{
					KernelVersion: c.srcKernel, GPUArch: c.srcArch,
					HasCUDAContext: c.cuda, GPUMemMiB: 8192,
				},
			}
			var mech checkpoint.Checkpointer = checkpoint.ALC{}
			if c.mech == "criu" {
				mech = checkpoint.CRIU{}
			}
			ck, err := mech.Capture(src, 1, false, benchEpoch)
			ok := err == nil
			if ok {
				_, rerr := mech.Restore(ck, checkpoint.Target{
					KernelVersion: c.dstKernel, GPUArch: c.dstArch,
				})
				ok = rerr == nil
			}
			success[ci] = ok
		}
	}
	onceALCvsCRIU.Do(func() {
		fmt.Println("\n--- ALC vs CRIU ablation (paper §3.5: CRIU fails on CUDA contexts, kernel pinning, cross-arch) ---")
		for ci, c := range cells {
			fmt.Printf("  %-4s cuda=%-5v %s/%s -> %s/%s : success=%v\n",
				c.mech, c.cuda, c.srcArch, c.srcKernel, c.dstArch, c.dstKernel, success[ci])
		}
	})
	// ALC must survive every scenario; CRIU only the homogeneous
	// CPU-only one.
	if !success[0] || !success[1] {
		b.Fatal("ALC failed a migration it must survive")
	}
	if success[2] || success[4] || success[5] {
		b.Fatal("CRIU survived a scenario the paper says it cannot")
	}
	if !success[3] {
		b.Fatal("CRIU failed the homogeneous CPU-only case")
	}
}

// --- Design-choice ablations (DESIGN.md) ---

var (
	onceInterval sync.Once
	onceStrategy sync.Once
)

// BenchmarkCheckpointIntervalAblation quantifies §3.5's "checkpoint
// frequency optimization": tighter intervals bound emergency work loss
// but ship more backup traffic.
func BenchmarkCheckpointIntervalAblation(b *testing.B) {
	var pts []sim.IntervalPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sim.RunCheckpointIntervalSweep(nil, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	onceInterval.Do(func() {
		fmt.Println("\n--- Checkpoint-interval ablation: loss vs backup traffic ---")
		for _, p := range pts {
			fmt.Printf("  interval=%-6v emergency loss=%-8v backup=%6.1f GB  peak=%.2f%%\n",
				p.Interval, p.MeanEmergencyLoss.Round(time.Second),
				float64(p.CheckpointBytes)/1e9, 100*p.PeakUtilization)
		}
	})
}

// BenchmarkSchedulerStrategyAblation compares §3.2's allocation
// strategies on a heterogeneous campus: best-fit protects the big GPUs
// for the jobs that need them.
func BenchmarkSchedulerStrategyAblation(b *testing.B) {
	var rows []sim.StrategyResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.RunStrategyAblation(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	onceStrategy.Do(func() {
		fmt.Println("\n--- Scheduler-strategy ablation: large-job queueing delay ---")
		for _, r := range rows {
			fmt.Printf("  %-12s utilization=%.0f%%  large jobs placed=%d  mean wait=%v\n",
				r.Strategy, 100*r.Utilization, r.LargeJobsPlaced,
				r.MeanLargeJobWait.Round(time.Second))
		}
	})
}

// --- Micro-benchmarks: the platform's hot paths ---

func benchNodes(n int) []db.NodeRecord {
	nodes := make([]db.NodeRecord, 0, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, db.NodeRecord{
			ID:     fmt.Sprintf("node-%03d", i),
			Status: db.NodeActive,
			GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
				MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
			RegisteredAt: benchEpoch,
		})
	}
	return nodes
}

func BenchmarkSchedulerDecision50Nodes(b *testing.B) {
	s := scheduler.New(&scheduler.RoundRobin{}, scheduler.DefaultReliability())
	nodes := benchNodes(50)
	req := scheduler.Request{JobID: "j", GPUMemMiB: 8192,
		Capability: gpu.ComputeCapability{Major: 7, Minor: 0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(req, nodes, benchEpoch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointCaptureIncremental(b *testing.B) {
	img := checkpoint.NewMemoryImage(1500, 1<<20) // 1.5 GB state
	src := checkpoint.Source{JobID: "bench", Image: img}
	if _, err := (checkpoint.ALC{}).Capture(src, 1, false, benchEpoch); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.TouchFraction(0.05)
		if _, err := (checkpoint.ALC{}).Capture(src, i+2, true, benchEpoch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeartbeatSweep200Nodes(b *testing.B) {
	m := heartbeat.NewMonitor(10*time.Second, 3)
	for i := 0; i < 200; i++ {
		m.Track(fmt.Sprintf("n%03d", i), benchEpoch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := benchEpoch.Add(time.Duration(i) * time.Second)
		for j := 0; j < 200; j++ {
			m.Beat(fmt.Sprintf("n%03d", j), now)
		}
		_ = m.Lost(now)
	}
}

func BenchmarkEventBusPublish(b *testing.B) {
	bus := eventbus.New(0)
	sub := bus.Subscribe(1024)
	defer sub.Close()
	go func() {
		for range sub.Events() {
		}
	}()
	ev := eventbus.Event{Type: eventbus.JobStarted, Job: "j", Node: "n"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}

// BenchmarkObsOverhead quantifies the flight recorder's cost on the
// control plane's hot paths. The recorder rides the event bus, so its
// marginal cost is the publish-traced minus publish-bare delta — the
// bare side keeps a no-op subscriber because a live coordinator's bus
// always has listeners. placement-traced anchors the denominator: a
// full 32-request pooled placement cycle publishing one lifecycle
// event per decision with the recorder attached. docs/BENCHMARKS.md
// carries the arithmetic (the observability acceptance bar is < 5%
// overhead on the placement path; measured well under 1%).
func BenchmarkObsOverhead(b *testing.B) {
	ev := eventbus.Event{Type: eventbus.JobScheduled, Job: "j", Node: "n"}
	b.Run("publish-bare", func(b *testing.B) {
		bus := eventbus.New(0)
		bus.SubscribeFunc(func(eventbus.Event) {})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bus.Publish(ev)
		}
	})
	b.Run("publish-traced", func(b *testing.B) {
		bus := eventbus.New(0)
		obs.NewRecorder(simclock.Real(), 1<<14).Attach(bus)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bus.Publish(ev)
		}
	})
	b.Run("record-direct", func(b *testing.B) {
		rec := obs.NewRecorder(simclock.Real(), 1<<14)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Record("bench.event", "j", "n", nil)
		}
	})
	b.Run("placement-traced", func(b *testing.B) {
		store := db.New(0)
		heartbeatStore(store, 50)
		s := scheduler.New(&scheduler.RoundRobin{}, scheduler.DefaultReliability())
		pool := s.NewNodePool()
		cancel := store.AddMutationObserver(pool.Observe)
		defer cancel()
		pool.Reset(store)
		bus := eventbus.New(0)
		obs.NewRecorder(simclock.Real(), 1<<14).Attach(bus)
		reqs := make([]scheduler.Request, 32)
		for i := range reqs {
			reqs[i] = scheduler.Request{JobID: fmt.Sprintf("j%02d", i), GPUMemMiB: 8192,
				Capability: gpu.ComputeCapability{Major: 7, Minor: 0}}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results := s.PlaceBatchPooled(reqs, pool, benchEpoch)
			if results[0].Err != nil {
				b.Fatal(results[0].Err)
			}
			for k := range results {
				bus.Publish(eventbus.Event{Type: eventbus.JobScheduled,
					Job: reqs[k].JobID, Node: results[k].Placement.NodeID})
			}
		}
	})
}

func BenchmarkDBJobQueueQuery(b *testing.B) {
	store := db.New(0)
	for i := 0; i < 500; i++ {
		state := db.JobPending
		if i%3 == 0 {
			state = db.JobRunning
		}
		_ = store.InsertJob(db.JobRecord{
			ID: fmt.Sprintf("job-%04d", i), State: state,
			Priority: i % 7, SubmittedAt: benchEpoch.Add(time.Duration(i) * time.Second),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = store.JobsInState(db.JobPending)
	}
}

// BenchmarkHotPathCalibration is a fixed, allocation-free, pure-CPU
// workload (xorshift over 4096 rounds). scripts/benchcheck measures it
// alongside the gated hot-path benchmarks and rescales the recorded
// baseline by the calibration ratio, so the regression threshold
// compares code, not the speed of the machine the baseline happened to
// be recorded on.
func BenchmarkHotPathCalibration(b *testing.B) {
	var acc uint64 = 88172645463325252
	for i := 0; i < b.N; i++ {
		x := acc
		for k := 0; k < 4096; k++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		acc = x
	}
	if acc == 0 {
		b.Fatal("calibration loop collapsed")
	}
}

// BenchmarkDBJobsOnNode measures the heartbeat anti-entropy lookup: the
// jobs currently placed on one node, out of a store holding many more.
func BenchmarkDBJobsOnNode(b *testing.B) {
	store := db.New(0)
	for i := 0; i < 200; i++ {
		store.UpsertNode(db.NodeRecord{
			ID: fmt.Sprintf("node-%03d", i), Status: db.NodeActive,
			GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
				MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6, Allocated: true}},
			RegisteredAt: benchEpoch,
		})
	}
	for i := 0; i < 1000; i++ {
		rec := db.JobRecord{
			ID: fmt.Sprintf("job-%04d", i), Priority: i % 7,
			SubmittedAt: benchEpoch.Add(time.Duration(i) * time.Second),
		}
		switch i % 4 {
		case 0, 1:
			rec.State = db.JobRunning
			rec.NodeID = fmt.Sprintf("node-%03d", i%200)
			rec.DeviceID = "gpu0"
		case 2:
			rec.State = db.JobCompleted
		default:
			rec.State = db.JobPending
		}
		_ = store.InsertJob(rec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if jobs := store.JobsOnNode("node-048"); len(jobs) == 0 {
			b.Fatal("no jobs on node")
		}
	}
}

// BenchmarkDBActiveNodesAllocs tracks the allocation cost of the
// read-mostly node scans (scheduler pool rebuilds, dashboards).
func BenchmarkDBActiveNodesAllocs(b *testing.B) {
	store := db.New(0)
	for i := 0; i < 200; i++ {
		status := db.NodeActive
		if i%4 == 0 {
			status = db.NodePaused
		}
		store.UpsertNode(db.NodeRecord{
			ID: fmt.Sprintf("node-%03d", i), Status: status,
			GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
				MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
			RegisteredAt: benchEpoch,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nodes := store.ActiveNodes(); len(nodes) != 150 {
			b.Fatalf("active nodes = %d", len(nodes))
		}
	}
}

// heartbeatStore seeds a store with n nodes for the heartbeat benches.
func heartbeatStore(store db.Store, n int) []string {
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node-%03d", i)
		ids[i] = id
		store.UpsertNode(db.NodeRecord{
			ID: id, Status: db.NodeActive,
			GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
				MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
			RegisteredAt: benchEpoch,
		})
	}
	return ids
}

// storeContentionCases are the two operating points the store benches
// measure: pure in-memory map cost, and the §5.3 model where each
// operation carries I/O latency held under the lock (the same model the
// scalability experiment uses via SetOpDelay). The second is the
// contention point sharding removes: per-shard RWMutexes let modelled
// I/O delays overlap where the single mutex serializes them — even on
// a single CPU, since sleeping operations yield the processor.
var storeContentionCases = []struct {
	name  string
	delay time.Duration
}{
	{"inmem", 0},
	{"iodelay20us", 20 * time.Microsecond},
}

// benchConcurrentHeartbeats runs the coordinator's per-heartbeat write
// mix (node update + two telemetry samples) from parallel goroutines —
// the hot path the sharded store parallelizes.
func benchConcurrentHeartbeats(b *testing.B, mk func() db.Store) {
	for _, tc := range storeContentionCases {
		b.Run(tc.name, func(b *testing.B) {
			store := mk()
			ids := heartbeatStore(store, 200)
			store.SetOpDelay(tc.delay)
			var seq atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					id := ids[i%len(ids)]
					_ = store.UpdateNode(id, func(n *db.NodeRecord) {
						n.LastHeartbeat = n.LastHeartbeat.Add(time.Second)
					})
					store.AppendSample(db.Sample{Time: benchEpoch, NodeID: id,
						Metric: "gpu_utilization", Value: 0.5})
					store.AppendSample(db.Sample{Time: benchEpoch, NodeID: id,
						Metric: "gpu_memory_used_mib", Value: 1024})
				}
			})
		})
	}
}

func BenchmarkConcurrentHeartbeatsSharded(b *testing.B) {
	benchConcurrentHeartbeats(b, func() db.Store { return db.New(0) })
}

func BenchmarkConcurrentHeartbeatsSingleMutex(b *testing.B) {
	benchConcurrentHeartbeats(b, func() db.Store { return db.NewSingleMutex(0) })
}

// BenchmarkHeartbeatCoalesced measures the commit path the coalescing
// ingress buffer takes at each flush tick: one TouchNodes batch of 64
// no-op advances over a 200-node fleet — one critical section and one
// MutBeat record per shard instead of 64 full after-images.
// Single-goroutine and allocation-light, so it is stable enough for
// the bench-check gate.
func BenchmarkHeartbeatCoalesced(b *testing.B) {
	store := db.New(0)
	ids := heartbeatStore(store, 200)
	at := benchEpoch
	batch := make([]db.BeatDelta, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = at.Add(time.Second)
		for j := range batch {
			batch[j] = db.BeatDelta{NodeID: ids[(i*len(batch)+j)%len(ids)], At: at}
		}
		if store.TouchNodes(batch) == 0 {
			b.Fatal("no deltas applied")
		}
	}
}

// BenchmarkHeartbeatPerBeatCommit is the pre-coalescing shape of the
// same traffic — 64 individual UpdateNode commits per iteration, each
// paying its own critical section and full after-image — kept as the
// measured baseline BenchmarkHeartbeatCoalesced is read against.
func BenchmarkHeartbeatPerBeatCommit(b *testing.B) {
	store := db.New(0)
	ids := heartbeatStore(store, 200)
	at := benchEpoch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = at.Add(time.Second)
		for j := 0; j < 64; j++ {
			if err := store.UpdateNode(ids[(i*64+j)%len(ids)], func(n *db.NodeRecord) {
				n.LastHeartbeat = at
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchConcurrentReads measures parallel read-path throughput (point
// lookups plus the scheduler's ActiveNodes scan) against each store.
func benchConcurrentReads(b *testing.B, mk func() db.Store) {
	for _, tc := range storeContentionCases {
		b.Run(tc.name, func(b *testing.B) {
			store := mk()
			ids := heartbeatStore(store, 200)
			store.SetOpDelay(tc.delay)
			var seq atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					if _, err := store.GetNode(ids[i%len(ids)]); err != nil {
						b.Error(err) // Fatal must not run off the test goroutine
						return
					}
					if i%8 == 0 {
						_ = store.ActiveNodes()
					}
				}
			})
		})
	}
}

func BenchmarkConcurrentReadsSharded(b *testing.B) {
	benchConcurrentReads(b, func() db.Store { return db.New(0) })
}

func BenchmarkConcurrentReadsSingleMutex(b *testing.B) {
	benchConcurrentReads(b, func() db.Store { return db.NewSingleMutex(0) })
}

// BenchmarkBatchPlacement32 places 32 requests per cycle through
// PlaceBatch: one candidate-pool build serves the whole batch.
func BenchmarkBatchPlacement32(b *testing.B) {
	s := scheduler.New(&scheduler.RoundRobin{}, scheduler.DefaultReliability())
	nodes := benchNodes(50)
	reqs := make([]scheduler.Request, 32)
	for i := range reqs {
		reqs[i] = scheduler.Request{JobID: fmt.Sprintf("j%02d", i), GPUMemMiB: 8192,
			Capability: gpu.ComputeCapability{Major: 7, Minor: 0}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := s.PlaceBatch(reqs, nodes, benchEpoch)
		if results[0].Err != nil {
			b.Fatal(results[0].Err)
		}
	}
}

// BenchmarkBatchPlacementPooled32 is the coordinator's actual cycle
// shape: 32 requests against the incrementally maintained NodePool,
// with one store mutation per cycle (the committed placement's device
// flip) invalidating exactly one cached node between batches.
func BenchmarkBatchPlacementPooled32(b *testing.B) {
	store := db.New(0)
	heartbeatStore(store, 50)
	s := scheduler.New(&scheduler.RoundRobin{}, scheduler.DefaultReliability())
	pool := s.NewNodePool()
	cancel := store.AddMutationObserver(pool.Observe)
	defer cancel()
	pool.Reset(store)
	reqs := make([]scheduler.Request, 32)
	for i := range reqs {
		reqs[i] = scheduler.Request{JobID: fmt.Sprintf("j%02d", i), GPUMemMiB: 8192,
			Capability: gpu.ComputeCapability{Major: 7, Minor: 0}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := s.PlaceBatchPooled(reqs, pool, benchEpoch)
		if results[0].Err != nil {
			b.Fatal(results[0].Err)
		}
		_ = store.UpdateNode(fmt.Sprintf("node-%03d", i%50), func(n *db.NodeRecord) {
			n.LastHeartbeat = n.LastHeartbeat.Add(time.Second)
		})
	}
}

// BenchmarkSinglePlacement32 is the same 32 decisions made one at a
// time — the pre-batching coordinator behaviour, for comparison.
func BenchmarkSinglePlacement32(b *testing.B) {
	s := scheduler.New(&scheduler.RoundRobin{}, scheduler.DefaultReliability())
	nodes := benchNodes(50)
	req := scheduler.Request{JobID: "j", GPUMemMiB: 8192,
		Capability: gpu.ComputeCapability{Major: 7, Minor: 0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 32; k++ {
			if _, err := s.Schedule(req, nodes, benchEpoch); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTokenIssueVerify(b *testing.B) {
	a, err := auth.NewAuthority([]byte("bench-secret"), time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok, err := a.Issue("node-bench", auth.RoleProvider, benchEpoch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Verify(tok, benchEpoch.Add(time.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContainerLifecycle(b *testing.B) {
	images := container.DefaultImages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := container.NewRuntime(images, gpu.NewInventory(gpu.RTX3090, 1), 0, 0)
		spec := container.Spec{
			ID: "c", ImageName: "pytorch/pytorch:2.3-cuda12", Mode: container.Batch,
			Resources: container.Resources{CPUCores: 4, MemoryMiB: 8192, GPUMemoryMiB: 8192},
		}
		if _, err := rt.Create(spec, benchEpoch); err != nil {
			b.Fatal(err)
		}
		if err := rt.Start("c", benchEpoch); err != nil {
			b.Fatal(err)
		}
		if err := rt.Stop("c", 0, benchEpoch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimTransfer(b *testing.B) {
	net := netsim.New(10 * netsim.Gbps)
	net.AddNode(netsim.NodeLink{Name: "a", Access: netsim.Gbps})
	net.AddNode(netsim.NodeLink{Name: "b", Access: netsim.Gbps})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Transfer("a", "b", 1<<30, netsim.TrafficCheckpoint, benchEpoch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointStoreRestoreChain(b *testing.B) {
	store := checkpoint.NewStore(storage.NewMemStore(0))
	for seq := 1; seq <= 6; seq++ {
		ck := checkpoint.Checkpoint{JobID: "j", Seq: seq, Bytes: 1 << 20,
			Mechanism: "alc", CreatedAt: benchEpoch}
		if seq > 1 {
			ck.Incremental = true
			ck.BaseSeq = seq - 1
		}
		if err := store.Save(ck); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.RestoreChain("j"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadAdvance(b *testing.B) {
	j := workload.NewJob("bench", workload.SmallCNN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if j.Done() {
			j.RestoreTo(checkpoint.Progress{Step: 0})
		}
		j.Advance(10)
	}
}

// --- WAL durability: group commit vs per-record fsync ---

// benchWALAppend measures concurrent append throughput against the
// write-ahead log. Group commit coalesces the parallel appenders into
// one fsync per batch; the per-record baseline pays one fsync per
// mutation — the contrast behind wal_group_commit_ms.
func benchWALAppend(b *testing.B, opts wal.Options) {
	w, err := wal.OpenWriter(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	var lsn atomic.Uint64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := lsn.Add(1)
			m := db.Mutation{LSN: n, Type: db.MutNodePut,
				Node: &db.NodeRecord{ID: fmt.Sprintf("node-%03d", n%200), Status: db.NodeActive,
					GPUs:         []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090", MemoryMiB: 24576}},
					RegisteredAt: benchEpoch, LastHeartbeat: benchEpoch}}
			if err := w.Append(m); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkWALGroupCommit is the serial group-commit baseline: batches
// coalesce, but the writer holds the I/O lock across each batch's
// fsync, so the next group's write waits out the previous sync.
func BenchmarkWALGroupCommit(b *testing.B) {
	benchWALAppend(b, wal.Options{SerialFsync: true})
}

// BenchmarkWALPipelined is the default two-stage appender: the next
// group's buffer fills and its write issues while the previous group's
// fsync is in flight on the sync stage.
func BenchmarkWALPipelined(b *testing.B) {
	benchWALAppend(b, wal.Options{})
}

func BenchmarkWALPerRecordFsync(b *testing.B) {
	benchWALAppend(b, wal.Options{PerRecordSync: true})
}

// --- Snapshot under load: per-shard export vs global-quiesce Save ---

// benchSnapshotUnderLoad measures heartbeat-commit throughput while a
// snapshot loop runs continuously in the background. ExportState takes
// per-shard read locks one at a time, so commits on other shards keep
// flowing; the legacy Save quiesces every shard at once and stalls
// them — the stop-the-world cost the WAL + async snapshotter removes
// from the coordinator path.
func benchSnapshotUnderLoad(b *testing.B, snap func(store *db.DB)) {
	store := db.New(0)
	ids := heartbeatStore(store, 200)
	store.SetOpDelay(20 * time.Microsecond)
	stop := make(chan struct{})
	done := make(chan struct{})
	var snapshots int64
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap(store)
			snapshots++
		}
	}()
	var seq atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(seq.Add(1))
			id := ids[i%len(ids)]
			_ = store.UpdateNode(id, func(n *db.NodeRecord) {
				n.LastHeartbeat = n.LastHeartbeat.Add(time.Second)
			})
			store.AppendSample(db.Sample{Time: benchEpoch, NodeID: id,
				Metric: "gpu_utilization", Value: 0.5})
		}
	})
	b.StopTimer()
	close(stop)
	<-done
	b.ReportMetric(float64(snapshots), "snapshots")
}

func BenchmarkHeartbeatsDuringShardedExport(b *testing.B) {
	benchSnapshotUnderLoad(b, func(store *db.DB) { _ = store.ExportState() })
}

// BenchmarkCrashRecovery measures a full kill/recover/verify cycle of
// the coordinator (the sim scenario behind `make verify-recovery`).
func BenchmarkCrashRecovery(b *testing.B) {
	var last sim.CrashRecoveryResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunCrashRecovery(sim.CrashRecoveryConfig{PostRecovery: time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		if !res.JobsIntact || res.LostJobs != 0 {
			b.Fatalf("recovery lost state: %+v", res)
		}
		last = res
	}
	b.ReportMetric(float64(last.Recovery.Replayed), "replayed_records")
	onceRecovery.Do(func() {
		fmt.Printf("\n--- Crash recovery: %d jobs intact across coordinator restart (%d WAL records replayed, snapshot=%v) ---\n",
			last.RecoveredJobs, last.Recovery.Replayed, last.Recovery.SnapshotLoaded)
	})
}

var onceRecovery sync.Once
