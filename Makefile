# GPUnion build targets. Each target mirrors one CI job in
# .github/workflows/ci.yml — `make ci` runs the full gate locally.

GO ?= go

# Coverage floor (percent of statements, whole-repo `go tool cover -func`
# total). Raise it as coverage grows; never lower it below the seed.
COVER_FLOOR ?= 70.5

.PHONY: all build test race bench bench-check fmt vet verify-recovery verify-chaos verify-failover verify-obs verify-gray verify-agg verify-docs cover ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race lane: full suite under the race detector, minus the long
# discrete-event simulations (they are single-driver deterministic runs
# with their own dedicated lanes: test, verify-recovery, verify-chaos).
race:
	$(GO) test -race -short ./...

# One iteration per benchmark, no unit tests: a smoke run that keeps
# bench_test.go compiling and executable without burning CI minutes.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Regression gate on the stable single-goroutine hot-path benchmarks:
# >25% ns/op regression vs BENCH_baseline.json fails the build. The
# highly parallel benches (ConcurrentHeartbeats/Reads, WAL appends) are
# too noisy for a hard threshold and are deliberately excluded. After a
# deliberate perf change, re-record the baseline with the command in
# BENCH_baseline.json's comment field.
BENCH_CHECK_FILTER ?= DBJobQueueQuery$$|DBJobsOnNode$$|BatchPlacement32$$|SinglePlacement32$$|SchedulerDecision50Nodes$$|HeartbeatCoalesced$$
bench-check:
	$(GO) run ./scripts/benchcheck -baseline BENCH_baseline.json -bench '$(BENCH_CHECK_FILTER)' -threshold 25

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Coordinator crash/restart acceptance: kill the coordinator mid-run,
# recover from snapshot + WAL, verify the fleet state survived and the
# recovered queue drains without resubmission.
verify-recovery:
	$(GO) test ./internal/sim -run 'CrashRecovery' -count=1 -v

# Chaos acceptance: the seeded fault schedules (400-node churn,
# partition + coordinator kill/restart, WAL disk faults on the sharded
# and SingleMutex stores, clock-skew + duplicate delivery, data-plane
# partition + checkpoint corruption, aggregator crash/partition) must
# finish with zero invariant violations, and the sabotage tests must
# prove the checker catches deliberately broken invariants. See
# docs/FAULT-MODEL.md.
verify-chaos:
	$(GO) test ./internal/sim -run 'Chaos' -count=1 -v -timeout 300s

# Failover acceptance: the scripted leader handoff (lease expiry, epoch
# bump, zero lost acked mutations, jobs finish under the new leader),
# the seeded leader-kill and split-brain chaos schedules, and the
# sabotage test proving the zero-lost-acked audit fires when the
# replication stream drops a record. See docs/ARCHITECTURE.md
# (replication) and docs/FAULT-MODEL.md.
verify-failover:
	$(GO) test ./internal/sim -run 'Failover|SplitBrain' -count=1 -v -timeout 300s

# Observability acceptance: the flight recorder and metrics registry
# unit suites, the coordinator/agent exposition-over-HTTP tests, and
# the trace determinism + sabotage-localization chaos tests. See
# docs/OBSERVABILITY.md.
verify-obs:
	$(GO) test ./internal/obs ./internal/monitor -count=1 -v
	$(GO) test ./internal/core -run 'TestHTTPMetricsExposition|TestHTTPTraceEndpoint|TestHTTPPprofGated' -count=1 -v
	$(GO) test ./internal/agent -run 'TestMetricsRegistryPersistsAcrossScrapes' -count=1 -v
	$(GO) test ./internal/sim -run 'TestChaosTraceDeterminism|TestChaosSabotageTraceLocalization' -count=1 -v -timeout 120s

# Gray-failure acceptance: the three seeded gray schedules (sustained
# degradation + coordinator crash, partial heartbeat loss over a
# replicated pair with a leader kill, checkpoint read-rot) must finish
# with zero invariant violations; the end-to-end predictive
# checkpoint-then-migrate drain; the sabotage tests proving all three
# health invariants fire; and the fold/dedup/coalescing unit suites.
# See docs/FAULT-MODEL.md (gray failures).
verify-gray:
	$(GO) test ./internal/sim -run 'Gray|PartialLoss|CkptReadRot' -count=1 -v -timeout 300s
	$(GO) test ./internal/core -run 'TestHealthBeatBypassesCoalescing|TestReplayedHealthBeatNotDoubleFolded|TestHealthEventsTruncatedPerBeat' -count=1 -v
	$(GO) test ./internal/monitor -run 'TestFoldHealth|TestFakeHealthSource' -count=1 -v

# Aggregation-tier acceptance: the two aggregated chaos schedules
# (relay crash mid-window, relay partition with direct fallback) run
# zero-violation; the equivalence property battery proves rolled-up
# state byte-identical to direct ingestion through 1–8 relays; the
# sabotage tests prove aggregation-equivalence fires on a relay that
# drops, fabricates, replays or stale-fences; the endpoint-tier
# failover race lane runs the whole aggregator package under -race;
# and the batch codec's fuzz seeds stay green. See docs/ARCHITECTURE.md
# (aggregation tier) and docs/FAULT-MODEL.md.
verify-agg:
	$(GO) test ./internal/sim -run 'TestChaosAggCrash|TestChaosAggPartition|TestAggregationEquivalenceProperty|TestAggSabotage' -count=1 -v -timeout 300s
	$(GO) test ./internal/aggregator -race -count=1 -v
	$(GO) test ./internal/api -run 'FuzzAggregatedBeat' -count=1 -v

# Docs acceptance: every internal package carries a package doc comment
# (scripts/doccheck) and every example still builds.
verify-docs:
	$(GO) run ./scripts/doccheck internal
	$(GO) build ./examples/...

# Coverage with a floor: fail if total statement coverage drops below
# COVER_FLOOR. The profile is left in coverage.out for upload.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	echo "total statement coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the floor $(COVER_FLOOR)%"; exit 1; }

# cover runs the full test suite (with profiling), so ci does not also
# run a bare `test` pass — the long simulations already execute once
# there and once more under verify-chaos.
ci: build vet fmt race bench bench-check verify-recovery verify-chaos verify-failover verify-obs verify-gray verify-agg verify-docs cover
