# GPUnion build targets. Each target mirrors one CI job in
# .github/workflows/ci.yml — `make ci` runs the full gate locally.

GO ?= go

.PHONY: all build test race bench fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark, no unit tests: a smoke run that keeps
# bench_test.go compiling and executable without burning CI minutes.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build vet fmt test race bench
