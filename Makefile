# GPUnion build targets. Each target mirrors one CI job in
# .github/workflows/ci.yml — `make ci` runs the full gate locally.

GO ?= go

.PHONY: all build test race bench fmt vet verify-recovery ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark, no unit tests: a smoke run that keeps
# bench_test.go compiling and executable without burning CI minutes.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Coordinator crash/restart acceptance: kill the coordinator mid-run,
# recover from snapshot + WAL, verify the fleet state survived and the
# recovered queue drains without resubmission.
verify-recovery:
	$(GO) test ./internal/sim -run 'CrashRecovery' -count=1 -v

ci: build vet fmt test race bench verify-recovery
