// Quickstart: a two-node GPUnion campus in one process.
//
// This example assembles the real platform components — coordinator,
// two provider agents, the shared checkpoint store — on a simulated
// clock, submits a training job through the public submission API, and
// watches it run to completion. Six simulated hours pass in
// milliseconds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

func main() {
	start := time.Date(2025, 9, 1, 9, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(start)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(1024)

	// 1. The central coordinator.
	coord, err := core.New(core.Config{HeartbeatInterval: 30 * time.Second},
		clock, db.New(0), ckpts, bus)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Stop()

	// 2. Two provider nodes: a lab workstation and a shared server.
	nodes := map[string][]gpu.Spec{
		"lab-workstation": {gpu.RTX3090},
		"shared-server":   {gpu.RTX4090, gpu.RTX4090},
	}
	for id, specs := range nodes {
		rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(specs...), 0, 0)
		ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15"},
			clock, rt, ckpts, bus, coord)
		resp, err := coord.Register(ag.RegisterRequest("inproc://"+id, 1<<30), core.LocalAgent{A: ag})
		if err != nil {
			log.Fatal(err)
		}
		ag.SetToken(resp.Token)
		// Heartbeat loop on the simulated clock.
		var beat func()
		beat = func() {
			if !ag.Departed() {
				_, _ = coord.Heartbeat(ag.HeartbeatRequest())
			}
			clock.AfterFunc(resp.HeartbeatInterval, beat)
		}
		clock.AfterFunc(resp.HeartbeatInterval, beat)
		fmt.Printf("registered %-16s with %d GPU(s)\n", id, len(specs))
	}

	// 3. Submit a ResNet-class training job with 5-minute checkpoints.
	spec := workload.SmallCNN
	jobID, err := coord.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, CheckpointIntervalSec: 300, Training: &spec,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, _ := coord.JobStatus(jobID)
	fmt.Printf("\nsubmitted %s -> scheduled on %s (device %s)\n", jobID, st.NodeID, st.DeviceID)

	// 4. Watch progress every 15 simulated minutes.
	for i := 0; i < 24; i++ {
		clock.Advance(15 * time.Minute)
		st, err := coord.JobStatus(jobID)
		if err != nil {
			log.Fatal(err)
		}
		seqs, _ := ckpts.Sequences(jobID)
		fmt.Printf("t+%3dm  state=%-9s node=%-16s checkpoints=%d\n",
			(i+1)*15, st.State, st.NodeID, len(seqs))
		if st.State == db.JobCompleted {
			fmt.Printf("\njob finished after %v of simulated time\n",
				st.Finished.Sub(st.Submitted).Round(time.Minute))
			break
		}
	}

	// 5. The platform saw everything.
	fmt.Printf("\nevents observed: %d (last few below)\n", len(bus.History()))
	hist := bus.History()
	if len(hist) > 5 {
		hist = hist[len(hist)-5:]
	}
	for _, ev := range hist {
		fmt.Printf("  %s %-18s job=%s\n", ev.Time.Format("15:04:05"), ev.Type, ev.Job)
	}
}
