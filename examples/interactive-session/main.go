// Interactive session & provider supremacy: the kill-switch in action.
//
// A student opens a Jupyter-style session on a borrowed workstation.
// The owner needs the GPU back *right now* and hits the kill-switch —
// no negotiation, no coordinator round-trip. The student's next session
// attempt lands on another node; the owner pauses further allocations
// and later resumes. Provider control is absolute and instantaneous;
// the platform absorbs the churn.
//
//	go run ./examples/interactive-session
package main

import (
	"fmt"
	"log"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
)

func main() {
	start := time.Date(2025, 9, 1, 14, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(start)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(1024)

	coord, err := core.New(core.Config{HeartbeatInterval: 30 * time.Second},
		clock, db.New(0), ckpts, bus)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Stop()

	agents := make(map[string]*agent.Agent)
	for _, id := range []string{"owners-ws", "lab-server"} {
		rt := container.NewRuntime(container.DefaultImages(),
			gpu.NewMixedInventory(gpu.RTX3090), 0, 0)
		ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15"},
			clock, rt, ckpts, bus, coord)
		resp, err := coord.Register(ag.RegisterRequest("inproc://"+id, 1<<30), core.LocalAgent{A: ag})
		if err != nil {
			log.Fatal(err)
		}
		ag.SetToken(resp.Token)
		agents[id] = ag
		var beat func()
		beat = func() {
			if !ag.Departed() {
				_, _ = coord.Heartbeat(ag.HeartbeatRequest())
			}
			clock.AfterFunc(resp.HeartbeatInterval, beat)
		}
		clock.AfterFunc(resp.HeartbeatInterval, beat)
	}

	openSession := func(who string) (string, api.JobStatus) {
		id, err := coord.SubmitJob(api.SubmitJobRequest{
			User: who, Kind: "interactive", ImageName: "gpunion/jupyter-dl:latest",
			Priority: 10, GPUMemMiB: 8192, SessionSeconds: 4 * 3600,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, _ := coord.JobStatus(id)
		return id, st
	}

	// The student gets a notebook on whichever node is free first.
	sess1, st := openSession("student")
	fmt.Printf("session %s running on %s — Jupyter env, NVIDIA_VISIBLE_DEVICES bound\n",
		sess1, st.NodeID)
	host := st.NodeID

	clock.Advance(20 * time.Minute)

	// The owner reclaims the machine instantly.
	fmt.Printf("\n>>> owner of %s hits the KILL-SWITCH\n", host)
	killed := agents[host].KillSwitch()
	fmt.Printf("terminated instantly: %v (no coordinator involved)\n", killed)

	// ... and pauses further allocations while they run experiments.
	agents[host].Pause()
	fmt.Printf("%s paused: no new workloads will be placed there\n", host)
	clock.Advance(time.Minute)

	// The student simply opens a new session; it lands elsewhere.
	sess2, st2 := openSession("student")
	fmt.Printf("\nnew session %s running on %s (old host excluded while paused)\n",
		sess2, st2.NodeID)
	if st2.NodeID == host {
		log.Fatalf("scheduler placed a session on a paused node")
	}

	// Hours later the owner is done and resumes sharing.
	clock.Advance(2 * time.Hour)
	agents[host].Resume()
	fmt.Printf("\n%s resumed sharing; the pool is whole again\n", host)
	clock.Advance(time.Minute)

	sess3, st3 := openSession("another-student")
	fmt.Printf("session %s running on %s\n", sess3, st3.NodeID)

	fmt.Printf("\ninteractive sessions launched so far: %d\n", coord.InteractiveSessions())
	for _, n := range coord.Nodes() {
		fmt.Printf("  node %-12s status=%-8s\n", n.ID, n.Status)
	}
}
