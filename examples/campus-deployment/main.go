// Campus deployment: the paper's 11-server campus, one simulated week.
//
// This example runs the full Fig. 2-style deployment — 8 workstations
// with one RTX 3090 each, an 8×4090 server, a 2×A100 server and a
// 4×A6000 server — under realistic diurnal demand, then prints a
// utilization and activity report like the one a campus operator would
// read after the first week of GPUnion.
//
//	go run ./examples/campus-deployment
package main

import (
	"fmt"
	"log"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/sim"
	"gpunion/internal/workload"
)

func main() {
	fmt.Println("assembling the paper's campus: 11 servers, 22 GPUs ...")
	campus, err := sim.NewCampus(sim.PaperCampus(), sim.CampusConfig{
		HeartbeatInterval: time.Minute,
		ProgressTick:      time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer campus.Stop()

	// One week of mixed demand: lab batch jobs by day, opportunistic
	// background work at night, interactive sessions from students.
	span := 7 * 24 * time.Hour
	demand := sim.NewDemand(2025)
	rng := demand.Rand()

	demand.PoissonArrivals(campus.Clock, sim.Epoch, span, 60, func(time.Time) {
		specs := []workload.TrainingSpec{workload.SmallCNN, workload.SmallTransformer, workload.LargeCNN}
		spec := specs[rng.Intn(len(specs))]
		_, _ = campus.Coord.SubmitJob(sim.TrainingJobSubmission("lab", spec, 10*time.Minute))
	})
	demand.PoissonArrivalsMod(campus.Clock, sim.Epoch, span, 40, sim.OffPeakFactor, func(time.Time) {
		_, _ = campus.Coord.SubmitJob(sim.TrainingJobSubmission("nightly", workload.SmallCNN, 10*time.Minute))
	})
	demand.PoissonArrivals(campus.Clock, sim.Epoch, span, 20, func(time.Time) {
		s := workload.Session{
			Duration:  time.Hour + time.Duration(rng.Int63n(int64(2*time.Hour))),
			GPUMemMiB: 8192, AvgUtilization: 0.3,
		}
		_, _ = campus.Coord.SubmitJob(sim.SessionSubmission("student", s))
	})

	fmt.Println("running one simulated week ...")
	for day := 1; day <= 7; day++ {
		campus.Run(24 * time.Hour)
		u := campus.Utilization(campus.Clock.Now())
		fmt.Printf("  day %d: cumulative GPU utilization %5.1f%%\n", day, 100*u)
	}

	// The operator's report.
	fmt.Printf("\n--- week one report ---\n")
	jobs := campus.Coord.DB().ListJobs()
	byState := map[db.JobState]int{}
	for _, j := range jobs {
		byState[j.State]++
	}
	fmt.Printf("jobs submitted:        %d\n", len(jobs))
	for _, st := range []db.JobState{db.JobCompleted, db.JobRunning, db.JobPending, db.JobKilled} {
		fmt.Printf("  %-10s %d\n", st, byState[st])
	}
	fmt.Printf("interactive sessions:  %d\n", campus.Coord.InteractiveSessions())
	fmt.Printf("campus utilization:    %.1f%%\n", 100*campus.Utilization(campus.Clock.Now()))

	fmt.Printf("\nper-node view:\n")
	for _, n := range campus.Coord.Nodes() {
		busy := 0
		for _, g := range n.GPUs {
			if g.Allocated {
				busy++
			}
		}
		fmt.Printf("  %-12s %-8s %d/%d GPUs busy\n", n.ID, n.Status, busy, len(n.GPUs))
	}

	// Historical telemetry is in the system database for capacity
	// planning — the paper's §3.2 monitoring pipeline.
	samples := campus.Coord.DB().SamplesInRange("gpu_utilization", "",
		sim.Epoch, campus.Clock.Now())
	fmt.Printf("\ntelemetry samples retained for capacity planning: %d\n", len(samples))
}
