// Chaos drill: inject data-plane partitions — cutting heartbeats AND
// checkpoint transfers — plus silent checkpoint-store corruption while
// provider churn forces migrations through the damage, then print the
// invariant audit trail the chaos engine recorded.
//
// Run with: go run ./examples/chaos-drill
// See docs/FAULT-MODEL.md for the fault families and invariants.
package main

import (
	"fmt"
	"log"
	"time"

	"gpunion/internal/chaos"
	"gpunion/internal/sim"
)

func main() {
	fmt.Println("=== GPUnion chaos drill: data-plane partition during migration ===")
	fmt.Println()

	res, err := sim.RunChaos(sim.ChaosConfig{
		Seed: 7,
		Spec: chaos.Spec{
			Duration: 3 * time.Hour,
			// Churn displaces jobs, so some checkpoint-restore transfer
			// is always in flight when a partition lands.
			ChurnPerNodePerDay:   4,
			DataPartitionsPerDay: 16,
			MeanPartition:        10 * time.Minute,
			CkptFaultsPerDay:     12,
		},
		Jobs:        8,
		WithNetwork: true,
		Drain:       time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("injected schedule:")
	for _, f := range res.Schedule {
		nodes := f.Nodes
		if len(nodes) == 0 && f.Node != "" {
			nodes = []string{f.Node}
		}
		fmt.Printf("  t+%-10v %-16s node(s)=%v dur=%v\n",
			f.At.Round(time.Second), f.Kind, nodes, f.Dur.Round(time.Second))
	}

	fmt.Println("\naudit trail (every fault is followed by a full invariant audit):")
	for _, obs := range res.Report.Observations {
		status := "all invariants held"
		if len(obs.Violations) > 0 {
			status = fmt.Sprintf("%d VIOLATIONS", len(obs.Violations))
		}
		fmt.Printf("  %s  %-40s %s\n", obs.At.Format("15:04:05"), obs.Fault, status)
		for _, v := range obs.Violations {
			fmt.Printf("      !! %s\n", v)
		}
	}

	fmt.Printf("\nsummary: faults=%d audits=%d submitted=%d completed=%d\n",
		len(res.Schedule), res.Report.Audits, res.SubmittedJobs, res.CompletedJobs)
	fmt.Printf("checkpoint blobs damaged=%d, CRC detections=%d (restores fell back to intact generations)\n",
		res.CkptFaultsInjected, res.CkptCorruptionsDetected)
	if len(res.Violations) == 0 {
		fmt.Println("result: ZERO invariant violations — the platform absorbed every fault")
	} else {
		fmt.Printf("result: %d invariant violations — replay with the same seed to debug\n", len(res.Violations))
	}
}
