// Auto-estimate: user-transparent resource invocation (paper §5.2).
//
// The paper's future-work section observes that forcing users to
// hand-estimate GPU requirements wastes resources (over-asks strand big
// GPUs; under-asks fail placements). This example shows the implemented
// answer: users describe their *model* — parameters, batch size,
// precision — and the platform derives the GPU memory request, the
// checkpoint size, the minimum compute capability, and a suggested
// device, then submits the job with those figures.
//
//	go run ./examples/auto-estimate
package main

import (
	"fmt"
	"log"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

func main() {
	start := time.Date(2025, 9, 1, 9, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(start)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(1024)

	coord, err := core.New(core.Config{HeartbeatInterval: 30 * time.Second},
		clock, db.New(0), ckpts, bus)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Stop()

	// A heterogeneous mini-campus: a 24 GiB workstation and an 80 GiB
	// A100 server.
	for id, specs := range map[string][]gpu.Spec{
		"workstation": {gpu.RTX3090},
		"a100-server": {gpu.A100},
	} {
		rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(specs...), 0, 0)
		ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15"},
			clock, rt, ckpts, bus, coord)
		resp, err := coord.Register(ag.RegisterRequest("inproc://"+id, 1<<30), core.LocalAgent{A: ag})
		if err != nil {
			log.Fatal(err)
		}
		ag.SetToken(resp.Token)
		var beat func()
		beat = func() {
			if !ag.Departed() {
				_, _ = coord.Heartbeat(ag.HeartbeatRequest())
			}
			clock.AfterFunc(resp.HeartbeatInterval, beat)
		}
		clock.AfterFunc(resp.HeartbeatInterval, beat)
	}

	// Users state what they know: the model, not the hardware.
	models := []workload.ModelDescription{
		{Class: workload.CNN, Parameters: 25_600_000, BatchSize: 64,
			Precision: workload.FP32, StepsPlanned: 3000}, // ResNet-50
		{Class: workload.Transformer, Parameters: 110_000_000, BatchSize: 32,
			Precision: workload.FP32, StepsPlanned: 2000}, // BERT-base
		{Class: workload.Transformer, Parameters: 3_000_000_000, BatchSize: 8,
			Precision: workload.FP16, StepsPlanned: 1000}, // 3B LM: A100 territory
	}
	names := []string{"resnet50", "bert-base", "lm-3b"}

	for i, m := range models {
		est, err := workload.EstimateResources(m)
		if err != nil {
			log.Fatal(err)
		}
		dev, err := est.SuggestDevice()
		if err != nil {
			log.Fatal(err)
		}
		eta, _ := est.EstimatedRunTime(m)
		fmt.Printf("%-10s %11d params, batch %-3d %s\n", names[i], m.Parameters, m.BatchSize, m.Precision)
		fmt.Printf("           -> request %5d MiB GPU memory, cc >= %s, checkpoint %.1f GB\n",
			est.GPUMemMiB, est.MinCapability, float64(est.StateBytes)/1e9)
		fmt.Printf("           -> suggested device %-8s  estimated run %v\n",
			dev.Model, eta.Round(time.Minute))

		spec := est.ToTrainingSpec(m)
		jobID, err := coord.SubmitJob(api.SubmitJobRequest{
			User: "auto", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
			GPUMemMiB:             est.GPUMemMiB,
			CapabilityMajor:       est.MinCapability.Major,
			CapabilityMinor:       est.MinCapability.Minor,
			CheckpointIntervalSec: 300,
			Training:              &spec,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, _ := coord.JobStatus(jobID)
		fmt.Printf("           -> %s placed on %s\n\n", jobID, placedOn(st))
	}

	// The derived requests place correctly: the 3B model lands on the
	// A100; the small models on the workstation (or wherever fits).
	clock.Advance(8 * time.Hour)
	fmt.Println("after 8 simulated hours:")
	for i := range models {
		st, _ := coord.JobStatus(fmt.Sprintf("job-%06d", i+1))
		fmt.Printf("  %-10s state=%-9s node=%s\n", names[i], st.State, placedOn(st))
	}
}

func placedOn(st api.JobStatus) string {
	if st.NodeID == "" {
		return "(queued)"
	}
	return st.NodeID
}
