// Training migration: a long-running job survives its provider leaving.
//
// A transformer fine-tune runs on a volunteer workstation. Mid-training
// the provider departs — first with notice (scheduled: a final
// checkpoint is captured), later silently (emergency: the coordinator
// detects heartbeat loss and restores from the last periodic
// checkpoint). The job completes despite both interruptions; the only
// cost is the work since the last checkpoint.
//
//	go run ./examples/training-migration
package main

import (
	"fmt"
	"log"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

func main() {
	start := time.Date(2025, 9, 1, 9, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(start)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(4096)

	coord, err := core.New(core.Config{HeartbeatInterval: 30 * time.Second},
		clock, db.New(0), ckpts, bus)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Stop()

	agents := make(map[string]*agent.Agent)
	for _, id := range []string{"volunteer-ws", "backup-1", "backup-2"} {
		rt := container.NewRuntime(container.DefaultImages(),
			gpu.NewMixedInventory(gpu.RTX3090), 0, 0)
		ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15"},
			clock, rt, ckpts, bus, coord)
		resp, err := coord.Register(ag.RegisterRequest("inproc://"+id, 1<<30), core.LocalAgent{A: ag})
		if err != nil {
			log.Fatal(err)
		}
		ag.SetToken(resp.Token)
		agents[id] = ag
		var beat func()
		beat = func() {
			if !ag.Departed() {
				_, _ = coord.Heartbeat(ag.HeartbeatRequest())
			}
			clock.AfterFunc(resp.HeartbeatInterval, beat)
		}
		clock.AfterFunc(resp.HeartbeatInterval, beat)
	}

	// Narrate the platform's migration machinery as it acts.
	bus.SubscribeFunc(func(ev eventbus.Event) {
		switch ev.Type {
		case eventbus.JobCheckpoint:
			fmt.Printf("%s  checkpoint seq=%v (%v bytes, incremental=%v)\n",
				stamp(clock, start), ev.Detail["seq"], ev.Detail["bytes"], ev.Detail["incremental"])
		case eventbus.JobMigrated:
			fmt.Printf("%s  MIGRATED %s -> %s (resume step %v, reason %v)\n",
				stamp(clock, start), ev.Detail["from"], ev.Node, ev.Detail["restore_step"], ev.Detail["reason"])
		case eventbus.NodeUnreachable:
			fmt.Printf("%s  node %s unreachable (3 missed heartbeats)\n", stamp(clock, start), ev.Node)
		case eventbus.NodeDeparted:
			fmt.Printf("%s  node %s departed (%v)\n", stamp(clock, start), ev.Node, ev.Detail["reason"])
		}
	})

	spec := workload.SmallTransformer
	jobID, err := coord.SubmitJob(api.SubmitJobRequest{
		User: "bob", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, CheckpointIntervalSec: 600, Training: &spec,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, _ := coord.JobStatus(jobID)
	fmt.Printf("%s  job %s started on %s (%d total steps, ~%v)\n\n",
		stamp(clock, start), jobID, st.NodeID, spec.TotalSteps,
		spec.RunTime(gpu.RTX3090).Round(time.Minute))
	home := st.NodeID

	// Act 1: 45 minutes of quiet training.
	clock.Advance(45 * time.Minute)

	// Act 2: the provider announces a scheduled departure.
	fmt.Printf("\n%s  >>> provider %s departs gracefully (kill-switch with notice)\n",
		stamp(clock, start), home)
	agents[home].Depart(api.DepartScheduled, 2*time.Minute)
	clock.Advance(time.Minute)
	report(coord, jobID)

	// Act 3: an hour later, the new host dies silently.
	clock.Advance(time.Hour)
	st, _ = coord.JobStatus(jobID)
	fmt.Printf("\n%s  >>> provider %s loses power (emergency, no notice)\n",
		stamp(clock, start), st.NodeID)
	agents[st.NodeID].Depart(api.DepartEmergency, 0)
	clock.Advance(3 * time.Minute) // detection takes 3 missed beats
	report(coord, jobID)

	// Act 4: run to completion.
	for i := 0; i < 48; i++ {
		clock.Advance(15 * time.Minute)
		st, _ = coord.JobStatus(jobID)
		if st.State == db.JobCompleted {
			break
		}
	}
	st, _ = coord.JobStatus(jobID)
	fmt.Printf("\n%s  job %s: state=%s migrations=%d\n",
		stamp(clock, start), jobID, st.State, st.Migrations)
	if st.State == db.JobCompleted {
		total := st.Finished.Sub(st.Submitted)
		ideal := spec.RunTime(gpu.RTX3090)
		fmt.Printf("total time %v vs uninterrupted %v (+%.1f%%) — the cost of two provider losses\n",
			total.Round(time.Minute), ideal.Round(time.Minute),
			100*float64(total-ideal)/float64(ideal))
	}
}

func stamp(clock *simclock.Sim, start time.Time) string {
	return fmt.Sprintf("[t+%6s]", clock.Now().Sub(start).Round(time.Second))
}

func report(coord *core.Coordinator, jobID string) {
	st, err := coord.JobStatus(jobID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("            job now: state=%s node=%s migrations=%d\n",
		st.State, st.NodeID, st.Migrations)
}
