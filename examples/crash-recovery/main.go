// Crash recovery: a coordinator dies mid-run and forgets nothing.
//
// This example assembles a two-node campus whose coordinator persists
// every database mutation through the write-ahead log, submits jobs,
// kills the coordinator in-process (only the WAL directory survives,
// as in a real crash), boots a fresh coordinator from snapshot + log,
// and verifies the recovered job table is intact — the jobs finish
// without anyone resubmitting them.
//
//	go run ./examples/crash-recovery
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/wal"
	"gpunion/internal/workload"
)

func main() {
	walDir, err := os.MkdirTemp("", "gpunion-crash-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)

	start := time.Date(2025, 9, 1, 9, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(start)
	// The checkpoint store is the LAN file system: like the WAL
	// directory, it outlives any one coordinator process.
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(1024)

	// 1. A coordinator whose database is persisted via snapshot + WAL.
	store := db.New(0)
	mgr, err := wal.Open(walDir, store, wal.Config{})
	if err != nil {
		log.Fatal(err)
	}
	coord, err := core.New(core.Config{HeartbeatInterval: 30 * time.Second},
		clock, store, ckpts, bus)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Two provider nodes. Their heartbeat loops follow `active`, so
	// they outlive the first coordinator: beats during the outage are
	// dropped, then resume against the successor — a node daemon's
	// retry loop in miniature. (Sim-clock callbacks run on the
	// advancing goroutine, so a plain variable is safe here.)
	active := coord
	specs := map[string][]gpu.Spec{
		"lab-workstation": {gpu.RTX3090},
		"shared-server":   {gpu.RTX4090, gpu.RTX4090},
	}
	agents := make(map[string]*agent.Agent)
	for id, gs := range specs {
		rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(gs...), 0, 0)
		ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15"},
			clock, rt, ckpts, bus, coord)
		resp, err := coord.Register(ag.RegisterRequest("inproc://"+id, 1<<30), core.LocalAgent{A: ag})
		if err != nil {
			log.Fatal(err)
		}
		ag.SetToken(resp.Token)
		agents[id] = ag
		var beat func()
		beat = func() {
			if active != nil && !ag.Departed() {
				_, _ = active.Heartbeat(ag.HeartbeatRequest())
			}
			clock.AfterFunc(resp.HeartbeatInterval, beat)
		}
		clock.AfterFunc(resp.HeartbeatInterval, beat)
	}

	// 3. Submit four training jobs (one more than there are GPUs, so
	// the queue is non-trivial), then run for a while.
	spec := workload.SmallCNN
	for i := 1; i <= 4; i++ {
		if _, err := coord.SubmitJob(sim(spec, fmt.Sprintf("user-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	clock.Advance(10 * time.Minute)
	if err := mgr.Checkpoint(); err != nil { // async snapshot under load
		log.Fatal(err)
	}
	clock.Advance(5 * time.Minute)

	fmt.Println("--- before the crash ---")
	printJobs(store)

	// 4. Kill the coordinator. Everything it held in memory — agent
	// handles, relaunch metadata, failure-detection timers — is gone;
	// only what the WAL fsynced survives.
	preCrash := store.ExportState()
	active = nil
	coord.Stop()
	if err := mgr.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncoordinator killed; recovering from", walDir)

	// 5. Boot a successor from snapshot + WAL tail.
	store2 := db.New(0)
	mgr2, err := wal.Open(walDir, store2, wal.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr2.Close()
	r := mgr2.Recovery
	fmt.Printf("recovered: snapshot=%v watermark=%d replayed=%d records\n",
		r.SnapshotLoaded, r.Watermark, r.Replayed)

	coord2, err := core.New(core.Config{HeartbeatInterval: 30 * time.Second},
		clock, store2, ckpts, bus)
	if err != nil {
		log.Fatal(err)
	}
	defer coord2.Stop()
	coord2.RecoverState()

	// 6. Verify the job table survived, byte for byte.
	recovered := store2.ExportState()
	if jsonBytes(preCrash.Jobs) == jsonBytes(recovered.Jobs) &&
		jsonBytes(preCrash.Nodes) == jsonBytes(recovered.Nodes) {
		fmt.Println("job and node tables intact ✓")
	} else {
		log.Fatal("recovered state differs from pre-crash state")
	}
	fmt.Println("\n--- after recovery ---")
	printJobs(store2)

	// 7. The nodes reconnect (their running containers never stopped)
	// and the recovered queue finishes.
	active = coord2
	for id, ag := range agents {
		ag.SetEndpoints([]agent.Endpoint{{ID: "coordinator", Notifier: coord2}})
		resp, err := coord2.Register(ag.RegisterRequest("inproc://"+id, 1<<30), core.LocalAgent{A: ag})
		if err != nil {
			log.Fatal(err)
		}
		ag.SetToken(resp.Token)
	}
	clock.Advance(4 * time.Hour)

	fmt.Println("\n--- four hours later ---")
	printJobs(store2)
	done := store2.CountJobsInState(db.JobCompleted)
	fmt.Printf("\n%d/4 jobs completed after the restart — none were resubmitted\n", done)
}

func sim(spec workload.TrainingSpec, user string) api.SubmitJobRequest {
	return api.SubmitJobRequest{
		User: user, Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB:             spec.GPUMemMiB,
		CapabilityMajor:       spec.MinCapability.Major,
		CapabilityMinor:       spec.MinCapability.Minor,
		CheckpointIntervalSec: 300,
		Training:              &spec,
	}
}

func jsonBytes(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func printJobs(s db.Store) {
	for _, j := range s.ListJobs() {
		loc := j.NodeID
		if loc == "" {
			loc = "-"
		}
		fmt.Printf("  %-10s %-10s on %-16s (migrations: %d)\n", j.ID, j.State, loc, j.Migrations)
	}
}
