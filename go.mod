module gpunion

go 1.24
