// Command gpuctl is GPUnion's command-line client for both roles:
//
// Users (against the coordinator):
//
//	gpuctl -coordinator http://coord:8080 submit -image pytorch/pytorch:2.3-cuda12 -gpu-mem 8192
//	gpuctl -coordinator http://coord:8080 status job-000001
//	gpuctl -coordinator http://coord:8080 kill job-000001
//	gpuctl -coordinator http://coord:8080 nodes
//
// Operators (against the coordinator — the O&M surface):
//
//	gpuctl -coordinator http://coord:8080 metrics
//	gpuctl -coordinator http://coord:8080 trace [-job job-000001] [-json]
//
// Providers (against their local agent — provider supremacy controls):
//
//	gpuctl -agent http://127.0.0.1:7070 killswitch
//	gpuctl -agent http://127.0.0.1:7070 pause | resume
//	gpuctl -agent http://127.0.0.1:7070 depart -reason scheduled -grace 120
//	gpuctl -agent http://127.0.0.1:7070 agent-status
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/core"
	"gpunion/internal/obs"
	"gpunion/internal/workload"
)

func main() {
	coordURL := flag.String("coordinator", "http://127.0.0.1:8080", "coordinator base URL")
	agentURL := flag.String("agent", "http://127.0.0.1:7070", "local agent base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(core.NewClient(*coordURL), rest)
	case "status":
		err = cmdStatus(core.NewClient(*coordURL), rest)
	case "kill":
		err = cmdKill(core.NewClient(*coordURL), rest)
	case "nodes":
		err = cmdNodes(core.NewClient(*coordURL))
	case "health":
		err = cmdHealth(core.NewClient(*coordURL))
	case "jobs":
		err = cmdJobs(core.NewClient(*coordURL))
	case "metrics":
		err = cmdMetrics(core.NewClient(*coordURL))
	case "trace":
		err = cmdTrace(core.NewClient(*coordURL), rest)
	case "killswitch":
		err = cmdKillSwitch(agent.NewClient(*agentURL))
	case "pause":
		err = agent.NewClient(*agentURL).Pause()
	case "resume":
		err = agent.NewClient(*agentURL).Resume()
	case "depart":
		err = cmdDepart(agent.NewClient(*agentURL), rest)
	case "agent-status":
		err = cmdAgentStatus(agent.NewClient(*agentURL))
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpuctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gpuctl [-coordinator URL] [-agent URL] <command> [args]

user commands:    submit, status <job>, kill <job>, jobs, nodes
O&M commands:     metrics, trace [-job ID] [-json], health
provider commands: killswitch, pause, resume, depart, agent-status`)
}

func cmdSubmit(c *core.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	image := fs.String("image", "pytorch/pytorch:2.3-cuda12", "container image")
	kind := fs.String("kind", "batch", "batch or interactive")
	gpuMem := fs.Int64("gpu-mem", 8192, "GPU memory requirement (MiB)")
	prio := fs.Int("priority", 0, "queue priority (higher first)")
	ckptSec := fs.Int("checkpoint-interval", 600, "ALC checkpoint interval (seconds)")
	profile := fs.String("profile", "small-cnn", "training profile: small-cnn, large-cnn, small-transformer, large-transformer")
	sessionSec := fs.Int("session-seconds", 7200, "interactive session length")
	user := fs.String("user", os.Getenv("USER"), "submitting user")
	if err := fs.Parse(args); err != nil {
		return err
	}

	req := api.SubmitJobRequest{
		User: *user, Kind: *kind, ImageName: *image,
		Priority: *prio, GPUMemMiB: *gpuMem,
		CheckpointIntervalSec: *ckptSec,
	}
	if *kind == "batch" {
		spec, err := profileSpec(*profile)
		if err != nil {
			return err
		}
		req.Training = &spec
		req.GPUMemMiB = spec.GPUMemMiB
		req.CapabilityMajor = spec.MinCapability.Major
		req.CapabilityMinor = spec.MinCapability.Minor
	} else {
		req.SessionSeconds = *sessionSec
	}
	id, err := c.SubmitJob(req)
	if err != nil {
		return err
	}
	fmt.Println(id)
	return nil
}

func profileSpec(name string) (workload.TrainingSpec, error) {
	switch name {
	case "small-cnn":
		return workload.SmallCNN, nil
	case "large-cnn":
		return workload.LargeCNN, nil
	case "small-transformer":
		return workload.SmallTransformer, nil
	case "large-transformer":
		return workload.LargeTransformer, nil
	}
	return workload.TrainingSpec{}, fmt.Errorf("unknown profile %q", name)
}

func cmdStatus(c *core.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: gpuctl status <job-id>")
	}
	st, err := c.JobStatus(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("job:        %s\nstate:      %s\nnode:       %s\ndevice:     %s\nmigrations: %d\nsubmitted:  %s\n",
		st.JobID, st.State, orDash(st.NodeID), orDash(st.DeviceID), st.Migrations,
		st.Submitted.Format(time.RFC3339))
	if !st.Started.IsZero() {
		fmt.Printf("started:    %s\n", st.Started.Format(time.RFC3339))
	}
	if !st.Finished.IsZero() {
		fmt.Printf("finished:   %s\n", st.Finished.Format(time.RFC3339))
	}
	return nil
}

func cmdKill(c *core.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: gpuctl kill <job-id>")
	}
	return c.KillJob(args[0])
}

func cmdNodes(c *core.Client) error {
	nodes, err := c.Nodes()
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %-12s %-6s %-6s %s\n", "NODE", "STATUS", "GPUS", "FREE", "DEPARTURES")
	for _, n := range nodes {
		free := 0
		for _, g := range n.GPUs {
			if !g.Allocated {
				free++
			}
		}
		fmt.Printf("%-20s %-12s %-6d %-6d %d\n", n.ID, n.Status, len(n.GPUs), free, n.Departures)
	}
	return nil
}

func cmdJobs(c *core.Client) error {
	jobs, err := c.Jobs()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-10s %-16s %-6s %s\n", "JOB", "STATE", "NODE", "MIGR", "SUBMITTED")
	for _, j := range jobs {
		fmt.Printf("%-12s %-10s %-16s %-6d %s\n",
			j.JobID, j.State, orDash(j.NodeID), j.Migrations,
			j.Submitted.Format("Jan 2 15:04:05"))
	}
	return nil
}

// cmdHealth prints every node's gray-failure standing: the folded
// health score, whether the node is below the drain threshold, and the
// most recent events behind the score.
func cmdHealth(c *core.Client) error {
	nodes, err := c.NodeHealths()
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %-12s %-8s %-10s %s\n", "NODE", "STATUS", "SCORE", "STANDING", "UPDATED")
	for _, n := range nodes {
		standing := "healthy"
		if n.Unhealthy {
			standing = "DRAINING"
		} else if n.Score < 1 {
			standing = "degraded"
		}
		updated := "-"
		if !n.UpdatedAt.IsZero() {
			updated = n.UpdatedAt.Format("Jan 2 15:04:05")
		}
		fmt.Printf("%-20s %-12s %-8.4f %-10s %s\n", n.NodeID, n.Status, n.Score, standing, updated)
		for _, ev := range n.RecentEvents {
			line := fmt.Sprintf("    %-18s %-8s", ev.Kind, ev.Severity)
			if ev.DeviceID != "" {
				line += " dev=" + ev.DeviceID
			}
			if ev.XID != 0 {
				line += fmt.Sprintf(" xid=%d", ev.XID)
			}
			if ev.Value != 0 {
				line += fmt.Sprintf(" value=%.2f", ev.Value)
			}
			if ev.Message != "" {
				line += " " + ev.Message
			}
			fmt.Println(line)
		}
	}
	return nil
}

// cmdMetrics dumps the coordinator's full Prometheus exposition —
// WAL latency, shipper lag, scheduler cache effectiveness, per-state
// job counts, leader epoch — for ad-hoc inspection or piping into
// promtool.
func cmdMetrics(c *core.Client) error {
	text, err := c.MetricsText()
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

// cmdTrace fetches the coordinator's flight-recorder export and prints
// it for humans: an event-kind tally, job-lifecycle spans (submit →
// terminal) with duration statistics, or — with -job — one job's full
// timeline. -json dumps the raw export for tooling.
func cmdTrace(c *core.Client, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	jobID := fs.String("job", "", "print one job's event timeline")
	asJSON := fs.Bool("json", false, "dump the raw trace export as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	exp, err := c.TraceExport()
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(exp)
	}
	if *jobID != "" {
		timeline := obs.JobTimeline(exp.Events, *jobID)
		if len(timeline) == 0 {
			return fmt.Errorf("no trace events for job %q", *jobID)
		}
		for _, ev := range timeline {
			printEvent(ev)
		}
		return nil
	}

	fmt.Printf("events: %d retained, %d dropped\n\n", len(exp.Events), exp.Dropped)
	kinds := obs.Kinds(exp.Events)
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("  %-24s %d\n", k, kinds[k])
	}

	for _, terminal := range []string{"job.completed", "job.failed", "job.killed"} {
		spans := obs.Spans(exp.Events, "job.submitted", terminal)
		if len(spans) == 0 {
			continue
		}
		st := obs.StatSpans(spans)
		fmt.Printf("\njob.submitted -> %s (%d spans, min %v mean %v max %v):\n",
			terminal, st.Count, st.Min, st.Mean, st.Max)
		for _, sp := range spans {
			fmt.Printf("  %-12s %-16s %s -> %s  (%v)\n",
				sp.Job, orDash(sp.To.Node),
				sp.From.Time.Format("15:04:05"), sp.To.Time.Format("15:04:05"),
				sp.Duration)
		}
	}
	return nil
}

// printEvent renders one trace event as a single line.
func printEvent(ev obs.Event) {
	fmt.Printf("%6d  %s  %-20s", ev.Seq, ev.Time.Format("15:04:05.000"), ev.Kind)
	if ev.Node != "" {
		fmt.Printf("  node=%s", ev.Node)
	}
	keys := make([]string, 0, len(ev.Detail))
	for k := range ev.Detail {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s=%s", k, ev.Detail[k])
	}
	fmt.Println()
}

func cmdKillSwitch(c *agent.Client) error {
	resp, err := c.KillSwitch()
	if err != nil {
		return err
	}
	fmt.Printf("killed %d workloads\n", len(resp.KilledJobs))
	for _, id := range resp.KilledJobs {
		fmt.Printf("  %s\n", id)
	}
	return nil
}

func cmdDepart(c *agent.Client, args []string) error {
	fs := flag.NewFlagSet("depart", flag.ExitOnError)
	reason := fs.String("reason", "scheduled", "scheduled, emergency or temporary")
	grace := fs.Int("grace", 120, "checkpoint grace period (seconds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch api.DepartReason(*reason) {
	case api.DepartScheduled, api.DepartEmergency, api.DepartTemporary:
	default:
		return fmt.Errorf("unknown reason %q", *reason)
	}
	return c.Depart(api.DepartReason(*reason), time.Duration(*grace)*time.Second)
}

func cmdAgentStatus(c *agent.Client) error {
	st, err := c.Status()
	if err != nil {
		return err
	}
	fmt.Printf("machine:  %s\npaused:   %v\ndeparted: %v\njobs:     %d\n",
		st.MachineID, st.Paused, st.Departed, len(st.RunningJobs))
	for _, tel := range st.Telemetry {
		fmt.Printf("  %-6s %-10s util %5.1f%%  mem %6d/%6d MiB  %4.1f °C  %5.1f W\n",
			tel.DeviceID, tel.Model, 100*tel.Utilization,
			tel.UsedMemMiB, tel.TotalMemMiB, tel.TemperatureC, tel.PowerW)
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
