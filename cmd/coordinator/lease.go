package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gpunion/internal/core"
)

// fileLease implements core.LeaseClient over a JSON record on a file
// system shared by every coordinator replica — the same place the WAL
// lives. It enforces the arbiter protocol of core.Lease (one holder per
// epoch, epochs strictly increase, re-grant only after expiry plus the
// skew tolerance) so a daemon that loses the file observes its own
// expiry and self-fences before a successor can be granted.
//
// Mutual exclusion across processes uses an O_EXCL lock file; the
// record itself is replaced atomically via write-then-rename, so a
// reader never sees a torn lease.
type fileLease struct {
	path string
	ttl  time.Duration
	skew time.Duration
}

type leaseRecord struct {
	Holder  string    `json:"holder"`
	Epoch   uint64    `json:"epoch"`
	Expires time.Time `json:"expires"`
}

// withLock runs fn on the current lease record under the cross-process
// lock and persists whatever fn leaves in it (unless fn errors).
func (l *fileLease) withLock(fn func(rec *leaseRecord) error) error {
	lock := l.path + ".lock"
	deadline := time.Now().Add(2 * time.Second)
	for {
		f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			break
		}
		if !os.IsExist(err) {
			return err
		}
		// A lock much older than any critical section is a crashed
		// replica's leftover; break it.
		if fi, statErr := os.Stat(lock); statErr == nil && time.Since(fi.ModTime()) > 5*time.Second {
			_ = os.Remove(lock)
			continue
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("lease: lock %s busy", lock)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer os.Remove(lock)

	var rec leaseRecord
	if b, err := os.ReadFile(l.path); err == nil {
		// A corrupt or partial record reads as a free lease; the epoch
		// restarting from zero is safe because every grant still goes
		// through Acquire's increment under the same lock.
		_ = json.Unmarshal(b, &rec)
	}
	if err := fn(&rec); err != nil {
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	tmp := l.path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, l.path)
}

// Acquire implements core.LeaseClient.
func (l *fileLease) Acquire(holder string) (uint64, time.Time, error) {
	var (
		epoch uint64
		until time.Time
	)
	err := l.withLock(func(rec *leaseRecord) error {
		now := time.Now()
		if rec.Holder != "" && rec.Holder != holder && now.Before(rec.Expires.Add(l.skew)) {
			return fmt.Errorf("%w: %s until %s", core.ErrLeaseHeld, rec.Holder, rec.Expires)
		}
		rec.Epoch++
		rec.Holder = holder
		rec.Expires = now.Add(l.ttl)
		epoch, until = rec.Epoch, rec.Expires
		return nil
	})
	return epoch, until, err
}

// Renew implements core.LeaseClient.
func (l *fileLease) Renew(holder string, epoch uint64) (time.Time, error) {
	var until time.Time
	err := l.withLock(func(rec *leaseRecord) error {
		if rec.Holder != holder || rec.Epoch != epoch {
			return core.ErrLeaseLost
		}
		now := time.Now()
		if !now.Before(rec.Expires.Add(l.skew)) {
			// Fully lapsed: re-Acquire for a fresh epoch instead of
			// silently resuming an expired term.
			return core.ErrLeaseLost
		}
		rec.Expires = now.Add(l.ttl)
		until = rec.Expires
		return nil
	})
	return until, err
}

// Leader implements core.LeaseClient.
func (l *fileLease) Leader() (string, uint64) {
	var rec leaseRecord
	b, err := os.ReadFile(l.path)
	if err != nil {
		return "", 0
	}
	if json.Unmarshal(b, &rec) != nil {
		return "", 0
	}
	if rec.Holder == "" || !time.Now().Before(rec.Expires) {
		return "", rec.Epoch
	}
	return rec.Holder, rec.Epoch
}
