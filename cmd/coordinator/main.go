// Command coordinator runs GPUnion's central coordinator daemon: node
// registration, the pending-job priority queue, heartbeat-based failure
// detection and workload migration, served over a REST API.
//
// Usage:
//
//	coordinator [-listen :8080] [-config coordinator.json]
//	            [-wal-dir DIR] [-wal-group-commit-ms N] [-snapshot-interval-sec N]
//	            [-mode solo|leader|standby] [-replica-id NAME]
//	            [-lease-file FILE] [-lease-ttl-sec N] [-follow-dir DIR]
//	            [-pprof]
//
// Flags override environment variables (GPUNION_WAL_DIR,
// GPUNION_WAL_GROUP_COMMIT_MS, GPUNION_SNAPSHOT_INTERVAL_SEC), which
// override the config file; with none, built-in defaults apply.
//
// With a WAL directory configured the daemon is crash-safe: every
// database mutation is group-committed to the write-ahead log before it
// is acknowledged, a background snapshotter checkpoints the store
// without pausing it, and on boot the daemon recovers nodes, jobs and
// allocations from snapshot + log and re-arms failure detection — jobs
// survive a coordinator restart instead of needing resubmission. The
// legacy snapshot_path (a JSON dump of ExportState written only on
// clean shutdown) is still honored when no WAL directory is set, but is
// deprecated.
//
// Replicated operation pairs a leader with warm standbys over shared
// storage: all replicas point -lease-file at the same fencing-token
// arbiter file, the leader logs to its -wal-dir, and each standby tails
// that directory (-follow-dir) into its own store while answering every
// request with ErrNotLeader plus a LeaderHint. When the leader's lease
// lapses, a standby wins the next epoch, drains its replication buffer,
// bootstraps a WAL of its own and starts serving — agents re-register
// through their endpoint list and acked state survives the handoff.
package main

import (
	"crypto/rand"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"gpunion/internal/checkpoint"
	"gpunion/internal/config"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/scheduler"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/wal"
)

// loadOrCreateSecret reads the token-signing secret, minting one on
// first boot. 0600: it is a credential.
func loadOrCreateSecret(path string) ([]byte, error) {
	if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
		return b, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	b := make([]byte, 32)
	if _, err := rand.Read(b); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, b, 0o600); err != nil {
		return nil, err
	}
	return b, nil
}

func main() {
	listen := flag.String("listen", "", "HTTP bind address (overrides config)")
	cfgPath := flag.String("config", "", "path to coordinator.json")
	walDir := flag.String("wal-dir", "", "write-ahead-log directory (overrides config/env)")
	walGroupMS := flag.Int("wal-group-commit-ms", 0, "WAL group-commit window in ms (overrides config/env)")
	snapSec := flag.Int("snapshot-interval-sec", 0, "background snapshot period in seconds (overrides config/env)")
	mode := flag.String("mode", "solo", `replication mode: "solo" (no lease, always leader), "leader" or "standby"`)
	replicaID := flag.String("replica-id", "", "replica name for the lease and LeaderHint replies (default: hostname)")
	leaseFile := flag.String("lease-file", "", "lease file on storage shared by all replicas (required for -mode leader|standby)")
	leaseTTLSec := flag.Int("lease-ttl-sec", 10, "lease TTL in seconds (leader|standby modes)")
	followDir := flag.String("follow-dir", "", "leader WAL directory to tail while standby (required for -mode standby)")
	pprofOn := flag.Bool("pprof", false, "serve Go pprof profiling under /debug/pprof/ (opt-in)")
	flag.Parse()

	var cfg config.Coordinator
	if *cfgPath != "" {
		var err error
		cfg, err = config.LoadCoordinator(*cfgPath)
		if err != nil {
			log.Fatalf("loading config: %v", err)
		}
	}
	if err := cfg.ApplyEnv(os.LookupEnv); err != nil {
		log.Fatalf("environment config: %v", err)
	}
	if *listen != "" {
		cfg.Listen = *listen
	}
	if *walDir != "" {
		cfg.WALDir = *walDir
	}
	if *walGroupMS > 0 {
		cfg.WALGroupCommitMS = *walGroupMS
	}
	if *snapSec > 0 {
		cfg.SnapshotIntervalSec = *snapSec
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("config: %v", err)
	}

	// Replicated operation: leader and standby modes share a lease file
	// (the fencing-token arbiter) on storage every replica can reach.
	var lease core.LeaseClient
	leaseTTL := time.Duration(*leaseTTLSec) * time.Second
	switch *mode {
	case "solo":
	case "leader", "standby":
		if *leaseFile == "" {
			log.Fatalf("-mode %s requires -lease-file", *mode)
		}
		if cfg.WALDir == "" {
			log.Fatalf("-mode %s requires a WAL directory", *mode)
		}
		if *replicaID == "" {
			host, err := os.Hostname()
			if err != nil || host == "" {
				log.Fatalf("-mode %s requires -replica-id (hostname unavailable: %v)", *mode, err)
			}
			*replicaID = host
		}
		// Skew tolerance 2×TTL: a replica whose clock lags the shared
		// file's writers by up to two TTLs still self-fences in time.
		lease = &fileLease{path: *leaseFile, ttl: leaseTTL, skew: 2 * leaseTTL}
		if *mode == "standby" && *followDir == "" {
			log.Fatalf("-mode standby requires -follow-dir (the leader's WAL directory)")
		}
	default:
		log.Fatalf("unknown -mode %q (want solo, leader or standby)", *mode)
	}

	var strategy scheduler.Strategy
	switch cfg.Strategy {
	case "best-fit":
		strategy = scheduler.BestFit{}
	case "least-loaded":
		strategy = scheduler.LeastLoaded{}
	default:
		strategy = &scheduler.RoundRobin{}
	}

	database := db.New(0)

	// Durable persistence: recover the store from snapshot + WAL, then
	// log every mutation from here on. The token-signing secret lives
	// next to the log so credentials issued before a restart still
	// verify after it.
	var (
		mgr        *wal.Manager
		authSecret []byte
	)
	secretPath := filepath.Join(cfg.WALDir, "auth.key")
	if lease != nil {
		// Shared across replicas, next to the lease: tokens issued by
		// one leader must still verify after a failover.
		secretPath = filepath.Join(filepath.Dir(*leaseFile), "auth.key")
	}
	if cfg.WALDir != "" {
		var err error
		authSecret, err = loadOrCreateSecret(secretPath)
		if err != nil {
			log.Fatalf("auth secret: %v", err)
		}
		if *mode == "standby" {
			// A standby's store is built by tailing the leader's log;
			// its own WAL dir is bootstrapped at promotion and must not
			// hold a stale previous term.
			if entries, readErr := os.ReadDir(cfg.WALDir); readErr == nil && len(entries) > 0 {
				log.Fatalf("-mode standby requires an empty WAL directory, but %s has %d entries (a stale log cannot be joined to a shipped store)", cfg.WALDir, len(entries))
			}
		} else {
			mgr, err = wal.Open(cfg.WALDir, database, wal.Config{
				GroupWindow:      cfg.WALGroupCommit(),
				SnapshotInterval: cfg.SnapshotInterval(),
			})
			if err != nil {
				log.Fatalf("opening WAL: %v", err)
			}
			r := mgr.Recovery
			log.Printf("recovered from %s: snapshot=%v watermark=%d replayed=%d torn=%d",
				cfg.WALDir, r.SnapshotLoaded, r.Watermark, r.Replayed, r.TornTails)
		}
	}
	restored := mgr != nil
	if mgr == nil && cfg.SnapshotPath != "" {
		// Deprecated one-shot snapshot path (no WAL): best-effort load.
		if f, err := os.Open(cfg.SnapshotPath); err == nil {
			var st db.State
			if err := json.NewDecoder(f).Decode(&st); err != nil {
				log.Printf("warning: could not load snapshot: %v", err)
			} else {
				database.ImportState(st)
				restored = true
			}
			f.Close()
		}
	}
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(4096)

	coord, err := core.New(core.Config{
		HeartbeatInterval: cfg.HeartbeatInterval(),
		MissedThreshold:   cfg.MissedThreshold,
		Strategy:          strategy,
		BatchSize:         cfg.SchedulerBatchSize,
		AuthSecret:        authSecret,
		Lease:             lease,
		ReplicaID:         *replicaID,
		EnableProfiling:   *pprofOn,
	}, simclock.Real(), database, ckpts, bus)
	if err != nil {
		log.Fatalf("creating coordinator: %v", err)
	}
	if mgr != nil {
		// Durability instrumentation: append/fsync latency, group-commit
		// batch sizes and rotation counts on the coordinator's registry.
		_ = mgr.Writer().Instrument(coord.Metrics())
	}
	if restored {
		// Resume the job-ID sequence, requeue mid-migration jobs and
		// re-arm failure detection around whatever was restored.
		coord.RecoverState()
	}

	// walMgr is the manager whose log currently backs the database: set
	// at boot for solo/leader, installed by the promotion goroutine for
	// a standby, read once more at shutdown for the final checkpoint.
	var walMgr struct {
		sync.Mutex
		m *wal.Manager
	}
	walMgr.m = mgr

	switch *mode {
	case "leader":
		for !coord.TryLead() {
			holder, epoch := lease.Leader()
			log.Printf("lease held by %q (epoch %d); retrying in %v", holder, epoch, leaseTTL)
			time.Sleep(leaseTTL)
		}
		log.Printf("replica %s leading at epoch %d", *replicaID, coord.Epoch())
	case "standby":
		// Warm standby: tail the leader's log into the local store;
		// requests are fenced with ErrNotLeader (plus a LeaderHint)
		// until the lease is won. Promotion drains the reorder buffer,
		// bootstraps a WAL of our own and re-arms the control plane.
		follower := wal.NewFollower(database)
		shipper := wal.NewShipper(*followDir)
		go func() {
			for {
				if err := follower.Pump(shipper); err != nil {
					log.Printf("standby: tailing %s: %v", *followDir, err)
				}
				if coord.TryLead() {
					_ = follower.Pump(shipper) // final catch-up: the old leader is fenced now
					if n, err := follower.Drain(); err != nil {
						log.Printf("warning: promotion drain: %v", err)
					} else if n > 0 {
						log.Printf("promotion: force-applied %d buffered records", n)
					}
					m, err := wal.Open(cfg.WALDir, database, wal.Config{
						GroupWindow:      cfg.WALGroupCommit(),
						SnapshotInterval: cfg.SnapshotInterval(),
					})
					if err != nil {
						log.Fatalf("promotion: opening WAL: %v", err)
					}
					_ = m.Writer().Instrument(coord.Metrics())
					if err := m.Checkpoint(); err != nil {
						log.Printf("warning: promotion checkpoint: %v", err)
					}
					walMgr.Lock()
					walMgr.m = m
					walMgr.Unlock()
					coord.RecoverState()
					log.Printf("replica %s promoted to leader at epoch %d", *replicaID, coord.Epoch())
					return
				}
				time.Sleep(leaseTTL / 2)
			}
		}()
		log.Printf("replica %s standing by, tailing %s", *replicaID, *followDir)
	}

	srv := &http.Server{Addr: cfg.Listen, Handler: coord.Handler(nil)}
	go func() {
		log.Printf("gpunion coordinator listening on %s (strategy %s)", cfg.Listen, cfg.Strategy)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http server: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	coord.Stop()
	_ = srv.Close()
	walMgr.Lock()
	mgr = walMgr.m
	walMgr.Unlock()
	switch {
	case mgr != nil:
		// Final checkpoint so the next boot replays an empty tail; the
		// WAL already holds everything if this fails mid-write.
		if err := mgr.Checkpoint(); err != nil {
			log.Printf("warning: final snapshot: %v", err)
		}
		if err := mgr.Close(); err != nil {
			log.Printf("warning: closing WAL: %v", err)
		}
		log.Printf("WAL closed; state checkpointed in %s", cfg.WALDir)
	case cfg.SnapshotPath != "":
		f, err := os.Create(cfg.SnapshotPath)
		if err != nil {
			log.Fatalf("creating snapshot: %v", err)
		}
		if err := json.NewEncoder(f).Encode(database.ExportState()); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		f.Close()
		log.Printf("database snapshot saved to %s", cfg.SnapshotPath)
	}
}
