// Command coordinator runs GPUnion's central coordinator daemon: node
// registration, the pending-job priority queue, heartbeat-based failure
// detection and workload migration, served over a REST API.
//
// Usage:
//
//	coordinator [-listen :8080] [-config coordinator.json]
//
// The flags override the config file; with neither, built-in defaults
// apply. On SIGINT/SIGTERM the daemon snapshots its database (when
// snapshot_path is configured) and exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"gpunion/internal/checkpoint"
	"gpunion/internal/config"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/scheduler"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
)

func main() {
	listen := flag.String("listen", "", "HTTP bind address (overrides config)")
	cfgPath := flag.String("config", "", "path to coordinator.json")
	flag.Parse()

	var cfg config.Coordinator
	if *cfgPath != "" {
		var err error
		cfg, err = config.LoadCoordinator(*cfgPath)
		if err != nil {
			log.Fatalf("loading config: %v", err)
		}
	} else if err := cfg.Validate(); err != nil {
		log.Fatalf("config defaults: %v", err)
	}
	if *listen != "" {
		cfg.Listen = *listen
	}

	var strategy scheduler.Strategy
	switch cfg.Strategy {
	case "best-fit":
		strategy = scheduler.BestFit{}
	case "least-loaded":
		strategy = scheduler.LeastLoaded{}
	default:
		strategy = &scheduler.RoundRobin{}
	}

	database := db.New(0)
	if cfg.SnapshotPath != "" {
		if f, err := os.Open(cfg.SnapshotPath); err == nil {
			if err := database.Load(f); err != nil {
				log.Printf("warning: could not load snapshot: %v", err)
			}
			f.Close()
		}
	}
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(4096)

	coord, err := core.New(core.Config{
		HeartbeatInterval: cfg.HeartbeatInterval(),
		MissedThreshold:   cfg.MissedThreshold,
		Strategy:          strategy,
		BatchSize:         cfg.SchedulerBatchSize,
	}, simclock.Real(), database, ckpts, bus)
	if err != nil {
		log.Fatalf("creating coordinator: %v", err)
	}

	srv := &http.Server{Addr: cfg.Listen, Handler: coord.Handler(nil)}
	go func() {
		log.Printf("gpunion coordinator listening on %s (strategy %s)", cfg.Listen, cfg.Strategy)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http server: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	coord.Stop()
	_ = srv.Close()
	if cfg.SnapshotPath != "" {
		f, err := os.Create(cfg.SnapshotPath)
		if err != nil {
			log.Fatalf("creating snapshot: %v", err)
		}
		if err := database.Save(f); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		f.Close()
		fmt.Printf("database snapshot saved to %s\n", cfg.SnapshotPath)
	}
}
