// Command coordinator runs GPUnion's central coordinator daemon: node
// registration, the pending-job priority queue, heartbeat-based failure
// detection and workload migration, served over a REST API.
//
// Usage:
//
//	coordinator [-listen :8080] [-config coordinator.json]
//	            [-wal-dir DIR] [-wal-group-commit-ms N] [-snapshot-interval-sec N]
//
// Flags override environment variables (GPUNION_WAL_DIR,
// GPUNION_WAL_GROUP_COMMIT_MS, GPUNION_SNAPSHOT_INTERVAL_SEC), which
// override the config file; with none, built-in defaults apply.
//
// With a WAL directory configured the daemon is crash-safe: every
// database mutation is group-committed to the write-ahead log before it
// is acknowledged, a background snapshotter checkpoints the store
// without pausing it, and on boot the daemon recovers nodes, jobs and
// allocations from snapshot + log and re-arms failure detection — jobs
// survive a coordinator restart instead of needing resubmission. The
// legacy snapshot_path (a JSON dump written only on clean shutdown) is
// still honored when no WAL directory is set, but is deprecated.
package main

import (
	"crypto/rand"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"gpunion/internal/checkpoint"
	"gpunion/internal/config"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/scheduler"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/wal"
)

// loadOrCreateSecret reads the token-signing secret, minting one on
// first boot. 0600: it is a credential.
func loadOrCreateSecret(path string) ([]byte, error) {
	if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
		return b, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	b := make([]byte, 32)
	if _, err := rand.Read(b); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, b, 0o600); err != nil {
		return nil, err
	}
	return b, nil
}

func main() {
	listen := flag.String("listen", "", "HTTP bind address (overrides config)")
	cfgPath := flag.String("config", "", "path to coordinator.json")
	walDir := flag.String("wal-dir", "", "write-ahead-log directory (overrides config/env)")
	walGroupMS := flag.Int("wal-group-commit-ms", 0, "WAL group-commit window in ms (overrides config/env)")
	snapSec := flag.Int("snapshot-interval-sec", 0, "background snapshot period in seconds (overrides config/env)")
	flag.Parse()

	var cfg config.Coordinator
	if *cfgPath != "" {
		var err error
		cfg, err = config.LoadCoordinator(*cfgPath)
		if err != nil {
			log.Fatalf("loading config: %v", err)
		}
	}
	if err := cfg.ApplyEnv(os.LookupEnv); err != nil {
		log.Fatalf("environment config: %v", err)
	}
	if *listen != "" {
		cfg.Listen = *listen
	}
	if *walDir != "" {
		cfg.WALDir = *walDir
	}
	if *walGroupMS > 0 {
		cfg.WALGroupCommitMS = *walGroupMS
	}
	if *snapSec > 0 {
		cfg.SnapshotIntervalSec = *snapSec
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("config: %v", err)
	}

	var strategy scheduler.Strategy
	switch cfg.Strategy {
	case "best-fit":
		strategy = scheduler.BestFit{}
	case "least-loaded":
		strategy = scheduler.LeastLoaded{}
	default:
		strategy = &scheduler.RoundRobin{}
	}

	database := db.New(0)

	// Durable persistence: recover the store from snapshot + WAL, then
	// log every mutation from here on. The token-signing secret lives
	// next to the log so credentials issued before a restart still
	// verify after it.
	var (
		mgr        *wal.Manager
		authSecret []byte
	)
	if cfg.WALDir != "" {
		var err error
		authSecret, err = loadOrCreateSecret(filepath.Join(cfg.WALDir, "auth.key"))
		if err != nil {
			log.Fatalf("auth secret: %v", err)
		}
		mgr, err = wal.Open(cfg.WALDir, database, wal.Config{
			GroupWindow:      cfg.WALGroupCommit(),
			SnapshotInterval: cfg.SnapshotInterval(),
		})
		if err != nil {
			log.Fatalf("opening WAL: %v", err)
		}
		r := mgr.Recovery
		log.Printf("recovered from %s: snapshot=%v watermark=%d replayed=%d torn=%d",
			cfg.WALDir, r.SnapshotLoaded, r.Watermark, r.Replayed, r.TornTails)
	}
	restored := mgr != nil
	if mgr == nil && cfg.SnapshotPath != "" {
		// Deprecated one-shot snapshot path (no WAL): best-effort load.
		if f, err := os.Open(cfg.SnapshotPath); err == nil {
			if err := database.Load(f); err != nil {
				log.Printf("warning: could not load snapshot: %v", err)
			} else {
				restored = true
			}
			f.Close()
		}
	}
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(4096)

	coord, err := core.New(core.Config{
		HeartbeatInterval: cfg.HeartbeatInterval(),
		MissedThreshold:   cfg.MissedThreshold,
		Strategy:          strategy,
		BatchSize:         cfg.SchedulerBatchSize,
		AuthSecret:        authSecret,
	}, simclock.Real(), database, ckpts, bus)
	if err != nil {
		log.Fatalf("creating coordinator: %v", err)
	}
	if restored {
		// Resume the job-ID sequence, requeue mid-migration jobs and
		// re-arm failure detection around whatever was restored.
		coord.RecoverState()
	}

	srv := &http.Server{Addr: cfg.Listen, Handler: coord.Handler(nil)}
	go func() {
		log.Printf("gpunion coordinator listening on %s (strategy %s)", cfg.Listen, cfg.Strategy)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http server: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	coord.Stop()
	_ = srv.Close()
	switch {
	case mgr != nil:
		// Final checkpoint so the next boot replays an empty tail; the
		// WAL already holds everything if this fails mid-write.
		if err := mgr.Checkpoint(); err != nil {
			log.Printf("warning: final snapshot: %v", err)
		}
		if err := mgr.Close(); err != nil {
			log.Printf("warning: closing WAL: %v", err)
		}
		log.Printf("WAL closed; state checkpointed in %s", cfg.WALDir)
	case cfg.SnapshotPath != "":
		f, err := os.Create(cfg.SnapshotPath)
		if err != nil {
			log.Fatalf("creating snapshot: %v", err)
		}
		if err := database.Save(f); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		f.Close()
		log.Printf("database snapshot saved to %s", cfg.SnapshotPath)
	}
}
