package main

import "testing"

func TestParseGPUFlag(t *testing.T) {
	entries, err := parseGPUFlag("RTX 3090:2,A100:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Model != "RTX 3090" || entries[0].Count != 2 {
		t.Fatalf("first = %+v", entries[0])
	}
	if entries[1].Model != "A100" || entries[1].Count != 1 {
		t.Fatalf("second = %+v", entries[1])
	}
}

func TestParseGPUFlagDefaultCount(t *testing.T) {
	entries, err := parseGPUFlag("A6000")
	if err != nil || len(entries) != 1 || entries[0].Count != 1 {
		t.Fatalf("entries = %+v, %v", entries, err)
	}
}

func TestParseGPUFlagWhitespace(t *testing.T) {
	entries, err := parseGPUFlag(" RTX 4090 : 8 , ")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Model != "RTX 4090" || entries[0].Count != 8 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestParseGPUFlagErrors(t *testing.T) {
	if _, err := parseGPUFlag(""); err == nil {
		t.Fatal("empty flag accepted")
	}
	if _, err := parseGPUFlag("A100:many"); err == nil {
		t.Fatal("non-numeric count accepted")
	}
}
