// Command agent runs GPUnion's provider agent: it registers the node
// with the coordinator, serves the workload-lifecycle REST API, sends
// heartbeats, and enforces provider supremacy locally.
//
// Usage:
//
//	agent -coordinator http://coord:8080 [-listen :7070] [-gpus "RTX 3090:2"]
//	agent -coordinator http://coord:8080 -aggregator http://rack-agg:7080
//	agent -config agent.json
//
// With -aggregator, heartbeats prefer the rack relay (which acks no-op
// beats locally and rolls them up); the agent falls back to the direct
// coordinator endpoint whenever the relay errors or answers stale.
// Pair it with -telemetry-every N (telemetry attached every Nth beat)
// — a beat carrying telemetry always passes through the relay, so
// only the off-cadence idle beats fold.
//
// SIGINT triggers a *scheduled* departure: running jobs are checkpointed
// and the coordinator is told to migrate them. SIGTERM departs without
// notice (emergency semantics: the coordinator learns via heartbeat
// loss).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/auth"
	"gpunion/internal/checkpoint"
	"gpunion/internal/config"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/gpu"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
)

func main() {
	coordURL := flag.String("coordinator", "", "coordinator base URL (overrides config)")
	aggURL := flag.String("aggregator", "", "rack aggregator base URL (optional heartbeat relay)")
	telemetryEvery := flag.Int("telemetry-every", 0, "attach telemetry every Nth beat (0 = every beat; set >1 behind an aggregator so idle beats fold)")
	listen := flag.String("listen", "", "HTTP bind address (overrides config)")
	gpus := flag.String("gpus", "", `installed devices, e.g. "RTX 3090:2,A100:1" (overrides config)`)
	cfgPath := flag.String("config", "", "path to agent.json")
	flag.Parse()

	var cfg config.Agent
	if *cfgPath != "" {
		var err error
		cfg, err = config.LoadAgent(*cfgPath)
		if err != nil {
			log.Fatalf("loading config: %v", err)
		}
	}
	if *coordURL != "" {
		cfg.CoordinatorURL = *coordURL
	}
	if *listen != "" {
		cfg.Listen = *listen
		cfg.AdvertiseURL = ""
	}
	if *gpus != "" {
		entries, err := parseGPUFlag(*gpus)
		if err != nil {
			log.Fatalf("parsing -gpus: %v", err)
		}
		cfg.GPUs = entries
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("config: %v", err)
	}
	specs, err := cfg.Inventory()
	if err != nil {
		log.Fatalf("inventory: %v", err)
	}

	machineID, err := auth.NewMachineID()
	if err != nil {
		log.Fatalf("generating machine id: %v", err)
	}

	rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(specs...), 0, 0)
	coordClient := core.NewClient(cfg.CoordinatorURL)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	ag := agent.New(agent.Config{
		MachineID:                 machineID,
		Kernel:                    cfg.Kernel,
		DefaultCheckpointInterval: time.Duration(cfg.CheckpointIntervalSec) * time.Second,
		TelemetryEvery:            *telemetryEvery,
	}, simclock.Real(), rt, ckpts, nil, coordClient)
	if *aggURL != "" {
		ag.SetAggregator(*aggURL, core.NewClient(*aggURL))
	}

	srv := &http.Server{Addr: cfg.Listen, Handler: ag.Handler()}
	go func() {
		log.Printf("gpunion agent %s listening on %s (%d GPUs)", machineID, cfg.Listen, len(specs))
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http server: %v", err)
		}
	}()

	resp, err := coordClient.Register(ag.RegisterRequest(cfg.AdvertiseURL, cfg.StorageBytes))
	if err != nil {
		log.Fatalf("registering with %s: %v", cfg.CoordinatorURL, err)
	}
	ag.SetToken(resp.Token)
	log.Printf("registered; heartbeating every %v", resp.HeartbeatInterval)

	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(resp.HeartbeatInterval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if ag.Departed() {
					continue
				}
				hb, _, err := ag.SendBeat(coordClient)
				if err != nil {
					log.Printf("heartbeat: %v", err)
					continue
				}
				if hb.Reregister {
					if r, err := coordClient.Register(ag.RegisterRequest(cfg.AdvertiseURL, cfg.StorageBytes)); err == nil {
						ag.SetToken(r.Token)
						log.Printf("re-registered after coordinator restart")
					}
				}
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	close(stop)
	if s == syscall.SIGINT {
		log.Printf("scheduled departure: checkpointing workloads")
		ag.Depart(api.DepartScheduled, 2*time.Minute)
	} else {
		log.Printf("emergency departure")
		ag.Depart(api.DepartEmergency, 0)
	}
	ag.Stop()
	_ = srv.Close()
}

// parseGPUFlag parses "MODEL:N,MODEL:N" device lists.
func parseGPUFlag(s string) ([]config.GPUEntry, error) {
	var out []config.GPUEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		model, countStr, ok := strings.Cut(part, ":")
		count := 1
		if ok {
			n, err := strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil {
				return nil, fmt.Errorf("bad count in %q: %w", part, err)
			}
			count = n
		}
		out = append(out, config.GPUEntry{Model: strings.TrimSpace(model), Count: count})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no devices in %q", s)
	}
	return out, nil
}
