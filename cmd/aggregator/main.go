// Command aggregator runs GPUnion's rack-scoped heartbeat relay: it
// serves the same /v1/heartbeat endpoint the coordinator does, acks
// no-op beats locally, folds them into compact AggregatedBeat windows,
// and forwards one upstream request per flush tick — so coordinator
// ingress cost scales with racks and churn, not fleet size. Point a
// rack's agents at this process as their aggregator endpoint; they
// fall back to their direct coordinator endpoints whenever the relay
// answers with an error.
//
// Usage:
//
//	aggregator -upstream http://coord:8080 [-listen :7080] [-id agg-rack12] [-flush 5s]
//
// SIGINT/SIGTERM flushes the open window upstream before exiting, so a
// graceful shutdown loses nothing; only a crash loses the open window
// (the tier's bounded-lag contract — the next beats heal it).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpunion/internal/aggregator"
	"gpunion/internal/api"
	"gpunion/internal/auth"
	"gpunion/internal/core"
	"gpunion/internal/simclock"
)

func main() {
	upstream := flag.String("upstream", "", "coordinator base URL (required)")
	listen := flag.String("listen", ":7080", "HTTP bind address for agent heartbeats")
	id := flag.String("id", "", "relay identity on the wire (default: generated)")
	flush := flag.Duration("flush", 5*time.Second, "roll-up window: max delay before folded beats are forwarded")
	flag.Parse()
	if *upstream == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *id == "" {
		gen, err := auth.NewMachineID()
		if err != nil {
			log.Fatalf("generating relay id: %v", err)
		}
		*id = "agg-" + gen
	}

	agg := aggregator.New(aggregator.Config{
		ID:            *id,
		FlushInterval: *flush,
	}, simclock.Real(), core.NewClient(*upstream))

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req api.HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		resp, err := agg.Ingest(req)
		if err != nil {
			// Not acknowledged anywhere: 503 tells the agent to deliver
			// this same beat to a direct coordinator endpoint.
			code := http.StatusServiceUnavailable
			if !errors.Is(err, aggregator.ErrUnavailable) {
				code = http.StatusBadGateway
			}
			writeJSON(w, code, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		folded, passthrough, forwards, forwardErrors := agg.Stats()
		writeJSON(w, http.StatusOK, map[string]uint64{
			"folded_beats":   folded,
			"passthrough":    passthrough,
			"forwards":       forwards,
			"forward_errors": forwardErrors,
		})
	})

	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		log.Printf("gpunion aggregator %s listening on %s (upstream %s, flush %v)", *id, *listen, *upstream, *flush)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http server: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: flushing open window upstream")
	if err := agg.Flush(); err != nil {
		log.Printf("final flush: %v", err)
	}
	agg.Stop()
	_ = srv.Close()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "aggregator: encoding response: %v\n", err)
	}
}
