// Command campus-sim regenerates the paper's evaluation (§4, §5.3,
// Table 1) from the discrete-event campus simulation.
//
// Usage:
//
//	campus-sim -table1            # platform comparison matrix
//	campus-sim -fig2 [-weeks 6]   # utilization + interactive sessions
//	campus-sim -fig3              # migration under interruptions
//	campus-sim -impact            # training-time inflation
//	campus-sim -traffic           # checkpoint backup bandwidth
//	campus-sim -scalability       # coordinator scaling sweep
//	campus-sim -chaos             # seeded fault injection + invariant audit
//	campus-sim -all               # everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"gpunion/internal/obs"
	"gpunion/internal/sim"
)

func main() {
	table1 := flag.Bool("table1", false, "print the Table 1 platform comparison")
	fig2 := flag.Bool("fig2", false, "run the Fig. 2 utilization experiment")
	fig3 := flag.Bool("fig3", false, "run the Fig. 3 migration experiment")
	impact := flag.Bool("impact", false, "run the training-impact study")
	traffic := flag.Bool("traffic", false, "run the network-traffic analysis")
	scalability := flag.Bool("scalability", false, "run the scalability sweep")
	chaosRun := flag.Bool("chaos", false, "run the chaos schedules with invariant audits")
	all := flag.Bool("all", false, "run everything")
	weeks := flag.Int("weeks", 6, "fig2 observation period")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	any := *table1 || *fig2 || *fig3 || *impact || *traffic || *scalability || *chaosRun || *all
	if !any {
		flag.Usage()
		os.Exit(2)
	}
	if *table1 || *all {
		runTable1()
	}
	if *fig2 || *all {
		runFig2(*weeks, *seed)
	}
	if *fig3 || *all {
		runFig3(*seed)
	}
	if *impact || *all {
		runImpact(*seed)
	}
	if *traffic || *all {
		runTraffic(*seed)
	}
	if *scalability || *all {
		runScalability(*seed)
	}
	if *chaosRun || *all {
		runChaos(*seed)
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func runTable1() {
	header("Table 1: Comparison of Distributed Computing Platforms for Campus GPU Sharing")
	if err := sim.WriteTable1(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func runFig2(weeks int, seed int64) {
	header(fmt.Sprintf("Fig. 2: Research group GPU utilization comparison (%d weeks)", weeks))
	res, err := sim.RunFig2(sim.Fig2Config{Weeks: weeks, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %8s %8s\n", "week", "manual", "gpunion")
	for w := range res.WeeklyBaseline {
		fmt.Printf("%-28d %7.1f%% %7.1f%%\n", w+1, 100*res.WeeklyBaseline[w], 100*res.WeeklyGPUnion[w])
	}
	fmt.Printf("\naverage GPU utilization:     %.0f%% -> %.0f%%   (paper: 34%% -> 67%%)\n",
		100*res.BaselineUtilization, 100*res.GPUnionUtilization)
	fmt.Printf("interactive sessions:        %d -> %d (%+.0f%%)   (paper: +40%%)\n",
		res.BaselineSessions, res.GPUnionSessions, 100*res.SessionGain())
	fmt.Printf("cross-lab jobs lost (manual): %d\n", res.LostCrossLabJobs)
}

func runFig3(seed int64) {
	header("Fig. 3: Migration performance under different interruption scenarios")
	res, err := sim.RunFig3(sim.Fig3Config{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %7s %10s %10s %12s %12s\n",
		"scenario", "events", "displaced", "success", "work lost", "downtime")
	row := func(name string, s sim.ScenarioResult) {
		fmt.Printf("%-12s %7d %10d %9.0f%% %12s %12s\n",
			name, s.Events, s.Displaced, 100*s.MigrationSuccessRate,
			s.MeanWorkLost.Round(time.Second), s.MeanDowntime.Round(time.Second))
	}
	row("scheduled", res.Scheduled)
	row("emergency", res.Emergency)
	row("temporary", res.Temporary)
	fmt.Printf("\nmigrate-back fraction: %.0f%%   (paper: 67%%)\n", 100*res.MigratedBackFraction)
	fmt.Printf("checkpoint interval:   %v (emergency loss is bounded by it)\n", res.CheckpointInterval)
	fmt.Printf("paper reference:       94%% scheduled success; loss ≈ checkpoint interval\n")
}

func runImpact(seed int64) {
	header("Training impact: completion-time inflation vs interruptions")
	rows, err := sim.RunTrainingImpact(sim.ImpactConfig{MaxInterruptions: 6, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-10s %4s %12s %12s %9s\n",
		"class", "memory", "k", "baseline", "interrupted", "increase")
	for _, r := range rows {
		mem := "regular"
		if r.MemoryIntensive {
			mem = "intensive"
		}
		fmt.Printf("%-14s %-10s %4d %12s %12s %8.1f%%\n",
			r.Class, mem, r.Interruptions,
			r.BaselineTime.Round(time.Minute), r.InterruptedTime.Round(time.Minute),
			r.IncreasePct())
	}
	fmt.Printf("\npaper reference: 2–4 interruptions => 3–7%% increase; memory-intensive more sensitive\n")
}

func runTraffic(seed int64) {
	header("Network traffic: checkpoint backup vs campus bandwidth")
	for _, full := range []bool{false, true} {
		mode := "incremental"
		if full {
			mode = "full"
		}
		res, err := sim.RunTraffic(sim.TrafficConfig{Hours: 24, Jobs: 20, ForceFull: full, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s checkpoints=%-5d shipped=%6.1f GB  peak=%5.2f%%  mean=%5.2f%% of %.0f Gbps backbone\n",
			mode, res.Checkpoints, float64(res.TotalCheckpointBytes)/1e9,
			100*res.PeakUtilization, 100*res.MeanUtilization, res.BackboneGbps)
	}
	fmt.Printf("\npaper reference: incremental backup consumes < 2%% of campus bandwidth at peak\n")
}

func runScalability(seed int64) {
	header("Scalability: coordinator costs vs campus size (§5.3)")
	rows, err := sim.RunScalability(sim.ScalabilityConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %14s %14s %14s %10s %14s %14s %14s %10s %9s %9s %9s %6s %11s %11s %7s\n",
		"nodes", "sched mean", "sched p95", "batch/dec", "sub-sec",
		"db ops/s", "mutex ops/s", "coal beats/s", "required", "headroom", "mutex hr", "coal x",
		"racks", "direct rq/s", "agg rq/s", "agg x")
	for _, r := range rows {
		fmt.Printf("%6d %14s %14s %14s %10v %14.0f %14.0f %14.0f %10.0f %8.1fx %8.1fx %8.1fx %6d %11.1f %11.1f %6.1fx\n",
			r.Nodes, r.MeanSchedulingLatency, r.P95SchedulingLatency,
			r.BatchMeanPerDecision, r.SubSecond,
			r.DBOpsPerSecond, r.SingleMutexOpsPerSecond, r.CoalescedBeatsPerSecond,
			r.RequiredDBOpsPerSecond, r.Headroom, r.SingleMutexHeadroom, r.CoalesceSpeedup,
			r.AggRacks, r.DirectIngressPerSecond, r.AggIngressPerSecond, r.IngressReduction)
	}
	fmt.Printf("\npaper reference: sub-second scheduling to 50 nodes; DB/heartbeat bottlenecks beyond 200\n")
	fmt.Printf("sharded store vs single-mutex baseline: headroom vs mutex-hr; batch/dec is per-decision cost via PlaceBatch\n")
	fmt.Printf("coal beats/s drives the same beat volume through per-shard TouchNodes batches; coal x is its speedup over per-beat commits\n")
	fmt.Printf("direct/agg rq/s is coordinator ingress with every agent beating direct vs behind per-rack aggregators; agg x is the reduction\n")
}

func runChaos(seed int64) {
	header("Chaos: seeded fault injection with state-invariant audits")
	scenarios := []struct {
		name string
		run  func(int64) (sim.ChaosResult, error)
	}{
		{"churn@400", sim.RunChaosChurnScale},
		{"partition+coord-crash", sim.RunChaosPartitionCrash},
		{"wal-disk-faults", sim.RunChaosWALFaults},
		{"wal-faults-singlemutex", sim.RunChaosWALFaultsSingleMutex},
		{"skew+dup-delivery", sim.RunChaosSkewDup},
		{"data-plane+ckpt-corrupt", sim.RunChaosDataPlane},
		{"gray-degrade", sim.RunChaosGrayDegrade},
		{"partial-loss", sim.RunChaosPartialLoss},
		{"ckpt-read-rot", sim.RunChaosCkptReadRot},
		{"agg-crash", sim.RunChaosAggCrash},
		{"agg-partition+fallback", sim.RunChaosAggPartition},
	}
	fmt.Printf("%-24s %7s %7s %10s %10s %10s %10s %8s %12s %11s\n",
		"schedule", "faults", "audits", "submitted", "completed", "recoveries", "diskFaults", "trace", "fold/fwd", "violations")
	var last sim.ChaosResult
	for _, sc := range scenarios {
		res, err := sc.run(seed)
		if err != nil {
			log.Fatal(err)
		}
		foldFwd := "-"
		if res.AggForwards > 0 {
			foldFwd = fmt.Sprintf("%d/%d", res.AggFoldedBeats, res.AggForwards)
		}
		fmt.Printf("%-24s %7d %7d %10d %10d %10d %10d %8d %12s %11d\n",
			sc.name, len(res.Schedule), res.Report.Audits, res.SubmittedJobs,
			res.CompletedJobs, res.Recoveries, res.WALFaultsInjected,
			len(res.Trace), foldFwd, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Printf("    INVARIANT VIOLATION: %s\n", v)
		}
		last = res
	}
	fmt.Printf("\nzero violations means every audited invariant held under the injected faults\n")
	printObsSummary(last)
}

// printObsSummary renders the flight-recorder timeline and a metrics
// excerpt from the final chaos schedule — the end-of-run O&M view an
// operator would use to localize a fault from trace + metrics alone.
func printObsSummary(res sim.ChaosResult) {
	header("Flight recorder: last schedule's trace + coordinator metrics")
	kinds := obs.Kinds(res.Trace)
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("  %-24s %6d\n", k, kinds[k])
	}
	if res.TraceDropped > 0 {
		fmt.Printf("  (ring overwrote %d older events)\n", res.TraceDropped)
	}
	if st := obs.StatSpans(obs.Spans(res.Trace, "job.submitted", "job.completed")); st.Count > 0 {
		fmt.Printf("\njob submit -> complete: %d spans, min %v  mean %v  max %v\n",
			st.Count, st.Min.Round(time.Second), st.Mean.Round(time.Second),
			st.Max.Round(time.Second))
	}

	fmt.Printf("\ncoordinator metrics excerpt:\n")
	excerpts := []string{
		"gpunion_heartbeats_total", "gpunion_heartbeat_duplicates_total",
		"gpunion_wal_fsync_seconds_count", "gpunion_wal_group_batch_size_count",
		"gpunion_sched_pool_hits_total", "gpunion_sched_pool_misses_total",
		"gpunion_checkpoint_corruptions_total", "gpunion_checkpoint_fallbacks_total",
		"gpunion_leader_epoch", "gpunion_jobs{",
	}
	for _, line := range strings.Split(res.MetricsText, "\n") {
		for _, want := range excerpts {
			if strings.HasPrefix(line, want) {
				fmt.Printf("  %s\n", line)
				break
			}
		}
	}
}
