package aggregator_test

// Race lane for the aggregation tier: agents hammer their rack relay
// from concurrent goroutines while one goroutine crash-loops the relay
// (Stop/Restart) and another churns coordinator-side membership
// (announced departures), so every seam runs at once on the real
// clock — local folding, synchronous pass-through, ErrUnavailable
// demotion with direct fallback, bounced stale deltas fanning
// Reregister back, and re-registration racing in-flight beats. The
// race detector is the primary assertion; the behavioral ones are that
// no agent wedges, every agent ends with an acknowledged beat on a
// single live session, and the store's beat-delta audit stays clean.
// Runs in -short (CI's `-race -short` lane).

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/aggregator"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/invariant"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
)

func TestAggregatorFallbackRace(t *testing.T) {
	clock := simclock.Real()
	store := db.New(0)
	bus := eventbus.New(1024)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	coord, err := core.New(core.Config{HeartbeatInterval: time.Minute}, clock, store, ckpts, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	beatAudit, _ := invariant.NewBeatAudit(store)

	agg := aggregator.New(aggregator.Config{
		ID:            "agg-race",
		FlushInterval: time.Millisecond,
		RetryAfter:    time.Millisecond,
	}, clock, coord)
	defer agg.Stop()

	const nodes, beatsPerNode = 4, 200
	agents := make([]*agent.Agent, nodes)
	register := func(ag *agent.Agent) {
		resp, rerr := coord.Register(ag.RegisterRequest("inproc://"+ag.MachineID(), 1<<40), core.LocalAgent{A: ag})
		if rerr != nil {
			t.Errorf("register %s: %v", ag.MachineID(), rerr)
			return
		}
		ag.SetToken(resp.Token)
		ag.ObserveEpoch(resp.LeaderEpoch)
	}
	ids := []string{"race-00", "race-01", "race-02", "race-03"}
	for i := range agents {
		rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(gpu.RTX3090), 0, 0)
		agents[i] = agent.New(agent.Config{
			MachineID: ids[i], Kernel: "5.15",
			ProgressTick: time.Hour, TelemetryEvery: 8,
			// Near-zero demotion backoff: the probe-again path itself is
			// part of what must race cleanly.
			AggregatorRetry: time.Millisecond,
		}, clock, rt, ckpts, bus, coord)
		agents[i].SetAggregator(agg.ID(), agg)
		register(agents[i])
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Crash loop: the relay dies and restarts as fast as it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			agg.Stop()
			time.Sleep(200 * time.Microsecond)
			agg.Restart()
			time.Sleep(500 * time.Microsecond)
		}
		agg.Restart()
	}()

	// Membership churn: announced departures race in-flight beats and
	// in-window deltas; the bounced-delta path answers with Reregister.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			_ = coord.HandleDeparture(ids[i%len(ids)], api.DepartTemporary)
			time.Sleep(700 * time.Microsecond)
		}
	}()

	var reregisters atomic.Uint64
	for i := range agents {
		wg.Add(1)
		go func(ag *agent.Agent) {
			defer wg.Done()
			for n := 0; n < beatsPerNode; n++ {
				resp, _, berr := ag.SendBeat(coord)
				if berr != nil {
					// Both tiers down never happens here (the direct tier is
					// the coordinator itself); anything else is a bug.
					t.Errorf("%s beat %d: %v", ag.MachineID(), n, berr)
					return
				}
				if resp.Reregister {
					reregisters.Add(1)
					register(ag)
				}
				// Pace the loop so beats genuinely interleave with the
				// crash loop, the flush timers and the membership churn.
				time.Sleep(500 * time.Microsecond)
			}
		}(agents[i])
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// The beat goroutines finish on their own; the churn goroutines
	// stop when told. A wedged agent fails the test via the timeout.
	deadline := time.After(30 * time.Second)
	stopChurn := time.After(150 * time.Millisecond)
	for {
		select {
		case <-stopChurn:
			stop.Store(true)
			stopChurn = nil
		case <-done:
			goto settled
		case <-deadline:
			t.Fatal("agents wedged: beat goroutines did not finish")
		}
	}
settled:

	// Directed coda, single-threaded now that the race phase is over: a
	// delta folded before an announced departure must bounce at replay
	// and fan Reregister back to the agent — the agent may never be
	// silently resurrected from a stale window. A pass-through beat
	// (telemetry cadence) reaches the coordinator directly and honestly
	// resurrects the node instead, so on that path the coda departs the
	// node again and retries until a folded window takes the hit.
	victim := agents[0]
	bounced := false
	for attempt := 0; attempt < 40 && !bounced; attempt++ {
		_ = coord.HandleDeparture(victim.MachineID(), api.DepartTemporary)
		for n := 0; n < 12 && !bounced; n++ {
			resp, via, berr := victim.SendBeat(coord)
			if berr != nil {
				time.Sleep(time.Millisecond)
				continue
			}
			if resp.Reregister {
				bounced = true
				reregisters.Add(1)
				register(victim)
				break
			}
			if !via {
				// Direct fallback resurrected the node; depart and retry.
				break
			}
			// Folded or passed through — give the window time to flush
			// (and, if folded, bounce) before the next beat.
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !bounced {
		t.Error("a folded delta bounced off a departed record never fanned Reregister back")
	}

	// Quiesce on the direct tier (a relay ack is local — the fold may
	// still be in flight): every agent re-registers if needed and lands
	// one final acknowledged beat on its (single) live session.
	for _, ag := range agents {
		ag.SetAggregator("", nil)
	}
	for _, ag := range agents {
		acked := false
		for attempt := 0; attempt < 5 && !acked; attempt++ {
			resp, _, berr := ag.SendBeat(coord)
			if berr != nil {
				t.Fatalf("%s settling beat: %v", ag.MachineID(), berr)
			}
			if resp.Reregister {
				register(ag)
				continue
			}
			acked = resp.Acknowledged
		}
		if !acked {
			t.Errorf("%s never settled to an acknowledged beat", ag.MachineID())
		}
	}
	for _, n := range store.ListNodes() {
		if n.Status != db.NodeActive {
			t.Errorf("node %s ended %s, want active", n.ID, n.Status)
		}
	}
	for _, v := range beatAudit.Check(store) {
		t.Errorf("beat audit: %s", v.Detail)
	}
	t.Logf("reregisters honored: %d", reregisters.Load())
}
