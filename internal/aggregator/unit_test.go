package aggregator_test

import (
	"errors"
	"testing"
	"time"

	"gpunion/internal/aggregator"
	"gpunion/internal/api"
	"gpunion/internal/simclock"
)

// fakeUpstream scripts the coordinator side of the relay: an error to
// inject, per-node directives to fan back, and the batches it saw.
type fakeUpstream struct {
	err        error
	epoch      uint64
	reregister []string
	sendFull   []string
	batches    []api.AggregatedBeat
}

func (u *fakeUpstream) IngestAggregated(b api.AggregatedBeat) (api.AggregatedBeatResponse, error) {
	if u.err != nil {
		return api.AggregatedBeatResponse{}, u.err
	}
	u.batches = append(u.batches, b)
	return api.AggregatedBeatResponse{
		Acknowledged: true, LeaderEpoch: u.epoch,
		Reregister: u.reregister, SendFull: u.sendFull,
	}, nil
}

func idleBeat(node string, seq uint64) api.HeartbeatRequest {
	return api.HeartbeatRequest{MachineID: node, BeatSeq: seq}
}

func TestAggregatorStatsAndDefaults(t *testing.T) {
	clock := simclock.NewSim(time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC))
	up := &fakeUpstream{epoch: 1}
	// Zero config: every knob takes its documented default.
	agg := aggregator.New(aggregator.Config{ID: "agg-u"}, clock, up)
	defer agg.Stop()

	for seq := uint64(1); seq <= 3; seq++ {
		if resp, err := agg.Ingest(idleBeat("n1", seq)); err != nil || !resp.Acknowledged {
			t.Fatalf("fold seq %d: resp=%+v err=%v", seq, resp, err)
		}
	}
	// A non-foldable beat passes through and flushes the window with it.
	req := idleBeat("n1", 4)
	req.Paused = true
	if resp, err := agg.Heartbeat(req); err != nil || !resp.Acknowledged || resp.LeaderEpoch != 1 {
		t.Fatalf("passthrough: resp=%+v err=%v", resp, err)
	}
	folded, passthrough, forwards, forwardErrors := agg.Stats()
	if folded != 3 || passthrough != 1 || forwards != 1 || forwardErrors != 0 {
		t.Fatalf("stats = %d/%d/%d/%d, want 3/1/1/0", folded, passthrough, forwards, forwardErrors)
	}
	if len(up.batches) != 1 || len(up.batches[0].Deltas) != 1 || up.batches[0].Deltas[0].Beats != 3 {
		t.Fatalf("window flush: %+v", up.batches)
	}
	// The relayed epoch reaches subsequent folded acks.
	if resp, err := agg.Ingest(idleBeat("n1", 5)); err != nil || resp.LeaderEpoch != 1 {
		t.Fatalf("epoch relay: resp=%+v err=%v", resp, err)
	}
}

func TestAggregatorDegradeHealSetUpstream(t *testing.T) {
	clock := simclock.NewSim(time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC))
	up := &fakeUpstream{err: errors.New("partitioned")}
	agg := aggregator.New(aggregator.Config{ID: "agg-u", FlushInterval: time.Second, RetryAfter: 10 * time.Second}, clock, up)
	defer agg.Stop()

	req := idleBeat("n1", 1)
	req.Paused = true
	if _, err := agg.Ingest(req); err == nil {
		t.Fatal("passthrough over a dead upstream must fail")
	}
	// Degraded: even foldable beats are refused within the backoff.
	if _, err := agg.Ingest(idleBeat("n1", 2)); !errors.Is(err, aggregator.ErrUnavailable) {
		t.Fatalf("degraded ingest: err=%v, want ErrUnavailable", err)
	}
	if _, _, _, forwardErrors := agg.Stats(); forwardErrors != 1 {
		t.Fatalf("forwardErrors = %d, want 1", forwardErrors)
	}

	// Heal clears the refusal without touching the upstream.
	up.err = nil
	agg.Heal()
	if resp, err := agg.Ingest(idleBeat("n1", 3)); err != nil || !resp.Acknowledged {
		t.Fatalf("post-heal ingest: resp=%+v err=%v", resp, err)
	}

	// Degrade again, then re-point at a live upstream: also clears.
	up.err = errors.New("partitioned again")
	req.BeatSeq = 4
	if _, err := agg.Ingest(req); err == nil {
		t.Fatal("second passthrough must fail")
	}
	up2 := &fakeUpstream{epoch: 7}
	agg.SetUpstream(up2)
	if resp, err := agg.Ingest(idleBeat("n1", 5)); err != nil || !resp.Acknowledged {
		t.Fatalf("post-SetUpstream ingest: resp=%+v err=%v", resp, err)
	}
	if err := agg.Flush(); err != nil {
		t.Fatalf("flush to new upstream: %v", err)
	}
	if len(up2.batches) != 1 {
		t.Fatalf("new upstream saw %d batches, want 1", len(up2.batches))
	}
}

func TestAggregatorBackoffProbe(t *testing.T) {
	start := time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(start)
	up := &fakeUpstream{err: errors.New("partitioned")}
	agg := aggregator.New(aggregator.Config{ID: "agg-u", FlushInterval: time.Second, RetryAfter: 5 * time.Second}, clock, up)
	defer agg.Stop()

	req := idleBeat("n1", 1)
	req.Paused = true
	if _, err := agg.Ingest(req); err == nil {
		t.Fatal("passthrough over a dead upstream must fail")
	}
	if _, err := agg.Ingest(idleBeat("n1", 2)); !errors.Is(err, aggregator.ErrUnavailable) {
		t.Fatalf("within backoff: err=%v, want ErrUnavailable", err)
	}
	// Past the backoff the next beat probes upstream again.
	up.err = nil
	clock.Advance(6 * time.Second)
	if resp, err := agg.Ingest(idleBeat("n1", 3)); err != nil || !resp.Acknowledged {
		t.Fatalf("probe after backoff: resp=%+v err=%v", resp, err)
	}
}

func TestAggregatorBurstFlushAtMaxDeltas(t *testing.T) {
	clock := simclock.NewSim(time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC))
	up := &fakeUpstream{}
	agg := aggregator.New(aggregator.Config{ID: "agg-u", FlushInterval: time.Hour, MaxDeltas: 2}, clock, up)
	defer agg.Stop()

	if _, err := agg.Ingest(idleBeat("n1", 1)); err != nil {
		t.Fatal(err)
	}
	if len(up.batches) != 0 {
		t.Fatalf("window flushed early: %+v", up.batches)
	}
	if _, err := agg.Ingest(idleBeat("n2", 1)); err != nil {
		t.Fatal(err)
	}
	if len(up.batches) != 1 || len(up.batches[0].Deltas) != 2 {
		t.Fatalf("burst flush at MaxDeltas: %+v", up.batches)
	}
}

func TestAggregatorReregisterAndSendFullFanBack(t *testing.T) {
	clock := simclock.NewSim(time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC))
	up := &fakeUpstream{reregister: []string{"n1"}, sendFull: []string{"n2"}}
	agg := aggregator.New(aggregator.Config{ID: "agg-u", FlushInterval: time.Hour}, clock, up)
	defer agg.Stop()

	if _, err := agg.Ingest(idleBeat("n1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Ingest(idleBeat("n2", 1)); err != nil {
		t.Fatal(err)
	}
	if err := agg.Flush(); err != nil {
		t.Fatal(err)
	}
	// n1's next beat carries the coordinator's Reregister verdict.
	resp, err := agg.Ingest(idleBeat("n1", 2))
	if err != nil || !resp.Reregister {
		t.Fatalf("reregister fan-back: resp=%+v err=%v", resp, err)
	}
	// The flag is one-shot: the beat after that folds normally.
	up.reregister = nil
	if resp, err := agg.Ingest(idleBeat("n1", 3)); err != nil || resp.Reregister {
		t.Fatalf("reregister flag must clear: resp=%+v err=%v", resp, err)
	}
	// n2 is flagged sendFull: its idle beats now pass through verbatim
	// (and the clean ack clears the flag).
	up.sendFull = nil
	before := len(up.batches)
	if resp, err := agg.Ingest(idleBeat("n2", 2)); err != nil || !resp.Acknowledged {
		t.Fatalf("sendFull passthrough: resp=%+v err=%v", resp, err)
	}
	if len(up.batches) != before+1 || len(up.batches[before].Beats) != 1 {
		t.Fatalf("sendFull beat did not pass through: %+v", up.batches[before:])
	}
	// Flag cleared: the following beat folds again.
	if _, err := agg.Ingest(idleBeat("n2", 3)); err != nil {
		t.Fatal(err)
	}
	folded, _, _, _ := agg.Stats()
	if folded != 4 {
		t.Fatalf("folded = %d, want 4 (n1×3 + n2's first and last)", folded)
	}
}

func TestAggregatorStopAndRestart(t *testing.T) {
	clock := simclock.NewSim(time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC))
	up := &fakeUpstream{}
	agg := aggregator.New(aggregator.Config{ID: "agg-u", FlushInterval: time.Hour}, clock, up)

	if _, err := agg.Ingest(idleBeat("n1", 1)); err != nil {
		t.Fatal(err)
	}
	agg.Stop()
	if _, err := agg.Ingest(idleBeat("n1", 2)); !errors.Is(err, aggregator.ErrUnavailable) {
		t.Fatalf("stopped ingest: err=%v, want ErrUnavailable", err)
	}
	if err := agg.Flush(); !errors.Is(err, aggregator.ErrUnavailable) {
		t.Fatalf("stopped flush: err=%v, want ErrUnavailable", err)
	}
	// Restart: the open window died with the crash, but the window
	// sequence stays strictly monotone across it.
	agg.Restart()
	if _, err := agg.Ingest(idleBeat("n1", 3)); err != nil {
		t.Fatal(err)
	}
	if err := agg.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(up.batches) != 1 || up.batches[0].Deltas[0].Beats != 1 {
		t.Fatalf("pre-crash window leaked into the restart: %+v", up.batches)
	}
	agg.Stop()
}
