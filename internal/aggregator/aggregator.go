// Package aggregator implements GPUnion's rack/zone heartbeat roll-up
// tier: a relay between a rack's agents and the coordinator that acks
// steady-state no-op beats locally, folds them into compact per-node
// liveness deltas, and forwards one api.AggregatedBeat upstream per
// flush window. Coordinator ingress cost becomes O(aggregators +
// churn) instead of O(nodes) — the remaining scaling front after the
// coalesced write path, the way a telemetry plane separates per-cell
// state ingest from the global monitor.
//
// Fold contract (what may be acked locally): a beat with a non-zero
// sequence whose report is empty — no telemetry, no running jobs, no
// health events, not paused — and whose node is not currently flagged
// by the coordinator. Everything else passes through verbatim,
// synchronously, attached to the pending window: health events and
// state changes are only acked once the coordinator has actually
// folded them, so an aggregator crash can never lose an acknowledged
// health event. What a crash can lose is the current window's folded
// liveness deltas, which is the same bounded-lag contract the
// coordinator's own coalescing buffer already has — agents re-beat
// within one interval and the `aggregation-equivalence` invariant's
// lag tolerance covers exactly this window.
//
// Failure behavior: a failed upstream forward degrades the aggregator
// — every subsequent Ingest returns ErrUnavailable so agents fall back
// to their direct coordinator endpoints — until a backoff elapses or
// Heal/SetUpstream re-arms it. The per-node BeatSeq is preserved end
// to end, so a delta that loses a race against the agent's own direct
// fallback beats is absorbed by the coordinator's sequence guard.
package aggregator

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/simclock"
)

// ErrUnavailable is returned by Ingest while the aggregator is stopped
// or degraded (its upstream forward failed); agents treat it like any
// transport failure and fall back to a direct coordinator endpoint.
var ErrUnavailable = errors.New("aggregator: unavailable, beat direct")

// Upstream is the aggregator's coordinator-facing transport. The
// in-process deployment is *core.Coordinator itself; the daemon uses
// *core.Client.
type Upstream interface {
	IngestAggregated(api.AggregatedBeat) (api.AggregatedBeatResponse, error)
}

// Config parameterises an Aggregator.
type Config struct {
	// ID names this aggregator (rack/zone scope) on the wire.
	ID string
	// FlushInterval is the roll-up window: folded deltas are forwarded
	// at most this far after the first beat parked (default 5s — a
	// quarter of the default heartbeat interval, matching the
	// coordinator's own coalescing lag).
	FlushInterval time.Duration
	// MaxDeltas bounds the window: a rack bursting past it flushes
	// immediately (default 4096).
	MaxDeltas int
	// RetryAfter is how long a degraded aggregator refuses beats before
	// probing upstream again (default 2 × FlushInterval).
	RetryAfter time.Duration
}

// nodeFlag is per-node relay state fanned back by the coordinator.
type nodeFlag struct {
	// reregister: serve Reregister on the node's next beat.
	reregister bool
	// sendFull: stop folding this node; pass its beats through until a
	// pass-through for it is acked without the flag being re-set.
	sendFull bool
}

// Aggregator is one rack/zone relay instance.
type Aggregator struct {
	cfg   Config
	clock simclock.Clock

	mu sync.Mutex
	up Upstream
	// epoch is the highest coordinator leader epoch observed in batch
	// responses; stamped on forwards and relayed to agents in acks.
	epoch     uint64
	windowSeq uint64
	deltas    map[string]*api.AggBeatDelta
	flags     map[string]nodeFlag
	timer     simclock.Timer
	// degradedAt is non-zero while the aggregator refuses beats after a
	// failed forward; cleared by Heal/SetUpstream or the retry backoff.
	degradedAt time.Time
	degraded   bool
	stopped    bool

	// Lifetime counters (observability and the scalability sweep).
	foldedBeats   uint64
	passthrough   uint64
	forwards      uint64
	forwardErrors uint64
}

// New creates an aggregator forwarding to up.
func New(cfg Config, clock simclock.Clock, up Upstream) *Aggregator {
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Second
	}
	if cfg.MaxDeltas <= 0 {
		cfg.MaxDeltas = 4096
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * cfg.FlushInterval
	}
	return &Aggregator{
		cfg:    cfg,
		clock:  clock,
		up:     up,
		deltas: make(map[string]*api.AggBeatDelta),
		flags:  make(map[string]nodeFlag),
	}
}

// ID returns the aggregator's wire identity.
func (g *Aggregator) ID() string { return g.cfg.ID }

// SetUpstream re-points the aggregator (coordinator failover) and
// clears any degradation.
func (g *Aggregator) SetUpstream(up Upstream) {
	g.mu.Lock()
	g.up = up
	g.degraded = false
	g.mu.Unlock()
}

// Heal clears a degradation without changing the upstream (the
// partition healed; the coordinator is reachable again).
func (g *Aggregator) Heal() {
	g.mu.Lock()
	g.degraded = false
	g.mu.Unlock()
}

// Stop crashes the aggregator: pending window state is lost (exactly
// what a process crash loses) and every subsequent Ingest returns
// ErrUnavailable until Restart.
func (g *Aggregator) Stop() {
	g.mu.Lock()
	g.stopped = true
	g.deltas = make(map[string]*api.AggBeatDelta)
	g.flags = make(map[string]nodeFlag)
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	g.mu.Unlock()
}

// Restart brings a stopped aggregator back with an empty window, as a
// restarted process would. The durable cursors — the learned leader
// epoch and the window sequence — survive, as a real relay persists
// them: the window sequence must stay strictly monotone across
// restarts or the upstream could not tell a fresh window from a
// replayed one.
func (g *Aggregator) Restart() {
	g.mu.Lock()
	g.stopped = false
	g.degraded = false
	g.deltas = make(map[string]*api.AggBeatDelta)
	g.flags = make(map[string]nodeFlag)
	g.mu.Unlock()
}

// Stats reports lifetime counters: beats folded (acked locally), beats
// passed through, upstream forwards, and failed forwards.
func (g *Aggregator) Stats() (folded, passthrough, forwards, forwardErrors uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.foldedBeats, g.passthrough, g.forwards, g.forwardErrors
}

// Ingest accepts one agent heartbeat. Foldable beats are acked
// immediately from the roll-up window; everything else rides a
// synchronous forward of the pending window and returns the
// coordinator's verdict for this node. An error means the beat was NOT
// acknowledged anywhere — the agent must retry against a direct
// coordinator endpoint.
func (g *Aggregator) Ingest(req api.HeartbeatRequest) (api.HeartbeatResponse, error) {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return api.HeartbeatResponse{}, ErrUnavailable
	}
	now := g.clock.Now()
	if g.degraded {
		if now.Sub(g.degradedAt) < g.cfg.RetryAfter {
			g.mu.Unlock()
			return api.HeartbeatResponse{}, ErrUnavailable
		}
		// Backoff elapsed: probe upstream again with this beat.
		g.degraded = false
	}
	fl := g.flags[req.MachineID]
	if fl.reregister {
		// Relay the coordinator's directive from the previous window.
		fl.reregister = false
		g.flags[req.MachineID] = fl
		epoch := g.epoch
		g.mu.Unlock()
		return api.HeartbeatResponse{Reregister: true, LeaderEpoch: epoch}, nil
	}

	foldable := req.BeatSeq > 0 && !req.Paused && !fl.sendFull &&
		len(req.Telemetry) == 0 && len(req.RunningJobs) == 0 &&
		len(req.HealthEvents) == 0
	if foldable {
		g.foldedBeats++
		if d := g.deltas[req.MachineID]; d != nil {
			if req.BeatSeq > d.BeatSeq {
				d.BeatSeq = req.BeatSeq
				d.At = now
				d.Token = req.Token
			}
			d.Beats++
		} else {
			g.deltas[req.MachineID] = &api.AggBeatDelta{
				NodeID: req.MachineID, Token: req.Token,
				At: now, BeatSeq: req.BeatSeq, Beats: 1,
			}
			if g.timer == nil {
				g.timer = g.clock.AfterFunc(g.cfg.FlushInterval, g.flushTick)
			}
		}
		full := len(g.deltas) >= g.cfg.MaxDeltas
		epoch := g.epoch
		g.mu.Unlock()
		if full {
			// The burst flush is best effort: these beats are already
			// acked, and a failure degrades the aggregator for the
			// following beats.
			_, _ = g.forward(nil)
		}
		return api.HeartbeatResponse{Acknowledged: true, LeaderEpoch: epoch}, nil
	}

	// Pass-through: the beat carries state the coordinator must see, so
	// its ack is the coordinator's ack. It flushes the pending window
	// with it — within a window a pass-through always carries a newer
	// sequence than its node's folded delta, and the coordinator
	// processes pass-throughs first, so the delta is absorbed by the
	// sequence guard rather than regressing anything.
	g.passthrough++
	g.mu.Unlock()
	pass := api.AggPassthrough{At: now, Beat: req}
	resp, err := g.forward(&pass)
	if err != nil {
		return api.HeartbeatResponse{}, fmt.Errorf("aggregator: forward failed: %w", err)
	}
	out := api.HeartbeatResponse{Acknowledged: true, LeaderEpoch: resp.LeaderEpoch}
	for _, id := range resp.Reregister {
		if id == req.MachineID {
			out.Reregister = true
			out.Acknowledged = false
		}
	}
	return out, nil
}

// Heartbeat is Ingest under the name agents' beat senders use, so an
// aggregator drops into an agent's endpoint tiers unadapted.
func (g *Aggregator) Heartbeat(req api.HeartbeatRequest) (api.HeartbeatResponse, error) {
	return g.Ingest(req)
}

// Flush forwards the pending window now (timer path, tests).
func (g *Aggregator) Flush() error {
	_, err := g.forward(nil)
	return err
}

// flushTick is the armed window timer.
func (g *Aggregator) flushTick() { _ = g.Flush() }

// forward builds one batch from the pending deltas (plus an optional
// pass-through beat), sends it upstream, and applies the response's
// per-node directives. The upstream call runs outside the lock;
// concurrent Ingests park new deltas in a fresh window meanwhile.
func (g *Aggregator) forward(pass *api.AggPassthrough) (api.AggregatedBeatResponse, error) {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return api.AggregatedBeatResponse{}, ErrUnavailable
	}
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	if len(g.deltas) == 0 && pass == nil {
		g.mu.Unlock()
		return api.AggregatedBeatResponse{Acknowledged: true, LeaderEpoch: g.epoch}, nil
	}
	g.windowSeq++
	batch := api.AggregatedBeat{
		Envelope:     api.Envelope{ProtocolVersion: api.ProtocolVersion, LeaderEpoch: g.epoch},
		AggregatorID: g.cfg.ID,
		WindowSeq:    g.windowSeq,
	}
	for _, d := range g.deltas {
		batch.Deltas = append(batch.Deltas, *d)
	}
	g.deltas = make(map[string]*api.AggBeatDelta)
	if pass != nil {
		batch.Beats = []api.AggPassthrough{*pass}
	}
	up := g.up
	passAcked := pass != nil
	g.forwards++
	g.mu.Unlock()

	sort.Slice(batch.Deltas, func(i, j int) bool {
		return batch.Deltas[i].NodeID < batch.Deltas[j].NodeID
	})
	resp, err := up.IngestAggregated(batch)

	g.mu.Lock()
	defer g.mu.Unlock()
	if err != nil {
		// Degrade: refuse beats until the backoff elapses so agents use
		// their direct endpoints. The stolen deltas are dropped — the
		// same bounded-lag loss as a crash; the agents behind them
		// re-beat (direct) within one interval.
		g.forwardErrors++
		g.degraded = true
		g.degradedAt = g.clock.Now()
		return api.AggregatedBeatResponse{}, err
	}
	if resp.LeaderEpoch > g.epoch {
		g.epoch = resp.LeaderEpoch
	}
	// A cleanly acked pass-through clears its node's sendFull flag
	// before the response's directives re-assert anything: the
	// coordinator has now seen the node verbatim.
	if passAcked {
		fl := g.flags[pass.Beat.MachineID]
		fl.sendFull = false
		g.flags[pass.Beat.MachineID] = fl
	}
	for _, id := range resp.Reregister {
		if passAcked && id == pass.Beat.MachineID {
			// This node's directive rides the Ingest return value; a flag
			// would demand a second re-registration on the next beat.
			continue
		}
		fl := g.flags[id]
		fl.reregister = true
		g.flags[id] = fl
	}
	for _, id := range resp.SendFull {
		fl := g.flags[id]
		fl.sendFull = true
		g.flags[id] = fl
	}
	return resp, nil
}
