package agent

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

var t0 = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

type recordedUpdate struct {
	jobID string
	state db.JobState
	step  int64
}

type fakeNotifier struct {
	updates []recordedUpdate
	departs []api.DepartReason
}

func (f *fakeNotifier) JobUpdate(_, jobID string, state db.JobState, step int64) {
	f.updates = append(f.updates, recordedUpdate{jobID, state, step})
}

func (f *fakeNotifier) Departing(_ string, reason api.DepartReason) {
	f.departs = append(f.departs, reason)
}

type testRig struct {
	clock  *simclock.Sim
	agent  *Agent
	ckpts  *checkpoint.Store
	notify *fakeNotifier
	bus    *eventbus.Bus
}

func newRig(t *testing.T, specs ...gpu.Spec) *testRig {
	t.Helper()
	if len(specs) == 0 {
		specs = []gpu.Spec{gpu.RTX3090, gpu.RTX3090}
	}
	clock := simclock.NewSim(t0)
	rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(specs...), 0, 0)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	notify := &fakeNotifier{}
	bus := eventbus.New(256)
	a := New(Config{MachineID: "node-test", Kernel: "5.15"}, clock, rt, ckpts, bus, notify)
	t.Cleanup(a.Stop)
	return &testRig{clock: clock, agent: a, ckpts: ckpts, notify: notify, bus: bus}
}

func launchTraining(t *testing.T, r *testRig, jobID string, spec workload.TrainingSpec, ckptSec int) api.LaunchResponse {
	t.Helper()
	resp, err := r.agent.Launch(api.LaunchRequest{
		JobID:                 jobID,
		ImageName:             "pytorch/pytorch:2.3-cuda12",
		Kind:                  "batch",
		GPUMemMiB:             spec.GPUMemMiB,
		CheckpointIntervalSec: ckptSec,
		Training:              &spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestLaunchBindsContainerAndGPU(t *testing.T) {
	r := newRig(t)
	resp := launchTraining(t, r, "j1", workload.SmallCNN, 0)
	if resp.ContainerID != "ctr-j1" || resp.DeviceID == "" {
		t.Fatalf("resp = %+v", resp)
	}
	ctr, err := r.agent.Runtime().Get(resp.ContainerID)
	if err != nil || ctr.State() != container.Running {
		t.Fatalf("container = %v, %v", ctr.State(), err)
	}
	st := r.agent.Status()
	if len(st.RunningJobs) != 1 || st.RunningJobs[0] != "j1" {
		t.Fatalf("status = %+v", st)
	}
}

func TestLaunchDuplicateIdempotent(t *testing.T) {
	// A duplicate launch (retried or replayed request) for a job the
	// node already executes re-acknowledges the existing placement: same
	// container, same device, no second copy started.
	r := newRig(t)
	first := launchTraining(t, r, "j1", workload.SmallCNN, 0)
	resp, err := r.agent.Launch(api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		Training: &workload.SmallCNN,
	})
	if err != nil {
		t.Fatalf("duplicate launch failed: %v", err)
	}
	if resp != first {
		t.Fatalf("duplicate ack %+v differs from original %+v", resp, first)
	}
	if st := r.agent.Status(); len(st.RunningJobs) != 1 {
		t.Fatalf("duplicate launch changed the job set: %+v", st.RunningJobs)
	}
}

func TestLaunchWhilePausedRejected(t *testing.T) {
	r := newRig(t)
	r.agent.Pause()
	_, err := r.agent.Launch(api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		Training: &workload.SmallCNN,
	})
	if !errors.Is(err, ErrPaused) {
		t.Fatalf("err = %v, want ErrPaused", err)
	}
	r.agent.Resume()
	if _, err := r.agent.Launch(api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		Training: &workload.SmallCNN,
	}); err != nil {
		t.Fatalf("launch after resume: %v", err)
	}
}

func TestTrainingProgressesWithClock(t *testing.T) {
	r := newRig(t)
	launchTraining(t, r, "j1", workload.SmallCNN, 0)
	r.clock.Advance(time.Minute)
	job, ok := r.agent.RunningJob("j1")
	if !ok {
		t.Fatal("job not running")
	}
	if job.Step() == 0 {
		t.Fatal("job made no progress after a simulated minute")
	}
	// Device telemetry reflects training load.
	dev, _ := r.agent.Runtime().Inventory().Device("gpu0")
	if dev.Telemetry().Utilization < 0.9 {
		t.Fatalf("device util = %v, want ~0.95", dev.Telemetry().Utilization)
	}
}

func TestTrainingCompletesAndNotifies(t *testing.T) {
	r := newRig(t)
	spec := workload.SmallCNN
	spec.TotalSteps = 50 // finishes in a few seconds of sim time
	launchTraining(t, r, "j1", spec, 0)
	r.clock.Advance(time.Minute)
	if len(r.notify.updates) != 1 {
		t.Fatalf("updates = %+v", r.notify.updates)
	}
	u := r.notify.updates[0]
	if u.jobID != "j1" || u.state != db.JobCompleted || u.step != 50 {
		t.Fatalf("update = %+v", u)
	}
	// Container exited, GPU freed.
	if r.agent.Runtime().Running() != 0 {
		t.Fatal("container still running after completion")
	}
	if r.agent.Runtime().Inventory().CountFree() != 2 {
		t.Fatal("GPU not freed after completion")
	}
}

func TestPeriodicCheckpointing(t *testing.T) {
	r := newRig(t)
	launchTraining(t, r, "j1", workload.SmallCNN, 30) // every 30 s
	r.clock.Advance(95 * time.Second)
	seqs, err := r.ckpts.Sequences("j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("checkpoints after 95 s at 30 s interval = %v", seqs)
	}
	// First is full, the rest incremental.
	chain, err := r.ckpts.RestoreChain("j1")
	if err != nil {
		t.Fatal(err)
	}
	if chain[0].Incremental {
		t.Fatal("first checkpoint should be full")
	}
	if len(chain) >= 2 && !chain[1].Incremental {
		t.Fatal("subsequent checkpoints should be incremental")
	}
}

func TestCheckpointNowOnDemand(t *testing.T) {
	r := newRig(t)
	launchTraining(t, r, "j1", workload.SmallCNN, 0)
	r.clock.Advance(10 * time.Second)
	resp, err := r.agent.CheckpointNow("j1", false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 1 || resp.Bytes <= 0 || resp.Step <= 0 {
		t.Fatalf("checkpoint = %+v", resp)
	}
	if _, err := r.agent.CheckpointNow("ghost", false); !errors.Is(err, ErrJobUnknown) {
		t.Fatalf("unknown job err = %v", err)
	}
}

func TestKillSwitchTerminatesEverything(t *testing.T) {
	r := newRig(t)
	launchTraining(t, r, "j1", workload.SmallCNN, 0)
	launchTraining(t, r, "j2", workload.SmallCNN, 0)
	killed := r.agent.KillSwitch()
	if len(killed) != 2 || killed[0] != "j1" || killed[1] != "j2" {
		t.Fatalf("killed = %v", killed)
	}
	if r.agent.Runtime().Running() != 0 {
		t.Fatal("containers survived the kill-switch")
	}
	if len(r.agent.Status().RunningJobs) != 0 {
		t.Fatal("jobs survived the kill-switch")
	}
	// Kill-switch is local: no coordinator notification of job state.
	if len(r.notify.updates) != 0 {
		t.Fatalf("kill-switch notified coordinator: %+v", r.notify.updates)
	}
}

func TestKillSingleJob(t *testing.T) {
	r := newRig(t)
	launchTraining(t, r, "j1", workload.SmallCNN, 0)
	launchTraining(t, r, "j2", workload.SmallCNN, 0)
	if err := r.agent.Kill("j1"); err != nil {
		t.Fatal(err)
	}
	st := r.agent.Status()
	if len(st.RunningJobs) != 1 || st.RunningJobs[0] != "j2" {
		t.Fatalf("running = %v", st.RunningJobs)
	}
	if err := r.agent.Kill("j1"); !errors.Is(err, ErrJobUnknown) {
		t.Fatalf("double kill err = %v", err)
	}
}

func TestScheduledDepartureCheckpointsFirst(t *testing.T) {
	r := newRig(t)
	launchTraining(t, r, "j1", workload.SmallCNN, 0)
	r.clock.Advance(30 * time.Second)
	r.agent.Depart(api.DepartScheduled, time.Minute)

	if !r.agent.Departed() {
		t.Fatal("agent not departed")
	}
	// A final checkpoint exists with the job's progress.
	ck, err := r.ckpts.Latest("j1")
	if err != nil {
		t.Fatalf("no final checkpoint: %v", err)
	}
	if ck.Progress.Step == 0 {
		t.Fatal("final checkpoint captured no progress")
	}
	if len(r.notify.departs) != 1 || r.notify.departs[0] != api.DepartScheduled {
		t.Fatalf("departs = %v", r.notify.departs)
	}
}

func TestEmergencyDepartureSilent(t *testing.T) {
	r := newRig(t)
	launchTraining(t, r, "j1", workload.SmallCNN, 0)
	r.clock.Advance(30 * time.Second)
	r.agent.Depart(api.DepartEmergency, 0)
	// No checkpoint, no notification.
	if _, err := r.ckpts.Latest("j1"); err == nil {
		t.Fatal("emergency departure captured a checkpoint")
	}
	if len(r.notify.departs) != 0 {
		t.Fatalf("emergency departure notified: %v", r.notify.departs)
	}
	if r.agent.Runtime().Running() != 0 {
		t.Fatal("containers survived emergency departure")
	}
}

func TestDepartedAgentRejectsLaunch(t *testing.T) {
	r := newRig(t)
	r.agent.Depart(api.DepartScheduled, 0)
	_, err := r.agent.Launch(api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		Training: &workload.SmallCNN,
	})
	if !errors.Is(err, ErrDeparted) {
		t.Fatalf("err = %v, want ErrDeparted", err)
	}
}

func TestReturnAfterTemporaryDeparture(t *testing.T) {
	r := newRig(t)
	launchTraining(t, r, "j1", workload.SmallCNN, 0)
	r.clock.Advance(10 * time.Second)
	r.agent.Depart(api.DepartTemporary, time.Minute)
	r.clock.Advance(time.Hour)
	r.agent.Return()
	if r.agent.Departed() {
		t.Fatal("agent still departed after Return")
	}
	// Fresh launches work and progress again.
	launchTraining(t, r, "j2", workload.SmallCNN, 0)
	r.clock.Advance(time.Minute)
	if job, ok := r.agent.RunningJob("j2"); !ok || job.Step() == 0 {
		t.Fatal("job on returned node made no progress")
	}
}

func TestMigrationRestoreResumesProgress(t *testing.T) {
	// Simulates the coordinator relaunching a job from a checkpoint.
	r := newRig(t)
	spec := workload.SmallCNN
	_, err := r.agent.Launch(api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
		RestoreFromSeq: 3, RestoreStep: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	job, _ := r.agent.RunningJob("j1")
	if job.Step() != 1200 {
		t.Fatalf("restored step = %d, want 1200", job.Step())
	}
	// Next checkpoint continues the sequence.
	r.clock.Advance(5 * time.Second)
	resp, err := r.agent.CheckpointNow("j1", true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 4 {
		t.Fatalf("checkpoint seq = %d, want 4 (continues after restore)", resp.Seq)
	}
}

func TestInteractiveSessionExpires(t *testing.T) {
	r := newRig(t)
	_, err := r.agent.Launch(api.LaunchRequest{
		JobID: "sess1", ImageName: "gpunion/jupyter-dl:latest", Kind: "interactive",
		GPUMemMiB: 4096, SessionSeconds: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.clock.Advance(30 * time.Second)
	if len(r.agent.Status().RunningJobs) != 1 {
		t.Fatal("session ended early")
	}
	r.clock.Advance(31 * time.Second)
	if len(r.agent.Status().RunningJobs) != 0 {
		t.Fatal("session did not expire")
	}
	if len(r.notify.updates) != 1 || r.notify.updates[0].state != db.JobCompleted {
		t.Fatalf("updates = %+v", r.notify.updates)
	}
}

func TestHeartbeatRequestShape(t *testing.T) {
	r := newRig(t)
	r.agent.SetToken("tok-123")
	launchTraining(t, r, "j1", workload.SmallCNN, 0)
	hb := r.agent.HeartbeatRequest()
	if hb.MachineID != "node-test" || hb.Token != "tok-123" {
		t.Fatalf("hb = %+v", hb)
	}
	if len(hb.Telemetry) != 2 || len(hb.RunningJobs) != 1 {
		t.Fatalf("hb = %+v", hb)
	}
}

func TestRegisterRequestInventoriesGPUs(t *testing.T) {
	r := newRig(t, gpu.A100, gpu.A6000)
	req := r.agent.RegisterRequest("http://127.0.0.1:7070", 1<<30)
	if len(req.GPUs) != 2 {
		t.Fatalf("GPUs = %+v", req.GPUs)
	}
	if req.GPUs[0].Model != "A100" || req.GPUs[0].Arch != "ampere" {
		t.Fatalf("GPUs[0] = %+v", req.GPUs[0])
	}
	if req.Kernel != "5.15" || req.MachineID != "node-test" {
		t.Fatalf("req = %+v", req)
	}
}

func TestCheckpointFailureDoesNotKillJob(t *testing.T) {
	// Back the checkpoint store with a full store so saves fail.
	clock := simclock.NewSim(t0)
	rt := container.NewRuntime(container.DefaultImages(), gpu.NewInventory(gpu.RTX3090, 1), 0, 0)
	full := checkpoint.NewStore(storage.NewMemStore(1)) // 1-byte capacity
	bus := eventbus.New(64)
	a := New(Config{MachineID: "n", Kernel: "5.15"}, clock, rt, full, bus, nil)
	defer a.Stop()
	spec := workload.SmallCNN
	if _, err := a.Launch(api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, CheckpointIntervalSec: 10, Training: &spec,
	}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	if job, ok := a.RunningJob("j1"); !ok || job.Step() == 0 {
		t.Fatal("job died because checkpoints failed")
	}
	// Container still running despite capture failures.
	if a.Runtime().Running() != 1 {
		t.Fatal("container not running")
	}
}

// TestSkewBackwardJumpDoesNotStallProgress: stepping the agent's clock
// backwards rebases its per-run deadlines; training keeps advancing on
// the very next tick instead of stalling for the jump width.
func TestSkewBackwardJumpDoesNotStallProgress(t *testing.T) {
	r := newRig(t)
	skewed := simclock.NewSkewed(r.clock)
	a := New(Config{MachineID: "m1", Kernel: "5.15"}, skewed, r.agent.Runtime(), r.ckpts, nil, NopNotifier{})
	defer a.Stop()
	launchVia(t, a, "j1", workload.SmallCNN)

	r.clock.Advance(5 * time.Second)
	job, _ := a.RunningJob("j1")
	before := job.Step()
	if before == 0 {
		t.Fatal("no progress before the jump")
	}

	// The clock steps back two minutes; without rebasing, elapsed would
	// stay negative for the next 120 ticks and progress would freeze.
	skewed.SetOffset(-2 * time.Minute)
	r.clock.Advance(3 * time.Second)
	if after := job.Step(); after <= before {
		t.Fatalf("progress stalled after backward jump: %d -> %d", before, after)
	}
}

// TestSkewForwardJumpDoesNotMintProgress: stepping the clock forward
// must not credit the job with training steps nobody computed. A single
// tick accounts at most two tick periods.
func TestSkewForwardJumpDoesNotMintProgress(t *testing.T) {
	r := newRig(t)
	skewed := simclock.NewSkewed(r.clock)
	a := New(Config{MachineID: "m1", Kernel: "5.15"}, skewed, r.agent.Runtime(), r.ckpts, nil, NopNotifier{})
	defer a.Stop()
	launchVia(t, a, "j1", workload.SmallCNN)

	r.clock.Advance(5 * time.Second)
	job, _ := a.RunningJob("j1")
	before := job.Step()

	// Jump an hour ahead: the next tick sees elapsed = 1h + 1s but may
	// account at most 2 x ProgressTick.
	skewed.SetOffset(time.Hour)
	r.clock.Advance(time.Second)
	after := job.Step()
	spec := workload.SmallCNN
	maxSteps := spec.StepsIn(2*time.Second, gpu.RTX3090) + 1
	if after-before > maxSteps {
		t.Fatalf("forward jump minted %d steps (max %d)", after-before, maxSteps)
	}
}

// launchVia starts a training job on an explicitly-constructed agent.
func launchVia(t *testing.T, a *Agent, jobID string, spec workload.TrainingSpec) {
	t.Helper()
	if _, err := a.Launch(api.LaunchRequest{
		JobID: jobID, ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLaunchConcurrentDuplicatesConverge: a duplicate launch racing the
// original (the HTTP retry case) must wait for it and return the same
// idempotent ack — never an error, never a second copy.
func TestLaunchConcurrentDuplicatesConverge(t *testing.T) {
	r := newRig(t)
	spec := workload.SmallCNN
	req := api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	}
	const n = 8
	var wg sync.WaitGroup
	resps := make([]api.LaunchResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = r.agent.Launch(req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent duplicate %d failed: %v", i, errs[i])
		}
		if resps[i] != resps[0] {
			t.Fatalf("divergent acks: %+v vs %+v", resps[i], resps[0])
		}
	}
	if st := r.agent.Status(); len(st.RunningJobs) != 1 {
		t.Fatalf("running jobs = %v, want exactly one", st.RunningJobs)
	}
}
