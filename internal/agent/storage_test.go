package agent

import (
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

// launchWithPrefs starts a training job with user storage preferences.
func launchWithPrefs(t *testing.T, r *testRig, jobID string, prefs []string) {
	t.Helper()
	spec := workload.SmallCNN
	_, err := r.agent.Launch(api.LaunchRequest{
		JobID: jobID, ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, CheckpointIntervalSec: 30,
		Training: &spec, StoragePrefs: prefs,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPinnedStorageReceivesCheckpointCopies(t *testing.T) {
	r := newRig(t)
	nas := storage.NewMemStore(0)
	placement := storage.NewPlacement()
	placement.Register("lab-nas", nas)
	r.agent.SetStores(placement)

	launchWithPrefs(t, r, "j1", []string{"lab-nas"})
	r.clock.Advance(70 * time.Second) // two periodic checkpoints

	// The platform store has the checkpoints (migration depends on it).
	platformSeqs, err := r.ckpts.Sequences("j1")
	if err != nil || len(platformSeqs) == 0 {
		t.Fatalf("platform store sequences = %v, %v", platformSeqs, err)
	}
	// The user's pinned store holds the same chain.
	pinned := checkpoint.NewStore(nas)
	pinnedSeqs, err := pinned.Sequences("j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(pinnedSeqs) != len(platformSeqs) {
		t.Fatalf("pinned has %d checkpoints, platform %d", len(pinnedSeqs), len(platformSeqs))
	}
	ck, err := pinned.Latest("j1")
	if err != nil || ck.Progress.Step == 0 {
		t.Fatalf("pinned latest = %+v, %v", ck, err)
	}
}

func TestStoragePrefsFallBackInOrder(t *testing.T) {
	r := newRig(t)
	nas := storage.NewMemStore(0)
	scratch := storage.NewMemStore(0)
	placement := storage.NewPlacement()
	placement.Register("lab-nas", nas)
	placement.Register("scratch", scratch)
	placement.SetLive("lab-nas", false) // NAS owner departed
	r.agent.SetStores(placement)

	launchWithPrefs(t, r, "j1", []string{"lab-nas", "scratch"})
	r.clock.Advance(40 * time.Second)

	if keys, _ := nas.List(""); len(keys) != 0 {
		t.Fatalf("dead NAS received checkpoints: %v", keys)
	}
	if keys, _ := scratch.List(""); len(keys) == 0 {
		t.Fatal("fallback store received nothing")
	}
}

func TestNoPrefsUsesDefaultStoreOnly(t *testing.T) {
	r := newRig(t)
	nas := storage.NewMemStore(0)
	placement := storage.NewPlacement()
	placement.Register("lab-nas", nas)
	r.agent.SetStores(placement)

	launchWithPrefs(t, r, "j1", nil)
	r.clock.Advance(40 * time.Second)

	if keys, _ := nas.List(""); len(keys) != 0 {
		t.Fatalf("unpinned job wrote to a named store: %v", keys)
	}
	if seqs, err := r.ckpts.Sequences("j1"); err != nil || len(seqs) == 0 {
		t.Fatalf("default store sequences = %v, %v", seqs, err)
	}
}

func TestUnresolvablePrefsStillCheckpoint(t *testing.T) {
	r := newRig(t)
	r.agent.SetStores(storage.NewPlacement()) // nothing registered

	launchWithPrefs(t, r, "j1", []string{"ghost-store"})
	r.clock.Advance(40 * time.Second)

	// Placement failed, but the platform store still protects the job.
	if seqs, err := r.ckpts.Sequences("j1"); err != nil || len(seqs) == 0 {
		t.Fatalf("platform store sequences = %v, %v", seqs, err)
	}
}

func TestPinnedStoreFailureNeverBlocksCheckpoints(t *testing.T) {
	r := newRig(t)
	tiny := storage.NewMemStore(1) // every Put fails
	placement := storage.NewPlacement()
	placement.Register("tiny", tiny)
	r.agent.SetStores(placement)

	launchWithPrefs(t, r, "j1", []string{"tiny"})
	r.clock.Advance(70 * time.Second)

	// The job keeps running and the platform chain keeps growing.
	if job, ok := r.agent.RunningJob("j1"); !ok || job.Step() == 0 {
		t.Fatal("job stalled because the pinned store is broken")
	}
	if seqs, _ := r.ckpts.Sequences("j1"); len(seqs) < 2 {
		t.Fatalf("platform sequences = %v", seqs)
	}
}
