package agent

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"gpunion/internal/api"
)

// Handler returns the agent's REST API (§3.4: "The agent exposes REST
// APIs for resource advertisement, workload lifecycle management, and
// emergency controls"). Coordinator-facing endpoints (launch, kill,
// checkpoint) and provider-local controls (killswitch, pause, resume,
// depart) share the mux; in a real deployment the local controls would
// bind to loopback only.
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/launch", func(w http.ResponseWriter, r *http.Request) {
		var req api.LaunchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := a.Launch(req)
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/kill", func(w http.ResponseWriter, r *http.Request) {
		var req api.KillRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if err := a.KillJob(req); err != nil {
			status := http.StatusNotFound
			if errors.Is(err, ErrStaleLeader) {
				status = http.StatusConflict
			}
			writeError(w, status, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		var req api.CheckpointRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := a.CheckpointNow(req.JobID, req.Incremental)
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/killswitch", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, api.KillSwitchResponse{KilledJobs: a.KillSwitch()})
	})

	mux.HandleFunc("POST /v1/pause", func(w http.ResponseWriter, _ *http.Request) {
		a.Pause()
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/resume", func(w http.ResponseWriter, _ *http.Request) {
		a.Resume()
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/depart", func(w http.ResponseWriter, r *http.Request) {
		var req api.DepartRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		grace := time.Duration(req.GraceSeconds) * time.Second
		a.Depart(req.Reason, grace)
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, a.Status())
	})

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// Refresh the telemetry gauges in place on the agent's
		// persistent registry: counters registered elsewhere (launches,
		// future lifecycle totals) keep accumulating across scrapes —
		// a fresh per-scrape registry would zero them every time.
		reg := a.metrics
		for _, tel := range a.runtime.Inventory().Snapshot() {
			labels := map[string]string{"node": a.cfg.MachineID, "device": tel.DeviceID, "model": tel.Model}
			set := func(name, help string, v float64) {
				if g, err := reg.Gauge(name, help, labels); err == nil {
					g.Set(v)
				}
			}
			set("gpunion_gpu_utilization", "GPU compute utilization (0..1)", tel.Utilization)
			set("gpunion_gpu_memory_used_mib", "GPU memory in use", float64(tel.UsedMemMiB))
			set("gpunion_gpu_temperature_celsius", "GPU temperature", tel.TemperatureC)
			set("gpunion_gpu_power_watts", "GPU power draw", tel.PowerW)
		}
		if g, err := reg.Gauge("gpunion_agent_running_jobs", "Jobs running on this node", nil); err == nil {
			g.Set(float64(len(a.Status().RunningJobs)))
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WriteText(w)
	})

	return mux
}

// Client drives a remote agent over HTTP. It implements the
// coordinator's AgentHandle contract plus the provider-local controls
// used by gpuctl.
type Client struct {
	// BaseURL is the agent's address, e.g. "http://10.0.0.5:7070".
	BaseURL string
	// HTTPClient defaults to a client with a 10 s timeout.
	HTTPClient *http.Client
}

// NewClient creates a Client with sane timeouts.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

// Launch implements the coordinator-side handle.
func (c *Client) Launch(req api.LaunchRequest) (api.LaunchResponse, error) {
	var resp api.LaunchResponse
	err := c.post("/v1/launch", req, &resp)
	return resp, err
}

// Kill implements the coordinator-side handle. The request carries the
// sending leader's epoch; the agent enforces the fence.
func (c *Client) Kill(req api.KillRequest) error {
	return c.post("/v1/kill", req, nil)
}

// Checkpoint implements the coordinator-side handle.
func (c *Client) Checkpoint(jobID string, incremental bool) (api.CheckpointResponse, error) {
	var resp api.CheckpointResponse
	err := c.post("/v1/checkpoint", api.CheckpointRequest{JobID: jobID, Incremental: incremental}, &resp)
	return resp, err
}

// KillSwitch triggers the provider's emergency control.
func (c *Client) KillSwitch() (api.KillSwitchResponse, error) {
	var resp api.KillSwitchResponse
	err := c.post("/v1/killswitch", nil, &resp)
	return resp, err
}

// Pause stops new allocations on the node.
func (c *Client) Pause() error { return c.post("/v1/pause", nil, nil) }

// Resume re-enables allocations.
func (c *Client) Resume() error { return c.post("/v1/resume", nil, nil) }

// Depart asks the agent to leave the platform.
func (c *Client) Depart(reason api.DepartReason, grace time.Duration) error {
	return c.post("/v1/depart", api.DepartRequest{
		Reason: reason, GraceSeconds: int(grace / time.Second),
	}, nil)
}

// Status fetches the agent's self-report.
func (c *Client) Status() (api.AgentStatus, error) {
	var st api.AgentStatus
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/status")
	if err != nil {
		return st, fmt.Errorf("agent: GET status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, readError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("agent: decoding status: %w", err)
	}
	return st, nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) post(path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("agent: encoding request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("agent: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return readError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("agent: decoding response: %w", err)
		}
	}
	return nil
}

// decodeJSON parses the request body, writing a 400 on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, out any) bool {
	if err := json.NewDecoder(r.Body).Decode(out); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("agent: bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, api.Error{Code: code, Message: err.Error()})
}

func readError(resp *http.Response) error {
	var apiErr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Message != "" {
		return apiErr
	}
	return fmt.Errorf("agent: HTTP %d", resp.StatusCode)
}
