package agent

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"gpunion/internal/workload"
)

// scrape fetches the agent's /v1/metrics exposition once.
func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestMetricsRegistryPersistsAcrossScrapes is the regression test for
// the per-scrape-registry bug: the handler used to build a fresh
// monitor.Registry on every GET, so any counter was reborn at zero and
// no value could ever accumulate. The persistent registry must show the
// same launch total on consecutive scrapes, and gauges must still
// refresh in place rather than duplicate.
func TestMetricsRegistryPersistsAcrossScrapes(t *testing.T) {
	r := newRig(t)
	srv := httptest.NewServer(r.agent.Handler())
	defer srv.Close()

	launchTraining(t, r, "j1", workload.SmallCNN, 0)
	launchTraining(t, r, "j2", workload.SmallCNN, 0)

	first := scrape(t, srv)
	if !strings.Contains(first, "gpunion_agent_launches_total 2") {
		t.Fatalf("first scrape lost the launch count:\n%s", first)
	}
	second := scrape(t, srv)
	if !strings.Contains(second, "gpunion_agent_launches_total 2") {
		t.Fatalf("second scrape reset the launch count:\n%s", second)
	}
	// Gauges are updated in place: two scrapes must not duplicate the
	// per-device series.
	if n := strings.Count(second, "\ngpunion_agent_running_jobs "); n != 1 {
		t.Fatalf("running-jobs gauge rendered %d times", n)
	}
	if !strings.Contains(second, "gpunion_agent_running_jobs 2") {
		t.Fatalf("running-jobs gauge stale:\n%s", second)
	}
}
