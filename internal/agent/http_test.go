package agent

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/workload"
)

// httpPair serves a rig's agent over real HTTP and returns a client.
func httpPair(t *testing.T, r *testRig) *Client {
	t.Helper()
	srv := httptest.NewServer(r.agent.Handler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL)
}

func TestHTTPLaunchAndStatus(t *testing.T) {
	r := newRig(t)
	c := httpPair(t, r)
	spec := workload.SmallCNN
	resp, err := c.Launch(api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContainerID != "ctr-j1" || resp.DeviceID == "" {
		t.Fatalf("resp = %+v", resp)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.RunningJobs) != 1 || st.RunningJobs[0] != "j1" {
		t.Fatalf("status = %+v", st)
	}
}

func TestHTTPLaunchDuplicateIdempotent(t *testing.T) {
	// Over HTTP a retried launch request is exactly the duplicate-
	// delivery case: the agent re-acknowledges the running placement
	// instead of erroring, so the coordinator's retry converges.
	r := newRig(t)
	c := httpPair(t, r)
	spec := workload.SmallCNN
	req := api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	}
	first, err := c.Launch(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Launch(req)
	if err != nil {
		t.Fatalf("duplicate launch failed over HTTP: %v", err)
	}
	if resp != first {
		t.Fatalf("duplicate ack %+v differs from original %+v", resp, first)
	}
	if st := r.agent.Status(); len(st.RunningJobs) != 1 {
		t.Fatalf("duplicate launch changed the job set: %+v", st.RunningJobs)
	}
}

func TestHTTPKillEndpoint(t *testing.T) {
	r := newRig(t)
	c := httpPair(t, r)
	spec := workload.SmallCNN
	if _, err := c.Launch(api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(api.KillRequest{JobID: "j1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(api.KillRequest{JobID: "j1"}); err == nil {
		t.Fatal("double kill succeeded over HTTP")
	}
}

func TestHTTPCheckpointEndpoint(t *testing.T) {
	r := newRig(t)
	c := httpPair(t, r)
	spec := workload.SmallCNN
	if _, err := c.Launch(api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	}); err != nil {
		t.Fatal(err)
	}
	r.clock.Advance(5 * time.Second)
	resp, err := c.Checkpoint("j1", false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 1 || resp.Bytes <= 0 {
		t.Fatalf("checkpoint = %+v", resp)
	}
	if _, err := c.Checkpoint("ghost", false); err == nil {
		t.Fatal("checkpointing unknown job succeeded")
	}
}

func TestHTTPProviderControlEndpoints(t *testing.T) {
	r := newRig(t)
	c := httpPair(t, r)
	spec := workload.SmallCNN
	if _, err := c.Launch(api.LaunchRequest{
		JobID: "j1", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	}); err != nil {
		t.Fatal(err)
	}

	if err := c.Pause(); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.Status(); !st.Paused {
		t.Fatal("pause not reflected")
	}
	if err := c.Resume(); err != nil {
		t.Fatal(err)
	}

	ks, err := c.KillSwitch()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.KilledJobs) != 1 || ks.KilledJobs[0] != "j1" {
		t.Fatalf("killswitch = %+v", ks)
	}
}

func TestHTTPDepartEndpoint(t *testing.T) {
	r := newRig(t)
	c := httpPair(t, r)
	if err := c.Depart(api.DepartScheduled, time.Minute); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Departed {
		t.Fatal("departure not reflected in status")
	}
}

func TestHTTPBadJSONRejected(t *testing.T) {
	r := newRig(t)
	srv := httptest.NewServer(r.agent.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/launch", "application/json",
		strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPClientAgainstDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens here
	if _, err := c.Launch(api.LaunchRequest{JobID: "j"}); err == nil {
		t.Fatal("launch against dead server succeeded")
	}
	if _, err := c.Status(); err == nil {
		t.Fatal("status against dead server succeeded")
	}
	if err := c.Pause(); err == nil {
		t.Fatal("pause against dead server succeeded")
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	r := newRig(t)
	srv := httptest.NewServer(r.agent.Handler())
	defer srv.Close()
	// GET on a POST-only route.
	resp, err := srv.Client().Get(srv.URL + "/v1/killswitch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}
