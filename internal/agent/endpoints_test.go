package agent

import (
	"errors"
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/workload"
)

func TestSetEndpointsAndRedirect(t *testing.T) {
	r := newRig(t)
	a, b := &fakeNotifier{}, &fakeNotifier{}
	r.agent.SetEndpoints([]Endpoint{{ID: "coord-a", Notifier: a}, {ID: "coord-b", Notifier: b}})
	if got := r.agent.ActiveEndpoint().ID; got != "coord-a" {
		t.Fatalf("active = %q", got)
	}
	// A leader hint redirects to the named endpoint.
	if !r.agent.Redirect("coord-b") {
		t.Fatal("hinted redirect failed")
	}
	if got := r.agent.ActiveEndpoint().ID; got != "coord-b" {
		t.Fatalf("active after hint = %q", got)
	}
	// No hint: round-robin to the next endpoint.
	if !r.agent.Redirect("") {
		t.Fatal("round-robin redirect failed")
	}
	if got := r.agent.ActiveEndpoint().ID; got != "coord-a" {
		t.Fatalf("active after round-robin = %q", got)
	}
	// Job updates flow to the active endpoint only.
	spec := workload.SmallCNN
	spec.TotalSteps = 50 // finishes in a few seconds of sim time
	launchTraining(t, r, "j1", spec, 0)
	r.clock.Advance(time.Minute)
	if len(a.updates) == 0 || len(b.updates) != 0 {
		t.Fatalf("updates a=%d b=%d", len(a.updates), len(b.updates))
	}
}

func TestRedirectWithoutAlternativesFails(t *testing.T) {
	r := newRig(t)
	if r.agent.Redirect("") {
		t.Fatal("redirect succeeded with a single endpoint and no hint")
	}
	if r.agent.Redirect("nonexistent") {
		t.Fatal("redirect succeeded to an unknown endpoint")
	}
}

func TestSetNotifierShimKeepsWorking(t *testing.T) {
	r := newRig(t)
	n := &fakeNotifier{}
	r.agent.SetNotifier(n)
	spec := workload.SmallCNN
	spec.TotalSteps = 50
	launchTraining(t, r, "j1", spec, 0)
	r.clock.Advance(time.Minute)
	if len(n.updates) == 0 {
		t.Fatal("deprecated SetNotifier no longer delivers updates")
	}
}

func TestAgentFencesStaleLeaderEpoch(t *testing.T) {
	r := newRig(t)
	r.agent.ObserveEpoch(3)
	if got := r.agent.CoordEpoch(); got != 3 {
		t.Fatalf("observed epoch = %d", got)
	}
	// A launch from an older term must be rejected: the sender was
	// deposed and its placement decisions are stale.
	spec := workload.SmallCNN
	_, err := r.agent.Launch(api.LaunchRequest{
		Envelope: api.Envelope{LeaderEpoch: 2},
		JobID:    "jz", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	})
	if !errors.Is(err, ErrStaleLeader) {
		t.Fatalf("stale launch admitted: %v", err)
	}
	// Same fence on kills.
	launchTraining(t, r, "j1", workload.SmallCNN, 0)
	if err := r.agent.KillJob(api.KillRequest{
		Envelope: api.Envelope{LeaderEpoch: 2}, JobID: "j1",
	}); !errors.Is(err, ErrStaleLeader) {
		t.Fatalf("stale kill admitted: %v", err)
	}
	// The current term (and a newer one, which raises the floor) pass.
	if err := r.agent.KillJob(api.KillRequest{
		Envelope: api.Envelope{LeaderEpoch: 4}, JobID: "j1",
	}); err != nil {
		t.Fatal(err)
	}
	if got := r.agent.CoordEpoch(); got != 4 {
		t.Fatalf("epoch floor not raised: %d", got)
	}
	// Zero epoch (legacy/standalone coordinator) is always admitted.
	launchTraining(t, r, "j2", workload.SmallCNN, 0)
	if err := r.agent.KillJob(api.KillRequest{JobID: "j2"}); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatAndRegisterCarryEnvelope(t *testing.T) {
	r := newRig(t)
	r.agent.ObserveEpoch(5)
	hb := r.agent.HeartbeatRequest()
	if hb.ProtocolVersion != api.ProtocolVersion || hb.LeaderEpoch != 5 {
		t.Fatalf("heartbeat envelope = %+v", hb.Envelope)
	}
	reg := r.agent.RegisterRequest("inproc://x", 1<<30)
	if reg.ProtocolVersion != api.ProtocolVersion || reg.LeaderEpoch != 5 {
		t.Fatalf("register envelope = %+v", reg.Envelope)
	}
}
