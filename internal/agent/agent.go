// Package agent implements GPUnion's provider agent (§3.4): the
// lightweight daemon every participating node runs. It owns the node's
// container runtime and GPU inventory, executes workloads, takes
// periodic ALC checkpoints, reports telemetry, and — above all —
// enforces provider supremacy: the local kill-switch, pause, and
// departure controls always work immediately, without coordinator
// round-trips.
package agent

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/monitor"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

// Errors returned by the agent.
var (
	ErrDeparted   = errors.New("agent: node has departed")
	ErrPaused     = errors.New("agent: node is paused")
	ErrJobUnknown = errors.New("agent: unknown job")
	// ErrStaleLeader rejects a coordinator-initiated write whose leader
	// epoch is older than the highest this agent has observed: the
	// sender is a deposed leader (a zombie), and honoring its launches
	// or kills would fork the platform's view of the node. This is the
	// agent-side half of lease fencing — the agent is the shared
	// resource that verifies fencing tokens.
	ErrStaleLeader = errors.New("agent: request from stale leader epoch")
)

// defaultProgressTick is how often the agent advances running jobs and
// refreshes device telemetry unless configured otherwise.
const defaultProgressTick = time.Second

// Notifier is the agent's channel back to the coordinator. In-process
// deployments wire the coordinator directly; HTTP deployments use a
// client. Notifications are best-effort: provider supremacy means local
// actions never block on them.
type Notifier interface {
	// JobUpdate reports a job's terminal or checkpoint state change.
	JobUpdate(machineID, jobID string, state db.JobState, step int64)
	// Departing announces a voluntary departure.
	Departing(machineID string, reason api.DepartReason)
}

// NopNotifier discards all notifications (stand-alone agents).
type NopNotifier struct{}

// JobUpdate implements Notifier.
func (NopNotifier) JobUpdate(string, string, db.JobState, int64) {}

// Departing implements Notifier.
func (NopNotifier) Departing(string, api.DepartReason) {}

// Endpoint is one coordinator replica the agent can talk to.
type Endpoint struct {
	// ID names the replica (matches api.ErrNotLeader.LeaderHint).
	ID string
	// Notifier is the transport to that replica.
	Notifier Notifier
}

// Config parameterises an Agent.
type Config struct {
	// MachineID is the node's unique identity (auth.NewMachineID).
	MachineID string
	// Kernel is the host kernel version.
	Kernel string
	// DefaultCheckpointInterval applies when a launch does not set one.
	DefaultCheckpointInterval time.Duration
	// ProgressTick is how often jobs advance and telemetry refreshes
	// (default 1 s; long simulations use coarser ticks).
	ProgressTick time.Duration
	// ForceFullCheckpoints disables incremental captures — every
	// periodic checkpoint ships the whole state. Used by the network
	// traffic ablation (§4) to quantify what incrementality saves.
	ForceFullCheckpoints bool
	// Health surfaces the node's gray-failure observations (XID errors,
	// throttling, slowdowns); each built heartbeat drains it and ships
	// the events to the coordinator. Nil means no health reporting.
	Health gpu.HealthSource
	// AggregatorRetry is how long a failed rack aggregator stays
	// demoted before SendBeat probes it again (default 30s).
	AggregatorRetry time.Duration
	// TelemetryEvery attaches the device telemetry snapshot to every
	// Nth heartbeat instead of all of them (0 or 1 = every beat).
	// Liveness stays per-beat; only the sample cadence coarsens. An
	// idle node's off-cadence beats then carry no payload at all,
	// which is what lets a rack aggregator fold them into deltas.
	TelemetryEvery int
}

// Agent is the provider-side daemon.
type Agent struct {
	cfg     Config
	clock   simclock.Clock
	runtime *container.Runtime
	ckpts   checkpoint.Writer
	bus     *eventbus.Bus
	// stores resolves user-pinned checkpoint locations (§3.5). Nil
	// means every job uses the default store.
	stores *storage.Placement
	// metrics is the agent's persistent registry: gauges are refreshed
	// in place on each scrape and counters accumulate across scrapes —
	// a per-scrape registry would reset every counter to zero.
	metrics *monitor.Registry
	// launchesTotal counts workload launches over the agent's lifetime.
	launchesTotal *monitor.Counter

	mu   sync.Mutex
	jobs map[string]*jobRun
	// launching reserves job IDs whose Launch is still in flight, so a
	// concurrent duplicate waits for the original's outcome instead of
	// racing it to the container runtime.
	launching map[string]chan struct{}
	paused    bool
	departed  bool
	token     string
	stopped   bool
	ticker    simclock.Timer
	// beatSeq numbers every heartbeat this agent builds, so the
	// coordinator can drop duplicate deliveries of the same beat.
	beatSeq uint64
	// pendingHealth buffers health events collected from cfg.Health but
	// not yet shipped: a beat carries at most api.MaxHealthEventsPerBeat,
	// and the overflow waits (bounded — oldest events drop first) for
	// the next beat rather than being lost.
	pendingHealth []gpu.HealthEvent
	// endpoints is the coordinator replica set and active the index of
	// the replica currently used for notifications and heartbeats;
	// Redirect rotates it on ErrNotLeader or transport failure.
	endpoints []Endpoint
	active    int
	// coordEpoch is the highest leader epoch this agent has observed
	// (registration acks, heartbeat acks, launch/kill envelopes). A
	// coordinator-initiated write carrying a lower non-zero epoch is
	// from a deposed leader and is rejected with ErrStaleLeader.
	coordEpoch uint64
	// Aggregation tier: agg is the node's assigned rack aggregator (nil
	// = none, beat direct), aggID names it, and aggRetryAt is the
	// demotion deadline — after an aggregator failure the agent beats
	// direct until this time passes, then probes the aggregator again.
	agg        BeatSender
	aggID      string
	aggRetryAt time.Time
}

// BeatSender delivers one heartbeat request. Both endpoint tiers speak
// it: a rack aggregator (aggregator.Aggregator) and a direct
// coordinator transport (core.Client, or the coordinator itself
// in-process).
type BeatSender interface {
	Heartbeat(api.HeartbeatRequest) (api.HeartbeatResponse, error)
}

// defaultAggregatorRetry is how long a failed aggregator stays demoted
// before the agent probes it again.
const defaultAggregatorRetry = 30 * time.Second

// jobRun is the agent-local state of one running workload.
type jobRun struct {
	jobID       string
	containerID string
	deviceID    string
	devSpec     gpu.Spec
	training    *workload.Job // nil for interactive sessions
	sessionEnds time.Time     // for interactive sessions
	ckptEvery   time.Duration
	lastCkpt    time.Time
	ckptSeq     int
	lastTick    time.Time
	// pinned is the user's chosen checkpoint location (§3.5), written
	// in addition to the platform store so migration metadata stays
	// centrally resolvable. Nil when the user expressed no preference.
	pinned *checkpoint.Store
	// pausedUntil marks the end of a checkpoint-creation stall: the
	// workload is quiesced while its state is written out, so large
	// (memory-intensive) models pay proportionally more per capture.
	pausedUntil time.Time
	// residual carries compute time smaller than one training step
	// between ticks, so coarse tick granularity never loses progress.
	residual time.Duration
}

// New creates an agent over the node's runtime. Checkpoints are saved
// through ckpts — usually a *checkpoint.Store backed by a LAN store or
// the user's pinned location; the narrower Writer interface is the
// data-plane seam fault injection wraps.
func New(cfg Config, clock simclock.Clock, rt *container.Runtime, ckpts checkpoint.Writer, bus *eventbus.Bus, notify Notifier) *Agent {
	if notify == nil {
		notify = NopNotifier{}
	}
	if bus == nil {
		bus = eventbus.New(0)
	}
	if cfg.DefaultCheckpointInterval <= 0 {
		cfg.DefaultCheckpointInterval = 10 * time.Minute
	}
	if cfg.ProgressTick <= 0 {
		cfg.ProgressTick = defaultProgressTick
	}
	a := &Agent{
		cfg:       cfg,
		clock:     clock,
		runtime:   rt,
		ckpts:     ckpts,
		bus:       bus,
		endpoints: []Endpoint{{Notifier: notify}},
		jobs:      make(map[string]*jobRun),
		metrics:   monitor.NewRegistry(),
	}
	a.launchesTotal, _ = a.metrics.Counter("gpunion_agent_launches_total",
		"Workload launches accepted by this agent", nil)
	a.scheduleTick()
	return a
}

// Metrics exposes the agent's persistent registry.
func (a *Agent) Metrics() *monitor.Registry { return a.metrics }

// MachineID returns the node identity.
func (a *Agent) MachineID() string { return a.cfg.MachineID }

// SetToken stores the coordinator-issued credential.
func (a *Agent) SetToken(tok string) {
	a.mu.Lock()
	a.token = tok
	a.mu.Unlock()
}

// SetEndpoints installs the coordinator replica set the agent may talk
// to; the first entry becomes the active endpoint. This is where
// failover policy lives: heartbeat loops send to the active endpoint,
// and Redirect rotates it when a replica answers api.ErrNotLeader or
// stops answering at all.
func (a *Agent) SetEndpoints(eps []Endpoint) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(eps) == 0 {
		eps = []Endpoint{{Notifier: NopNotifier{}}}
	}
	cp := make([]Endpoint, len(eps))
	copy(cp, eps)
	for i := range cp {
		if cp[i].Notifier == nil {
			cp[i].Notifier = NopNotifier{}
		}
	}
	a.endpoints = cp
	a.active = 0
}

// SetNotifier repoints the agent at a single coordinator.
//
// Deprecated: use SetEndpoints — SetNotifier is the one-endpoint shim
// kept for one release so pre-replication callers keep compiling.
func (a *Agent) SetNotifier(n Notifier) {
	a.SetEndpoints([]Endpoint{{Notifier: n}})
}

// ActiveEndpoint returns the endpoint currently receiving this agent's
// notifications and heartbeats.
func (a *Agent) ActiveEndpoint() Endpoint {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.endpoints[a.active]
}

// Redirect switches the active endpoint: to the replica named by hint
// (an api.ErrNotLeader.LeaderHint) when it is in the set, otherwise to
// the next endpoint round-robin. It reports whether the active endpoint
// changed.
func (a *Agent) Redirect(hint string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if hint != "" {
		for i, ep := range a.endpoints {
			if ep.ID == hint {
				changed := i != a.active
				a.active = i
				return changed
			}
		}
	}
	if len(a.endpoints) < 2 {
		return false
	}
	a.active = (a.active + 1) % len(a.endpoints)
	return true
}

// ObserveEpoch records a leader epoch the agent saw in a coordinator
// reply or request; the highest one becomes the fencing floor for
// coordinator-initiated writes.
func (a *Agent) ObserveEpoch(epoch uint64) {
	a.mu.Lock()
	if epoch > a.coordEpoch {
		a.coordEpoch = epoch
	}
	a.mu.Unlock()
}

// CoordEpoch returns the highest leader epoch observed so far.
func (a *Agent) CoordEpoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.coordEpoch
}

// fenceEpochLocked rejects a write from a leader epoch below the
// observed floor. Zero epochs are always admitted — standalone
// coordinators and legacy senders carry none. Caller holds a.mu.
func (a *Agent) fenceEpochLocked(epoch uint64) error {
	if epoch == 0 {
		return nil
	}
	if epoch < a.coordEpoch {
		return fmt.Errorf("%w: got %d, observed %d", ErrStaleLeader, epoch, a.coordEpoch)
	}
	if epoch > a.coordEpoch {
		a.coordEpoch = epoch
	}
	return nil
}

// notifier reads the current notification target.
func (a *Agent) notifier() Notifier {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.endpoints[a.active].Notifier
}

// Token returns the stored credential.
func (a *Agent) Token() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.token
}

// Runtime exposes the container runtime (telemetry, tests).
func (a *Agent) Runtime() *container.Runtime { return a.runtime }

// SetStores installs a storage placement registry for user-pinned
// checkpoint locations. Jobs whose StoragePrefs resolve to a live named
// store checkpoint there; everything else uses the default store.
func (a *Agent) SetStores(p *storage.Placement) {
	a.mu.Lock()
	a.stores = p
	a.mu.Unlock()
}

// RegisterRequest builds the agent's registration payload.
func (a *Agent) RegisterRequest(addr string, storageBytes int64) api.RegisterRequest {
	return api.RegisterRequest{
		Envelope:     api.Envelope{ProtocolVersion: api.ProtocolVersion, LeaderEpoch: a.CoordEpoch()},
		MachineID:    a.cfg.MachineID,
		Addr:         addr,
		GPUs:         a.gpuInfo(),
		Kernel:       a.cfg.Kernel,
		StorageBytes: storageBytes,
	}
}

func (a *Agent) gpuInfo() []db.GPUInfo {
	devs := a.runtime.Inventory().Devices()
	out := make([]db.GPUInfo, 0, len(devs))
	for _, d := range devs {
		out = append(out, db.GPUInfo{
			DeviceID:        d.ID,
			Model:           d.Spec.Model,
			Arch:            string(d.Spec.Arch),
			MemoryMiB:       d.Spec.MemoryMiB,
			CapabilityMajor: d.Spec.Capability.Major,
			CapabilityMinor: d.Spec.Capability.Minor,
			Allocated:       !d.Free(),
		})
	}
	return out
}

// Launch starts a workload per the coordinator's request: admission,
// container creation, GPU binding, restore (for migrations), and
// checkpoint scheduling.
func (a *Agent) Launch(req api.LaunchRequest) (api.LaunchResponse, error) {
	a.mu.Lock()
	if err := a.fenceEpochLocked(req.LeaderEpoch); err != nil {
		a.mu.Unlock()
		return api.LaunchResponse{}, err
	}
	if a.departed {
		a.mu.Unlock()
		return api.LaunchResponse{}, ErrDeparted
	}
	if a.paused {
		a.mu.Unlock()
		return api.LaunchResponse{}, ErrPaused
	}
	if run, exists := a.jobs[req.JobID]; exists {
		// Idempotent ack: a duplicate launch (retried or replayed
		// request) for a job this node already executes re-acknowledges
		// the existing placement instead of failing. Job IDs are unique
		// platform-wide, so a same-ID launch is always the same job —
		// erroring here would make the coordinator believe the placement
		// failed while the workload keeps running.
		resp := api.LaunchResponse{ContainerID: run.containerID, DeviceID: run.deviceID}
		a.mu.Unlock()
		return resp, nil
	}
	if ch, inflight := a.launching[req.JobID]; inflight {
		// A concurrent duplicate of a launch still in progress (the HTTP
		// retry racing the original): wait for the original to settle,
		// then mirror its outcome — the same idempotent ack on success,
		// the same failure if it never started.
		a.mu.Unlock()
		<-ch
		a.mu.Lock()
		run, exists := a.jobs[req.JobID]
		a.mu.Unlock()
		if exists {
			return api.LaunchResponse{ContainerID: run.containerID, DeviceID: run.deviceID}, nil
		}
		return api.LaunchResponse{}, fmt.Errorf("agent: concurrent launch of %s failed", req.JobID)
	}
	ch := make(chan struct{})
	if a.launching == nil {
		a.launching = make(map[string]chan struct{})
	}
	a.launching[req.JobID] = ch
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.launching, req.JobID)
		a.mu.Unlock()
		close(ch)
	}()

	now := a.clock.Now()
	mode := container.Batch
	if req.Kind == "interactive" {
		mode = container.Interactive
	}
	// A migrated job may return to a node that hosted it before; clear
	// the stale terminal container so the ID can be reused.
	ctrID := "ctr-" + req.JobID
	if old, err := a.runtime.Get(ctrID); err == nil {
		st := old.State()
		if st == container.Exited || st == container.Killed {
			_ = a.runtime.Remove(ctrID)
		}
	}
	spec := container.Spec{
		ID:         ctrID,
		ImageName:  req.ImageName,
		Mode:       mode,
		Entrypoint: req.Entrypoint,
		Resources: container.Resources{
			CPUCores:      4,
			MemoryMiB:     16384,
			GPUMemoryMiB:  req.GPUMemMiB,
			MinCapability: api.CapabilityOf(req.CapabilityMajor, req.CapabilityMinor),
		},
	}
	ctr, err := a.runtime.Create(spec, now)
	if err != nil {
		return api.LaunchResponse{}, fmt.Errorf("agent: creating container: %w", err)
	}
	if err := a.runtime.Start(ctr.ID(), now); err != nil {
		return api.LaunchResponse{}, fmt.Errorf("agent: starting container: %w", err)
	}

	run := &jobRun{
		jobID:       req.JobID,
		containerID: ctr.ID(),
		deviceID:    ctr.GPUDeviceID(),
		ckptEvery:   time.Duration(req.CheckpointIntervalSec) * time.Second,
		lastCkpt:    now,
		lastTick:    now,
	}
	// §3.5: the user may pin checkpoints to specific storage nodes; the
	// pinned copy supplements the platform store, which migration
	// planning always consults.
	a.mu.Lock()
	stores := a.stores
	a.mu.Unlock()
	if stores != nil && len(req.StoragePrefs) > 0 {
		if backing, name, err := stores.Resolve(req.StoragePrefs); err == nil {
			run.pinned = checkpoint.NewStore(backing)
			a.bus.Publish(eventbus.Event{
				Type: eventbus.ContainerCreated, Time: now,
				Node: a.cfg.MachineID, Job: req.JobID,
				Detail: map[string]any{"checkpoint_store": name},
			})
		}
	}
	if run.ckptEvery <= 0 {
		run.ckptEvery = a.cfg.DefaultCheckpointInterval
	}
	if run.deviceID != "" {
		if dev, derr := a.runtime.Inventory().Device(run.deviceID); derr == nil {
			run.devSpec = dev.Spec
		}
	}
	switch {
	case req.Training != nil:
		job := workload.NewJob(req.JobID, *req.Training)
		if req.RestoreStep > 0 {
			// Resume from checkpointed progress: mark image clean state
			// by advancing to the restore point without dirtying.
			job.RestoreTo(checkpoint.Progress{Step: req.RestoreStep})
		}
		run.training = job
		run.ckptSeq = req.RestoreFromSeq
	case mode == container.Interactive:
		d := time.Duration(req.SessionSeconds) * time.Second
		if d <= 0 {
			d = 2 * time.Hour
		}
		run.sessionEnds = now.Add(d)
	}

	a.mu.Lock()
	a.jobs[req.JobID] = run
	a.mu.Unlock()

	a.launchesTotal.Inc()
	a.bus.Publish(eventbus.Event{
		Type: eventbus.JobStarted, Time: now,
		Node: a.cfg.MachineID, Job: req.JobID, Container: ctr.ID(),
	})
	return api.LaunchResponse{ContainerID: ctr.ID(), DeviceID: run.deviceID}, nil
}

// KillJob terminates a job on a coordinator's request, enforcing the
// epoch fence: a kill from a deposed leader is rejected. Local paths
// (kill-switch, provider controls) use Kill directly — provider
// supremacy is not subject to fencing.
func (a *Agent) KillJob(req api.KillRequest) error {
	a.mu.Lock()
	if err := a.fenceEpochLocked(req.LeaderEpoch); err != nil {
		a.mu.Unlock()
		return err
	}
	a.mu.Unlock()
	return a.Kill(req.JobID)
}

// Kill terminates one job immediately (coordinator-requested or local).
func (a *Agent) Kill(jobID string) error {
	a.mu.Lock()
	run, ok := a.jobs[jobID]
	if ok {
		delete(a.jobs, jobID)
	}
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobUnknown, jobID)
	}
	now := a.clock.Now()
	if err := a.runtime.Kill(run.containerID, now); err != nil {
		return fmt.Errorf("agent: killing container for %s: %w", jobID, err)
	}
	a.bus.Publish(eventbus.Event{
		Type: eventbus.JobKilled, Time: now,
		Node: a.cfg.MachineID, Job: jobID, Container: run.containerID,
	})
	return nil
}

// CheckpointNow captures a checkpoint of the job and persists it.
func (a *Agent) CheckpointNow(jobID string, incremental bool) (api.CheckpointResponse, error) {
	a.mu.Lock()
	run, ok := a.jobs[jobID]
	a.mu.Unlock()
	if !ok {
		return api.CheckpointResponse{}, fmt.Errorf("%w: %s", ErrJobUnknown, jobID)
	}
	if run.training == nil {
		return api.CheckpointResponse{}, fmt.Errorf("agent: job %s has no checkpointable state", jobID)
	}
	return a.captureCheckpoint(run, incremental)
}

// fullCheckpointEvery bounds the incremental chain: every sixth capture
// is a full snapshot and obsolete predecessors are pruned, keeping the
// restore transfer bounded (a full image plus at most five deltas).
const fullCheckpointEvery = 6

func (a *Agent) captureCheckpoint(run *jobRun, incremental bool) (api.CheckpointResponse, error) {
	now := a.clock.Now()
	// Quiesce the container during capture when it is running; a paused
	// or checkpointing container is captured as-is.
	quiesced := a.runtime.BeginCheckpoint(run.containerID) == nil
	defer func() {
		if quiesced {
			_ = a.runtime.EndCheckpoint(run.containerID)
		}
	}()

	run.ckptSeq++
	src := checkpoint.Source{
		JobID:    run.jobID,
		Image:    run.training.Image(),
		Progress: run.training.Progress(),
		Env: checkpoint.Env{
			KernelVersion:  a.cfg.Kernel,
			GPUArch:        run.devSpec.Arch,
			HasCUDAContext: run.deviceID != "",
			GPUMemMiB:      run.training.Spec.GPUMemMiB,
		},
	}
	if a.cfg.ForceFullCheckpoints || (run.ckptSeq-1)%fullCheckpointEvery == 0 {
		incremental = false
	}
	ck, err := checkpoint.ALC{}.Capture(src, run.ckptSeq, incremental, now)
	if err != nil {
		run.ckptSeq--
		return api.CheckpointResponse{}, fmt.Errorf("agent: capturing checkpoint: %w", err)
	}
	if err := a.ckpts.Save(ck); err != nil {
		run.ckptSeq--
		return api.CheckpointResponse{}, fmt.Errorf("agent: saving checkpoint: %w", err)
	}
	if run.pinned != nil {
		// The user's pinned copy is best effort: its loss never blocks
		// the platform copy migrations depend on.
		_ = run.pinned.Save(ck)
	}
	if !ck.Incremental {
		// Best effort: drop checkpoints the new full snapshot obsoletes.
		_, _ = a.ckpts.Prune(run.jobID)
		if run.pinned != nil {
			_, _ = run.pinned.Prune(run.jobID)
		}
	}
	run.lastCkpt = now
	if run.training != nil {
		run.pausedUntil = now.Add(run.training.Spec.CheckpointCreationTime())
	}
	a.bus.Publish(eventbus.Event{
		Type: eventbus.JobCheckpoint, Time: now,
		Node: a.cfg.MachineID, Job: run.jobID,
		Detail: map[string]any{"seq": ck.Seq, "bytes": ck.Bytes, "incremental": ck.Incremental},
	})
	return api.CheckpointResponse{Seq: ck.Seq, Bytes: ck.Bytes, Step: ck.Progress.Step}, nil
}

// KillSwitch is the provider's emergency control: every workload dies
// immediately, no checkpoints, no coordinator involvement. It returns
// the job IDs terminated.
func (a *Agent) KillSwitch() []string {
	a.mu.Lock()
	ids := make([]string, 0, len(a.jobs))
	for id := range a.jobs {
		ids = append(ids, id)
	}
	a.jobs = make(map[string]*jobRun)
	a.mu.Unlock()
	sort.Strings(ids)

	now := a.clock.Now()
	a.runtime.KillAll(now)
	a.bus.Publish(eventbus.Event{
		Type: eventbus.KillSwitch, Time: now, Node: a.cfg.MachineID,
		Detail: map[string]any{"killed": len(ids)},
	})
	return ids
}

// Pause stops accepting new allocations; running jobs continue.
func (a *Agent) Pause() {
	a.mu.Lock()
	a.paused = true
	a.mu.Unlock()
	a.bus.Publish(eventbus.Event{Type: eventbus.NodePaused, Time: a.clock.Now(), Node: a.cfg.MachineID})
}

// Resume re-enables allocations.
func (a *Agent) Resume() {
	a.mu.Lock()
	a.paused = false
	a.mu.Unlock()
	a.bus.Publish(eventbus.Event{Type: eventbus.NodeResumed, Time: a.clock.Now(), Node: a.cfg.MachineID})
}

// Paused reports whether new allocations are paused.
func (a *Agent) Paused() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.paused
}

// Departed reports whether the node has left the platform.
func (a *Agent) Departed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.departed
}

// Depart executes a voluntary departure.
//
// Scheduled: every training job gets a final checkpoint within the grace
// period (jobs whose checkpoint cannot complete in time lose progress to
// their last periodic checkpoint), then all workloads stop and the
// coordinator is notified.
//
// Temporary: same as scheduled, but the node intends to return; the
// coordinator keeps its registration and may migrate work back later.
//
// Emergency: everything dies instantly and the coordinator is NOT
// notified — heartbeat loss is the only signal, exactly as when the
// power cable leaves the wall.
func (a *Agent) Depart(reason api.DepartReason, grace time.Duration) {
	now := a.clock.Now()
	if reason != api.DepartEmergency {
		// Final checkpoints, best effort, within the grace budget.
		var budget time.Duration = grace
		for _, run := range a.snapshotRuns() {
			if run.training == nil {
				continue
			}
			cost := run.training.Spec.CheckpointCreationTime()
			if grace > 0 && cost > budget {
				continue // no time left for this job's final snapshot
			}
			if _, err := a.captureCheckpoint(run, true); err == nil && grace > 0 {
				budget -= cost
			}
		}
	}

	a.mu.Lock()
	a.departed = true
	a.jobs = make(map[string]*jobRun)
	if a.ticker != nil {
		a.ticker.Stop()
		a.stopped = true
	}
	a.mu.Unlock()

	a.runtime.KillAll(now)
	if reason != api.DepartEmergency {
		a.notifier().Departing(a.cfg.MachineID, reason)
	}
	a.bus.Publish(eventbus.Event{
		Type: eventbus.NodeDeparted, Time: now, Node: a.cfg.MachineID,
		Detail: map[string]any{"reason": string(reason)},
	})
}

// Return brings a temporarily-departed node back online.
func (a *Agent) Return() {
	a.mu.Lock()
	a.departed = false
	a.paused = false
	if a.stopped {
		a.stopped = false
		a.mu.Unlock()
		a.scheduleTick()
	} else {
		a.mu.Unlock()
	}
	a.bus.Publish(eventbus.Event{Type: eventbus.NodeReturned, Time: a.clock.Now(), Node: a.cfg.MachineID})
}

// Status builds the agent's self-report.
func (a *Agent) Status() api.AgentStatus {
	a.mu.Lock()
	jobs := make([]string, 0, len(a.jobs))
	for id := range a.jobs {
		jobs = append(jobs, id)
	}
	paused, departed := a.paused, a.departed
	a.mu.Unlock()
	sort.Strings(jobs)
	return api.AgentStatus{
		MachineID:   a.cfg.MachineID,
		Paused:      paused,
		Departed:    departed,
		RunningJobs: jobs,
		Telemetry:   a.runtime.Inventory().Snapshot(),
	}
}

// SetAggregator assigns (or, with a nil sender, clears) the node's
// rack aggregator — the preferred heartbeat tier. Any standing
// demotion is cleared: a freshly assigned aggregator gets probed on
// the next beat.
func (a *Agent) SetAggregator(id string, send BeatSender) {
	a.mu.Lock()
	a.agg = send
	a.aggID = id
	a.aggRetryAt = time.Time{}
	a.mu.Unlock()
}

// AggregatorID returns the assigned aggregator's name (empty = none).
func (a *Agent) AggregatorID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.aggID
}

// aggregatorRetry resolves the demotion backoff.
func (a *Agent) aggregatorRetry() time.Duration {
	if a.cfg.AggregatorRetry > 0 {
		return a.cfg.AggregatorRetry
	}
	return defaultAggregatorRetry
}

// demoteAggregator sidelines the aggregator tier until the retry
// deadline: subsequent beats go direct, then one probes again.
func (a *Agent) demoteAggregator(now time.Time) {
	a.mu.Lock()
	a.aggRetryAt = now.Add(a.aggregatorRetry())
	a.mu.Unlock()
}

// SendBeat builds one heartbeat and delivers it through the endpoint
// tiers: the assigned aggregator first (unless demoted), falling back
// to the direct sender when the aggregator is unassigned, errors, or
// answers with a stale leader epoch — the same beat, same sequence, so
// the coordinator's dedup guard keeps the failover exactly-once even
// if the aggregator had already folded it. viaAggregator reports which
// tier produced the returned response.
func (a *Agent) SendBeat(direct BeatSender) (resp api.HeartbeatResponse, viaAggregator bool, err error) {
	req := a.HeartbeatRequest()
	now := a.clock.Now()
	a.mu.Lock()
	agg := a.agg
	if agg != nil && !a.aggRetryAt.IsZero() && now.Before(a.aggRetryAt) {
		agg = nil // demoted: beat direct, probe later
	}
	a.mu.Unlock()

	if agg != nil {
		resp, err = agg.Heartbeat(req)
		if err == nil {
			if resp.LeaderEpoch != 0 && resp.LeaderEpoch < a.CoordEpoch() {
				// The aggregator is relaying acks from a deposed leader:
				// its upstream is stale. Demote it and re-deliver this
				// beat direct — the stale leader's "processing" is fenced
				// away, so the direct delivery is the authoritative one.
				a.demoteAggregator(now)
			} else {
				a.ObserveEpoch(resp.LeaderEpoch)
				return resp, true, nil
			}
		} else {
			a.demoteAggregator(now)
		}
	}
	if direct == nil {
		if err == nil {
			err = errors.New("agent: no direct endpoint to fall back to")
		}
		return api.HeartbeatResponse{}, false, err
	}
	resp, err = direct.Heartbeat(req)
	if err != nil {
		return api.HeartbeatResponse{}, false, err
	}
	a.ObserveEpoch(resp.LeaderEpoch)
	return resp, false, nil
}

// HeartbeatRequest builds the periodic status update. Each built beat
// carries a fresh sequence number; delivering the same request twice is
// therefore detectable at the coordinator, while two distinct beats are
// not conflated.
func (a *Agent) HeartbeatRequest() api.HeartbeatRequest {
	st := a.Status()
	var collected []gpu.HealthEvent
	if a.cfg.Health != nil {
		collected = a.cfg.Health.CollectHealthEvents()
	}
	a.mu.Lock()
	a.beatSeq++
	seq := a.beatSeq
	health := a.takeHealthLocked(collected)
	a.mu.Unlock()
	tel := st.Telemetry
	if n := a.cfg.TelemetryEvery; n > 1 && seq%uint64(n) != 0 {
		tel = nil
	}
	return api.HeartbeatRequest{
		Envelope:     api.Envelope{ProtocolVersion: api.ProtocolVersion, LeaderEpoch: a.CoordEpoch()},
		MachineID:    a.cfg.MachineID,
		Token:        a.Token(),
		Telemetry:    tel,
		RunningJobs:  st.RunningJobs,
		Paused:       st.Paused,
		BeatSeq:      seq,
		HealthEvents: health,
	}
}

// maxHealthBacklog bounds the agent-side carry-over of unshipped
// health events (a few beats' worth; beyond it the oldest drop).
const maxHealthBacklog = 4 * api.MaxHealthEventsPerBeat

// takeHealthLocked merges freshly collected events into the pending
// buffer and cuts the next beat's bounded slice. Callers hold a.mu.
func (a *Agent) takeHealthLocked(collected []gpu.HealthEvent) []gpu.HealthEvent {
	a.pendingHealth = append(a.pendingHealth, collected...)
	if over := len(a.pendingHealth) - maxHealthBacklog; over > 0 {
		a.pendingHealth = append(a.pendingHealth[:0], a.pendingHealth[over:]...)
	}
	if len(a.pendingHealth) == 0 {
		return nil
	}
	n := len(a.pendingHealth)
	if n > api.MaxHealthEventsPerBeat {
		n = api.MaxHealthEventsPerBeat
	}
	out := make([]gpu.HealthEvent, n)
	copy(out, a.pendingHealth[:n])
	a.pendingHealth = append(a.pendingHealth[:0], a.pendingHealth[n:]...)
	return out
}

// snapshotRuns returns the current runs without holding the lock during
// the caller's iteration.
func (a *Agent) snapshotRuns() []*jobRun {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*jobRun, 0, len(a.jobs))
	for _, r := range a.jobs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].jobID < out[j].jobID })
	return out
}

// scheduleTick arms the periodic progress/checkpoint timer.
func (a *Agent) scheduleTick() {
	a.mu.Lock()
	if a.departed || a.stopped {
		a.mu.Unlock()
		return
	}
	a.ticker = a.clock.AfterFunc(a.cfg.ProgressTick, func() {
		a.tick()
		a.scheduleTick()
	})
	a.mu.Unlock()
}

// Stop halts the agent's background timer (shutdown path for daemons).
func (a *Agent) Stop() {
	a.mu.Lock()
	a.stopped = true
	if a.ticker != nil {
		a.ticker.Stop()
	}
	a.mu.Unlock()
}

// tick advances every running job by the elapsed wall time, refreshes
// device telemetry, fires due checkpoints, and completes finished work.
//
// The node's wall clock is not trusted to be continuous: clock skew
// (an NTP step, a fault injection) can jump it in either direction
// between ticks. A backward jump rebases every agent-local deadline by
// the jump width, so progress resumes on the next tick instead of
// stalling until the clock re-crosses its old high-water mark. A
// forward jump is clamped — a single tick may account at most one
// period of real work plus one period of catch-up, so a discontinuity
// can never mint training progress that was not computed.
func (a *Agent) tick() {
	now := a.clock.Now()
	for _, run := range a.snapshotRuns() {
		elapsed := now.Sub(run.lastTick)
		if elapsed < 0 {
			a.rebaseRun(run, -elapsed, now)
			continue
		}
		if elapsed == 0 {
			continue
		}
		if limit := 2 * a.cfg.ProgressTick; elapsed > limit {
			// Shift every absolute deadline forward by the unaccounted
			// width — symmetric with rebaseRun — so checkpoint cadence,
			// stall remainders and session length keep their relative
			// distance instead of being stolen by the jump.
			skip := elapsed - limit
			run.lastCkpt = run.lastCkpt.Add(skip)
			if !run.pausedUntil.IsZero() {
				run.pausedUntil = run.pausedUntil.Add(skip)
			}
			if !run.sessionEnds.IsZero() {
				run.sessionEnds = run.sessionEnds.Add(skip)
			}
			elapsed = limit
		}
		run.lastTick = now
		switch {
		case run.training != nil:
			a.tickTraining(run, elapsed, now)
		case !run.sessionEnds.IsZero():
			a.tickSession(run, now)
		}
	}
}

// rebaseRun shifts a run's absolute deadlines back by delta after the
// clock jumped backwards, preserving every relative distance (checkpoint
// cadence, stall remainder, session length).
func (a *Agent) rebaseRun(run *jobRun, delta time.Duration, now time.Time) {
	run.lastTick = now
	run.lastCkpt = run.lastCkpt.Add(-delta)
	if !run.pausedUntil.IsZero() {
		run.pausedUntil = run.pausedUntil.Add(-delta)
	}
	if !run.sessionEnds.IsZero() {
		run.sessionEnds = run.sessionEnds.Add(-delta)
	}
}

func (a *Agent) tickTraining(run *jobRun, elapsed time.Duration, now time.Time) {
	job := run.training
	// Checkpoint-creation stalls consume training time: deduct any part
	// of the elapsed window spent writing state out.
	if run.pausedUntil.After(now) {
		elapsed = 0
	} else if stall := run.pausedUntil.Sub(now.Add(-elapsed)); stall > 0 {
		elapsed -= stall
	}
	// Accumulate sub-step leftovers so integer step counts per tick do
	// not systematically under-run the job.
	budget := elapsed + run.residual
	steps := job.Spec.StepsIn(budget, run.devSpec)
	if st := job.Spec.StepTime(run.devSpec); st > 0 {
		run.residual = budget - time.Duration(steps)*st
	}
	job.Advance(steps)
	a.setDeviceLoad(run, 0.95, job.Spec.GPUMemMiB)

	if job.Done() {
		a.finishJob(run, db.JobCompleted, now)
		return
	}
	if run.ckptEvery > 0 && now.Sub(run.lastCkpt) >= run.ckptEvery {
		if _, err := a.captureCheckpoint(run, true); err != nil {
			// Checkpoint failures must not kill the job; surface via bus.
			a.bus.Publish(eventbus.Event{
				Type: eventbus.JobFailed, Time: now, Node: a.cfg.MachineID,
				Job: run.jobID, Detail: map[string]any{"checkpoint_error": err.Error()},
			})
		}
	}
}

func (a *Agent) tickSession(run *jobRun, now time.Time) {
	a.setDeviceLoad(run, 0.3, 0)
	if !now.Before(run.sessionEnds) {
		a.finishJob(run, db.JobCompleted, now)
	}
}

func (a *Agent) setDeviceLoad(run *jobRun, util float64, memMiB int64) {
	if run.deviceID == "" {
		return
	}
	if dev, err := a.runtime.Inventory().Device(run.deviceID); err == nil {
		dev.SetUtilization(util)
		if memMiB > 0 {
			dev.SetUsedMemory(memMiB)
		}
	}
}

// finishJob stops the container, forgets the run and notifies upstream.
func (a *Agent) finishJob(run *jobRun, state db.JobState, now time.Time) {
	a.mu.Lock()
	delete(a.jobs, run.jobID)
	a.mu.Unlock()
	_ = a.runtime.Stop(run.containerID, 0, now)
	var step int64
	if run.training != nil {
		step = run.training.Step()
	}
	a.bus.Publish(eventbus.Event{
		Type: eventbus.JobCompleted, Time: now,
		Node: a.cfg.MachineID, Job: run.jobID, Container: run.containerID,
	})
	a.notifier().JobUpdate(a.cfg.MachineID, run.jobID, state, step)
}

// RunningJob returns the live training job object (tests, telemetry).
func (a *Agent) RunningJob(jobID string) (*workload.Job, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	run, ok := a.jobs[jobID]
	if !ok || run.training == nil {
		return nil, false
	}
	return run.training, true
}
