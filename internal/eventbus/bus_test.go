package eventbus

import (
	"sync"
	"testing"
	"time"
)

func ev(t Type, job string) Event {
	return Event{Type: t, Time: time.Unix(0, 0), Job: job}
}

func TestPublishDeliversToSubscriber(t *testing.T) {
	b := New(0)
	sub := b.Subscribe(8)
	defer sub.Close()
	b.Publish(ev(JobSubmitted, "j1"))
	select {
	case got := <-sub.Events():
		if got.Type != JobSubmitted || got.Job != "j1" {
			t.Fatalf("got %+v", got)
		}
	default:
		t.Fatal("no event delivered")
	}
}

func TestTypeFilteredSubscription(t *testing.T) {
	b := New(0)
	sub := b.Subscribe(8, JobCompleted)
	defer sub.Close()
	b.Publish(ev(JobSubmitted, "j1"))
	b.Publish(ev(JobCompleted, "j2"))
	select {
	case got := <-sub.Events():
		if got.Type != JobCompleted {
			t.Fatalf("filtered sub got %v", got.Type)
		}
	default:
		t.Fatal("no event delivered")
	}
	select {
	case got := <-sub.Events():
		t.Fatalf("unexpected extra event %v", got.Type)
	default:
	}
}

func TestSubscribeFuncSynchronous(t *testing.T) {
	b := New(0)
	var calls []string
	b.SubscribeFunc(func(e Event) { calls = append(calls, e.Job) }, JobStarted)
	b.Publish(ev(JobStarted, "a"))
	b.Publish(ev(JobFailed, "b")) // filtered out
	b.Publish(ev(JobStarted, "c"))
	if len(calls) != 2 || calls[0] != "a" || calls[1] != "c" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestSubscribeFuncAllTypes(t *testing.T) {
	b := New(0)
	n := 0
	b.SubscribeFunc(func(Event) { n++ })
	b.Publish(ev(JobStarted, "a"))
	b.Publish(ev(NodeDeparted, ""))
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

func TestFullBufferDropsOldest(t *testing.T) {
	b := New(0)
	sub := b.Subscribe(2)
	defer sub.Close()
	b.Publish(ev(JobStarted, "1"))
	b.Publish(ev(JobStarted, "2"))
	b.Publish(ev(JobStarted, "3")) // drops "1"
	if sub.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", sub.Dropped())
	}
	got := (<-sub.Events()).Job
	if got != "2" {
		t.Fatalf("first queued = %q, want 2 (oldest dropped)", got)
	}
}

func TestPublishNeverBlocks(t *testing.T) {
	b := New(0)
	_ = b.Subscribe(1) // never drained
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			b.Publish(ev(JobStarted, "x"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a full, undrained subscriber")
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	b := New(0)
	sub := b.Subscribe(8)
	sub.Close()
	b.Publish(ev(JobStarted, "x"))
	if _, ok := <-sub.Events(); ok {
		t.Fatal("received event on closed subscription")
	}
}

func TestCloseIdempotent(t *testing.T) {
	b := New(0)
	sub := b.Subscribe(8)
	sub.Close()
	sub.Close() // must not panic
}

func TestHistoryRetention(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Publish(ev(JobStarted, string(rune('a'+i))))
	}
	h := b.History()
	if len(h) != 3 {
		t.Fatalf("history len = %d, want 3", len(h))
	}
	if h[0].Job != "c" || h[2].Job != "e" {
		t.Fatalf("history = %v", h)
	}
}

func TestHistoryByType(t *testing.T) {
	b := New(10)
	b.Publish(ev(JobStarted, "a"))
	b.Publish(ev(JobFailed, "b"))
	b.Publish(ev(JobStarted, "c"))
	got := b.HistoryByType(JobStarted)
	if len(got) != 2 || got[0].Job != "a" || got[1].Job != "c" {
		t.Fatalf("HistoryByType = %v", got)
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New(100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Publish(ev(JobStarted, "x"))
			}
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := b.Subscribe(16)
			for j := 0; j < 10; j++ {
				select {
				case <-sub.Events():
				case <-time.After(100 * time.Millisecond):
				}
			}
			sub.Close()
		}()
	}
	wg.Wait()
}

func TestDefaultBufferApplied(t *testing.T) {
	b := New(0)
	sub := b.Subscribe(0)
	defer sub.Close()
	for i := 0; i < 64; i++ {
		b.Publish(ev(JobStarted, "x"))
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d within default buffer", sub.Dropped())
	}
}
