// Package eventbus provides a small in-process publish/subscribe bus used
// to propagate lifecycle and monitoring events between GPUnion components
// (agent, scheduler, migration engine, metric collectors).
//
// The bus is intentionally synchronous-by-default with buffered
// subscriber queues: publishers never block on slow subscribers, and
// subscribers that fall behind drop the oldest events rather than stall
// the platform — matching GPUnion's principle that monitoring must never
// interfere with workload execution.
package eventbus

import (
	"sync"
	"time"
)

// Type identifies a class of event flowing through the bus.
type Type string

// Event types emitted by the platform. Components may define additional
// ad-hoc types; these cover the lifecycle events the monitoring system
// persists.
const (
	NodeRegistered  Type = "node.registered"
	NodeDeparted    Type = "node.departed"
	NodePaused      Type = "node.paused"
	NodeResumed     Type = "node.resumed"
	NodeUnreachable Type = "node.unreachable"
	NodeReturned    Type = "node.returned"

	JobSubmitted    Type = "job.submitted"
	JobScheduled    Type = "job.scheduled"
	JobStarted      Type = "job.started"
	JobCheckpoint   Type = "job.checkpointed"
	JobMigrated     Type = "job.migrated"
	JobCompleted    Type = "job.completed"
	JobFailed       Type = "job.failed"
	JobRequeued     Type = "job.requeued"
	JobKilled       Type = "job.killed"
	JobMigratedBack Type = "job.migrated_back"

	ContainerCreated Type = "container.created"
	ContainerExited  Type = "container.exited"

	KillSwitch Type = "provider.killswitch"

	// Leadership transitions of a replicated coordinator.
	LeaderElected Type = "leader.elected"
	LeaderDeposed Type = "leader.deposed"
)

// Event is a single occurrence on the bus.
type Event struct {
	Type Type
	// Time is the (possibly simulated) time at which the event occurred.
	Time time.Time
	// Node, Job and Container identify the subjects, when applicable.
	Node      string
	Job       string
	Container string
	// Detail carries free-form, event-specific payload.
	Detail map[string]any
}

// Handler receives events. Handlers registered with SubscribeFunc run
// synchronously on the publisher's goroutine and must be fast.
type Handler func(Event)

// Subscription is a buffered event feed returned by Subscribe.
type Subscription struct {
	bus     *Bus
	ch      chan Event
	types   map[Type]bool // nil means all types
	dropped int
	mu      sync.Mutex
	closed  bool
}

// Events returns the subscriber's event channel.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events were discarded because the subscriber's
// buffer was full.
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close removes the subscription from the bus and closes its channel.
func (s *Subscription) Close() {
	s.bus.unsubscribe(s)
}

// Bus is a concurrency-safe publish/subscribe hub. The zero value is not
// usable; call New.
type Bus struct {
	mu       sync.RWMutex
	subs     map[*Subscription]struct{}
	handlers []subscribedHandler
	history  []Event
	keep     int
}

type subscribedHandler struct {
	types map[Type]bool
	fn    Handler
}

// New creates a Bus that retains the most recent keepHistory events for
// inspection (0 disables history).
func New(keepHistory int) *Bus {
	return &Bus{
		subs: make(map[*Subscription]struct{}),
		keep: keepHistory,
	}
}

// Subscribe returns a buffered subscription. If types is empty the
// subscription receives every event; otherwise only the listed types.
func (b *Bus) Subscribe(buffer int, types ...Type) *Subscription {
	if buffer <= 0 {
		buffer = 64
	}
	sub := &Subscription{
		bus: b,
		ch:  make(chan Event, buffer),
	}
	if len(types) > 0 {
		sub.types = make(map[Type]bool, len(types))
		for _, t := range types {
			sub.types[t] = true
		}
	}
	b.mu.Lock()
	b.subs[sub] = struct{}{}
	b.mu.Unlock()
	return sub
}

// SubscribeFunc registers a synchronous handler for the given types (all
// types if empty). Handlers cannot be unregistered; they are intended for
// component wiring at construction time.
func (b *Bus) SubscribeFunc(fn Handler, types ...Type) {
	h := subscribedHandler{fn: fn}
	if len(types) > 0 {
		h.types = make(map[Type]bool, len(types))
		for _, t := range types {
			h.types[t] = true
		}
	}
	b.mu.Lock()
	b.handlers = append(b.handlers, h)
	b.mu.Unlock()
}

// Publish delivers ev to all matching subscribers and handlers. Buffered
// subscribers whose queues are full drop the oldest queued event to make
// room, so Publish never blocks.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	if b.keep > 0 {
		b.history = append(b.history, ev)
		if len(b.history) > b.keep {
			b.history = b.history[len(b.history)-b.keep:]
		}
	}
	handlers := b.handlers
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()

	for _, h := range handlers {
		if h.types == nil || h.types[ev.Type] {
			h.fn(ev)
		}
	}
	for _, s := range subs {
		if s.types != nil && !s.types[ev.Type] {
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		select {
		case s.ch <- ev:
		default:
			// Drop the oldest event to make room for the newest.
			select {
			case <-s.ch:
				s.dropped++
			default:
			}
			select {
			case s.ch <- ev:
			default:
				s.dropped++
			}
		}
		s.mu.Unlock()
	}
}

// History returns a copy of the retained event history, oldest first.
func (b *Bus) History() []Event {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]Event, len(b.history))
	copy(out, b.history)
	return out
}

// HistoryByType returns retained events of the given type, oldest first.
func (b *Bus) HistoryByType(t Type) []Event {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Event
	for _, ev := range b.history {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	_, ok := b.subs[s]
	delete(b.subs, s)
	b.mu.Unlock()
	if ok {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
		s.mu.Unlock()
	}
}
