package scheduler

import (
	"encoding/json"
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/monitor"
)

// NodePool is the scheduler's incremental view of schedulable capacity:
// every registered node's latest record, the free devices it offers,
// and a reliability score memoized per node generation. It subscribes
// to the store's typed-mutation stream (db.Store.AddMutationObserver):
// each MutNodePut invalidates exactly the node it touches, so a batch
// cycle reuses the cached candidate entries instead of re-copying every
// NodeRecord — GPU slices included — from the store.
//
// The pool is derived state, like the store's own indexes: it emits
// nothing to the WAL, and after recovery (ImportState does not flow
// through the mutation stream) it must be rebuilt with Reset. Audit
// verifies pool ↔ store equivalence; the chaos harness runs it at
// every audit point.
type NodePool struct {
	model ReliabilityModel

	mu    sync.Mutex
	nodes map[string]*poolNode
	ids   []string // sorted node IDs, so snapshots are deterministic
	// entries is the assembled candidate set served to PlaceBatchPooled;
	// nil after any invalidation.
	entries []poolEntry
	dirty   bool
	gen     uint64
	// hits / misses count snapshot calls served from the cached entry
	// set vs rebuilds forced by an invalidation — the cache-efficiency
	// numbers PoolStats exposes to the metrics layer.
	hits   uint64
	misses uint64
}

// PoolStats is a point-in-time read of the pool cache's effectiveness.
type PoolStats struct {
	// Hits counts batch cycles served from the cached candidate set;
	// Misses counts cycles that had to rebuild it.
	Hits, Misses uint64
}

// poolNode caches one node's after-image and its memoized prediction.
type poolNode struct {
	rec   *db.NodeRecord // immutable (store records are copy-on-write)
	lsn   uint64         // generation: LSN of the installing mutation
	rel   float64
	relOK bool
}

// NewNodePool creates a pool sharing this scheduler's reliability
// model, so memoized scores match what Schedule would compute.
func (s *Scheduler) NewNodePool() *NodePool {
	return &NodePool{model: s.model, nodes: make(map[string]*poolNode), dirty: true}
}

// Observe is the db.MutationHook feed. Node after-images replace the
// cached entry when they are newer (the LSN guard resolves hook
// deliveries racing across shards); coalesced beat records advance the
// cached images' heartbeat timestamps in place; everything else is
// ignored.
func (p *NodePool) Observe(m db.Mutation) {
	if m.Type == db.MutBeat {
		p.observeBeats(m)
		return
	}
	if m.Type == db.MutNodeHealth {
		p.observeHealth(m)
		return
	}
	if m.Type != db.MutNodePut || m.Node == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pn := p.nodes[m.Node.ID]
	switch {
	case pn == nil:
		p.nodes[m.Node.ID] = &poolNode{rec: m.Node, lsn: m.LSN}
		i := sort.SearchStrings(p.ids, m.Node.ID)
		p.ids = append(p.ids, "")
		copy(p.ids[i+1:], p.ids[i:])
		p.ids[i] = m.Node.ID
	case m.LSN > pn.lsn:
		pn.rec, pn.lsn, pn.relOK = m.Node, m.LSN, false
	default:
		return // stale delivery: a newer image is already cached
	}
	p.dirty = true
	p.gen++
}

// observeBeats applies one coalesced MutBeat record: every delta whose
// LSN beats the cached generation installs a fresh after-image with
// only LastHeartbeat advanced. Deltas for nodes the pool has never seen
// are dropped — the missing MutNodePut that registers the node carries
// the full image and a newer LSN, so nothing is lost.
func (p *NodePool) observeBeats(m db.Mutation) {
	p.mu.Lock()
	defer p.mu.Unlock()
	changed := false
	for _, b := range m.Beats {
		pn := p.nodes[b.NodeID]
		if pn == nil || m.LSN <= pn.lsn || !b.At.After(pn.rec.LastHeartbeat) {
			continue
		}
		cp := *pn.rec
		cp.GPUs = slices.Clone(cp.GPUs)
		cp.LastHeartbeat = b.At
		pn.rec, pn.lsn, pn.relOK = &cp, m.LSN, false
		changed = true
	}
	if changed {
		p.dirty = true
		p.gen++
	}
}

// observeHealth applies one MutNodeHealth fold: like observeBeats it
// installs a fresh after-image with only the health fields advanced,
// forward-only on HealthAt, and invalidates the memoized reliability
// (the prediction consumes the health score, so a fold always changes
// it). Folds for nodes the pool has never seen are dropped — the
// registering MutNodePut carries the full image.
func (p *NodePool) observeHealth(m db.Mutation) {
	h := m.Health
	if h == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pn := p.nodes[h.NodeID]
	if pn == nil || m.LSN <= pn.lsn || !h.At.After(pn.rec.HealthAt) {
		return
	}
	cp := *pn.rec
	cp.GPUs = slices.Clone(cp.GPUs)
	cp.Health, cp.HealthAt = h.Score, h.At
	pn.rec, pn.lsn, pn.relOK = &cp, m.LSN, false
	p.dirty = true
	p.gen++
}

// Reset rebuilds the pool from a full store scan — the recovery path
// (ImportState bypasses the mutation stream) and the initial fill. The
// pool lock is held across the watermark read and the scan: a
// concurrent mutation is either delivered after the rebuild (its LSN
// exceeds the watermark read under the lock, so the guard applies it)
// or its commit preceded the scan, whose per-shard reads then contain
// it. Observe deliveries cannot interleave with the scan itself, so a
// rebuild can never bury a fresher entry under a stale copy.
func (p *NodePool) Reset(store db.Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wm := store.CurrentLSN()
	recs := store.ListNodes()
	p.nodes = make(map[string]*poolNode, len(recs))
	p.ids = p.ids[:0]
	for i := range recs {
		rec := &recs[i]
		p.nodes[rec.ID] = &poolNode{rec: rec, lsn: wm}
		p.ids = append(p.ids, rec.ID)
	}
	p.dirty = true
	p.gen++
}

// Stats reports cumulative snapshot cache hits and misses.
func (p *NodePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Hits: p.hits, Misses: p.misses}
}

// Generation counts invalidations (diagnostics and tests).
func (p *NodePool) Generation() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen
}

// snapshot returns the current candidate entries, rebuilding them only
// if a mutation invalidated the cache since the last batch. The
// returned slice is immutable — a later rebuild installs a fresh one —
// so callers may keep using it after the lock drops. Reliability is
// recomputed only for nodes whose record changed; the memoized score
// keeps the `now` of its node's last invalidation, which is the
// per-node-generation staleness PlaceBatchPooled accepts.
func (p *NodePool) snapshot(now time.Time) []poolEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.dirty {
		p.hits++
		return p.entries
	}
	p.misses++
	entries := make([]poolEntry, 0, len(p.entries))
	for _, id := range p.ids {
		pn := p.nodes[id]
		if pn.rec.Status != db.NodeActive {
			continue
		}
		if pn.rec.HealthScore() < monitor.UnhealthyBelow {
			continue // being drained; see Scheduler.buildPool
		}
		if !pn.relOK {
			pn.rel = p.model.Predict(*pn.rec, now)
			pn.relOK = true
		}
		for j := range pn.rec.GPUs {
			if pn.rec.GPUs[j].Allocated {
				continue
			}
			entries = append(entries, poolEntry{node: pn.rec, device: &pn.rec.GPUs[j], reliability: pn.rel})
		}
	}
	p.entries = entries
	p.dirty = false
	return entries
}

// Audit compares the pool's cached records against a fresh store scan
// and returns the discrepancies. Call it at a quiescent point: the pool
// is maintained outside the store's shard locks, so mid-mutation reads
// are transiently behind by design.
func (p *NodePool) Audit(store db.Store) []string {
	truth := store.ListNodes()
	p.mu.Lock()
	defer p.mu.Unlock()
	var probs []string
	seen := make(map[string]bool, len(truth))
	for i := range truth {
		rec := &truth[i]
		seen[rec.ID] = true
		pn := p.nodes[rec.ID]
		if pn == nil {
			probs = append(probs, fmt.Sprintf("node %s registered but not cached", rec.ID))
			continue
		}
		want, err1 := json.Marshal(rec)
		got, err2 := json.Marshal(pn.rec)
		if err1 != nil || err2 != nil {
			probs = append(probs, fmt.Sprintf("node %s failed to encode: %v / %v", rec.ID, err1, err2))
			continue
		}
		if string(want) != string(got) {
			probs = append(probs, fmt.Sprintf("node %s cached image diverges from store", rec.ID))
		}
	}
	for id := range p.nodes {
		if !seen[id] {
			probs = append(probs, fmt.Sprintf("node %s cached but not in store", id))
		}
	}
	return probs
}
