package scheduler

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
)

var now = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

func nodeWith(id string, status db.NodeStatus, gpus ...db.GPUInfo) db.NodeRecord {
	return db.NodeRecord{
		ID: id, Status: status, GPUs: gpus,
		RegisteredAt: now.Add(-24 * time.Hour),
		LastJoin:     now.Add(-24 * time.Hour),
		TotalUptime:  0,
	}
}

func dev(id string, memMiB int64, major, minor int, allocated bool) db.GPUInfo {
	return db.GPUInfo{DeviceID: id, Model: "test", MemoryMiB: memMiB,
		CapabilityMajor: major, CapabilityMinor: minor, Allocated: allocated}
}

func req(job string, mem int64) Request {
	return Request{JobID: job, GPUMemMiB: mem, Capability: gpu.ComputeCapability{Major: 7, Minor: 0}}
}

func TestScheduleBasicPlacement(t *testing.T) {
	s := New(nil, DefaultReliability())
	nodes := []db.NodeRecord{
		nodeWith("n1", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
	}
	p, err := s.Schedule(req("j1", 8000), nodes, now)
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeID != "n1" || p.DeviceID != "gpu0" || p.JobID != "j1" {
		t.Fatalf("placement = %+v", p)
	}
	if p.Reliability <= 0 || p.Reliability > 1 {
		t.Fatalf("reliability = %v", p.Reliability)
	}
}

func TestScheduleSkipsInactiveNodes(t *testing.T) {
	s := New(nil, DefaultReliability())
	nodes := []db.NodeRecord{
		nodeWith("n1", db.NodePaused, dev("gpu0", 24576, 8, 6, false)),
		nodeWith("n2", db.NodeDeparted, dev("gpu0", 24576, 8, 6, false)),
		nodeWith("n3", db.NodeUnreachable, dev("gpu0", 24576, 8, 6, false)),
	}
	if _, err := s.Schedule(req("j1", 8000), nodes, now); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("err = %v, want ErrNoPlacement", err)
	}
}

func TestScheduleSkipsAllocatedDevices(t *testing.T) {
	s := New(nil, DefaultReliability())
	nodes := []db.NodeRecord{
		nodeWith("n1", db.NodeActive,
			dev("gpu0", 24576, 8, 6, true),
			dev("gpu1", 24576, 8, 6, false)),
	}
	p, err := s.Schedule(req("j1", 8000), nodes, now)
	if err != nil || p.DeviceID != "gpu1" {
		t.Fatalf("placement = %+v, %v", p, err)
	}
}

func TestScheduleMemoryConstraint(t *testing.T) {
	s := New(nil, DefaultReliability())
	nodes := []db.NodeRecord{
		nodeWith("n1", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
		nodeWith("n2", db.NodeActive, dev("gpu0", 81920, 8, 0, false)),
	}
	p, err := s.Schedule(req("j1", 40000), nodes, now)
	if err != nil || p.NodeID != "n2" {
		t.Fatalf("placement = %+v, %v (40 GB must land on the A100 node)", p, err)
	}
}

func TestScheduleCapabilityConstraint(t *testing.T) {
	s := New(nil, DefaultReliability())
	nodes := []db.NodeRecord{
		nodeWith("n1", db.NodeActive, dev("gpu0", 81920, 8, 0, false)),
	}
	r := req("j1", 8000)
	r.Capability = gpu.ComputeCapability{Major: 8, Minor: 6}
	if _, err := s.Schedule(r, nodes, now); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("err = %v, want ErrNoPlacement (A100 is cc 8.0)", err)
	}
}

func TestScheduleAvoidNodes(t *testing.T) {
	s := New(nil, DefaultReliability())
	nodes := []db.NodeRecord{
		nodeWith("n1", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
		nodeWith("n2", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
	}
	r := req("j1", 8000)
	r.AvoidNodes = []string{"n1"}
	p, err := s.Schedule(r, nodes, now)
	if err != nil || p.NodeID != "n2" {
		t.Fatalf("placement = %+v, %v", p, err)
	}
}

func TestSchedulePreferNodeWins(t *testing.T) {
	s := New(nil, DefaultReliability())
	nodes := []db.NodeRecord{
		nodeWith("n1", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
		nodeWith("n2", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
		nodeWith("n3", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
	}
	r := req("j1", 8000)
	r.PreferNode = "n3"
	p, err := s.Schedule(r, nodes, now)
	if err != nil || p.NodeID != "n3" {
		t.Fatalf("placement = %+v, %v (migrate-back preference ignored)", p, err)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	s := New(&RoundRobin{}, DefaultReliability())
	nodes := []db.NodeRecord{
		nodeWith("n1", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
		nodeWith("n2", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
		nodeWith("n3", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
	}
	var got []string
	for i := 0; i < 6; i++ {
		p, err := s.Schedule(req("j", 8000), nodes, now)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p.NodeID)
	}
	want := []string{"n1", "n2", "n3", "n1", "n2", "n3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
}

func TestBestFitPicksSmallestDevice(t *testing.T) {
	s := New(BestFit{}, DefaultReliability())
	nodes := []db.NodeRecord{
		nodeWith("n1", db.NodeActive, dev("gpu0", 81920, 8, 0, false)),
		nodeWith("n2", db.NodeActive, dev("gpu0", 24576, 8, 6, false)),
		nodeWith("n3", db.NodeActive, dev("gpu0", 49152, 8, 6, false)),
	}
	p, err := s.Schedule(req("j1", 8000), nodes, now)
	if err != nil || p.NodeID != "n2" {
		t.Fatalf("best-fit chose %+v, want the 24 GiB device", p)
	}
}

func TestLeastLoadedSpreads(t *testing.T) {
	s := New(LeastLoaded{}, DefaultReliability())
	nodes := []db.NodeRecord{
		nodeWith("n1", db.NodeActive,
			dev("gpu0", 24576, 8, 6, true), dev("gpu1", 24576, 8, 6, false)),
		nodeWith("n2", db.NodeActive,
			dev("gpu0", 24576, 8, 6, false), dev("gpu1", 24576, 8, 6, false)),
	}
	p, err := s.Schedule(req("j1", 8000), nodes, now)
	if err != nil || p.NodeID != "n2" {
		t.Fatalf("least-loaded chose %+v, want n2 (2 free)", p)
	}
}

func TestReliabilityPredictDecaysWithDepartures(t *testing.T) {
	m := DefaultReliability()
	fresh := nodeWith("n1", db.NodeActive)
	flaky := fresh
	flaky.Departures = 5
	if m.Predict(fresh, now) <= m.Predict(flaky, now) {
		t.Fatal("departures did not depress reliability")
	}
	if got := m.Predict(fresh, now); got <= 0 || got > 1 {
		t.Fatalf("fresh score = %v", got)
	}
}

func TestReliabilityNeverZero(t *testing.T) {
	m := DefaultReliability()
	n := nodeWith("n1", db.NodeActive)
	n.Departures = 1000
	if got := m.Predict(n, now); got <= 0 {
		t.Fatalf("score = %v, must stay positive", got)
	}
}

func TestDegradationPushesUnreliableBack(t *testing.T) {
	s := New(BestFit{}, DefaultReliability())
	reliable := nodeWith("n-reliable", db.NodeActive, dev("gpu0", 24576, 8, 6, false))
	flaky := nodeWith("n-flaky", db.NodeActive, dev("gpu0", 24576, 8, 6, false))
	flaky.Departures = 10 // score ≈ 0.85^10 ≈ 0.20 < 0.5
	nodes := []db.NodeRecord{flaky, reliable}

	r := req("j1", 8000)
	r.LongRunning = true
	p, err := s.Schedule(r, nodes, now)
	if err != nil || p.NodeID != "n-reliable" {
		t.Fatalf("long-running job landed on %+v, want the reliable node", p)
	}

	// Short job: strategy order alone applies (alphabetical tie-break →
	// the flaky node is eligible and chosen by name).
	p2, err := s.Schedule(req("j2", 8000), nodes, now)
	if err != nil || p2.NodeID != "n-flaky" {
		t.Fatalf("short job placement = %+v", p2)
	}
}

func TestFlakyNodeStillUsedWhenAlone(t *testing.T) {
	s := New(nil, DefaultReliability())
	flaky := nodeWith("n1", db.NodeActive, dev("gpu0", 24576, 8, 6, false))
	flaky.Departures = 20
	r := req("j1", 8000)
	r.LongRunning = true
	p, err := s.Schedule(r, []db.NodeRecord{flaky}, now)
	if err != nil || p.NodeID != "n1" {
		t.Fatalf("degraded-only placement = %+v, %v (degrade must not exclude)", p, err)
	}
}

func TestStrategyNames(t *testing.T) {
	if (&RoundRobin{}).Name() != "round-robin" ||
		(BestFit{}).Name() != "best-fit" ||
		(LeastLoaded{}).Name() != "least-loaded" {
		t.Fatal("strategy names wrong")
	}
	if New(nil, DefaultReliability()).StrategyName() != "round-robin" {
		t.Fatal("default strategy should be round-robin")
	}
}

// Property: any returned placement satisfies the request's constraints.
func TestPlacementSatisfiesConstraintsProperty(t *testing.T) {
	f := func(memRaw uint16, major, minor uint8, alloc0, alloc1 bool) bool {
		mem := int64(memRaw) * 4
		cap := gpu.ComputeCapability{Major: int(major % 10), Minor: int(minor % 10)}
		nodes := []db.NodeRecord{
			nodeWith("n1", db.NodeActive,
				dev("gpu0", 24576, 8, 6, alloc0),
				dev("gpu1", 81920, 8, 0, alloc1)),
		}
		r := Request{JobID: "p", GPUMemMiB: mem, Capability: cap}
		p, err := New(nil, DefaultReliability()).Schedule(r, nodes, now)
		if err != nil {
			return true // no placement is always acceptable
		}
		for _, n := range nodes {
			if n.ID != p.NodeID {
				continue
			}
			for _, d := range n.GPUs {
				if d.DeviceID != p.DeviceID {
					continue
				}
				devCap := gpu.ComputeCapability{Major: d.CapabilityMajor, Minor: d.CapabilityMinor}
				return !d.Allocated && d.MemoryMiB >= mem && devCap.AtLeast(cap)
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: reliability is monotone non-increasing in departures.
func TestReliabilityMonotoneProperty(t *testing.T) {
	m := DefaultReliability()
	f := func(d1, d2 uint8) bool {
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		a := nodeWith("n", db.NodeActive)
		a.Departures = int(d1)
		b := a
		b.Departures = int(d2)
		return m.Predict(a, now) >= m.Predict(b, now)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
