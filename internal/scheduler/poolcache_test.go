package scheduler

import (
	"fmt"
	"testing"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
)

// poolStore seeds a sharded store with n single-GPU nodes.
func poolStore(t *testing.T, n int) *db.DB {
	t.Helper()
	store := db.New(0)
	for i := 0; i < n; i++ {
		store.UpsertNode(db.NodeRecord{
			ID: fmt.Sprintf("n%02d", i), Status: db.NodeActive,
			GPUs:         []db.GPUInfo{{DeviceID: "gpu0", MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
			RegisteredAt: now.Add(-24 * time.Hour),
		})
	}
	return store
}

// TestNodePoolTracksStore: with the observer attached, the pool stays
// byte-equivalent to the store through upserts, updates and device
// flips, without any Reset.
func TestNodePoolTracksStore(t *testing.T) {
	store := poolStore(t, 6)
	s := New(nil, DefaultReliability())
	pool := s.NewNodePool()
	cancel := store.AddMutationObserver(pool.Observe)
	defer cancel()
	pool.Reset(store)

	if probs := pool.Audit(store); len(probs) != 0 {
		t.Fatalf("pool dirty after reset: %v", probs)
	}
	_ = store.UpdateNode("n02", func(n *db.NodeRecord) { n.GPUs[0].Allocated = true })
	_ = store.UpdateNode("n03", func(n *db.NodeRecord) { n.Status = db.NodePaused })
	store.UpsertNode(db.NodeRecord{
		ID: "n99", Status: db.NodeActive,
		GPUs: []db.GPUInfo{{DeviceID: "gpu0", MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
	})
	if probs := pool.Audit(store); len(probs) != 0 {
		t.Fatalf("pool lost a mutation: %v", probs)
	}

	// The allocated device and the paused node must have left the
	// candidate set; the new node must have joined it.
	entries := pool.snapshot(now)
	byNode := make(map[string]bool)
	for _, e := range entries {
		byNode[e.node.ID] = true
	}
	if byNode["n02"] || byNode["n03"] || !byNode["n99"] {
		t.Fatalf("candidate nodes = %v", byNode)
	}
}

// TestNodePoolDetectsDrift: without the observer feed the pool falls
// behind the store, and Audit must say so — the chaos harness's
// scheduler-pool-consistent rule depends on it.
func TestNodePoolDetectsDrift(t *testing.T) {
	store := poolStore(t, 3)
	s := New(nil, DefaultReliability())
	pool := s.NewNodePool()
	pool.Reset(store)
	if probs := pool.Audit(store); len(probs) != 0 {
		t.Fatalf("pool dirty after reset: %v", probs)
	}
	_ = store.UpdateNode("n01", func(n *db.NodeRecord) { n.Status = db.NodeDeparted })
	if probs := pool.Audit(store); len(probs) == 0 {
		t.Fatal("unobserved mutation went undetected")
	}
	// Reset is the recovery rule for derived state: it reconciles.
	pool.Reset(store)
	if probs := pool.Audit(store); len(probs) != 0 {
		t.Fatalf("pool dirty after reconciling reset: %v", probs)
	}
}

// TestNodePoolRebuildOnImport: ImportState bypasses the mutation
// stream; Reset (the coordinator's recovery rule) rebuilds the pool to
// match the imported image.
func TestNodePoolRebuildOnImport(t *testing.T) {
	store := poolStore(t, 4)
	s := New(nil, DefaultReliability())
	pool := s.NewNodePool()
	cancel := store.AddMutationObserver(pool.Observe)
	defer cancel()
	pool.Reset(store)

	st := store.ExportState()
	store2 := db.New(0)
	store2.ImportState(st)
	pool.Reset(store2)
	if probs := pool.Audit(store2); len(probs) != 0 {
		t.Fatalf("pool dirty after recovery reset: %v", probs)
	}
}

// TestPlaceBatchPooledMatchesPlaceBatch: the cached pool must yield the
// same placements as a fresh store scan, for every strategy.
func TestPlaceBatchPooledMatchesPlaceBatch(t *testing.T) {
	for _, strat := range []func() Strategy{
		func() Strategy { return &RoundRobin{} },
		func() Strategy { return BestFit{} },
		func() Strategy { return LeastLoaded{} },
	} {
		store := poolStore(t, 8)
		_ = store.UpdateNode("n04", func(n *db.NodeRecord) { n.GPUs[0].Allocated = true })

		pooled := New(strat(), DefaultReliability())
		pool := pooled.NewNodePool()
		cancel := store.AddMutationObserver(pool.Observe)
		pool.Reset(store)
		fresh := New(strat(), DefaultReliability())

		reqs := make([]Request, 5)
		for i := range reqs {
			reqs[i] = Request{JobID: fmt.Sprintf("j%d", i), GPUMemMiB: 8192,
				Capability: gpu.ComputeCapability{Major: 7, Minor: 0}}
		}
		got := pooled.PlaceBatchPooled(reqs, pool, now)
		want := fresh.PlaceBatch(reqs, store.ListNodes(), now)
		for i := range want {
			if (got[i].Err == nil) != (want[i].Err == nil) ||
				got[i].Placement.NodeID != want[i].Placement.NodeID ||
				got[i].Placement.DeviceID != want[i].Placement.DeviceID {
				t.Fatalf("%s member %d: pooled %+v vs fresh %+v",
					pooled.StrategyName(), i, got[i].Placement, want[i].Placement)
			}
		}
		cancel()
	}
}

// TestNodePoolSnapshotCaches: an unchanged pool serves the same entry
// slice without rebuilding; any mutation invalidates it.
func TestNodePoolSnapshotCaches(t *testing.T) {
	store := poolStore(t, 4)
	s := New(nil, DefaultReliability())
	pool := s.NewNodePool()
	cancel := store.AddMutationObserver(pool.Observe)
	defer cancel()
	pool.Reset(store)

	a := pool.snapshot(now)
	b := pool.snapshot(now)
	if &a[0] != &b[0] {
		t.Fatal("clean snapshot rebuilt the entry set")
	}
	gen := pool.Generation()
	_ = store.UpdateNode("n00", func(n *db.NodeRecord) { n.GPUs[0].Allocated = true })
	if pool.Generation() == gen {
		t.Fatal("mutation did not bump the pool generation")
	}
	c := pool.snapshot(now)
	if len(c) != len(a)-1 {
		t.Fatalf("entries after allocation = %d, want %d", len(c), len(a)-1)
	}
}
