package scheduler

import (
	"errors"
	"testing"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
)

var batchT0 = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

// batchNodes builds n active nodes with one free 24 GiB device each.
func batchNodes(ids ...string) []db.NodeRecord {
	var out []db.NodeRecord
	for _, id := range ids {
		out = append(out, db.NodeRecord{
			ID: id, Status: db.NodeActive,
			GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
				MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
			RegisteredAt: batchT0,
		})
	}
	return out
}

func batchReq(jobID string) Request {
	return Request{JobID: jobID, GPUMemMiB: 8192,
		Capability: gpu.ComputeCapability{Major: 7, Minor: 0}}
}

func TestPlaceBatchNoDoubleBooking(t *testing.T) {
	s := New(&RoundRobin{}, DefaultReliability())
	nodes := batchNodes("a", "b", "c")
	results := s.PlaceBatch([]Request{batchReq("j1"), batchReq("j2"), batchReq("j3")}, nodes, batchT0)
	used := make(map[string]bool)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		key := res.Placement.NodeID + "/" + res.Placement.DeviceID
		if used[key] {
			t.Fatalf("device %s double-booked within batch", key)
		}
		used[key] = true
	}
}

func TestPlaceBatchExhaustsCapacity(t *testing.T) {
	s := New(&RoundRobin{}, DefaultReliability())
	nodes := batchNodes("a", "b")
	results := s.PlaceBatch([]Request{batchReq("j1"), batchReq("j2"), batchReq("j3")}, nodes, batchT0)
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("first two should place: %v, %v", results[0].Err, results[1].Err)
	}
	if !errors.Is(results[2].Err, ErrNoPlacement) {
		t.Fatalf("third should fail with ErrNoPlacement, got %v", results[2].Err)
	}
}

// TestPlaceBatchPartialFailure: an infeasible member must not disturb
// the rest of the batch, and must hold no reservation.
func TestPlaceBatchPartialFailure(t *testing.T) {
	s := New(&RoundRobin{}, DefaultReliability())
	nodes := batchNodes("a", "b")
	huge := batchReq("j-huge")
	huge.GPUMemMiB = 1 << 30 // fits nowhere
	results := s.PlaceBatch([]Request{batchReq("j1"), huge, batchReq("j2")}, nodes, batchT0)
	if results[0].Err != nil {
		t.Fatalf("j1: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, ErrNoPlacement) {
		t.Fatalf("j-huge err = %v, want ErrNoPlacement", results[1].Err)
	}
	// j2 still gets the remaining device — the failed member reserved
	// nothing.
	if results[2].Err != nil {
		t.Fatalf("j2: %v", results[2].Err)
	}
	if results[2].Placement.NodeID == results[0].Placement.NodeID {
		t.Fatal("j2 landed on j1's device")
	}
}

func TestPlaceBatchHonorsAvoidNodes(t *testing.T) {
	s := New(&RoundRobin{}, DefaultReliability())
	nodes := batchNodes("a", "b", "c")
	r1 := batchReq("j1")
	r1.AvoidNodes = []string{"a", "b"}
	r2 := batchReq("j2")
	r2.AvoidNodes = []string{"c"}
	results := s.PlaceBatch([]Request{r1, r2}, nodes, batchT0)
	if results[0].Err != nil || results[0].Placement.NodeID != "c" {
		t.Fatalf("j1 placement = %+v, %v (want node c)", results[0].Placement, results[0].Err)
	}
	if results[1].Err != nil || results[1].Placement.NodeID == "c" {
		t.Fatalf("j2 placement = %+v, %v (must avoid c)", results[1].Placement, results[1].Err)
	}
}

func TestPlaceBatchHonorsPreferNode(t *testing.T) {
	s := New(&RoundRobin{}, DefaultReliability())
	nodes := batchNodes("a", "b", "c")
	r1 := batchReq("j1")
	r1.PreferNode = "b"
	r2 := batchReq("j2")
	r2.PreferNode = "b" // b is taken by j1: j2 must fall back, not fail
	results := s.PlaceBatch([]Request{r1, r2}, nodes, batchT0)
	if results[0].Err != nil || results[0].Placement.NodeID != "b" {
		t.Fatalf("j1 placement = %+v, %v (want preferred node b)", results[0].Placement, results[0].Err)
	}
	if results[1].Err != nil || results[1].Placement.NodeID == "b" {
		t.Fatalf("j2 placement = %+v, %v (b already reserved)", results[1].Placement, results[1].Err)
	}
}

// TestPlaceBatchRoundRobinSpreads: the rotation must advance across
// batch members exactly as it does across single placements.
func TestPlaceBatchRoundRobinSpreads(t *testing.T) {
	nodes := []db.NodeRecord{}
	for _, id := range []string{"a", "b", "c"} {
		n := batchNodes(id)[0]
		n.GPUs = append(n.GPUs, db.GPUInfo{DeviceID: "gpu1", Model: "RTX 3090",
			MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6})
		nodes = append(nodes, n)
	}
	s := New(&RoundRobin{}, DefaultReliability())
	results := s.PlaceBatch([]Request{batchReq("j1"), batchReq("j2"), batchReq("j3")}, nodes, batchT0)
	seen := make(map[string]int)
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		seen[res.Placement.NodeID]++
	}
	// Six free devices on three nodes: round-robin must touch all three
	// nodes before revisiting any.
	if len(seen) != 3 {
		t.Fatalf("round-robin batch used %d nodes (%v), want 3", len(seen), seen)
	}
}

// TestPlaceBatchMatchesSequentialSchedule: a batch over a static node
// view must produce the same placements as the same requests scheduled
// one at a time (with in-flight devices marked allocated between
// calls).
func TestPlaceBatchMatchesSequentialSchedule(t *testing.T) {
	mk := func() []db.NodeRecord { return batchNodes("a", "b", "c", "d") }
	reqs := []Request{batchReq("j1"), batchReq("j2"), batchReq("j3"), batchReq("j4")}

	batchS := New(&RoundRobin{}, DefaultReliability())
	batch := batchS.PlaceBatch(reqs, mk(), batchT0)

	seqS := New(&RoundRobin{}, DefaultReliability())
	nodes := mk()
	for i, req := range reqs {
		p, err := seqS.Schedule(req, nodes, batchT0)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Err != nil || batch[i].Placement != p {
			t.Fatalf("request %d: batch %+v (%v) != sequential %+v",
				i, batch[i].Placement, batch[i].Err, p)
		}
		for ni := range nodes {
			if nodes[ni].ID != p.NodeID {
				continue
			}
			for di := range nodes[ni].GPUs {
				if nodes[ni].GPUs[di].DeviceID == p.DeviceID {
					nodes[ni].GPUs[di].Allocated = true
				}
			}
		}
	}
}
