// Package scheduler implements GPUnion's central allocation logic
// (§3.2, §3.5): pending requests are drained from a priority queue and
// placed onto provider nodes by a pluggable strategy (round-robin for
// fairness, best-fit for memory packing, least-loaded for spreading),
// subject to GPU memory and CUDA compute-capability constraints and
// weighted by provider-reliability predictions.
//
// Unlike a data-center scheduler, node volatility is an input, not an
// error: unreliable providers are degraded (placed last), never excluded
// outright — a flaky GPU is still better than no GPU.
package scheduler

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/monitor"
)

// ErrNoPlacement is returned when no active node can satisfy a request.
var ErrNoPlacement = errors.New("scheduler: no node satisfies the request")

// Request is one pending resource request.
type Request struct {
	// JobID identifies the job being placed.
	JobID string
	// GPUMemMiB is the device-memory requirement.
	GPUMemMiB int64
	// Capability is the minimum CUDA compute capability.
	Capability gpu.ComputeCapability
	// Priority mirrors the queue priority (informational here; the
	// queue itself is ordered by the database).
	Priority int
	// LongRunning hints that the job will hold the device for many
	// hours, making provider reliability matter more.
	LongRunning bool
	// AvoidNodes lists nodes the job must not land on (e.g. the node it
	// is being migrated away from).
	AvoidNodes []string
	// PreferNode, when set, wins ties (used for migrate-back).
	PreferNode string
}

// Placement is a scheduling decision.
type Placement struct {
	JobID    string
	NodeID   string
	DeviceID string
	// Reliability is the predicted reliability of the chosen provider.
	Reliability float64
}

// candidate is one feasible (node, device) pair under consideration.
// It carries pointers into immutable pool records — ordering a
// candidate slice moves three words per swap, not whole NodeRecords.
type candidate struct {
	node        *db.NodeRecord
	device      *db.GPUInfo
	reliability float64
}

// ReliabilityModel predicts the probability that a provider stays
// available over the next scheduling horizon, from its history
// (§3.2: "incorporating provider reliability predictions").
type ReliabilityModel struct {
	// HalfLife controls how strongly departures depress the score: each
	// departure multiplies the score by HalfLife (0..1).
	HalfLife float64
	// UptimeWeight blends in the node's observed uptime ratio.
	UptimeWeight float64
}

// DefaultReliability returns the model used by the coordinator.
func DefaultReliability() ReliabilityModel {
	return ReliabilityModel{HalfLife: 0.85, UptimeWeight: 0.5}
}

// predictExpCap clamps the departure exponent: past it the score has
// long hit the positive floor, and larger exponents only buy denormals.
const predictExpCap = 64

// Predict scores a node in (0, 1]. New nodes with no history get the
// benefit of the doubt (1.0), matching the trust-first campus setting.
// The node's gray-failure health score multiplies straight in: a node
// that heartbeats perfectly but reports XID errors or throttling is
// predicted unreliable exactly as if its history said so, which is how
// degraded nodes stop winning placements without any new plumbing in
// the strategies.
func (m ReliabilityModel) Predict(n db.NodeRecord, now time.Time) float64 {
	score := 1.0
	if n.Departures > 0 {
		// Closed form of the per-departure decay — O(1) however flaky
		// the provider's history is.
		score = math.Pow(m.HalfLife, math.Min(float64(n.Departures), predictExpCap))
	}
	score *= n.HealthScore()
	if m.UptimeWeight > 0 && !n.RegisteredAt.IsZero() {
		lifetime := now.Sub(n.RegisteredAt)
		if lifetime > 0 {
			up := n.TotalUptime
			if n.Status == db.NodeActive && !n.LastJoin.IsZero() && now.After(n.LastJoin) {
				up += now.Sub(n.LastJoin)
			}
			ratio := float64(up) / float64(lifetime)
			if ratio > 1 {
				ratio = 1
			}
			// Blend keeps score ≤ the departure-only score.
			score = (1-m.UptimeWeight)*score + m.UptimeWeight*ratio*score
		}
	}
	if score <= 0 {
		score = 1e-6
	}
	return score
}

// Strategy orders feasible candidates; the scheduler picks the first.
type Strategy interface {
	// Name identifies the strategy for logging and metrics.
	Name() string
	// Order sorts candidates in decreasing preference, in place.
	Order(req Request, cands []candidate)
}

// RoundRobin cycles through nodes for fairness: each decision starts
// from the node after the previously chosen one (§3.5: "a round-robin
// scheduler which processes pending resource requests from a priority
// queue").
type RoundRobin struct {
	lastNode string
}

// Name implements Strategy.
func (*RoundRobin) Name() string { return "round-robin" }

// Order implements Strategy: node IDs are cycled starting after the last
// placement, with device index order within a node.
func (r *RoundRobin) Order(_ Request, cands []candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		ki := rrKey(cands[i].node.ID, r.lastNode)
		kj := rrKey(cands[j].node.ID, r.lastNode)
		if ki != kj {
			return ki < kj
		}
		if cands[i].node.ID != cands[j].node.ID {
			return cands[i].node.ID < cands[j].node.ID
		}
		return cands[i].device.DeviceID < cands[j].device.DeviceID
	})
}

// rrKey maps node IDs to a cyclic ordering: IDs strictly greater than
// last come first (0), the rest after (1).
func rrKey(id, last string) int {
	if last == "" || id > last {
		return 0
	}
	return 1
}

// note records the chosen node so the next decision rotates onward.
func (r *RoundRobin) note(nodeID string) { r.lastNode = nodeID }

// BestFit picks the smallest device that satisfies the request,
// preserving large-memory GPUs for large jobs.
type BestFit struct{}

// Name implements Strategy.
func (BestFit) Name() string { return "best-fit" }

// Order implements Strategy.
func (BestFit) Order(_ Request, cands []candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].device.MemoryMiB != cands[j].device.MemoryMiB {
			return cands[i].device.MemoryMiB < cands[j].device.MemoryMiB
		}
		if cands[i].node.ID != cands[j].node.ID {
			return cands[i].node.ID < cands[j].node.ID
		}
		return cands[i].device.DeviceID < cands[j].device.DeviceID
	})
}

// LeastLoaded spreads work across providers: nodes with more free
// devices come first (fair distribution across labs).
type LeastLoaded struct{}

// Name implements Strategy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Order implements Strategy.
func (LeastLoaded) Order(_ Request, cands []candidate) {
	free := make(map[string]int)
	for _, c := range cands {
		free[c.node.ID]++
	}
	sort.SliceStable(cands, func(i, j int) bool {
		fi, fj := free[cands[i].node.ID], free[cands[j].node.ID]
		if fi != fj {
			return fi > fj
		}
		if cands[i].node.ID != cands[j].node.ID {
			return cands[i].node.ID < cands[j].node.ID
		}
		return cands[i].device.DeviceID < cands[j].device.DeviceID
	})
}

// Scheduler combines a strategy with the reliability model. Decisions
// are serialized on an internal mutex: strategies carry rotation state
// and the scheduler reuses scratch buffers, so concurrent TrySchedule
// storms (heartbeat bursts) queue up instead of corrupting each other.
type Scheduler struct {
	strategy Strategy
	model    ReliabilityModel
	// DegradeBelow pushes providers scoring under this threshold to the
	// back of the preference order for long-running jobs.
	DegradeBelow float64

	mu sync.Mutex
	// scratch is the candidate buffer placeOne reuses across decisions.
	scratch []candidate
}

// New creates a scheduler. A nil strategy defaults to round-robin.
func New(strategy Strategy, model ReliabilityModel) *Scheduler {
	if strategy == nil {
		strategy = &RoundRobin{}
	}
	return &Scheduler{strategy: strategy, model: model, DegradeBelow: 0.5}
}

// StrategyName returns the active strategy's name.
func (s *Scheduler) StrategyName() string { return s.strategy.Name() }

// Schedule places one request against the current node set. Nodes must
// be NodeActive; devices must be free and satisfy memory/capability;
// avoid-listed nodes are excluded. Returns ErrNoPlacement when nothing
// fits.
func (s *Scheduler) Schedule(req Request, nodes []db.NodeRecord, now time.Time) (Placement, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pool := s.buildPool(nodes, now)
	return s.placeOne(req, pool, nil)
}

// BatchResult is one request's outcome within a batch cycle.
type BatchResult struct {
	Placement Placement
	Err       error
	// Latency is this decision's real cost: its filter/order/pick time
	// plus an equal share of the batch's one-time pool build. Callers
	// feed it to the scheduling-latency histogram so batching does not
	// flatten the tail.
	Latency time.Duration
}

// PlaceBatch drains up to len(reqs) pending requests in one cycle. The
// feasible pool (active nodes × free devices, with per-node reliability
// predictions) is built once for the whole batch instead of once per
// request — the §5.3 scheduling-throughput lever — and devices chosen
// for earlier batch members are reserved so later members cannot
// double-book them. Reservations live only in this call: committing a
// placement (and rolling it back when a launch fails) is the caller's
// job, so a failed member strands nothing.
func (s *Scheduler) PlaceBatch(reqs []Request, nodes []db.NodeRecord, now time.Time) []BatchResult {
	if len(reqs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	poolStart := time.Now()
	pool := s.buildPool(nodes, now)
	poolShare := time.Since(poolStart) / time.Duration(len(reqs))
	return s.placeBatch(reqs, pool, poolShare)
}

// PlaceBatchPooled is PlaceBatch against an incrementally maintained
// NodePool: instead of re-copying every NodeRecord from the store each
// cycle, the pool's cached entry set — invalidated per mutation, with
// reliability scores memoized per node generation — serves the whole
// batch. The pool-build share of each decision's latency collapses to
// the (usually cached) snapshot fetch.
func (s *Scheduler) PlaceBatchPooled(reqs []Request, pool *NodePool, now time.Time) []BatchResult {
	if len(reqs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	poolStart := time.Now()
	entries := pool.snapshot(now)
	poolShare := time.Since(poolStart) / time.Duration(len(reqs))
	return s.placeBatch(reqs, entries, poolShare)
}

// placeBatch drains the requests against one pool image; callers hold
// s.mu and have already amortized the pool cost into poolShare.
func (s *Scheduler) placeBatch(reqs []Request, pool []poolEntry, poolShare time.Duration) []BatchResult {
	reserved := make(map[deviceKey]bool, len(reqs))
	out := make([]BatchResult, len(reqs))
	for i, req := range reqs {
		start := time.Now()
		p, err := s.placeOne(req, pool, reserved)
		if err == nil {
			reserved[deviceKey{p.NodeID, p.DeviceID}] = true
		}
		out[i] = BatchResult{Placement: p, Err: err, Latency: time.Since(start) + poolShare}
	}
	return out
}

// deviceKey identifies one device for in-batch reservations.
type deviceKey struct {
	nodeID   string
	deviceID string
}

// poolEntry is one schedulable free device with its node's prediction.
// The pointers target records owned by the caller (buildPool) or the
// NodePool cache; both are immutable for the entry's lifetime.
type poolEntry struct {
	node        *db.NodeRecord
	device      *db.GPUInfo
	reliability float64
}

// buildPool collects every free device on every active node, scoring
// each node's reliability exactly once. Entries point into the caller's
// slice, which must stay untouched until the decision completes.
func (s *Scheduler) buildPool(nodes []db.NodeRecord, now time.Time) []poolEntry {
	var pool []poolEntry
	for i := range nodes {
		n := &nodes[i]
		if n.Status != db.NodeActive {
			continue
		}
		if n.HealthScore() < monitor.UnhealthyBelow {
			// Degraded past the drain threshold: the node is being
			// emptied predictively, so it must not win new placements
			// (the no-placement-on-unhealthy invariant). Unlike plain
			// unreliability — which only degrades ordering — this is a
			// hard exclusion.
			continue
		}
		rel := s.model.Predict(*n, now)
		for j := range n.GPUs {
			if n.GPUs[j].Allocated {
				continue
			}
			pool = append(pool, poolEntry{node: n, device: &n.GPUs[j], reliability: rel})
		}
	}
	return pool
}

// placeOne filters the pool against one request's constraints, orders
// the survivors and picks the winner. reserved (may be nil) excludes
// devices already claimed by earlier members of the same batch.
// Callers hold s.mu (the candidate buffer is shared scratch).
func (s *Scheduler) placeOne(req Request, pool []poolEntry, reserved map[deviceKey]bool) (Placement, error) {
	var avoid map[string]bool
	if len(req.AvoidNodes) > 0 {
		avoid = make(map[string]bool, len(req.AvoidNodes))
		for _, id := range req.AvoidNodes {
			avoid[id] = true
		}
	}
	cands := s.scratch[:0]
	for _, e := range pool {
		if avoid[e.node.ID] {
			continue
		}
		if reserved != nil && reserved[deviceKey{e.node.ID, e.device.DeviceID}] {
			continue
		}
		if e.device.MemoryMiB < req.GPUMemMiB {
			continue
		}
		cap := gpu.ComputeCapability{Major: e.device.CapabilityMajor, Minor: e.device.CapabilityMinor}
		if !cap.AtLeast(req.Capability) {
			continue
		}
		cands = append(cands, candidate{node: e.node, device: e.device, reliability: e.reliability})
	}
	s.scratch = cands[:0]
	if len(cands) == 0 {
		return Placement{}, fmt.Errorf("%w: job %s (mem %d MiB, cc >= %s)",
			ErrNoPlacement, req.JobID, req.GPUMemMiB, req.Capability)
	}

	s.strategy.Order(req, cands)

	// Migrate-back preference: the job's original node wins outright.
	if req.PreferNode != "" {
		sort.SliceStable(cands, func(i, j int) bool {
			pi := cands[i].node.ID == req.PreferNode
			pj := cands[j].node.ID == req.PreferNode
			return pi && !pj
		})
	}

	// Reliability degradation for long-running jobs: unreliable
	// providers sink to the back, but remain eligible.
	if req.LongRunning {
		sort.SliceStable(cands, func(i, j int) bool {
			di := cands[i].reliability < s.DegradeBelow
			dj := cands[j].reliability < s.DegradeBelow
			return !di && dj
		})
	}

	chosen := cands[0]
	if rr, ok := s.strategy.(*RoundRobin); ok {
		rr.note(chosen.node.ID)
	}
	return Placement{
		JobID:       req.JobID,
		NodeID:      chosen.node.ID,
		DeviceID:    chosen.device.DeviceID,
		Reliability: chosen.reliability,
	}, nil
}
