package scheduler

import (
	"errors"
	"testing"

	"gpunion/internal/db"
)

// TestPlaceBatchEdgeCases drives PlaceBatch through the degenerate
// shapes a chaotic fleet produces: empty and zero-capacity pools,
// batches deeper than capacity, duplicate job IDs in one cycle, and
// paused/exhausted nodes.
func TestPlaceBatchEdgeCases(t *testing.T) {
	busyNode := func(id string) db.NodeRecord {
		n := batchNodes(id)[0]
		n.GPUs[0].Allocated = true
		return n
	}
	pausedNode := func(id string) db.NodeRecord {
		n := batchNodes(id)[0]
		n.Status = db.NodePaused
		return n
	}

	cases := []struct {
		name  string
		reqs  []Request
		nodes []db.NodeRecord
		// wantPlaced[i] is whether request i must place; everything
		// else must fail with ErrNoPlacement.
		wantPlaced []bool
	}{
		{
			name:       "empty batch",
			reqs:       nil,
			nodes:      batchNodes("a"),
			wantPlaced: nil,
		},
		{
			name:       "no nodes at all",
			reqs:       []Request{batchReq("j1"), batchReq("j2")},
			nodes:      nil,
			wantPlaced: []bool{false, false},
		},
		{
			name:       "zero-capacity pool: every device allocated",
			reqs:       []Request{batchReq("j1"), batchReq("j2")},
			nodes:      []db.NodeRecord{busyNode("a"), busyNode("b")},
			wantPlaced: []bool{false, false},
		},
		{
			name:       "zero-capacity pool: nodes paused",
			reqs:       []Request{batchReq("j1")},
			nodes:      []db.NodeRecord{pausedNode("a"), pausedNode("b")},
			wantPlaced: []bool{false},
		},
		{
			name: "batch far larger than pool",
			reqs: []Request{batchReq("j1"), batchReq("j2"), batchReq("j3"),
				batchReq("j4"), batchReq("j5")},
			nodes:      batchNodes("a", "b"),
			wantPlaced: []bool{true, true, false, false, false},
		},
		{
			name:       "duplicate job IDs get distinct devices",
			reqs:       []Request{batchReq("dup"), batchReq("dup"), batchReq("dup")},
			nodes:      batchNodes("a", "b"),
			wantPlaced: []bool{true, true, false},
		},
		{
			name:       "mixed pool: paused and busy nodes excluded",
			reqs:       []Request{batchReq("j1"), batchReq("j2")},
			nodes:      []db.NodeRecord{pausedNode("a"), busyNode("b"), batchNodes("c")[0]},
			wantPlaced: []bool{true, false},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(&RoundRobin{}, DefaultReliability())
			results := s.PlaceBatch(tc.reqs, tc.nodes, batchT0)
			if len(results) != len(tc.reqs) {
				t.Fatalf("results = %d, want one per request (%d)", len(results), len(tc.reqs))
			}
			used := make(map[deviceKey]bool)
			for i, res := range results {
				if tc.wantPlaced[i] {
					if res.Err != nil {
						t.Fatalf("request %d should place: %v", i, res.Err)
					}
					key := deviceKey{res.Placement.NodeID, res.Placement.DeviceID}
					if used[key] {
						t.Fatalf("request %d double-booked %v", i, key)
					}
					used[key] = true
					for _, n := range tc.nodes {
						if n.ID == res.Placement.NodeID && n.Status != db.NodeActive {
							t.Fatalf("request %d placed on %s node %s", i, n.Status, n.ID)
						}
					}
				} else if !errors.Is(res.Err, ErrNoPlacement) {
					t.Fatalf("request %d: err = %v, want ErrNoPlacement", i, res.Err)
				}
			}
		})
	}
}

// TestPlaceBatchReservationRollback: reservations live only inside one
// PlaceBatch call. When the caller fails to commit (launch error), it
// simply does not mark the device allocated — and the next batch must
// be able to hand the same device out again. A leaked reservation
// would strand the device forever.
func TestPlaceBatchReservationRollback(t *testing.T) {
	s := New(&RoundRobin{}, DefaultReliability())
	nodes := batchNodes("a")

	first := s.PlaceBatch([]Request{batchReq("j1")}, nodes, batchT0)
	if first[0].Err != nil {
		t.Fatal(first[0].Err)
	}
	// Commit fails: the caller leaves the node view untouched (no
	// Allocated flip). A second cycle must re-offer the same device to
	// a different job.
	second := s.PlaceBatch([]Request{batchReq("j2")}, nodes, batchT0)
	if second[0].Err != nil {
		t.Fatalf("device stayed reserved after failed commit: %v", second[0].Err)
	}
	if second[0].Placement.NodeID != first[0].Placement.NodeID ||
		second[0].Placement.DeviceID != first[0].Placement.DeviceID {
		t.Fatalf("expected the rolled-back device %v, got %v",
			first[0].Placement, second[0].Placement)
	}
	// And once the commit *does* happen (device marked allocated), the
	// device must stop being offered.
	nodes[0].GPUs[0].Allocated = true
	third := s.PlaceBatch([]Request{batchReq("j3")}, nodes, batchT0)
	if !errors.Is(third[0].Err, ErrNoPlacement) {
		t.Fatalf("committed device re-offered: %+v, %v", third[0].Placement, third[0].Err)
	}
}
