package invariant

import (
	"encoding/json"
	"fmt"
	"sync"

	"gpunion/internal/db"
)

// CheckNoLostAcked audits a leader handoff: before is the dead leader's
// state at the moment it was killed — everything in it was acknowledged
// to some client — and after is the promoted standby's state at the
// moment it takes over, before it admits any new-epoch mutations.
// Every acknowledged record must survive the failover byte-for-byte:
// under the platform's durable-before-ack rule plus synchronous WAL
// shipping, an acked mutation is on the standby before the client heard
// about it, so a missing or diverged record is a replication bug (a
// dropped or reordered log record), never a tolerable race.
//
// The check is one-directional on purpose. The standby may not be
// *ahead* of the leader in any observable way here — it applies the
// same log — but the rule it enforces is about loss, and loss is what a
// provider-operated, frequently-failing control plane must never leak
// to users who were told their job state was saved.
func CheckNoLostAcked(before, after db.State) []Violation {
	var vs []Violation
	if after.Watermark < before.Watermark {
		vs = append(vs, Violation{
			Rule: "zero-lost-acked-mutations",
			Detail: fmt.Sprintf("promoted store watermark %d behind acked %d: %d acked mutation(s) lost",
				after.Watermark, before.Watermark, before.Watermark-after.Watermark),
		})
	}

	encode := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprintf("unencodable: %v", err)
		}
		return string(b)
	}

	afterNodes := make(map[string]string, len(after.Nodes))
	for _, n := range after.Nodes {
		afterNodes[n.ID] = encode(n)
	}
	for _, n := range before.Nodes {
		got, ok := afterNodes[n.ID]
		switch {
		case !ok:
			vs = append(vs, Violation{
				Rule:   "zero-lost-acked-mutations",
				Detail: fmt.Sprintf("acked node %s missing after failover", n.ID),
			})
		case got != encode(n):
			vs = append(vs, Violation{
				Rule:   "zero-lost-acked-mutations",
				Detail: fmt.Sprintf("acked node %s diverged after failover", n.ID),
			})
		}
	}

	afterJobs := make(map[string]string, len(after.Jobs))
	for _, j := range after.Jobs {
		afterJobs[j.ID] = encode(j)
	}
	for _, j := range before.Jobs {
		got, ok := afterJobs[j.ID]
		switch {
		case !ok:
			vs = append(vs, Violation{
				Rule:   "zero-lost-acked-mutations",
				Detail: fmt.Sprintf("acked job %s (%s) missing after failover", j.ID, j.State),
			})
		case got != encode(j):
			vs = append(vs, Violation{
				Rule:   "zero-lost-acked-mutations",
				Detail: fmt.Sprintf("acked job %s diverged after failover", j.ID),
			})
		}
	}

	// Allocation episodes have no single ID; key by placement + start.
	afterAllocs := make(map[string]string, len(after.Allocations))
	for _, a := range after.Allocations {
		key := fmt.Sprintf("%s/%s/%s/%d", a.JobID, a.NodeID, a.DeviceID, a.Start.UnixNano())
		afterAllocs[key] = encode(a)
	}
	for _, a := range before.Allocations {
		key := fmt.Sprintf("%s/%s/%s/%d", a.JobID, a.NodeID, a.DeviceID, a.Start.UnixNano())
		got, ok := afterAllocs[key]
		switch {
		case !ok:
			vs = append(vs, Violation{
				Rule:   "zero-lost-acked-mutations",
				Detail: fmt.Sprintf("acked allocation %s missing after failover", key),
			})
		case got != encode(a):
			vs = append(vs, Violation{
				Rule:   "zero-lost-acked-mutations",
				Detail: fmt.Sprintf("acked allocation %s diverged after failover", key),
			})
		}
	}
	return vs
}

// LeaderLog audits the leadership protocol itself: the harness reports
// every lease grant and every externally visible write acceptance, and
// the log cross-checks them against the two rules that make epochs a
// fencing token:
//
//   - single-leader-per-epoch: an epoch is granted to exactly one
//     replica, ever;
//   - no-stale-write-accepted: once any replica has been granted epoch
//     E, no replica may accept a write under an epoch < E. The lease
//     arbiter's skew-tolerance grace exists precisely to make this
//     hold — a deposed leader self-fences before its successor can be
//     elected — so an accepted stale write means the fence leaked.
//
// Zero epochs (standalone coordinators, legacy agents) are outside the
// protocol and ignored.
type LeaderLog struct {
	mu       sync.Mutex
	terms    map[uint64]string // epoch -> granted replica
	maxEpoch uint64
	vs       []Violation
}

// NewLeaderLog returns an empty audit log.
func NewLeaderLog() *LeaderLog {
	return &LeaderLog{terms: make(map[uint64]string)}
}

// RecordTerm registers a lease grant of epoch to replica.
func (l *LeaderLog) RecordTerm(epoch uint64, replica string) {
	if epoch == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.terms[epoch]; ok && prev != replica {
		l.vs = append(l.vs, Violation{
			Rule:   "single-leader-per-epoch",
			Detail: fmt.Sprintf("epoch %d granted to both %s and %s", epoch, prev, replica),
		})
		return
	}
	l.terms[epoch] = replica
	if epoch > l.maxEpoch {
		l.maxEpoch = epoch
	}
}

// RecordWrite registers that replica accepted an externally visible
// mutation while claiming epoch.
func (l *LeaderLog) RecordWrite(epoch uint64, replica string) {
	if epoch == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch < l.maxEpoch {
		l.vs = append(l.vs, Violation{
			Rule: "no-stale-write-accepted",
			Detail: fmt.Sprintf("%s accepted a write at epoch %d after epoch %d was granted",
				replica, epoch, l.maxEpoch),
		})
		return
	}
	if holder, ok := l.terms[epoch]; ok && holder != replica {
		l.vs = append(l.vs, Violation{
			Rule: "no-stale-write-accepted",
			Detail: fmt.Sprintf("%s accepted a write at epoch %d granted to %s",
				replica, epoch, holder),
		})
	}
}

// Violations returns every protocol breach recorded so far.
func (l *LeaderLog) Violations() []Violation {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Violation, len(l.vs))
	copy(out, l.vs)
	return out
}
