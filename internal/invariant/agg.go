package invariant

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gpunion/internal/db"
)

// Aggregation equivalence: the rack roll-up tier (internal/aggregator)
// must be semantically invisible. Folding no-op beats into deltas and
// replaying them at the coordinator may neither fabricate liveness the
// fleet never reported, persistently lose liveness it acknowledged,
// silently drop health events it acknowledged, nor regress the leader
// epoch an aggregator has already learned. The audit observes the
// system from both ends — the harness reports every acknowledged beat
// and registration on the agent side, the store's mutation stream
// supplies the committed health folds on the coordinator side — and
// Check compares the two views at a quiescent point.
//
// The loss rules are deliberately asymmetric. An aggregator crash is
// allowed to lose the deltas of its open flush window (the tier's
// bounded-lag contract, the same contract the coordinator's own
// volatile coalescing buffer makes), so "dropped liveness" only fires
// when a live node's store timestamp trails its newest acknowledged
// beat by more than the caller's tolerance — a window's worth of lag
// heals on the next beat, a sabotaged fold that drops a node forever
// does not. Fabrication has no such allowance: every LastHeartbeat the
// store ends at must be an instant some acknowledged beat or
// registration actually carried.

// AggAudit accumulates both views of the aggregation tier. Attach at a
// quiescent point (the base snapshot and the mutation subscription are
// not atomic). The harness must report *every* acknowledged beat —
// aggregator-acked and direct alike — or honest direct traffic would
// read as fabrication.
type AggAudit struct {
	mu sync.Mutex
	// acked holds, per node, the set of instants (UnixNano) carried by
	// acknowledged beats and registrations; the store must land on one.
	acked map[string]map[int64]bool
	// maxAcked is each node's newest acknowledged instant.
	maxAcked map[string]time.Time
	// ackedHealth / foldedHealth count health events acknowledged on
	// the agent side vs. committed in MutNodeHealth records.
	ackedHealth  map[string]int
	foldedHealth map[string]int
	// aggEpoch is the highest leader epoch each aggregator has been
	// observed to learn; a forward below it is a regression.
	aggEpoch map[string]uint64
	// aggWindow is the newest window sequence each aggregator has
	// forwarded; a forward at or below it is a replayed batch.
	aggWindow map[string]uint64
	// violations collects regressions detected at observation time.
	violations []Violation
}

// NewAggAudit snapshots the store's current heartbeat timestamps (they
// seed the acknowledged sets — pre-attach state is not fabrication)
// and subscribes to its mutation stream for health-fold counting. The
// returned cancel detaches the subscription.
func NewAggAudit(s db.Store) (*AggAudit, func()) {
	a := &AggAudit{
		acked:        make(map[string]map[int64]bool),
		maxAcked:     make(map[string]time.Time),
		ackedHealth:  make(map[string]int),
		foldedHealth: make(map[string]int),
		aggEpoch:     make(map[string]uint64),
		aggWindow:    make(map[string]uint64),
	}
	for _, n := range s.ListNodes() {
		a.acked[n.ID] = map[int64]bool{n.LastHeartbeat.UnixNano(): true}
		a.maxAcked[n.ID] = n.LastHeartbeat
	}
	return a, s.AddMutationObserver(a.observe)
}

// Attach subscribes the audit to a successor store's mutation stream
// (after a failover the acknowledged sets must survive; only the
// subscription is store-bound). Cancel the previous subscription first.
func (a *AggAudit) Attach(s db.Store) func() {
	return s.AddMutationObserver(a.observe)
}

// ObserveRegister records an acknowledged (re-)registration: Register
// installs the node with LastHeartbeat = at.
func (a *AggAudit) ObserveRegister(nodeID string, at time.Time) {
	a.ObserveAck(nodeID, at, 0)
}

// ObserveAck records one acknowledged beat: the instant the
// acknowledging tier stamped it with (the aggregator's receipt time on
// the folded path, the coordinator's on the direct path) and the
// number of health events the beat carried. Report only genuine acks —
// a Reregister verdict or an error means the report was not applied.
func (a *AggAudit) ObserveAck(nodeID string, at time.Time, healthEvents int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	set, ok := a.acked[nodeID]
	if !ok {
		set = make(map[int64]bool)
		a.acked[nodeID] = set
	}
	set[at.UnixNano()] = true
	if at.After(a.maxAcked[nodeID]) {
		a.maxAcked[nodeID] = at
	}
	a.ackedHealth[nodeID] += healthEvents
}

// ObserveForward records one upstream batch forward — observe every
// attempt, delivered or not: a consumed window sequence stays consumed.
// Two wire-level rules check at observation time. A correct aggregator
// fences every batch with the newest epoch it has learned, so a
// forward below that is a regression — stale-window data dressed in a
// superseded lease — whether or not the coordinator's own fence
// catches it. And its window sequence is strictly monotone, so a
// forward at or below one already observed is a replayed batch — the
// coordinator's per-node sequence guard and forward-only beat buffers
// absorb the replay, but the relay is misbehaving and must be flagged.
func (a *AggAudit) ObserveForward(aggregatorID string, epochSent, windowSeq uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if known := a.aggEpoch[aggregatorID]; epochSent < known {
		a.violations = append(a.violations, Violation{
			Rule: "aggregation-equivalence",
			Detail: fmt.Sprintf("aggregator %s forwarded a batch fenced to epoch %d after learning epoch %d",
				aggregatorID, epochSent, known),
		})
	}
	if prev := a.aggWindow[aggregatorID]; windowSeq <= prev {
		a.violations = append(a.violations, Violation{
			Rule: "aggregation-equivalence",
			Detail: fmt.Sprintf("aggregator %s replayed window %d after already forwarding window %d",
				aggregatorID, windowSeq, prev),
		})
	} else {
		a.aggWindow[aggregatorID] = windowSeq
	}
}

// ObserveAggEpoch records the leader epoch an aggregator learned from
// a successful upstream response.
func (a *AggAudit) ObserveAggEpoch(aggregatorID string, epoch uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if epoch > a.aggEpoch[aggregatorID] {
		a.aggEpoch[aggregatorID] = epoch
	}
}

func (a *AggAudit) observe(m db.Mutation) {
	if m.Type != db.MutNodeHealth || m.Health == nil || len(m.Health.Events) == 0 {
		return
	}
	a.mu.Lock()
	a.foldedHealth[m.Health.NodeID] += len(m.Health.Events)
	a.mu.Unlock()
}

// Check compares the two views at a quiescent point. lag is the
// liveness staleness the caller tolerates on live nodes; it must cover
// one aggregator flush window plus a heartbeat interval or two (a
// crashed window's deltas are legitimately lost until the node's next
// beat lands).
func (a *AggAudit) Check(s db.Store, lag time.Duration) []Violation {
	a.mu.Lock()
	vs := append([]Violation(nil), a.violations...)
	nodes := s.ListNodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for i := range nodes {
		n := &nodes[i]
		set := a.acked[n.ID]
		if set == nil {
			vs = append(vs, Violation{
				Rule:   "aggregation-equivalence",
				Detail: fmt.Sprintf("node %s in the store but no beat or registration was ever acknowledged for it", n.ID),
			})
			continue
		}
		if !set[n.LastHeartbeat.UnixNano()] {
			vs = append(vs, Violation{
				Rule: "aggregation-equivalence",
				Detail: fmt.Sprintf("node %s: store heartbeat %s was never acknowledged — fabricated advance",
					n.ID, n.LastHeartbeat.Format(time.RFC3339Nano)),
			})
		}
		// The lag rule covers live nodes and — the most damaging form of
		// dropped liveness — nodes swept unreachable while newer
		// acknowledged beats existed: a relay that eats a node's deltas
		// starves the failure detector and gets the node falsely
		// declared dead. Departed nodes are excluded: an announced
		// departure deliberately discards the node's buffered advance
		// (coalescing buffer and in-window deltas alike), so a frozen
		// timestamp there is the contract, not a loss.
		if n.Status != db.NodeActive && n.Status != db.NodePaused &&
			n.Status != db.NodeUnreachable {
			continue
		}
		if gap := a.maxAcked[n.ID].Sub(n.LastHeartbeat); gap > lag {
			vs = append(vs, Violation{
				Rule: "aggregation-equivalence",
				Detail: fmt.Sprintf("node %s: newest acknowledged beat %s leads the store by %s (tolerance %s) — dropped liveness",
					n.ID, a.maxAcked[n.ID].Format(time.RFC3339Nano), gap, lag),
			})
		}
	}
	// Health completeness is one-sided: every acknowledged event must
	// have been folded (the passthrough contract forwards them
	// synchronously), but a fold whose acknowledgement was lost in
	// flight is at-least-once residue, not a tier defect.
	ids := make([]string, 0, len(a.ackedHealth))
	for id := range a.ackedHealth {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if want, got := a.ackedHealth[id], a.foldedHealth[id]; want > got {
			vs = append(vs, Violation{
				Rule: "aggregation-equivalence",
				Detail: fmt.Sprintf("node %s: %d health events acknowledged but only %d folded — dropped health",
					id, want, got),
			})
		}
	}
	a.mu.Unlock()
	return vs
}
