package invariant

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gpunion/internal/db"
)

// Beat-delta equivalence: coalescing heartbeats into compact MutBeat
// records must lose no advance and invent none. The audit folds the
// committed mutation stream — full node after-images plus beat deltas,
// in LSN order — over the heartbeat timestamps the store held when
// recording began, and requires the fold to land exactly on the
// LastHeartbeat every node record ends at. A delta the coalescer
// dropped, a delta it fabricated, or a replay that applied one twice
// all surface as a divergence here.

// CheckBeatDeltas audits beat-delta equivalence. base holds each
// node's LastHeartbeat when the stream began; muts is the committed
// mutation stream since then (types other than node images and beat
// records are ignored); nodes is the store's current node table. The
// fold also enforces the record discipline itself: a beat record must
// never be empty, target an uninstalled node, or carry a delta that
// does not advance the folded timestamp — the store only commits (and
// only logs) deltas that moved a record forward.
func CheckBeatDeltas(base map[string]time.Time, muts []db.Mutation, nodes []db.NodeRecord) []Violation {
	var vs []Violation
	expected := make(map[string]time.Time, len(base))
	for id, at := range base {
		expected[id] = at
	}
	ordered := make([]db.Mutation, len(muts))
	copy(ordered, muts)
	// Observer deliveries race across shards; the LSN is the commit
	// order, and any two mutations touching one node share its shard,
	// so sorting makes every per-node subsequence causally ordered.
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].LSN < ordered[j].LSN })
	for _, m := range ordered {
		switch m.Type {
		case db.MutNodePut:
			if m.Node != nil {
				expected[m.Node.ID] = m.Node.LastHeartbeat
			}
		case db.MutBeat:
			if len(m.Beats) == 0 {
				vs = append(vs, Violation{
					Rule:   "beat-delta-equivalence",
					Detail: fmt.Sprintf("beat record at LSN %d carries no deltas", m.LSN),
				})
			}
			for _, b := range m.Beats {
				prev, ok := expected[b.NodeID]
				if !ok {
					vs = append(vs, Violation{
						Rule:   "beat-delta-equivalence",
						Detail: fmt.Sprintf("beat delta at LSN %d targets node %s with no installed image", m.LSN, b.NodeID),
					})
					expected[b.NodeID] = b.At
					continue
				}
				if !b.At.After(prev) {
					vs = append(vs, Violation{
						Rule: "beat-delta-equivalence",
						Detail: fmt.Sprintf("beat delta at LSN %d does not advance node %s (%s after %s)",
							m.LSN, b.NodeID, b.At.Format(time.RFC3339Nano), prev.Format(time.RFC3339Nano)),
					})
					continue
				}
				expected[b.NodeID] = b.At
			}
		}
	}
	for i := range nodes {
		n := &nodes[i]
		want, ok := expected[n.ID]
		if !ok {
			vs = append(vs, Violation{
				Rule:   "beat-delta-equivalence",
				Detail: fmt.Sprintf("node %s in the store but absent from the audited stream", n.ID),
			})
			continue
		}
		if !want.Equal(n.LastHeartbeat) {
			vs = append(vs, Violation{
				Rule: "beat-delta-equivalence",
				Detail: fmt.Sprintf("node %s heartbeat diverges: folding the deltas yields %s, the store holds %s",
					n.ID, want.Format(time.RFC3339Nano), n.LastHeartbeat.Format(time.RFC3339Nano)),
			})
		}
	}
	return vs
}

// BeatAudit records the node-image and beat-delta slice of a live
// store's mutation stream so CheckBeatDeltas can run at any later
// quiescent point. Attach at a quiescent point: the base snapshot and
// the subscription are not atomic, so a write racing the attach could
// be double-counted.
type BeatAudit struct {
	mu   sync.Mutex
	base map[string]time.Time
	muts []db.Mutation
}

// NewBeatAudit snapshots the store's current heartbeat timestamps and
// subscribes to its mutation stream. The returned cancel detaches the
// subscription (call it before attaching a fresh audit to a successor
// store).
func NewBeatAudit(s db.Store) (*BeatAudit, func()) {
	a := &BeatAudit{base: make(map[string]time.Time)}
	for _, n := range s.ListNodes() {
		a.base[n.ID] = n.LastHeartbeat
	}
	return a, s.AddMutationObserver(a.observe)
}

func (a *BeatAudit) observe(m db.Mutation) {
	if m.Type != db.MutNodePut && m.Type != db.MutBeat {
		return
	}
	a.mu.Lock()
	a.muts = append(a.muts, m)
	a.mu.Unlock()
}

// Check folds the recorded stream and compares it against the store's
// current node table. Call at a quiescent point, like NodePool.Audit.
func (a *BeatAudit) Check(s db.Store) []Violation {
	a.mu.Lock()
	muts := make([]db.Mutation, len(a.muts))
	copy(muts, a.muts)
	base := a.base
	a.mu.Unlock()
	return CheckBeatDeltas(base, muts, s.ListNodes())
}
