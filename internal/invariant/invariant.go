// Package invariant audits the system database for the structural
// properties every GPUnion deployment must preserve, no matter what
// sequence of node churn, partitions, disk faults and coordinator
// crashes the platform absorbs. The chaos harness (internal/chaos,
// internal/sim.RunChaos) runs the checker after every injected fault;
// any violation is a platform bug, not a tolerable degradation.
//
// The invariants checked:
//
//   - device-double-allocation: no two running jobs occupy the same
//     (node, device) pair;
//   - running-device-allocated: a running job's device exists on its
//     node and is marked allocated;
//   - running-node-live: a running job's node is Active or Paused —
//     work never "runs" on a departed or unreachable provider;
//   - job-node-referential: a running or migrating job's NodeID
//     resolves to a registered node;
//   - pending-detached: a pending job holds no placement;
//   - alloc-referential: every allocation episode belongs to a known
//     job;
//   - alloc-open-unique: a job has at most one open allocation episode;
//   - alloc-matches-job: a running job has exactly one open episode and
//     it matches the job's current placement; a non-running job has
//     none;
//   - state-count-consistent: the store's per-state counters agree
//     with a full job scan (validates the sharded counters across
//     snapshot import and WAL replay);
//   - index-consistent: every indexed query (JobsInState with its
//     queue ordering, JobsOnNode, ActiveNodes) returns exactly what a
//     full ground-truth scan derives, and — for stores exposing
//     AuditIndexes — the materialized index structures themselves are
//     byte-equivalent to a fresh rebuild. Indexes are derived state;
//     any drift after churn, replay or import is a platform bug;
//   - lsn-monotonic: the store's mutation sequence never moves
//     backwards — including across a crash/recovery boundary, when the
//     checker outlives the store instance.
//
// Recovery byte-equivalence (a restored store matching the pre-crash
// one) is checked separately via CheckEquivalence at crash/restart
// points, where both images exist. Three further rules audit state the
// database alone cannot show and are driven by the harness with the
// extra context they need:
//
//   - checkpoint-integrity (CheckCheckpoints): every live job's restore
//     chain resolves to a structurally valid generation — full snapshot
//     first, increments linked base-to-head, progress never regressing —
//     or to no checkpoint at all. Corruption in the checkpoint store
//     must be absorbed by CRC detection and generation fallback, never
//     surfaced as a broken chain;
//   - skew-bounded-liveness (CheckSkewLiveness): a node whose only
//     fault is a bounded clock skew stays in service — failure
//     detection must key off receiver-side time, not sender clocks;
//   - no-duplicate-side-effects (chaos.VerifyIdempotent): replaying an
//     already-processed control message mutates nothing.
//
// Gray-failure handling adds three more (see health.go):
//
//   - health-score-consistent (HealthAudit / CheckHealthDeltas): every
//     persisted node health score is exactly the deterministic fold of
//     the events the mutation stream carries — including across crash
//     recovery and standby promotion;
//   - no-placement-on-unhealthy (CheckNoPlacementOnUnhealthy): the
//     scheduler never places new work on a node below the unhealthy
//     threshold;
//   - degraded-node-drained (CheckDegradedDrained): predictive
//     checkpoint-then-migrate empties unhealthy nodes whenever feasible
//     spare capacity exists.
package invariant

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"gpunion/internal/checkpoint"
	"gpunion/internal/db"
)

// Violation is one broken invariant.
type Violation struct {
	// Rule names the invariant (stable identifier, kebab-case).
	Rule string
	// Detail is a human-readable description of the evidence.
	Detail string
}

// String renders the violation for logs and test failures.
func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Checker audits a Store. The zero value is usable; the checker carries
// state across calls (the LSN high-water mark), so one Checker should
// observe a deployment for its whole lifetime — including across
// coordinator restarts, where LSN monotonicity is exactly the property
// worth checking.
type Checker struct {
	lastLSN uint64
	// checks counts audits performed (reporting).
	checks int
}

// NewChecker returns a fresh checker.
func NewChecker() *Checker { return &Checker{} }

// Checks reports how many audits this checker has run.
func (c *Checker) Checks() int { return c.checks }

// Check audits the store once and returns every violation found. It
// must be called at a quiescent point (between discrete-event
// callbacks, not mid-operation): the store's methods are individually
// consistent but a multi-step transition observed halfway through is
// not a platform bug.
func (c *Checker) Check(s db.Store) []Violation {
	c.checks++
	var vs []Violation

	nodes := s.ListNodes()
	jobs := s.ListJobs()
	allocs := s.Allocations()

	nodeByID := make(map[string]db.NodeRecord, len(nodes))
	for _, n := range nodes {
		nodeByID[n.ID] = n
	}
	jobByID := make(map[string]db.JobRecord, len(jobs))
	for _, j := range jobs {
		jobByID[j.ID] = j
	}

	// --- Placement invariants over the job table. ---
	deviceOwner := make(map[string]string) // "node/device" -> jobID
	stateTally := make(map[db.JobState]int)
	for _, j := range jobs {
		stateTally[j.State]++
		switch j.State {
		case db.JobRunning:
			key := j.NodeID + "/" + j.DeviceID
			if owner, taken := deviceOwner[key]; taken {
				vs = append(vs, Violation{
					Rule:   "device-double-allocation",
					Detail: fmt.Sprintf("jobs %s and %s both run on %s", owner, j.ID, key),
				})
			}
			deviceOwner[key] = j.ID
			n, ok := nodeByID[j.NodeID]
			if !ok {
				vs = append(vs, Violation{
					Rule:   "job-node-referential",
					Detail: fmt.Sprintf("running job %s placed on unknown node %q", j.ID, j.NodeID),
				})
				continue
			}
			if n.Status != db.NodeActive && n.Status != db.NodePaused {
				vs = append(vs, Violation{
					Rule:   "running-node-live",
					Detail: fmt.Sprintf("job %s runs on node %s in status %s", j.ID, j.NodeID, n.Status),
				})
			}
			found := false
			for _, g := range n.GPUs {
				if g.DeviceID != j.DeviceID {
					continue
				}
				found = true
				if !g.Allocated {
					vs = append(vs, Violation{
						Rule:   "running-device-allocated",
						Detail: fmt.Sprintf("job %s runs on %s/%s but the device is marked free", j.ID, j.NodeID, j.DeviceID),
					})
				}
			}
			if !found {
				vs = append(vs, Violation{
					Rule:   "running-device-allocated",
					Detail: fmt.Sprintf("job %s runs on %s/%s but the node has no such device", j.ID, j.NodeID, j.DeviceID),
				})
			}
		case db.JobMigrating:
			// A migrating job's NodeID is its last placement (the source
			// it is being moved away from); it must still resolve.
			if j.NodeID != "" {
				if _, ok := nodeByID[j.NodeID]; !ok {
					vs = append(vs, Violation{
						Rule:   "job-node-referential",
						Detail: fmt.Sprintf("migrating job %s references unknown node %q", j.ID, j.NodeID),
					})
				}
			}
		case db.JobPending:
			if j.NodeID != "" || j.DeviceID != "" {
				vs = append(vs, Violation{
					Rule:   "pending-detached",
					Detail: fmt.Sprintf("pending job %s still holds placement %s/%s", j.ID, j.NodeID, j.DeviceID),
				})
			}
		}
	}

	// --- Allocation-history invariants. ---
	openByJob := make(map[string]db.AllocationRecord)
	for _, a := range allocs {
		if _, ok := jobByID[a.JobID]; !ok {
			vs = append(vs, Violation{
				Rule:   "alloc-referential",
				Detail: fmt.Sprintf("allocation on %s/%s belongs to unknown job %q", a.NodeID, a.DeviceID, a.JobID),
			})
			continue
		}
		if !a.End.IsZero() {
			continue
		}
		if prev, dup := openByJob[a.JobID]; dup {
			vs = append(vs, Violation{
				Rule: "alloc-open-unique",
				Detail: fmt.Sprintf("job %s has two open episodes: %s/%s and %s/%s",
					a.JobID, prev.NodeID, prev.DeviceID, a.NodeID, a.DeviceID),
			})
			continue
		}
		openByJob[a.JobID] = a
	}
	for _, j := range jobs {
		open, has := openByJob[j.ID]
		if j.State == db.JobRunning {
			switch {
			case !has:
				vs = append(vs, Violation{
					Rule:   "alloc-matches-job",
					Detail: fmt.Sprintf("running job %s has no open allocation episode", j.ID),
				})
			case open.NodeID != j.NodeID || open.DeviceID != j.DeviceID:
				vs = append(vs, Violation{
					Rule: "alloc-matches-job",
					Detail: fmt.Sprintf("job %s runs on %s/%s but its open episode is on %s/%s",
						j.ID, j.NodeID, j.DeviceID, open.NodeID, open.DeviceID),
				})
			}
		} else if has {
			vs = append(vs, Violation{
				Rule: "alloc-matches-job",
				Detail: fmt.Sprintf("job %s is %s but still holds an open episode on %s/%s",
					j.ID, j.State, open.NodeID, open.DeviceID),
			})
		}
	}

	// --- Counter consistency (sharded per-state counters vs scan). ---
	for _, state := range []db.JobState{
		db.JobPending, db.JobRunning, db.JobMigrating,
		db.JobCompleted, db.JobFailed, db.JobKilled,
	} {
		if got, want := s.CountJobsInState(state), stateTally[state]; got != want {
			vs = append(vs, Violation{
				Rule:   "state-count-consistent",
				Detail: fmt.Sprintf("CountJobsInState(%s) = %d, scan finds %d", state, got, want),
			})
		}
	}

	// --- Derived-index consistency: indexed queries vs the scan. ---
	vs = append(vs, checkIndexes(s, nodes, jobs)...)

	// --- LSN monotonicity across the checker's lifetime. ---
	if lsn := s.CurrentLSN(); lsn < c.lastLSN {
		vs = append(vs, Violation{
			Rule:   "lsn-monotonic",
			Detail: fmt.Sprintf("mutation sequence moved backwards: %d after %d", lsn, c.lastLSN),
		})
	} else {
		c.lastLSN = lsn
	}
	return vs
}

// checkIndexes verifies every index-backed query against the already-
// collected ground-truth scans, and runs the store's own deep index
// audit when it exposes one. The queries under test are exactly the
// hot paths the materialized indexes serve: the scheduler's pending
// queue, heartbeat anti-entropy's per-node job set, and the
// scheduler's active-node pool.
func checkIndexes(s db.Store, nodes []db.NodeRecord, jobs []db.JobRecord) []Violation {
	var vs []Violation

	// JobsInState must return the scan-derived set, in queue order.
	byState := make(map[db.JobState][]db.JobRecord)
	for _, j := range jobs {
		byState[j.State] = append(byState[j.State], j)
	}
	for _, state := range []db.JobState{
		db.JobPending, db.JobRunning, db.JobMigrating,
		db.JobCompleted, db.JobFailed, db.JobKilled,
	} {
		got := s.JobsInState(state)
		if miss := setDiff(jobIDs(got), jobIDs(byState[state])); miss != "" {
			vs = append(vs, Violation{
				Rule:   "index-consistent",
				Detail: fmt.Sprintf("JobsInState(%s) diverges from scan: %s", state, miss),
			})
			continue
		}
		for i := 1; i < len(got); i++ {
			if queuePrecedes(got[i], got[i-1]) {
				vs = append(vs, Violation{
					Rule:   "index-consistent",
					Detail: fmt.Sprintf("JobsInState(%s) out of queue order at job %s", state, got[i].ID),
				})
				break
			}
		}
	}

	// JobsOnNode must return the scan-derived placement set, for every
	// node the scan knows and every node the jobs reference.
	wantOnNode := make(map[string][]string)
	for _, j := range jobs {
		if j.NodeID != "" && (j.State == db.JobRunning || j.State == db.JobMigrating) {
			wantOnNode[j.NodeID] = append(wantOnNode[j.NodeID], j.ID)
		}
	}
	nodeIDs := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		nodeIDs[n.ID] = true
	}
	for id := range wantOnNode {
		nodeIDs[id] = true
	}
	for id := range nodeIDs {
		if miss := setDiff(jobIDs(s.JobsOnNode(id)), wantOnNode[id]); miss != "" {
			vs = append(vs, Violation{
				Rule:   "index-consistent",
				Detail: fmt.Sprintf("JobsOnNode(%s) diverges from scan: %s", id, miss),
			})
		}
	}

	// ActiveNodes must be exactly the scan's active subset.
	var wantActive []string
	for _, n := range nodes {
		if n.Status == db.NodeActive {
			wantActive = append(wantActive, n.ID)
		}
	}
	var gotActive []string
	for _, n := range s.ActiveNodes() {
		gotActive = append(gotActive, n.ID)
	}
	if miss := setDiff(gotActive, wantActive); miss != "" {
		vs = append(vs, Violation{
			Rule:   "index-consistent",
			Detail: "ActiveNodes diverges from scan: " + miss,
		})
	}

	// Deep structural audit, for stores that materialize indexes.
	if a, ok := s.(interface{ AuditIndexes() []string }); ok {
		for _, p := range a.AuditIndexes() {
			vs = append(vs, Violation{Rule: "index-consistent", Detail: p})
		}
	}
	return vs
}

// jobIDs projects records onto their IDs.
func jobIDs(jobs []db.JobRecord) []string {
	out := make([]string, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.ID)
	}
	return out
}

// setDiff compares two ID multisets and describes the first mismatch
// ("" when equal).
func setDiff(got, want []string) string {
	g := append([]string(nil), got...)
	w := append([]string(nil), want...)
	sort.Strings(g)
	sort.Strings(w)
	if len(g) != len(w) {
		return fmt.Sprintf("%d results, scan finds %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			return fmt.Sprintf("has %q where scan finds %q", g[i], w[i])
		}
	}
	return ""
}

// queuePrecedes reports whether a strictly precedes b in pending-queue
// order (priority descending, submission ascending, ID ascending); a
// result that lists a after b is therefore out of order.
func queuePrecedes(a, b db.JobRecord) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if !a.SubmittedAt.Equal(b.SubmittedAt) {
		return a.SubmittedAt.Before(b.SubmittedAt)
	}
	return a.ID < b.ID
}

// CheckpointSource is the slice of the checkpoint store the integrity
// check reads. Taking an interface lets sabotage tests prove the rule
// fires on a source that hands out broken chains.
type CheckpointSource interface {
	// RestoreChain returns the job's restore chain, oldest first.
	RestoreChain(jobID string) ([]checkpoint.Checkpoint, error)
}

// CheckCheckpoints audits checkpoint-integrity for the given jobs
// (callers pass the live set: pending, running, migrating): whatever
// damage the checkpoint store's backing blobs absorbed, every restore
// chain the platform can be handed must be structurally sound — a full
// snapshot first, each increment based on its predecessor, progress
// never regressing, for this job. "No checkpoint" (including "nothing
// restorable survived") is legitimate: the job restarts from scratch.
// A broken chain is not: it means corruption detection or generation
// fallback let damaged state through.
func CheckCheckpoints(cs CheckpointSource, jobs []db.JobRecord) []Violation {
	var vs []Violation
	for _, j := range jobs {
		chain, err := cs.RestoreChain(j.ID)
		if err != nil {
			if errors.Is(err, checkpoint.ErrNoCheckpoint) || errors.Is(err, checkpoint.ErrBadChain) {
				continue
			}
			vs = append(vs, Violation{
				Rule:   "checkpoint-integrity",
				Detail: fmt.Sprintf("job %s: restore chain unresolvable: %v", j.ID, err),
			})
			continue
		}
		if len(chain) == 0 {
			vs = append(vs, Violation{
				Rule:   "checkpoint-integrity",
				Detail: fmt.Sprintf("job %s: empty restore chain", j.ID),
			})
			continue
		}
		if chain[0].Incremental {
			vs = append(vs, Violation{
				Rule:   "checkpoint-integrity",
				Detail: fmt.Sprintf("job %s: restore chain starts at increment %d, not a full snapshot", j.ID, chain[0].Seq),
			})
		}
		for i, ck := range chain {
			if ck.JobID != j.ID {
				vs = append(vs, Violation{
					Rule:   "checkpoint-integrity",
					Detail: fmt.Sprintf("job %s: chain link %d belongs to job %q", j.ID, ck.Seq, ck.JobID),
				})
			}
			if i == 0 {
				continue
			}
			if !ck.Incremental || ck.BaseSeq != chain[i-1].Seq {
				vs = append(vs, Violation{
					Rule: "checkpoint-integrity",
					Detail: fmt.Sprintf("job %s: link %d does not build on its predecessor %d",
						j.ID, ck.Seq, chain[i-1].Seq),
				})
			}
			if ck.Progress.Step < chain[i-1].Progress.Step {
				vs = append(vs, Violation{
					Rule: "checkpoint-integrity",
					Detail: fmt.Sprintf("job %s: progress regresses along the chain (%d after %d)",
						j.ID, ck.Progress.Step, chain[i-1].Progress.Step),
				})
			}
		}
	}
	return vs
}

// CheckSkewLiveness audits skew-bounded-liveness: nodes whose only
// fault is a bounded clock offset — the caller passes exactly those,
// excluding nodes that are also crashed, partitioned or departed — must
// remain in service. Failure detection keys off receiver-side arrival
// times, so a sender's skewed wall clock must never get it marked
// unreachable.
func CheckSkewLiveness(s db.Store, skewedNodes []string) []Violation {
	var vs []Violation
	for _, id := range skewedNodes {
		n, err := s.GetNode(id)
		if err != nil {
			vs = append(vs, Violation{
				Rule:   "skew-bounded-liveness",
				Detail: fmt.Sprintf("skewed node %s unknown to the store: %v", id, err),
			})
			continue
		}
		if n.Status != db.NodeActive && n.Status != db.NodePaused {
			vs = append(vs, Violation{
				Rule:   "skew-bounded-liveness",
				Detail: fmt.Sprintf("node %s dropped to %s though its only fault is clock skew", id, n.Status),
			})
		}
	}
	return vs
}

// CheckEquivalence compares two store images table by table (nodes,
// jobs, allocations) via their canonical JSON encodings — the recovery
// byte-equivalence criterion. Monitoring samples are excluded: their
// bounded-retention eviction order is approximate across shards by
// design. Watermarks are compared by ordering only (a recovered store
// may not regress the mutation sequence).
func CheckEquivalence(before, after db.State) []Violation {
	var vs []Violation
	tables := []struct {
		name string
		a, b any
	}{
		{"nodes", before.Nodes, after.Nodes},
		{"jobs", before.Jobs, after.Jobs},
		{"allocations", before.Allocations, after.Allocations},
	}
	for _, tb := range tables {
		ja, err1 := json.Marshal(tb.a)
		jb, err2 := json.Marshal(tb.b)
		if err1 != nil || err2 != nil {
			vs = append(vs, Violation{
				Rule:   "recovery-equivalence",
				Detail: fmt.Sprintf("table %s failed to encode: %v / %v", tb.name, err1, err2),
			})
			continue
		}
		if string(ja) != string(jb) {
			vs = append(vs, Violation{
				Rule: "recovery-equivalence",
				Detail: fmt.Sprintf("table %s diverged after recovery (%d vs %d bytes)",
					tb.name, len(ja), len(jb)),
			})
		}
	}
	if after.Watermark < before.Watermark {
		vs = append(vs, Violation{
			Rule: "recovery-equivalence",
			Detail: fmt.Sprintf("recovered watermark %d regressed below %d",
				after.Watermark, before.Watermark),
		})
	}
	return vs
}
