package invariant

import (
	"testing"
	"time"

	"gpunion/internal/db"
)

// TestBeatAuditLiveStore drives a real store through the audit: full
// images, coalesced beat batches and an interleaved UpdateNode must
// fold exactly onto the store's final heartbeats.
func TestBeatAuditLiveStore(t *testing.T) {
	s := db.New(0)
	s.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeActive, LastHeartbeat: t0})
	audit, cancel := NewBeatAudit(s)
	defer cancel()
	s.UpsertNode(db.NodeRecord{ID: "n2", Status: db.NodeActive, LastHeartbeat: t0})
	s.TouchNodes([]db.BeatDelta{
		{NodeID: "n1", At: t0.Add(10 * time.Second)},
		{NodeID: "n2", At: t0.Add(10 * time.Second)},
	})
	if err := s.UpdateNode("n1", func(n *db.NodeRecord) {
		n.LastHeartbeat = t0.Add(20 * time.Second)
		n.Status = db.NodePaused
	}); err != nil {
		t.Fatal(err)
	}
	// A stale batch: the store must drop the non-advancing delta and
	// log only the one that moved (n2), keeping the fold exact.
	s.TouchNodes([]db.BeatDelta{
		{NodeID: "n1", At: t0.Add(15 * time.Second)},
		{NodeID: "n2", At: t0.Add(25 * time.Second)},
	})
	if vs := audit.Check(s); len(vs) != 0 {
		t.Fatalf("clean run flagged: %v", vs)
	}
}

// TestBeatDeltasLostAdvance sabotages the stream by dropping a delta
// the store committed: the fold lands behind the store and the rule
// must fire.
func TestBeatDeltasLostAdvance(t *testing.T) {
	base := map[string]time.Time{"n1": t0}
	nodes := []db.NodeRecord{{ID: "n1", LastHeartbeat: t0.Add(time.Minute)}}
	vs := CheckBeatDeltas(base, nil, nodes)
	wantRule(t, vs, "beat-delta-equivalence")
}

// TestBeatDeltasFabricatedAdvance sabotages the other direction: the
// stream carries an advance the store never applied.
func TestBeatDeltasFabricatedAdvance(t *testing.T) {
	base := map[string]time.Time{"n1": t0}
	muts := []db.Mutation{{LSN: 1, Type: db.MutBeat,
		Beats: []db.BeatDelta{{NodeID: "n1", At: t0.Add(time.Minute)}}}}
	nodes := []db.NodeRecord{{ID: "n1", LastHeartbeat: t0}}
	vs := CheckBeatDeltas(base, muts, nodes)
	wantRule(t, vs, "beat-delta-equivalence")
}

// TestBeatDeltasRecordDiscipline: a logged delta that does not advance
// the folded timestamp means the store's kept-filter broke (a replay
// was applied twice, or a stale delta was committed).
func TestBeatDeltasRecordDiscipline(t *testing.T) {
	base := map[string]time.Time{"n1": t0}
	at := t0.Add(time.Minute)
	muts := []db.Mutation{
		{LSN: 1, Type: db.MutBeat, Beats: []db.BeatDelta{{NodeID: "n1", At: at}}},
		{LSN: 2, Type: db.MutBeat, Beats: []db.BeatDelta{{NodeID: "n1", At: at}}},
	}
	nodes := []db.NodeRecord{{ID: "n1", LastHeartbeat: at}}
	vs := CheckBeatDeltas(base, muts, nodes)
	wantRule(t, vs, "beat-delta-equivalence")
}

// TestBeatDeltasUnknownNode: a delta must never target a node the
// stream has not installed.
func TestBeatDeltasUnknownNode(t *testing.T) {
	muts := []db.Mutation{{LSN: 1, Type: db.MutBeat,
		Beats: []db.BeatDelta{{NodeID: "ghost", At: t0}}}}
	vs := CheckBeatDeltas(nil, muts, nil)
	wantRule(t, vs, "beat-delta-equivalence")
}

// TestBeatDeltasEmptyRecord: an empty beat record is a malformed frame.
func TestBeatDeltasEmptyRecord(t *testing.T) {
	muts := []db.Mutation{{LSN: 1, Type: db.MutBeat}}
	vs := CheckBeatDeltas(nil, muts, nil)
	wantRule(t, vs, "beat-delta-equivalence")
}

// TestBeatDeltasImageResets: a full after-image re-bases the fold — a
// later beat only needs to advance past the image, not past every
// earlier delta.
func TestBeatDeltasImageResets(t *testing.T) {
	base := map[string]time.Time{"n1": t0.Add(time.Hour)}
	muts := []db.Mutation{
		{LSN: 5, Type: db.MutNodePut, Node: &db.NodeRecord{ID: "n1", LastHeartbeat: t0}},
		{LSN: 6, Type: db.MutBeat, Beats: []db.BeatDelta{{NodeID: "n1", At: t0.Add(time.Second)}}},
	}
	nodes := []db.NodeRecord{{ID: "n1", LastHeartbeat: t0.Add(time.Second)}}
	if vs := CheckBeatDeltas(base, muts, nodes); len(vs) != 0 {
		t.Fatalf("re-based fold flagged: %v", vs)
	}
}
