package invariant

import (
	"strings"
	"testing"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
)

// aggStore builds a one-node store whose seed heartbeat the audit must
// treat as acknowledged (pre-attach state is not fabrication).
func aggStore() (db.Store, *AggAudit, func()) {
	s := db.New(0)
	s.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeActive, LastHeartbeat: t0})
	a, cancel := NewAggAudit(s)
	return s, a, cancel
}

func wantAggViolation(t *testing.T, vs []Violation, substr string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == "aggregation-equivalence" && strings.Contains(v.Detail, substr) {
			return
		}
	}
	t.Fatalf("no aggregation-equivalence violation containing %q in %v", substr, vs)
}

func TestAggAuditCleanRoundTrip(t *testing.T) {
	s, a, cancel := aggStore()
	defer cancel()
	beat := t0.Add(10 * time.Second)
	a.ObserveAck("n1", beat, 0)
	s.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeActive, LastHeartbeat: beat})
	if vs := a.Check(s, time.Minute); len(vs) != 0 {
		t.Fatalf("clean round trip flagged: %v", vs)
	}
}

func TestAggAuditSeedHeartbeatNotFabrication(t *testing.T) {
	s, a, cancel := aggStore()
	defer cancel()
	// No acks at all: the store still sits on its pre-attach seed.
	if vs := a.Check(s, time.Minute); len(vs) != 0 {
		t.Fatalf("seed state flagged: %v", vs)
	}
}

func TestAggAuditFabricatedAdvance(t *testing.T) {
	s, a, cancel := aggStore()
	defer cancel()
	// The store lands on an instant no acknowledged beat ever carried.
	s.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeActive, LastHeartbeat: t0.Add(37 * time.Second)})
	wantAggViolation(t, a.Check(s, time.Minute), "fabricated advance")
}

func TestAggAuditDroppedLiveness(t *testing.T) {
	s, a, cancel := aggStore()
	defer cancel()
	a.ObserveAck("n1", t0.Add(5*time.Minute), 0)
	// Store never advanced past the seed: beyond tolerance for a live node.
	wantAggViolation(t, a.Check(s, time.Minute), "dropped liveness")
	// Within tolerance the same gap is legitimate bounded lag.
	if vs := a.Check(s, 10*time.Minute); len(vs) != 0 {
		t.Fatalf("in-tolerance lag flagged: %v", vs)
	}
}

func TestAggAuditDepartedNodeExcludedFromLag(t *testing.T) {
	s, a, cancel := aggStore()
	defer cancel()
	a.ObserveAck("n1", t0.Add(5*time.Minute), 0)
	s.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeDeparted, LastHeartbeat: t0})
	if vs := a.Check(s, time.Minute); len(vs) != 0 {
		t.Fatalf("departed node's frozen timestamp flagged: %v", vs)
	}
	// Unreachable nodes stay covered — starving the failure detector is
	// the most damaging form of dropped liveness.
	s.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeUnreachable, LastHeartbeat: t0})
	wantAggViolation(t, a.Check(s, time.Minute), "dropped liveness")
}

func TestAggAuditUnacknowledgedNode(t *testing.T) {
	s, a, cancel := aggStore()
	defer cancel()
	s.UpsertNode(db.NodeRecord{ID: "ghost", Status: db.NodeActive, LastHeartbeat: t0})
	wantAggViolation(t, a.Check(s, time.Minute), "no beat or registration was ever acknowledged")
}

func TestAggAuditRegisterSeedsAckedSet(t *testing.T) {
	s, a, cancel := aggStore()
	defer cancel()
	at := t0.Add(time.Second)
	a.ObserveRegister("n2", at)
	s.UpsertNode(db.NodeRecord{ID: "n2", Status: db.NodeActive, LastHeartbeat: at})
	if vs := a.Check(s, time.Minute); len(vs) != 0 {
		t.Fatalf("registration-seeded node flagged: %v", vs)
	}
}

func TestAggAuditHealthCompleteness(t *testing.T) {
	s, a, cancel := aggStore()
	defer cancel()
	beat := t0.Add(10 * time.Second)
	events := []gpu.HealthEvent{
		{Kind: gpu.HealthThermal, Severity: gpu.SeverityCritical, Value: 96},
		{Kind: gpu.HealthXIDRecoverable, Severity: gpu.SeverityWarn, XID: 31},
	}
	a.ObserveAck("n1", beat, len(events))
	s.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeActive, LastHeartbeat: beat})
	// Only one of the two acknowledged events reaches the store.
	s.RecordHealth("n1", beat, events[:1], func(prev float64, prevAt time.Time) float64 { return 0.5 })
	wantAggViolation(t, a.Check(s, time.Minute), "dropped health")
	// Folding the rest clears it; extra folds (at-least-once residue) stay clean.
	s.RecordHealth("n1", beat.Add(time.Second), events, func(prev float64, prevAt time.Time) float64 { return 0.4 })
	if vs := a.Check(s, time.Minute); len(vs) != 0 {
		t.Fatalf("complete health fold flagged: %v", vs)
	}
}

func TestAggAuditEpochRegressionAndReplay(t *testing.T) {
	s, a, cancel := aggStore()
	defer cancel()
	a.ObserveAggEpoch("agg-1", 3)
	a.ObserveAggEpoch("agg-1", 2) // learned epochs only ratchet up
	a.ObserveForward("agg-1", 3, 1)
	a.ObserveForward("agg-1", 3, 2)
	if vs := a.Check(s, time.Minute); len(vs) != 0 {
		t.Fatalf("monotone forwards flagged: %v", vs)
	}
	a.ObserveForward("agg-1", 2, 3) // fenced below the learned epoch
	a.ObserveForward("agg-1", 3, 2) // window sequence reused
	vs := a.Check(s, time.Minute)
	wantAggViolation(t, vs, "epoch 2 after learning epoch 3")
	wantAggViolation(t, vs, "replayed window 2")
}

func TestAggAuditAttachSuccessorStore(t *testing.T) {
	s, a, cancel := aggStore()
	cancel() // failover: the old store's subscription is gone
	succ := db.New(0)
	succ.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeActive, LastHeartbeat: t0})
	defer a.Attach(succ)()
	beat := t0.Add(10 * time.Second)
	events := []gpu.HealthEvent{{Kind: gpu.HealthXIDFatal, Severity: gpu.SeverityCritical, XID: 79}}
	a.ObserveAck("n1", beat, 1)
	succ.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeActive, LastHeartbeat: beat})
	// The fold lands on the successor; the audit must count it there.
	succ.RecordHealth("n1", beat, events, func(prev float64, prevAt time.Time) float64 { return 0.3 })
	if vs := a.Check(succ, time.Minute); len(vs) != 0 {
		t.Fatalf("successor-store fold flagged: %v", vs)
	}
	_ = s
}
