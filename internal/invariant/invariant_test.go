package invariant

import (
	"strings"
	"testing"
	"time"

	"gpunion/internal/db"
)

var t0 = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

// healthyStore builds a store in a consistent shape: two nodes, one
// running job with a matching open allocation, one pending job, one
// completed job with a closed episode.
func healthyStore(t *testing.T) db.Store {
	t.Helper()
	s := db.New(0)
	s.UpsertNode(db.NodeRecord{
		ID: "n1", Status: db.NodeActive,
		GPUs: []db.GPUInfo{{DeviceID: "gpu0", MemoryMiB: 24576, Allocated: true}},
	})
	s.UpsertNode(db.NodeRecord{
		ID: "n2", Status: db.NodeActive,
		GPUs: []db.GPUInfo{{DeviceID: "gpu0", MemoryMiB: 24576}},
	})
	mustInsert(t, s, db.JobRecord{ID: "j-run", State: db.JobRunning,
		NodeID: "n1", DeviceID: "gpu0", ImageName: "img", SubmittedAt: t0, StartedAt: t0})
	mustInsert(t, s, db.JobRecord{ID: "j-pend", State: db.JobPending,
		ImageName: "img", SubmittedAt: t0})
	mustInsert(t, s, db.JobRecord{ID: "j-done", State: db.JobCompleted,
		NodeID: "n2", DeviceID: "gpu0", ImageName: "img", SubmittedAt: t0})
	s.RecordAllocation(db.AllocationRecord{JobID: "j-run", NodeID: "n1", DeviceID: "gpu0", Start: t0})
	s.RecordAllocation(db.AllocationRecord{JobID: "j-done", NodeID: "n2", DeviceID: "gpu0",
		Start: t0.Add(-time.Hour), End: t0.Add(-time.Minute)})
	return s
}

func mustInsert(t *testing.T, s db.Store, j db.JobRecord) {
	t.Helper()
	if err := s.InsertJob(j); err != nil {
		t.Fatal(err)
	}
}

func rules(vs []Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.Rule)
		b.WriteString(";")
	}
	return b.String()
}

func wantRule(t *testing.T, vs []Violation, rule string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("expected a %s violation, got: %v", rule, vs)
}

func TestInvariantCleanStorePasses(t *testing.T) {
	s := healthyStore(t)
	c := NewChecker()
	if vs := c.Check(s); len(vs) != 0 {
		t.Fatalf("healthy store flagged: %s", rules(vs))
	}
	if c.Checks() != 1 {
		t.Fatalf("checks = %d", c.Checks())
	}
}

func TestInvariantDoubleAllocation(t *testing.T) {
	s := healthyStore(t)
	// Sabotage: point a second running job at j-run's device.
	mustInsert(t, s, db.JobRecord{ID: "j-dup", State: db.JobRunning,
		NodeID: "n1", DeviceID: "gpu0", ImageName: "img", SubmittedAt: t0})
	s.RecordAllocation(db.AllocationRecord{JobID: "j-dup", NodeID: "n1", DeviceID: "gpu0", Start: t0})
	wantRule(t, NewChecker().Check(s), "device-double-allocation")
}

func TestInvariantUnknownNode(t *testing.T) {
	s := healthyStore(t)
	_ = s.UpdateJob("j-run", func(j *db.JobRecord) { j.NodeID = "ghost" })
	vs := NewChecker().Check(s)
	wantRule(t, vs, "job-node-referential")
}

func TestInvariantRunningOnDeadNode(t *testing.T) {
	s := healthyStore(t)
	_ = s.UpdateNode("n1", func(n *db.NodeRecord) { n.Status = db.NodeDeparted })
	wantRule(t, NewChecker().Check(s), "running-node-live")
}

func TestInvariantDeviceMarkedFree(t *testing.T) {
	s := healthyStore(t)
	_ = s.UpdateNode("n1", func(n *db.NodeRecord) { n.GPUs[0].Allocated = false })
	wantRule(t, NewChecker().Check(s), "running-device-allocated")
}

func TestInvariantPendingHoldsPlacement(t *testing.T) {
	s := healthyStore(t)
	_ = s.UpdateJob("j-pend", func(j *db.JobRecord) { j.NodeID = "n2" })
	wantRule(t, NewChecker().Check(s), "pending-detached")
}

func TestInvariantOrphanAllocation(t *testing.T) {
	s := healthyStore(t)
	s.RecordAllocation(db.AllocationRecord{JobID: "ghost-job", NodeID: "n1", DeviceID: "gpu0", Start: t0})
	wantRule(t, NewChecker().Check(s), "alloc-referential")
}

func TestInvariantTerminalJobWithOpenEpisode(t *testing.T) {
	s := healthyStore(t)
	// Complete the job without closing its allocation — the leak the
	// checker exists to catch.
	_ = s.UpdateJob("j-run", func(j *db.JobRecord) { j.State = db.JobCompleted })
	wantRule(t, NewChecker().Check(s), "alloc-matches-job")
}

func TestInvariantRunningWithoutEpisode(t *testing.T) {
	s := healthyStore(t)
	if err := s.CloseAllocation("j-run", t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	wantRule(t, NewChecker().Check(s), "alloc-matches-job")
}

func TestInvariantLSNMonotonic(t *testing.T) {
	s := healthyStore(t)
	c := NewChecker()
	if vs := c.Check(s); len(vs) != 0 {
		t.Fatalf("first check: %s", rules(vs))
	}
	// A fresh, emptier store models a recovery that lost history: its
	// LSN sits below the high-water mark the checker remembers.
	s2 := db.New(0)
	s2.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeActive})
	wantRule(t, c.Check(s2), "lsn-monotonic")
}

func TestInvariantStateCountsAcrossImport(t *testing.T) {
	s := healthyStore(t)
	// Round-trip through export/import must keep the sharded counters
	// in sync with the scan.
	s2 := db.New(0)
	s2.ImportState(s.ExportState())
	if vs := NewChecker().Check(s2); len(vs) != 0 {
		t.Fatalf("imported store flagged: %s", rules(vs))
	}
}

func TestCheckEquivalence(t *testing.T) {
	s := healthyStore(t)
	st := s.ExportState()
	if vs := CheckEquivalence(st, st); len(vs) != 0 {
		t.Fatalf("identical states flagged: %v", vs)
	}
	mut := s.ExportState()
	mut.Jobs[0].State = db.JobFailed
	wantRule(t, CheckEquivalence(st, mut), "recovery-equivalence")

	back := s.ExportState()
	back.Watermark = 0
	if st.Watermark > 0 {
		wantRule(t, CheckEquivalence(st, back), "recovery-equivalence")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: "r", Detail: "d"}
	if v.String() != "r: d" {
		t.Fatalf("String() = %q", v.String())
	}
}
