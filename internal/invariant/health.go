package invariant

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/monitor"
)

// Gray-failure invariants. Three rules audit the health pipeline:
//
//   - health-score-consistent: every persisted health score is exactly
//     the deterministic fold of the events the mutation stream carries
//     — same recipe as beat-delta-equivalence. A fold applied twice
//     (duplicate delivery), a dropped event batch, or a score that
//     drifted through replay or promotion all surface as a divergence;
//   - no-placement-on-unhealthy: the scheduler never places new work on
//     a node whose health score sits below monitor.UnhealthyBelow;
//   - degraded-node-drained: a node that has been unhealthy for longer
//     than the drain grace holds no running jobs while a feasible free
//     device exists on a healthy node — predictive checkpoint-then-
//     migrate must actually move the work, not just stop new work.

// healthPoint is one node's folded health state at a stream position.
type healthPoint struct {
	score float64
	at    time.Time
	seen  bool // false until any fold or image has installed a score
}

// CheckHealthDeltas audits health-score-consistent. base holds each
// node's (Health, HealthAt) when the stream began; muts is the
// committed mutation stream since then (node images install their
// after-image verbatim; health records are refolded); nodes is the
// store's current node table; params must be the parameters the
// coordinator folded with (the platform fixes them to the defaults).
// The fold recomputation is exact: FoldHealth is deterministic, the
// carried score is its after-image, and replay installs that image
// verbatim — so any inequality, including across crash recovery and
// standby promotion, is a platform bug, not float noise.
func CheckHealthDeltas(base map[string]healthPoint, muts []db.Mutation,
	nodes []db.NodeRecord, params monitor.HealthParams) []Violation {
	var vs []Violation
	expected := make(map[string]healthPoint, len(base))
	for id, hp := range base {
		expected[id] = hp
	}
	ordered := make([]db.Mutation, len(muts))
	copy(ordered, muts)
	// LSN order restores commit order across racing shard deliveries;
	// both record types touching one node share its shard.
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].LSN < ordered[j].LSN })
	for _, m := range ordered {
		switch m.Type {
		case db.MutNodePut:
			if m.Node != nil {
				expected[m.Node.ID] = healthPoint{
					score: m.Node.Health, at: m.Node.HealthAt, seen: true,
				}
			}
		case db.MutNodeHealth:
			h := m.Health
			if h == nil {
				vs = append(vs, Violation{
					Rule:   "health-score-consistent",
					Detail: fmt.Sprintf("health record at LSN %d carries no payload", m.LSN),
				})
				continue
			}
			prev, ok := expected[h.NodeID]
			if !ok || !prev.seen {
				vs = append(vs, Violation{
					Rule:   "health-score-consistent",
					Detail: fmt.Sprintf("health fold at LSN %d targets node %s with no installed image", m.LSN, h.NodeID),
				})
				expected[h.NodeID] = healthPoint{score: h.Score, at: h.At, seen: true}
				continue
			}
			if !h.At.After(prev.at) {
				vs = append(vs, Violation{
					Rule: "health-score-consistent",
					Detail: fmt.Sprintf("health fold at LSN %d does not advance node %s (%s after %s)",
						m.LSN, h.NodeID, h.At.Format(time.RFC3339Nano), prev.at.Format(time.RFC3339Nano)),
				})
				continue
			}
			// Empty events are legitimate: the sweep's decay records.
			want := monitor.FoldHealth(prev.score, prev.at, h.At, h.Events, params)
			if want != h.Score {
				vs = append(vs, Violation{
					Rule: "health-score-consistent",
					Detail: fmt.Sprintf("health fold at LSN %d for node %s carries score %v, refolding its %d events yields %v",
						m.LSN, h.NodeID, h.Score, len(h.Events), want),
				})
			}
			expected[h.NodeID] = healthPoint{score: h.Score, at: h.At, seen: true}
		}
	}
	for i := range nodes {
		n := &nodes[i]
		want, ok := expected[n.ID]
		if !ok {
			vs = append(vs, Violation{
				Rule:   "health-score-consistent",
				Detail: fmt.Sprintf("node %s in the store but absent from the audited stream", n.ID),
			})
			continue
		}
		if want.score != n.Health || !want.at.Equal(n.HealthAt) {
			vs = append(vs, Violation{
				Rule: "health-score-consistent",
				Detail: fmt.Sprintf("node %s health diverges: folding the stream yields %v at %s, the store holds %v at %s",
					n.ID, want.score, want.at.Format(time.RFC3339Nano),
					n.Health, n.HealthAt.Format(time.RFC3339Nano)),
			})
		}
	}
	return vs
}

// HealthAudit records the node-image and health-fold slice of a live
// store's mutation stream so CheckHealthDeltas can run at any later
// quiescent point. Attach at a quiescent point, like BeatAudit: the
// base snapshot and the subscription are not atomic.
type HealthAudit struct {
	params monitor.HealthParams

	mu   sync.Mutex
	base map[string]healthPoint
	muts []db.Mutation
}

// NewHealthAudit snapshots the store's current health state and
// subscribes to its mutation stream. The returned cancel detaches the
// subscription.
func NewHealthAudit(s db.Store) (*HealthAudit, func()) {
	a := &HealthAudit{
		params: monitor.DefaultHealthParams(),
		base:   make(map[string]healthPoint),
	}
	for _, n := range s.ListNodes() {
		a.base[n.ID] = healthPoint{score: n.Health, at: n.HealthAt, seen: true}
	}
	return a, s.AddMutationObserver(a.observe)
}

func (a *HealthAudit) observe(m db.Mutation) {
	if m.Type != db.MutNodePut && m.Type != db.MutNodeHealth {
		return
	}
	a.mu.Lock()
	a.muts = append(a.muts, m)
	a.mu.Unlock()
}

// Check folds the recorded stream and compares it against the store's
// current node table. Call at a quiescent point.
func (a *HealthAudit) Check(s db.Store) []Violation {
	a.mu.Lock()
	muts := make([]db.Mutation, len(a.muts))
	copy(muts, a.muts)
	base := a.base
	a.mu.Unlock()
	return CheckHealthDeltas(base, muts, s.ListNodes(), a.params)
}

// CheckNoPlacementOnUnhealthy audits that the scheduler honors the
// unhealthy exclusion: no running job was placed after its node's
// latest health fold while that node sits below the drain threshold.
// Jobs placed before the fold are legitimate — they are the drain's
// work, not the scheduler's mistake.
func CheckNoPlacementOnUnhealthy(s db.Store) []Violation {
	var vs []Violation
	nodes := s.ListNodes()
	for i := range nodes {
		n := &nodes[i]
		if n.HealthScore() >= monitor.UnhealthyBelow {
			continue
		}
		for _, j := range s.JobsOnNode(n.ID) {
			if j.State != db.JobRunning {
				continue
			}
			if j.PlacedAt.After(n.HealthAt) {
				vs = append(vs, Violation{
					Rule: "no-placement-on-unhealthy",
					Detail: fmt.Sprintf("job %s placed on node %s at %s, after its health dropped to %v at %s",
						j.ID, n.ID, j.PlacedAt.Format(time.RFC3339Nano),
						n.HealthScore(), n.HealthAt.Format(time.RFC3339Nano)),
				})
			}
		}
	}
	return vs
}

// CheckDegradedDrained audits that predictive drain actually moves
// work: an Active node that has sat below the unhealthy threshold for
// longer than grace must not still host a running job when a feasible
// free device (memory and capability both sufficient) exists on a
// healthy active node. Without spare capacity the job legitimately
// stays — a degraded node beats no node.
//
// unhealthySince maps node ID to when the auditor first observed the
// node below the threshold; the caller maintains it across audit
// points (the store only records each node's last fold time, not its
// crossing time). Nodes absent from the map are skipped: the crossing
// is too recent for the drain to owe an answer yet.
func CheckDegradedDrained(s db.Store, unhealthySince map[string]time.Time,
	now time.Time, grace time.Duration) []Violation {
	var vs []Violation
	nodes := s.ListNodes()
	for i := range nodes {
		n := &nodes[i]
		if n.Status != db.NodeActive || n.HealthScore() >= monitor.UnhealthyBelow {
			continue
		}
		since, ok := unhealthySince[n.ID]
		if !ok || now.Sub(since) <= grace {
			continue
		}
		for _, j := range s.JobsOnNode(n.ID) {
			if j.State != db.JobRunning {
				continue
			}
			if !spareDeviceFor(j, nodes, n.ID) {
				continue
			}
			vs = append(vs, Violation{
				Rule: "degraded-node-drained",
				Detail: fmt.Sprintf("job %s still runs on node %s (score %v), unhealthy for %v, with a feasible free device elsewhere",
					j.ID, n.ID, n.HealthScore(), now.Sub(since)),
			})
		}
	}
	return vs
}

// spareDeviceFor reports whether any healthy active node other than
// exclude offers a free device that fits the job.
func spareDeviceFor(j db.JobRecord, nodes []db.NodeRecord, exclude string) bool {
	need := gpu.ComputeCapability{Major: j.CapabilityMajor, Minor: j.CapabilityMinor}
	for i := range nodes {
		n := &nodes[i]
		if n.ID == exclude || n.Status != db.NodeActive ||
			n.HealthScore() < monitor.UnhealthyBelow {
			continue
		}
		for _, g := range n.GPUs {
			if g.Allocated || g.MemoryMiB < j.GPUMemMiB {
				continue
			}
			have := gpu.ComputeCapability{Major: g.CapabilityMajor, Minor: g.CapabilityMinor}
			if have.AtLeast(need) {
				return true
			}
		}
	}
	return false
}
