// Package heartbeat implements GPUnion's failure detector: provider
// agents report periodically, and a node that misses a configurable
// number of consecutive beats (three, per §3.5) is marked unavailable,
// triggering workload migration.
//
// Emergency departures are *not announced* — heartbeat loss is the only
// signal — so the monitor distinguishes "announced departure" (the agent
// said goodbye; stop expecting beats) from "silent loss".
package heartbeat

import (
	"sync"
	"time"
)

// DefaultInterval is the default beat period.
const DefaultInterval = 10 * time.Second

// DefaultMissedThreshold is how many consecutive missed beats mark a
// node unavailable (§3.5: "nodes that miss three consecutive heartbeats
// are marked as unavailable").
const DefaultMissedThreshold = 3

// Monitor tracks per-node heartbeat liveness. It is driven externally:
// Beat records arrivals, Sweep(now) evaluates deadlines. This makes the
// monitor equally usable under real and simulated clocks.
type Monitor struct {
	mu        sync.Mutex
	interval  time.Duration
	threshold int
	nodes     map[string]*nodeBeat
}

type nodeBeat struct {
	lastBeat time.Time
	// suspended nodes announced a departure/pause; no beats expected.
	suspended bool
	// down marks nodes already reported unreachable (avoid re-reporting).
	down bool
}

// NewMonitor creates a Monitor. interval <= 0 and threshold <= 0 take
// the defaults.
func NewMonitor(interval time.Duration, threshold int) *Monitor {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if threshold <= 0 {
		threshold = DefaultMissedThreshold
	}
	return &Monitor{
		interval:  interval,
		threshold: threshold,
		nodes:     make(map[string]*nodeBeat),
	}
}

// Interval returns the expected beat period.
func (m *Monitor) Interval() time.Duration { return m.interval }

// Track starts monitoring a node as of now (registration time counts as
// a beat).
func (m *Monitor) Track(nodeID string, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[nodeID] = &nodeBeat{lastBeat: now}
}

// Forget stops monitoring a node entirely.
func (m *Monitor) Forget(nodeID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.nodes, nodeID)
}

// Beat records a heartbeat. Unknown nodes are ignored (the coordinator
// asks them to re-register). A beat from a suspended or down node
// revives it; Sweep callers learn about revivals via Returned.
func (m *Monitor) Beat(nodeID string, now time.Time) (known bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nb, ok := m.nodes[nodeID]
	if !ok {
		return false
	}
	nb.lastBeat = now
	nb.suspended = false
	nb.down = false
	return true
}

// Suspend marks a node as having announced a departure or pause: beats
// are no longer expected and the node will not be reported lost.
func (m *Monitor) Suspend(nodeID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if nb, ok := m.nodes[nodeID]; ok {
		nb.suspended = true
	}
}

// Lost returns the nodes newly detected unreachable as of now: tracked,
// not suspended, not previously reported, and silent for at least
// threshold × interval. Each lost node is reported exactly once until it
// beats again.
func (m *Monitor) Lost(now time.Time) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	deadline := time.Duration(m.threshold) * m.interval
	var lost []string
	for id, nb := range m.nodes {
		if nb.suspended || nb.down {
			continue
		}
		if now.Sub(nb.lastBeat) >= deadline {
			nb.down = true
			lost = append(lost, id)
		}
	}
	sortStrings(lost)
	return lost
}

// MissedBeats reports how many full intervals have elapsed since the
// node's last beat (0 for unknown nodes).
func (m *Monitor) MissedBeats(nodeID string, now time.Time) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	nb, ok := m.nodes[nodeID]
	if !ok {
		return 0
	}
	missed := int(now.Sub(nb.lastBeat) / m.interval)
	if missed < 0 {
		missed = 0
	}
	return missed
}

// Alive reports whether the node is tracked and not down/suspended.
func (m *Monitor) Alive(nodeID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	nb, ok := m.nodes[nodeID]
	return ok && !nb.down && !nb.suspended
}

// Tracked returns the number of nodes being monitored.
func (m *Monitor) Tracked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.nodes)
}

// sortStrings is a tiny insertion sort to avoid importing sort for a
// usually-tiny slice in a hot sweep path.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
