package heartbeat

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

func TestDefaults(t *testing.T) {
	m := NewMonitor(0, 0)
	if m.Interval() != DefaultInterval {
		t.Fatalf("interval = %v", m.Interval())
	}
}

func TestBeatKeepsNodeAlive(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	m.Track("n1", t0)
	// Beat every interval for 10 intervals: never lost.
	for i := 1; i <= 10; i++ {
		now := t0.Add(time.Duration(i) * 10 * time.Second)
		if !m.Beat("n1", now) {
			t.Fatal("known node reported unknown")
		}
		if lost := m.Lost(now); len(lost) != 0 {
			t.Fatalf("lost = %v at beat %d", lost, i)
		}
	}
}

func TestThreeMissedBeatsMarksLost(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	m.Track("n1", t0)
	// At 29s: only 2 intervals + change missed — still alive.
	if lost := m.Lost(t0.Add(29 * time.Second)); len(lost) != 0 {
		t.Fatalf("lost early: %v", lost)
	}
	// At exactly 3 intervals: lost.
	lost := m.Lost(t0.Add(30 * time.Second))
	if len(lost) != 1 || lost[0] != "n1" {
		t.Fatalf("lost = %v, want [n1]", lost)
	}
}

func TestLostReportedOnce(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	m.Track("n1", t0)
	if lost := m.Lost(t0.Add(time.Minute)); len(lost) != 1 {
		t.Fatalf("first sweep lost = %v", lost)
	}
	if lost := m.Lost(t0.Add(2 * time.Minute)); len(lost) != 0 {
		t.Fatalf("second sweep re-reported: %v", lost)
	}
}

func TestBeatRevivesDownNode(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	m.Track("n1", t0)
	_ = m.Lost(t0.Add(time.Minute)) // down
	if m.Alive("n1") {
		t.Fatal("down node reported alive")
	}
	m.Beat("n1", t0.Add(2*time.Minute))
	if !m.Alive("n1") {
		t.Fatal("beat did not revive node")
	}
	// It can be lost again later (re-reported after revival).
	if lost := m.Lost(t0.Add(10 * time.Minute)); len(lost) != 1 {
		t.Fatalf("revived node not re-reportable: %v", lost)
	}
}

func TestSuspendedNodeNeverLost(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	m.Track("n1", t0)
	m.Suspend("n1")
	if lost := m.Lost(t0.Add(time.Hour)); len(lost) != 0 {
		t.Fatalf("suspended node reported lost: %v", lost)
	}
	if m.Alive("n1") {
		t.Fatal("suspended node reported alive")
	}
}

func TestBeatAfterSuspendResumes(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	m.Track("n1", t0)
	m.Suspend("n1")                 // temporary departure
	m.Beat("n1", t0.Add(time.Hour)) // provider returns
	if !m.Alive("n1") {
		t.Fatal("returned node not alive")
	}
	if lost := m.Lost(t0.Add(time.Hour + 30*time.Second)); len(lost) != 1 {
		t.Fatalf("returned node not monitored again: %v", lost)
	}
}

func TestUnknownBeatRejected(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	if m.Beat("ghost", t0) {
		t.Fatal("unknown node beat accepted")
	}
}

func TestForget(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	m.Track("n1", t0)
	m.Forget("n1")
	if m.Tracked() != 0 {
		t.Fatalf("Tracked = %d", m.Tracked())
	}
	if lost := m.Lost(t0.Add(time.Hour)); len(lost) != 0 {
		t.Fatalf("forgotten node lost: %v", lost)
	}
}

func TestMissedBeats(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	m.Track("n1", t0)
	if got := m.MissedBeats("n1", t0.Add(25*time.Second)); got != 2 {
		t.Fatalf("MissedBeats = %d, want 2", got)
	}
	if got := m.MissedBeats("ghost", t0); got != 0 {
		t.Fatalf("unknown MissedBeats = %d", got)
	}
	// Clock skew (beat in the future) clamps to zero.
	m.Beat("n1", t0.Add(time.Hour))
	if got := m.MissedBeats("n1", t0); got != 0 {
		t.Fatalf("negative MissedBeats = %d", got)
	}
}

func TestMultipleNodesSortedLoss(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	for _, id := range []string{"n3", "n1", "n2"} {
		m.Track(id, t0)
	}
	m.Beat("n2", t0.Add(50*time.Second)) // n2 stays alive
	lost := m.Lost(t0.Add(time.Minute))
	if len(lost) != 2 || lost[0] != "n1" || lost[1] != "n3" {
		t.Fatalf("lost = %v, want [n1 n3]", lost)
	}
}

func TestTrackResetsState(t *testing.T) {
	m := NewMonitor(10*time.Second, 3)
	m.Track("n1", t0)
	_ = m.Lost(t0.Add(time.Minute))
	// Re-registration: fresh tracking state.
	m.Track("n1", t0.Add(2*time.Minute))
	if !m.Alive("n1") {
		t.Fatal("re-tracked node not alive")
	}
}

// Property: a node beating at least every (threshold-1) intervals is
// never reported lost, regardless of the sweep schedule.
func TestNeverLostWhileBeatingProperty(t *testing.T) {
	f := func(sweepOffsets []uint8) bool {
		const interval = 10 * time.Second
		m := NewMonitor(interval, 3)
		m.Track("n1", t0)
		now := t0
		for i, off := range sweepOffsets {
			// Beat every 2 intervals (less than the 3-interval deadline).
			now = t0.Add(time.Duration(i) * 2 * interval)
			m.Beat("n1", now)
			sweep := now.Add(time.Duration(off%20) * time.Second)
			if sweep.Sub(now) < 3*interval {
				if lost := m.Lost(sweep); len(lost) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
