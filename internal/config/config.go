// Package config parses the JSON configuration files of GPUnion's two
// daemons. Lightweight integration is a design principle (§1): one small
// file per machine, sane defaults for everything else.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"gpunion/internal/gpu"
)

// Coordinator is the central daemon's configuration.
type Coordinator struct {
	// Listen is the HTTP bind address, e.g. ":8080".
	Listen string `json:"listen"`
	// HeartbeatIntervalSec is the agent reporting period (default 10).
	HeartbeatIntervalSec int `json:"heartbeat_interval_sec"`
	// MissedThreshold marks nodes lost after this many silent
	// intervals (default 3).
	MissedThreshold int `json:"missed_threshold"`
	// Strategy is "round-robin" (default), "best-fit" or "least-loaded".
	Strategy string `json:"strategy"`
	// SchedulerBatchSize caps how many pending requests one scheduling
	// cycle drains as a batch (default 32).
	SchedulerBatchSize int `json:"scheduler_batch_size"`
	// SnapshotPath, when set, persists the system database there as a
	// one-shot JSON dump on shutdown.
	//
	// Deprecated: use WALDir — it is crash-safe (append-only log +
	// background snapshots) where SnapshotPath loses everything since
	// the last clean shutdown. SnapshotPath is ignored when WALDir is
	// set.
	SnapshotPath string `json:"snapshot_path"`
	// WALDir, when set, enables durable persistence: every database
	// mutation is group-committed to a write-ahead log in this
	// directory, a background snapshotter checkpoints the store, and
	// the daemon recovers nodes/jobs/allocations from it on boot.
	WALDir string `json:"wal_dir"`
	// WALGroupCommitMS is the group-commit accumulation window in
	// milliseconds (default 2; 0 also means the default — use the
	// internal/wal API directly for pure natural batching).
	WALGroupCommitMS int `json:"wal_group_commit_ms"`
	// SnapshotIntervalSec is the background checkpoint period in
	// seconds when WALDir is set (default 300).
	SnapshotIntervalSec int `json:"snapshot_interval_sec"`
}

// HeartbeatInterval returns the configured interval as a duration.
func (c Coordinator) HeartbeatInterval() time.Duration {
	return time.Duration(c.HeartbeatIntervalSec) * time.Second
}

// WALGroupCommit returns the group-commit window as a duration.
func (c Coordinator) WALGroupCommit() time.Duration {
	return time.Duration(c.WALGroupCommitMS) * time.Millisecond
}

// SnapshotInterval returns the checkpoint period as a duration.
func (c Coordinator) SnapshotInterval() time.Duration {
	return time.Duration(c.SnapshotIntervalSec) * time.Second
}

// Validate applies defaults and checks invariants.
func (c *Coordinator) Validate() error {
	if c.Listen == "" {
		c.Listen = ":8080"
	}
	if c.HeartbeatIntervalSec <= 0 {
		c.HeartbeatIntervalSec = 10
	}
	if c.MissedThreshold <= 0 {
		c.MissedThreshold = 3
	}
	if c.SchedulerBatchSize <= 0 {
		c.SchedulerBatchSize = 32
	}
	switch c.Strategy {
	case "":
		c.Strategy = "round-robin"
	case "round-robin", "best-fit", "least-loaded":
	default:
		return fmt.Errorf("config: unknown strategy %q", c.Strategy)
	}
	if c.WALGroupCommitMS < 0 {
		return fmt.Errorf("config: wal_group_commit_ms is negative (%d)", c.WALGroupCommitMS)
	}
	if c.WALGroupCommitMS == 0 {
		c.WALGroupCommitMS = 2
	}
	if c.SnapshotIntervalSec < 0 {
		return fmt.Errorf("config: snapshot_interval_sec is negative (%d)", c.SnapshotIntervalSec)
	}
	if c.SnapshotIntervalSec == 0 {
		c.SnapshotIntervalSec = 300
	}
	return nil
}

// Environment variables overriding the coordinator's persistence
// settings (useful in containers, where rewriting a config file is
// awkward).
const (
	EnvWALDir              = "GPUNION_WAL_DIR"
	EnvWALGroupCommitMS    = "GPUNION_WAL_GROUP_COMMIT_MS"
	EnvSnapshotIntervalSec = "GPUNION_SNAPSHOT_INTERVAL_SEC"
)

// ApplyEnv overlays persistence settings from the environment: set
// variables win over the file, unset ones leave it untouched. lookup is
// os.LookupEnv in the daemon and an injected map in tests. Call before
// Validate.
func (c *Coordinator) ApplyEnv(lookup func(string) (string, bool)) error {
	if v, ok := lookup(EnvWALDir); ok {
		c.WALDir = v
	}
	if v, ok := lookup(EnvWALGroupCommitMS); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("config: %s=%q: %w", EnvWALGroupCommitMS, v, err)
		}
		c.WALGroupCommitMS = n
	}
	if v, ok := lookup(EnvSnapshotIntervalSec); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("config: %s=%q: %w", EnvSnapshotIntervalSec, v, err)
		}
		c.SnapshotIntervalSec = n
	}
	return nil
}

// GPUEntry declares devices installed in a provider node.
type GPUEntry struct {
	// Model must name a catalog GPU ("RTX 3090", "RTX 4090", "A100",
	// "A6000").
	Model string `json:"model"`
	// Count is how many boards of this model are installed.
	Count int `json:"count"`
}

// Agent is the provider daemon's configuration.
type Agent struct {
	// CoordinatorURL is the central daemon's base URL.
	CoordinatorURL string `json:"coordinator_url"`
	// Listen is the agent's HTTP bind address, e.g. ":7070".
	Listen string `json:"listen"`
	// AdvertiseURL is the address the coordinator should dial back;
	// defaults to "http://127.0.0.1" + Listen.
	AdvertiseURL string `json:"advertise_url"`
	// GPUs inventories the node's devices.
	GPUs []GPUEntry `json:"gpus"`
	// Kernel is the host kernel version (informational).
	Kernel string `json:"kernel"`
	// CheckpointIntervalSec is the default ALC cadence (default 600).
	CheckpointIntervalSec int `json:"checkpoint_interval_sec"`
	// StorageBytes is scratch capacity offered to the platform.
	StorageBytes int64 `json:"storage_bytes"`
}

// Validate applies defaults and checks invariants.
func (a *Agent) Validate() error {
	if a.CoordinatorURL == "" {
		return errors.New("config: coordinator_url is required")
	}
	if a.Listen == "" {
		a.Listen = ":7070"
	}
	if a.AdvertiseURL == "" {
		a.AdvertiseURL = "http://127.0.0.1" + a.Listen
	}
	if len(a.GPUs) == 0 {
		a.GPUs = []GPUEntry{{Model: "RTX 3090", Count: 1}}
	}
	for _, e := range a.GPUs {
		if _, ok := gpu.SpecByModel(e.Model); !ok {
			return fmt.Errorf("config: unknown GPU model %q", e.Model)
		}
		if e.Count <= 0 {
			return fmt.Errorf("config: GPU model %q has count %d", e.Model, e.Count)
		}
	}
	if a.Kernel == "" {
		a.Kernel = "5.15"
	}
	if a.CheckpointIntervalSec <= 0 {
		a.CheckpointIntervalSec = 600
	}
	if a.StorageBytes <= 0 {
		a.StorageBytes = 100 << 30
	}
	return nil
}

// Inventory expands the GPU entries into device specs.
func (a Agent) Inventory() ([]gpu.Spec, error) {
	var specs []gpu.Spec
	for _, e := range a.GPUs {
		spec, ok := gpu.SpecByModel(e.Model)
		if !ok {
			return nil, fmt.Errorf("config: unknown GPU model %q", e.Model)
		}
		for i := 0; i < e.Count; i++ {
			specs = append(specs, spec)
		}
	}
	return specs, nil
}

// LoadCoordinator reads and validates a coordinator config file.
func LoadCoordinator(path string) (Coordinator, error) {
	var c Coordinator
	if err := loadJSON(path, &c); err != nil {
		return c, err
	}
	return c, c.Validate()
}

// LoadAgent reads and validates an agent config file.
func LoadAgent(path string) (Agent, error) {
	var a Agent
	if err := loadJSON(path, &a); err != nil {
		return a, err
	}
	return a, a.Validate()
}

// ParseCoordinator decodes a coordinator config from a reader.
func ParseCoordinator(r io.Reader) (Coordinator, error) {
	var c Coordinator
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return c, fmt.Errorf("config: decoding coordinator config: %w", err)
	}
	return c, c.Validate()
}

// ParseAgent decodes an agent config from a reader.
func ParseAgent(r io.Reader) (Agent, error) {
	var a Agent
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return a, fmt.Errorf("config: decoding agent config: %w", err)
	}
	return a, a.Validate()
}

func loadJSON(path string, out any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("config: opening %s: %w", path, err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(out); err != nil {
		return fmt.Errorf("config: decoding %s: %w", path, err)
	}
	return nil
}
