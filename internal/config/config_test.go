package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCoordinatorDefaults(t *testing.T) {
	var c Coordinator
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Listen != ":8080" || c.HeartbeatIntervalSec != 10 || c.MissedThreshold != 3 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Strategy != "round-robin" {
		t.Fatalf("strategy = %q", c.Strategy)
	}
	if c.HeartbeatInterval() != 10*time.Second {
		t.Fatalf("interval = %v", c.HeartbeatInterval())
	}
}

func TestCoordinatorBadStrategy(t *testing.T) {
	c := Coordinator{Strategy: "random"}
	if err := c.Validate(); err == nil {
		t.Fatal("bad strategy accepted")
	}
}

func TestCoordinatorValidStrategies(t *testing.T) {
	for _, s := range []string{"round-robin", "best-fit", "least-loaded"} {
		c := Coordinator{Strategy: s}
		if err := c.Validate(); err != nil {
			t.Errorf("strategy %q rejected: %v", s, err)
		}
	}
}

func TestAgentRequiresCoordinatorURL(t *testing.T) {
	var a Agent
	if err := a.Validate(); err == nil {
		t.Fatal("missing coordinator_url accepted")
	}
}

func TestAgentDefaults(t *testing.T) {
	a := Agent{CoordinatorURL: "http://coord:8080"}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Listen != ":7070" || a.AdvertiseURL != "http://127.0.0.1:7070" {
		t.Fatalf("defaults = %+v", a)
	}
	if len(a.GPUs) != 1 || a.GPUs[0].Model != "RTX 3090" {
		t.Fatalf("default GPUs = %+v", a.GPUs)
	}
	if a.CheckpointIntervalSec != 600 || a.StorageBytes <= 0 {
		t.Fatalf("defaults = %+v", a)
	}
}

func TestAgentUnknownGPU(t *testing.T) {
	a := Agent{CoordinatorURL: "http://x", GPUs: []GPUEntry{{Model: "H100", Count: 1}}}
	if err := a.Validate(); err == nil {
		t.Fatal("unknown GPU model accepted")
	}
	a = Agent{CoordinatorURL: "http://x", GPUs: []GPUEntry{{Model: "A100", Count: 0}}}
	if err := a.Validate(); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestAgentInventoryExpansion(t *testing.T) {
	a := Agent{CoordinatorURL: "http://x", GPUs: []GPUEntry{
		{Model: "A100", Count: 2}, {Model: "A6000", Count: 4},
	}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	specs, err := a.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 || specs[0].Model != "A100" || specs[5].Model != "A6000" {
		t.Fatalf("inventory = %+v", specs)
	}
}

func TestParseCoordinator(t *testing.T) {
	c, err := ParseCoordinator(strings.NewReader(`{"listen": ":9999", "strategy": "best-fit"}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Listen != ":9999" || c.Strategy != "best-fit" {
		t.Fatalf("parsed = %+v", c)
	}
	if _, err := ParseCoordinator(strings.NewReader("{bad")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestParseAgent(t *testing.T) {
	a, err := ParseAgent(strings.NewReader(`{
		"coordinator_url": "http://coord:8080",
		"gpus": [{"model": "RTX 4090", "count": 8}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.GPUs) != 1 || a.GPUs[0].Count != 8 {
		t.Fatalf("parsed = %+v", a)
	}
}

func TestLoadFromFiles(t *testing.T) {
	dir := t.TempDir()
	cpath := filepath.Join(dir, "coord.json")
	if err := os.WriteFile(cpath, []byte(`{"listen": ":8181"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCoordinator(cpath)
	if err != nil || c.Listen != ":8181" {
		t.Fatalf("LoadCoordinator = %+v, %v", c, err)
	}
	apath := filepath.Join(dir, "agent.json")
	if err := os.WriteFile(apath, []byte(`{"coordinator_url": "http://c"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := LoadAgent(apath)
	if err != nil || a.CoordinatorURL != "http://c" {
		t.Fatalf("LoadAgent = %+v, %v", a, err)
	}
	if _, err := LoadCoordinator(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCoordinatorWALDefaults(t *testing.T) {
	var c Coordinator
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.WALDir != "" {
		t.Fatalf("WAL enabled by default: %q", c.WALDir)
	}
	if c.WALGroupCommitMS != 2 || c.SnapshotIntervalSec != 300 {
		t.Fatalf("WAL defaults = %+v", c)
	}
	if c.WALGroupCommit() != 2*time.Millisecond || c.SnapshotInterval() != 5*time.Minute {
		t.Fatalf("durations = %v / %v", c.WALGroupCommit(), c.SnapshotInterval())
	}
}

func TestCoordinatorWALValidation(t *testing.T) {
	c := Coordinator{WALGroupCommitMS: -1}
	if err := c.Validate(); err == nil {
		t.Fatal("negative wal_group_commit_ms accepted")
	}
	c = Coordinator{SnapshotIntervalSec: -5}
	if err := c.Validate(); err == nil {
		t.Fatal("negative snapshot_interval_sec accepted")
	}
	c = Coordinator{WALDir: "/var/lib/gpunion/wal", WALGroupCommitMS: 10, SnapshotIntervalSec: 60}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.WALGroupCommitMS != 10 || c.SnapshotIntervalSec != 60 {
		t.Fatalf("explicit values clobbered: %+v", c)
	}
}

func TestCoordinatorParseWALFields(t *testing.T) {
	c, err := ParseCoordinator(strings.NewReader(
		`{"wal_dir": "/data/wal", "wal_group_commit_ms": 5, "snapshot_interval_sec": 120}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.WALDir != "/data/wal" || c.WALGroupCommitMS != 5 || c.SnapshotIntervalSec != 120 {
		t.Fatalf("parsed = %+v", c)
	}
}

func TestCoordinatorApplyEnv(t *testing.T) {
	env := map[string]string{
		EnvWALDir:              "/env/wal",
		EnvWALGroupCommitMS:    "7",
		EnvSnapshotIntervalSec: "45",
	}
	lookup := func(k string) (string, bool) { v, ok := env[k]; return v, ok }

	c := Coordinator{WALDir: "/file/wal", WALGroupCommitMS: 3}
	if err := c.ApplyEnv(lookup); err != nil {
		t.Fatal(err)
	}
	if c.WALDir != "/env/wal" || c.WALGroupCommitMS != 7 || c.SnapshotIntervalSec != 45 {
		t.Fatalf("env overlay = %+v", c)
	}

	// Unset variables leave file values untouched.
	c = Coordinator{WALDir: "/file/wal", WALGroupCommitMS: 3}
	if err := c.ApplyEnv(func(string) (string, bool) { return "", false }); err != nil {
		t.Fatal(err)
	}
	if c.WALDir != "/file/wal" || c.WALGroupCommitMS != 3 {
		t.Fatalf("unset env clobbered file config: %+v", c)
	}

	// Garbage numerics are an error, not silently ignored.
	env[EnvWALGroupCommitMS] = "soon"
	if err := c.ApplyEnv(lookup); err == nil {
		t.Fatal("non-numeric env value accepted")
	}
}
