package container

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestComputeDigestDeterministic(t *testing.T) {
	d1 := ComputeDigest("manifest-a")
	d2 := ComputeDigest("manifest-a")
	d3 := ComputeDigest("manifest-b")
	if d1 != d2 {
		t.Fatal("same manifest produced different digests")
	}
	if d1 == d3 {
		t.Fatal("different manifests produced the same digest")
	}
	if !strings.HasPrefix(d1, "sha256:") || len(d1) != len("sha256:")+64 {
		t.Fatalf("digest shape %q", d1)
	}
}

func TestImageVerify(t *testing.T) {
	im := NewImage("a:1", "content", 100)
	if err := im.Verify(); err != nil {
		t.Fatalf("fresh image failed verification: %v", err)
	}
	im.Manifest = "tampered"
	if err := im.Verify(); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("tampered image err = %v, want ErrDigestMismatch", err)
	}
}

func TestImageStoreAddRejectsBadDigest(t *testing.T) {
	s := NewImageStore()
	im := NewImage("a:1", "content", 100)
	im.Digest = "sha256:deadbeef"
	if err := s.Add(im); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("Add err = %v, want ErrDigestMismatch", err)
	}
}

func TestImageStoreGet(t *testing.T) {
	s := NewImageStore()
	im := NewImage("a:1", "content", 100)
	if err := s.Add(im); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a:1")
	if err != nil || got.Digest != im.Digest {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("missing err = %v", err)
	}
}

func TestAdmitRequiresAllowList(t *testing.T) {
	s := NewImageStore()
	im := NewImage("a:1", "content", 100)
	if err := s.Add(im); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit("a:1"); !errors.Is(err, ErrImageNotAllowed) {
		t.Fatalf("unallowed Admit err = %v, want ErrImageNotAllowed", err)
	}
	s.Allow(im.Digest)
	if _, err := s.Admit("a:1"); err != nil {
		t.Fatalf("allowed Admit: %v", err)
	}
}

func TestDisallowRevokes(t *testing.T) {
	s := NewImageStore()
	im := NewImage("a:1", "content", 100)
	_ = s.Add(im)
	s.Allow(im.Digest)
	s.Disallow(im.Digest)
	if _, err := s.Admit("a:1"); !errors.Is(err, ErrImageNotAllowed) {
		t.Fatalf("revoked Admit err = %v", err)
	}
}

func TestAdmitMissingImage(t *testing.T) {
	s := NewImageStore()
	if _, err := s.Admit("ghost:1"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("err = %v, want ErrImageNotFound", err)
	}
}

func TestImageStoreListSorted(t *testing.T) {
	s := NewImageStore()
	_ = s.Add(NewImage("z:1", "z", 1))
	_ = s.Add(NewImage("a:1", "a", 1))
	names := s.List()
	if len(names) != 2 || names[0] != "a:1" || names[1] != "z:1" {
		t.Fatalf("List = %v", names)
	}
}

func TestDefaultImagesAllAdmittable(t *testing.T) {
	s := DefaultImages()
	names := s.List()
	if len(names) < 4 {
		t.Fatalf("stock images = %v", names)
	}
	for _, n := range names {
		if _, err := s.Admit(n); err != nil {
			t.Errorf("stock image %s not admittable: %v", n, err)
		}
	}
}

func TestDefaultImagesIncludeJupyter(t *testing.T) {
	s := DefaultImages()
	if _, err := s.Get("gpunion/jupyter-dl:latest"); err != nil {
		t.Fatalf("jupyter image missing: %v", err)
	}
}

// Property: digest verification accepts exactly the original manifest.
func TestDigestDetectsAnyMutationProperty(t *testing.T) {
	f := func(manifest string, flip uint8) bool {
		im := NewImage("p:1", manifest, 1)
		if im.Verify() != nil {
			return false
		}
		if len(manifest) == 0 {
			return true
		}
		// Mutate one byte.
		b := []byte(manifest)
		idx := int(flip) % len(b)
		b[idx] ^= 0xFF
		im.Manifest = string(b)
		return im.Verify() != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
