package container

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpunion/internal/gpu"
)

// Errors returned by the runtime.
var (
	ErrNotFound         = errors.New("container: container not found")
	ErrBadTransition    = errors.New("container: invalid lifecycle transition")
	ErrNoGPUAvailable   = errors.New("container: no GPU satisfies the request")
	ErrIsolationBreach  = errors.New("container: operation blocked by isolation policy")
	ErrAlreadyExists    = errors.New("container: id already exists")
	ErrResourceExceeded = errors.New("container: resource limit exceeded")
)

// State is a container lifecycle state. Transitions follow the OCI
// lifecycle extended with the checkpoint states GPUnion needs.
type State string

// Lifecycle states.
const (
	Created       State = "created"
	Running       State = "running"
	Paused        State = "paused"
	Checkpointing State = "checkpointing"
	Exited        State = "exited" // terminated normally or stopped
	Killed        State = "killed" // terminated by the kill-switch
)

// Mode distinguishes the two execution modes of §3.3.
type Mode string

// Execution modes.
const (
	// Interactive provisions a Jupyter-style research environment.
	Interactive Mode = "interactive"
	// Batch runs an arbitrary entrypoint to completion.
	Batch Mode = "batch"
)

// Resources are the cgroup-style limits applied to a container.
type Resources struct {
	// CPUCores is the CPU quota in whole cores.
	CPUCores int `json:"cpu_cores"`
	// MemoryMiB is the host-memory limit.
	MemoryMiB int64 `json:"memory_mib"`
	// GPUMemoryMiB is the device memory the workload needs; the runtime
	// binds a GPU with at least this much.
	GPUMemoryMiB int64 `json:"gpu_memory_mib"`
	// MinCapability is the minimum CUDA compute capability required.
	MinCapability gpu.ComputeCapability `json:"min_capability"`
}

// Isolation captures the sandboxing configuration applied to every
// container (§3.3: namespaces, cgroups, Seccomp). The runtime enforces
// the host-access policy; the rest is recorded configuration.
type Isolation struct {
	// PIDNamespace, NetNamespace, MountNamespace record namespace
	// isolation; GPUnion always enables all three.
	PIDNamespace   bool `json:"pid_namespace"`
	NetNamespace   bool `json:"net_namespace"`
	MountNamespace bool `json:"mount_namespace"`
	// SeccompProfile names the syscall filter profile.
	SeccompProfile string `json:"seccomp_profile"`
	// AllowHostMounts lists host paths the container may access; empty
	// means no host access (the default).
	AllowHostMounts []string `json:"allow_host_mounts,omitempty"`
}

// DefaultIsolation is the sandbox applied to guest workloads.
func DefaultIsolation() Isolation {
	return Isolation{
		PIDNamespace:   true,
		NetNamespace:   true,
		MountNamespace: true,
		SeccompProfile: "gpunion-default",
	}
}

// Spec describes a container to create.
type Spec struct {
	// ID is the caller-chosen container identifier.
	ID string `json:"id"`
	// ImageName references an image in the runtime's store.
	ImageName string `json:"image_name"`
	// Mode selects interactive or batch execution.
	Mode Mode `json:"mode"`
	// Entrypoint is the command for batch mode; interactive mode ignores
	// it and provisions the notebook server.
	Entrypoint []string `json:"entrypoint,omitempty"`
	// Env is the environment; the runtime adds NVIDIA_VISIBLE_DEVICES.
	Env map[string]string `json:"env,omitempty"`
	// Resources are the cgroup limits and GPU requirements.
	Resources Resources `json:"resources"`
	// Isolation overrides DefaultIsolation when non-zero.
	Isolation *Isolation `json:"isolation,omitempty"`
}

// Container is a live (or exited) container instance.
type Container struct {
	mu        sync.Mutex
	spec      Spec
	image     Image
	state     State
	device    *gpu.Device // bound GPU, nil after release
	deviceID  string      // retained for status after release
	isolation Isolation
	createdAt time.Time
	startedAt time.Time
	exitedAt  time.Time
	exitCode  int
	env       map[string]string
}

// ID returns the container identifier.
func (c *Container) ID() string { return c.spec.ID }

// State returns the current lifecycle state.
func (c *Container) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Mode returns the execution mode.
func (c *Container) Mode() Mode { return c.spec.Mode }

// Image returns the admitted image the container runs.
func (c *Container) Image() Image { return c.image }

// GPUDeviceID returns the bound device's local ID ("" if none was bound).
func (c *Container) GPUDeviceID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deviceID
}

// Env returns a copy of the effective environment, including the GPU
// visibility variable injected at creation.
func (c *Container) Env() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.env))
	for k, v := range c.env {
		out[k] = v
	}
	return out
}

// Isolation returns the sandbox configuration.
func (c *Container) Isolation() Isolation { return c.isolation }

// ExitCode returns the recorded exit code (0 unless exited/killed).
func (c *Container) ExitCode() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exitCode
}

// CheckHostAccess enforces the isolation policy: guest workloads may only
// touch host paths explicitly allow-listed in their mount configuration.
func (c *Container) CheckHostAccess(path string) error {
	for _, allowed := range c.isolation.AllowHostMounts {
		if path == allowed {
			return nil
		}
	}
	return fmt.Errorf("%w: host path %q", ErrIsolationBreach, path)
}

// Runtime is the node-local container engine. It owns the node's GPU
// inventory and enforces image admission on every create.
type Runtime struct {
	mu         sync.Mutex
	images     *ImageStore
	inventory  *gpu.Inventory
	containers map[string]*Container
	// hostCPUCores / hostMemoryMiB are node-level cgroup budgets.
	hostCPUCores  int
	hostMemoryMiB int64
	usedCPUCores  int
	usedMemoryMiB int64
}

// NewRuntime creates a runtime over the node's images and GPU inventory.
// hostCPUCores/hostMemoryMiB bound aggregate container resources
// (0 = unbounded).
func NewRuntime(images *ImageStore, inv *gpu.Inventory, hostCPUCores int, hostMemoryMiB int64) *Runtime {
	return &Runtime{
		images:        images,
		inventory:     inv,
		containers:    make(map[string]*Container),
		hostCPUCores:  hostCPUCores,
		hostMemoryMiB: hostMemoryMiB,
	}
}

// Inventory exposes the node's GPU inventory (used by telemetry).
func (r *Runtime) Inventory() *gpu.Inventory { return r.inventory }

// Create admits the image, reserves host resources, binds a GPU
// satisfying the spec, and returns the container in Created state.
func (r *Runtime) Create(spec Spec, now time.Time) (*Container, error) {
	if spec.ID == "" {
		return nil, errors.New("container: empty container id")
	}
	if spec.Mode != Interactive && spec.Mode != Batch {
		return nil, fmt.Errorf("container: unknown mode %q", spec.Mode)
	}
	im, err := r.images.Admit(spec.ImageName)
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.containers[spec.ID]; exists {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyExists, spec.ID)
	}
	if r.hostCPUCores > 0 && r.usedCPUCores+spec.Resources.CPUCores > r.hostCPUCores {
		return nil, fmt.Errorf("%w: cpu %d + %d > %d",
			ErrResourceExceeded, r.usedCPUCores, spec.Resources.CPUCores, r.hostCPUCores)
	}
	if r.hostMemoryMiB > 0 && r.usedMemoryMiB+spec.Resources.MemoryMiB > r.hostMemoryMiB {
		return nil, fmt.Errorf("%w: memory %d + %d > %d MiB",
			ErrResourceExceeded, r.usedMemoryMiB, spec.Resources.MemoryMiB, r.hostMemoryMiB)
	}

	var dev *gpu.Device
	if spec.Resources.GPUMemoryMiB > 0 {
		dev = r.inventory.FindFree(spec.Resources.GPUMemoryMiB, spec.Resources.MinCapability)
		if dev == nil {
			return nil, fmt.Errorf("%w: need %d MiB, capability >= %s",
				ErrNoGPUAvailable, spec.Resources.GPUMemoryMiB, spec.Resources.MinCapability)
		}
		if err := dev.Allocate(spec.ID, spec.Resources.GPUMemoryMiB); err != nil {
			return nil, err
		}
	}

	iso := DefaultIsolation()
	if spec.Isolation != nil {
		iso = *spec.Isolation
	}
	env := make(map[string]string, len(spec.Env)+2)
	for k, v := range spec.Env {
		env[k] = v
	}
	if dev != nil {
		// GPU passthrough via the NVIDIA Container Toolkit convention.
		env["NVIDIA_VISIBLE_DEVICES"] = dev.ID
	} else {
		env["NVIDIA_VISIBLE_DEVICES"] = "none"
	}
	if spec.Mode == Interactive {
		env["JUPYTER_ENABLE"] = "1"
	}

	c := &Container{
		spec:      spec,
		image:     im,
		state:     Created,
		device:    dev,
		isolation: iso,
		createdAt: now,
		env:       env,
	}
	if dev != nil {
		c.deviceID = dev.ID
	}
	r.containers[spec.ID] = c
	r.usedCPUCores += spec.Resources.CPUCores
	r.usedMemoryMiB += spec.Resources.MemoryMiB
	return c, nil
}

// Get returns a container by ID.
func (r *Runtime) Get(id string) (*Container, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.containers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return c, nil
}

// List returns container IDs, sorted.
func (r *Runtime) List() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.containers))
	for id := range r.containers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Running returns the number of containers currently in Running state.
func (r *Runtime) Running() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.containers {
		if c.State() == Running {
			n++
		}
	}
	return n
}

// Start transitions Created → Running.
func (r *Runtime) Start(id string, now time.Time) error {
	c, err := r.Get(id)
	if err != nil {
		return err
	}
	return c.transition(Created, Running, func() { c.startedAt = now })
}

// Pause transitions Running → Paused (provider pressed "pause", or the
// agent froze the workload ahead of a checkpoint).
func (r *Runtime) Pause(id string) error {
	c, err := r.Get(id)
	if err != nil {
		return err
	}
	return c.transition(Running, Paused, nil)
}

// Resume transitions Paused → Running.
func (r *Runtime) Resume(id string) error {
	c, err := r.Get(id)
	if err != nil {
		return err
	}
	return c.transition(Paused, Running, nil)
}

// BeginCheckpoint transitions Running → Checkpointing. The workload is
// quiesced while state is captured.
func (r *Runtime) BeginCheckpoint(id string) error {
	c, err := r.Get(id)
	if err != nil {
		return err
	}
	return c.transition(Running, Checkpointing, nil)
}

// EndCheckpoint transitions Checkpointing → Running.
func (r *Runtime) EndCheckpoint(id string) error {
	c, err := r.Get(id)
	if err != nil {
		return err
	}
	return c.transition(Checkpointing, Running, nil)
}

// Stop terminates the container gracefully with the given exit code,
// releasing its GPU. Valid from Running, Paused or Checkpointing.
func (r *Runtime) Stop(id string, exitCode int, now time.Time) error {
	c, err := r.Get(id)
	if err != nil {
		return err
	}
	return c.terminate(Exited, exitCode, now)
}

// Kill immediately terminates the container (kill-switch path). Valid
// from any non-terminal state, including Created.
func (r *Runtime) Kill(id string, now time.Time) error {
	c, err := r.Get(id)
	if err != nil {
		return err
	}
	return c.terminate(Killed, 137, now)
}

// Remove deletes a terminal container and releases its host resources.
func (r *Runtime) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.containers[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	st := c.State()
	if st != Exited && st != Killed {
		return fmt.Errorf("%w: remove from %s", ErrBadTransition, st)
	}
	delete(r.containers, id)
	r.usedCPUCores -= c.spec.Resources.CPUCores
	r.usedMemoryMiB -= c.spec.Resources.MemoryMiB
	return nil
}

// KillAll kills every non-terminal container (emergency kill-switch) and
// returns the IDs killed.
func (r *Runtime) KillAll(now time.Time) []string {
	var killed []string
	for _, id := range r.List() {
		c, err := r.Get(id)
		if err != nil {
			continue
		}
		st := c.State()
		if st == Exited || st == Killed {
			continue
		}
		if err := r.Kill(id, now); err == nil {
			killed = append(killed, id)
		}
	}
	return killed
}

// transition performs a guarded single-source state change.
func (c *Container) transition(from, to State, onOK func()) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != from {
		return fmt.Errorf("%w: %s → %s (currently %s)", ErrBadTransition, from, to, c.state)
	}
	c.state = to
	if onOK != nil {
		onOK()
	}
	return nil
}

// terminate moves the container to a terminal state from any live state
// and releases the GPU binding.
func (c *Container) terminate(to State, exitCode int, now time.Time) error {
	c.mu.Lock()
	if c.state == Exited || c.state == Killed {
		c.mu.Unlock()
		return fmt.Errorf("%w: already %s", ErrBadTransition, c.state)
	}
	c.state = to
	c.exitCode = exitCode
	c.exitedAt = now
	dev := c.device
	c.device = nil
	id := c.spec.ID
	c.mu.Unlock()
	if dev != nil {
		// Release errors indicate double-free bugs; surface loudly.
		if err := dev.Release(id); err != nil {
			return fmt.Errorf("container: releasing GPU on terminate: %w", err)
		}
	}
	return nil
}
