// Package container implements GPUnion's containerized execution
// environment (§3.3): an OCI-style runtime model with image digest
// verification, a trusted-image allow-list, a container lifecycle state
// machine, namespace/cgroup-style isolation accounting, and GPU
// passthrough binding via an NVIDIA_VISIBLE_DEVICES-equivalent.
//
// GPUnion's platform logic (agent, scheduler, migration) only depends on
// the lifecycle semantics — create, start, pause, checkpoint, stop, kill
// — and on the admission rules; this package provides both with the same
// API shape a Docker-backed implementation would expose.
package container

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by the image store.
var (
	ErrImageNotFound   = errors.New("container: image not found")
	ErrDigestMismatch  = errors.New("container: image digest verification failed")
	ErrImageNotAllowed = errors.New("container: image not on the trusted allow-list")
)

// Image is a container image descriptor. Content is modelled by a
// manifest string whose SHA-256 digest stands in for the layer digest
// chain of a real OCI image.
type Image struct {
	// Name is the reference, e.g. "pytorch/pytorch:2.3-cuda12".
	Name string `json:"name"`
	// Digest is "sha256:<hex>" over the manifest.
	Digest string `json:"digest"`
	// SizeBytes is the compressed image size (drives image-pull traffic).
	SizeBytes int64 `json:"size_bytes"`
	// Manifest is the content the digest covers.
	Manifest string `json:"manifest"`
}

// ComputeDigest returns the canonical "sha256:<hex>" digest of manifest.
func ComputeDigest(manifest string) string {
	sum := sha256.Sum256([]byte(manifest))
	return "sha256:" + hex.EncodeToString(sum[:])
}

// NewImage builds an image with its digest computed from the manifest.
func NewImage(name, manifest string, sizeBytes int64) Image {
	return Image{
		Name:      name,
		Digest:    ComputeDigest(manifest),
		SizeBytes: sizeBytes,
		Manifest:  manifest,
	}
}

// Verify recomputes the manifest digest and checks it against the
// recorded one. Images must pass verification before deployment (§3.3).
func (im Image) Verify() error {
	if got := ComputeDigest(im.Manifest); got != im.Digest {
		return fmt.Errorf("%w: recorded %s, computed %s", ErrDigestMismatch, im.Digest, got)
	}
	return nil
}

// ImageStore holds pullable images and the allow-list of trusted base
// images. It is safe for concurrent use.
type ImageStore struct {
	mu      sync.RWMutex
	images  map[string]Image // by name
	allowed map[string]bool  // digest → trusted
}

// NewImageStore returns an empty store.
func NewImageStore() *ImageStore {
	return &ImageStore{
		images:  make(map[string]Image),
		allowed: make(map[string]bool),
	}
}

// Add registers an image (it is not trusted until Allow is called).
func (s *ImageStore) Add(im Image) error {
	if err := im.Verify(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.images[im.Name] = im
	return nil
}

// Allow marks the image's digest as trusted.
func (s *ImageStore) Allow(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.allowed[digest] = true
}

// Disallow removes the digest from the allow-list.
func (s *ImageStore) Disallow(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.allowed, digest)
}

// Get returns the image by name.
func (s *ImageStore) Get(name string) (Image, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	im, ok := s.images[name]
	if !ok {
		return Image{}, fmt.Errorf("%w: %s", ErrImageNotFound, name)
	}
	return im, nil
}

// Admit performs the full §3.3 admission check for a deployment: the
// image must exist, pass SHA-256 verification, and be on the allow-list.
func (s *ImageStore) Admit(name string) (Image, error) {
	im, err := s.Get(name)
	if err != nil {
		return Image{}, err
	}
	if err := im.Verify(); err != nil {
		return Image{}, err
	}
	s.mu.RLock()
	trusted := s.allowed[im.Digest]
	s.mu.RUnlock()
	if !trusted {
		return Image{}, fmt.Errorf("%w: %s (%s)", ErrImageNotAllowed, im.Name, shortDigest(im.Digest))
	}
	return im, nil
}

// List returns all registered image names, sorted.
func (s *ImageStore) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.images))
	for n := range s.images {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func shortDigest(d string) string {
	if i := strings.Index(d, ":"); i >= 0 && len(d) > i+13 {
		return d[:i+13]
	}
	return d
}

// DefaultImages returns the stock images GPUnion ships for campus use:
// the interactive Jupyter research environment and common training
// bases, all pre-allowed.
func DefaultImages() *ImageStore {
	s := NewImageStore()
	stock := []Image{
		NewImage("gpunion/jupyter-dl:latest",
			"jupyter notebook + pytorch 2.3 + cuda 12.1", 6_800_000_000),
		NewImage("pytorch/pytorch:2.3-cuda12",
			"pytorch 2.3 runtime, cuda 12.1, cudnn 8", 5_200_000_000),
		NewImage("tensorflow/tensorflow:2.16-gpu",
			"tensorflow 2.16 gpu runtime", 5_900_000_000),
		NewImage("gpunion/base-cuda:12.1",
			"minimal cuda 12.1 runtime base", 2_100_000_000),
	}
	for _, im := range stock {
		if err := s.Add(im); err != nil {
			// Stock manifests are constants; failure is programmer error.
			panic(err)
		}
		s.Allow(im.Digest)
	}
	return s
}
