package container

import (
	"errors"
	"testing"
	"time"

	"gpunion/internal/gpu"
)

var t0 = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

func newTestRuntime() *Runtime {
	inv := gpu.NewMixedInventory(gpu.RTX3090, gpu.A100)
	return NewRuntime(DefaultImages(), inv, 32, 128*1024)
}

func batchSpec(id string, gpuMem int64) Spec {
	return Spec{
		ID:         id,
		ImageName:  "pytorch/pytorch:2.3-cuda12",
		Mode:       Batch,
		Entrypoint: []string{"python", "train.py"},
		Resources:  Resources{CPUCores: 4, MemoryMiB: 16384, GPUMemoryMiB: gpuMem},
	}
}

func TestCreateBindsGPU(t *testing.T) {
	r := newTestRuntime()
	c, err := r.Create(batchSpec("c1", 20000), t0)
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != Created {
		t.Fatalf("state = %s", c.State())
	}
	if c.GPUDeviceID() != "gpu0" {
		t.Fatalf("bound device = %s, want gpu0", c.GPUDeviceID())
	}
	if c.Env()["NVIDIA_VISIBLE_DEVICES"] != "gpu0" {
		t.Fatalf("env = %v", c.Env())
	}
}

func TestCreateLargeJobPicksBigGPU(t *testing.T) {
	r := newTestRuntime()
	c, err := r.Create(batchSpec("c1", 40000), t0) // only fits the A100
	if err != nil {
		t.Fatal(err)
	}
	if c.GPUDeviceID() != "gpu1" {
		t.Fatalf("device = %s, want gpu1 (A100)", c.GPUDeviceID())
	}
}

func TestCreateCPUOnly(t *testing.T) {
	r := newTestRuntime()
	spec := batchSpec("c1", 0)
	c, err := r.Create(spec, t0)
	if err != nil {
		t.Fatal(err)
	}
	if c.GPUDeviceID() != "" {
		t.Fatal("CPU-only container bound a GPU")
	}
	if c.Env()["NVIDIA_VISIBLE_DEVICES"] != "none" {
		t.Fatalf("env = %v", c.Env())
	}
}

func TestCreateNoGPUAvailable(t *testing.T) {
	r := newTestRuntime()
	if _, err := r.Create(batchSpec("c1", 20000), t0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(batchSpec("c2", 40000), t0); err != nil {
		t.Fatal(err) // takes the A100
	}
	_, err := r.Create(batchSpec("c3", 20000), t0)
	if !errors.Is(err, ErrNoGPUAvailable) {
		t.Fatalf("err = %v, want ErrNoGPUAvailable", err)
	}
}

func TestCreateUntrustedImageRejected(t *testing.T) {
	r := newTestRuntime()
	spec := batchSpec("c1", 100)
	spec.ImageName = "evil/backdoor:latest"
	if _, err := r.Create(spec, t0); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("err = %v, want ErrImageNotFound", err)
	}
}

func TestCreateDuplicateID(t *testing.T) {
	r := newTestRuntime()
	if _, err := r.Create(batchSpec("c1", 0), t0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(batchSpec("c1", 0), t0); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("err = %v, want ErrAlreadyExists", err)
	}
}

func TestCreateEmptyIDAndBadMode(t *testing.T) {
	r := newTestRuntime()
	spec := batchSpec("", 0)
	if _, err := r.Create(spec, t0); err == nil {
		t.Fatal("empty id accepted")
	}
	spec = batchSpec("c1", 0)
	spec.Mode = "warp"
	if _, err := r.Create(spec, t0); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestHostResourceBudget(t *testing.T) {
	inv := gpu.NewInventory(gpu.RTX3090, 8)
	r := NewRuntime(DefaultImages(), inv, 8, 32768)
	if _, err := r.Create(batchSpec("c1", 0), t0); err != nil { // 4 cores, 16 GiB
		t.Fatal(err)
	}
	if _, err := r.Create(batchSpec("c2", 0), t0); err != nil { // 8 cores, 32 GiB total
		t.Fatal(err)
	}
	if _, err := r.Create(batchSpec("c3", 0), t0); !errors.Is(err, ErrResourceExceeded) {
		t.Fatalf("err = %v, want ErrResourceExceeded", err)
	}
}

func TestRemoveReleasesHostBudget(t *testing.T) {
	inv := gpu.NewInventory(gpu.RTX3090, 8)
	r := NewRuntime(DefaultImages(), inv, 4, 16384)
	if _, err := r.Create(batchSpec("c1", 0), t0); err != nil {
		t.Fatal(err)
	}
	if err := r.Kill("c1", t0); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(batchSpec("c2", 0), t0); err != nil {
		t.Fatalf("budget not released: %v", err)
	}
}

func TestRemoveLiveContainerRejected(t *testing.T) {
	r := newTestRuntime()
	if _, err := r.Create(batchSpec("c1", 0), t0); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("c1"); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("err = %v, want ErrBadTransition", err)
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	r := newTestRuntime()
	c, err := r.Create(batchSpec("c1", 1000), t0)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		op   func() error
		want State
	}{
		{func() error { return r.Start("c1", t0) }, Running},
		{func() error { return r.Pause("c1") }, Paused},
		{func() error { return r.Resume("c1") }, Running},
		{func() error { return r.BeginCheckpoint("c1") }, Checkpointing},
		{func() error { return r.EndCheckpoint("c1") }, Running},
		{func() error { return r.Stop("c1", 0, t0.Add(time.Hour)) }, Exited},
	}
	for i, s := range steps {
		if err := s.op(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if c.State() != s.want {
			t.Fatalf("step %d: state = %s, want %s", i, c.State(), s.want)
		}
	}
	if c.ExitCode() != 0 {
		t.Fatalf("exit code = %d", c.ExitCode())
	}
}

func TestInvalidTransitions(t *testing.T) {
	r := newTestRuntime()
	if _, err := r.Create(batchSpec("c1", 0), t0); err != nil {
		t.Fatal(err)
	}
	// Created → Pause is invalid.
	if err := r.Pause("c1"); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("Pause from Created err = %v", err)
	}
	// Created → EndCheckpoint is invalid.
	if err := r.EndCheckpoint("c1"); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("EndCheckpoint from Created err = %v", err)
	}
	if err := r.Start("c1", t0); err != nil {
		t.Fatal(err)
	}
	// Running → Start again is invalid.
	if err := r.Start("c1", t0); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("double Start err = %v", err)
	}
}

func TestStopReleasesGPU(t *testing.T) {
	r := newTestRuntime()
	c, err := r.Create(batchSpec("c1", 20000), t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start("c1", t0); err != nil {
		t.Fatal(err)
	}
	dev, _ := r.Inventory().Device(c.GPUDeviceID())
	if dev.Free() {
		t.Fatal("device free while container running")
	}
	if err := r.Stop("c1", 0, t0); err != nil {
		t.Fatal(err)
	}
	if !dev.Free() {
		t.Fatal("device not released on Stop")
	}
	// Device ID is retained for status reporting.
	if c.GPUDeviceID() != "gpu0" {
		t.Fatalf("GPUDeviceID after stop = %q", c.GPUDeviceID())
	}
}

func TestKillFromAnyLiveState(t *testing.T) {
	r := newTestRuntime()
	for i, setup := range []func(id string) error{
		func(id string) error { return nil },                                        // Created
		func(id string) error { return r.Start(id, t0) },                            // Running
		func(id string) error { _ = r.Start(id, t0); return r.Pause(id) },           // Paused
		func(id string) error { _ = r.Start(id, t0); return r.BeginCheckpoint(id) }, // Checkpointing
	} {
		id := string(rune('a' + i))
		if _, err := r.Create(batchSpec(id, 0), t0); err != nil {
			t.Fatal(err)
		}
		if err := setup(id); err != nil {
			t.Fatal(err)
		}
		if err := r.Kill(id, t0); err != nil {
			t.Fatalf("Kill from setup %d: %v", i, err)
		}
		c, _ := r.Get(id)
		if c.State() != Killed || c.ExitCode() != 137 {
			t.Fatalf("state = %s, exit = %d", c.State(), c.ExitCode())
		}
	}
}

func TestKillTerminalFails(t *testing.T) {
	r := newTestRuntime()
	if _, err := r.Create(batchSpec("c1", 0), t0); err != nil {
		t.Fatal(err)
	}
	if err := r.Kill("c1", t0); err != nil {
		t.Fatal(err)
	}
	if err := r.Kill("c1", t0); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("double Kill err = %v", err)
	}
	if err := r.Stop("c1", 0, t0); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("Stop after Kill err = %v", err)
	}
}

func TestKillAll(t *testing.T) {
	r := newTestRuntime()
	for _, id := range []string{"c1", "c2"} {
		if _, err := r.Create(batchSpec(id, 1000), t0); err != nil {
			t.Fatal(err)
		}
		if err := r.Start(id, t0); err != nil {
			t.Fatal(err)
		}
	}
	// One already exited: must not be re-killed.
	if err := r.Stop("c2", 0, t0); err != nil {
		t.Fatal(err)
	}
	killed := r.KillAll(t0)
	if len(killed) != 1 || killed[0] != "c1" {
		t.Fatalf("KillAll = %v, want [c1]", killed)
	}
	if r.Running() != 0 {
		t.Fatalf("Running = %d after KillAll", r.Running())
	}
}

func TestInteractiveModeEnv(t *testing.T) {
	r := newTestRuntime()
	spec := Spec{
		ID:        "sess1",
		ImageName: "gpunion/jupyter-dl:latest",
		Mode:      Interactive,
		Resources: Resources{CPUCores: 2, MemoryMiB: 8192, GPUMemoryMiB: 8000},
	}
	c, err := r.Create(spec, t0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Env()["JUPYTER_ENABLE"] != "1" {
		t.Fatalf("interactive env = %v", c.Env())
	}
	if c.Mode() != Interactive {
		t.Fatalf("mode = %s", c.Mode())
	}
}

func TestIsolationDefaults(t *testing.T) {
	r := newTestRuntime()
	c, err := r.Create(batchSpec("c1", 0), t0)
	if err != nil {
		t.Fatal(err)
	}
	iso := c.Isolation()
	if !iso.PIDNamespace || !iso.NetNamespace || !iso.MountNamespace {
		t.Fatalf("isolation = %+v, want all namespaces on", iso)
	}
	if iso.SeccompProfile != "gpunion-default" {
		t.Fatalf("seccomp = %q", iso.SeccompProfile)
	}
}

func TestHostAccessPolicy(t *testing.T) {
	r := newTestRuntime()
	spec := batchSpec("c1", 0)
	iso := DefaultIsolation()
	iso.AllowHostMounts = []string{"/data/shared"}
	spec.Isolation = &iso
	c, err := r.Create(spec, t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckHostAccess("/data/shared"); err != nil {
		t.Fatalf("allowed mount rejected: %v", err)
	}
	if err := c.CheckHostAccess("/etc/passwd"); !errors.Is(err, ErrIsolationBreach) {
		t.Fatalf("host access err = %v, want ErrIsolationBreach", err)
	}
}

func TestDefaultDeniesAllHostAccess(t *testing.T) {
	r := newTestRuntime()
	c, err := r.Create(batchSpec("c1", 0), t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckHostAccess("/anything"); !errors.Is(err, ErrIsolationBreach) {
		t.Fatalf("err = %v, want ErrIsolationBreach", err)
	}
}

func TestListAndRunningCounts(t *testing.T) {
	r := newTestRuntime()
	for _, id := range []string{"b", "a"} {
		if _, err := r.Create(batchSpec(id, 0), t0); err != nil {
			t.Fatal(err)
		}
	}
	ids := r.List()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("List = %v", ids)
	}
	if r.Running() != 0 {
		t.Fatalf("Running = %d", r.Running())
	}
	if err := r.Start("a", t0); err != nil {
		t.Fatal(err)
	}
	if r.Running() != 1 {
		t.Fatalf("Running = %d, want 1", r.Running())
	}
}

func TestGetMissing(t *testing.T) {
	r := newTestRuntime()
	if _, err := r.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestEnvReturnsCopy(t *testing.T) {
	r := newTestRuntime()
	c, err := r.Create(batchSpec("c1", 0), t0)
	if err != nil {
		t.Fatal(err)
	}
	env := c.Env()
	env["NVIDIA_VISIBLE_DEVICES"] = "hacked"
	if c.Env()["NVIDIA_VISIBLE_DEVICES"] == "hacked" {
		t.Fatal("Env exposed internal map")
	}
}
