// Package chaos is GPUnion's deterministic fault-injection engine: it
// composes seeded schedules of node churn, network partitions (control-
// plane-only and full data-plane), latency spikes, per-node clock skew,
// duplicate message delivery, WAL disk faults, checkpoint-store
// corruption and coordinator crashes, executes them on the simulated
// clock against a live platform, and audits the system database's
// invariants (internal/invariant) after every injected event.
//
// The engine is platform-agnostic: internal/sim assembles the real
// coordinator, agents and WAL, implements the Platform interface, and
// exposes the result as RunChaos scenarios. Everything here is
// deterministic — same seed, same schedule, same event interleaving —
// so any invariant violation a run finds is replayable from its seed.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/invariant"
	"gpunion/internal/obs"
	"gpunion/internal/simclock"
)

// Kind enumerates fault types. Adding a new fault type means adding a
// Kind, teaching Generate to draw it, and giving Platform (and its sim
// implementation) the matching action — see README "Chaos harness".
type Kind string

// Fault kinds.
const (
	// KindNodeCrash is a power-loss emergency: workloads die, heartbeats
	// stop, the coordinator is not told.
	KindNodeCrash Kind = "node-crash"
	// KindNodeDepart is an announced departure (scheduled, or temporary
	// when the fault's Temporary flag is set).
	KindNodeDepart Kind = "node-depart"
	// KindNodeReturn brings a crashed or departed node back.
	KindNodeReturn Kind = "node-return"
	// KindPartition cuts the control plane to a set of nodes for Dur:
	// heartbeats are dropped, workloads keep running.
	KindPartition Kind = "partition"
	// KindLatencySpike degrades a node's access link for Dur.
	KindLatencySpike Kind = "latency-spike"
	// KindWALSyncError makes log fsyncs fail for Dur.
	KindWALSyncError Kind = "wal-sync-error"
	// KindWALShortWrite tears log writes mid-frame for Dur.
	KindWALShortWrite Kind = "wal-short-write"
	// KindCoordCrash kills the coordinator process and restarts it from
	// snapshot + WAL.
	KindCoordCrash Kind = "coord-crash"
	// KindClockSkew steps a node's wall clock by Skew for Dur, then
	// steps it back — the discontinuity is injected twice.
	KindClockSkew Kind = "clock-skew"
	// KindDupDeliver opens a duplicate-delivery window: heartbeats, job
	// updates and launch requests are replayed 1–3×, which every
	// coordinator and agent ingress must absorb without side effects.
	KindDupDeliver Kind = "dup-deliver"
	// KindDataPartition cuts a set of nodes off completely for Dur:
	// the control plane (heartbeats, launches, kills) *and* the data
	// plane (checkpoint transfers) — unlike KindPartition, which models
	// a control-path-only outage.
	KindDataPartition Kind = "data-partition"
	// KindCkptBitFlip silently flips bits in checkpoint blobs written
	// during the window.
	KindCkptBitFlip Kind = "ckpt-bit-flip"
	// KindCkptTruncate silently truncates checkpoint blobs written
	// during the window.
	KindCkptTruncate Kind = "ckpt-truncate"
	// KindLeaderKill kills the current coordinator leader outright; a
	// standby replica must promote from the shipped log with zero lost
	// acked mutations. Ignored by non-replicated platforms.
	KindLeaderKill Kind = "leader-kill"
	// KindSplitBrain isolates the leader from the lease arbiter and
	// skews its clock backwards for Dur, the worst case for fencing: a
	// standby is elected while the zombie still believes its lease is
	// live. Ignored by non-replicated platforms.
	KindSplitBrain Kind = "split-brain"
	// KindGrayDegrade makes a node gray-fail for Dur: its devices emit
	// health events (XID errors, thermal throttling, slowdowns) while
	// the node keeps heartbeating and running work. The platform must
	// fold the events, stop placing on the node, and predictively drain
	// it. Ignored by platforms without gray-failure support.
	KindGrayDegrade Kind = "gray-degrade"
	// KindPartialLoss drops a fraction of one node's heartbeats for Dur
	// — a flaky link, not a partition. The node must neither be swept
	// dead (enough beats get through) nor double-processed when retried
	// beats arrive late.
	KindPartialLoss Kind = "partial-loss"
	// KindCkptReadRot silently damages checkpoint blobs on the *read*
	// path for Dur: the stored bytes are fine, but restores see rot.
	// CRC verification and generation fallback must absorb it.
	KindCkptReadRot Kind = "ckpt-read-rot"
	// KindAggCrash kills a rack aggregator mid-window for Dur, then
	// restarts it empty: its open flush window's deltas are lost, and
	// its agents must fall back to the direct path until it returns.
	// Ignored by platforms without an aggregation tier.
	KindAggCrash Kind = "agg-crash"
	// KindAggPartition cuts an aggregator's upstream link to the
	// coordinator for Dur: the aggregator degrades, refuses its agents'
	// beats, and they fall back direct while it probes. Ignored by
	// platforms without an aggregation tier.
	KindAggPartition Kind = "agg-partition"
)

// Fault is one scheduled injection.
type Fault struct {
	// At is the injection time, as an offset from scenario start.
	At time.Duration
	// Kind selects the fault type.
	Kind Kind
	// Node targets single-node faults.
	Node string
	// Nodes targets partitions.
	Nodes []string
	// Dur is the fault window for partition/latency/WAL faults; the
	// engine schedules the matching heal at At+Dur.
	Dur time.Duration
	// Temporary marks a departure as return-intending.
	Temporary bool
	// Skew is the clock offset for KindClockSkew (either sign).
	Skew time.Duration
}

// describe renders the fault for reports.
func (f Fault) describe() string {
	switch {
	case f.Skew != 0:
		return fmt.Sprintf("%s %s by %v for %v", f.Kind, f.Node, f.Skew, f.Dur)
	case len(f.Nodes) > 0:
		return fmt.Sprintf("%s %v for %v", f.Kind, f.Nodes, f.Dur)
	case f.Node != "":
		return fmt.Sprintf("%s %s", f.Kind, f.Node)
	case f.Dur > 0:
		return fmt.Sprintf("%s for %v", f.Kind, f.Dur)
	default:
		return string(f.Kind)
	}
}

// Schedule is a time-ordered fault sequence.
type Schedule []Fault

// Spec parameterises schedule generation. Zero-valued rates disable
// the corresponding fault type.
type Spec struct {
	// Duration is the injection horizon; faults land in [0, Duration).
	Duration time.Duration
	// Nodes are the injectable provider identities.
	Nodes []string
	// ChurnPerNodePerDay is the per-node rate of crash/departure events
	// (the paper's 0.5–3.2 interruptions/day/node band).
	ChurnPerNodePerDay float64
	// MeanOutage is the mean down time before a churned node returns
	// (default 30 min).
	MeanOutage time.Duration
	// PartitionsPerDay is the rate of control-plane partitions.
	PartitionsPerDay float64
	// MaxPartitionNodes bounds a partition's blast radius (default 3).
	MaxPartitionNodes int
	// MeanPartition is the mean partition length (default 10 min).
	MeanPartition time.Duration
	// LatencySpikesPerDay is the rate of access-link degradations.
	LatencySpikesPerDay float64
	// WALFaultsPerDay is the rate of disk-fault windows on the log.
	WALFaultsPerDay float64
	// MeanWALFault is the mean disk-fault window (default 5 min).
	MeanWALFault time.Duration
	// CoordCrashes is how many coordinator kill/restart events to
	// inject. Each is placed shortly after a churn event when one
	// exists, so restarts land mid-migration.
	CoordCrashes int
	// ClockSkewsPerDay is the rate of per-node clock-step windows.
	ClockSkewsPerDay float64
	// MaxSkew bounds the injected clock offset (default 2 min); the
	// drawn offset is uniform in ±[30s, MaxSkew].
	MaxSkew time.Duration
	// MeanSkewWindow is the mean time until the clock steps back
	// (default 20 min).
	MeanSkewWindow time.Duration
	// DupWindowsPerDay is the rate of duplicate-delivery windows.
	DupWindowsPerDay float64
	// MeanDupWindow is the mean duplicate-delivery window (default 10
	// min).
	MeanDupWindow time.Duration
	// DataPartitionsPerDay is the rate of full (control + data plane)
	// partitions; blast radius and length share the control-partition
	// knobs (MaxPartitionNodes, MeanPartition).
	DataPartitionsPerDay float64
	// CkptFaultsPerDay is the rate of checkpoint-store corruption
	// windows, alternating bit-flip and truncation damage.
	CkptFaultsPerDay float64
	// MeanCkptFault is the mean corruption window (default 10 min).
	MeanCkptFault time.Duration
	// LeaderKills is how many leader kill/failover events to inject.
	// Only meaningful on platforms running a replicated coordinator
	// (ReplicatedPlatform); others ignore the faults.
	LeaderKills int
	// SplitBrains is how many split-brain windows (leader cut from the
	// arbiter with its clock skewed backwards) to inject.
	SplitBrains int
	// MeanSplitBrain is the mean split-brain window (default 2 min).
	MeanSplitBrain time.Duration
	// GrayDegradesPerDay is the rate of gray-failure windows (a node
	// emitting health events while still serving).
	GrayDegradesPerDay float64
	// MeanGrayDegrade is the mean gray-failure window (default 15 min).
	MeanGrayDegrade time.Duration
	// PartialLossPerDay is the rate of flaky-link windows (a fraction
	// of one node's heartbeats dropped).
	PartialLossPerDay float64
	// MeanPartialLoss is the mean flaky-link window (default 10 min).
	MeanPartialLoss time.Duration
	// CkptReadRotPerDay is the rate of checkpoint read-rot windows
	// (damage injected on the restore path, not at write time).
	CkptReadRotPerDay float64
	// MeanCkptReadRot is the mean read-rot window (default 10 min).
	MeanCkptReadRot time.Duration
	// Aggregators are the injectable rack-aggregator identities. Only
	// meaningful on platforms with an aggregation tier (AggPlatform).
	Aggregators []string
	// AggCrashesPerDay is the rate of aggregator crash/restart events.
	AggCrashesPerDay float64
	// MeanAggOutage is the mean aggregator down time (default 5 min).
	MeanAggOutage time.Duration
	// AggPartitionsPerDay is the rate of aggregator-upstream partitions
	// (the aggregator stays up but cannot reach the coordinator).
	AggPartitionsPerDay float64
	// MeanAggPartition is the mean upstream-partition window (default
	// 10 min).
	MeanAggPartition time.Duration
}

// withDefaults fills unset knobs.
func (s Spec) withDefaults() Spec {
	if s.MeanOutage <= 0 {
		s.MeanOutage = 30 * time.Minute
	}
	if s.MaxPartitionNodes <= 0 {
		s.MaxPartitionNodes = 3
	}
	if s.MeanPartition <= 0 {
		s.MeanPartition = 10 * time.Minute
	}
	if s.MeanWALFault <= 0 {
		s.MeanWALFault = 5 * time.Minute
	}
	if s.MaxSkew < time.Minute {
		s.MaxSkew = 2 * time.Minute
	}
	if s.MeanSkewWindow <= 0 {
		s.MeanSkewWindow = 20 * time.Minute
	}
	if s.MeanDupWindow <= 0 {
		s.MeanDupWindow = 10 * time.Minute
	}
	if s.MeanCkptFault <= 0 {
		s.MeanCkptFault = 10 * time.Minute
	}
	if s.MeanSplitBrain <= 0 {
		s.MeanSplitBrain = 2 * time.Minute
	}
	if s.MeanGrayDegrade <= 0 {
		s.MeanGrayDegrade = 15 * time.Minute
	}
	if s.MeanPartialLoss <= 0 {
		s.MeanPartialLoss = 10 * time.Minute
	}
	if s.MeanCkptReadRot <= 0 {
		s.MeanCkptReadRot = 10 * time.Minute
	}
	if s.MeanAggOutage <= 0 {
		s.MeanAggOutage = 5 * time.Minute
	}
	if s.MeanAggPartition <= 0 {
		s.MeanAggPartition = 10 * time.Minute
	}
	return s
}

// Generate composes a deterministic fault schedule from the spec: same
// spec and seed, same schedule, independent of map iteration or wall
// time.
func Generate(spec Spec, seed int64) Schedule {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	var sched Schedule

	// Per-node churn timelines: up → fault → down → return → up …
	churnTimes := []time.Duration{}
	for _, node := range spec.Nodes {
		if spec.ChurnPerNodePerDay <= 0 {
			break
		}
		t := expDur(rng, float64(24*time.Hour)/spec.ChurnPerNodePerDay)
		for t < spec.Duration {
			outage := expDur(rng, float64(spec.MeanOutage))
			if outage < time.Minute {
				outage = time.Minute
			}
			f := Fault{At: t, Node: node}
			switch rng.Intn(3) {
			case 0:
				f.Kind = KindNodeCrash
			case 1:
				f.Kind = KindNodeDepart // scheduled
			default:
				f.Kind = KindNodeDepart
				f.Temporary = true
			}
			sched = append(sched, f)
			sched = append(sched, Fault{At: t + outage, Kind: KindNodeReturn, Node: node})
			churnTimes = append(churnTimes, t)
			t += outage + expDur(rng, float64(24*time.Hour)/spec.ChurnPerNodePerDay)
		}
	}

	// Partitions: random subsets of the fleet.
	for _, t := range poissonTimes(rng, spec.PartitionsPerDay, spec.Duration) {
		n := 1 + rng.Intn(spec.MaxPartitionNodes)
		if n > len(spec.Nodes) {
			n = len(spec.Nodes)
		}
		if n == 0 {
			break
		}
		perm := rng.Perm(len(spec.Nodes))[:n]
		sort.Ints(perm)
		members := make([]string, n)
		for i, idx := range perm {
			members[i] = spec.Nodes[idx]
		}
		sched = append(sched, Fault{
			At: t, Kind: KindPartition, Nodes: members,
			Dur: clampDur(expDur(rng, float64(spec.MeanPartition)), time.Minute, 2*time.Hour),
		})
	}

	// Latency spikes on single links.
	for _, t := range poissonTimes(rng, spec.LatencySpikesPerDay, spec.Duration) {
		if len(spec.Nodes) == 0 {
			break
		}
		sched = append(sched, Fault{
			At: t, Kind: KindLatencySpike, Node: spec.Nodes[rng.Intn(len(spec.Nodes))],
			Dur: clampDur(expDur(rng, float64(15*time.Minute)), time.Minute, time.Hour),
		})
	}

	// WAL disk-fault windows, alternating failure modes.
	for i, t := range poissonTimes(rng, spec.WALFaultsPerDay, spec.Duration) {
		kind := KindWALSyncError
		if i%2 == 1 {
			kind = KindWALShortWrite
		}
		sched = append(sched, Fault{
			At: t, Kind: kind,
			Dur: clampDur(expDur(rng, float64(spec.MeanWALFault)), 30*time.Second, time.Hour),
		})
	}

	// Clock-skew windows: one node's wall clock steps by a bounded
	// offset, then steps back when the window closes. (The new fault
	// families draw from the rng after the original ones and are
	// rate-guarded, so a spec that leaves them at zero composes the
	// same schedule it always did for a given seed.)
	for _, t := range poissonTimes(rng, spec.ClockSkewsPerDay, spec.Duration) {
		if len(spec.Nodes) == 0 {
			break
		}
		span := int64(spec.MaxSkew - 30*time.Second)
		skew := 30*time.Second + time.Duration(rng.Int63n(span+1))
		if rng.Intn(2) == 0 {
			skew = -skew
		}
		sched = append(sched, Fault{
			At: t, Kind: KindClockSkew,
			Node: spec.Nodes[rng.Intn(len(spec.Nodes))],
			Skew: skew,
			Dur:  clampDur(expDur(rng, float64(spec.MeanSkewWindow)), 5*time.Minute, 2*time.Hour),
		})
	}

	// Duplicate-delivery windows.
	for _, t := range poissonTimes(rng, spec.DupWindowsPerDay, spec.Duration) {
		sched = append(sched, Fault{
			At: t, Kind: KindDupDeliver,
			Dur: clampDur(expDur(rng, float64(spec.MeanDupWindow)), time.Minute, time.Hour),
		})
	}

	// Data-plane partitions: random subsets, like control partitions,
	// but severing checkpoint transfers too.
	for _, t := range poissonTimes(rng, spec.DataPartitionsPerDay, spec.Duration) {
		n := 1 + rng.Intn(spec.MaxPartitionNodes)
		if n > len(spec.Nodes) {
			n = len(spec.Nodes)
		}
		if n == 0 {
			break
		}
		perm := rng.Perm(len(spec.Nodes))[:n]
		sort.Ints(perm)
		members := make([]string, n)
		for i, idx := range perm {
			members[i] = spec.Nodes[idx]
		}
		sched = append(sched, Fault{
			At: t, Kind: KindDataPartition, Nodes: members,
			Dur: clampDur(expDur(rng, float64(spec.MeanPartition)), time.Minute, 2*time.Hour),
		})
	}

	// Checkpoint-store corruption windows, alternating damage modes.
	for i, t := range poissonTimes(rng, spec.CkptFaultsPerDay, spec.Duration) {
		kind := KindCkptBitFlip
		if i%2 == 1 {
			kind = KindCkptTruncate
		}
		sched = append(sched, Fault{
			At: t, Kind: kind,
			Dur: clampDur(expDur(rng, float64(spec.MeanCkptFault)), time.Minute, time.Hour),
		})
	}

	// Coordinator crashes: ride shortly after churn events so restarts
	// catch migrations in flight; fall back to uniform placement.
	for i := 0; i < spec.CoordCrashes; i++ {
		var at time.Duration
		if len(churnTimes) > 0 {
			at = churnTimes[rng.Intn(len(churnTimes))] +
				10*time.Second + time.Duration(rng.Int63n(int64(20*time.Second)))
		} else {
			at = time.Duration(float64(spec.Duration) * (float64(i) + 0.5) / float64(spec.CoordCrashes))
		}
		if at >= spec.Duration {
			at = spec.Duration - time.Minute
		}
		sched = append(sched, Fault{At: at, Kind: KindCoordCrash})
	}

	// Leader kills: spread across the horizon with bounded jitter, so
	// each failover runs against a different phase of the workload.
	// (Drawn after every older family and guarded by its own count, so
	// a spec that leaves replication faults at zero composes the same
	// schedule it always did for a given seed.)
	for i := 0; i < spec.LeaderKills; i++ {
		at := time.Duration(float64(spec.Duration) * (float64(i) + 0.5) / float64(spec.LeaderKills+1))
		at += time.Duration(rng.Int63n(int64(time.Minute)))
		if at >= spec.Duration {
			at = spec.Duration - time.Minute
		}
		sched = append(sched, Fault{At: at, Kind: KindLeaderKill})
	}

	// Split-brain windows: same placement strategy, with a bounded
	// window during which a zombie leader coexists with its successor.
	for i := 0; i < spec.SplitBrains; i++ {
		at := time.Duration(float64(spec.Duration) * (float64(i) + 0.75) / float64(spec.SplitBrains+1))
		at += time.Duration(rng.Int63n(int64(time.Minute)))
		if at >= spec.Duration {
			at = spec.Duration - time.Minute
		}
		sched = append(sched, Fault{
			At: at, Kind: KindSplitBrain,
			Dur: clampDur(expDur(rng, float64(spec.MeanSplitBrain)), 30*time.Second, 10*time.Minute),
		})
	}

	// Gray-failure windows: one node degrades while staying in service.
	// (Like every family added after the original set, these draw from
	// the rng last and only when their rate is non-zero, so the eight
	// pre-existing seeded schedules are unchanged.)
	for _, t := range poissonTimes(rng, spec.GrayDegradesPerDay, spec.Duration) {
		if len(spec.Nodes) == 0 {
			break
		}
		sched = append(sched, Fault{
			At: t, Kind: KindGrayDegrade,
			Node: spec.Nodes[rng.Intn(len(spec.Nodes))],
			Dur:  clampDur(expDur(rng, float64(spec.MeanGrayDegrade)), 2*time.Minute, time.Hour),
		})
	}

	// Flaky-link windows: partial heartbeat loss on one node.
	for _, t := range poissonTimes(rng, spec.PartialLossPerDay, spec.Duration) {
		if len(spec.Nodes) == 0 {
			break
		}
		sched = append(sched, Fault{
			At: t, Kind: KindPartialLoss,
			Node: spec.Nodes[rng.Intn(len(spec.Nodes))],
			Dur:  clampDur(expDur(rng, float64(spec.MeanPartialLoss)), time.Minute, time.Hour),
		})
	}

	// Checkpoint read-rot windows.
	for _, t := range poissonTimes(rng, spec.CkptReadRotPerDay, spec.Duration) {
		sched = append(sched, Fault{
			At: t, Kind: KindCkptReadRot,
			Dur: clampDur(expDur(rng, float64(spec.MeanCkptReadRot)), time.Minute, time.Hour),
		})
	}

	// Aggregator crashes: a rack relay dies with a flush window open,
	// restarts empty after the outage. (Drawn after every older family
	// and rate-guarded, preserving pre-existing seeded schedules.)
	for _, t := range poissonTimes(rng, spec.AggCrashesPerDay, spec.Duration) {
		if len(spec.Aggregators) == 0 {
			break
		}
		sched = append(sched, Fault{
			At: t, Kind: KindAggCrash,
			Node: spec.Aggregators[rng.Intn(len(spec.Aggregators))],
			Dur:  clampDur(expDur(rng, float64(spec.MeanAggOutage)), time.Minute, time.Hour),
		})
	}

	// Aggregator-upstream partitions: the relay stays up but its
	// coordinator link is cut, forcing degradation + direct fallback.
	for _, t := range poissonTimes(rng, spec.AggPartitionsPerDay, spec.Duration) {
		if len(spec.Aggregators) == 0 {
			break
		}
		sched = append(sched, Fault{
			At: t, Kind: KindAggPartition,
			Node: spec.Aggregators[rng.Intn(len(spec.Aggregators))],
			Dur:  clampDur(expDur(rng, float64(spec.MeanAggPartition)), time.Minute, time.Hour),
		})
	}

	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched
}

// expDur draws an exponential duration with the given mean (in
// nanoseconds as float).
func expDur(rng *rand.Rand, mean float64) time.Duration {
	return time.Duration(rng.ExpFloat64() * mean)
}

// poissonTimes draws event times at ratePerDay over [0, span).
func poissonTimes(rng *rand.Rand, ratePerDay float64, span time.Duration) []time.Duration {
	if ratePerDay <= 0 {
		return nil
	}
	var out []time.Duration
	mean := float64(24*time.Hour) / ratePerDay
	t := expDur(rng, mean)
	for t < span {
		out = append(out, t)
		t += expDur(rng, mean)
	}
	return out
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// WALFaultMode is the injected disk behaviour.
type WALFaultMode int

// WAL fault modes.
const (
	WALHealthy WALFaultMode = iota
	WALSyncError
	WALShortWrite
)

// CkptFaultMode is the injected checkpoint-store behaviour.
type CkptFaultMode int

// Checkpoint-store fault modes.
const (
	CkptHealthy CkptFaultMode = iota
	CkptBitFlip
	CkptTruncate
)

// Platform is the set of actions the engine drives and audits. The sim
// harness implements it over the real coordinator, agents, LAN model
// and write-ahead log. Implementations must treat redundant actions
// (crashing a node that is already down, healing a healthy link) as
// no-ops: schedules are generated, not hand-checked.
type Platform interface {
	// Store exposes the system database the invariant checker audits.
	Store() db.Store
	// CrashNode kills a node's workloads and silences it.
	CrashNode(id string)
	// DepartNode announces a departure (temporary = return intent).
	DepartNode(id string, temporary bool)
	// ReturnNode brings a crashed or departed node back.
	ReturnNode(id string)
	// PartitionStart drops the control-plane path to the nodes;
	// PartitionHeal restores it.
	PartitionStart(ids []string)
	PartitionHeal(ids []string)
	// LatencySpikeStart degrades a node's access link; LatencySpikeHeal
	// restores it.
	LatencySpikeStart(id string)
	LatencySpikeHeal(id string)
	// SetWALFault switches the injected disk behaviour under the log.
	SetWALFault(mode WALFaultMode)
	// SetClockSkew steps a node's wall clock to the given offset from
	// true time (zero steps it back).
	SetClockSkew(id string, offset time.Duration)
	// SetDupDelivery toggles duplicate delivery of control messages
	// (heartbeats, job updates, launches).
	SetDupDelivery(enabled bool)
	// DataPartitionStart cuts both the control and data plane to the
	// nodes; DataPartitionHeal restores them.
	DataPartitionStart(ids []string)
	DataPartitionHeal(ids []string)
	// SetCheckpointFault switches the injected damage mode under the
	// checkpoint store's backing blobs.
	SetCheckpointFault(mode CkptFaultMode)
	// CrashCoordinator kills the coordinator and restarts it from
	// snapshot + WAL, returning any recovery-equivalence violations.
	CrashCoordinator() []invariant.Violation
	// ExtraChecks lets the platform report invariants only it can see
	// (e.g. agent-side phantom jobs). Called on periodic audits.
	ExtraChecks() []invariant.Violation
}

// ReplicatedPlatform is the optional capability interface for platforms
// running a replicated coordinator (leader + standby over WAL
// shipping). The engine type-asserts for it when applying
// KindLeaderKill and KindSplitBrain; platforms without it absorb those
// faults as no-ops, keeping the Platform contract stable for the
// standalone harness and its tests.
type ReplicatedPlatform interface {
	// KillLeader kills the current leader outright (no shutdown
	// courtesy), promotes a standby, re-points the agents, and returns
	// any zero-lost-acked-mutation or leadership-protocol violations
	// the handoff exposed.
	KillLeader() []invariant.Violation
	// SplitBrainStart isolates the current leader from the lease
	// arbiter and skews its clock backwards, so it keeps believing in
	// an expired lease while a standby is elected.
	SplitBrainStart()
	// SplitBrainHeal ends the window: the zombie's clock is restored,
	// its writes during the window are audited, and any accepted stale
	// write is returned as a violation.
	SplitBrainHeal() []invariant.Violation
}

// GrayPlatform is the optional capability interface for platforms with
// gray-failure support (health-event injection, flaky links, read-side
// checkpoint rot). The engine type-asserts for it when applying
// KindGrayDegrade, KindPartialLoss and KindCkptReadRot; platforms
// without it absorb those faults as no-ops, keeping the Platform
// contract stable — the same arrangement as ReplicatedPlatform.
type GrayPlatform interface {
	// GrayDegradeStart makes the node's devices emit health events
	// (XID errors, thermal throttling, slowdowns) while the node keeps
	// serving; GrayDegradeHeal stops the emission (the folded score
	// recovers by decay).
	GrayDegradeStart(id string)
	GrayDegradeHeal(id string)
	// PartialLossStart drops a deterministic fraction of the node's
	// heartbeats; PartialLossHeal restores the link.
	PartialLossStart(id string)
	PartialLossHeal(id string)
	// SetCheckpointReadRot toggles silent damage on the checkpoint
	// store's read path (stored bytes stay intact).
	SetCheckpointReadRot(enabled bool)
}

// AggPlatform is the optional capability interface for platforms with
// a rack aggregation tier. The engine type-asserts for it when applying
// KindAggCrash and KindAggPartition; platforms without it absorb those
// faults as no-ops, the same arrangement as ReplicatedPlatform and
// GrayPlatform.
type AggPlatform interface {
	// CrashAggregator kills the aggregator: its open flush window is
	// lost and its agents' beats fail over to the direct path.
	CrashAggregator(id string)
	// RestartAggregator brings the aggregator back empty.
	RestartAggregator(id string)
	// AggPartitionStart cuts the aggregator's upstream link to the
	// coordinator; AggPartitionHeal restores it.
	AggPartitionStart(id string)
	AggPartitionHeal(id string)
}

// Observation is one audited point in a run: the fault (or audit tick)
// and the violations found right after it.
type Observation struct {
	// At is the simulated time of the event.
	At time.Time
	// Fault describes what was injected ("audit" for periodic checks).
	Fault string
	// Violations are the invariant breaches found by the audit.
	Violations []invariant.Violation
}

// Report is the outcome of one chaos run.
type Report struct {
	// Executed counts injected faults by kind.
	Executed map[Kind]int
	// Observations lists every audited point that found violations,
	// plus every injected fault (with or without violations).
	Observations []Observation
	// Violations is the flattened list of all invariant breaches.
	Violations []invariant.Violation
	// Audits is how many invariant checks ran.
	Audits int
}

// Engine executes a schedule against a platform on the simulated
// clock, auditing invariants after every fault and at a periodic
// cadence in between.
type Engine struct {
	clock   *simclock.Sim
	plat    Platform
	checker *invariant.Checker
	rep     Report
	// walWindows counts currently-open WAL fault windows: overlapping
	// windows must not heal each other early, so the disk only returns
	// to healthy when the last window closes. ckptWindows and
	// dupWindows do the same for checkpoint-corruption and
	// duplicate-delivery windows, and skewWindows per node for clock
	// skew (the latest window's offset wins for the overlap).
	walWindows  int
	ckptWindows int
	dupWindows  int
	skewWindows map[string]int
	// grayWindows / lossWindows are per-node open-window counts for the
	// gray-failure families; readRotWindows counts read-rot windows.
	grayWindows    map[string]int
	lossWindows    map[string]int
	readRotWindows int
	// aggDownWindows / aggPartWindows are per-aggregator open-window
	// counts for the aggregation-tier families.
	aggDownWindows map[string]int
	aggPartWindows map[string]int
	// rec, when set, lands every injected fault and every audited
	// violation in the flight recorder, so a trace export localizes a
	// breach against the fault that preceded it. Nil-safe: obs methods
	// on a nil recorder are no-ops.
	rec *obs.Recorder
}

// SetRecorder attaches a flight recorder; call before Execute.
func (e *Engine) SetRecorder(r *obs.Recorder) { e.rec = r }

// NewEngine creates an engine. The checker persists across coordinator
// crashes within the run, so LSN monotonicity is audited through
// recovery boundaries.
func NewEngine(clock *simclock.Sim, plat Platform) *Engine {
	return &Engine{
		clock:          clock,
		plat:           plat,
		checker:        invariant.NewChecker(),
		rep:            Report{Executed: make(map[Kind]int)},
		skewWindows:    make(map[string]int),
		grayWindows:    make(map[string]int),
		lossWindows:    make(map[string]int),
		aggDownWindows: make(map[string]int),
		aggPartWindows: make(map[string]int),
	}
}

// Execute arms every fault in the schedule, runs the clock through the
// horizon plus a drain period, audits after every event (and every
// auditEvery in between, including platform-level extra checks), and
// returns the report. A final audit runs at the very end.
func (e *Engine) Execute(sched Schedule, auditEvery, drain time.Duration) *Report {
	horizon := time.Duration(0)
	for _, f := range sched {
		if end := f.At + f.Dur; end > horizon {
			horizon = end
		}
	}
	for _, f := range sched {
		f := f
		e.clock.AfterFunc(f.At, func() { e.apply(f) })
	}
	if auditEvery > 0 {
		e.armAudit(auditEvery, horizon+drain)
	}
	e.clock.Advance(horizon + drain)
	e.audit("final", e.plat.ExtraChecks())
	return &e.rep
}

// armAudit schedules recurring audits until the horizon.
func (e *Engine) armAudit(every, remaining time.Duration) {
	if remaining < every {
		return
	}
	e.clock.AfterFunc(every, func() {
		e.audit("audit", e.plat.ExtraChecks())
		e.armAudit(every, remaining-every)
	})
}

// apply injects one fault, schedules its heal if it has a window, and
// audits the store.
func (e *Engine) apply(f Fault) {
	e.rep.Executed[f.Kind]++
	// Annotate before injecting: in the trace, the fault strictly
	// precedes any violation it causes.
	e.rec.Record(obs.KindFaultInjected, "", f.Node, map[string]string{
		"kind": string(f.Kind), "fault": f.describe(),
	})
	var extra []invariant.Violation
	switch f.Kind {
	case KindNodeCrash:
		e.plat.CrashNode(f.Node)
	case KindNodeDepart:
		e.plat.DepartNode(f.Node, f.Temporary)
	case KindNodeReturn:
		e.plat.ReturnNode(f.Node)
	case KindPartition:
		e.plat.PartitionStart(f.Nodes)
		nodes := f.Nodes
		e.clock.AfterFunc(f.Dur, func() {
			e.plat.PartitionHeal(nodes)
			e.audit("partition-heal "+fmt.Sprint(nodes), nil)
		})
	case KindLatencySpike:
		e.plat.LatencySpikeStart(f.Node)
		node := f.Node
		e.clock.AfterFunc(f.Dur, func() { e.plat.LatencySpikeHeal(node) })
	case KindWALSyncError:
		e.openWALWindow(WALSyncError, f.Dur)
	case KindWALShortWrite:
		e.openWALWindow(WALShortWrite, f.Dur)
	case KindCoordCrash:
		extra = e.plat.CrashCoordinator()
	case KindClockSkew:
		node := f.Node
		e.skewWindows[node]++
		e.plat.SetClockSkew(node, f.Skew)
		e.clock.AfterFunc(f.Dur, func() {
			e.skewWindows[node]--
			if e.skewWindows[node] == 0 {
				e.plat.SetClockSkew(node, 0)
				e.audit("clock-skew-heal "+node, nil)
			}
		})
	case KindDupDeliver:
		e.dupWindows++
		e.plat.SetDupDelivery(true)
		e.clock.AfterFunc(f.Dur, func() {
			e.dupWindows--
			if e.dupWindows == 0 {
				e.plat.SetDupDelivery(false)
			}
		})
	case KindDataPartition:
		e.plat.DataPartitionStart(f.Nodes)
		nodes := f.Nodes
		e.clock.AfterFunc(f.Dur, func() {
			e.plat.DataPartitionHeal(nodes)
			e.audit("data-partition-heal "+fmt.Sprint(nodes), nil)
		})
	case KindCkptBitFlip:
		e.openCkptWindow(CkptBitFlip, f.Dur)
	case KindCkptTruncate:
		e.openCkptWindow(CkptTruncate, f.Dur)
	case KindLeaderKill:
		if rp, ok := e.plat.(ReplicatedPlatform); ok {
			extra = rp.KillLeader()
		}
	case KindSplitBrain:
		if rp, ok := e.plat.(ReplicatedPlatform); ok {
			rp.SplitBrainStart()
			e.clock.AfterFunc(f.Dur, func() {
				e.audit("split-brain-heal", rp.SplitBrainHeal())
			})
		}
	case KindGrayDegrade:
		if gp, ok := e.plat.(GrayPlatform); ok {
			node := f.Node
			e.grayWindows[node]++
			gp.GrayDegradeStart(node)
			e.clock.AfterFunc(f.Dur, func() {
				e.grayWindows[node]--
				if e.grayWindows[node] == 0 {
					gp.GrayDegradeHeal(node)
					e.audit("gray-degrade-heal "+node, nil)
				}
			})
		}
	case KindPartialLoss:
		if gp, ok := e.plat.(GrayPlatform); ok {
			node := f.Node
			e.lossWindows[node]++
			gp.PartialLossStart(node)
			e.clock.AfterFunc(f.Dur, func() {
				e.lossWindows[node]--
				if e.lossWindows[node] == 0 {
					gp.PartialLossHeal(node)
					e.audit("partial-loss-heal "+node, nil)
				}
			})
		}
	case KindCkptReadRot:
		if gp, ok := e.plat.(GrayPlatform); ok {
			e.readRotWindows++
			gp.SetCheckpointReadRot(true)
			e.clock.AfterFunc(f.Dur, func() {
				e.readRotWindows--
				if e.readRotWindows == 0 {
					gp.SetCheckpointReadRot(false)
				}
			})
		}
	case KindAggCrash:
		if ap, ok := e.plat.(AggPlatform); ok {
			agg := f.Node
			e.aggDownWindows[agg]++
			ap.CrashAggregator(agg)
			e.clock.AfterFunc(f.Dur, func() {
				e.aggDownWindows[agg]--
				if e.aggDownWindows[agg] == 0 {
					ap.RestartAggregator(agg)
					e.audit("agg-restart "+agg, nil)
				}
			})
		}
	case KindAggPartition:
		if ap, ok := e.plat.(AggPlatform); ok {
			agg := f.Node
			e.aggPartWindows[agg]++
			ap.AggPartitionStart(agg)
			e.clock.AfterFunc(f.Dur, func() {
				e.aggPartWindows[agg]--
				if e.aggPartWindows[agg] == 0 {
					ap.AggPartitionHeal(agg)
					e.audit("agg-partition-heal "+agg, nil)
				}
			})
		}
	}
	e.audit(f.describe(), extra)
}

// openCkptWindow starts one checkpoint-corruption window, with the same
// overlap semantics as openWALWindow.
func (e *Engine) openCkptWindow(mode CkptFaultMode, dur time.Duration) {
	e.ckptWindows++
	e.plat.SetCheckpointFault(mode)
	e.clock.AfterFunc(dur, func() {
		e.ckptWindows--
		if e.ckptWindows == 0 {
			e.plat.SetCheckpointFault(CkptHealthy)
		}
	})
}

// openWALWindow starts one disk-fault window. The engine runs on the
// driver goroutine (simclock callbacks are sequential), so the window
// counter needs no lock. When windows overlap, the later mode wins for
// the overlap and the disk heals only when the last window closes.
func (e *Engine) openWALWindow(mode WALFaultMode, dur time.Duration) {
	e.walWindows++
	e.plat.SetWALFault(mode)
	e.clock.AfterFunc(dur, func() {
		e.walWindows--
		if e.walWindows == 0 {
			e.plat.SetWALFault(WALHealthy)
		}
	})
}

// audit runs one invariant check, folding in any platform-provided
// violations, and records the observation.
func (e *Engine) audit(label string, extra []invariant.Violation) {
	vs := append(extra, e.checker.Check(e.plat.Store())...)
	e.rep.Audits++
	ob := Observation{At: e.clock.Now(), Fault: label, Violations: vs}
	if len(vs) > 0 || label != "audit" {
		e.rep.Observations = append(e.rep.Observations, ob)
	}
	for _, v := range vs {
		e.rec.Record(obs.KindInvariantViolation, "", "", map[string]string{
			"rule": v.Rule, "detail": v.Detail, "audit": label,
		})
	}
	e.rep.Violations = append(e.rep.Violations, vs...)
}
