package chaos

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/invariant"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/wal"
)

func testSpec() Spec {
	return Spec{
		Duration:           12 * time.Hour,
		Nodes:              []string{"n1", "n2", "n3", "n4"},
		ChurnPerNodePerDay: 8,
		PartitionsPerDay:   12,
		WALFaultsPerDay:    12,
		CoordCrashes:       2,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testSpec(), 42)
	b := Generate(testSpec(), 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := Generate(testSpec(), 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	last := time.Duration(-1)
	kinds := map[Kind]int{}
	for _, f := range a {
		if f.At < last {
			t.Fatalf("schedule not time-ordered at %v", f.At)
		}
		last = f.At
		kinds[f.Kind]++
	}
	for _, k := range []Kind{KindNodeCrash, KindNodeReturn, KindPartition, KindCoordCrash} {
		if kinds[k] == 0 {
			t.Errorf("schedule composed no %s faults (%v)", k, kinds)
		}
	}
	if kinds[KindWALSyncError]+kinds[KindWALShortWrite] == 0 {
		t.Errorf("schedule composed no WAL faults (%v)", kinds)
	}
}

func TestGenerateRespectsRates(t *testing.T) {
	sched := Generate(Spec{
		Duration: 12 * time.Hour,
		Nodes:    []string{"a", "b"},
		// Everything else zero: no faults at all.
	}, 7)
	if len(sched) != 0 {
		t.Fatalf("zero-rate spec produced %d faults", len(sched))
	}
}

// fakePlatform records actions and serves a real store so the engine's
// audits run for real.
type fakePlatform struct {
	store   *db.DB
	actions []string
	// sabotage, when set, corrupts the store on the next CrashNode —
	// proving the engine surfaces checker findings.
	sabotage bool
	walMode  WALFaultMode
	ckptMode CkptFaultMode
}

func newFakePlatform() *fakePlatform {
	s := db.New(0)
	s.UpsertNode(db.NodeRecord{ID: "n1", Status: db.NodeActive,
		GPUs: []db.GPUInfo{{DeviceID: "gpu0", MemoryMiB: 24576, Allocated: true}}})
	_ = s.InsertJob(db.JobRecord{ID: "j1", State: db.JobRunning,
		NodeID: "n1", DeviceID: "gpu0", ImageName: "img"})
	s.RecordAllocation(db.AllocationRecord{JobID: "j1", NodeID: "n1", DeviceID: "gpu0",
		Start: time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)})
	return &fakePlatform{store: s}
}

func (p *fakePlatform) Store() db.Store { return p.store }
func (p *fakePlatform) CrashNode(id string) {
	p.actions = append(p.actions, "crash:"+id)
	if p.sabotage {
		// Break running-node-live: the node dies but its job record
		// stays Running.
		_ = p.store.UpdateNode("n1", func(n *db.NodeRecord) { n.Status = db.NodeUnreachable })
	}
}
func (p *fakePlatform) DepartNode(id string, tmp bool) { p.actions = append(p.actions, "depart:"+id) }
func (p *fakePlatform) ReturnNode(id string)           { p.actions = append(p.actions, "return:"+id) }
func (p *fakePlatform) PartitionStart(ids []string)    { p.actions = append(p.actions, "part-start") }
func (p *fakePlatform) PartitionHeal(ids []string)     { p.actions = append(p.actions, "part-heal") }
func (p *fakePlatform) LatencySpikeStart(id string)    { p.actions = append(p.actions, "lat-start") }
func (p *fakePlatform) LatencySpikeHeal(id string)     { p.actions = append(p.actions, "lat-heal") }
func (p *fakePlatform) SetWALFault(m WALFaultMode)     { p.walMode = m }
func (p *fakePlatform) SetClockSkew(id string, off time.Duration) {
	if off == 0 {
		p.actions = append(p.actions, "skew-heal:"+id)
	} else {
		p.actions = append(p.actions, "skew:"+id)
	}
}
func (p *fakePlatform) SetDupDelivery(on bool) {
	p.actions = append(p.actions, fmt.Sprintf("dup:%v", on))
}
func (p *fakePlatform) DataPartitionStart(ids []string) { p.actions = append(p.actions, "dpart-start") }
func (p *fakePlatform) DataPartitionHeal(ids []string)  { p.actions = append(p.actions, "dpart-heal") }
func (p *fakePlatform) SetCheckpointFault(m CkptFaultMode) {
	p.ckptMode = m
	p.actions = append(p.actions, fmt.Sprintf("ckpt-fault:%d", m))
}
func (p *fakePlatform) CrashCoordinator() []invariant.Violation {
	p.actions = append(p.actions, "coord-crash")
	return nil
}
func (p *fakePlatform) ExtraChecks() []invariant.Violation { return nil }

func TestEngineExecutesAndHeals(t *testing.T) {
	clock := simclock.NewSim(time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC))
	plat := newFakePlatform()
	eng := NewEngine(clock, plat)
	sched := Schedule{
		{At: time.Minute, Kind: KindPartition, Nodes: []string{"n1"}, Dur: 2 * time.Minute},
		{At: 2 * time.Minute, Kind: KindWALSyncError, Dur: time.Minute},
		{At: 5 * time.Minute, Kind: KindCoordCrash},
	}
	rep := eng.Execute(sched, time.Minute, 10*time.Minute)
	if rep.Executed[KindPartition] != 1 || rep.Executed[KindCoordCrash] != 1 {
		t.Fatalf("executed = %v", rep.Executed)
	}
	want := []string{"part-start", "part-heal", "coord-crash"}
	if !reflect.DeepEqual(plat.actions, want) {
		t.Fatalf("actions = %v, want %v", plat.actions, want)
	}
	if plat.walMode != WALHealthy {
		t.Fatal("WAL fault window never healed")
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("healthy run reported violations: %v", rep.Violations)
	}
	if rep.Audits < 5 {
		t.Fatalf("audits = %d, want fault + periodic + final", rep.Audits)
	}
}

func TestEngineSurfacesViolations(t *testing.T) {
	clock := simclock.NewSim(time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC))
	plat := newFakePlatform()
	plat.sabotage = true
	eng := NewEngine(clock, plat)
	rep := eng.Execute(Schedule{{At: time.Minute, Kind: KindNodeCrash, Node: "n1"}}, 0, time.Minute)
	if len(rep.Violations) == 0 {
		t.Fatal("sabotaged platform produced no violations")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "running-node-live" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing running-node-live violation: %v", rep.Violations)
	}
}

func TestFaultFSInjectsRealDamage(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS()
	w, err := wal.OpenWriter(dir, wal.Options{FS: fs, PerRecordSync: true})
	if err != nil {
		t.Fatal(err)
	}
	mut := func(lsn uint64) db.Mutation {
		return db.Mutation{LSN: lsn, Type: db.MutNodePut, Node: &db.NodeRecord{ID: "n"}}
	}
	if err := w.Append(mut(1)); err != nil {
		t.Fatal(err)
	}
	fs.SetMode(WALShortWrite)
	if err := w.Append(mut(2)); err == nil {
		t.Fatal("short write acked")
	}
	fs.SetMode(WALSyncError)
	if err := w.Append(mut(3)); err == nil {
		t.Fatal("failed sync acked")
	}
	fs.SetMode(WALHealthy)
	if err := w.Append(mut(4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Injected() < 2 {
		t.Fatalf("injected = %d", fs.Injected())
	}
	recs, stats, err := wal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for _, r := range recs {
		got[r.LSN] = true
	}
	// Acked records 1 and 4 must survive; the torn record 2 must not
	// block later segments (stats counts its tear).
	if !got[1] || !got[4] {
		t.Fatalf("acked records lost: %v (stats %+v)", recs, stats)
	}
	if stats.TornTails == 0 {
		t.Fatal("short write left no torn tail")
	}
}

// TestFaultBlobStoreInjectsRealDamage: damage lands in the stored
// bytes on every other write during a window, the write still reports
// success, and reads return the damaged blob verbatim.
func TestFaultBlobStoreInjectsRealDamage(t *testing.T) {
	fs := NewFaultBlobStore(storage.NewMemStore(0))
	payload := []byte(`{"crc":1234,"payload":{"job_id":"j1"}}`)

	if err := fs.Put("k0", payload); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.Get("k0"); !reflect.DeepEqual(got, payload) {
		t.Fatal("healthy mode damaged a write")
	}

	fs.SetMode(CkptBitFlip)
	if err := fs.Put("k1", payload); err != nil {
		t.Fatal(err) // the disk lies: damaged writes still succeed
	}
	if err := fs.Put("k2", payload); err != nil {
		t.Fatal(err)
	}
	g1, _ := fs.Get("k1")
	g2, _ := fs.Get("k2")
	damaged := 0
	if !reflect.DeepEqual(g1, payload) {
		damaged++
	}
	if !reflect.DeepEqual(g2, payload) {
		damaged++
	}
	if damaged != 1 {
		t.Fatalf("every-other-write cadence broken: %d of 2 writes damaged", damaged)
	}

	fs.SetMode(CkptTruncate)
	_ = fs.Put("k3", payload)
	_ = fs.Put("k4", payload)
	g3, _ := fs.Get("k3")
	g4, _ := fs.Get("k4")
	if len(g3) == len(payload) && len(g4) == len(payload) {
		t.Fatal("truncate window truncated nothing")
	}

	fs.SetMode(CkptHealthy)
	if err := fs.Put("k5", payload); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.Get("k5"); !reflect.DeepEqual(got, payload) {
		t.Fatal("healed store still damaging writes")
	}
	if fs.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", fs.Injected())
	}
}

// TestVerifyIdempotentDetectsMutation is the unit-level proof behind
// the no-duplicate-side-effects sabotage scenario.
func TestVerifyIdempotentDetectsMutation(t *testing.T) {
	s := db.New(0)
	if vs := VerifyIdempotent(s, "noop", func() {}); len(vs) != 0 {
		t.Fatalf("no-op flagged: %v", vs)
	}
	vs := VerifyIdempotent(s, "mutating", func() {
		s.UpsertNode(db.NodeRecord{ID: "n1"})
	})
	if len(vs) != 1 || vs[0].Rule != "no-duplicate-side-effects" {
		t.Fatalf("vs = %v", vs)
	}
}
