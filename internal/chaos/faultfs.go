package chaos

import (
	"errors"
	"sync"

	"gpunion/internal/wal"
)

// ErrInjected is the error surfaced by injected disk faults.
var ErrInjected = errors.New("chaos: injected disk fault")

// FaultFS implements wal.FS over the real filesystem with switchable
// fault modes: fsync errors (the disk lies about durability) and short
// writes (a frame is torn mid-write). The faulty bytes really land in
// the segment files — exactly the damage the WAL reader and the
// writer's poisoned-segment rotation must absorb.
type FaultFS struct {
	mu   sync.Mutex
	mode WALFaultMode
	// Injected counts faults actually delivered, so scenarios can
	// assert the window did damage.
	injected int
}

// NewFaultFS returns a healthy FaultFS.
func NewFaultFS() *FaultFS { return &FaultFS{} }

// SetMode switches the injected behaviour.
func (fs *FaultFS) SetMode(m WALFaultMode) {
	fs.mu.Lock()
	fs.mode = m
	fs.mu.Unlock()
}

// Mode reads the current behaviour.
func (fs *FaultFS) Mode() WALFaultMode {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mode
}

// Injected reports how many faults were delivered.
func (fs *FaultFS) Injected() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.injected
}

func (fs *FaultFS) hit() {
	fs.mu.Lock()
	fs.injected++
	fs.mu.Unlock()
}

// OpenAppend implements wal.FS.
func (fs *FaultFS) OpenAppend(name string) (wal.File, error) {
	f, err := wal.OSFS{}.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, fs: fs}, nil
}

// faultFile wraps one segment file with the shared fault mode.
type faultFile struct {
	wal.File
	fs *FaultFS
}

// Write tears the frame in half under WALShortWrite.
func (f *faultFile) Write(p []byte) (int, error) {
	if f.fs.Mode() == WALShortWrite && len(p) > 1 {
		f.fs.hit()
		n, _ := f.File.Write(p[:len(p)/2])
		return n, ErrInjected
	}
	return f.File.Write(p)
}

// Sync fails under WALSyncError.
func (f *faultFile) Sync() error {
	if f.fs.Mode() == WALSyncError {
		f.fs.hit()
		return ErrInjected
	}
	return f.File.Sync()
}
