package chaos

import (
	"fmt"

	"gpunion/internal/db"
	"gpunion/internal/invariant"
)

// VerifyIdempotent delivers a *duplicate* of an already-processed
// message and checks that it caused no state change: the store's
// mutation sequence must not advance. The caller delivers the original
// first, then hands the replay here.
//
// This is the detector behind the no-duplicate-side-effects invariant:
// during duplicate-delivery windows the harness replays every
// heartbeat, job update and launch through it, so any ingress that is
// not idempotent — a duplicated telemetry sample, a re-stamped
// completion time, a double-closed allocation — is caught at the exact
// message that slipped through.
//
// It must run at a quiescent point (between discrete-event callbacks):
// a concurrent legitimate mutation would be indistinguishable from a
// duplicate side effect.
func VerifyIdempotent(s db.Store, label string, deliver func()) []invariant.Violation {
	before := s.CurrentLSN()
	deliver()
	after := s.CurrentLSN()
	if after == before {
		return nil
	}
	return []invariant.Violation{{
		Rule: "no-duplicate-side-effects",
		Detail: fmt.Sprintf("%s: duplicate delivery advanced the mutation sequence %d→%d",
			label, before, after),
	}}
}
