package chaos

import (
	"sync"

	"gpunion/internal/storage"
)

// FaultBlobStore implements storage.Store over a real backing store
// with switchable silent-corruption modes: bit flips and truncation,
// applied to blobs as they are written. The damaged bytes really land
// in the backing store and the write reports success — the disk lies —
// which is exactly the failure the checkpoint store's CRC frames and
// generation fallback must absorb.
//
// To keep runs deterministic while still interleaving good and bad
// generations, damage is applied to every second write during a fault
// window (the driver goroutine serializes writes, so the counter needs
// only its mutex).
type FaultBlobStore struct {
	inner storage.Store

	mu   sync.Mutex
	mode CkptFaultMode
	// writes counts Puts observed while a fault window is open (the
	// every-other-write cadence); injected counts damage delivered.
	writes   int
	injected int
}

// NewFaultBlobStore wraps a backing blob store, initially healthy.
func NewFaultBlobStore(inner storage.Store) *FaultBlobStore {
	return &FaultBlobStore{inner: inner}
}

// SetMode switches the injected damage behaviour.
func (f *FaultBlobStore) SetMode(m CkptFaultMode) {
	f.mu.Lock()
	f.mode = m
	f.mu.Unlock()
}

// Injected reports how many writes were actually damaged.
func (f *FaultBlobStore) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Put stores data, possibly damaged, and reports success either way.
func (f *FaultBlobStore) Put(key string, data []byte) error {
	f.mu.Lock()
	mode := f.mode
	damage := false
	if mode != CkptHealthy && len(data) > 1 {
		f.writes++
		if f.writes%2 == 1 {
			damage = true
			f.injected++
		}
	}
	n := f.injected
	f.mu.Unlock()

	if damage {
		bad := append([]byte(nil), data...)
		switch mode {
		case CkptBitFlip:
			// Deterministic position, varied across injections.
			bad[(n*31)%len(bad)] ^= 0x10
		case CkptTruncate:
			bad = bad[:len(bad)/2]
		}
		data = bad
	}
	return f.inner.Put(key, data)
}

// Get implements storage.Store.
func (f *FaultBlobStore) Get(key string) ([]byte, error) { return f.inner.Get(key) }

// Delete implements storage.Store.
func (f *FaultBlobStore) Delete(key string) error { return f.inner.Delete(key) }

// List implements storage.Store.
func (f *FaultBlobStore) List(prefix string) ([]string, error) { return f.inner.List(prefix) }

// UsedBytes implements storage.Store.
func (f *FaultBlobStore) UsedBytes() int64 { return f.inner.UsedBytes() }
