package chaos

import (
	"sync"

	"gpunion/internal/storage"
)

// FaultBlobStore implements storage.Store over a real backing store
// with switchable silent-corruption modes: bit flips and truncation,
// applied to blobs as they are written. The damaged bytes really land
// in the backing store and the write reports success — the disk lies —
// which is exactly the failure the checkpoint store's CRC frames and
// generation fallback must absorb.
//
// To keep runs deterministic while still interleaving good and bad
// generations, damage is applied to every second write during a fault
// window (the driver goroutine serializes writes, so the counter needs
// only its mutex).
// Read-side rot (KindCkptReadRot) is the complementary gray failure:
// the stored bytes are intact, but reads return damaged copies — media
// rot surfacing at restore time, after every write was acknowledged
// clean. The same every-other cadence applies, counted per read.
type FaultBlobStore struct {
	inner storage.Store

	mu   sync.Mutex
	mode CkptFaultMode
	// writes counts Puts observed while a fault window is open (the
	// every-other-write cadence); injected counts damage delivered.
	writes   int
	injected int
	// readRot toggles read-path damage; reads and readInjected mirror
	// the write-side counters.
	readRot      bool
	reads        int
	readInjected int
}

// NewFaultBlobStore wraps a backing blob store, initially healthy.
func NewFaultBlobStore(inner storage.Store) *FaultBlobStore {
	return &FaultBlobStore{inner: inner}
}

// SetMode switches the injected damage behaviour.
func (f *FaultBlobStore) SetMode(m CkptFaultMode) {
	f.mu.Lock()
	f.mode = m
	f.mu.Unlock()
}

// Injected reports how many writes were actually damaged.
func (f *FaultBlobStore) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// SetReadRot toggles silent damage on the read path. Unlike the write
// modes, the backing store stays intact — only the returned copies rot.
func (f *FaultBlobStore) SetReadRot(enabled bool) {
	f.mu.Lock()
	f.readRot = enabled
	f.mu.Unlock()
}

// ReadInjected reports how many reads were actually damaged.
func (f *FaultBlobStore) ReadInjected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.readInjected
}

// Put stores data, possibly damaged, and reports success either way.
func (f *FaultBlobStore) Put(key string, data []byte) error {
	f.mu.Lock()
	mode := f.mode
	damage := false
	if mode != CkptHealthy && len(data) > 1 {
		f.writes++
		if f.writes%2 == 1 {
			damage = true
			f.injected++
		}
	}
	n := f.injected
	f.mu.Unlock()

	if damage {
		bad := append([]byte(nil), data...)
		switch mode {
		case CkptBitFlip:
			// Deterministic position, varied across injections.
			bad[(n*31)%len(bad)] ^= 0x10
		case CkptTruncate:
			bad = bad[:len(bad)/2]
		}
		data = bad
	}
	return f.inner.Put(key, data)
}

// Get returns the stored blob, damaging every second copy while a
// read-rot window is open. The damage is applied to a private copy:
// re-reads outside the window see the intact bytes again.
func (f *FaultBlobStore) Get(key string) ([]byte, error) {
	data, err := f.inner.Get(key)
	if err != nil {
		return data, err
	}
	f.mu.Lock()
	damage := false
	if f.readRot && len(data) > 1 {
		f.reads++
		if f.reads%2 == 1 {
			damage = true
			f.readInjected++
		}
	}
	n := f.readInjected
	f.mu.Unlock()
	if damage {
		bad := append([]byte(nil), data...)
		bad[(n*37)%len(bad)] ^= 0x20
		data = bad
	}
	return data, nil
}

// Delete implements storage.Store.
func (f *FaultBlobStore) Delete(key string) error { return f.inner.Delete(key) }

// List implements storage.Store.
func (f *FaultBlobStore) List(prefix string) ([]string, error) { return f.inner.List(prefix) }

// UsedBytes implements storage.Store.
func (f *FaultBlobStore) UsedBytes() int64 { return f.inner.UsedBytes() }
