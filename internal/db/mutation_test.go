package db

import (
	"sync"
	"testing"
	"time"
)

var mutEpoch = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

// collectMutations installs a recording hook on the store.
func collectMutations(s Store) (*[]Mutation, *sync.Mutex) {
	var (
		mu   sync.Mutex
		muts []Mutation
	)
	s.SetMutationHook(func(m Mutation) {
		mu.Lock()
		muts = append(muts, m)
		mu.Unlock()
	})
	return &muts, &mu
}

// bothStores runs a subtest against the sharded and single-mutex
// implementations: the hook contract is part of the Store interface.
func bothStores(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Run("sharded", func(t *testing.T) { fn(t, New(0)) })
	t.Run("singlemutex", func(t *testing.T) { fn(t, NewSingleMutex(0)) })
}

func TestMutationHookEmitsEveryWrite(t *testing.T) {
	bothStores(t, func(t *testing.T, s Store) {
		muts, _ := collectMutations(s)
		s.UpsertNode(NodeRecord{ID: "n1", Status: NodeActive})
		if err := s.UpdateNode("n1", func(n *NodeRecord) { n.Status = NodePaused }); err != nil {
			t.Fatal(err)
		}
		if err := s.InsertJob(JobRecord{ID: "j1", State: JobPending}); err != nil {
			t.Fatal(err)
		}
		if err := s.UpdateJob("j1", func(j *JobRecord) { j.State = JobRunning }); err != nil {
			t.Fatal(err)
		}
		s.RecordAllocation(AllocationRecord{JobID: "j1", NodeID: "n1", DeviceID: "g0", Start: mutEpoch})
		if err := s.CloseAllocation("j1", mutEpoch.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
		s.AppendSample(Sample{Time: mutEpoch, NodeID: "n1", Metric: "m", Value: 1})

		want := []MutationType{MutNodePut, MutNodePut, MutJobPut, MutJobPut,
			MutAllocOpen, MutAllocClose, MutSamplePut}
		if len(*muts) != len(want) {
			t.Fatalf("emitted %d mutations, want %d", len(*muts), len(want))
		}
		var last uint64
		for i, m := range *muts {
			if m.Type != want[i] {
				t.Fatalf("mutation %d is %s, want %s", i, m.Type, want[i])
			}
			if m.LSN <= last {
				t.Fatalf("LSN not monotone at %d: %d after %d", i, m.LSN, last)
			}
			last = m.LSN
		}
		if (*muts)[1].Node.Status != NodePaused {
			t.Fatalf("update after-image has status %s", (*muts)[1].Node.Status)
		}
		if (*muts)[5].Alloc.End.IsZero() {
			t.Fatal("alloc_close after-image has zero End")
		}
		if s.CurrentLSN() != last {
			t.Fatalf("CurrentLSN %d != last emitted %d", s.CurrentLSN(), last)
		}

		// Failed operations must not emit.
		n := len(*muts)
		if err := s.UpdateNode("ghost", func(*NodeRecord) {}); err == nil {
			t.Fatal("expected not-found")
		}
		if err := s.InsertJob(JobRecord{ID: "j1"}); err == nil {
			t.Fatal("expected conflict")
		}
		if len(*muts) != n {
			t.Fatalf("failed operations emitted %d records", len(*muts)-n)
		}
	})
}

func TestApplyIdempotent(t *testing.T) {
	bothStores(t, func(t *testing.T, s Store) {
		muts, _ := collectMutations(s)
		s.UpsertNode(NodeRecord{ID: "n1", Status: NodeActive})
		_ = s.InsertJob(JobRecord{ID: "j1", State: JobPending})
		_ = s.UpdateJob("j1", func(j *JobRecord) { j.State = JobRunning })
		s.RecordAllocation(AllocationRecord{JobID: "j1", NodeID: "n1", DeviceID: "g0", Start: mutEpoch})
		_ = s.CloseAllocation("j1", mutEpoch.Add(time.Hour))
		s.AppendSample(Sample{Time: mutEpoch, NodeID: "n1", Metric: "m", Value: 1})
		s.SetMutationHook(nil)

		// Replay the full history twice over a fresh store: applying a
		// record whose effect is present must be a no-op.
		re := New(0)
		for pass := 0; pass < 2; pass++ {
			for _, m := range *muts {
				if err := re.Apply(m); err != nil {
					t.Fatal(err)
				}
			}
		}
		want, got := s.ExportState(), re.ExportState()
		if len(got.Jobs) != 1 || got.Jobs[0].State != JobRunning {
			t.Fatalf("jobs after double replay: %+v", got.Jobs)
		}
		if len(got.Allocations) != len(want.Allocations) {
			t.Fatalf("allocations %d != %d after double replay", len(got.Allocations), len(want.Allocations))
		}
		if !got.Allocations[0].End.Equal(want.Allocations[0].End) {
			t.Fatalf("allocation end %v != %v", got.Allocations[0].End, want.Allocations[0].End)
		}
		if len(got.Samples) != 1 {
			t.Fatalf("samples duplicated: %d", len(got.Samples))
		}
		if re.CurrentLSN() != s.CurrentLSN() {
			t.Fatalf("replayed LSN %d != source %d", re.CurrentLSN(), s.CurrentLSN())
		}
	})
}

func TestApplyAllocCloseTargetsExactEpisode(t *testing.T) {
	// A close record must only ever stamp the episode it closed — not a
	// newer open episode of the same job (the failure mode that makes
	// naive "close most recent open" replay wrong under fuzzy
	// snapshots).
	s := New(0)
	ep1 := AllocationRecord{JobID: "j1", NodeID: "n1", DeviceID: "g0", Start: mutEpoch}
	ep2 := AllocationRecord{JobID: "j1", NodeID: "n2", DeviceID: "g1", Start: mutEpoch.Add(time.Hour)}
	s.RecordAllocation(ep1)
	closed1 := ep1
	closed1.End = mutEpoch.Add(30 * time.Minute)
	// Snapshot already holds ep1 closed and ep2 open; the close record
	// replays anyway (its LSN is above the watermark).
	_ = s.CloseAllocation("j1", closed1.End)
	s.RecordAllocation(ep2)
	if err := s.Apply(Mutation{LSN: s.CurrentLSN() + 1, Type: MutAllocClose, Alloc: &closed1}); err != nil {
		t.Fatal(err)
	}
	allocs := s.Allocations()
	if len(allocs) != 2 {
		t.Fatalf("allocations = %d", len(allocs))
	}
	if !allocs[0].End.Equal(closed1.End) {
		t.Fatalf("ep1 end = %v", allocs[0].End)
	}
	if !allocs[1].End.IsZero() {
		t.Fatalf("replayed close leaked onto the newer open episode: end = %v", allocs[1].End)
	}
}

func TestExportStateWatermarkBoundsContent(t *testing.T) {
	// Every mutation with LSN ≤ Watermark must be in the export (the
	// invariant snapshot truncation relies on). Hammer the store while
	// exporting concurrently and check each export against the LSNs it
	// claims to contain.
	s := New(0)
	const writers, puts = 4, 2000
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				s.UpsertNode(NodeRecord{ID: nodeID(g, i%64), Status: NodeActive})
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		st := s.ExportState()
		if st.Watermark > s.CurrentLSN() {
			t.Fatalf("export watermark %d above store LSN %d", st.Watermark, s.CurrentLSN())
		}
	}
	// After quiescing, a final export must contain every node touched.
	st := s.ExportState()
	if st.Watermark != s.CurrentLSN() {
		t.Fatalf("quiesced watermark %d != LSN %d", st.Watermark, s.CurrentLSN())
	}
	if len(st.Nodes) == 0 {
		t.Fatal("empty export after load")
	}
}

func nodeID(g, i int) string {
	return string(rune('a'+g)) + "-" + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10))
}

func TestImportExportRoundTrip(t *testing.T) {
	bothStores(t, func(t *testing.T, s Store) {
		s.UpsertNode(NodeRecord{ID: "n1", Status: NodeActive,
			GPUs: []GPUInfo{{DeviceID: "g0", Model: "RTX 3090"}}})
		_ = s.InsertJob(JobRecord{ID: "j1", State: JobPending, ImageName: "img",
			Entrypoint: []string{"python", "train.py"}})
		s.RecordAllocation(AllocationRecord{JobID: "j1", NodeID: "n1", DeviceID: "g0", Start: mutEpoch})
		s.AppendSample(Sample{Time: mutEpoch, NodeID: "n1", Metric: "m", Value: 0.5})

		st := s.ExportState()
		re := NewSingleMutex(0) // cross-implementation restore
		re.ImportState(st)
		if re.CurrentLSN() != st.Watermark {
			t.Fatalf("imported LSN %d != watermark %d", re.CurrentLSN(), st.Watermark)
		}
		n, err := re.GetNode("n1")
		if err != nil || len(n.GPUs) != 1 {
			t.Fatalf("node after import: %+v err=%v", n, err)
		}
		j, err := re.GetJob("j1")
		if err != nil || j.ImageName != "img" || len(j.Entrypoint) != 2 {
			t.Fatalf("job after import: %+v err=%v", j, err)
		}
		if len(re.Allocations()) != 1 {
			t.Fatalf("allocations after import: %d", len(re.Allocations()))
		}
	})
}
