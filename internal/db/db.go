// Package db is GPUnion's central system database (§3.2): it persists
// node registrations, resource allocations, job records and historical
// monitoring samples, "enabling both operational decision making and
// capacity planning".
//
// The store is an in-memory, mutex-guarded database with JSON
// snapshot/restore. A configurable per-operation delay models the
// contention the paper predicts beyond ~200 nodes (§5.3), which the
// scalability benchmark measures.
package db

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by the database.
var (
	ErrNotFound = errors.New("db: record not found")
	ErrConflict = errors.New("db: conflicting record")
)

// NodeStatus is the lifecycle status of a provider node.
type NodeStatus string

// Node statuses. Volatility is first-class: Paused and Departed are
// normal states, not failures.
const (
	NodeActive      NodeStatus = "active"
	NodePaused      NodeStatus = "paused"      // provider paused new allocations
	NodeDeparting   NodeStatus = "departing"   // graceful shutdown in progress
	NodeDeparted    NodeStatus = "departed"    // voluntarily left
	NodeUnreachable NodeStatus = "unreachable" // heartbeat loss (emergency departure)
)

// GPUInfo summarizes one device for scheduling decisions.
type GPUInfo struct {
	DeviceID        string `json:"device_id"`
	Model           string `json:"model"`
	Arch            string `json:"arch"`
	MemoryMiB       int64  `json:"memory_mib"`
	CapabilityMajor int    `json:"capability_major"`
	CapabilityMinor int    `json:"capability_minor"`
	Allocated       bool   `json:"allocated"`
}

// NodeRecord is a registered provider node.
type NodeRecord struct {
	ID      string     `json:"id"`
	Addr    string     `json:"addr"` // agent base URL
	Status  NodeStatus `json:"status"`
	GPUs    []GPUInfo  `json:"gpus"`
	Kernel  string     `json:"kernel"`
	Storage int64      `json:"storage_bytes"` // scratch capacity

	RegisteredAt  time.Time `json:"registered_at"`
	LastHeartbeat time.Time `json:"last_heartbeat"`

	// Reliability inputs for the scheduler's volatility prediction.
	Departures  int           `json:"departures"`
	TotalUptime time.Duration `json:"total_uptime"`
	// LastJoin is when the node most recently became active.
	LastJoin time.Time `json:"last_join"`
}

// JobState is the platform-level lifecycle of a job.
type JobState string

// Job states.
const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobMigrating JobState = "migrating"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
	JobKilled    JobState = "killed"
)

// JobRecord is a submitted job.
type JobRecord struct {
	ID   string `json:"id"`
	User string `json:"user"`
	// Kind is "batch" or "interactive".
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	// Priority orders the pending queue (higher first).
	Priority int `json:"priority"`

	// Requirements for placement.
	GPUMemMiB       int64 `json:"gpu_mem_mib"`
	CapabilityMajor int   `json:"capability_major"`
	CapabilityMinor int   `json:"capability_minor"`

	// Placement (when scheduled).
	NodeID      string `json:"node_id,omitempty"`
	DeviceID    string `json:"device_id,omitempty"`
	ContainerID string `json:"container_id,omitempty"`
	// PreferredNode remembers the original placement for migrate-back.
	PreferredNode string `json:"preferred_node,omitempty"`
	// StoragePrefs is the user's ordered checkpoint placement list.
	StoragePrefs []string `json:"storage_prefs,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
	Migrations  int       `json:"migrations"`
}

// AllocationRecord is one placement episode of a job on a device.
type AllocationRecord struct {
	JobID    string    `json:"job_id"`
	NodeID   string    `json:"node_id"`
	DeviceID string    `json:"device_id"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end,omitempty"`
}

// Sample is one historical monitoring data point.
type Sample struct {
	Time   time.Time `json:"time"`
	NodeID string    `json:"node_id"`
	Metric string    `json:"metric"`
	Value  float64   `json:"value"`
}

// DB is the central database. All methods are safe for concurrent use.
type DB struct {
	mu          sync.Mutex
	nodes       map[string]*NodeRecord
	jobs        map[string]*JobRecord
	stateCount  map[JobState]int
	allocations []AllocationRecord
	samples     []Sample
	maxSamples  int
	// opDelay models per-operation I/O latency for contention studies.
	opDelay time.Duration
	ops     atomic.Int64
}

// New creates a database retaining at most maxSamples monitoring points
// (0 means a generous default).
func New(maxSamples int) *DB {
	if maxSamples <= 0 {
		maxSamples = 1 << 20
	}
	return &DB{
		nodes:      make(map[string]*NodeRecord),
		jobs:       make(map[string]*JobRecord),
		stateCount: make(map[JobState]int),
		maxSamples: maxSamples,
	}
}

// SetOpDelay configures an artificial per-operation latency, modelling a
// disk-backed database under load. Used by the scalability experiment.
func (d *DB) SetOpDelay(delay time.Duration) {
	d.mu.Lock()
	d.opDelay = delay
	d.mu.Unlock()
}

// Ops reports the total operations served (contention instrumentation).
func (d *DB) Ops() int64 { return d.ops.Load() }

// lockOp acquires the database for one operation, applying the modelled
// latency while holding the lock (the contention point).
func (d *DB) lockOp() {
	d.mu.Lock()
	d.ops.Add(1)
	if d.opDelay > 0 {
		time.Sleep(d.opDelay)
	}
}

// --- Nodes ---

// UpsertNode inserts or replaces a node record.
func (d *DB) UpsertNode(n NodeRecord) {
	d.lockOp()
	defer d.mu.Unlock()
	cp := n
	d.nodes[n.ID] = &cp
}

// GetNode returns a copy of the node record.
func (d *DB) GetNode(id string) (NodeRecord, error) {
	d.lockOp()
	defer d.mu.Unlock()
	n, ok := d.nodes[id]
	if !ok {
		return NodeRecord{}, fmt.Errorf("%w: node %s", ErrNotFound, id)
	}
	return *n, nil
}

// UpdateNode applies fn to the node record under the lock.
func (d *DB) UpdateNode(id string, fn func(*NodeRecord)) error {
	d.lockOp()
	defer d.mu.Unlock()
	n, ok := d.nodes[id]
	if !ok {
		return fmt.Errorf("%w: node %s", ErrNotFound, id)
	}
	fn(n)
	return nil
}

// ListNodes returns copies of all nodes, sorted by ID.
func (d *DB) ListNodes() []NodeRecord {
	d.lockOp()
	defer d.mu.Unlock()
	out := make([]NodeRecord, 0, len(d.nodes))
	for _, n := range d.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ActiveNodes returns nodes in NodeActive status, sorted by ID.
func (d *DB) ActiveNodes() []NodeRecord {
	var out []NodeRecord
	for _, n := range d.ListNodes() {
		if n.Status == NodeActive {
			out = append(out, n)
		}
	}
	return out
}

// --- Jobs ---

// InsertJob adds a new job record; the ID must be unused.
func (d *DB) InsertJob(j JobRecord) error {
	d.lockOp()
	defer d.mu.Unlock()
	if _, exists := d.jobs[j.ID]; exists {
		return fmt.Errorf("%w: job %s", ErrConflict, j.ID)
	}
	cp := j
	d.jobs[j.ID] = &cp
	d.stateCount[j.State]++
	return nil
}

// GetJob returns a copy of the job record.
func (d *DB) GetJob(id string) (JobRecord, error) {
	d.lockOp()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return JobRecord{}, fmt.Errorf("%w: job %s", ErrNotFound, id)
	}
	return *j, nil
}

// UpdateJob applies fn to the job record under the lock.
func (d *DB) UpdateJob(id string, fn func(*JobRecord)) error {
	d.lockOp()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return fmt.Errorf("%w: job %s", ErrNotFound, id)
	}
	before := j.State
	fn(j)
	if j.State != before {
		d.stateCount[before]--
		d.stateCount[j.State]++
	}
	return nil
}

// CountJobsInState returns the number of jobs in the state in O(1).
func (d *DB) CountJobsInState(state JobState) int {
	d.lockOp()
	defer d.mu.Unlock()
	return d.stateCount[state]
}

// ListJobs returns copies of all jobs, sorted by ID.
func (d *DB) ListJobs() []JobRecord {
	d.lockOp()
	defer d.mu.Unlock()
	out := make([]JobRecord, 0, len(d.jobs))
	for _, j := range d.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// JobsInState returns jobs in the given state, sorted by priority
// descending then submission time ascending — the pending-queue order.
func (d *DB) JobsInState(state JobState) []JobRecord {
	var out []JobRecord
	for _, j := range d.ListJobs() {
		if j.State == state {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		if !out[i].SubmittedAt.Equal(out[j].SubmittedAt) {
			return out[i].SubmittedAt.Before(out[j].SubmittedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// JobsOnNode returns jobs currently placed on the node in Running or
// Migrating state.
func (d *DB) JobsOnNode(nodeID string) []JobRecord {
	var out []JobRecord
	for _, j := range d.ListJobs() {
		if j.NodeID == nodeID && (j.State == JobRunning || j.State == JobMigrating) {
			out = append(out, j)
		}
	}
	return out
}

// --- Allocations ---

// RecordAllocation appends a placement episode.
func (d *DB) RecordAllocation(a AllocationRecord) {
	d.lockOp()
	defer d.mu.Unlock()
	d.allocations = append(d.allocations, a)
}

// CloseAllocation sets the End time of the job's most recent open
// allocation episode.
func (d *DB) CloseAllocation(jobID string, end time.Time) error {
	d.lockOp()
	defer d.mu.Unlock()
	for i := len(d.allocations) - 1; i >= 0; i-- {
		a := &d.allocations[i]
		if a.JobID == jobID && a.End.IsZero() {
			a.End = end
			return nil
		}
	}
	return fmt.Errorf("%w: open allocation for job %s", ErrNotFound, jobID)
}

// Allocations returns a copy of the allocation history.
func (d *DB) Allocations() []AllocationRecord {
	d.lockOp()
	defer d.mu.Unlock()
	out := make([]AllocationRecord, len(d.allocations))
	copy(out, d.allocations)
	return out
}

// --- Monitoring samples ---

// AppendSample stores a monitoring data point, evicting the oldest when
// the retention bound is hit.
func (d *DB) AppendSample(s Sample) {
	d.lockOp()
	defer d.mu.Unlock()
	d.samples = append(d.samples, s)
	if len(d.samples) > d.maxSamples {
		d.samples = d.samples[len(d.samples)-d.maxSamples:]
	}
}

// SamplesInRange returns samples for metric within [from, to), all nodes
// if nodeID is empty.
func (d *DB) SamplesInRange(metric, nodeID string, from, to time.Time) []Sample {
	d.lockOp()
	defer d.mu.Unlock()
	var out []Sample
	for _, s := range d.samples {
		if s.Metric != metric {
			continue
		}
		if nodeID != "" && s.NodeID != nodeID {
			continue
		}
		if s.Time.Before(from) || !s.Time.Before(to) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// --- Persistence ---

// snapshot is the JSON persistence envelope.
type snapshot struct {
	Nodes       []NodeRecord       `json:"nodes"`
	Jobs        []JobRecord        `json:"jobs"`
	Allocations []AllocationRecord `json:"allocations"`
	Samples     []Sample           `json:"samples"`
}

// Save writes a JSON snapshot of the whole database.
func (d *DB) Save(w io.Writer) error {
	snap := snapshot{
		Nodes:       d.ListNodes(),
		Jobs:        d.ListJobs(),
		Allocations: d.Allocations(),
	}
	d.mu.Lock()
	snap.Samples = append(snap.Samples, d.samples...)
	d.mu.Unlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("db: saving snapshot: %w", err)
	}
	return nil
}

// Load replaces the database contents from a JSON snapshot.
func (d *DB) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("db: loading snapshot: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nodes = make(map[string]*NodeRecord, len(snap.Nodes))
	for _, n := range snap.Nodes {
		cp := n
		d.nodes[n.ID] = &cp
	}
	d.jobs = make(map[string]*JobRecord, len(snap.Jobs))
	d.stateCount = make(map[JobState]int)
	for _, j := range snap.Jobs {
		cp := j
		d.jobs[j.ID] = &cp
		d.stateCount[j.State]++
	}
	d.allocations = snap.Allocations
	d.samples = snap.Samples
	return nil
}
