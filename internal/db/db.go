// Package db is GPUnion's central system database (§3.2): it persists
// node registrations, resource allocations, job records and historical
// monitoring samples, "enabling both operational decision making and
// capacity planning".
//
// The store is in-memory. State is hash-sharded per table (nodes,
// jobs, allocations, monitoring samples) so that heartbeat bursts, job
// mutations and metric appends on different records proceed in
// parallel: every shard carries its own sync.RWMutex, point operations
// touch exactly one shard, and read-mostly scans take read locks shard
// by shard.
//
// Records are copy-on-write: mutators install a freshly cloned record
// and never modify an installed one, so read paths hand out shallow
// copies that safely share slice storage (GPUs, Entrypoint) with the
// store. Callers that want to mutate a returned record's slices must
// clone it first (CloneNode, CloneJob).
//
// The job table additionally maintains materialized per-shard indexes
// (see index.go): per-state queue-ordered lists and a node→jobs map,
// kept in the same critical sections as the record map, so the hot
// control-plane queries — JobsInState, JobsOnNode, CountJobsInState —
// cost O(result), not O(all jobs).
//
// Durability is layered on top through mutation records: every write
// emits a typed, LSN-stamped Mutation to an installed MutationHook
// (the write-ahead log in internal/wal), ExportState checkpoints the
// store shard by shard without ever quiescing it, and Apply replays
// logged mutations idempotently during recovery. One-shot dumps are
// simply the JSON encoding of ExportState; the coordinator path
// persists via snapshot + WAL.
//
// A configurable per-operation delay models the contention the paper
// predicts beyond ~200 nodes (§5.3), which the scalability benchmark
// measures; the single-mutex baseline it is compared against is
// preserved as SingleMutex.
package db

import (
	"errors"
	"fmt"
	"hash/maphash"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpunion/internal/gpu"
	"gpunion/internal/workload"
)

// Errors returned by the database.
var (
	ErrNotFound = errors.New("db: record not found")
	ErrConflict = errors.New("db: conflicting record")
)

// NodeStatus is the lifecycle status of a provider node.
type NodeStatus string

// Node statuses. Volatility is first-class: Paused and Departed are
// normal states, not failures.
const (
	NodeActive      NodeStatus = "active"
	NodePaused      NodeStatus = "paused"      // provider paused new allocations
	NodeDeparting   NodeStatus = "departing"   // graceful shutdown in progress
	NodeDeparted    NodeStatus = "departed"    // voluntarily left
	NodeUnreachable NodeStatus = "unreachable" // heartbeat loss (emergency departure)
)

// GPUInfo summarizes one device for scheduling decisions.
type GPUInfo struct {
	DeviceID        string `json:"device_id"`
	Model           string `json:"model"`
	Arch            string `json:"arch"`
	MemoryMiB       int64  `json:"memory_mib"`
	CapabilityMajor int    `json:"capability_major"`
	CapabilityMinor int    `json:"capability_minor"`
	Allocated       bool   `json:"allocated"`
}

// NodeRecord is a registered provider node.
type NodeRecord struct {
	ID      string     `json:"id"`
	Addr    string     `json:"addr"` // agent base URL
	Status  NodeStatus `json:"status"`
	GPUs    []GPUInfo  `json:"gpus"`
	Kernel  string     `json:"kernel"`
	Storage int64      `json:"storage_bytes"` // scratch capacity

	RegisteredAt  time.Time `json:"registered_at"`
	LastHeartbeat time.Time `json:"last_heartbeat"`

	// Reliability inputs for the scheduler's volatility prediction.
	Departures  int           `json:"departures"`
	TotalUptime time.Duration `json:"total_uptime"`
	// LastJoin is when the node most recently became active.
	LastJoin time.Time `json:"last_join"`

	// Health is the folded gray-failure health score in (0, 1] — 1
	// fully healthy — and HealthAt the instant of the fold that
	// produced it. A zero HealthAt means no health events were ever
	// folded (read the score through HealthScore, which treats that as
	// healthy); both fields move only via RecordHealth / MutNodeHealth.
	Health   float64   `json:"health,omitempty"`
	HealthAt time.Time `json:"health_at,omitempty"`
}

// HealthScore reads the node's effective health: 1.0 until the first
// fold installs a score (old snapshots and fresh registrations decode
// with a zero HealthAt, which must not read as maximally unhealthy).
func (n *NodeRecord) HealthScore() float64 {
	if n.HealthAt.IsZero() {
		return 1
	}
	return n.Health
}

// JobState is the platform-level lifecycle of a job.
type JobState string

// Job states.
const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobMigrating JobState = "migrating"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
	JobKilled    JobState = "killed"
)

// JobRecord is a submitted job.
type JobRecord struct {
	ID   string `json:"id"`
	User string `json:"user"`
	// Kind is "batch" or "interactive".
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	// Priority orders the pending queue (higher first).
	Priority int `json:"priority"`

	// Requirements for placement.
	GPUMemMiB       int64 `json:"gpu_mem_mib"`
	CapabilityMajor int   `json:"capability_major"`
	CapabilityMinor int   `json:"capability_minor"`

	// Placement (when scheduled).
	NodeID      string `json:"node_id,omitempty"`
	DeviceID    string `json:"device_id,omitempty"`
	ContainerID string `json:"container_id,omitempty"`
	// PreferredNode remembers the original placement for migrate-back.
	PreferredNode string `json:"preferred_node,omitempty"`
	// StoragePrefs is the user's ordered checkpoint placement list.
	StoragePrefs []string `json:"storage_prefs,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	// PlacedAt is when the job's *current* placement committed (unlike
	// StartedAt, it moves on every migration). Heartbeat reconciliation
	// uses it to distinguish "the host lost this job" from "this job
	// was placed after the host built its report".
	PlacedAt   time.Time `json:"placed_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`
	Migrations int       `json:"migrations"`

	// Relaunch spec: everything the coordinator needs to (re)launch the
	// job. Persisting it with the record is what lets a recovered
	// coordinator reschedule pending and displaced jobs instead of
	// forcing users to resubmit.
	ImageName             string                 `json:"image_name,omitempty"`
	Entrypoint            []string               `json:"entrypoint,omitempty"`
	CheckpointIntervalSec int                    `json:"checkpoint_interval_sec,omitempty"`
	SessionSeconds        int                    `json:"session_seconds,omitempty"`
	Training              *workload.TrainingSpec `json:"training,omitempty"`
}

// AllocationRecord is one placement episode of a job on a device.
type AllocationRecord struct {
	JobID    string    `json:"job_id"`
	NodeID   string    `json:"node_id"`
	DeviceID string    `json:"device_id"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end,omitempty"`
}

// Sample is one historical monitoring data point.
type Sample struct {
	Time   time.Time `json:"time"`
	NodeID string    `json:"node_id"`
	Metric string    `json:"metric"`
	Value  float64   `json:"value"`
}

// Store is the system-database surface shared by the sharded DB and the
// preserved SingleMutex baseline, so benchmarks and experiments can
// compare the two under identical workloads.
type Store interface {
	SetOpDelay(delay time.Duration)
	Ops() int64

	UpsertNode(n NodeRecord)
	GetNode(id string) (NodeRecord, error)
	UpdateNode(id string, fn func(*NodeRecord)) error
	// TouchNodes advances LastHeartbeat on a batch of nodes — the
	// coalesced no-op-heartbeat commit path. Beats landing on the same
	// shard share one critical section and emit one compact MutBeat
	// record, so a steady-state fleet's write volume is proportional to
	// churn, not fleet size. Beats for missing nodes or with stale
	// timestamps are skipped; the applied count is returned.
	TouchNodes(beats []BeatDelta) int
	// RecordHealth folds a batch of gray-failure health events into one
	// node's health score. fold maps the node's previous (score,
	// instant) pair to the new score and runs inside the node's
	// critical section, so concurrent folds on one node serialize; the
	// committed record (MutNodeHealth) carries the resulting score as
	// an after-image plus the folded events, which is what lets the
	// health-score-consistent audit recompute it. Folds whose at does
	// not advance HealthAt are skipped (forward-only, like TouchNodes);
	// ok reports whether the fold was applied.
	RecordHealth(nodeID string, at time.Time, events []gpu.HealthEvent,
		fold func(prev float64, prevAt time.Time) float64) (score float64, ok bool)
	ListNodes() []NodeRecord
	ActiveNodes() []NodeRecord

	InsertJob(j JobRecord) error
	GetJob(id string) (JobRecord, error)
	UpdateJob(id string, fn func(*JobRecord)) error
	CountJobsInState(state JobState) int
	ListJobs() []JobRecord
	JobsInState(state JobState) []JobRecord
	JobsOnNode(nodeID string) []JobRecord

	RecordAllocation(a AllocationRecord)
	CloseAllocation(jobID string, end time.Time) error
	// CloseAllocationEpisode closes the open episode matching the full
	// placement identity. Callers racing a re-placement use it so a
	// duplicate close can never eat the job's fresh episode on another
	// device.
	CloseAllocationEpisode(jobID, nodeID, deviceID string, end time.Time) error
	Allocations() []AllocationRecord

	AppendSample(s Sample)
	SamplesInRange(metric, nodeID string, from, to time.Time) []Sample

	// Persistence. SetMutationHook observes every committed mutation
	// (the WAL append point); ExportState/ImportState checkpoint and
	// restore without a global quiesce; Apply replays logged mutations
	// idempotently; CurrentLSN reads the mutation sequence counter.
	// (The legacy stop-the-world Save/Load snapshot pair is gone:
	// serialize ExportState / deserialize into ImportState instead.)
	SetMutationHook(h MutationHook)
	// AddMutationObserver registers an additional read-only subscriber
	// for committed mutations — the seam derived caches (e.g. the
	// scheduler's node pool) are maintained through. Observers run
	// after the durable hook, outside any shard lock, and must not
	// mutate the payloads. The returned cancel detaches the observer.
	AddMutationObserver(h MutationHook) (cancel func())
	// ShardFor reports which table shard a committed mutation landed
	// on — the label per-shard write metrics aggregate by. Unsharded
	// stores report 0 for everything.
	ShardFor(m Mutation) int
	CurrentLSN() uint64
	Apply(m Mutation) error
	ExportState() State
	ImportState(st State)
}

// Compile-time interface checks.
var (
	_ Store = (*DB)(nil)
	_ Store = (*SingleMutex)(nil)
)

// DefaultShards is the shard count used by New. Sixteen is enough to
// spread a few hundred heartbeating nodes with negligible memory cost.
const DefaultShards = 16

// hashSeed makes the shard assignment stable for the process lifetime.
var hashSeed = maphash.MakeSeed()

// shardOf hashes a record key onto a shard index (shards is a power of
// two).
func shardOf(key string, shards int) int {
	return int(maphash.String(hashSeed, key)) & (shards - 1)
}

// nodeShard is one partition of the node table.
type nodeShard struct {
	mu   sync.RWMutex
	recs map[string]*NodeRecord
}

// jobShard is one partition of the job table. Each shard maintains its
// own materialized indexes next to the record map — per-state counts,
// per-state queue-ordered lists, and a node→jobs placement map (see
// index.go) — all mutated only under mu.
type jobShard struct {
	mu         sync.RWMutex
	recs       map[string]*JobRecord
	stateCount map[JobState]int
	queue      map[JobState][]*JobRecord
	byNode     map[string]map[string]*JobRecord
}

// allocShard is one partition of the allocation history, keyed by job.
type allocShard struct {
	mu       sync.RWMutex
	episodes []AllocationRecord
}

// sampleShard is one partition of the monitoring history, keyed by node.
type sampleShard struct {
	mu  sync.RWMutex
	buf []Sample
}

// DB is the central database. All methods are safe for concurrent use;
// operations on records that hash to different shards do not contend.
type DB struct {
	shardCount int
	nodes      []*nodeShard
	jobs       []*jobShard
	allocs     []*allocShard
	samples    []*sampleShard
	// maxSamples bounds the monitoring history across all shards;
	// sampleCount tracks the global total so eviction matches the
	// single-mutex semantics without a global lock.
	maxSamples  int
	sampleCount atomic.Int64
	// opDelay models per-operation I/O latency for contention studies
	// (nanoseconds; applied while holding the target shard's lock).
	opDelay atomic.Int64
	ops     atomic.Int64
	// lsn stamps every mutation; assigned inside the target shard's
	// critical section so an ExportState watermark read before a shard
	// is serialized bounds exactly what that shard's copy contains.
	lsn       atomic.Uint64
	hook      atomic.Pointer[MutationHook]
	observers observerList
}

// New creates a sharded database retaining at most maxSamples monitoring
// points (0 means a generous default).
func New(maxSamples int) *DB {
	return NewWithShards(maxSamples, DefaultShards)
}

// NewWithShards creates a database with an explicit shard count, rounded
// up to a power of two. One shard degenerates to a single-RWMutex store.
func NewWithShards(maxSamples, shards int) *DB {
	if maxSamples <= 0 {
		maxSamples = 1 << 20
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	d := &DB{
		shardCount: pow,
		nodes:      make([]*nodeShard, pow),
		jobs:       make([]*jobShard, pow),
		allocs:     make([]*allocShard, pow),
		samples:    make([]*sampleShard, pow),
		maxSamples: maxSamples,
	}
	for i := 0; i < pow; i++ {
		d.nodes[i] = &nodeShard{recs: make(map[string]*NodeRecord)}
		js := &jobShard{recs: make(map[string]*JobRecord)}
		js.resetIndexes()
		d.jobs[i] = js
		d.allocs[i] = &allocShard{}
		d.samples[i] = &sampleShard{}
	}
	return d
}

// Shards reports the shard count (diagnostics and benchmarks).
func (d *DB) Shards() int { return d.shardCount }

// SetOpDelay configures an artificial per-operation latency, modelling a
// disk-backed database under load. Used by the scalability experiment.
func (d *DB) SetOpDelay(delay time.Duration) {
	d.opDelay.Store(int64(delay))
}

// Ops reports the total operations served (contention instrumentation).
func (d *DB) Ops() int64 { return d.ops.Load() }

// delay applies the modelled latency; callers hold the target shard's
// lock so the sleep is a genuine (per-shard) contention point.
func (d *DB) delay() {
	if dl := d.opDelay.Load(); dl > 0 {
		time.Sleep(time.Duration(dl))
	}
}

func (d *DB) nodeShard(id string) *nodeShard   { return d.nodes[shardOf(id, d.shardCount)] }
func (d *DB) jobShard(id string) *jobShard     { return d.jobs[shardOf(id, d.shardCount)] }
func (d *DB) allocShard(id string) *allocShard { return d.allocs[shardOf(id, d.shardCount)] }
func (d *DB) sampleShard(id string) *sampleShard {
	return d.samples[shardOf(id, d.shardCount)]
}

// ShardFor reports the shard index a mutation's key hashes to in its
// table. Observers use it to label per-shard write metrics without the
// store having to widen every Mutation record.
func (d *DB) ShardFor(m Mutation) int {
	switch m.Type {
	case MutNodePut:
		if m.Node != nil {
			return shardOf(m.Node.ID, d.shardCount)
		}
	case MutJobPut:
		if m.Job != nil {
			return shardOf(m.Job.ID, d.shardCount)
		}
	case MutAllocOpen, MutAllocClose:
		if m.Alloc != nil {
			return shardOf(m.Alloc.JobID, d.shardCount)
		}
	case MutSamplePut:
		if m.Sample != nil {
			return shardOf(m.Sample.NodeID, d.shardCount)
		}
	case MutBeat:
		// Every delta in a MutBeat record targets one shard (TouchNodes
		// groups before emitting), so the first delta names it.
		if len(m.Beats) > 0 {
			return shardOf(m.Beats[0].NodeID, d.shardCount)
		}
	case MutNodeHealth:
		if m.Health != nil {
			return shardOf(m.Health.NodeID, d.shardCount)
		}
	}
	return 0
}

// --- Nodes ---

// UpsertNode inserts or replaces a node record.
func (d *DB) UpsertNode(n NodeRecord) {
	d.ops.Add(1)
	s := d.nodeShard(n.ID)
	s.mu.Lock()
	d.delay()
	cp := cloneNode(n)
	s.recs[n.ID] = &cp
	lsn := d.lsn.Add(1)
	s.mu.Unlock()
	// The installed record is immutable from here on (copy-on-write),
	// so the emitted after-image can share it.
	d.emit(Mutation{LSN: lsn, Type: MutNodePut, Node: &cp})
}

// GetNode returns a copy of the node record.
func (d *DB) GetNode(id string) (NodeRecord, error) {
	d.ops.Add(1)
	s := d.nodeShard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	d.delay()
	n, ok := s.recs[id]
	if !ok {
		return NodeRecord{}, fmt.Errorf("%w: node %s", ErrNotFound, id)
	}
	return *n, nil
}

// UpdateNode applies fn to the node record under the shard lock. fn
// runs on a private clone (copy-on-write): the previously installed
// record — and every copy read paths handed out that shares its slice
// storage — is left untouched.
func (d *DB) UpdateNode(id string, fn func(*NodeRecord)) error {
	d.ops.Add(1)
	s := d.nodeShard(id)
	s.mu.Lock()
	d.delay()
	n, ok := s.recs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: node %s", ErrNotFound, id)
	}
	cp := cloneNode(*n)
	fn(&cp)
	s.recs[id] = &cp
	lsn := d.lsn.Add(1)
	s.mu.Unlock()
	d.emit(Mutation{LSN: lsn, Type: MutNodePut, Node: &cp})
	return nil
}

// TouchNodes advances LastHeartbeat on a batch of nodes. Deltas are
// grouped by node shard; each shard pays one lock acquisition, one
// modelled-latency delay and one LSN for its whole group, and emits a
// single compact MutBeat record — one WAL frame per shard per flush,
// however many nodes beat. The LSN is allocated under the shard lock
// (the same watermark discipline as every other mutator), so an
// ExportState watermark read before this shard is serialized bounds
// exactly what that shard's copy contains.
func (d *DB) TouchNodes(beats []BeatDelta) int {
	if len(beats) == 0 {
		return 0
	}
	d.ops.Add(1)
	// Group per shard by counting sort into one backing array — flush
	// batches run hot, and a map[int][]BeatDelta here costs half the
	// commit in allocator time.
	shards := make([]int, len(beats))
	counts := make([]int, d.shardCount)
	for i, b := range beats {
		s := shardOf(b.NodeID, d.shardCount)
		shards[i] = s
		counts[s]++
	}
	next := make([]int, d.shardCount)
	sum := 0
	for s, c := range counts {
		next[s] = sum
		sum += c
	}
	grouped := make([]BeatDelta, len(beats))
	for i, b := range beats {
		s := shards[i]
		grouped[next[s]] = b
		next[s]++
	}
	applied := 0
	for idx := 0; idx < d.shardCount; idx++ {
		if counts[idx] == 0 {
			continue
		}
		group := grouped[next[idx]-counts[idx] : next[idx]]
		s := d.nodes[idx]
		s.mu.Lock()
		d.delay()
		kept := group[:0]
		for _, b := range group {
			n, ok := s.recs[b.NodeID]
			if !ok || !b.At.After(n.LastHeartbeat) {
				continue
			}
			cp := cloneNode(*n)
			cp.LastHeartbeat = b.At
			s.recs[b.NodeID] = &cp
			kept = append(kept, b)
		}
		if len(kept) == 0 {
			s.mu.Unlock()
			continue
		}
		lsn := d.lsn.Add(1)
		s.mu.Unlock()
		d.emit(Mutation{LSN: lsn, Type: MutBeat, Beats: kept})
		applied += len(kept)
	}
	return applied
}

// RecordHealth folds health events into one node's score under the
// shard lock (see Store.RecordHealth). The emitted MutNodeHealth
// record carries the resulting score as an after-image — replay
// installs it directly, no re-fold — plus the events, so the
// health-score-consistent audit can recompute the fold.
func (d *DB) RecordHealth(nodeID string, at time.Time, events []gpu.HealthEvent,
	fold func(prev float64, prevAt time.Time) float64) (float64, bool) {
	d.ops.Add(1)
	s := d.nodeShard(nodeID)
	s.mu.Lock()
	d.delay()
	n, ok := s.recs[nodeID]
	if !ok || !at.After(n.HealthAt) {
		s.mu.Unlock()
		return 0, false
	}
	score := fold(n.Health, n.HealthAt)
	cp := cloneNode(*n)
	cp.Health, cp.HealthAt = score, at
	s.recs[nodeID] = &cp
	lsn := d.lsn.Add(1)
	s.mu.Unlock()
	d.emit(Mutation{LSN: lsn, Type: MutNodeHealth, Health: &HealthDelta{
		NodeID: nodeID, Score: score, At: at, Events: events,
	}})
	return score, true
}

// ListNodes returns copies of all nodes, sorted by ID. Shards are read-
// locked one at a time — readers never stop the whole store. The copies
// are shallow: installed records are copy-on-write, so sharing their
// GPU slices is safe as long as the caller does not mutate them.
func (d *DB) ListNodes() []NodeRecord {
	d.ops.Add(1)
	var out []NodeRecord
	for i, s := range d.nodes {
		s.mu.RLock()
		if i == 0 {
			d.delay()
		}
		out = slices.Grow(out, len(s.recs))
		for _, n := range s.recs {
			out = append(out, *n)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ActiveNodes returns nodes in NodeActive status, sorted by ID. Like
// ListNodes it hands out shallow copies in a single filtered pass.
func (d *DB) ActiveNodes() []NodeRecord {
	d.ops.Add(1)
	var out []NodeRecord
	for i, s := range d.nodes {
		s.mu.RLock()
		if i == 0 {
			d.delay()
		}
		for _, n := range s.recs {
			if n.Status == NodeActive {
				out = append(out, *n)
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- Jobs ---

// InsertJob adds a new job record; the ID must be unused.
func (d *DB) InsertJob(j JobRecord) error {
	d.ops.Add(1)
	s := d.jobShard(j.ID)
	s.mu.Lock()
	d.delay()
	if _, exists := s.recs[j.ID]; exists {
		s.mu.Unlock()
		return fmt.Errorf("%w: job %s", ErrConflict, j.ID)
	}
	cp := cloneJob(j)
	s.recs[j.ID] = &cp
	s.indexInsert(&cp)
	lsn := d.lsn.Add(1)
	s.mu.Unlock()
	d.emit(Mutation{LSN: lsn, Type: MutJobPut, Job: &cp})
	return nil
}

// GetJob returns a copy of the job record.
func (d *DB) GetJob(id string) (JobRecord, error) {
	d.ops.Add(1)
	s := d.jobShard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	d.delay()
	j, ok := s.recs[id]
	if !ok {
		return JobRecord{}, fmt.Errorf("%w: job %s", ErrNotFound, id)
	}
	return *j, nil
}

// UpdateJob applies fn to the job record under the shard lock. fn runs
// on a private clone (copy-on-write); the indexes are re-keyed from the
// old record to the new one in the same critical section.
func (d *DB) UpdateJob(id string, fn func(*JobRecord)) error {
	d.ops.Add(1)
	s := d.jobShard(id)
	s.mu.Lock()
	d.delay()
	old, ok := s.recs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: job %s", ErrNotFound, id)
	}
	cp := cloneJob(*old)
	fn(&cp)
	s.indexRemove(old)
	s.recs[id] = &cp
	s.indexInsert(&cp)
	lsn := d.lsn.Add(1)
	s.mu.Unlock()
	d.emit(Mutation{LSN: lsn, Type: MutJobPut, Job: &cp})
	return nil
}

// CountJobsInState sums the per-shard state counters — O(shards), far
// cheaper than scanning jobs.
func (d *DB) CountJobsInState(state JobState) int {
	d.ops.Add(1)
	total := 0
	for i, s := range d.jobs {
		s.mu.RLock()
		if i == 0 {
			d.delay()
		}
		total += s.stateCount[state]
		s.mu.RUnlock()
	}
	return total
}

// ListJobs returns copies of all jobs, sorted by ID.
func (d *DB) ListJobs() []JobRecord {
	d.ops.Add(1)
	var out []JobRecord
	for i, s := range d.jobs {
		s.mu.RLock()
		if i == 0 {
			d.delay()
		}
		out = slices.Grow(out, len(s.recs))
		for _, j := range s.recs {
			out = append(out, *j)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// JobsInState returns jobs in the given state, sorted by priority
// descending then submission time ascending — the pending-queue order.
// For the live states the per-shard queue indexes already hold each
// shard's records in that order, so the query collects the sorted runs
// under brief per-shard read locks and merges them: O(result), never a
// full-table scan. Terminal-state slices are unordered (see
// orderedState), so their — rare — listings sort at query time,
// still touching only the matching records.
func (d *DB) JobsInState(state JobState) []JobRecord {
	d.ops.Add(1)
	runs := make([][]*JobRecord, 0, d.shardCount)
	total := 0
	for i, s := range d.jobs {
		s.mu.RLock()
		if i == 0 {
			d.delay()
		}
		if q := s.queue[state]; len(q) > 0 {
			run := make([]*JobRecord, len(q))
			copy(run, q)
			runs = append(runs, run)
			total += len(run)
		}
		s.mu.RUnlock()
	}
	// Installed records are copy-on-write, so dereferencing the run
	// pointers after the locks drop reads immutable snapshots.
	if orderedState(state) {
		return mergeQueueRuns(runs, total)
	}
	out := make([]JobRecord, 0, total)
	for _, run := range runs {
		for _, rec := range run {
			out = append(out, *rec)
		}
	}
	sortQueueOrder(out)
	return out
}

// JobsOnNode returns jobs currently placed on the node in Running or
// Migrating state, sorted by ID. The per-shard byNode index makes this
// O(shards + jobs-on-node) — the heartbeat anti-entropy path no longer
// scans the job table.
func (d *DB) JobsOnNode(nodeID string) []JobRecord {
	d.ops.Add(1)
	var out []JobRecord
	for i, s := range d.jobs {
		s.mu.RLock()
		if i == 0 {
			d.delay()
		}
		for _, rec := range s.byNode[nodeID] {
			out = append(out, *rec)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// sortQueueOrder sorts jobs into pending-queue order (the order the
// queue indexes maintain incrementally; see queueLess). Used by the
// scan-based SingleMutex baseline.
func sortQueueOrder(jobs []JobRecord) {
	sort.Slice(jobs, func(i, j int) bool { return queueLess(&jobs[i], &jobs[j]) })
}

// --- Allocations ---

// RecordAllocation appends a placement episode.
func (d *DB) RecordAllocation(a AllocationRecord) {
	d.ops.Add(1)
	s := d.allocShard(a.JobID)
	s.mu.Lock()
	d.delay()
	s.episodes = append(s.episodes, a)
	lsn := d.lsn.Add(1)
	s.mu.Unlock()
	image := a
	d.emit(Mutation{LSN: lsn, Type: MutAllocOpen, Alloc: &image})
}

// CloseAllocation sets the End time of the job's most recent open
// allocation episode. Only the job's own shard is touched.
func (d *DB) CloseAllocation(jobID string, end time.Time) error {
	d.ops.Add(1)
	s := d.allocShard(jobID)
	s.mu.Lock()
	d.delay()
	for i := len(s.episodes) - 1; i >= 0; i-- {
		a := &s.episodes[i]
		if a.JobID == jobID && a.End.IsZero() {
			a.End = end
			closed := *a
			lsn := d.lsn.Add(1)
			s.mu.Unlock()
			d.emit(Mutation{LSN: lsn, Type: MutAllocClose, Alloc: &closed})
			return nil
		}
	}
	s.mu.Unlock()
	return fmt.Errorf("%w: open allocation for job %s", ErrNotFound, jobID)
}

// CloseAllocationEpisode sets the End time of the job's most recent
// open episode on the given node and device. Unlike CloseAllocation,
// an open episode of the same job on a *different* placement is left
// alone — the guarantee concurrent reconciliation paths rely on.
func (d *DB) CloseAllocationEpisode(jobID, nodeID, deviceID string, end time.Time) error {
	d.ops.Add(1)
	s := d.allocShard(jobID)
	s.mu.Lock()
	d.delay()
	for i := len(s.episodes) - 1; i >= 0; i-- {
		a := &s.episodes[i]
		if a.JobID == jobID && a.NodeID == nodeID && a.DeviceID == deviceID && a.End.IsZero() {
			a.End = end
			closed := *a
			lsn := d.lsn.Add(1)
			s.mu.Unlock()
			d.emit(Mutation{LSN: lsn, Type: MutAllocClose, Alloc: &closed})
			return nil
		}
	}
	s.mu.Unlock()
	return fmt.Errorf("%w: open allocation for job %s on %s/%s", ErrNotFound, jobID, nodeID, deviceID)
}

// Allocations returns a copy of the allocation history, ordered by start
// time (then job then node, for determinism across shards).
func (d *DB) Allocations() []AllocationRecord {
	d.ops.Add(1)
	var out []AllocationRecord
	for i, s := range d.allocs {
		s.mu.RLock()
		if i == 0 {
			d.delay()
		}
		out = append(out, s.episodes...)
		s.mu.RUnlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		if out[i].JobID != out[j].JobID {
			return out[i].JobID < out[j].JobID
		}
		return out[i].NodeID < out[j].NodeID
	})
	return out
}

// --- Monitoring samples ---

// AppendSample stores a monitoring data point. The retention bound is
// global, like the single-mutex baseline's: when the total exceeds
// maxSamples, the appending shard evicts its oldest point, so the
// store's footprint stays bounded without a cross-shard lock. Eviction
// order is per-shard FIFO (approximately global FIFO); a shard always
// keeps its newest point so a fresh node's telemetry is never starved
// by other shards' history, which lets the total overshoot by at most
// one point per shard.
func (d *DB) AppendSample(s Sample) {
	d.ops.Add(1)
	sh := d.sampleShard(s.NodeID)
	sh.mu.Lock()
	d.delay()
	sh.buf = append(sh.buf, s)
	if d.sampleCount.Add(1) > int64(d.maxSamples) && len(sh.buf) > 1 {
		sh.buf = sh.buf[1:]
		d.sampleCount.Add(-1)
	}
	lsn := d.lsn.Add(1)
	sh.mu.Unlock()
	image := s
	d.emit(Mutation{LSN: lsn, Type: MutSamplePut, Sample: &image})
}

// SamplesInRange returns samples for metric within [from, to), all nodes
// if nodeID is empty, ordered by time. A node-scoped query touches only
// that node's shard.
func (d *DB) SamplesInRange(metric, nodeID string, from, to time.Time) []Sample {
	d.ops.Add(1)
	var out []Sample
	filter := func(buf []Sample) {
		for _, s := range buf {
			if s.Metric != metric {
				continue
			}
			if nodeID != "" && s.NodeID != nodeID {
				continue
			}
			if s.Time.Before(from) || !s.Time.Before(to) {
				continue
			}
			out = append(out, s)
		}
	}
	if nodeID != "" {
		sh := d.sampleShard(nodeID)
		sh.mu.RLock()
		d.delay()
		filter(sh.buf)
		sh.mu.RUnlock()
		return out
	}
	for i, sh := range d.samples {
		sh.mu.RLock()
		if i == 0 {
			d.delay()
		}
		filter(sh.buf)
		sh.mu.RUnlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// --- Persistence ---

// lockAll acquires every shard in fixed order (nodes, jobs, allocations,
// samples; ascending index), read or write. The single ordering rules
// out deadlock between concurrent Save/Load calls.
func (d *DB) lockAll(write bool) {
	for _, s := range d.nodes {
		if write {
			s.mu.Lock()
		} else {
			s.mu.RLock()
		}
	}
	for _, s := range d.jobs {
		if write {
			s.mu.Lock()
		} else {
			s.mu.RLock()
		}
	}
	for _, s := range d.allocs {
		if write {
			s.mu.Lock()
		} else {
			s.mu.RLock()
		}
	}
	for _, s := range d.samples {
		if write {
			s.mu.Lock()
		} else {
			s.mu.RLock()
		}
	}
}

func (d *DB) unlockAll(write bool) {
	for _, s := range d.nodes {
		if write {
			s.mu.Unlock()
		} else {
			s.mu.RUnlock()
		}
	}
	for _, s := range d.jobs {
		if write {
			s.mu.Unlock()
		} else {
			s.mu.RUnlock()
		}
	}
	for _, s := range d.allocs {
		if write {
			s.mu.Unlock()
		} else {
			s.mu.RUnlock()
		}
	}
	for _, s := range d.samples {
		if write {
			s.mu.Unlock()
		} else {
			s.mu.RUnlock()
		}
	}
}
