package db

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestShardedStressParallelHeartbeats hammers the sharded store with
// the coordinator's real write mix — node heartbeat updates plus
// telemetry appends — from many goroutines, with concurrent job
// mutations, scan readers and snapshotters. Run under -race this is the
// proof the per-shard locking is sound; the final assertions prove no
// update was lost.
func TestShardedStressParallelHeartbeats(t *testing.T) {
	d := New(0)
	const (
		nodes      = 64
		jobs       = 64
		writers    = 8
		iterations = 200
	)
	for i := 0; i < nodes; i++ {
		d.UpsertNode(NodeRecord{ID: fmt.Sprintf("n%02d", i), Status: NodeActive, RegisteredAt: t0})
	}
	for i := 0; i < jobs; i++ {
		if err := d.InsertJob(JobRecord{ID: fmt.Sprintf("j%02d", i), State: JobPending, SubmittedAt: t0}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// Heartbeat writers: each owns a disjoint slice of nodes so the
	// final per-node counts are exact.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < iterations; k++ {
				id := fmt.Sprintf("n%02d", w*(nodes/writers)+k%(nodes/writers))
				if err := d.UpdateNode(id, func(n *NodeRecord) {
					n.Departures++
					n.LastHeartbeat = n.LastHeartbeat.Add(time.Second)
				}); err != nil {
					t.Error(err)
					return
				}
				d.AppendSample(Sample{Time: t0.Add(time.Duration(k) * time.Second),
					NodeID: id, Metric: "gpu_utilization", Value: 0.5})
			}
		}(w)
	}
	// Job writers: pending -> running -> completed round trips.
	for w := 0; w < writers/2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < iterations; k++ {
				id := fmt.Sprintf("j%02d", (w*31+k)%jobs)
				_ = d.UpdateJob(id, func(j *JobRecord) {
					switch j.State {
					case JobPending:
						j.State = JobRunning
					case JobRunning:
						j.State = JobCompleted
					default:
						j.State = JobPending
					}
				})
				d.RecordAllocation(AllocationRecord{JobID: id, NodeID: "n00", DeviceID: "gpu0", Start: t0})
				_ = d.CloseAllocation(id, t0.Add(time.Minute))
			}
		}(w)
	}
	// Scan readers cross shards while the writers run.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < iterations; k++ {
				_ = d.ActiveNodes()
				_ = d.JobsInState(JobPending)
				_ = d.CountJobsInState(JobRunning)
				_ = d.SamplesInRange("gpu_utilization", "", t0, t0.Add(time.Hour))
			}
		}()
	}
	// Snapshotter: consistent multi-shard acquire under fire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 20; k++ {
			if err := json.NewEncoder(io.Discard).Encode(d.ExportState()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// Every heartbeat writer touched each of its nodes iterations /
	// (nodes/writers) times; Departures must reflect every update.
	perNode := iterations / (nodes / writers)
	for i := 0; i < nodes; i++ {
		n, err := d.GetNode(fmt.Sprintf("n%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if n.Departures != perNode {
			t.Fatalf("node %s departures = %d, want %d (lost update)", n.ID, n.Departures, perNode)
		}
	}
	// State counters must agree with a full scan after the dust settles.
	for _, state := range []JobState{JobPending, JobRunning, JobCompleted} {
		scan := 0
		for _, j := range d.ListJobs() {
			if j.State == state {
				scan++
			}
		}
		if got := d.CountJobsInState(state); got != scan {
			t.Fatalf("CountJobsInState(%s) = %d, scan = %d", state, got, scan)
		}
	}
	if got := len(d.SamplesInRange("gpu_utilization", "", t0, t0.Add(time.Hour))); got != writers*iterations {
		t.Fatalf("samples = %d, want %d", got, writers*iterations)
	}
}

// TestConcurrentSaveLoadConsistency interleaves snapshots with writes
// and checks each snapshot is internally consistent (every job state
// counted exactly once — a torn cut would break the invariant).
func TestConcurrentSaveLoadConsistency(t *testing.T) {
	d := New(0)
	const jobs = 40
	for i := 0; i < jobs; i++ {
		if err := d.InsertJob(JobRecord{ID: fmt.Sprintf("j%02d", i), State: JobPending, SubmittedAt: t0}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("j%02d", k%jobs)
			_ = d.UpdateJob(id, func(j *JobRecord) {
				if j.State == JobPending {
					j.State = JobRunning
				} else {
					j.State = JobPending
				}
			})
			k++
		}
	}()
	for i := 0; i < 25; i++ {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(d.ExportState()); err != nil {
			t.Fatal(err)
		}
		var st State
		if err := json.NewDecoder(&buf).Decode(&st); err != nil {
			t.Fatal(err)
		}
		restored := New(0)
		restored.ImportState(st)
		if total := restored.CountJobsInState(JobPending) + restored.CountJobsInState(JobRunning); total != jobs {
			t.Fatalf("snapshot %d: pending+running = %d, want %d (torn snapshot)", i, total, jobs)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSampleRetentionGlobalAcrossShards: the maxSamples bound applies
// to the whole store, not per shard, matching the single-mutex
// baseline (modulo the one-newest-point-per-shard keepback).
func TestSampleRetentionGlobalAcrossShards(t *testing.T) {
	const cap = 20
	d := New(cap)
	// Spread appends over many node IDs so they land on many shards.
	for i := 0; i < 10*cap; i++ {
		d.AppendSample(Sample{Time: t0.Add(time.Duration(i) * time.Second),
			NodeID: fmt.Sprintf("n%02d", i%32), Metric: "m", Value: float64(i)})
	}
	got := len(d.SamplesInRange("m", "", t0, t0.Add(time.Hour)))
	if got > cap+d.Shards() {
		t.Fatalf("retained %d samples, want <= %d (global bound + per-shard keepback)", got, cap+d.Shards())
	}
	if got < cap/2 {
		t.Fatalf("retained %d samples, suspiciously few for cap %d", got, cap)
	}
	// A brand-new node's telemetry must not be starved at cap.
	d.AppendSample(Sample{Time: t0.Add(time.Hour), NodeID: "fresh", Metric: "m", Value: 1})
	if len(d.SamplesInRange("m", "fresh", t0, t0.Add(2*time.Hour))) != 1 {
		t.Fatal("fresh node's sample evicted at cap")
	}
}

// TestNewWithShardsRounding confirms the shard count rounds up to a
// power of two and one shard still behaves correctly.
func TestNewWithShardsRounding(t *testing.T) {
	if got := NewWithShards(0, 5).Shards(); got != 8 {
		t.Fatalf("shards = %d, want 8", got)
	}
	d := NewWithShards(0, 1)
	if d.Shards() != 1 {
		t.Fatalf("shards = %d, want 1", d.Shards())
	}
	d.UpsertNode(NodeRecord{ID: "n1", Status: NodeActive})
	if _, err := d.GetNode("n1"); err != nil {
		t.Fatal(err)
	}
}

// TestSingleMutexBaselineParity runs the shared Store surface through
// the baseline implementation so it cannot silently rot while it
// remains the benchmark yardstick.
func TestSingleMutexBaselineParity(t *testing.T) {
	for _, tc := range []struct {
		name  string
		store Store
	}{
		{"sharded", New(0)},
		{"single-mutex", NewSingleMutex(0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.store
			d.UpsertNode(NodeRecord{ID: "n1", Status: NodeActive, RegisteredAt: t0})
			d.UpsertNode(NodeRecord{ID: "n2", Status: NodePaused, RegisteredAt: t0})
			if err := d.InsertJob(JobRecord{ID: "j1", State: JobPending, Priority: 2, SubmittedAt: t0}); err != nil {
				t.Fatal(err)
			}
			if err := d.InsertJob(JobRecord{ID: "j2", State: JobPending, Priority: 5, SubmittedAt: t0}); err != nil {
				t.Fatal(err)
			}
			if active := d.ActiveNodes(); len(active) != 1 || active[0].ID != "n1" {
				t.Fatalf("ActiveNodes = %+v", active)
			}
			q := d.JobsInState(JobPending)
			if len(q) != 2 || q[0].ID != "j2" {
				t.Fatalf("queue = %+v", q)
			}
			d.RecordAllocation(AllocationRecord{JobID: "j1", NodeID: "n1", DeviceID: "gpu0", Start: t0})
			if err := d.CloseAllocation("j1", t0.Add(time.Hour)); err != nil {
				t.Fatal(err)
			}
			d.AppendSample(Sample{Time: t0, NodeID: "n1", Metric: "m", Value: 1})
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(d.ExportState()); err != nil {
				t.Fatal(err)
			}
			var st State
			if err := json.NewDecoder(&buf).Decode(&st); err != nil {
				t.Fatal(err)
			}
			restored := New(0)
			restored.ImportState(st)
			if restored.CountJobsInState(JobPending) != 2 {
				t.Fatal("jobs lost through snapshot")
			}
			if len(restored.Allocations()) != 1 {
				t.Fatal("allocations lost through snapshot")
			}
			if len(restored.SamplesInRange("m", "n1", t0, t0.Add(time.Second))) != 1 {
				t.Fatal("samples lost through snapshot")
			}
		})
	}
}
