package db

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

func node(id string, status NodeStatus) NodeRecord {
	return NodeRecord{
		ID: id, Addr: "http://" + id + ":7070", Status: status,
		GPUs:         []GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090", MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
		Kernel:       "5.15",
		RegisteredAt: t0,
	}
}

func job(id string, state JobState, prio int, submitted time.Time) JobRecord {
	return JobRecord{ID: id, User: "alice", Kind: "batch", State: state,
		Priority: prio, GPUMemMiB: 8192, SubmittedAt: submitted}
}

func TestUpsertGetNode(t *testing.T) {
	d := New(0)
	d.UpsertNode(node("n1", NodeActive))
	got, err := d.GetNode("n1")
	if err != nil || got.Addr != "http://n1:7070" {
		t.Fatalf("GetNode = %+v, %v", got, err)
	}
	if _, err := d.GetNode("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestUpsertReplaces(t *testing.T) {
	d := New(0)
	d.UpsertNode(node("n1", NodeActive))
	n := node("n1", NodePaused)
	d.UpsertNode(n)
	got, _ := d.GetNode("n1")
	if got.Status != NodePaused {
		t.Fatalf("status = %s", got.Status)
	}
}

func TestUpdateNode(t *testing.T) {
	d := New(0)
	d.UpsertNode(node("n1", NodeActive))
	err := d.UpdateNode("n1", func(n *NodeRecord) {
		n.Departures++
		n.Status = NodeDeparted
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.GetNode("n1")
	if got.Departures != 1 || got.Status != NodeDeparted {
		t.Fatalf("record = %+v", got)
	}
	if err := d.UpdateNode("ghost", func(*NodeRecord) {}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestGetNodeReturnsCopy(t *testing.T) {
	d := New(0)
	d.UpsertNode(node("n1", NodeActive))
	got, _ := d.GetNode("n1")
	got.Status = NodeDeparted
	again, _ := d.GetNode("n1")
	if again.Status != NodeActive {
		t.Fatal("GetNode exposed internal record")
	}
}

func TestListNodesSorted(t *testing.T) {
	d := New(0)
	d.UpsertNode(node("n2", NodeActive))
	d.UpsertNode(node("n1", NodePaused))
	got := d.ListNodes()
	if len(got) != 2 || got[0].ID != "n1" || got[1].ID != "n2" {
		t.Fatalf("ListNodes = %+v", got)
	}
}

func TestActiveNodesFilter(t *testing.T) {
	d := New(0)
	d.UpsertNode(node("n1", NodeActive))
	d.UpsertNode(node("n2", NodePaused))
	d.UpsertNode(node("n3", NodeDeparted))
	d.UpsertNode(node("n4", NodeUnreachable))
	active := d.ActiveNodes()
	if len(active) != 1 || active[0].ID != "n1" {
		t.Fatalf("ActiveNodes = %+v", active)
	}
}

func TestInsertJobConflict(t *testing.T) {
	d := New(0)
	if err := d.InsertJob(job("j1", JobPending, 0, t0)); err != nil {
		t.Fatal(err)
	}
	if err := d.InsertJob(job("j1", JobPending, 0, t0)); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
}

func TestUpdateJob(t *testing.T) {
	d := New(0)
	if err := d.InsertJob(job("j1", JobPending, 0, t0)); err != nil {
		t.Fatal(err)
	}
	err := d.UpdateJob("j1", func(j *JobRecord) {
		j.State = JobRunning
		j.NodeID = "n1"
		j.Migrations++
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.GetJob("j1")
	if got.State != JobRunning || got.NodeID != "n1" || got.Migrations != 1 {
		t.Fatalf("job = %+v", got)
	}
}

func TestJobsInStateQueueOrder(t *testing.T) {
	d := New(0)
	// Same priority: FIFO by submission. Higher priority first.
	_ = d.InsertJob(job("j-low-late", JobPending, 1, t0.Add(2*time.Minute)))
	_ = d.InsertJob(job("j-low-early", JobPending, 1, t0))
	_ = d.InsertJob(job("j-high", JobPending, 5, t0.Add(time.Hour)))
	_ = d.InsertJob(job("j-running", JobRunning, 9, t0))
	q := d.JobsInState(JobPending)
	if len(q) != 3 {
		t.Fatalf("queue len = %d", len(q))
	}
	if q[0].ID != "j-high" || q[1].ID != "j-low-early" || q[2].ID != "j-low-late" {
		t.Fatalf("queue order = %s, %s, %s", q[0].ID, q[1].ID, q[2].ID)
	}
}

func TestJobsOnNode(t *testing.T) {
	d := New(0)
	j1 := job("j1", JobRunning, 0, t0)
	j1.NodeID = "n1"
	j2 := job("j2", JobMigrating, 0, t0)
	j2.NodeID = "n1"
	j3 := job("j3", JobCompleted, 0, t0)
	j3.NodeID = "n1"
	j4 := job("j4", JobRunning, 0, t0)
	j4.NodeID = "n2"
	for _, j := range []JobRecord{j1, j2, j3, j4} {
		if err := d.InsertJob(j); err != nil {
			t.Fatal(err)
		}
	}
	got := d.JobsOnNode("n1")
	if len(got) != 2 {
		t.Fatalf("JobsOnNode = %+v", got)
	}
}

func TestAllocationLifecycle(t *testing.T) {
	d := New(0)
	d.RecordAllocation(AllocationRecord{JobID: "j1", NodeID: "n1", DeviceID: "gpu0", Start: t0})
	d.RecordAllocation(AllocationRecord{JobID: "j1", NodeID: "n2", DeviceID: "gpu1", Start: t0.Add(time.Hour)})
	if err := d.CloseAllocation("j1", t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	allocs := d.Allocations()
	if len(allocs) != 2 {
		t.Fatalf("allocations = %d", len(allocs))
	}
	// The most recent open episode is closed, not the first.
	if !allocs[1].End.Equal(t0.Add(2 * time.Hour)) {
		t.Fatalf("second allocation end = %v", allocs[1].End)
	}
	if !allocs[0].End.IsZero() {
		t.Fatalf("first allocation end = %v, want open", allocs[0].End)
	}
}

func TestCloseAllocationMissing(t *testing.T) {
	d := New(0)
	if err := d.CloseAllocation("ghost", t0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseAllocationEpisodeMatchesIdentity(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func() Store
	}{
		{"sharded", func() Store { return New(0) }},
		{"singlemutex", func() Store { return NewSingleMutex(0) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			d := mk.new()
			// An old episode on n1 and a fresh one on n2 — the shape a
			// requeue-then-re-place race leaves behind.
			d.RecordAllocation(AllocationRecord{JobID: "j1", NodeID: "n1", DeviceID: "gpu0", Start: t0})
			d.RecordAllocation(AllocationRecord{JobID: "j1", NodeID: "n2", DeviceID: "gpu1", Start: t0.Add(time.Hour)})

			// Closing by the n1 identity must not touch the n2 episode,
			// even though n2's is the most recent open one.
			if err := d.CloseAllocationEpisode("j1", "n1", "gpu0", t0.Add(2*time.Hour)); err != nil {
				t.Fatal(err)
			}
			allocs := d.Allocations()
			if allocs[0].End.IsZero() || !allocs[1].End.IsZero() {
				t.Fatalf("wrong episode closed: %+v", allocs)
			}
			// A second close of the same identity finds nothing open.
			if err := d.CloseAllocationEpisode("j1", "n1", "gpu0", t0.Add(3*time.Hour)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("duplicate close err = %v", err)
			}
			if err := d.CloseAllocationEpisode("ghost", "n1", "gpu0", t0); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing job err = %v", err)
			}
		})
	}
}

func TestSamplesRangeQuery(t *testing.T) {
	d := New(0)
	for i := 0; i < 10; i++ {
		d.AppendSample(Sample{
			Time: t0.Add(time.Duration(i) * time.Minute), NodeID: "n1",
			Metric: "gpu_util", Value: float64(i) / 10,
		})
	}
	d.AppendSample(Sample{Time: t0, NodeID: "n2", Metric: "gpu_util", Value: 0.5})
	d.AppendSample(Sample{Time: t0, NodeID: "n1", Metric: "gpu_temp", Value: 60})

	got := d.SamplesInRange("gpu_util", "n1", t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if len(got) != 3 {
		t.Fatalf("samples = %d, want 3", len(got))
	}
	all := d.SamplesInRange("gpu_util", "", t0, t0.Add(time.Minute))
	if len(all) != 2 { // n1's first + n2's
		t.Fatalf("all-node samples = %d, want 2", len(all))
	}
}

func TestSampleRetentionBound(t *testing.T) {
	d := New(5)
	for i := 0; i < 10; i++ {
		d.AppendSample(Sample{Time: t0.Add(time.Duration(i) * time.Second), Metric: "m", Value: float64(i)})
	}
	got := d.SamplesInRange("m", "", t0, t0.Add(time.Hour))
	if len(got) != 5 {
		t.Fatalf("retained = %d, want 5", len(got))
	}
	if got[0].Value != 5 {
		t.Fatalf("oldest retained = %v, want 5 (earliest evicted)", got[0].Value)
	}
}

func TestExportImportJSONRoundTrip(t *testing.T) {
	d := New(0)
	d.UpsertNode(node("n1", NodeActive))
	if err := d.InsertJob(job("j1", JobRunning, 3, t0)); err != nil {
		t.Fatal(err)
	}
	d.RecordAllocation(AllocationRecord{JobID: "j1", NodeID: "n1", DeviceID: "gpu0", Start: t0})
	d.AppendSample(Sample{Time: t0, NodeID: "n1", Metric: "gpu_util", Value: 0.7})

	// One-shot dumps are the JSON encoding of ExportState; restoring is
	// decoding into a State and importing it.
	blob, err := json.Marshal(d.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	d2 := New(0)
	d2.ImportState(st)
	if n, err := d2.GetNode("n1"); err != nil || n.Status != NodeActive {
		t.Fatalf("node after load = %+v, %v", n, err)
	}
	if j, err := d2.GetJob("j1"); err != nil || j.Priority != 3 {
		t.Fatalf("job after load = %+v, %v", j, err)
	}
	if len(d2.Allocations()) != 1 {
		t.Fatal("allocations lost")
	}
	if len(d2.SamplesInRange("gpu_util", "", t0, t0.Add(time.Second))) != 1 {
		t.Fatal("samples lost")
	}
}

func TestOpsCounting(t *testing.T) {
	d := New(0)
	before := d.Ops()
	d.UpsertNode(node("n1", NodeActive))
	_, _ = d.GetNode("n1")
	d.ListNodes()
	if got := d.Ops() - before; got != 3 {
		t.Fatalf("ops delta = %d, want 3", got)
	}
}

func TestOpDelaySlowsOperations(t *testing.T) {
	d := New(0)
	d.SetOpDelay(5 * time.Millisecond)
	start := time.Now()
	for i := 0; i < 10; i++ {
		d.UpsertNode(node(fmt.Sprintf("n%d", i), NodeActive))
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("10 ops with 5ms delay took %v, want >= 50ms", elapsed)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("n%d", i)
			d.UpsertNode(node(id, NodeActive))
			for k := 0; k < 50; k++ {
				_ = d.UpdateNode(id, func(n *NodeRecord) { n.Departures++ })
				_, _ = d.GetNode(id)
				d.ActiveNodes()
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		n, err := d.GetNode(fmt.Sprintf("n%d", i))
		if err != nil || n.Departures != 50 {
			t.Fatalf("node %d: %+v, %v", i, n, err)
		}
	}
}
