package db

import (
	"fmt"
	"sort"
)

// This file maintains the job table's materialized indexes. Every
// jobShard carries, next to its record map:
//
//   - queue: per-state record lists. For the live states (pending,
//     running, migrating) they are kept permanently in pending-queue
//     order (priority descending, submission time ascending, ID as the
//     final tiebreak), so JobsInState merges sorted runs instead of
//     scanning and re-sorting the whole table; terminal states are
//     unordered so completions stay O(1) however long the campus
//     history grows (see orderedState);
//   - byNode: the records currently holding a placement (Running or
//     Migrating with a node), keyed by node, so JobsOnNode — the
//     heartbeat anti-entropy scan — touches only the jobs actually on
//     the node;
//   - stateCount: per-state totals behind CountJobsInState.
//
// All three are *derived* state: they are mutated only under the shard
// write lock, in the same critical section as the record map, emit no
// mutations of their own, and are rebuilt from scratch on ImportState.
// Records are copy-on-write (mutators install a fresh clone, installed
// records are never modified), so index entries are plain pointers into
// the record map and readers may dereference them after the shard lock
// drops. AuditIndexes verifies index ↔ record-map equivalence; the
// invariant checker runs it after every injected chaos fault.

// queueLess orders records by pending-queue precedence: priority
// descending, submission time ascending, ID ascending. IDs are unique,
// so the order is total — every record has exactly one queue position.
func queueLess(a, b *JobRecord) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if !a.SubmittedAt.Equal(b.SubmittedAt) {
		return a.SubmittedAt.Before(b.SubmittedAt)
	}
	return a.ID < b.ID
}

// orderedState reports whether the state's queue slice is kept sorted.
// Only the live states are: their populations are bounded by cluster
// capacity and their order is what the scheduler and reconciliation
// consume. Terminal states grow with campus history — a sorted insert
// there would make every completion an O(history) memmove (and
// recovery import quadratic), so their slices are unordered and the
// rare terminal-state listing sorts at query time.
func orderedState(state JobState) bool {
	return state == JobPending || state == JobRunning || state == JobMigrating
}

// indexed reports whether the record belongs in the byNode index.
func indexedOnNode(rec *JobRecord) bool {
	return rec.NodeID != "" && (rec.State == JobRunning || rec.State == JobMigrating)
}

// indexInsert adds a newly installed record to every index. Callers
// hold the shard write lock and must not modify rec afterwards.
func (s *jobShard) indexInsert(rec *JobRecord) {
	q := s.queue[rec.State]
	if orderedState(rec.State) {
		i := sort.Search(len(q), func(i int) bool { return queueLess(rec, q[i]) })
		q = append(q, nil)
		copy(q[i+1:], q[i:])
		q[i] = rec
	} else {
		q = append(q, rec)
	}
	s.queue[rec.State] = q

	if indexedOnNode(rec) {
		m := s.byNode[rec.NodeID]
		if m == nil {
			m = make(map[string]*JobRecord)
			s.byNode[rec.NodeID] = m
		}
		m[rec.ID] = rec
	}
	s.stateCount[rec.State]++
}

// indexRemove drops a record from every index before it is replaced or
// discarded. rec must be the pointer currently installed in the record
// map (its key fields locate the exact queue slot).
func (s *jobShard) indexRemove(rec *JobRecord) {
	q := s.queue[rec.State]
	if orderedState(rec.State) {
		i := sort.Search(len(q), func(i int) bool { return !queueLess(q[i], rec) })
		if i < len(q) && q[i] == rec {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			s.queue[rec.State] = q[:len(q)-1]
		}
	} else {
		// Unordered slice: locate by pointer, remove by swap. Records
		// rarely leave a terminal state (replayed after-images only).
		for i, cur := range q {
			if cur == rec {
				q[i] = q[len(q)-1]
				q[len(q)-1] = nil
				s.queue[rec.State] = q[:len(q)-1]
				break
			}
		}
	}
	if indexedOnNode(rec) {
		if m := s.byNode[rec.NodeID]; m != nil {
			delete(m, rec.ID)
			if len(m) == 0 {
				delete(s.byNode, rec.NodeID)
			}
		}
	}
	s.stateCount[rec.State]--
	if s.stateCount[rec.State] == 0 {
		delete(s.stateCount, rec.State)
	}
}

// resetIndexes clears every index (ImportState rebuilds via
// indexInsert).
func (s *jobShard) resetIndexes() {
	s.queue = make(map[JobState][]*JobRecord)
	s.byNode = make(map[string]map[string]*JobRecord)
	s.stateCount = make(map[JobState]int)
}

// mergeQueueRuns k-way-merges per-shard queue runs into one slice of
// record copies in global queue order. Runs are already sorted, so the
// merge is O(result × runs) cheap comparisons — no re-sort.
func mergeQueueRuns(runs [][]*JobRecord, total int) []JobRecord {
	out := make([]JobRecord, 0, total)
	idx := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for r := range runs {
			if idx[r] >= len(runs[r]) {
				continue
			}
			if best < 0 || queueLess(runs[r][idx[r]], runs[best][idx[best]]) {
				best = r
			}
		}
		out = append(out, *runs[best][idx[best]])
		idx[best]++
	}
	return out
}

// AuditIndexes verifies every materialized index against a full scan of
// the ground-truth record maps, shard by shard, and returns the
// discrepancies found (empty means every index is exact). It exists for
// the invariant checker: the indexes are derived state, and any drift
// from the record maps is a platform bug no matter how the store got
// there.
func (d *DB) AuditIndexes() []string {
	var probs []string
	for si, s := range d.jobs {
		s.mu.RLock()
		tally := make(map[JobState]int, len(s.stateCount))
		placed := 0
		for _, rec := range s.recs {
			tally[rec.State]++
			if indexedOnNode(rec) {
				placed++
			}
		}

		queued := 0
		for state, q := range s.queue {
			queued += len(q)
			for i, rec := range q {
				if rec.State != state {
					probs = append(probs, fmt.Sprintf(
						"shard %d: queue[%s] holds job %s in state %s", si, state, rec.ID, rec.State))
				}
				if cur, ok := s.recs[rec.ID]; !ok || cur != rec {
					probs = append(probs, fmt.Sprintf(
						"shard %d: queue[%s] entry %s is not the installed record", si, state, rec.ID))
				}
				if orderedState(state) && i > 0 && !queueLess(q[i-1], rec) {
					probs = append(probs, fmt.Sprintf(
						"shard %d: queue[%s] out of order at %s", si, state, rec.ID))
				}
			}
		}
		if queued != len(s.recs) {
			probs = append(probs, fmt.Sprintf(
				"shard %d: queues hold %d records, map holds %d", si, queued, len(s.recs)))
		}

		indexed := 0
		for nodeID, m := range s.byNode {
			if len(m) == 0 {
				probs = append(probs, fmt.Sprintf("shard %d: byNode[%s] is an empty bucket", si, nodeID))
			}
			for id, rec := range m {
				indexed++
				if cur, ok := s.recs[id]; !ok || cur != rec {
					probs = append(probs, fmt.Sprintf(
						"shard %d: byNode[%s] entry %s is not the installed record", si, nodeID, id))
					continue
				}
				if !indexedOnNode(rec) || rec.NodeID != nodeID {
					probs = append(probs, fmt.Sprintf(
						"shard %d: byNode[%s] holds job %s (state %s on %q)", si, nodeID, id, rec.State, rec.NodeID))
				}
			}
		}
		if indexed != placed {
			probs = append(probs, fmt.Sprintf(
				"shard %d: byNode holds %d records, scan finds %d placed", si, indexed, placed))
		}

		for state, n := range s.stateCount {
			if tally[state] != n {
				probs = append(probs, fmt.Sprintf(
					"shard %d: stateCount[%s] = %d, scan finds %d", si, state, n, tally[state]))
			}
		}
		for state, n := range tally {
			if _, ok := s.stateCount[state]; !ok && n != 0 {
				probs = append(probs, fmt.Sprintf(
					"shard %d: stateCount[%s] missing, scan finds %d", si, state, n))
			}
		}
		s.mu.RUnlock()
	}
	return probs
}
