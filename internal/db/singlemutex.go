package db

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpunion/internal/gpu"
)

// SingleMutex is the original mutex-guarded store: every operation —
// read or write, any table — serializes on one sync.Mutex. It is kept
// as the measured baseline for the sharded DB (the §5.3 contention
// bottleneck the sharding removes); production code paths use DB.
type SingleMutex struct {
	mu          sync.Mutex
	nodes       map[string]*NodeRecord
	jobs        map[string]*JobRecord
	stateCount  map[JobState]int
	allocations []AllocationRecord
	samples     []Sample
	maxSamples  int
	// opDelay models per-operation I/O latency for contention studies.
	opDelay   time.Duration
	ops       atomic.Int64
	lsn       atomic.Uint64
	hook      atomic.Pointer[MutationHook]
	observers observerList
}

// NewSingleMutex creates a single-mutex database retaining at most
// maxSamples monitoring points (0 means a generous default).
func NewSingleMutex(maxSamples int) *SingleMutex {
	if maxSamples <= 0 {
		maxSamples = 1 << 20
	}
	return &SingleMutex{
		nodes:      make(map[string]*NodeRecord),
		jobs:       make(map[string]*JobRecord),
		stateCount: make(map[JobState]int),
		maxSamples: maxSamples,
	}
}

// SetOpDelay configures an artificial per-operation latency.
func (d *SingleMutex) SetOpDelay(delay time.Duration) {
	d.mu.Lock()
	d.opDelay = delay
	d.mu.Unlock()
}

// Ops reports the total operations served.
func (d *SingleMutex) Ops() int64 { return d.ops.Load() }

// lockOp acquires the database for one operation, applying the modelled
// latency while holding the lock (the contention point).
func (d *SingleMutex) lockOp() {
	d.mu.Lock()
	d.ops.Add(1)
	if d.opDelay > 0 {
		time.Sleep(d.opDelay)
	}
}

// UpsertNode inserts or replaces a node record.
func (d *SingleMutex) UpsertNode(n NodeRecord) {
	d.lockOp()
	cp := cloneNode(n)
	d.nodes[n.ID] = &cp
	lsn := d.lsn.Add(1)
	d.mu.Unlock()
	d.emit(Mutation{LSN: lsn, Type: MutNodePut, Node: &cp})
}

// GetNode returns a copy of the node record.
func (d *SingleMutex) GetNode(id string) (NodeRecord, error) {
	d.lockOp()
	defer d.mu.Unlock()
	n, ok := d.nodes[id]
	if !ok {
		return NodeRecord{}, fmt.Errorf("%w: node %s", ErrNotFound, id)
	}
	return *n, nil
}

// UpdateNode applies fn to the node record under the lock. Like the
// sharded store, mutation is copy-on-write: fn runs on a private clone
// and the previously installed record stays untouched.
func (d *SingleMutex) UpdateNode(id string, fn func(*NodeRecord)) error {
	d.lockOp()
	n, ok := d.nodes[id]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: node %s", ErrNotFound, id)
	}
	cp := cloneNode(*n)
	fn(&cp)
	d.nodes[id] = &cp
	lsn := d.lsn.Add(1)
	d.mu.Unlock()
	d.emit(Mutation{LSN: lsn, Type: MutNodePut, Node: &cp})
	return nil
}

// TouchNodes advances LastHeartbeat on a batch of nodes in one critical
// section, emitting a single MutBeat record (see DB.TouchNodes; the
// unsharded store has exactly one "shard").
func (d *SingleMutex) TouchNodes(beats []BeatDelta) int {
	if len(beats) == 0 {
		return 0
	}
	d.lockOp()
	kept := make([]BeatDelta, 0, len(beats))
	for _, b := range beats {
		n, ok := d.nodes[b.NodeID]
		if !ok || !b.At.After(n.LastHeartbeat) {
			continue
		}
		cp := cloneNode(*n)
		cp.LastHeartbeat = b.At
		d.nodes[b.NodeID] = &cp
		kept = append(kept, b)
	}
	if len(kept) == 0 {
		d.mu.Unlock()
		return 0
	}
	lsn := d.lsn.Add(1)
	d.mu.Unlock()
	d.emit(Mutation{LSN: lsn, Type: MutBeat, Beats: kept})
	return len(kept)
}

// RecordHealth folds health events into one node's score under the
// single lock (see Store.RecordHealth and DB.RecordHealth).
func (d *SingleMutex) RecordHealth(nodeID string, at time.Time, events []gpu.HealthEvent,
	fold func(prev float64, prevAt time.Time) float64) (float64, bool) {
	d.lockOp()
	n, ok := d.nodes[nodeID]
	if !ok || !at.After(n.HealthAt) {
		d.mu.Unlock()
		return 0, false
	}
	score := fold(n.Health, n.HealthAt)
	cp := cloneNode(*n)
	cp.Health, cp.HealthAt = score, at
	d.nodes[nodeID] = &cp
	lsn := d.lsn.Add(1)
	d.mu.Unlock()
	d.emit(Mutation{LSN: lsn, Type: MutNodeHealth, Health: &HealthDelta{
		NodeID: nodeID, Score: score, At: at, Events: events,
	}})
	return score, true
}

// ListNodes returns copies of all nodes, sorted by ID.
func (d *SingleMutex) ListNodes() []NodeRecord {
	d.lockOp()
	defer d.mu.Unlock()
	out := make([]NodeRecord, 0, len(d.nodes))
	for _, n := range d.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ActiveNodes returns nodes in NodeActive status, sorted by ID.
func (d *SingleMutex) ActiveNodes() []NodeRecord {
	var out []NodeRecord
	for _, n := range d.ListNodes() {
		if n.Status == NodeActive {
			out = append(out, n)
		}
	}
	return out
}

// InsertJob adds a new job record; the ID must be unused.
func (d *SingleMutex) InsertJob(j JobRecord) error {
	d.lockOp()
	if _, exists := d.jobs[j.ID]; exists {
		d.mu.Unlock()
		return fmt.Errorf("%w: job %s", ErrConflict, j.ID)
	}
	cp := cloneJob(j)
	d.jobs[j.ID] = &cp
	d.stateCount[j.State]++
	lsn := d.lsn.Add(1)
	d.mu.Unlock()
	d.emit(Mutation{LSN: lsn, Type: MutJobPut, Job: &cp})
	return nil
}

// GetJob returns a copy of the job record.
func (d *SingleMutex) GetJob(id string) (JobRecord, error) {
	d.lockOp()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return JobRecord{}, fmt.Errorf("%w: job %s", ErrNotFound, id)
	}
	return *j, nil
}

// UpdateJob applies fn to the job record under the lock (copy-on-write,
// like UpdateNode).
func (d *SingleMutex) UpdateJob(id string, fn func(*JobRecord)) error {
	d.lockOp()
	j, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: job %s", ErrNotFound, id)
	}
	cp := cloneJob(*j)
	fn(&cp)
	if cp.State != j.State {
		d.stateCount[j.State]--
		d.stateCount[cp.State]++
	}
	d.jobs[id] = &cp
	lsn := d.lsn.Add(1)
	d.mu.Unlock()
	d.emit(Mutation{LSN: lsn, Type: MutJobPut, Job: &cp})
	return nil
}

// CountJobsInState returns the number of jobs in the state in O(1).
func (d *SingleMutex) CountJobsInState(state JobState) int {
	d.lockOp()
	defer d.mu.Unlock()
	return d.stateCount[state]
}

// ListJobs returns copies of all jobs, sorted by ID.
func (d *SingleMutex) ListJobs() []JobRecord {
	d.lockOp()
	defer d.mu.Unlock()
	out := make([]JobRecord, 0, len(d.jobs))
	for _, j := range d.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// JobsInState returns jobs in the given state in pending-queue order.
func (d *SingleMutex) JobsInState(state JobState) []JobRecord {
	var out []JobRecord
	for _, j := range d.ListJobs() {
		if j.State == state {
			out = append(out, j)
		}
	}
	sortQueueOrder(out)
	return out
}

// JobsOnNode returns jobs currently placed on the node in Running or
// Migrating state.
func (d *SingleMutex) JobsOnNode(nodeID string) []JobRecord {
	var out []JobRecord
	for _, j := range d.ListJobs() {
		if j.NodeID == nodeID && (j.State == JobRunning || j.State == JobMigrating) {
			out = append(out, j)
		}
	}
	return out
}

// RecordAllocation appends a placement episode.
func (d *SingleMutex) RecordAllocation(a AllocationRecord) {
	d.lockOp()
	d.allocations = append(d.allocations, a)
	lsn := d.lsn.Add(1)
	d.mu.Unlock()
	image := a
	d.emit(Mutation{LSN: lsn, Type: MutAllocOpen, Alloc: &image})
}

// CloseAllocation sets the End time of the job's most recent open
// allocation episode.
func (d *SingleMutex) CloseAllocation(jobID string, end time.Time) error {
	d.lockOp()
	for i := len(d.allocations) - 1; i >= 0; i-- {
		a := &d.allocations[i]
		if a.JobID == jobID && a.End.IsZero() {
			a.End = end
			closed := *a
			lsn := d.lsn.Add(1)
			d.mu.Unlock()
			d.emit(Mutation{LSN: lsn, Type: MutAllocClose, Alloc: &closed})
			return nil
		}
	}
	d.mu.Unlock()
	return fmt.Errorf("%w: open allocation for job %s", ErrNotFound, jobID)
}

// CloseAllocationEpisode closes the open episode matching the full
// placement identity (see DB.CloseAllocationEpisode).
func (d *SingleMutex) CloseAllocationEpisode(jobID, nodeID, deviceID string, end time.Time) error {
	d.lockOp()
	for i := len(d.allocations) - 1; i >= 0; i-- {
		a := &d.allocations[i]
		if a.JobID == jobID && a.NodeID == nodeID && a.DeviceID == deviceID && a.End.IsZero() {
			a.End = end
			closed := *a
			lsn := d.lsn.Add(1)
			d.mu.Unlock()
			d.emit(Mutation{LSN: lsn, Type: MutAllocClose, Alloc: &closed})
			return nil
		}
	}
	d.mu.Unlock()
	return fmt.Errorf("%w: open allocation for job %s on %s/%s", ErrNotFound, jobID, nodeID, deviceID)
}

// Allocations returns a copy of the allocation history.
func (d *SingleMutex) Allocations() []AllocationRecord {
	d.lockOp()
	defer d.mu.Unlock()
	out := make([]AllocationRecord, len(d.allocations))
	copy(out, d.allocations)
	return out
}

// AppendSample stores a monitoring data point, evicting the oldest when
// the retention bound is hit.
func (d *SingleMutex) AppendSample(s Sample) {
	d.lockOp()
	d.samples = append(d.samples, s)
	if len(d.samples) > d.maxSamples {
		d.samples = d.samples[len(d.samples)-d.maxSamples:]
	}
	lsn := d.lsn.Add(1)
	d.mu.Unlock()
	image := s
	d.emit(Mutation{LSN: lsn, Type: MutSamplePut, Sample: &image})
}

// SamplesInRange returns samples for metric within [from, to), all nodes
// if nodeID is empty.
func (d *SingleMutex) SamplesInRange(metric, nodeID string, from, to time.Time) []Sample {
	d.lockOp()
	defer d.mu.Unlock()
	var out []Sample
	for _, s := range d.samples {
		if s.Metric != metric {
			continue
		}
		if nodeID != "" && s.NodeID != nodeID {
			continue
		}
		if s.Time.Before(from) || !s.Time.Before(to) {
			continue
		}
		out = append(out, s)
	}
	return out
}
