package db

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

var indexEpoch = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

var allJobStates = []JobState{
	JobPending, JobRunning, JobMigrating, JobCompleted, JobFailed, JobKilled,
}

// requireIndexesMatchRebuild asserts that every indexed query on the
// live store is byte-equivalent to the same query on a freshly rebuilt
// store (ImportState reconstructs every index from scratch), and that
// the deep structural audit is clean.
func requireIndexesMatchRebuild(t *testing.T, store *DB, nodeIDs []string) {
	t.Helper()
	if probs := store.AuditIndexes(); len(probs) != 0 {
		t.Fatalf("index audit failed: %v", probs)
	}
	fresh := NewWithShards(0, store.Shards())
	fresh.ImportState(store.ExportState())
	for _, state := range allJobStates {
		want, _ := json.Marshal(fresh.JobsInState(state))
		got, _ := json.Marshal(store.JobsInState(state))
		if string(got) != string(want) {
			t.Fatalf("JobsInState(%s) diverges from fresh rebuild:\n got %s\nwant %s", state, got, want)
		}
		if g, w := store.CountJobsInState(state), fresh.CountJobsInState(state); g != w {
			t.Fatalf("CountJobsInState(%s) = %d, rebuild says %d", state, g, w)
		}
	}
	for _, id := range nodeIDs {
		want, _ := json.Marshal(fresh.JobsOnNode(id))
		got, _ := json.Marshal(store.JobsOnNode(id))
		if string(got) != string(want) {
			t.Fatalf("JobsOnNode(%s) diverges from fresh rebuild:\n got %s\nwant %s", id, got, want)
		}
	}
}

// TestIndexConsistencyProperty drives randomized mutation sequences —
// inserts, state transitions, priority flips, placement moves, replay
// via Apply, and full export/import round-trips — and asserts after
// each trial that the incrementally maintained indexes are equivalent
// to a fresh full-scan rebuild.
func TestIndexConsistencyProperty(t *testing.T) {
	nodeIDs := []string{"n1", "n2", "n3", "n4"}
	for trial := int64(0); trial < 8; trial++ {
		rng := rand.New(rand.NewSource(100 + trial))
		store := NewWithShards(0, 8)
		var ids []string
		randomJob := func(id string) JobRecord {
			j := JobRecord{
				ID:          id,
				State:       allJobStates[rng.Intn(len(allJobStates))],
				Priority:    rng.Intn(5),
				SubmittedAt: indexEpoch.Add(time.Duration(rng.Intn(50)) * time.Second),
			}
			if j.State == JobRunning || j.State == JobMigrating {
				j.NodeID = nodeIDs[rng.Intn(len(nodeIDs))]
				j.DeviceID = "gpu0"
			}
			return j
		}
		for op := 0; op < 400; op++ {
			switch r := rng.Intn(20); {
			case r < 8 || len(ids) == 0: // insert
				id := fmt.Sprintf("job-%03d", len(ids))
				ids = append(ids, id)
				if err := store.InsertJob(randomJob(id)); err != nil {
					t.Fatal(err)
				}
			case r < 15: // in-place update: state, priority, placement
				id := ids[rng.Intn(len(ids))]
				next := randomJob(id)
				if err := store.UpdateJob(id, func(j *JobRecord) {
					j.State, j.Priority = next.State, next.Priority
					j.NodeID, j.DeviceID = next.NodeID, next.DeviceID
				}); err != nil {
					t.Fatal(err)
				}
			case r < 18: // replayed after-image (the recovery path)
				j := randomJob(ids[rng.Intn(len(ids))])
				if err := store.Apply(Mutation{LSN: store.CurrentLSN() + 1, Type: MutJobPut, Job: &j}); err != nil {
					t.Fatal(err)
				}
			default: // full checkpoint round-trip rebuilds every index
				store.ImportState(store.ExportState())
			}
		}
		requireIndexesMatchRebuild(t, store, nodeIDs)
	}
}

// TestAuditIndexesDetectsCorruption proves the deep audit actually
// fires: each sabotage reaches into a shard and breaks one index
// structure directly, bypassing the maintenance paths.
func TestAuditIndexesDetectsCorruption(t *testing.T) {
	seed := func() *DB {
		store := NewWithShards(0, 4)
		for i := 0; i < 40; i++ {
			j := JobRecord{
				ID: fmt.Sprintf("job-%03d", i), State: JobPending,
				Priority: i % 3, SubmittedAt: indexEpoch.Add(time.Duration(i) * time.Second),
			}
			if i%2 == 0 {
				j.State, j.NodeID, j.DeviceID = JobRunning, "n1", "gpu0"
			}
			if err := store.InsertJob(j); err != nil {
				t.Fatal(err)
			}
		}
		return store
	}
	jobShardWith := func(store *DB, state JobState) *jobShard {
		for _, s := range store.jobs {
			if len(s.queue[state]) > 0 {
				return s
			}
		}
		t.Fatalf("no shard holds %s jobs", state)
		return nil
	}
	sabotages := []struct {
		name  string
		wreck func(store *DB)
	}{
		{"queue-drop", func(store *DB) {
			s := jobShardWith(store, JobPending)
			s.queue[JobPending] = s.queue[JobPending][1:]
		}},
		{"queue-reorder", func(store *DB) {
			s := jobShardWith(store, JobPending)
			q := s.queue[JobPending]
			if len(q) < 2 {
				t.Skip("shard too small to reorder")
			}
			q[0], q[len(q)-1] = q[len(q)-1], q[0]
		}},
		{"bynode-stale", func(store *DB) {
			s := jobShardWith(store, JobRunning)
			for id, rec := range s.recs {
				if rec.State == JobRunning {
					ghost := *rec
					ghost.NodeID = "n-ghost"
					s.byNode["n-ghost"] = map[string]*JobRecord{id: &ghost}
					return
				}
			}
		}},
		{"count-skew", func(store *DB) {
			s := jobShardWith(store, JobPending)
			s.stateCount[JobPending]++
		}},
	}
	for _, sab := range sabotages {
		t.Run(sab.name, func(t *testing.T) {
			store := seed()
			if probs := store.AuditIndexes(); len(probs) != 0 {
				t.Fatalf("audit dirty before sabotage: %v", probs)
			}
			sab.wreck(store)
			if probs := store.AuditIndexes(); len(probs) == 0 {
				t.Fatal("sabotage went undetected")
			}
		})
	}
}

// TestReadCopiesSurviveUpdates pins the copy-on-write contract: a
// record copy handed out before an update keeps its original slice
// contents — mutators must never write through shared storage.
func TestReadCopiesSurviveUpdates(t *testing.T) {
	store := New(0)
	store.UpsertNode(NodeRecord{
		ID: "n1", Status: NodeActive,
		GPUs: []GPUInfo{{DeviceID: "gpu0", Allocated: false}},
	})
	before, err := store.GetNode("n1")
	if err != nil {
		t.Fatal(err)
	}
	listed := store.ListNodes()
	if err := store.UpdateNode("n1", func(n *NodeRecord) {
		n.GPUs[0].Allocated = true
	}); err != nil {
		t.Fatal(err)
	}
	if before.GPUs[0].Allocated || listed[0].GPUs[0].Allocated {
		t.Fatal("update wrote through a previously returned copy")
	}
	after, _ := store.GetNode("n1")
	if !after.GPUs[0].Allocated {
		t.Fatal("update lost")
	}
}
