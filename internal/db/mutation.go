package db

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"gpunion/internal/gpu"
)

// MutationType tags one typed mutation record emitted by a Store. The
// write-ahead log (internal/wal) persists these records; recovery
// replays them through Apply.
type MutationType string

// Mutation types. Every mutating Store operation maps onto exactly one
// of them; node and job mutations carry full after-images so replay is
// idempotent (last write wins).
const (
	// MutNodePut is a node after-image: registration, heartbeat-state
	// change, departure bookkeeping, device allocation flips.
	MutNodePut MutationType = "node_put"
	// MutJobPut is a job after-image: submission, every state
	// transition (scheduled, migrating, completed, …).
	MutJobPut MutationType = "job_put"
	// MutAllocOpen records a new placement episode.
	MutAllocOpen MutationType = "alloc_open"
	// MutAllocClose records the closing of a placement episode; the
	// Alloc payload is the closed episode's after-image (End set), so
	// replay targets exactly the episode that was closed.
	MutAllocClose MutationType = "alloc_close"
	// MutSamplePut records one monitoring data point.
	MutSamplePut MutationType = "sample_put"
	// MutBeat is a coalesced heartbeat delta: one record carries the
	// LastHeartbeat advances of every no-op beat that landed on one node
	// shard in a flush window. Unlike MutNodePut it is not a full
	// after-image — steady-state beats write bytes proportional to churn,
	// not fleet size — but replay stays idempotent because each delta
	// only ever moves LastHeartbeat forward.
	MutBeat MutationType = "beat"
	// MutNodeHealth is a health-score fold: one node's Health/HealthAt
	// advance, carrying the resulting score as an after-image (replay
	// installs it without re-folding) together with the health events
	// that produced it (so the health-score-consistent audit can
	// recompute the fold). Replay is idempotent because each record
	// only ever moves HealthAt forward.
	MutNodeHealth MutationType = "node_health"
)

// BeatDelta is one node's entry in a coalesced MutBeat record: the node
// whose LastHeartbeat advanced, and the instant it advanced to. Nothing
// else about the record changed (that is what made the beat a no-op and
// eligible for coalescing).
type BeatDelta struct {
	NodeID string    `json:"node_id"`
	At     time.Time `json:"at"`
}

// HealthDelta is a MutNodeHealth record's payload: the node whose
// health score advanced, the folded score and fold instant
// (after-image — replay installs these directly), and the events that
// were folded in (audit evidence — the health-score-consistent
// invariant recomputes the fold from them).
type HealthDelta struct {
	NodeID string            `json:"node_id"`
	Score  float64           `json:"score"`
	At     time.Time         `json:"at"`
	Events []gpu.HealthEvent `json:"events,omitempty"`
}

// Mutation is the typed record a Store emits for every state change.
// LSN is a store-wide monotone sequence number assigned under the
// target shard's lock, so sorting a batch of mutations by LSN recovers
// the per-record mutation order even when the hook observed them out of
// order.
type Mutation struct {
	LSN    uint64            `json:"lsn"`
	Type   MutationType      `json:"type"`
	Node   *NodeRecord       `json:"node,omitempty"`
	Job    *JobRecord        `json:"job,omitempty"`
	Alloc  *AllocationRecord `json:"alloc,omitempty"`
	Sample *Sample           `json:"sample,omitempty"`
	// Beats carries a MutBeat record's deltas; every delta in one record
	// targets the same node shard (one critical section, one WAL frame).
	Beats []BeatDelta `json:"beats,omitempty"`
	// Health carries a MutNodeHealth record's fold.
	Health *HealthDelta `json:"health,omitempty"`
}

// MutationHook observes committed mutations. It is invoked after the
// shard lock is released, so a hook may block (e.g. on a group-commit
// fsync) without stalling other shards. The store's acknowledgement of
// the operation to its caller happens only after the hook returns — a
// durable hook therefore gives durable-before-ack semantics without
// holding any lock across I/O.
//
// Payloads are immutable after-images: the store installs records
// copy-on-write and emits the installed record itself, so a hook (or
// observer) may retain the pointer indefinitely but must never mutate
// it.
type MutationHook func(Mutation)

// observerList fans one mutation stream out to any number of derived-
// state subscribers (scheduler pool cache, metrics, …) registered via
// AddMutationObserver. Registration is copy-on-write so the notify
// path is one atomic load plus a slice walk.
type observerList struct {
	mu   sync.Mutex
	seq  int
	subs map[int]MutationHook
	list atomic.Pointer[[]MutationHook]
}

// add registers h and returns its cancel function.
func (o *observerList) add(h MutationHook) func() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.subs == nil {
		o.subs = make(map[int]MutationHook)
	}
	o.seq++
	id := o.seq
	o.subs[id] = h
	o.rebuild()
	return func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		delete(o.subs, id)
		o.rebuild()
	}
}

// rebuild republishes the subscriber slice; callers hold o.mu.
func (o *observerList) rebuild() {
	if len(o.subs) == 0 {
		o.list.Store(nil)
		return
	}
	ids := make([]int, 0, len(o.subs))
	for id := range o.subs {
		ids = append(ids, id)
	}
	slices.Sort(ids) // registration order, deterministic
	l := make([]MutationHook, 0, len(ids))
	for _, id := range ids {
		l = append(l, o.subs[id])
	}
	o.list.Store(&l)
}

// notify delivers m to every registered observer.
func (o *observerList) notify(m Mutation) {
	if l := o.list.Load(); l != nil {
		for _, h := range *l {
			h(m)
		}
	}
}

// State is the serializable full-store image used by snapshots,
// Save/Load, and recovery. Watermark is the store's LSN at the moment
// the export began: every mutation with LSN ≤ Watermark is fully
// contained in the State, and any mutation with a higher LSN may or may
// not be — replaying those on top of the State (in LSN order, through
// the idempotent Apply) converges to the live store's content.
type State struct {
	Watermark   uint64             `json:"watermark"`
	Nodes       []NodeRecord       `json:"nodes"`
	Jobs        []JobRecord        `json:"jobs"`
	Allocations []AllocationRecord `json:"allocations"`
	Samples     []Sample           `json:"samples"`
}

// cloneNode deep-copies the record's slice fields. The stores use it at
// every install point (copy-on-write): an installed record owns its
// slices and is never modified, so readers can share them.
func cloneNode(n NodeRecord) NodeRecord {
	n.GPUs = slices.Clone(n.GPUs)
	return n
}

// cloneJob deep-copies the record's slice and pointer fields.
func cloneJob(j JobRecord) JobRecord {
	j.StoragePrefs = slices.Clone(j.StoragePrefs)
	j.Entrypoint = slices.Clone(j.Entrypoint)
	if j.Training != nil {
		cp := *j.Training
		j.Training = &cp
	}
	return j
}

// CloneNode returns a deep copy of the record. Read paths (GetNode,
// ListNodes, ActiveNodes) return shallow copies whose slices must not
// be mutated; callers that want a private mutable view clone first.
func CloneNode(n NodeRecord) NodeRecord { return cloneNode(n) }

// CloneJob is CloneNode's job-table counterpart.
func CloneJob(j JobRecord) JobRecord { return cloneJob(j) }

// sameAllocIdentity compares allocation episodes by identity — job,
// placement and start instant — using time.Time.Equal so JSON
// round-trips (which normalize monotonic clock readings and locations)
// still compare equal. End is deliberately excluded: a replayed open
// whose episode was meanwhile closed must still match it.
func sameAllocIdentity(a, b AllocationRecord) bool {
	return a.JobID == b.JobID && a.NodeID == b.NodeID && a.DeviceID == b.DeviceID &&
		a.Start.Equal(b.Start)
}

// sameSample compares monitoring points field by field.
func sameSample(a, b Sample) bool {
	return a.NodeID == b.NodeID && a.Metric == b.Metric && a.Value == b.Value &&
		a.Time.Equal(b.Time)
}

// raiseLSN advances the counter to at least lsn (replay keeps the
// counter ahead of every durable mutation).
func raiseLSN(ctr *atomic.Uint64, lsn uint64) {
	for {
		cur := ctr.Load()
		if lsn <= cur || ctr.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// --- DB (sharded store) hook, export and replay ---

// SetMutationHook installs (or, with nil, removes) the hook observing
// every committed mutation. Replay via Apply does not invoke the hook.
func (d *DB) SetMutationHook(h MutationHook) {
	if h == nil {
		d.hook.Store(nil)
		return
	}
	d.hook.Store(&h)
}

// CurrentLSN reports the store's mutation sequence counter.
func (d *DB) CurrentLSN() uint64 { return d.lsn.Load() }

// AddMutationObserver registers a derived-state subscriber; see the
// Store interface for the contract.
func (d *DB) AddMutationObserver(h MutationHook) (cancel func()) {
	return d.observers.add(h)
}

// emit invokes the installed mutation hook and then every observer.
// Callers must not hold any shard lock; payloads are immutable
// after-images (see MutationHook).
func (d *DB) emit(m Mutation) {
	if h := d.hook.Load(); h != nil {
		(*h)(m)
	}
	d.observers.notify(m)
}

// ExportState collects a snapshot image shard by shard: each shard is
// read-locked briefly and one at a time, so concurrent commits on other
// shards proceed while the export is in flight — unlike the legacy
// Save, nothing quiesces the whole store. The result is a *fuzzy*
// checkpoint: consistent per record, with Watermark bounding what it is
// guaranteed to contain (see State).
func (d *DB) ExportState() State {
	st := State{Watermark: d.lsn.Load()}
	for _, s := range d.nodes {
		s.mu.RLock()
		for _, n := range s.recs {
			// Shallow copies: installed records are copy-on-write.
			st.Nodes = append(st.Nodes, *n)
		}
		s.mu.RUnlock()
	}
	for _, s := range d.jobs {
		s.mu.RLock()
		for _, j := range s.recs {
			st.Jobs = append(st.Jobs, *j)
		}
		s.mu.RUnlock()
	}
	for _, s := range d.allocs {
		s.mu.RLock()
		st.Allocations = append(st.Allocations, s.episodes...)
		s.mu.RUnlock()
	}
	for _, s := range d.samples {
		s.mu.RLock()
		st.Samples = append(st.Samples, s.buf...)
		s.mu.RUnlock()
	}
	sortState(&st)
	return st
}

// ImportState replaces the store's contents with the given image,
// write-locking every shard for the swap (recovery runs before the
// store is shared, so the quiesce is free there). The materialized job
// indexes are derived state: they are rebuilt here from the imported
// records, never restored from the image.
func (d *DB) ImportState(st State) {
	d.lockAll(true)
	defer d.unlockAll(true)
	for i := 0; i < d.shardCount; i++ {
		d.nodes[i].recs = make(map[string]*NodeRecord)
		d.jobs[i].recs = make(map[string]*JobRecord)
		d.jobs[i].resetIndexes()
		d.allocs[i].episodes = nil
		d.samples[i].buf = nil
	}
	for _, n := range st.Nodes {
		cp := cloneNode(n)
		d.nodeShard(n.ID).recs[n.ID] = &cp
	}
	for _, j := range st.Jobs {
		cp := cloneJob(j)
		s := d.jobShard(j.ID)
		s.recs[j.ID] = &cp
		s.indexInsert(&cp)
	}
	for _, a := range st.Allocations {
		s := d.allocShard(a.JobID)
		s.episodes = append(s.episodes, a)
	}
	for _, smp := range st.Samples {
		s := d.sampleShard(smp.NodeID)
		s.buf = append(s.buf, smp)
	}
	d.sampleCount.Store(int64(len(st.Samples)))
	raiseLSN(&d.lsn, st.Watermark)
}

// Apply replays one mutation record. It is idempotent — a record whose
// effect is already present (because a fuzzy snapshot captured it) is a
// no-op — and does not invoke the mutation hook, so recovery never
// re-logs what it replays. Records must be applied in ascending LSN
// order for after-images to land last-writer-wins.
func (d *DB) Apply(m Mutation) error {
	defer raiseLSN(&d.lsn, m.LSN)
	switch m.Type {
	case MutNodePut:
		if m.Node == nil {
			return fmt.Errorf("db: %s mutation without node payload", m.Type)
		}
		s := d.nodeShard(m.Node.ID)
		s.mu.Lock()
		cp := cloneNode(*m.Node)
		s.recs[cp.ID] = &cp
		s.mu.Unlock()
	case MutJobPut:
		if m.Job == nil {
			return fmt.Errorf("db: %s mutation without job payload", m.Type)
		}
		s := d.jobShard(m.Job.ID)
		s.mu.Lock()
		if old, ok := s.recs[m.Job.ID]; ok {
			s.indexRemove(old)
		}
		cp := cloneJob(*m.Job)
		s.recs[cp.ID] = &cp
		s.indexInsert(&cp)
		s.mu.Unlock()
	case MutAllocOpen:
		if m.Alloc == nil {
			return fmt.Errorf("db: %s mutation without alloc payload", m.Type)
		}
		s := d.allocShard(m.Alloc.JobID)
		s.mu.Lock()
		if !slices.ContainsFunc(s.episodes, func(e AllocationRecord) bool { return sameAllocIdentity(e, *m.Alloc) }) {
			s.episodes = append(s.episodes, *m.Alloc)
		}
		s.mu.Unlock()
	case MutAllocClose:
		if m.Alloc == nil {
			return fmt.Errorf("db: %s mutation without alloc payload", m.Type)
		}
		s := d.allocShard(m.Alloc.JobID)
		s.mu.Lock()
		applyAllocClose(&s.episodes, *m.Alloc)
		s.mu.Unlock()
	case MutSamplePut:
		if m.Sample == nil {
			return fmt.Errorf("db: %s mutation without sample payload", m.Type)
		}
		sh := d.sampleShard(m.Sample.NodeID)
		sh.mu.Lock()
		if !slices.ContainsFunc(sh.buf, func(s Sample) bool { return sameSample(s, *m.Sample) }) {
			sh.buf = append(sh.buf, *m.Sample)
			if d.sampleCount.Add(1) > int64(d.maxSamples) && len(sh.buf) > 1 {
				sh.buf = sh.buf[1:]
				d.sampleCount.Add(-1)
			}
		}
		sh.mu.Unlock()
	case MutBeat:
		if len(m.Beats) == 0 {
			return fmt.Errorf("db: %s mutation without beat payload", m.Type)
		}
		// All deltas in one record share a shard by construction, but
		// replay does not rely on that — each delta locks its own shard.
		// A delta whose node is gone, or whose advance is already
		// reflected, is a no-op (idempotent, forward-only).
		for _, b := range m.Beats {
			s := d.nodeShard(b.NodeID)
			s.mu.Lock()
			if n, ok := s.recs[b.NodeID]; ok && b.At.After(n.LastHeartbeat) {
				cp := cloneNode(*n)
				cp.LastHeartbeat = b.At
				s.recs[b.NodeID] = &cp
			}
			s.mu.Unlock()
		}
	case MutNodeHealth:
		if m.Health == nil {
			return fmt.Errorf("db: %s mutation without health payload", m.Type)
		}
		// The carried score is an after-image: install it verbatim (no
		// re-fold), forward-only on HealthAt so replay is idempotent and
		// byte-equal with the live store.
		h := m.Health
		s := d.nodeShard(h.NodeID)
		s.mu.Lock()
		if n, ok := s.recs[h.NodeID]; ok && h.At.After(n.HealthAt) {
			cp := cloneNode(*n)
			cp.Health, cp.HealthAt = h.Score, h.At
			s.recs[h.NodeID] = &cp
		}
		s.mu.Unlock()
	default:
		return fmt.Errorf("db: unknown mutation type %q", m.Type)
	}
	return nil
}

// applyAllocClose replays a close record against an episode list: it
// finds the exact episode the close targeted (same identity, End still
// zero) and stamps its End. An already-closed identical episode means
// the effect is present (no-op); a missing episode gets the closed
// after-image appended so no history is lost.
func applyAllocClose(episodes *[]AllocationRecord, closed AllocationRecord) {
	for i := len(*episodes) - 1; i >= 0; i-- {
		e := &(*episodes)[i]
		if e.JobID != closed.JobID || e.NodeID != closed.NodeID ||
			e.DeviceID != closed.DeviceID || !e.Start.Equal(closed.Start) {
			continue
		}
		if e.End.IsZero() {
			e.End = closed.End
		}
		return // identity matched: effect present either way
	}
	*episodes = append(*episodes, closed)
}

// sortState orders every table deterministically (the same orders
// Save always used), so exported images are directly comparable.
func sortState(st *State) {
	slices.SortFunc(st.Nodes, func(a, b NodeRecord) int {
		return compareStrings(a.ID, b.ID)
	})
	slices.SortFunc(st.Jobs, func(a, b JobRecord) int {
		return compareStrings(a.ID, b.ID)
	})
	slices.SortStableFunc(st.Allocations, func(a, b AllocationRecord) int {
		if !a.Start.Equal(b.Start) {
			if a.Start.Before(b.Start) {
				return -1
			}
			return 1
		}
		if a.JobID != b.JobID {
			return compareStrings(a.JobID, b.JobID)
		}
		return compareStrings(a.NodeID, b.NodeID)
	})
	slices.SortStableFunc(st.Samples, func(a, b Sample) int {
		if a.Time.Before(b.Time) {
			return -1
		}
		if b.Time.Before(a.Time) {
			return 1
		}
		return 0
	})
}

func compareStrings(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// --- SingleMutex hook, export and replay ---

// SetMutationHook installs (or removes) the mutation hook.
func (d *SingleMutex) SetMutationHook(h MutationHook) {
	if h == nil {
		d.hook.Store(nil)
		return
	}
	d.hook.Store(&h)
}

// CurrentLSN reports the store's mutation sequence counter.
func (d *SingleMutex) CurrentLSN() uint64 { return d.lsn.Load() }

// ShardFor always reports 0: the baseline store has a single partition.
func (d *SingleMutex) ShardFor(Mutation) int { return 0 }

// AddMutationObserver registers a derived-state subscriber; see the
// Store interface for the contract.
func (d *SingleMutex) AddMutationObserver(h MutationHook) (cancel func()) {
	return d.observers.add(h)
}

func (d *SingleMutex) emit(m Mutation) {
	if h := d.hook.Load(); h != nil {
		(*h)(m)
	}
	d.observers.notify(m)
}

// ExportState collects a snapshot image under the single lock (this
// store has no shards to walk; it quiesces by construction).
func (d *SingleMutex) ExportState() State {
	d.mu.Lock()
	st := State{Watermark: d.lsn.Load()}
	for _, n := range d.nodes {
		st.Nodes = append(st.Nodes, cloneNode(*n))
	}
	for _, j := range d.jobs {
		st.Jobs = append(st.Jobs, cloneJob(*j))
	}
	st.Allocations = append(st.Allocations, d.allocations...)
	st.Samples = append(st.Samples, d.samples...)
	d.mu.Unlock()
	sortState(&st)
	return st
}

// ImportState replaces the store's contents with the given image.
func (d *SingleMutex) ImportState(st State) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nodes = make(map[string]*NodeRecord, len(st.Nodes))
	for _, n := range st.Nodes {
		cp := cloneNode(n)
		d.nodes[n.ID] = &cp
	}
	d.jobs = make(map[string]*JobRecord, len(st.Jobs))
	d.stateCount = make(map[JobState]int)
	for _, j := range st.Jobs {
		cp := cloneJob(j)
		d.jobs[j.ID] = &cp
		d.stateCount[j.State]++
	}
	d.allocations = append([]AllocationRecord(nil), st.Allocations...)
	d.samples = append([]Sample(nil), st.Samples...)
	raiseLSN(&d.lsn, st.Watermark)
}

// Apply replays one mutation record idempotently (see DB.Apply).
func (d *SingleMutex) Apply(m Mutation) error {
	defer raiseLSN(&d.lsn, m.LSN)
	d.mu.Lock()
	defer d.mu.Unlock()
	switch m.Type {
	case MutNodePut:
		if m.Node == nil {
			return fmt.Errorf("db: %s mutation without node payload", m.Type)
		}
		cp := cloneNode(*m.Node)
		d.nodes[cp.ID] = &cp
	case MutJobPut:
		if m.Job == nil {
			return fmt.Errorf("db: %s mutation without job payload", m.Type)
		}
		if old, ok := d.jobs[m.Job.ID]; ok {
			d.stateCount[old.State]--
		}
		cp := cloneJob(*m.Job)
		d.jobs[cp.ID] = &cp
		d.stateCount[cp.State]++
	case MutAllocOpen:
		if m.Alloc == nil {
			return fmt.Errorf("db: %s mutation without alloc payload", m.Type)
		}
		if !slices.ContainsFunc(d.allocations, func(e AllocationRecord) bool { return sameAllocIdentity(e, *m.Alloc) }) {
			d.allocations = append(d.allocations, *m.Alloc)
		}
	case MutAllocClose:
		if m.Alloc == nil {
			return fmt.Errorf("db: %s mutation without alloc payload", m.Type)
		}
		applyAllocClose(&d.allocations, *m.Alloc)
	case MutSamplePut:
		if m.Sample == nil {
			return fmt.Errorf("db: %s mutation without sample payload", m.Type)
		}
		if !slices.ContainsFunc(d.samples, func(s Sample) bool { return sameSample(s, *m.Sample) }) {
			d.samples = append(d.samples, *m.Sample)
			if len(d.samples) > d.maxSamples {
				d.samples = d.samples[len(d.samples)-d.maxSamples:]
			}
		}
	case MutBeat:
		if len(m.Beats) == 0 {
			return fmt.Errorf("db: %s mutation without beat payload", m.Type)
		}
		for _, b := range m.Beats {
			if n, ok := d.nodes[b.NodeID]; ok && b.At.After(n.LastHeartbeat) {
				cp := cloneNode(*n)
				cp.LastHeartbeat = b.At
				d.nodes[b.NodeID] = &cp
			}
		}
	case MutNodeHealth:
		if m.Health == nil {
			return fmt.Errorf("db: %s mutation without health payload", m.Type)
		}
		h := m.Health
		if n, ok := d.nodes[h.NodeID]; ok && h.At.After(n.HealthAt) {
			cp := cloneNode(*n)
			cp.Health, cp.HealthAt = h.Score, h.At
			d.nodes[h.NodeID] = &cp
		}
	default:
		return fmt.Errorf("db: unknown mutation type %q", m.Type)
	}
	return nil
}
