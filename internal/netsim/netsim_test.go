package netsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

func campus() *Network {
	n := New(10 * Gbps)
	n.AddNode(NodeLink{Name: "a", Access: 1 * Gbps, Latency: 200 * time.Microsecond})
	n.AddNode(NodeLink{Name: "b", Access: 1 * Gbps, Latency: 200 * time.Microsecond})
	n.AddNode(NodeLink{Name: "c", Access: 1 * Gbps, Latency: 300 * time.Microsecond})
	return n
}

func TestSingleFlowRateIsAccessLimited(t *testing.T) {
	n := campus()
	f, err := n.StartFlow("a", "b", 1e9/8, TrafficCheckpoint, t0) // 1 Gbit
	if err != nil {
		t.Fatal(err)
	}
	if f.Rate != 1*Gbps {
		t.Fatalf("Rate = %v, want 1 Gbps (access-limited)", f.Rate)
	}
	// 1 Gbit at 1 Gbps = 1 s, plus 400 µs path latency.
	want := time.Second + 400*time.Microsecond
	if got := f.Duration(); got != want {
		t.Fatalf("Duration = %v, want %v", got, want)
	}
}

func TestConcurrentFlowsShareUplink(t *testing.T) {
	n := campus()
	f1, _ := n.StartFlow("a", "b", 1000, TrafficCheckpoint, t0)
	f2, _ := n.StartFlow("a", "c", 1000, TrafficCheckpoint, t0)
	if f1.Rate != 1*Gbps {
		t.Fatalf("first flow rate = %v, want full access", f1.Rate)
	}
	if f2.Rate != 0.5*Gbps {
		t.Fatalf("second flow rate = %v, want half access (2 flows on a's uplink)", f2.Rate)
	}
}

func TestBackboneContention(t *testing.T) {
	// Backbone of 1 Gbps with fat access links: flows contend on backbone.
	n := New(1 * Gbps)
	for _, name := range []string{"a", "b", "c", "d"} {
		n.AddNode(NodeLink{Name: name, Access: 10 * Gbps})
	}
	f1, _ := n.StartFlow("a", "b", 1000, TrafficMigration, t0)
	f2, _ := n.StartFlow("c", "d", 1000, TrafficMigration, t0)
	if f1.Rate != 1*Gbps {
		t.Fatalf("f1 rate = %v", f1.Rate)
	}
	if f2.Rate != 0.5*Gbps {
		t.Fatalf("f2 rate = %v, want backbone/2", f2.Rate)
	}
}

func TestFinishFlowReleasesShare(t *testing.T) {
	n := campus()
	f1, _ := n.StartFlow("a", "b", 1000, TrafficCheckpoint, t0)
	if err := n.FinishFlow(f1, t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	f2, _ := n.StartFlow("a", "b", 1000, TrafficCheckpoint, t0.Add(time.Second))
	if f2.Rate != 1*Gbps {
		t.Fatalf("rate after release = %v, want full access", f2.Rate)
	}
	if n.ActiveFlows() != 1 {
		t.Fatalf("ActiveFlows = %d, want 1", n.ActiveFlows())
	}
}

func TestFinishFlowTwiceFails(t *testing.T) {
	n := campus()
	f, _ := n.StartFlow("a", "b", 1000, TrafficCheckpoint, t0)
	if err := n.FinishFlow(f, t0); err != nil {
		t.Fatal(err)
	}
	if err := n.FinishFlow(f, t0); !errors.Is(err, ErrFlowDone) {
		t.Fatalf("double finish err = %v, want ErrFlowDone", err)
	}
}

func TestUnknownNodeRejected(t *testing.T) {
	n := campus()
	if _, err := n.StartFlow("a", "zzz", 1, TrafficControl, t0); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if _, err := n.StartFlow("zzz", "a", 1, TrafficControl, t0); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestTransferConvenience(t *testing.T) {
	n := campus()
	end, err := n.Transfer("a", "b", 1e9/8, TrafficMigration, t0)
	if err != nil {
		t.Fatal(err)
	}
	want := t0.Add(time.Second + 400*time.Microsecond)
	if !end.Equal(want) {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if n.ActiveFlows() != 0 {
		t.Fatal("Transfer left a flow active")
	}
	if got := n.Accountant().TotalBytes(TrafficMigration); got != 1e9/8 {
		t.Fatalf("accounted bytes = %d", got)
	}
}

func TestZeroByteTransfer(t *testing.T) {
	n := campus()
	f, err := n.StartFlow("a", "b", 0, TrafficControl, t0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Duration() != 400*time.Microsecond {
		t.Fatalf("zero-byte duration = %v, want latency only", f.Duration())
	}
}

func TestNegativeBytesClamped(t *testing.T) {
	n := campus()
	f, err := n.StartFlow("a", "b", -100, TrafficControl, t0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Bytes != 0 {
		t.Fatalf("Bytes = %d, want 0", f.Bytes)
	}
}

func TestAddNodeReplacesLink(t *testing.T) {
	n := campus()
	n.AddNode(NodeLink{Name: "a", Access: 10 * Gbps})
	f, _ := n.StartFlow("a", "b", 1000, TrafficControl, t0)
	if f.Rate != 1*Gbps { // now limited by b's 1 Gbps downlink
		t.Fatalf("rate = %v, want 1 Gbps", f.Rate)
	}
}

func TestAccountantTotals(t *testing.T) {
	a := NewAccountant()
	a.Record(t0, t0.Add(time.Second), TrafficCheckpoint, 100)
	a.Record(t0, t0.Add(time.Second), TrafficMigration, 50)
	a.Record(t0, t0.Add(time.Second), TrafficCheckpoint, 25)
	if got := a.TotalBytes(TrafficCheckpoint); got != 125 {
		t.Fatalf("checkpoint total = %d, want 125", got)
	}
	if got := a.TotalBytes(""); got != 175 {
		t.Fatalf("all total = %d, want 175", got)
	}
}

func TestBytesInWindowProration(t *testing.T) {
	a := NewAccountant()
	// 1000 bytes transferred evenly over [t0, t0+10s].
	a.Record(t0, t0.Add(10*time.Second), TrafficCheckpoint, 1000)
	// Window covering the middle 5 s should see half the bytes.
	got := a.BytesInWindow(TrafficCheckpoint, t0.Add(2500*time.Millisecond), t0.Add(7500*time.Millisecond))
	if got != 500 {
		t.Fatalf("prorated bytes = %d, want 500", got)
	}
	// Disjoint window sees nothing.
	if got := a.BytesInWindow(TrafficCheckpoint, t0.Add(time.Hour), t0.Add(2*time.Hour)); got != 0 {
		t.Fatalf("disjoint window bytes = %d, want 0", got)
	}
}

func TestInstantaneousRecordCountsOnce(t *testing.T) {
	a := NewAccountant()
	a.Record(t0, t0, TrafficControl, 42)
	if got := a.BytesInWindow(TrafficControl, t0, t0.Add(time.Second)); got != 42 {
		t.Fatalf("instantaneous bytes = %d, want 42", got)
	}
	if got := a.BytesInWindow(TrafficControl, t0.Add(time.Second), t0.Add(2*time.Second)); got != 0 {
		t.Fatalf("bytes outside window = %d, want 0", got)
	}
}

func TestWindowUtilization(t *testing.T) {
	a := NewAccountant()
	// 1 Gbit over 1 s against a 10 Gbps capacity = 10% utilization.
	a.Record(t0, t0.Add(time.Second), TrafficCheckpoint, 1e9/8)
	u := a.WindowUtilization(TrafficCheckpoint, 10*Gbps, t0, t0.Add(time.Second))
	if math.Abs(u-0.10) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.10", u)
	}
}

func TestWindowUtilizationDegenerate(t *testing.T) {
	a := NewAccountant()
	if u := a.WindowUtilization(TrafficCheckpoint, 10*Gbps, t0, t0); u != 0 {
		t.Fatalf("zero window utilization = %v", u)
	}
	if u := a.WindowUtilization(TrafficCheckpoint, 0, t0, t0.Add(time.Second)); u != 0 {
		t.Fatalf("zero capacity utilization = %v", u)
	}
}

func TestPeakWindowUtilization(t *testing.T) {
	a := NewAccountant()
	// Quiet hour, then a burst: peak must reflect the burst window.
	a.Record(t0, t0.Add(time.Hour), TrafficCheckpoint, 1000) // trickle
	burst := t0.Add(2 * time.Hour)
	a.Record(burst, burst.Add(time.Minute), TrafficCheckpoint, int64(1e9)) // 8 Gbit in 1 min
	peak := a.PeakWindowUtilization(TrafficCheckpoint, 10*Gbps, time.Minute, time.Minute)
	// 8e9 bits / (1e10 * 60) ≈ 0.0133
	if peak < 0.012 || peak > 0.015 {
		t.Fatalf("peak = %v, want ≈0.0133", peak)
	}
}

func TestPeakWindowUtilizationEmpty(t *testing.T) {
	a := NewAccountant()
	if p := a.PeakWindowUtilization(TrafficCheckpoint, Gbps, time.Minute, time.Minute); p != 0 {
		t.Fatalf("empty peak = %v", p)
	}
}

func TestCategoryTotalsSorted(t *testing.T) {
	a := NewAccountant()
	a.Record(t0, t0.Add(time.Second), TrafficMigration, 10)
	a.Record(t0, t0.Add(time.Second), TrafficCheckpoint, 20)
	got := a.CategoryTotals()
	if len(got) != 2 || got[0].Category != TrafficCheckpoint || got[1].Category != TrafficMigration {
		t.Fatalf("CategoryTotals = %+v", got)
	}
}

// Property: a flow's duration is monotone non-decreasing in transfer size.
func TestDurationMonotoneProperty(t *testing.T) {
	f := func(b1, b2 uint32) bool {
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		n := campus()
		f1, err1 := n.StartFlow("a", "b", int64(b1), TrafficCheckpoint, t0)
		if err1 != nil {
			return false
		}
		_ = n.FinishFlow(f1, t0)
		f2, err2 := n.StartFlow("a", "b", int64(b2), TrafficCheckpoint, t0)
		if err2 != nil {
			return false
		}
		return f1.Duration() <= f2.Duration()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bytes accounted in any window never exceed the total.
func TestWindowNeverExceedsTotalProperty(t *testing.T) {
	f := func(sizes []uint16, offsetSec uint8, windowSec uint8) bool {
		a := NewAccountant()
		var total int64
		for i, s := range sizes {
			start := t0.Add(time.Duration(i) * time.Second)
			a.Record(start, start.Add(time.Second), TrafficCheckpoint, int64(s))
			total += int64(s)
		}
		from := t0.Add(time.Duration(offsetSec) * time.Second)
		to := from.Add(time.Duration(windowSec) * time.Second)
		return a.BytesInWindow(TrafficCheckpoint, from, to) <= total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
