// Package netsim models the campus LAN that carries GPUnion's checkpoint
// backups and migration transfers.
//
// The paper's network-traffic analysis (§4) claims that incremental
// checkpointing keeps backup traffic below 2% of available campus
// bandwidth at peak. Reproducing that figure requires timing transfers
// against link capacities and accounting traffic per category over time
// windows — exactly what this package provides.
//
// Topology model: every node hangs off a campus backbone through an
// access link. A transfer from src to dst is limited by the slowest of
// src's uplink share, dst's downlink share, and the flow's share of the
// backbone. The share a flow receives is computed once, when the flow
// starts, from the number of flows then active on each resource; it stays
// fixed for the flow's lifetime. This start-time fair-share approximation
// keeps the discrete-event simulation O(1) per flow while capturing the
// first-order effect (concurrent backups slow each other down).
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Bandwidth is a link capacity in bits per second.
type Bandwidth float64

// Common campus link rates.
const (
	Mbps Bandwidth = 1e6
	Gbps Bandwidth = 1e9
)

// Category classifies traffic for the accounting used by the §4 analysis.
type Category string

// Traffic categories.
const (
	TrafficCheckpoint Category = "checkpoint" // periodic incremental backups
	TrafficMigration  Category = "migration"  // checkpoint restore on a new node
	TrafficImagePull  Category = "image"      // container image distribution
	TrafficControl    Category = "control"    // heartbeats, registration, API
)

// Errors returned by the network.
var (
	ErrUnknownNode = errors.New("netsim: unknown node")
	ErrFlowDone    = errors.New("netsim: flow already finished")
)

// NodeLink describes one node's attachment to the campus backbone.
type NodeLink struct {
	// Name identifies the node.
	Name string
	// Access is the access-link capacity (both directions).
	Access Bandwidth
	// Latency is the one-way latency from the node to the backbone.
	Latency time.Duration
}

// Network is the campus LAN. It is safe for concurrent use.
type Network struct {
	mu       sync.Mutex
	backbone Bandwidth
	nodes    map[string]*nodeState
	active   int // flows currently crossing the backbone
	acct     *Accountant
	nextFlow int
}

type nodeState struct {
	link NodeLink
	up   int // active flows leaving this node
	down int // active flows entering this node
}

// New creates a network with the given backbone capacity.
func New(backbone Bandwidth) *Network {
	return &Network{
		backbone: backbone,
		nodes:    make(map[string]*nodeState),
		acct:     NewAccountant(),
	}
}

// Backbone returns the backbone capacity.
func (n *Network) Backbone() Bandwidth { return n.backbone }

// Accountant returns the network's traffic accountant.
func (n *Network) Accountant() *Accountant { return n.acct }

// AddNode attaches a node to the backbone. Re-adding a name replaces its
// link parameters.
func (n *Network) AddNode(link NodeLink) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.nodes[link.Name]; ok {
		s.link = link
		return
	}
	n.nodes[link.Name] = &nodeState{link: link}
}

// Flow is an in-progress transfer.
type Flow struct {
	ID       string
	Src, Dst string
	Bytes    int64
	Category Category
	// Rate is the fixed fair-share rate assigned at start.
	Rate Bandwidth
	// Latency is the end-to-end path latency (src + dst access latency).
	Latency time.Duration
	// Started is the start timestamp supplied by the caller.
	Started time.Time

	net  *Network
	done bool
}

// Duration returns the transfer's total time: path latency plus
// serialisation at the assigned rate.
func (f *Flow) Duration() time.Duration {
	if f.Rate <= 0 {
		return f.Latency
	}
	secs := float64(f.Bytes*8) / float64(f.Rate)
	return f.Latency + time.Duration(secs*float64(time.Second))
}

// StartFlow begins a transfer of size bytes from src to dst at time now.
// The returned flow has a fixed rate computed from current contention.
// The caller must call FinishFlow when the transfer's Duration has
// elapsed (the DES schedules this as an event).
func (n *Network) StartFlow(src, dst string, bytes int64, cat Category, now time.Time) (*Flow, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.nodes[src]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, src)
	}
	d, ok := n.nodes[dst]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, dst)
	}
	if bytes < 0 {
		bytes = 0
	}

	s.up++
	d.down++
	n.active++
	n.nextFlow++

	rate := minBandwidth(
		s.link.Access/Bandwidth(s.up),
		d.link.Access/Bandwidth(d.down),
		n.backbone/Bandwidth(n.active),
	)
	f := &Flow{
		ID:       fmt.Sprintf("flow-%d", n.nextFlow),
		Src:      src,
		Dst:      dst,
		Bytes:    bytes,
		Category: cat,
		Rate:     rate,
		Latency:  s.link.Latency + d.link.Latency,
		Started:  now,
		net:      n,
	}
	return f, nil
}

// FinishFlow completes the flow at time now, releasing its share and
// recording the transferred bytes with the accountant.
func (n *Network) FinishFlow(f *Flow, now time.Time) error {
	n.mu.Lock()
	if f.done {
		n.mu.Unlock()
		return ErrFlowDone
	}
	f.done = true
	if s, ok := n.nodes[f.Src]; ok && s.up > 0 {
		s.up--
	}
	if d, ok := n.nodes[f.Dst]; ok && d.down > 0 {
		d.down--
	}
	if n.active > 0 {
		n.active--
	}
	n.mu.Unlock()
	n.acct.Record(f.Started, now, f.Category, f.Bytes)
	return nil
}

// Transfer is the convenience path for callers that do not interleave
// flows: it starts a flow at now, computes its duration, finishes it, and
// returns the completion time.
func (n *Network) Transfer(src, dst string, bytes int64, cat Category, now time.Time) (time.Time, error) {
	f, err := n.StartFlow(src, dst, bytes, cat, now)
	if err != nil {
		return time.Time{}, err
	}
	end := now.Add(f.Duration())
	if err := n.FinishFlow(f, end); err != nil {
		return time.Time{}, err
	}
	return end, nil
}

// ActiveFlows reports the number of in-flight flows.
func (n *Network) ActiveFlows() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.active
}

func minBandwidth(bs ...Bandwidth) Bandwidth {
	m := bs[0]
	for _, b := range bs[1:] {
		if b < m {
			m = b
		}
	}
	return m
}

// record is one completed transfer in the accounting log.
type record struct {
	start, end time.Time
	cat        Category
	bytes      int64
}

// Accountant tracks completed transfers and answers the utilization
// questions in the paper's §4 traffic analysis.
type Accountant struct {
	mu      sync.Mutex
	records []record
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{}
}

// Record logs a completed transfer spanning [start, end].
func (a *Accountant) Record(start, end time.Time, cat Category, bytes int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.records = append(a.records, record{start: start, end: end, cat: cat, bytes: bytes})
}

// TotalBytes sums all recorded bytes for the category ("" = all).
func (a *Accountant) TotalBytes(cat Category) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var sum int64
	for _, r := range a.records {
		if cat == "" || r.cat == cat {
			sum += r.bytes
		}
	}
	return sum
}

// BytesInWindow returns the bytes of the category transferred within
// [from, to): each transfer contributes the fraction of its bytes whose
// transmission interval overlaps the window.
func (a *Accountant) BytesInWindow(cat Category, from, to time.Time) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var sum float64
	for _, r := range a.records {
		if cat != "" && r.cat != cat {
			continue
		}
		sum += overlapBytes(r, from, to)
	}
	return int64(sum)
}

func overlapBytes(r record, from, to time.Time) float64 {
	span := r.end.Sub(r.start)
	if span <= 0 {
		// Instantaneous transfer: counts fully if it lands in the window.
		if !r.start.Before(from) && r.start.Before(to) {
			return float64(r.bytes)
		}
		return 0
	}
	s := maxTime(r.start, from)
	e := minTime(r.end, to)
	if !e.After(s) {
		return 0
	}
	return float64(r.bytes) * float64(e.Sub(s)) / float64(span)
}

// WindowUtilization returns the category's share of the given capacity
// over [from, to): bytes·8 / (capacity · window).
func (a *Accountant) WindowUtilization(cat Category, capacity Bandwidth, from, to time.Time) float64 {
	window := to.Sub(from).Seconds()
	if window <= 0 || capacity <= 0 {
		return 0
	}
	bits := float64(a.BytesInWindow(cat, from, to)) * 8
	return bits / (float64(capacity) * window)
}

// PeakWindowUtilization slides a window of the given size across the
// recorded span in steps of step and returns the maximum utilization of
// the category against capacity. It returns 0 when nothing is recorded.
func (a *Accountant) PeakWindowUtilization(cat Category, capacity Bandwidth, window, step time.Duration) float64 {
	a.mu.Lock()
	if len(a.records) == 0 {
		a.mu.Unlock()
		return 0
	}
	lo := a.records[0].start
	hi := a.records[0].end
	for _, r := range a.records[1:] {
		if r.start.Before(lo) {
			lo = r.start
		}
		if r.end.After(hi) {
			hi = r.end
		}
	}
	a.mu.Unlock()

	if step <= 0 {
		step = window
	}
	peak := 0.0
	for t := lo; t.Before(hi); t = t.Add(step) {
		u := a.WindowUtilization(cat, capacity, t, t.Add(window))
		if u > peak {
			peak = u
		}
	}
	return peak
}

// CategoryTotals returns total bytes per category, sorted by category
// name for deterministic reporting.
func (a *Accountant) CategoryTotals() []CategoryTotal {
	a.mu.Lock()
	totals := make(map[Category]int64)
	for _, r := range a.records {
		totals[r.cat] += r.bytes
	}
	a.mu.Unlock()
	out := make([]CategoryTotal, 0, len(totals))
	for c, b := range totals {
		out = append(out, CategoryTotal{Category: c, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Category < out[j].Category })
	return out
}

// CategoryTotal is one row of the per-category traffic summary.
type CategoryTotal struct {
	Category Category
	Bytes    int64
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}
