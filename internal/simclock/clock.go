// Package simclock provides a clock abstraction that lets every
// time-dependent component in GPUnion run against either the real wall
// clock or a deterministic simulated clock.
//
// The simulated clock is the backbone of the discrete-event campus
// simulation: a six-week deployment scenario advances in milliseconds of
// real time, and unit tests exercise timeout paths without sleeping.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout GPUnion. Components
// must never call time.Now or time.After directly; they accept a Clock so
// that simulations and tests control time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that delivers the clock's time after d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
	// AfterFunc schedules f to run after d and returns a handle that can
	// cancel the pending call.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancellable pending call created by AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was prevented
	// from firing.
	Stop() bool
}

// Real returns a Clock backed by the system wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Skewed is a Clock whose Now is offset from an inner clock's by an
// adjustable amount — the clock-skew injection seam. Per-node skew is
// a wall-time discontinuity, not a rate change: absolute time shifts
// by the offset while relative scheduling (After, AfterFunc, Sleep)
// keeps the inner clock's cadence, exactly as an NTP step on a node
// moves its wall clock without stretching its timers.
//
// The chaos harness gives every agent its own Skewed wrapper over the
// shared simulated clock and drives SetOffset from the fault schedule;
// production code never constructs one.
type Skewed struct {
	inner Clock
	mu    sync.Mutex
	off   time.Duration
}

// NewSkewed wraps inner with an initially-zero offset.
func NewSkewed(inner Clock) *Skewed {
	return &Skewed{inner: inner}
}

// SetOffset installs a new skew. The next Now jumps by the difference —
// forwards or backwards — which is the discontinuity skew-hardened
// components must absorb.
func (s *Skewed) SetOffset(d time.Duration) {
	s.mu.Lock()
	s.off = d
	s.mu.Unlock()
}

// Offset reads the current skew.
func (s *Skewed) Offset() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.off
}

// Now returns the inner clock's time shifted by the offset.
func (s *Skewed) Now() time.Time {
	s.mu.Lock()
	off := s.off
	s.mu.Unlock()
	return s.inner.Now().Add(off)
}

// After delegates to the inner clock: durations are unaffected by skew.
func (s *Skewed) After(d time.Duration) <-chan time.Time { return s.inner.After(d) }

// Sleep delegates to the inner clock.
func (s *Skewed) Sleep(d time.Duration) { s.inner.Sleep(d) }

// AfterFunc delegates to the inner clock.
func (s *Skewed) AfterFunc(d time.Duration, f func()) Timer { return s.inner.AfterFunc(d, f) }

// Sim is a deterministic simulated clock. Time advances only when Advance
// or Run is called; pending timers fire in timestamp order. Sim is safe
// for concurrent use.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	pending timerHeap
	seq     uint64 // tie-break so equal deadlines fire in creation order
}

// NewSim returns a simulated clock starting at the given time.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After returns a channel that receives the simulated time once the clock
// has advanced past d.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.AfterFunc(d, func() {
		s.mu.Lock()
		now := s.now
		s.mu.Unlock()
		ch <- now
	})
	return ch
}

// Sleep blocks the calling goroutine until the simulated clock advances
// past d. Another goroutine must drive Advance, otherwise Sleep blocks
// forever.
func (s *Sim) Sleep(d time.Duration) {
	<-s.After(d)
}

// AfterFunc schedules f to run when the clock advances past d. f runs on
// the goroutine that calls Advance.
func (s *Sim) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := &timerEvent{
		when: s.now.Add(d),
		seq:  s.seq,
		fn:   f,
		sim:  s,
	}
	s.seq++
	heap.Push(&s.pending, ev)
	return ev
}

// Advance moves simulated time forward by d, firing every timer whose
// deadline falls inside the window, in order. Timer callbacks run
// synchronously on the caller's goroutine; callbacks may schedule further
// timers, which also fire if they land inside the window.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	s.mu.Unlock()
	s.advanceTo(target)
}

// AdvanceTo moves simulated time forward to t (no-op if t is in the past).
func (s *Sim) AdvanceTo(t time.Time) { s.advanceTo(t) }

func (s *Sim) advanceTo(target time.Time) {
	for {
		s.mu.Lock()
		if len(s.pending) == 0 || s.pending[0].when.After(target) {
			if target.After(s.now) {
				s.now = target
			}
			s.mu.Unlock()
			return
		}
		ev := heap.Pop(&s.pending).(*timerEvent)
		if ev.when.After(s.now) {
			s.now = ev.when
		}
		fn := ev.fn
		ev.fired = true
		s.mu.Unlock()
		fn()
	}
}

// Run advances the clock until no pending timers remain or until the
// horizon is reached, whichever comes first. It returns the number of
// timers fired. Run is how the discrete-event simulation drains its event
// queue.
func (s *Sim) Run(horizon time.Time) int {
	fired := 0
	for {
		s.mu.Lock()
		if len(s.pending) == 0 || s.pending[0].when.After(horizon) {
			if horizon.After(s.now) {
				s.now = horizon
			}
			s.mu.Unlock()
			return fired
		}
		ev := heap.Pop(&s.pending).(*timerEvent)
		if ev.when.After(s.now) {
			s.now = ev.when
		}
		fn := ev.fn
		ev.fired = true
		s.mu.Unlock()
		fn()
		fired++
	}
}

// PendingTimers reports how many timers are waiting to fire.
func (s *Sim) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

type timerEvent struct {
	when  time.Time
	seq   uint64
	fn    func()
	index int
	fired bool
	sim   *Sim
}

// Stop cancels the pending timer.
func (ev *timerEvent) Stop() bool {
	ev.sim.mu.Lock()
	defer ev.sim.mu.Unlock()
	if ev.fired || ev.index < 0 {
		return false
	}
	heap.Remove(&ev.sim.pending, ev.index)
	return true
}

// timerHeap is a min-heap ordered by (when, seq).
type timerHeap []*timerEvent

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	ev := x.(*timerEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
