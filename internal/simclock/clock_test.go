package simclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

func TestSimNowStartsAtEpoch(t *testing.T) {
	s := NewSim(epoch)
	if !s.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", s.Now(), epoch)
	}
}

func TestSimAdvanceMovesTime(t *testing.T) {
	s := NewSim(epoch)
	s.Advance(90 * time.Second)
	want := epoch.Add(90 * time.Second)
	if !s.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", s.Now(), want)
	}
}

func TestSimAfterFuncFiresInOrder(t *testing.T) {
	s := NewSim(epoch)
	var order []int
	s.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	s.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	s.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	s.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestSimAfterFuncEqualDeadlinesFireInCreationOrder(t *testing.T) {
	s := NewSim(epoch)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	s.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestSimTimerStopPreventsFiring(t *testing.T) {
	s := NewSim(epoch)
	fired := false
	tm := s.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true before firing")
	}
	s.Advance(2 * time.Second)
	if fired {
		t.Fatal("timer fired after Stop")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
}

func TestSimTimerStopAfterFire(t *testing.T) {
	s := NewSim(epoch)
	tm := s.AfterFunc(time.Second, func() {})
	s.Advance(2 * time.Second)
	if tm.Stop() {
		t.Fatal("Stop() after fire = true, want false")
	}
}

func TestSimAdvanceDoesNotFireFutureTimers(t *testing.T) {
	s := NewSim(epoch)
	fired := false
	s.AfterFunc(10*time.Second, func() { fired = true })
	s.Advance(9 * time.Second)
	if fired {
		t.Fatal("timer fired early")
	}
	s.Advance(time.Second)
	if !fired {
		t.Fatal("timer did not fire at deadline")
	}
}

func TestSimCallbackSchedulingCascades(t *testing.T) {
	s := NewSim(epoch)
	var fires []time.Time
	var tick func()
	tick = func() {
		fires = append(fires, s.Now())
		if len(fires) < 4 {
			s.AfterFunc(time.Minute, tick)
		}
	}
	s.AfterFunc(time.Minute, tick)
	s.Advance(time.Hour)
	if len(fires) != 4 {
		t.Fatalf("fires = %d, want 4", len(fires))
	}
	for i, ft := range fires {
		want := epoch.Add(time.Duration(i+1) * time.Minute)
		if !ft.Equal(want) {
			t.Fatalf("fire %d at %v, want %v", i, ft, want)
		}
	}
	if !s.Now().Equal(epoch.Add(time.Hour)) {
		t.Fatalf("clock ended at %v, want epoch+1h", s.Now())
	}
}

func TestSimAfterDeliversTime(t *testing.T) {
	s := NewSim(epoch)
	ch := s.After(5 * time.Second)
	s.Advance(5 * time.Second)
	select {
	case got := <-ch:
		if !got.Equal(epoch.Add(5 * time.Second)) {
			t.Fatalf("After delivered %v", got)
		}
	default:
		t.Fatal("After channel empty after deadline")
	}
}

func TestSimSleepWakesWhenAdvanced(t *testing.T) {
	s := NewSim(epoch)
	done := make(chan struct{})
	go func() {
		s.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to register its timer.
	for s.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	s.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestSimRunDrainsAllTimers(t *testing.T) {
	s := NewSim(epoch)
	count := 0
	for i := 1; i <= 10; i++ {
		s.AfterFunc(time.Duration(i)*time.Minute, func() { count++ })
	}
	fired := s.Run(epoch.Add(time.Hour))
	if fired != 10 || count != 10 {
		t.Fatalf("Run fired %d (count %d), want 10", fired, count)
	}
	if s.PendingTimers() != 0 {
		t.Fatalf("PendingTimers = %d, want 0", s.PendingTimers())
	}
}

func TestSimRunRespectsHorizon(t *testing.T) {
	s := NewSim(epoch)
	count := 0
	s.AfterFunc(time.Minute, func() { count++ })
	s.AfterFunc(time.Hour, func() { count++ })
	fired := s.Run(epoch.Add(30 * time.Minute))
	if fired != 1 || count != 1 {
		t.Fatalf("fired=%d count=%d, want 1", fired, count)
	}
	if !s.Now().Equal(epoch.Add(30 * time.Minute)) {
		t.Fatalf("Now = %v, want horizon", s.Now())
	}
}

func TestSimNegativeDelayFiresImmediatelyOnAdvance(t *testing.T) {
	s := NewSim(epoch)
	fired := false
	s.AfterFunc(-time.Second, func() { fired = true })
	s.Advance(0)
	if !fired {
		t.Fatal("negative-delay timer did not fire")
	}
}

func TestSimConcurrentAfterFunc(t *testing.T) {
	s := NewSim(epoch)
	var wg sync.WaitGroup
	var mu sync.Mutex
	count := 0
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.AfterFunc(time.Duration(i)*time.Millisecond, func() {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	s.Advance(time.Second)
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("real clock far in the past")
	}
	fired := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("real AfterFunc did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire = true")
	}
	c.Sleep(time.Millisecond)
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("real After did not deliver")
	}
}

// Property: advancing by the sum of a sequence of non-negative durations
// always lands the clock at epoch + sum, regardless of how the sequence is
// chunked.
func TestSimAdvanceAdditivityProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		s := NewSim(epoch)
		var total time.Duration
		for _, st := range steps {
			d := time.Duration(st) * time.Millisecond
			total += d
			s.Advance(d)
		}
		return s.Now().Equal(epoch.Add(total))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every timer scheduled within the advance window fires, and
// none scheduled beyond it does.
func TestSimTimerFiringWindowProperty(t *testing.T) {
	f := func(delaysMs []uint16, windowMs uint16) bool {
		s := NewSim(epoch)
		window := time.Duration(windowMs) * time.Millisecond
		firedIdx := make(map[int]bool)
		for i, dm := range delaysMs {
			i := i
			s.AfterFunc(time.Duration(dm)*time.Millisecond, func() { firedIdx[i] = true })
		}
		s.Advance(window)
		for i, dm := range delaysMs {
			inWindow := time.Duration(dm)*time.Millisecond <= window
			if firedIdx[i] != inWindow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedClock(t *testing.T) {
	start := time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)
	sim := NewSim(start)
	sk := NewSkewed(sim)

	if !sk.Now().Equal(start) {
		t.Fatalf("zero-offset Now = %v", sk.Now())
	}
	sk.SetOffset(3 * time.Minute)
	if got := sk.Now(); !got.Equal(start.Add(3 * time.Minute)) {
		t.Fatalf("skewed Now = %v", got)
	}
	if sk.Offset() != 3*time.Minute {
		t.Fatalf("Offset = %v", sk.Offset())
	}
	sk.SetOffset(-time.Minute)
	if got := sk.Now(); !got.Equal(start.Add(-time.Minute)) {
		t.Fatalf("negative skew Now = %v", got)
	}

	// Relative scheduling is unaffected: a timer armed through the
	// skewed clock fires after the duration on the *inner* clock.
	fired := false
	sk.AfterFunc(10*time.Second, func() { fired = true })
	sim.Advance(9 * time.Second)
	if fired {
		t.Fatal("timer fired early")
	}
	sim.Advance(time.Second)
	if !fired {
		t.Fatal("timer did not fire on the inner clock's schedule")
	}
}
