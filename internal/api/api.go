// Package api defines the wire types of GPUnion's REST protocol: the
// messages exchanged between provider agents, the central coordinator,
// and user clients. All bodies are JSON.
//
// Endpoint map (coordinator):
//
//	POST /v1/register        RegisterRequest  → RegisterResponse
//	POST /v1/heartbeat       HeartbeatRequest → HeartbeatResponse
//	POST /v1/depart          DepartRequest    → empty
//	POST /v1/jobs            SubmitJobRequest → SubmitJobResponse
//	GET  /v1/jobs/{id}       → JobStatus
//	GET  /v1/nodes           → []NodeSummary
//	GET  /v1/metrics         → Prometheus text
//
// Endpoint map (agent):
//
//	POST /v1/launch          LaunchRequest → LaunchResponse
//	POST /v1/kill            KillRequest   → empty
//	POST /v1/checkpoint      CheckpointRequest → CheckpointResponse
//	POST /v1/killswitch      → KillSwitchResponse   (provider-local)
//	POST /v1/pause           → empty                (provider-local)
//	POST /v1/resume          → empty                (provider-local)
//	POST /v1/depart          DepartRequest → empty  (provider-local)
//	GET  /v1/status          → AgentStatus
//	GET  /v1/metrics         → Prometheus text
package api

import (
	"fmt"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/workload"
)

// Error is the JSON error envelope returned with non-2xx statuses.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e Error) Error() string { return e.Message }

// Protocol versions. Version 1 is the pre-replication wire format
// (no envelope fields); version 2 adds the Envelope — protocol
// version negotiation on Register and leader-epoch fencing on every
// request. A zero ProtocolVersion on the wire is read as version 1:
// the fields are additive and omitted by old senders.
const (
	// ProtocolV1 is the legacy, pre-envelope protocol.
	ProtocolV1 = 1
	// ProtocolVersion is the current protocol spoken by this build.
	ProtocolVersion = 2
	// MinProtocolVersion is the oldest version the coordinator accepts.
	MinProtocolVersion = ProtocolV1
)

// Envelope carries the protocol fields shared by every request: the
// sender's protocol version and the highest coordinator leader epoch
// it has observed. Embedded (and therefore JSON-inlined) in all
// request types. Both fields are zero for legacy senders.
type Envelope struct {
	// ProtocolVersion is the wire version the sender speaks (zero =
	// ProtocolV1, the pre-envelope format).
	ProtocolVersion int `json:"protocol_version,omitempty"`
	// LeaderEpoch is, on agent→coordinator requests, the highest leader
	// epoch the sender has observed (the coordinator steps down if it
	// sees a higher epoch than its own); on coordinator→agent requests
	// (launch, kill), the sending leader's epoch — the fencing token
	// agents use to reject a deposed leader's writes. Zero means "no
	// epoch": single-coordinator deployments and legacy senders.
	LeaderEpoch uint64 `json:"leader_epoch,omitempty"`
}

// ErrNotLeader is the typed reply a coordinator returns for mutating
// requests it must not serve: it is a standby, it lost its lease, or
// the request's epoch proves a newer leader exists. Agents redirect to
// LeaderHint and retry.
type ErrNotLeader struct {
	// LeaderHint is the replica ID (or endpoint) of the believed
	// current leader, empty when unknown.
	LeaderHint string `json:"leader_hint,omitempty"`
	// Epoch is the highest leader epoch the replying replica knows of.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Error implements the error interface.
func (e ErrNotLeader) Error() string {
	if e.LeaderHint == "" {
		return "api: not the leader"
	}
	return "api: not the leader (try " + e.LeaderHint + ")"
}

// ErrVersionMismatch is the typed Register rejection for a protocol
// version outside [MinProtocolVersion, ProtocolVersion].
type ErrVersionMismatch struct {
	// Requested is the version the agent asked for.
	Requested int `json:"requested"`
	// Min and Max bound what the coordinator speaks.
	Min int `json:"min"`
	Max int `json:"max"`
}

// Error implements the error interface.
func (e ErrVersionMismatch) Error() string {
	return fmt.Sprintf("api: protocol version %d unsupported (coordinator speaks %d..%d)",
		e.Requested, e.Min, e.Max)
}

// NegotiateVersion resolves the version a connection will speak from
// the version a Register requested (zero = ProtocolV1). ok is false
// when no common version exists.
func NegotiateVersion(requested int) (v int, ok bool) {
	if requested == 0 {
		requested = ProtocolV1
	}
	if requested < MinProtocolVersion || requested > ProtocolVersion {
		return 0, false
	}
	return requested, true
}

// RegisterRequest is sent by an agent joining the platform.
type RegisterRequest struct {
	Envelope
	// MachineID is the agent-generated unique identifier.
	MachineID string `json:"machine_id"`
	// Addr is the agent's base URL for coordinator-initiated calls.
	Addr string `json:"addr"`
	// GPUs inventories the node's devices.
	GPUs []db.GPUInfo `json:"gpus"`
	// Kernel is the host kernel version (CRIU-ablation relevance).
	Kernel string `json:"kernel"`
	// StorageBytes is scratch capacity offered to the platform.
	StorageBytes int64 `json:"storage_bytes"`
}

// RegisterResponse returns the credentials the agent uses afterwards.
type RegisterResponse struct {
	// Token authenticates subsequent agent calls.
	Token string `json:"token"`
	// HeartbeatInterval is how often the agent must report.
	HeartbeatInterval time.Duration `json:"heartbeat_interval"`
	// ProtocolVersion is the negotiated wire version (zero = legacy
	// coordinator, treat as ProtocolV1).
	ProtocolVersion int `json:"protocol_version,omitempty"`
	// LeaderEpoch is the registering coordinator's current leader epoch
	// (zero in single-coordinator deployments). Agents remember the
	// highest epoch seen and reject coordinator-initiated writes
	// carrying an older one.
	LeaderEpoch uint64 `json:"leader_epoch,omitempty"`
}

// HeartbeatRequest carries the periodic status update (§3.2: "periodic
// status updates from provider agents").
type HeartbeatRequest struct {
	Envelope
	MachineID string `json:"machine_id"`
	Token     string `json:"token"`
	// Telemetry is the current per-device reading.
	Telemetry []gpu.Telemetry `json:"telemetry"`
	// RunningJobs lists job IDs currently executing on the node.
	RunningJobs []string `json:"running_jobs"`
	// Paused reports whether the provider has paused new allocations.
	Paused bool `json:"paused"`
	// BeatSeq is the agent's monotonically increasing beat counter.
	// The coordinator drops a beat whose sequence it has already
	// processed, making heartbeat ingress idempotent under duplicate
	// delivery (retried requests, replayed packets). Zero means "no
	// sequence" and is always processed — the pre-sequence wire format.
	BeatSeq uint64 `json:"beat_seq,omitempty"`
	// HealthEvents carries the gray-failure observations collected on
	// the node since its last beat (XID errors, thermal/power
	// throttling, throughput slowdowns). The slice is bounded: agents
	// send and coordinators accept at most MaxHealthEventsPerBeat per
	// beat, newest first beyond the cap. The BeatSeq dedup guard covers
	// these too — a replayed beat never double-folds its events.
	HealthEvents []gpu.HealthEvent `json:"health_events,omitempty"`
}

// MaxHealthEventsPerBeat bounds HeartbeatRequest.HealthEvents on both
// sides of the wire, keeping a misbehaving (or very sick) node from
// flooding heartbeat ingress.
const MaxHealthEventsPerBeat = 32

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	// Acknowledged is true when the coordinator accepted the update.
	Acknowledged bool `json:"acknowledged"`
	// Reregister asks the agent to register again (unknown node, e.g.
	// after a coordinator restart).
	Reregister bool `json:"reregister,omitempty"`
	// LeaderEpoch is the acking coordinator's current leader epoch, so
	// agents track leadership changes from the regular heartbeat flow.
	LeaderEpoch uint64 `json:"leader_epoch,omitempty"`
}

// DepartReason distinguishes the §4 interruption classes.
type DepartReason string

// Departure reasons.
const (
	// DepartScheduled is a graceful, provider-initiated shutdown with
	// time for final checkpoints.
	DepartScheduled DepartReason = "scheduled"
	// DepartEmergency is an immediate disconnect (power cut, network
	// pull); detected by heartbeat loss, not announced.
	DepartEmergency DepartReason = "emergency"
	// DepartTemporary is a pause with intent to return.
	DepartTemporary DepartReason = "temporary"
)

// DepartRequest announces a voluntary departure.
type DepartRequest struct {
	Envelope
	MachineID string       `json:"machine_id"`
	Token     string       `json:"token"`
	Reason    DepartReason `json:"reason"`
	// GraceSeconds is how long the provider allows for checkpointing
	// before workloads are terminated (scheduled departures).
	GraceSeconds int `json:"grace_seconds,omitempty"`
}

// SubmitJobRequest is a user's job submission.
type SubmitJobRequest struct {
	Envelope
	User string `json:"user"`
	// Kind is "batch" or "interactive".
	Kind string `json:"kind"`
	// ImageName is the container image to run.
	ImageName string `json:"image_name"`
	// Entrypoint for batch jobs.
	Entrypoint []string `json:"entrypoint,omitempty"`
	// Priority orders the pending queue (higher first).
	Priority int `json:"priority"`
	// GPUMemMiB and MinCapability* constrain placement.
	GPUMemMiB       int64 `json:"gpu_mem_mib"`
	CapabilityMajor int   `json:"capability_major"`
	CapabilityMinor int   `json:"capability_minor"`
	// CheckpointIntervalSec enables periodic ALC checkpoints.
	CheckpointIntervalSec int `json:"checkpoint_interval_sec,omitempty"`
	// StoragePrefs is the ordered list of storage nodes for checkpoints.
	StoragePrefs []string `json:"storage_prefs,omitempty"`
	// Training describes the batch training workload (the stand-in for
	// the user's training script).
	Training *workload.TrainingSpec `json:"training,omitempty"`
	// SessionSeconds is the expected duration of an interactive session.
	SessionSeconds int `json:"session_seconds,omitempty"`
}

// SubmitJobResponse returns the assigned job ID.
type SubmitJobResponse struct {
	JobID string `json:"job_id"`
}

// JobStatus reports a job's platform-level state.
type JobStatus struct {
	JobID      string      `json:"job_id"`
	State      db.JobState `json:"state"`
	NodeID     string      `json:"node_id,omitempty"`
	DeviceID   string      `json:"device_id,omitempty"`
	Migrations int         `json:"migrations"`
	Submitted  time.Time   `json:"submitted"`
	Started    time.Time   `json:"started,omitempty"`
	Finished   time.Time   `json:"finished,omitempty"`
}

// NodeSummary is one row of the coordinator's node listing.
type NodeSummary struct {
	ID            string        `json:"id"`
	Status        db.NodeStatus `json:"status"`
	GPUs          []db.GPUInfo  `json:"gpus"`
	LastHeartbeat time.Time     `json:"last_heartbeat"`
	Departures    int           `json:"departures"`
}

// NodeHealthSummary is one row of the coordinator's health listing: the
// node's folded gray-failure score plus the latest events behind it.
type NodeHealthSummary struct {
	NodeID string        `json:"node_id"`
	Status db.NodeStatus `json:"status"`
	// Score is the folded health score in (0, 1]; 1 is fully healthy.
	Score float64 `json:"score"`
	// UpdatedAt is when the score last moved; zero means no health
	// event has ever been folded for this node.
	UpdatedAt time.Time `json:"updated_at,omitempty"`
	// Unhealthy reports Score below the drain threshold: the node is
	// excluded from placement and its jobs are being moved off.
	Unhealthy bool `json:"unhealthy,omitempty"`
	// RecentEvents is a bounded ring of the latest ingested events.
	RecentEvents []gpu.HealthEvent `json:"recent_events,omitempty"`
}

// LaunchRequest asks an agent to start a job in a container.
type LaunchRequest struct {
	Envelope
	JobID     string `json:"job_id"`
	ImageName string `json:"image_name"`
	// Kind is "batch" or "interactive".
	Kind       string   `json:"kind"`
	Entrypoint []string `json:"entrypoint,omitempty"`
	// GPUMemMiB / Capability* select a device on the node.
	GPUMemMiB       int64 `json:"gpu_mem_mib"`
	CapabilityMajor int   `json:"capability_major"`
	CapabilityMinor int   `json:"capability_minor"`
	// CheckpointIntervalSec enables periodic checkpoints on the agent.
	CheckpointIntervalSec int `json:"checkpoint_interval_sec,omitempty"`
	// RestoreFromSeq, when non-zero, instructs the agent to restore the
	// job from the given checkpoint sequence before starting.
	RestoreFromSeq int `json:"restore_from_seq,omitempty"`
	// RestoreStep is the application progress to resume from.
	RestoreStep int64 `json:"restore_step,omitempty"`
	// Training describes the batch training workload.
	Training *workload.TrainingSpec `json:"training,omitempty"`
	// SessionSeconds is the expected duration of an interactive session.
	SessionSeconds int `json:"session_seconds,omitempty"`
	// StoragePrefs is the user's ordered checkpoint-placement list
	// (§3.5: users pick where their state is kept).
	StoragePrefs []string `json:"storage_prefs,omitempty"`
}

// LaunchResponse confirms a launch.
type LaunchResponse struct {
	ContainerID string `json:"container_id"`
	DeviceID    string `json:"device_id"`
}

// KillRequest terminates a job on an agent.
type KillRequest struct {
	Envelope
	JobID string `json:"job_id"`
}

// CheckpointRequest asks the agent to checkpoint a job now.
type CheckpointRequest struct {
	Envelope
	JobID string `json:"job_id"`
	// Incremental requests a delta checkpoint.
	Incremental bool `json:"incremental"`
}

// CheckpointResponse reports the captured snapshot.
type CheckpointResponse struct {
	Seq   int   `json:"seq"`
	Bytes int64 `json:"bytes"`
	Step  int64 `json:"step"`
}

// JobUpdateRequest is the agent's report of a job state change
// (completion, failure) to the coordinator.
type JobUpdateRequest struct {
	Envelope
	MachineID string      `json:"machine_id"`
	Token     string      `json:"token"`
	JobID     string      `json:"job_id"`
	State     db.JobState `json:"state"`
	Step      int64       `json:"step"`
}

// KillSwitchResponse reports what the provider's kill-switch terminated.
type KillSwitchResponse struct {
	KilledJobs []string `json:"killed_jobs"`
}

// AgentStatus is the agent's self-report.
type AgentStatus struct {
	MachineID   string          `json:"machine_id"`
	Paused      bool            `json:"paused"`
	Departed    bool            `json:"departed"`
	RunningJobs []string        `json:"running_jobs"`
	Telemetry   []gpu.Telemetry `json:"telemetry"`
}

// CapabilityOf converts the wire fields to the gpu type.
func CapabilityOf(major, minor int) gpu.ComputeCapability {
	return gpu.ComputeCapability{Major: major, Minor: minor}
}
