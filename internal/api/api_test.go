package api

import (
	"encoding/json"
	"testing"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/workload"
)

// roundTrip encodes and decodes v into out, failing the test on error.
func roundTrip(t *testing.T, v, out any) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
}

func TestRegisterRequestRoundTrip(t *testing.T) {
	in := RegisterRequest{
		MachineID: "node-abc", Addr: "http://10.0.0.5:7070",
		GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
			MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
		Kernel: "5.15", StorageBytes: 1 << 30,
	}
	var out RegisterRequest
	roundTrip(t, in, &out)
	if out.MachineID != in.MachineID || len(out.GPUs) != 1 || out.GPUs[0].Model != "RTX 3090" {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestHeartbeatRequestRoundTrip(t *testing.T) {
	in := HeartbeatRequest{
		MachineID: "node-abc", Token: "tok",
		Telemetry: []gpu.Telemetry{{DeviceID: "gpu0", Utilization: 0.95,
			UsedMemMiB: 8000, TotalMemMiB: 24576, TemperatureC: 77, PowerW: 330, Allocated: true}},
		RunningJobs: []string{"job-1"},
		Paused:      true,
	}
	var out HeartbeatRequest
	roundTrip(t, in, &out)
	if !out.Paused || len(out.Telemetry) != 1 || out.Telemetry[0].Utilization != 0.95 {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestSubmitJobRequestCarriesTrainingSpec(t *testing.T) {
	spec := workload.SmallTransformer
	in := SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, CheckpointIntervalSec: 600,
		StoragePrefs: []string{"lab-nas", "scratch"},
		Training:     &spec,
	}
	var out SubmitJobRequest
	roundTrip(t, in, &out)
	if out.Training == nil {
		t.Fatal("training spec lost in transit")
	}
	if out.Training.TotalSteps != spec.TotalSteps || out.Training.Class != spec.Class {
		t.Fatalf("training = %+v", out.Training)
	}
	if len(out.StoragePrefs) != 2 || out.StoragePrefs[0] != "lab-nas" {
		t.Fatalf("storage prefs = %v", out.StoragePrefs)
	}
}

func TestLaunchRequestRestoreFields(t *testing.T) {
	in := LaunchRequest{
		JobID: "j1", ImageName: "img", Kind: "batch",
		RestoreFromSeq: 7, RestoreStep: 4200,
		SessionSeconds: 0,
	}
	var out LaunchRequest
	roundTrip(t, in, &out)
	if out.RestoreFromSeq != 7 || out.RestoreStep != 4200 {
		t.Fatalf("restore fields = %+v", out)
	}
}

func TestJobStatusOmitsEmptyTimes(t *testing.T) {
	in := JobStatus{JobID: "j1", State: db.JobPending, Submitted: time.Unix(1000, 0).UTC()}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out JobStatus
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Started.IsZero() || !out.Finished.IsZero() {
		t.Fatalf("zero times not preserved: %+v", out)
	}
}

func TestErrorImplementsError(t *testing.T) {
	var err error = Error{Code: 404, Message: "job not found"}
	if err.Error() != "job not found" {
		t.Fatalf("Error() = %q", err.Error())
	}
}

func TestDepartReasonValues(t *testing.T) {
	for _, r := range []DepartReason{DepartScheduled, DepartEmergency, DepartTemporary} {
		raw, err := json.Marshal(DepartRequest{MachineID: "n", Reason: r})
		if err != nil {
			t.Fatal(err)
		}
		var out DepartRequest
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if out.Reason != r {
			t.Fatalf("reason = %q, want %q", out.Reason, r)
		}
	}
}

func TestCapabilityOf(t *testing.T) {
	cc := CapabilityOf(8, 6)
	if cc.Major != 8 || cc.Minor != 6 {
		t.Fatalf("CapabilityOf = %+v", cc)
	}
	if !cc.AtLeast(gpu.ComputeCapability{Major: 8, Minor: 0}) {
		t.Fatal("capability comparison broken through the wire type")
	}
}

func TestJobUpdateRequestRoundTrip(t *testing.T) {
	in := JobUpdateRequest{MachineID: "n1", Token: "t", JobID: "j1",
		State: db.JobCompleted, Step: 999}
	var out JobUpdateRequest
	roundTrip(t, in, &out)
	if out.State != db.JobCompleted || out.Step != 999 {
		t.Fatalf("round trip = %+v", out)
	}
}
