package api

import (
	"reflect"
	"testing"
	"time"
)

// fuzzSeedBatches builds the seed corpus from the same batch shapes
// the equivalence battery's aggregators forward: empty windows, pure
// delta windows, pass-through beats carrying telemetry and health
// events, and damaged variants at every interesting boundary.
func fuzzSeedBatches(f *testing.F) {
	f.Helper()
	at := time.Date(2025, 9, 1, 0, 4, 30, 0, time.UTC)
	batches := []AggregatedBeat{
		{},
		{
			Envelope:     Envelope{ProtocolVersion: ProtocolVersion, LeaderEpoch: 3},
			AggregatorID: "agg-00",
			WindowSeq:    17,
			Deltas: []AggBeatDelta{
				{NodeID: "eq-00", Token: "tok.sig", At: at, BeatSeq: 41, Beats: 2},
				{NodeID: "eq-03", Token: "tok2.sig", At: at.Add(11 * time.Second), BeatSeq: 7, Beats: 1},
			},
		},
		{
			AggregatorID: "agg-01",
			WindowSeq:    1,
			Beats: []AggPassthrough{{
				At: at,
				Beat: HeartbeatRequest{
					Envelope:  Envelope{ProtocolVersion: ProtocolVersion},
					MachineID: "eq-05", Token: "t.s", BeatSeq: 12,
					RunningJobs: []string{"job-1"},
				},
			}},
		},
	}
	var good []byte
	for _, b := range batches {
		enc, err := EncodeAggregatedBeat(b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		good = enc
	}
	f.Add([]byte{})
	f.Add(good[:len(good)-5])            // torn before the CRC
	f.Add(good[:4])                      // magic only
	f.Add(append([]byte{}, good[:2]...)) // torn magic
	crc := append([]byte{}, good...)     // CRC damage
	crc[len(crc)-1] ^= 0xFF
	f.Add(crc)
	body := append([]byte{}, good...) // body damage under a stale CRC
	body[6] ^= 0x40
	f.Add(body)
	// Hostile counts: magic + huge uvarint where the delta count goes.
	f.Add(append(append([]byte{}, aggMagic[:]...),
		0x01, 0x00, 0x01, 0x61, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0))
}

// FuzzAggregatedBeat hammers the batch codec with corrupt and
// truncated inputs. Properties:
//
//  1. DecodeAggregatedBeat never panics and never over-allocates on
//     hostile length fields (the caps reject them before allocation);
//  2. anything that decodes cleanly survives an encode/decode round
//     trip unchanged — the wire format is lossless for everything the
//     decoder accepts.
func FuzzAggregatedBeat(f *testing.F) {
	fuzzSeedBatches(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeAggregatedBeat(data)
		if err != nil {
			return
		}
		enc, err := EncodeAggregatedBeat(b)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		again, err := DecodeAggregatedBeat(enc)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(b, again) {
			t.Fatalf("round trip diverged:\n first %+v\nsecond %+v", b, again)
		}
	})
}
