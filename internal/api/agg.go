// Aggregation-tier wire types: the batch format a rack/zone aggregator
// uses to roll up agent heartbeats before they reach the coordinator.
//
// An aggregator acks no-op beats locally and folds them into
// AggBeatDelta entries (node → latest receipt time); beats that could
// change coordinator state (health events, job-list changes, paused
// transitions, flagged nodes) are forwarded verbatim as AggPassthrough
// entries. One AggregatedBeat per flush tick makes coordinator ingress
// O(aggregators + churn) instead of O(nodes).
//
// Exactly-once: the per-node BeatSeq is preserved end-to-end. The
// coordinator's existing sequence dedup applies to both deltas and
// passthrough beats, so a replayed or duplicated batch folds to a
// no-op. LeaderEpoch fencing applies to the batch exactly as it does
// to a direct heartbeat.
package api

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"time"
)

// AggBeatDelta is one folded node entry in an aggregated batch: "this
// node heartbeat normally through beat sequence BeatSeq, last seen at
// At". The aggregator already acked those beats; the coordinator only
// needs to advance liveness.
type AggBeatDelta struct {
	// NodeID is the machine the delta covers.
	NodeID string `json:"node_id"`
	// Token authenticates the node exactly as on a direct heartbeat.
	Token string `json:"token"`
	// At is the aggregator's receipt time of the node's newest folded
	// beat — the time the coordinator must record as LastHeartbeat so
	// aggregated and direct ingestion converge to the same state.
	At time.Time `json:"at"`
	// BeatSeq is the node's highest folded beat sequence, preserved for
	// the coordinator's exactly-once dedup.
	BeatSeq uint64 `json:"beat_seq"`
	// Beats counts how many agent beats this delta folded (≥ 1);
	// observability only.
	Beats int `json:"beats"`
}

// AggPassthrough is a beat the aggregator could not fold: it carries
// health events or a visible state change, so the coordinator must see
// it verbatim. At preserves the aggregator's receipt time.
type AggPassthrough struct {
	// At is when the aggregator received the beat.
	At time.Time `json:"at"`
	// Beat is the agent's original request, unmodified.
	Beat HeartbeatRequest `json:"beat"`
}

// AggregatedBeat is one flush window's roll-up from one aggregator.
type AggregatedBeat struct {
	Envelope
	// AggregatorID identifies the sending aggregator (rack/zone scope).
	AggregatorID string `json:"aggregator_id"`
	// WindowSeq is the aggregator's monotonically increasing flush
	// counter; observability and replay diagnosis, not dedup (dedup is
	// per-node BeatSeq).
	WindowSeq uint64 `json:"window_seq"`
	// Deltas are the folded no-op beats, sorted by NodeID.
	Deltas []AggBeatDelta `json:"deltas,omitempty"`
	// Beats are the pass-through state-changing beats, in receipt order.
	Beats []AggPassthrough `json:"beats,omitempty"`
}

// AggregatedBeatResponse acks a batch and fans per-node directives back
// through the aggregator.
type AggregatedBeatResponse struct {
	// Acknowledged is true when the coordinator accepted the batch.
	Acknowledged bool `json:"acknowledged"`
	// LeaderEpoch is the acking coordinator's current epoch; the
	// aggregator relays it to agents so epoch observation works exactly
	// as on the direct path.
	LeaderEpoch uint64 `json:"leader_epoch,omitempty"`
	// Reregister lists nodes the coordinator no longer knows (restart,
	// sweep); the aggregator relays the flag on each node's next beat.
	Reregister []string `json:"reregister,omitempty"`
	// SendFull lists nodes whose deltas the coordinator could not fold
	// safely (e.g. status changed underneath); the aggregator must pass
	// those nodes' beats through verbatim until the flag clears.
	SendFull []string `json:"send_full,omitempty"`
}

// Decode-side caps: a corrupt or hostile batch must not force huge
// allocations before the checksum is verified.
const (
	// MaxAggBatchEntries bounds Deltas and Beats counts in one batch.
	MaxAggBatchEntries = 65536
	// maxAggStringLen bounds IDs and tokens inside a batch.
	maxAggStringLen = 4096
	// maxAggBlobLen bounds one embedded pass-through beat.
	maxAggBlobLen = 1 << 20
)

// aggMagic heads every encoded batch; rev bumps on format change.
var aggMagic = [4]byte{'A', 'G', 'B', '1'}

// EncodeAggregatedBeat renders the compact binary batch format used on
// the aggregator → coordinator hop: varint-packed deltas (the hot,
// numerous part), JSON-embedded pass-through beats (the rare part),
// and a trailing CRC32 over everything before it.
func EncodeAggregatedBeat(b AggregatedBeat) ([]byte, error) {
	out := make([]byte, 0, 64+32*len(b.Deltas))
	out = append(out, aggMagic[:]...)
	out = binary.AppendUvarint(out, uint64(b.ProtocolVersion))
	out = binary.AppendUvarint(out, b.LeaderEpoch)
	out = appendAggString(out, b.AggregatorID)
	out = binary.AppendUvarint(out, b.WindowSeq)

	if len(b.Deltas) > MaxAggBatchEntries || len(b.Beats) > MaxAggBatchEntries {
		return nil, fmt.Errorf("api: aggregated batch too large (%d deltas, %d beats)",
			len(b.Deltas), len(b.Beats))
	}
	out = binary.AppendUvarint(out, uint64(len(b.Deltas)))
	for _, d := range b.Deltas {
		out = appendAggString(out, d.NodeID)
		out = appendAggString(out, d.Token)
		out = binary.AppendVarint(out, d.At.UnixNano())
		out = binary.AppendUvarint(out, d.BeatSeq)
		out = binary.AppendUvarint(out, uint64(d.Beats))
	}
	out = binary.AppendUvarint(out, uint64(len(b.Beats)))
	for _, p := range b.Beats {
		raw, err := json.Marshal(p.Beat)
		if err != nil {
			return nil, fmt.Errorf("api: encoding pass-through beat: %w", err)
		}
		if len(raw) > maxAggBlobLen {
			return nil, fmt.Errorf("api: pass-through beat too large (%d bytes)", len(raw))
		}
		out = binary.AppendVarint(out, p.At.UnixNano())
		out = binary.AppendUvarint(out, uint64(len(raw)))
		out = append(out, raw...)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out))
	return append(out, crc[:]...), nil
}

// DecodeAggregatedBeat parses a batch produced by EncodeAggregatedBeat.
// It never panics on corrupt input: every length is bounds-checked
// before allocation and the trailing CRC must match.
func DecodeAggregatedBeat(raw []byte) (AggregatedBeat, error) {
	var b AggregatedBeat
	if len(raw) < len(aggMagic)+4 {
		return b, fmt.Errorf("api: aggregated batch truncated (%d bytes)", len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return b, fmt.Errorf("api: aggregated batch checksum mismatch")
	}
	if [4]byte(body[:4]) != aggMagic {
		return b, fmt.Errorf("api: bad aggregated batch magic")
	}
	r := aggReader{buf: body[4:]}
	b.ProtocolVersion = int(r.uvarint())
	b.LeaderEpoch = r.uvarint()
	b.AggregatorID = r.str()
	b.WindowSeq = r.uvarint()

	nDeltas := r.uvarint()
	if nDeltas > MaxAggBatchEntries {
		return b, fmt.Errorf("api: aggregated batch claims %d deltas", nDeltas)
	}
	if r.err == nil && nDeltas > 0 {
		b.Deltas = make([]AggBeatDelta, 0, min(int(nDeltas), 1024))
	}
	for i := uint64(0); i < nDeltas && r.err == nil; i++ {
		var d AggBeatDelta
		d.NodeID = r.str()
		d.Token = r.str()
		d.At = time.Unix(0, r.varint())
		d.BeatSeq = r.uvarint()
		d.Beats = int(r.uvarint())
		if r.err == nil {
			b.Deltas = append(b.Deltas, d)
		}
	}
	nBeats := r.uvarint()
	if nBeats > MaxAggBatchEntries {
		return b, fmt.Errorf("api: aggregated batch claims %d pass-through beats", nBeats)
	}
	if r.err == nil && nBeats > 0 {
		b.Beats = make([]AggPassthrough, 0, min(int(nBeats), 1024))
	}
	for i := uint64(0); i < nBeats && r.err == nil; i++ {
		var p AggPassthrough
		p.At = time.Unix(0, r.varint())
		blob := r.blob()
		if r.err != nil {
			break
		}
		if err := json.Unmarshal(blob, &p.Beat); err != nil {
			return b, fmt.Errorf("api: decoding pass-through beat: %w", err)
		}
		b.Beats = append(b.Beats, p)
	}
	if r.err != nil {
		return b, r.err
	}
	if len(r.buf) != 0 {
		return b, fmt.Errorf("api: %d trailing bytes after aggregated batch", len(r.buf))
	}
	return b, nil
}

// aggReader is a bounds-checked sequential decoder; the first error
// sticks and all later reads are no-ops.
type aggReader struct {
	buf []byte
	err error
}

func (r *aggReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("api: truncated uvarint in aggregated batch")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *aggReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("api: truncated varint in aggregated batch")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *aggReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxAggStringLen || n > uint64(len(r.buf)) {
		r.err = fmt.Errorf("api: bad string length %d in aggregated batch", n)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *aggReader) blob() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxAggBlobLen || n > uint64(len(r.buf)) {
		r.err = fmt.Errorf("api: bad blob length %d in aggregated batch", n)
		return nil
	}
	blob := r.buf[:n]
	r.buf = r.buf[n:]
	return blob
}

func appendAggString(out []byte, s string) []byte {
	out = binary.AppendUvarint(out, uint64(len(s)))
	return append(out, s...)
}
