package workload

import (
	"testing"
	"testing/quick"

	"gpunion/internal/gpu"
)

func resnet50() ModelDescription {
	return ModelDescription{
		Class: CNN, Parameters: 25_600_000, BatchSize: 64,
		Precision: FP32, StepsPlanned: 20000,
	}
}

func bertBase() ModelDescription {
	return ModelDescription{
		Class: Transformer, Parameters: 110_000_000, BatchSize: 32,
		Precision: FP32, StepsPlanned: 30000,
	}
}

func gpt3b() ModelDescription {
	return ModelDescription{
		Class: Transformer, Parameters: 3_000_000_000, BatchSize: 8,
		Precision: FP16, StepsPlanned: 60000,
	}
}

func TestEstimateResNet50Plausible(t *testing.T) {
	est, err := EstimateResources(resnet50())
	if err != nil {
		t.Fatal(err)
	}
	// ResNet-50 training fits comfortably in a consumer GPU.
	if est.GPUMemMiB < 1024 || est.GPUMemMiB > 12000 {
		t.Fatalf("ResNet-50 estimate = %d MiB, implausible", est.GPUMemMiB)
	}
	dev, err := est.SuggestDevice()
	if err != nil {
		t.Fatal(err)
	}
	if dev.Model != "RTX 3090" {
		t.Fatalf("suggested %s, want the smallest fitting GPU", dev.Model)
	}
}

func TestEstimateBERTNeedsMoreThanResNet(t *testing.T) {
	r, err := EstimateResources(resnet50())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateResources(bertBase())
	if err != nil {
		t.Fatal(err)
	}
	if b.GPUMemMiB <= r.GPUMemMiB {
		t.Fatalf("BERT (%d MiB) should need more than ResNet (%d MiB)", b.GPUMemMiB, r.GPUMemMiB)
	}
	if b.StateBytes <= r.StateBytes {
		t.Fatal("BERT checkpoint should be larger")
	}
}

func TestEstimateLargeModelRequiresBigGPU(t *testing.T) {
	est, err := EstimateResources(gpt3b())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := est.SuggestDevice()
	if err != nil {
		t.Fatal(err)
	}
	// 3B with Adam moments (24 GB alone) exceeds every 24 GiB card.
	if dev.MemoryMiB <= 24576 {
		t.Fatalf("3B model suggested %s (%d MiB)", dev.Model, dev.MemoryMiB)
	}
}

func TestEstimateFP16RequiresTensorCores(t *testing.T) {
	est, err := EstimateResources(gpt3b())
	if err != nil {
		t.Fatal(err)
	}
	if !(est.MinCapability.Major > 7 || (est.MinCapability.Major == 7 && est.MinCapability.Minor >= 5)) {
		t.Fatalf("fp16 capability = %v, want >= 7.5", est.MinCapability)
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := EstimateResources(ModelDescription{Parameters: 0}); err == nil {
		t.Fatal("zero parameters accepted")
	}
	if _, err := EstimateResources(ModelDescription{Parameters: 1e6, Precision: "int4"}); err == nil {
		t.Fatal("unknown precision accepted")
	}
}

func TestEstimateDefaults(t *testing.T) {
	est, err := EstimateResources(ModelDescription{Class: CNN, Parameters: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if est.GPUMemMiB < 2048 {
		t.Fatalf("floor not applied: %d MiB", est.GPUMemMiB)
	}
}

func TestToTrainingSpecRunnable(t *testing.T) {
	m := bertBase()
	est, err := EstimateResources(m)
	if err != nil {
		t.Fatal(err)
	}
	spec := est.ToTrainingSpec(m)
	if spec.TotalSteps != m.StepsPlanned || spec.Class != Transformer {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.StepTime(gpu.RTX3090) <= 0 {
		t.Fatal("derived spec has zero step time")
	}
	// The derived job actually runs.
	j := NewJob("estimated", spec)
	j.Advance(100)
	if j.Step() != 100 {
		t.Fatal("derived job does not advance")
	}
}

func TestEstimatedRunTimePositive(t *testing.T) {
	m := resnet50()
	est, err := EstimateResources(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := est.EstimatedRunTime(m)
	if err != nil || d <= 0 {
		t.Fatalf("run time = %v, %v", d, err)
	}
}

func TestSuggestDeviceNothingFits(t *testing.T) {
	est := Estimate{GPUMemMiB: 10_000_000} // 10 TB: nothing on campus
	if _, err := est.SuggestDevice(); err == nil {
		t.Fatal("impossible estimate got a device")
	}
}

// Property: memory estimates are monotone in parameter count and batch
// size, and always above the floor.
func TestEstimateMonotoneProperty(t *testing.T) {
	f := func(p1, p2 uint32, b1, b2 uint8) bool {
		if p1 == 0 || p2 == 0 {
			return true
		}
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		small, err1 := EstimateResources(ModelDescription{
			Class: CNN, Parameters: int64(p1) * 1000, BatchSize: int(b1) + 1})
		big, err2 := EstimateResources(ModelDescription{
			Class: CNN, Parameters: int64(p2) * 1000, BatchSize: int(b2) + 1})
		if err1 != nil || err2 != nil {
			return false
		}
		return small.GPUMemMiB <= big.GPUMemMiB && small.GPUMemMiB >= 2048
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
