package workload

import (
	"errors"
	"fmt"
	"time"

	"gpunion/internal/gpu"
)

// This file implements the paper's §5.2 "User-Transparent Resource
// Invocation" direction: instead of forcing users to hand-estimate GPU
// memory and compute requirements (where over-estimates waste devices
// and under-estimates fail placements), the platform derives them from
// what users actually know — their model's parameter count, batch size
// and precision.

// Precision is the numeric format of model parameters and activations.
type Precision string

// Supported precisions.
const (
	FP32 Precision = "fp32"
	FP16 Precision = "fp16"
)

// bytesPer returns the parameter width in bytes.
func (p Precision) bytesPer() (int64, error) {
	switch p {
	case FP32:
		return 4, nil
	case FP16:
		return 2, nil
	}
	return 0, fmt.Errorf("workload: unknown precision %q", p)
}

// ModelDescription is what a user can state about their training run
// without knowing anything about GPUs.
type ModelDescription struct {
	// Class is the model family (affects activation footprint).
	Class Class
	// Parameters is the trainable parameter count.
	Parameters int64
	// BatchSize is the per-device training batch size.
	BatchSize int
	// Precision of parameters/activations (default FP32).
	Precision Precision
	// StepsPlanned is the total optimizer steps (for runtime estimates).
	StepsPlanned int64
}

// Estimate is the derived resource request.
type Estimate struct {
	// GPUMemMiB is the device memory to request: parameters, gradients,
	// optimizer moments (Adam: 2× parameters), and activation headroom.
	GPUMemMiB int64
	// StateBytes is the ALC checkpoint size (weights + optimizer).
	StateBytes int64
	// StepFLOPs approximates per-step compute: forward + backward ≈ 6 ×
	// parameters per token, at ≈128 tokens (or spatial positions) per
	// sample.
	StepFLOPs float64
	// MinCapability reflects precision support requirements.
	MinCapability gpu.ComputeCapability
}

// EstimateResources derives a resource request from a model description
// (§5.2: "incorporating intelligent mechanisms for resource estimation,
// requesting, and scheduling").
func EstimateResources(m ModelDescription) (Estimate, error) {
	if m.Parameters <= 0 {
		return Estimate{}, errors.New("workload: parameter count must be positive")
	}
	if m.BatchSize <= 0 {
		m.BatchSize = 32
	}
	if m.Precision == "" {
		m.Precision = FP32
	}
	width, err := m.Precision.bytesPer()
	if err != nil {
		return Estimate{}, err
	}

	// Memory model: weights + gradients (1× each) + Adam moments (2×),
	// all at parameter precision except moments (fp32), plus an
	// activation term that scales with batch size and model class.
	weights := m.Parameters * width
	grads := m.Parameters * width
	moments := m.Parameters * 8 // two fp32 moments
	activationPerSample := int64(float64(m.Parameters) * 0.25 * float64(width) / 32)
	if m.Class == Transformer {
		// Attention activations are heavier per sample.
		activationPerSample *= 3
	}
	activations := activationPerSample * int64(m.BatchSize)

	totalBytes := weights + grads + moments + activations
	// 20% fragmentation/workspace headroom, floor of 2 GiB.
	memMiB := int64(float64(totalBytes)*1.2) / (1 << 20)
	if memMiB < 2048 {
		memMiB = 2048
	}

	est := Estimate{
		GPUMemMiB:  memMiB,
		StateBytes: weights + moments, // what an ALC checkpoint persists
		StepFLOPs:  6 * float64(m.Parameters) * float64(m.BatchSize) * 128,
		MinCapability: gpu.ComputeCapability{
			Major: 7, Minor: 0,
		},
	}
	if m.Precision == FP16 {
		// Efficient fp16 training wants tensor cores (Volta+ has them,
		// but campus policy targets Turing 7.5 or newer).
		est.MinCapability = gpu.ComputeCapability{Major: 7, Minor: 5}
	}
	return est, nil
}

// ToTrainingSpec converts an estimate into a runnable spec.
func (e Estimate) ToTrainingSpec(m ModelDescription) TrainingSpec {
	steps := m.StepsPlanned
	if steps <= 0 {
		steps = 10000
	}
	return TrainingSpec{
		Class:            m.Class,
		TotalSteps:       steps,
		StepFLOPs:        e.StepFLOPs,
		StateBytes:       e.StateBytes,
		GPUMemMiB:        e.GPUMemMiB,
		MinCapability:    e.MinCapability,
		DirtyFracPerStep: 2e-5,
		LogBytesPerStep:  2048,
	}
}

// SuggestDevice returns the smallest catalog GPU that satisfies the
// estimate, or an error when nothing on campus fits.
func (e Estimate) SuggestDevice() (gpu.Spec, error) {
	candidates := []gpu.Spec{gpu.RTX3090, gpu.RTX4090, gpu.A6000, gpu.A100}
	var best gpu.Spec
	found := false
	for _, c := range candidates {
		if c.MemoryMiB < e.GPUMemMiB || !c.Capability.AtLeast(e.MinCapability) {
			continue
		}
		if !found || c.MemoryMiB < best.MemoryMiB {
			best = c
			found = true
		}
	}
	if !found {
		return gpu.Spec{}, fmt.Errorf("workload: no campus GPU fits %d MiB", e.GPUMemMiB)
	}
	return best, nil
}

// EstimatedRunTime predicts wall time on the suggested device.
func (e Estimate) EstimatedRunTime(m ModelDescription) (time.Duration, error) {
	dev, err := e.SuggestDevice()
	if err != nil {
		return 0, err
	}
	return e.ToTrainingSpec(m).RunTime(dev), nil
}
