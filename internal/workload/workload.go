// Package workload models the jobs that run on GPUnion: deep-learning
// training (the PyTorch CNN and transformer models of the paper's §4
// experiments) and interactive research sessions.
//
// The evaluation's quantities — time lost to an interruption, checkpoint
// creation time, incremental checkpoint size, total training time
// inflation — are all functions of a job's step time, state size and
// state-mutation rate. This package captures those functions; it does not
// execute any numerical computation.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gpunion/internal/checkpoint"
	"gpunion/internal/gpu"
)

// Class is the model family of a training job.
type Class string

// Model families used in the paper's migration experiments (§4: "20 deep
// learning training jobs (PyTorch CNN and transformer models)").
const (
	CNN         Class = "cnn"
	Transformer Class = "transformer"
)

// gpuEfficiency is the fraction of peak FP32 throughput a real training
// loop sustains (kernel launch overhead, memory stalls, input pipeline).
const gpuEfficiency = 0.35

// diskWriteBytesPerSec is the provider-local disk bandwidth available for
// writing checkpoint files. Memory-intensive models take proportionally
// longer to checkpoint — the effect behind the paper's observation that
// they are more sensitive to interruptions.
const diskWriteBytesPerSec = 1.2e9

// TrainingSpec is the static description of a training job.
type TrainingSpec struct {
	// Class is the model family.
	Class Class `json:"class"`
	// TotalSteps is the number of optimizer steps to completion.
	TotalSteps int64 `json:"total_steps"`
	// StepFLOPs is the FP32 work per step.
	StepFLOPs float64 `json:"step_flops"`
	// StateBytes is the recoverable application state (model weights +
	// optimizer moments) — the size of a full ALC checkpoint.
	StateBytes int64 `json:"state_bytes"`
	// GPUMemMiB is the device memory footprint while training.
	GPUMemMiB int64 `json:"gpu_mem_mib"`
	// MinCapability is the lowest CUDA compute capability that can run
	// this job.
	MinCapability gpu.ComputeCapability `json:"min_capability"`
	// DirtyFracPerStep is the fraction of checkpointable state whose
	// pages differ per training step at page granularity. Weights drift
	// slowly, so successive periodic checkpoints share most of their
	// pages — the property the paper's incremental backup exploits
	// ("only modified memory pages and file system deltas are
	// transmitted", §4).
	DirtyFracPerStep float64 `json:"dirty_frac_per_step"`
	// LogBytesPerStep is file-system output per step (metrics, samples).
	LogBytesPerStep int64 `json:"log_bytes_per_step"`
}

// StepTime returns the wall time of one training step on the given GPU.
func (s TrainingSpec) StepTime(dev gpu.Spec) time.Duration {
	if dev.FP32TFLOPS <= 0 {
		return 0
	}
	secs := s.StepFLOPs / (dev.FP32TFLOPS * 1e12 * gpuEfficiency)
	return time.Duration(secs * float64(time.Second))
}

// StepsIn returns how many steps complete in d on the given GPU.
func (s TrainingSpec) StepsIn(d time.Duration, dev gpu.Spec) int64 {
	st := s.StepTime(dev)
	if st <= 0 {
		return 0
	}
	return int64(d / st)
}

// RunTime returns the uninterrupted wall time of the whole job on dev.
func (s TrainingSpec) RunTime(dev gpu.Spec) time.Duration {
	return time.Duration(s.TotalSteps) * s.StepTime(dev)
}

// CheckpointCreationTime is the pause needed to write a full ALC
// checkpoint to provider-local disk.
func (s TrainingSpec) CheckpointCreationTime() time.Duration {
	secs := float64(s.StateBytes) / diskWriteBytesPerSec
	return time.Duration(secs * float64(time.Second))
}

// MemoryIntensive reports whether the job is in the paper's
// "memory-intensive" class (large state, long checkpoint creation).
func (s TrainingSpec) MemoryIntensive() bool {
	return s.StateBytes >= 2_000_000_000
}

// pageSize is the MemoryImage page granularity for training state.
const pageSize = 1 << 20 // 1 MiB pages

// Job is a live training job: spec plus mutable progress and the memory
// image that incremental checkpoints diff against.
type Job struct {
	// ID is the platform-wide job identifier.
	ID string
	// Spec is the static job description.
	Spec TrainingSpec

	mu    sync.Mutex
	image *checkpoint.MemoryImage
	step  int64
	// interruptions counts provider-departure events that hit this job.
	interruptions int
	// lostSteps accumulates steps redone after restores.
	lostSteps int64
}

// NewJob creates a job at step 0.
func NewJob(id string, spec TrainingSpec) *Job {
	pages := int(spec.StateBytes / pageSize)
	if pages == 0 && spec.StateBytes > 0 {
		pages = 1
	}
	return &Job{
		ID:    id,
		Spec:  spec,
		image: checkpoint.NewMemoryImage(pages, pageSize),
	}
}

// Image exposes the job's memory image for checkpoint capture.
func (j *Job) Image() *checkpoint.MemoryImage { return j.image }

// Step returns the completed step count.
func (j *Job) Step() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.step
}

// Done reports whether the job has reached its total steps.
func (j *Job) Done() bool {
	return j.Step() >= j.Spec.TotalSteps
}

// RemainingSteps returns the steps left to run.
func (j *Job) RemainingSteps() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := j.Spec.TotalSteps - j.step
	if r < 0 {
		r = 0
	}
	return r
}

// Advance runs n steps (clamped to the remaining work): progress moves
// forward and the memory image accumulates dirty state for the next
// incremental checkpoint. It returns the steps actually run.
func (j *Job) Advance(n int64) int64 {
	if n <= 0 {
		return 0
	}
	j.mu.Lock()
	remaining := j.Spec.TotalSteps - j.step
	if n > remaining {
		n = remaining
	}
	j.step += n
	j.mu.Unlock()
	if n > 0 {
		frac := j.Spec.DirtyFracPerStep * float64(n)
		j.image.TouchFraction(frac)
		j.image.AppendFileDelta(j.Spec.LogBytesPerStep * n)
	}
	return n
}

// Progress returns the application-level state marker for checkpointing.
func (j *Job) Progress() checkpoint.Progress {
	return checkpoint.Progress{Step: j.Step()}
}

// RestoreTo rewinds (or fast-forwards) the job to a checkpointed
// progress marker, recording the interruption and the lost steps.
func (j *Job) RestoreTo(p checkpoint.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.interruptions++
	if p.Step < j.step {
		j.lostSteps += j.step - p.Step
	}
	j.step = p.Step
}

// Interruptions returns how many times the job was interrupted.
func (j *Job) Interruptions() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.interruptions
}

// LostSteps returns the total steps that had to be redone after restores.
func (j *Job) LostSteps() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lostSteps
}

// EffectiveTotalSteps is the work actually executed including redone
// steps — the basis of the paper's "3–7% increase in total training
// time" measurement.
func (j *Job) EffectiveTotalSteps() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.step + j.lostSteps
}

// Session is an interactive research session (Jupyter-style): it holds a
// GPU for a bounded wall-clock duration at a characteristic utilization.
type Session struct {
	ID string
	// Duration is the session length.
	Duration time.Duration
	// GPUMemMiB is the memory footprint of the session.
	GPUMemMiB int64
	// AvgUtilization is the mean GPU utilization while active
	// (interactive work is bursty: typically 0.15–0.4).
	AvgUtilization float64
}

// Catalog of representative training jobs. FLOP counts and state sizes
// are sized so step times and checkpoint sizes land in realistic ranges
// for the named model families on the paper's hardware.
var (
	// SmallCNN: ResNet-50-class vision model.
	SmallCNN = TrainingSpec{
		Class: CNN, TotalSteps: 20000, StepFLOPs: 2.5e12,
		StateBytes: 400_000_000, GPUMemMiB: 8192,
		MinCapability:    gpu.ComputeCapability{Major: 7, Minor: 0},
		DirtyFracPerStep: 3e-5, LogBytesPerStep: 2048,
	}
	// LargeCNN: wide vision backbone with heavy augmentation.
	LargeCNN = TrainingSpec{
		Class: CNN, TotalSteps: 40000, StepFLOPs: 8e12,
		StateBytes: 1_500_000_000, GPUMemMiB: 16384,
		MinCapability:    gpu.ComputeCapability{Major: 7, Minor: 0},
		DirtyFracPerStep: 1.2e-5, LogBytesPerStep: 4096,
	}
	// SmallTransformer: BERT-base-class fine-tune.
	SmallTransformer = TrainingSpec{
		Class: Transformer, TotalSteps: 30000, StepFLOPs: 5e12,
		StateBytes: 1_300_000_000, GPUMemMiB: 12288,
		MinCapability:    gpu.ComputeCapability{Major: 7, Minor: 5},
		DirtyFracPerStep: 2e-5, LogBytesPerStep: 2048,
	}
	// LargeTransformer: 1.3B-parameter language model — the paper's
	// memory-intensive case.
	LargeTransformer = TrainingSpec{
		Class: Transformer, TotalSteps: 60000, StepFLOPs: 2e13,
		StateBytes: 15_600_000_000, GPUMemMiB: 40960,
		MinCapability:    gpu.ComputeCapability{Major: 8, Minor: 0},
		DirtyFracPerStep: 8e-6, LogBytesPerStep: 8192,
	}
)

// Generator produces randomized but reproducible workload corpora.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator creates a generator with the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// TrainingCorpus generates n training jobs mixing CNN and transformer
// families, scaled by a size jitter so no two jobs are identical. IDs
// are "job-1".."job-n".
func (g *Generator) TrainingCorpus(n int) []*Job {
	bases := []TrainingSpec{SmallCNN, LargeCNN, SmallTransformer, LargeTransformer}
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		base := bases[g.rng.Intn(len(bases))]
		jitter := 0.75 + g.rng.Float64()*0.5 // ×[0.75, 1.25)
		spec := base
		spec.TotalSteps = int64(float64(base.TotalSteps) * jitter)
		spec.StepFLOPs = base.StepFLOPs * jitter
		spec.StateBytes = int64(float64(base.StateBytes) * jitter)
		jobs = append(jobs, NewJob(fmt.Sprintf("job-%d", i+1), spec))
	}
	return jobs
}

// Sessions generates n interactive sessions with durations between min
// and max and bursty utilization. IDs are "sess-1".."sess-n".
func (g *Generator) Sessions(n int, min, max time.Duration) ([]Session, error) {
	if min <= 0 || max < min {
		return nil, errors.New("workload: invalid session duration bounds")
	}
	out := make([]Session, 0, n)
	for i := 0; i < n; i++ {
		span := max - min
		d := min
		if span > 0 {
			d += time.Duration(g.rng.Int63n(int64(span)))
		}
		out = append(out, Session{
			ID:             fmt.Sprintf("sess-%d", i+1),
			Duration:       d,
			GPUMemMiB:      4096 + int64(g.rng.Intn(3))*4096,
			AvgUtilization: 0.15 + g.rng.Float64()*0.25,
		})
	}
	return out, nil
}
