package workload

import (
	"testing"
	"testing/quick"
	"time"

	"gpunion/internal/checkpoint"
	"gpunion/internal/gpu"
)

func TestStepTimeScalesWithGPU(t *testing.T) {
	st3090 := SmallCNN.StepTime(gpu.RTX3090)
	st4090 := SmallCNN.StepTime(gpu.RTX4090)
	if st3090 <= 0 || st4090 <= 0 {
		t.Fatalf("step times: %v, %v", st3090, st4090)
	}
	if st4090 >= st3090 {
		t.Fatalf("4090 step (%v) should beat 3090 (%v)", st4090, st3090)
	}
}

func TestStepTimeRealisticRange(t *testing.T) {
	// A ResNet-50-class step on a 3090 should land between 50 ms and 1 s.
	st := SmallCNN.StepTime(gpu.RTX3090)
	if st < 50*time.Millisecond || st > time.Second {
		t.Fatalf("SmallCNN step on 3090 = %v, outside plausible range", st)
	}
}

func TestStepTimeZeroTFLOPS(t *testing.T) {
	if st := SmallCNN.StepTime(gpu.Spec{}); st != 0 {
		t.Fatalf("StepTime on zero spec = %v", st)
	}
}

func TestStepsIn(t *testing.T) {
	st := SmallCNN.StepTime(gpu.RTX3090)
	n := SmallCNN.StepsIn(10*st, gpu.RTX3090)
	if n != 10 {
		t.Fatalf("StepsIn(10 steps worth) = %d", n)
	}
	if SmallCNN.StepsIn(time.Hour, gpu.Spec{}) != 0 {
		t.Fatal("StepsIn on zero spec should be 0")
	}
}

func TestRunTime(t *testing.T) {
	want := time.Duration(SmallCNN.TotalSteps) * SmallCNN.StepTime(gpu.RTX3090)
	if got := SmallCNN.RunTime(gpu.RTX3090); got != want {
		t.Fatalf("RunTime = %v, want %v", got, want)
	}
}

func TestCheckpointCreationTimeScalesWithState(t *testing.T) {
	small := SmallCNN.CheckpointCreationTime()
	large := LargeTransformer.CheckpointCreationTime()
	if large <= small {
		t.Fatalf("memory-intensive checkpoint (%v) should exceed small (%v)", large, small)
	}
	// 15.6 GB at 1.2 GB/s ≈ 13 s.
	if large < 10*time.Second || large > 20*time.Second {
		t.Fatalf("LargeTransformer checkpoint time = %v, want ≈13 s", large)
	}
}

func TestMemoryIntensiveClassification(t *testing.T) {
	if SmallCNN.MemoryIntensive() {
		t.Fatal("SmallCNN classified memory-intensive")
	}
	if !LargeTransformer.MemoryIntensive() {
		t.Fatal("LargeTransformer not classified memory-intensive")
	}
}

func TestJobAdvance(t *testing.T) {
	j := NewJob("j1", SmallCNN)
	ran := j.Advance(100)
	if ran != 100 || j.Step() != 100 {
		t.Fatalf("Advance = %d, Step = %d", ran, j.Step())
	}
	if j.Done() {
		t.Fatal("job done after 100/20000 steps")
	}
	if j.RemainingSteps() != SmallCNN.TotalSteps-100 {
		t.Fatalf("RemainingSteps = %d", j.RemainingSteps())
	}
}

func TestJobAdvanceClampsAtCompletion(t *testing.T) {
	spec := SmallCNN
	spec.TotalSteps = 50
	j := NewJob("j1", spec)
	ran := j.Advance(100)
	if ran != 50 || !j.Done() {
		t.Fatalf("Advance = %d, Done = %v", ran, j.Done())
	}
	if j.Advance(10) != 0 {
		t.Fatal("advancing a done job ran steps")
	}
}

func TestJobAdvanceNonPositive(t *testing.T) {
	j := NewJob("j1", SmallCNN)
	if j.Advance(0) != 0 || j.Advance(-5) != 0 {
		t.Fatal("non-positive Advance ran steps")
	}
}

func TestJobAdvanceDirtiesImage(t *testing.T) {
	j := NewJob("j1", SmallCNN)
	if j.Image().DirtyBytes() != 0 {
		t.Fatal("fresh job has dirty state")
	}
	j.Advance(10)
	if j.Image().DirtyBytes() == 0 {
		t.Fatal("Advance left image clean")
	}
}

func TestJobRestoreAccounting(t *testing.T) {
	j := NewJob("j1", SmallCNN)
	j.Advance(1000)
	// Checkpoint at step 600, then the provider departs.
	j.RestoreTo(checkpoint.Progress{Step: 600})
	if j.Step() != 600 {
		t.Fatalf("Step after restore = %d", j.Step())
	}
	if j.Interruptions() != 1 {
		t.Fatalf("Interruptions = %d", j.Interruptions())
	}
	if j.LostSteps() != 400 {
		t.Fatalf("LostSteps = %d, want 400", j.LostSteps())
	}
	j.Advance(400)
	if j.EffectiveTotalSteps() != 1400 {
		t.Fatalf("EffectiveTotalSteps = %d, want 1400 (1000 + 400 redone)", j.EffectiveTotalSteps())
	}
}

func TestJobCheckpointRoundTrip(t *testing.T) {
	j := NewJob("j1", SmallCNN)
	j.Advance(500)
	src := checkpoint.Source{JobID: j.ID, Image: j.Image(), Progress: j.Progress()}
	ck, err := checkpoint.ALC{}.Capture(src, 1, false, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Progress.Step != 500 {
		t.Fatalf("checkpoint progress = %+v", ck.Progress)
	}
	if ck.Bytes != j.Image().TotalBytes() {
		t.Fatalf("checkpoint bytes = %d", ck.Bytes)
	}
	j.Advance(300)
	j.RestoreTo(ck.Progress)
	if j.Step() != 500 || j.LostSteps() != 300 {
		t.Fatalf("after restore: step=%d lost=%d", j.Step(), j.LostSteps())
	}
}

func TestJobImageSizedFromState(t *testing.T) {
	j := NewJob("j1", SmallCNN)
	got := j.Image().TotalBytes()
	// Pages are 1 MiB; total should be within one page of StateBytes.
	if got > SmallCNN.StateBytes || got < SmallCNN.StateBytes-(1<<20) {
		t.Fatalf("image bytes = %d, state = %d", got, SmallCNN.StateBytes)
	}
}

func TestJobTinyStateStillHasAPage(t *testing.T) {
	spec := SmallCNN
	spec.StateBytes = 100
	j := NewJob("j1", spec)
	if j.Image().NumPages() != 1 {
		t.Fatalf("pages = %d, want 1", j.Image().NumPages())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42).TrainingCorpus(20)
	b := NewGenerator(42).TrainingCorpus(20)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("corpus sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Spec != b[i].Spec || a[i].ID != b[i].ID {
			t.Fatalf("corpus diverges at %d: %+v vs %+v", i, a[i].Spec, b[i].Spec)
		}
	}
}

func TestGeneratorMixesClasses(t *testing.T) {
	jobs := NewGenerator(7).TrainingCorpus(40)
	classes := make(map[Class]int)
	for _, j := range jobs {
		classes[j.Spec.Class]++
	}
	if classes[CNN] == 0 || classes[Transformer] == 0 {
		t.Fatalf("class mix = %v, want both families", classes)
	}
}

func TestGeneratorJitterWithinBounds(t *testing.T) {
	jobs := NewGenerator(9).TrainingCorpus(50)
	for _, j := range jobs {
		if j.Spec.StateBytes <= 0 || j.Spec.TotalSteps <= 0 {
			t.Fatalf("degenerate spec %+v", j.Spec)
		}
		// Jitter is bounded by ×1.25 of the largest base spec.
		if j.Spec.StateBytes > int64(float64(LargeTransformer.StateBytes)*1.25)+1 {
			t.Fatalf("state bytes %d exceeds jitter bound", j.Spec.StateBytes)
		}
	}
}

func TestSessionsGeneration(t *testing.T) {
	g := NewGenerator(3)
	sessions, err := g.Sessions(10, 30*time.Minute, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 10 {
		t.Fatalf("len = %d", len(sessions))
	}
	for _, s := range sessions {
		if s.Duration < 30*time.Minute || s.Duration >= 4*time.Hour+time.Nanosecond {
			t.Fatalf("duration %v out of bounds", s.Duration)
		}
		if s.AvgUtilization < 0.15 || s.AvgUtilization > 0.4 {
			t.Fatalf("utilization %v out of bounds", s.AvgUtilization)
		}
		if s.GPUMemMiB < 4096 {
			t.Fatalf("session memory %d", s.GPUMemMiB)
		}
	}
}

func TestSessionsInvalidBounds(t *testing.T) {
	g := NewGenerator(3)
	if _, err := g.Sessions(1, 0, time.Hour); err == nil {
		t.Fatal("zero min accepted")
	}
	if _, err := g.Sessions(1, time.Hour, time.Minute); err == nil {
		t.Fatal("max < min accepted")
	}
}

func TestSessionsEqualBounds(t *testing.T) {
	g := NewGenerator(3)
	sessions, err := g.Sessions(3, time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		if s.Duration != time.Hour {
			t.Fatalf("duration = %v, want exactly 1h", s.Duration)
		}
	}
}

// Property: advancing in chunks reaches the same step count as one big
// advance, and never exceeds TotalSteps.
func TestAdvanceChunkingProperty(t *testing.T) {
	f := func(chunks []uint16) bool {
		spec := SmallCNN
		spec.TotalSteps = 5000
		j1 := NewJob("a", spec)
		j2 := NewJob("b", spec)
		var total int64
		for _, c := range chunks {
			j1.Advance(int64(c))
			total += int64(c)
		}
		j2.Advance(total)
		if j1.Step() != j2.Step() {
			return false
		}
		return j1.Step() <= spec.TotalSteps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: restore never increases effective work below real work, and
// lost steps are non-negative.
func TestRestoreAccountingProperty(t *testing.T) {
	f := func(advance1, ckpt, advance2 uint16) bool {
		spec := SmallCNN
		spec.TotalSteps = 1 << 20
		j := NewJob("p", spec)
		j.Advance(int64(advance1))
		at := int64(ckpt) % (j.Step() + 1) // checkpoint at or before current step
		j.RestoreTo(checkpoint.Progress{Step: at})
		j.Advance(int64(advance2))
		return j.LostSteps() >= 0 && j.EffectiveTotalSteps() >= j.Step()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
