package wal

import (
	"sort"

	"gpunion/internal/db"
)

// RecoveryResult reports what a recovery pass found and did.
type RecoveryResult struct {
	// SnapshotLoaded is whether a snapshot file was found and imported.
	SnapshotLoaded bool
	// Watermark is the imported snapshot's LSN watermark (0 without a
	// snapshot: every logged record replays).
	Watermark uint64
	// Replayed is how many logged records were applied on top of the
	// snapshot.
	Replayed int
	// Skipped is how many logged records were at or below the
	// watermark (already contained in the snapshot).
	Skipped int
	// Segments and TornTails describe the log that was read.
	Segments  int
	TornTails int
}

// Recover restores a store from a WAL directory: import the latest
// snapshot (if any), then replay every logged record above its
// watermark, in LSN order, through the store's idempotent Apply. A
// missing directory or empty log recovers to the snapshot alone (or an
// empty store); torn segment tails recover to the last good record.
func Recover(dir string, store db.Store) (RecoveryResult, error) {
	var res RecoveryResult
	st, ok, err := readSnapshotFile(dir)
	if err != nil {
		return res, err
	}
	if ok {
		store.ImportState(st)
		res.SnapshotLoaded = true
		res.Watermark = st.Watermark
	}
	muts, stats, err := ReadAll(dir)
	if err != nil {
		return res, err
	}
	res.Segments = stats.Segments
	res.TornTails = stats.TornTails
	// Group-commit queues and post-unlock hook calls can write records
	// slightly out of commit order; LSN order is the true mutation
	// order, so sort before applying (after-images must land last-
	// writer-wins).
	sort.SliceStable(muts, func(i, j int) bool { return muts[i].LSN < muts[j].LSN })
	for _, m := range muts {
		if m.LSN <= res.Watermark {
			res.Skipped++
			continue
		}
		if err := store.Apply(m); err != nil {
			return res, err
		}
		res.Replayed++
	}
	return res, nil
}
