package wal

import (
	"io"
	"os"
)

// File is the slice of *os.File the log writer needs. Keeping it an
// interface is what lets the chaos harness inject disk faults — short
// writes, fsync errors — into the exact I/O path production runs,
// instead of testing a fork of the writer.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage; Append acknowledges a
	// record only after Sync returns nil.
	Sync() error
	Close() error
}

// FS opens log segment files. The default implementation is the real
// filesystem; fault-injecting implementations wrap it.
type FS interface {
	// OpenAppend opens (creating if needed) the named file for
	// append-only writing.
	OpenAppend(name string) (File, error)
}

// OSFS is the production filesystem.
type OSFS struct{}

// OpenAppend implements FS via os.OpenFile.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
