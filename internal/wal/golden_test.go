package wal

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpunion/internal/db"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden recovery fixtures")

// goldenT0 anchors every timestamp in the recorded stream; all times
// are explicit UTC instants so the fixture is stable across machines.
var goldenT0 = time.Date(2025, 9, 1, 8, 0, 0, 0, time.UTC)

// driveGoldenPhase1 and driveGoldenPhase2 are the recorded mutation
// stream: a deterministic, single-goroutine driver covering every
// mutation type (node puts, job transitions, allocation open/close,
// monitoring samples). Phase 1 is captured by the snapshot; phase 2
// replays from the log tail.
func driveGoldenPhase1(s db.Store) {
	for i := 0; i < 4; i++ {
		s.UpsertNode(db.NodeRecord{
			ID: fmt.Sprintf("node-%02d", i), Addr: fmt.Sprintf("http://10.0.0.%d", i),
			Status: db.NodeActive, Kernel: "5.15",
			GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
				MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
			RegisteredAt: goldenT0, LastHeartbeat: goldenT0, LastJoin: goldenT0,
		})
	}
	for i := 0; i < 6; i++ {
		_ = s.InsertJob(db.JobRecord{
			ID: fmt.Sprintf("job-%03d", i), User: fmt.Sprintf("user-%d", i%2),
			Kind: "batch", State: db.JobPending, GPUMemMiB: 8192,
			ImageName: "pytorch/pytorch:2.3-cuda12", SubmittedAt: goldenT0.Add(time.Duration(i) * time.Minute),
		})
	}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("job-%03d", i)
		node := fmt.Sprintf("node-%02d", i)
		placed := goldenT0.Add(10*time.Minute + time.Duration(i)*time.Second)
		_ = s.UpdateJob(id, func(j *db.JobRecord) {
			j.State = db.JobRunning
			j.NodeID, j.DeviceID = node, "gpu0"
			j.StartedAt, j.PlacedAt = placed, placed
		})
		_ = s.UpdateNode(node, func(n *db.NodeRecord) { n.GPUs[0].Allocated = true })
		s.RecordAllocation(db.AllocationRecord{JobID: id, NodeID: node, DeviceID: "gpu0", Start: placed})
	}
	for i := 0; i < 8; i++ {
		s.AppendSample(db.Sample{
			Time:   goldenT0.Add(time.Duration(i+1) * 30 * time.Second),
			NodeID: fmt.Sprintf("node-%02d", i%4), Metric: "gpu_utilization",
			Value: float64(10*i) / 100,
		})
	}
}

func driveGoldenPhase2(s db.Store) {
	end := goldenT0.Add(time.Hour)
	// job-000 completes; job-001 migrates to node-03's freed slot.
	_ = s.UpdateJob("job-000", func(j *db.JobRecord) {
		j.State = db.JobCompleted
		j.FinishedAt = end
	})
	_ = s.CloseAllocation("job-000", end)
	_ = s.UpdateNode("node-00", func(n *db.NodeRecord) { n.GPUs[0].Allocated = false })

	_ = s.CloseAllocation("job-001", end.Add(time.Minute))
	_ = s.UpdateJob("job-001", func(j *db.JobRecord) { j.State = db.JobMigrating })
	moved := end.Add(2 * time.Minute)
	_ = s.UpdateJob("job-001", func(j *db.JobRecord) {
		j.State = db.JobRunning
		j.NodeID = "node-00"
		j.PlacedAt = moved
		j.Migrations++
	})
	_ = s.UpdateNode("node-01", func(n *db.NodeRecord) { n.GPUs[0].Allocated = false })
	_ = s.UpdateNode("node-00", func(n *db.NodeRecord) { n.GPUs[0].Allocated = true })
	s.RecordAllocation(db.AllocationRecord{JobID: "job-001", NodeID: "node-00", DeviceID: "gpu0", Start: moved})

	// node-02 departs; its job requeues.
	_ = s.UpdateNode("node-02", func(n *db.NodeRecord) {
		n.Status = db.NodeDeparted
		n.Departures++
		n.GPUs[0].Allocated = false
	})
	_ = s.CloseAllocation("job-002", end.Add(3*time.Minute))
	_ = s.UpdateJob("job-002", func(j *db.JobRecord) {
		j.State = db.JobPending
		j.NodeID, j.DeviceID = "", ""
	})
	for i := 0; i < 4; i++ {
		s.AppendSample(db.Sample{
			Time:   end.Add(time.Duration(i+1) * 30 * time.Second),
			NodeID: fmt.Sprintf("node-%02d", i%4), Metric: "gpu_memory_used_mib",
			Value: float64(2048 * i),
		})
	}
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

func marshalState(t *testing.T, st db.State) []byte {
	t.Helper()
	buf, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(buf, '\n')
}

// TestGoldenStateRecovery drives the recorded mutation stream through
// a WAL-backed store (snapshot mid-stream, crash at the end), recovers
// a fresh store from snapshot + log, and compares its ExportState
// byte-for-byte against the checked-in fixture. It then replays the
// checked-in mutation stream through Apply alone and requires the very
// same bytes — proving snapshot+replay and pure replay converge to one
// canonical state.
//
// Regenerate fixtures with: go test ./internal/wal -run Golden -update-golden
func TestGoldenStateRecovery(t *testing.T) {
	dir := t.TempDir()
	live := db.New(0)

	// Record the stream exactly as the WAL observes it.
	var stream []db.Mutation
	m, err := Open(dir, live, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hook := func(mut db.Mutation) {
		if err := m.Writer().Append(mut); err != nil {
			t.Errorf("append: %v", err)
		}
		stream = append(stream, mut)
	}
	live.SetMutationHook(hook)

	driveGoldenPhase1(live)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	driveGoldenPhase2(live)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := db.New(0)
	res, err := Recover(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotLoaded || res.Replayed == 0 {
		t.Fatalf("recovery did not exercise snapshot+replay: %+v", res)
	}
	got := marshalState(t, recovered.ExportState())

	streamJSON, err := json.MarshalIndent(stream, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	streamJSON = append(streamJSON, '\n')

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath("state.golden.json"), got, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath("mutations.golden.json"), streamJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden fixtures rewritten")
	}

	want, err := os.ReadFile(goldenPath("state.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recovered ExportState diverged from golden fixture (%d vs %d bytes);\n"+
			"if the schema changed intentionally, regenerate with -update-golden",
			len(got), len(want))
	}

	// Replay the checked-in stream through Apply alone.
	fixtureStream, err := os.ReadFile(goldenPath("mutations.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var muts []db.Mutation
	if err := json.Unmarshal(fixtureStream, &muts); err != nil {
		t.Fatal(err)
	}
	replayed := db.New(0)
	for _, mut := range muts {
		if err := replayed.Apply(mut); err != nil {
			t.Fatal(err)
		}
	}
	if got2 := marshalState(t, replayed.ExportState()); !bytes.Equal(got2, want) {
		t.Error("pure replay of the recorded stream diverged from the golden state")
	}
}
