package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gpunion/internal/db"
)

// SnapshotFile is the checkpoint file name inside a WAL directory.
const SnapshotFile = "snapshot.json"

// writeSnapshotFile atomically replaces dir/snapshot.json with st:
// write to a temp file, fsync it, rename over the old snapshot, fsync
// the directory. A crash at any point leaves either the old or the new
// snapshot intact, never a torn one.
func writeSnapshotFile(dir string, st db.State) error {
	tmp, err := os.CreateTemp(dir, SnapshotFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if err := json.NewEncoder(tmp).Encode(st); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: encoding snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: closing snapshot temp file: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, SnapshotFile)); err != nil {
		return fmt.Errorf("wal: installing snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// readSnapshotFile loads dir/snapshot.json. ok is false when no
// snapshot exists yet (a WAL-only recovery).
func readSnapshotFile(dir string) (st db.State, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, SnapshotFile))
	if err != nil {
		if os.IsNotExist(err) {
			return db.State{}, false, nil
		}
		return db.State{}, false, fmt.Errorf("wal: opening snapshot: %w", err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&st); err != nil {
		return db.State{}, false, fmt.Errorf("wal: decoding snapshot: %w", err)
	}
	return st, true, nil
}

// Snapshotter checkpoints a store into a WAL directory in the
// background and truncates the log segments the checkpoint obsoletes.
// The store is serialized shard by shard through ExportState — brief
// per-shard read locks, never a global quiesce — so heartbeat and job
// commits proceed while a snapshot is in flight.
type Snapshotter struct {
	dir   string
	store db.Store
	w     *Writer

	// snapMu serializes whole checkpoints: an explicit Checkpoint (e.g.
	// at shutdown) racing the interval ticker must not interleave its
	// rotate/export/install/truncate steps with another's — the slower
	// snapshot could otherwise install an older watermark after the
	// faster one already deleted the segments that cover the gap.
	snapMu sync.Mutex

	mu      sync.Mutex
	lastErr error
	count   int

	stopOnce sync.Once
	stopC    chan struct{}
	wg       sync.WaitGroup
}

// NewSnapshotter creates a Snapshotter writing to the Writer's
// directory.
func NewSnapshotter(store db.Store, w *Writer) *Snapshotter {
	return &Snapshotter{dir: w.Dir(), store: store, w: w, stopC: make(chan struct{})}
}

// Snapshot takes one checkpoint now:
//  1. rotate the log, freezing all segments below the cut;
//  2. export the store shard by shard (the export's watermark is read
//     after the rotation, so every record in a frozen segment is at or
//     below it and therefore fully contained in the export);
//  3. atomically install the snapshot file;
//  4. delete the frozen segments.
func (s *Snapshotter) Snapshot() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	cut, err := s.w.Rotate()
	if err != nil {
		return s.record(err)
	}
	st := s.store.ExportState()
	if err := writeSnapshotFile(s.dir, st); err != nil {
		return s.record(err)
	}
	idx, err := segmentIndexes(s.dir)
	if err != nil {
		return s.record(err)
	}
	for _, i := range idx {
		if i < cut {
			if rerr := os.Remove(filepath.Join(s.dir, segmentName(i))); rerr != nil && err == nil {
				err = fmt.Errorf("wal: truncating segment %d: %w", i, rerr)
			}
		}
	}
	return s.record(err)
}

// Start checkpoints every interval until Stop. Snapshot errors are
// retained (Err) and retried at the next tick rather than aborting the
// loop — a full disk now should not disable durability forever.
func (s *Snapshotter) Start(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = s.Snapshot()
			case <-s.stopC:
				return
			}
		}
	}()
}

// Stop halts the background loop (idempotent).
func (s *Snapshotter) Stop() {
	s.stopOnce.Do(func() { close(s.stopC) })
	s.wg.Wait()
}

// Err returns the most recent snapshot error, if any.
func (s *Snapshotter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Snapshots reports how many checkpoints were attempted.
func (s *Snapshotter) Snapshots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func (s *Snapshotter) record(err error) error {
	s.mu.Lock()
	s.lastErr = err
	s.count++
	s.mu.Unlock()
	return err
}
