package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/monitor"
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: writer closed")

// Options tunes a Writer.
type Options struct {
	// GroupWindow is an extra delay the flusher waits after being woken
	// so more appenders can join the batch. Zero means natural
	// batching: the flusher syncs as soon as it can, and whatever
	// arrived while the previous fsync was in flight forms the next
	// group — no added latency, still one fsync per group.
	GroupWindow time.Duration
	// PerRecordSync disables group commit entirely: every Append does
	// its own write+fsync under the writer lock. This is the measured
	// baseline group commit is compared against; production uses group
	// commit.
	PerRecordSync bool
	// SerialFsync keeps the pre-pipelining group commit: the group's
	// fsync runs under the writer I/O lock, so the next group's write
	// cannot issue until the previous fsync completes. Kept as the
	// measured baseline for the pipelined default.
	SerialFsync bool
	// FS opens segment files (nil = the real filesystem). The chaos
	// harness injects disk faults here.
	FS FS
}

// Writer appends mutation records to log segments with group-committed,
// pipelined fsync: concurrent Appends coalesce into one write, and each
// Append returns only after its record is durable — the property that
// lets a store acknowledge a mutation as soon as (and only when) it
// cannot be lost.
//
// Commit is a two-stage pipeline. The write stage (flush) drains the
// queue and issues the group's write() under the I/O lock, then hands
// the segment to the sync stage and releases the lock — so the next
// group's buffer fills and its write() issues while the previous
// group's fsync is still in flight. The sync stage fsyncs in hand-off
// order and releases each group's waiters only after a covering fsync,
// which preserves acked ⇒ durable exactly as the serial writer did.
//
// The writer survives disk faults: a failed group write or sync marks
// the current segment poisoned (its tail may be torn), and the next
// write first rotates to a fresh segment. A failed fsync additionally
// fails every later group already written behind it on the same file —
// those bytes sit behind a possible tear, so they must never be
// acknowledged even if a retried fsync were to report success. Records
// acknowledged after the fault are therefore readable on recovery — the
// torn bytes stay quarantined in the poisoned segment, whose tail the
// reader already tolerates.
type Writer struct {
	dir  string
	opts Options
	fs   FS

	// ioMu serializes file I/O (flush, rotate). In the pipelined default
	// it covers the group write but not the fsync; per-record and
	// serial-fsync modes hold it across the sync too.
	ioMu sync.Mutex
	// mu guards the queue and segment state. Never held across I/O, so
	// appenders keep enqueueing while a group fsync is in flight —
	// that queue *is* the next group.
	mu      sync.Mutex
	f       File
	seg     int
	pending []byte
	waiters []chan error
	closed  bool
	// poisoned records that the last I/O on f failed: its tail may hold
	// a torn frame, so no further record may land behind it.
	poisoned bool

	flushC chan struct{}
	doneC  chan struct{}
	wg     sync.WaitGroup

	// syncC feeds the sync stage in write order; nil in per-record and
	// serial-fsync modes. syncWg tracks the sync goroutine.
	syncC  chan syncReq
	syncWg sync.WaitGroup

	// metrics is nil until Instrument; recording sites load it once per
	// operation, so an uninstrumented writer pays one atomic load and no
	// timer reads.
	metrics atomic.Pointer[writerMetrics]
}

// syncReq is one write-stage hand-off to the sync stage: the segment
// file whose new bytes need an fsync and the appenders waiting on it.
// A request with barrier set is a drain marker instead: the sync stage
// closes it once every earlier request has completed, which is how
// Rotate, Close and poison heals wait out the pipeline before touching
// a file.
type syncReq struct {
	f       File
	waiters []chan error
	barrier chan struct{}
}

// writerMetrics holds the instrumentation handles registered by
// Instrument.
type writerMetrics struct {
	appendSeconds *monitor.Histogram
	fsyncSeconds  *monitor.Histogram
	groupBatch    *monitor.Histogram
	rotations     *monitor.Counter
	appendErrors  *monitor.Counter
}

// Instrument registers the writer's metrics on reg and starts
// recording: append latency (enqueue to durable), fsync latency, group
// batch size (appenders released per fsync), segment rotations
// (snapshot cuts and poison heals) and failed appends. Call once after
// OpenWriter; until then the writer records nothing and reads no
// timers.
func (w *Writer) Instrument(reg *monitor.Registry) error {
	if reg == nil {
		return nil
	}
	latency := []float64{0.00005, 0.0002, 0.001, 0.005, 0.02, 0.1, 0.5}
	m := &writerMetrics{}
	var err error
	if m.appendSeconds, err = reg.Histogram("gpunion_wal_append_seconds",
		"WAL append latency from enqueue to durable, in seconds.", latency, nil); err != nil {
		return err
	}
	if m.fsyncSeconds, err = reg.Histogram("gpunion_wal_fsync_seconds",
		"WAL segment fsync latency in seconds.", latency, nil); err != nil {
		return err
	}
	if m.groupBatch, err = reg.Histogram("gpunion_wal_group_batch_size",
		"Appenders released per group-commit fsync.",
		[]float64{1, 2, 4, 8, 16, 32, 64}, nil); err != nil {
		return err
	}
	if m.rotations, err = reg.Counter("gpunion_wal_rotations_total",
		"WAL segment rotations (snapshot cuts and poisoned-segment heals).", nil); err != nil {
		return err
	}
	if m.appendErrors, err = reg.Counter("gpunion_wal_append_errors_total",
		"WAL appends that failed (durability lost for that record).", nil); err != nil {
		return err
	}
	w.metrics.Store(m)
	return nil
}

// timedSync runs f.Sync, recording its latency when instrumented.
func (w *Writer) timedSync(f File) error {
	m := w.metrics.Load()
	if m == nil {
		return f.Sync()
	}
	start := time.Now()
	err := f.Sync()
	if err == nil {
		m.fsyncSeconds.Observe(time.Since(start).Seconds())
	}
	return err
}

// OpenWriter opens a Writer on dir, creating it if needed. A fresh
// segment is always started: the previous process's tail (possibly
// torn) is left untouched for the reader.
func OpenWriter(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	idx, err := segmentIndexes(dir)
	if err != nil {
		return nil, err
	}
	seg := 0
	if len(idx) > 0 {
		seg = idx[len(idx)-1] + 1
	}
	f, err := fsys.OpenAppend(filepath.Join(dir, segmentName(seg)))
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment %d: %w", seg, err)
	}
	w := &Writer{
		dir:    dir,
		opts:   opts,
		fs:     fsys,
		f:      f,
		seg:    seg,
		flushC: make(chan struct{}, 1),
		doneC:  make(chan struct{}),
	}
	if !opts.PerRecordSync {
		if !opts.SerialFsync {
			w.syncC = make(chan syncReq, 64)
			w.syncWg.Add(1)
			go w.syncLoop()
		}
		w.wg.Add(1)
		go w.flushLoop()
	}
	return w, nil
}

// Dir returns the WAL directory.
func (w *Writer) Dir() string { return w.dir }

// Segment returns the index of the segment currently being written.
func (w *Writer) Segment() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg
}

// Append logs one record and blocks until it is durable (fsynced).
func (w *Writer) Append(m db.Mutation) error {
	frame, err := encodeRecord(m)
	if err != nil {
		return err
	}
	met := w.metrics.Load()
	var start time.Time
	if met != nil {
		start = time.Now()
	}
	err = w.appendFrame(frame)
	if met != nil {
		if err != nil {
			met.appendErrors.Inc()
		} else {
			met.appendSeconds.Observe(time.Since(start).Seconds())
		}
	}
	return err
}

// appendFrame queues (or directly syncs) one encoded frame and blocks
// until it is durable.
func (w *Writer) appendFrame(frame []byte) error {
	if w.opts.PerRecordSync {
		w.ioMu.Lock()
		defer w.ioMu.Unlock()
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return ErrClosed
		}
		w.mu.Unlock()
		f, err := w.healForWrite()
		if err != nil {
			return err
		}
		if _, err := f.Write(frame); err != nil {
			w.markPoisoned()
			return fmt.Errorf("wal: appending record: %w", err)
		}
		if err := w.timedSync(f); err != nil {
			w.markPoisoned()
			return fmt.Errorf("wal: syncing record: %w", err)
		}
		return nil
	}

	done := make(chan error, 1)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.pending = append(w.pending, frame...)
	w.waiters = append(w.waiters, done)
	w.mu.Unlock()
	select {
	case w.flushC <- struct{}{}:
	default: // a flush is already scheduled; it will pick this record up
	}
	return <-done
}

// flushLoop is the single group-commit goroutine: each wakeup drains
// the queue accumulated so far, writes it in one syscall, fsyncs once,
// and releases every waiter in the group.
func (w *Writer) flushLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.flushC:
			if w.opts.GroupWindow > 0 {
				time.Sleep(w.opts.GroupWindow)
			}
			w.flush()
		case <-w.doneC:
			w.flush() // final drain
			return
		}
	}
}

// flush is the write stage: it drains the current group, issues its
// write() under ioMu, and either syncs inline (serial mode) or hands
// the segment to the sync stage and releases ioMu so the next group's
// write can overlap the fsync. Waiters are released here only on a
// write-path error or in serial mode; the pipeline releases them from
// the sync stage after their covering fsync.
func (w *Writer) flush() {
	w.ioMu.Lock()
	w.mu.Lock()
	buf, waiters := w.pending, w.waiters
	w.pending, w.waiters = nil, nil
	w.mu.Unlock()
	if len(buf) == 0 && len(waiters) == 0 {
		w.ioMu.Unlock()
		return
	}
	if m := w.metrics.Load(); m != nil && len(waiters) > 0 {
		m.groupBatch.Observe(float64(len(waiters)))
	}
	f, err := w.healForWrite()
	if err == nil && len(buf) > 0 {
		if _, werr := f.Write(buf); werr != nil {
			w.markPoisoned()
			err = fmt.Errorf("wal: appending group: %w", werr)
		}
	}
	if err == nil && w.syncC != nil {
		// Hand off before releasing ioMu so sync requests arrive in
		// write order — the invariant the failure propagation relies on.
		w.syncC <- syncReq{f: f, waiters: waiters}
		w.ioMu.Unlock()
		return
	}
	if err == nil {
		if serr := w.timedSync(f); serr != nil {
			w.markPoisoned()
			err = fmt.Errorf("wal: syncing group: %w", serr)
		}
	}
	w.ioMu.Unlock()
	for _, ch := range waiters {
		ch <- err
	}
}

// syncLoop is the sync stage: it fsyncs segments in hand-off order and
// releases each group's waiters once a covering fsync completed.
// Consecutive groups on the same file that accumulated while an earlier
// fsync was in flight share one fsync. After a failed fsync the file is
// remembered as failed: every later group on it — already written
// behind a possible tear — fails without another sync attempt, because
// a retried fsync can report success without the torn bytes being
// readable.
func (w *Writer) syncLoop() {
	defer w.syncWg.Done()
	var failedF File
	var failedErr error
	for {
		first, ok := <-w.syncC
		if !ok {
			return
		}
		batch := []syncReq{first}
	fill:
		for {
			select {
			case r, rok := <-w.syncC:
				if !rok {
					break fill
				}
				batch = append(batch, r)
			default:
				break fill
			}
		}
		for i := 0; i < len(batch); {
			if batch[i].barrier != nil {
				close(batch[i].barrier)
				i++
				continue
			}
			f := batch[i].f
			var waiters []chan error
			j := i
			for j < len(batch) && batch[j].barrier == nil && batch[j].f == f {
				waiters = append(waiters, batch[j].waiters...)
				j++
			}
			var err error
			if f == failedF {
				err = failedErr
			} else if serr := w.timedSync(f); serr != nil {
				err = fmt.Errorf("wal: syncing group: %w", serr)
				failedF, failedErr = f, err
				// The failing segment is still the current one: every
				// swap point (heal, rotate, close) drains this stage
				// first, so no swap can have happened since hand-off.
				w.markPoisoned()
			}
			for _, ch := range waiters {
				ch <- err
			}
			i = j
		}
	}
}

// drainSync blocks until every group already handed to the sync stage
// has completed. Callers hold ioMu, so no new hand-offs can race the
// barrier; it is how rotation, heal and close wait out the pipeline
// before swapping or closing a segment file. No-op outside pipelined
// mode.
func (w *Writer) drainSync() {
	if w.syncC == nil {
		return
	}
	done := make(chan struct{})
	w.syncC <- syncReq{barrier: done}
	<-done
}

// markPoisoned flags the current segment after a failed write or sync:
// its tail may hold a torn frame, and nothing may be appended behind a
// tear (the reader stops at the first bad frame, so later records would
// be unreachable even if written intact).
func (w *Writer) markPoisoned() {
	w.mu.Lock()
	w.poisoned = true
	w.mu.Unlock()
}

// healForWrite returns the segment file to write to, first rotating
// away from a poisoned segment so acknowledged records never land
// behind a torn tail. If opening the next segment also fails, the
// append must fail rather than fall back to the poisoned file: an
// open can fail (fd or inode exhaustion) while writes to the already-
// open file would still succeed — and a write that succeeds behind a
// tear would be acknowledged yet unreadable on recovery. Caller holds
// ioMu.
func (w *Writer) healForWrite() (File, error) {
	w.mu.Lock()
	if !w.poisoned {
		f := w.f
		w.mu.Unlock()
		return f, nil
	}
	next := w.seg + 1
	w.mu.Unlock()
	// Let in-flight fsyncs on the poisoned segment finish before it is
	// retired: groups written before the tear still deserve their ack,
	// and groups behind it fail through the sync stage's failed-file
	// memory rather than against a closed descriptor.
	w.drainSync()
	nf, err := w.fs.OpenAppend(filepath.Join(w.dir, segmentName(next)))
	if err != nil {
		return nil, fmt.Errorf("wal: healing onto segment %d: %w", next, err)
	}
	w.mu.Lock()
	old := w.f
	w.f, w.seg, w.poisoned = nf, next, false
	w.mu.Unlock()
	_ = old.Close()
	if m := w.metrics.Load(); m != nil {
		m.rotations.Inc()
	}
	return nf, nil
}

// Rotate flushes and closes the current segment and starts the next
// one, returning the new segment's index: the snapshot cut point. Every
// record in segments below the returned index carries an LSN at or
// below any watermark read after Rotate returns, which is what makes
// deleting those segments after a successful snapshot safe.
func (w *Writer) Rotate() (int, error) {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	w.mu.Unlock()
	// Wait out the pipeline: every group already handed to the sync
	// stage completes against the retiring segment before it is swapped
	// or closed, and any fsync failure in that backlog has poisoned the
	// segment it actually hit by the time the state is read below.
	w.drainSync()
	w.mu.Lock()
	buf, waiters, old := w.pending, w.waiters, w.f
	poisoned := w.poisoned
	w.pending, w.waiters = nil, nil
	next := w.seg + 1
	f, err := w.fs.OpenAppend(filepath.Join(w.dir, segmentName(next)))
	if err != nil {
		w.mu.Unlock()
		rerr := fmt.Errorf("wal: rotating to segment %d: %w", next, err)
		if poisoned {
			// No fresh segment and the current one has a torn tail:
			// nothing may be written behind the tear, so the drained
			// group fails without touching the disk (its records were
			// never acknowledged).
			for _, ch := range waiters {
				ch <- rerr
			}
			return 0, rerr
		}
		// Keep writing the old segment; re-queue nothing (the pending
		// group stays drained below).
		if gerr := w.finishGroup(old, buf, waiters); gerr != nil {
			w.markPoisoned() // the old segment stays current — quarantine its tear
		}
		return 0, rerr
	}
	w.f, w.seg, w.poisoned = f, next, false
	w.mu.Unlock()

	// The drained group normally lands in the retiring segment, below
	// the cut. A poisoned segment ends in a torn frame the reader stops
	// at, so its group goes into the fresh segment instead — records at
	// or above the cut simply replay idempotently on recovery.
	target := old
	if poisoned {
		target = f
	}
	err = w.finishGroup(target, buf, waiters)
	if err != nil && poisoned {
		w.markPoisoned() // the failed write hit the new, current segment
	}
	if cerr := old.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: closing rotated segment: %w", cerr)
	}
	if err != nil {
		return 0, err
	}
	if m := w.metrics.Load(); m != nil {
		m.rotations.Inc()
	}
	return next, nil
}

// finishGroup writes a drained group to the given (old) segment and
// releases its waiters. Caller holds ioMu. Errors are not recorded as
// poison: they concern a segment that is being retired, not the one
// subsequent writes target.
func (w *Writer) finishGroup(f File, buf []byte, waiters []chan error) error {
	var err error
	if len(buf) > 0 {
		if _, werr := f.Write(buf); werr != nil {
			err = fmt.Errorf("wal: appending group: %w", werr)
		} else if serr := f.Sync(); serr != nil {
			err = fmt.Errorf("wal: syncing group: %w", serr)
		}
	}
	for _, ch := range waiters {
		ch <- err
	}
	return err
}

// Close drains pending records, syncs, and closes the segment. Appends
// after Close fail with ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if !w.opts.PerRecordSync {
		close(w.doneC)
		w.wg.Wait()
		if w.syncC != nil {
			// The flush loop is done, and ErrClosed gates new appends, so
			// no further hand-offs can happen: drain the sync stage and
			// stop it before the final sync+close below.
			close(w.syncC)
			w.syncWg.Wait()
		}
	}
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("wal: syncing on close: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	return nil
}
