package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gpunion/internal/db"
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: writer closed")

// Options tunes a Writer.
type Options struct {
	// GroupWindow is an extra delay the flusher waits after being woken
	// so more appenders can join the batch. Zero means natural
	// batching: the flusher syncs as soon as it can, and whatever
	// arrived while the previous fsync was in flight forms the next
	// group — no added latency, still one fsync per group.
	GroupWindow time.Duration
	// PerRecordSync disables group commit entirely: every Append does
	// its own write+fsync under the writer lock. This is the measured
	// baseline group commit is compared against; production uses group
	// commit.
	PerRecordSync bool
}

// Writer appends mutation records to log segments with group-committed
// fsync: concurrent Appends coalesce into one write+sync, and each
// Append returns only after its record is durable — the property that
// lets a store acknowledge a mutation as soon as (and only when) it
// cannot be lost.
type Writer struct {
	dir  string
	opts Options

	// ioMu serializes file I/O (flush, rotate) so a rotation never
	// races a flush onto a closed segment. Held across fsync.
	ioMu sync.Mutex
	// mu guards the queue and segment state. Never held across I/O, so
	// appenders keep enqueueing while a group fsync is in flight —
	// that queue *is* the next group.
	mu      sync.Mutex
	f       *os.File
	seg     int
	pending []byte
	waiters []chan error
	closed  bool

	flushC chan struct{}
	doneC  chan struct{}
	wg     sync.WaitGroup
}

// OpenWriter opens a Writer on dir, creating it if needed. A fresh
// segment is always started: the previous process's tail (possibly
// torn) is left untouched for the reader.
func OpenWriter(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	idx, err := segmentIndexes(dir)
	if err != nil {
		return nil, err
	}
	seg := 0
	if len(idx) > 0 {
		seg = idx[len(idx)-1] + 1
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment %d: %w", seg, err)
	}
	w := &Writer{
		dir:    dir,
		opts:   opts,
		f:      f,
		seg:    seg,
		flushC: make(chan struct{}, 1),
		doneC:  make(chan struct{}),
	}
	if !opts.PerRecordSync {
		w.wg.Add(1)
		go w.flushLoop()
	}
	return w, nil
}

// Dir returns the WAL directory.
func (w *Writer) Dir() string { return w.dir }

// Segment returns the index of the segment currently being written.
func (w *Writer) Segment() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg
}

// Append logs one record and blocks until it is durable (fsynced).
func (w *Writer) Append(m db.Mutation) error {
	frame, err := encodeRecord(m)
	if err != nil {
		return err
	}
	if w.opts.PerRecordSync {
		w.ioMu.Lock()
		defer w.ioMu.Unlock()
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return ErrClosed
		}
		f := w.f
		w.mu.Unlock()
		if _, err := f.Write(frame); err != nil {
			return fmt.Errorf("wal: appending record: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing record: %w", err)
		}
		return nil
	}

	done := make(chan error, 1)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.pending = append(w.pending, frame...)
	w.waiters = append(w.waiters, done)
	w.mu.Unlock()
	select {
	case w.flushC <- struct{}{}:
	default: // a flush is already scheduled; it will pick this record up
	}
	return <-done
}

// flushLoop is the single group-commit goroutine: each wakeup drains
// the queue accumulated so far, writes it in one syscall, fsyncs once,
// and releases every waiter in the group.
func (w *Writer) flushLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.flushC:
			if w.opts.GroupWindow > 0 {
				time.Sleep(w.opts.GroupWindow)
			}
			w.flush()
		case <-w.doneC:
			w.flush() // final drain
			return
		}
	}
}

// flush writes and syncs the current group, if any.
func (w *Writer) flush() {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	w.mu.Lock()
	buf, waiters, f := w.pending, w.waiters, w.f
	w.pending, w.waiters = nil, nil
	w.mu.Unlock()
	if len(buf) == 0 && len(waiters) == 0 {
		return
	}
	var err error
	if len(buf) > 0 {
		if _, werr := f.Write(buf); werr != nil {
			err = fmt.Errorf("wal: appending group: %w", werr)
		} else if serr := f.Sync(); serr != nil {
			err = fmt.Errorf("wal: syncing group: %w", serr)
		}
	}
	for _, ch := range waiters {
		ch <- err
	}
}

// Rotate flushes and closes the current segment and starts the next
// one, returning the new segment's index: the snapshot cut point. Every
// record in segments below the returned index carries an LSN at or
// below any watermark read after Rotate returns, which is what makes
// deleting those segments after a successful snapshot safe.
func (w *Writer) Rotate() (int, error) {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	buf, waiters, old := w.pending, w.waiters, w.f
	w.pending, w.waiters = nil, nil
	next := w.seg + 1
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Keep writing the old segment; re-queue nothing (the pending
		// group stays drained below).
		w.mu.Unlock()
		w.finishGroup(old, buf, waiters)
		return 0, fmt.Errorf("wal: rotating to segment %d: %w", next, err)
	}
	w.f, w.seg = f, next
	w.mu.Unlock()

	err = w.finishGroup(old, buf, waiters)
	if cerr := old.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: closing rotated segment: %w", cerr)
	}
	if err != nil {
		return 0, err
	}
	return next, nil
}

// finishGroup writes a drained group to the given (old) segment and
// releases its waiters. Caller holds ioMu.
func (w *Writer) finishGroup(f *os.File, buf []byte, waiters []chan error) error {
	var err error
	if len(buf) > 0 {
		if _, werr := f.Write(buf); werr != nil {
			err = fmt.Errorf("wal: appending group: %w", werr)
		} else if serr := f.Sync(); serr != nil {
			err = fmt.Errorf("wal: syncing group: %w", serr)
		}
	}
	for _, ch := range waiters {
		ch <- err
	}
	return err
}

// Close drains pending records, syncs, and closes the segment. Appends
// after Close fail with ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if !w.opts.PerRecordSync {
		close(w.doneC)
		w.wg.Wait()
	}
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("wal: syncing on close: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	return nil
}
