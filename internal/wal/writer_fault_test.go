package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// stubFS wraps OSFS with switchable write/sync faults, mirroring what
// the chaos harness injects in production scenarios.
type stubFS struct {
	mu         sync.Mutex
	syncErr    bool
	shortWrite bool
}

func (s *stubFS) set(syncErr, shortWrite bool) {
	s.mu.Lock()
	s.syncErr, s.shortWrite = syncErr, shortWrite
	s.mu.Unlock()
}

func (s *stubFS) OpenAppend(name string) (File, error) {
	f, err := OSFS{}.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &stubFile{File: f, fs: s}, nil
}

type stubFile struct {
	File
	fs *stubFS
}

var errInjected = errors.New("injected disk fault")

func (f *stubFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	short := f.fs.shortWrite
	f.fs.mu.Unlock()
	if short && len(p) > 1 {
		n, _ := f.File.Write(p[:len(p)/2]) // torn frame hits the disk
		return n, errInjected
	}
	return f.File.Write(p)
}

func (f *stubFile) Sync() error {
	f.fs.mu.Lock()
	bad := f.fs.syncErr
	f.fs.mu.Unlock()
	if bad {
		return errInjected
	}
	return f.File.Sync()
}

// TestWriterHealsAfterDiskFault proves the durability contract the
// chaos harness audits: every Append that returned nil is recoverable,
// even when earlier Appends failed with torn writes or fsync errors —
// the writer quarantines the poisoned segment and rotates before the
// next group.
func TestWriterHealsAfterDiskFault(t *testing.T) {
	for _, mode := range []struct {
		name               string
		syncErr, shortWrit bool
		perRecord          bool
	}{
		{"sync-error-group", true, false, false},
		{"short-write-group", false, true, false},
		{"sync-error-per-record", true, false, true},
		{"short-write-per-record", false, true, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			fs := &stubFS{}
			w := openWriter(t, dir, Options{FS: fs, PerRecordSync: mode.perRecord})

			var acked []uint64
			append1 := func(lsn uint64) error {
				err := w.Append(nodeMut(lsn, fmt.Sprintf("n%03d", lsn)))
				if err == nil {
					acked = append(acked, lsn)
				}
				return err
			}

			for lsn := uint64(1); lsn <= 5; lsn++ {
				if err := append1(lsn); err != nil {
					t.Fatalf("healthy append %d: %v", lsn, err)
				}
			}
			// Fault window: these appends must fail (never falsely acked).
			fs.set(mode.syncErr, mode.shortWrit)
			for lsn := uint64(6); lsn <= 8; lsn++ {
				if err := append1(lsn); err == nil {
					t.Fatalf("append %d acked during disk fault", lsn)
				}
			}
			// Disk heals: appends succeed again and must be recoverable
			// despite the poisoned segment tail in between.
			fs.set(false, false)
			for lsn := uint64(9); lsn <= 12; lsn++ {
				if err := append1(lsn); err != nil {
					t.Fatalf("post-heal append %d: %v", lsn, err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			recs, stats, err := ReadAll(dir)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[uint64]bool, len(recs))
			for _, r := range recs {
				got[r.LSN] = true
			}
			for _, lsn := range acked {
				if !got[lsn] {
					t.Errorf("acknowledged record %d lost (stats %+v)", lsn, stats)
				}
			}
			if stats.Segments < 2 {
				t.Errorf("expected a healing rotation, read %d segment(s)", stats.Segments)
			}
		})
	}
}

// TestRotateNeverWritesBehindTear: a Rotate that drains a pending
// group while the current segment is poisoned must not write that
// group behind the torn frame — the reader would stop at the tear and
// silently lose records Rotate acknowledged.
func TestRotateNeverWritesBehindTear(t *testing.T) {
	dir := t.TempDir()
	fs := &stubFS{}
	w := openWriter(t, dir, Options{FS: fs})

	if err := w.Append(nodeMut(1, "a")); err != nil {
		t.Fatal(err)
	}
	// Poison segment 0 with a genuinely torn frame.
	fs.set(false, true)
	if err := w.Append(nodeMut(2, "torn")); err == nil {
		t.Fatal("torn append acked")
	}
	fs.set(false, false)

	// Stage a pending group exactly as racing appenders would leave it
	// when Rotate wins the I/O lock before the flusher runs.
	frame, err := encodeRecord(nodeMut(3, "staged"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	w.mu.Lock()
	w.pending = append(w.pending, frame...)
	w.waiters = append(w.waiters, done)
	w.mu.Unlock()

	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("staged group not acked: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for _, r := range recs {
		got[r.LSN] = true
	}
	if !got[1] || !got[3] {
		t.Fatalf("acknowledged records lost behind the tear: got %v (stats %+v)", recs, stats)
	}
	if got[2] {
		t.Fatal("torn, unacknowledged record resurrected")
	}
}

// TestWriterStaysDownWhileFSDown: when even opening a fresh segment
// fails, appends keep failing (no false acks) and the writer recovers
// once the filesystem comes back.
func TestWriterStaysDownWhileFSDown(t *testing.T) {
	dir := t.TempDir()
	fs := &downFS{inner: &stubFS{}}
	w := openWriter(t, dir, Options{FS: fs, PerRecordSync: true})
	if err := w.Append(nodeMut(1, "a")); err != nil {
		t.Fatal(err)
	}
	fs.inner.set(true, false) // current segment fails
	fs.setDown(true)          // and no new segment can be opened
	for lsn := uint64(2); lsn <= 4; lsn++ {
		if err := w.Append(nodeMut(lsn, "b")); err == nil {
			t.Fatalf("append %d acked with filesystem down", lsn)
		}
	}
	fs.inner.set(false, false)
	fs.setDown(false)
	if err := w.Append(nodeMut(5, "c")); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	for _, r := range recs {
		lsns = append(lsns, r.LSN)
	}
	if len(recs) < 2 || recs[0].LSN != 1 || recs[len(recs)-1].LSN != 5 {
		t.Fatalf("recovered LSNs %v, want first=1 last=5", lsns)
	}
}

// downFS also fails OpenAppend while down.
type downFS struct {
	mu    sync.Mutex
	down  bool
	inner *stubFS
}

func (d *downFS) setDown(v bool) {
	d.mu.Lock()
	d.down = v
	d.mu.Unlock()
}

func (d *downFS) OpenAppend(name string) (File, error) {
	d.mu.Lock()
	down := d.down
	d.mu.Unlock()
	if down {
		return nil, errInjected
	}
	return d.inner.OpenAppend(name)
}
