package wal

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"gpunion/internal/db"
)

// newStandby returns an empty store plus its follower.
func newStandby(t *testing.T) (*db.DB, *Follower) {
	t.Helper()
	store := db.New(0)
	return store, NewFollower(store)
}

func TestShipperTailsAcrossRotations(t *testing.T) {
	dir := t.TempDir()
	w := openWriter(t, dir, Options{})
	s := NewShipper(dir)
	_, f := newStandby(t)

	lsn := uint64(0)
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			lsn++
			if err := w.Append(nodeMut(lsn, fmt.Sprintf("n%03d", lsn))); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendN(5)
	if err := f.Pump(s); err != nil {
		t.Fatal(err)
	}
	if f.AppliedLSN() != 5 {
		t.Fatalf("applied %d after first pump, want 5", f.AppliedLSN())
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(7)
	if err := f.Pump(s); err != nil {
		t.Fatal(err)
	}
	if f.AppliedLSN() != 12 {
		t.Fatalf("applied %d after rotation, want 12", f.AppliedLSN())
	}
	// Nothing new: Pump is a no-op.
	if err := f.Pump(s); err != nil {
		t.Fatal(err)
	}
	if f.Applied() != 12 {
		t.Fatalf("applied count %d, want 12", f.Applied())
	}
}

func TestFollowerReordersOutOfOrderBatches(t *testing.T) {
	_, f := newStandby(t)
	// LSN 2 arrives before LSN 1 (post-unlock hook reordering).
	if err := f.Offer([]db.Mutation{nodeMut(2, "b")}); err != nil {
		t.Fatal(err)
	}
	if f.AppliedLSN() != 0 {
		t.Fatalf("applied %d with a hole at 1, want 0", f.AppliedLSN())
	}
	if err := f.Offer([]db.Mutation{nodeMut(1, "a")}); err != nil {
		t.Fatal(err)
	}
	if f.AppliedLSN() != 2 {
		t.Fatalf("applied %d after hole filled, want 2", f.AppliedLSN())
	}
}

func TestFollowerDrainAppliesSortedWithHoles(t *testing.T) {
	store, f := newStandby(t)
	// LSN 2 is a permanent hole (its append failed on the leader); 4
	// and 3 arrive out of order. Drain must apply 3 then 4.
	if err := f.Offer([]db.Mutation{nodeMut(4, "x"), nodeMut(3, "x")}); err != nil {
		t.Fatal(err)
	}
	if err := f.Offer([]db.Mutation{nodeMut(1, "a")}); err != nil {
		t.Fatal(err)
	}
	if f.AppliedLSN() != 1 {
		t.Fatalf("applied %d before drain, want 1", f.AppliedLSN())
	}
	n, err := f.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("drained %d records, want 2", n)
	}
	if f.AppliedLSN() != 4 {
		t.Fatalf("applied %d after drain, want 4", f.AppliedLSN())
	}
	// Last-writer-wins: node x must reflect LSN 4's after-image, which
	// was offered first but applied last.
	st := store.ExportState()
	if st.Watermark < 4 {
		t.Fatalf("store watermark %d, want >= 4", st.Watermark)
	}
}

func TestShipperSkipsPoisonedSegmentTear(t *testing.T) {
	dir := t.TempDir()
	w := openWriter(t, dir, Options{})
	if err := w.Append(nodeMut(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt segment 0's tail, then add a later segment: the tear is
	// permanent and the shipper must skip past it to segment 1.
	seg0 := dir + "/" + segmentName(0)
	appendBytes(t, seg0, []byte{0xde, 0xad, 0xbe, 0xef})
	w2 := openWriter(t, dir, Options{})
	if err := w2.Append(nodeMut(2, "b")); err != nil {
		t.Fatal(err)
	}
	s := NewShipper(dir)
	_, f := newStandby(t)
	if err := f.Pump(s); err != nil {
		t.Fatal(err)
	}
	if f.AppliedLSN() != 2 {
		t.Fatalf("applied %d, want 2 (tear skipped)", f.AppliedLSN())
	}
}

func TestShipperRetriesTornTailOnLatestSegment(t *testing.T) {
	dir := t.TempDir()
	w := openWriter(t, dir, Options{})
	if err := w.Append(nodeMut(1, "a")); err != nil {
		t.Fatal(err)
	}
	// Simulate a flush in flight: a partial frame at the latest
	// segment's tail. The shipper must hold its cursor and deliver the
	// frame once it completes.
	seg := dir + "/" + segmentName(0)
	frame, err := encodeRecord(nodeMut(2, "b"))
	if err != nil {
		t.Fatal(err)
	}
	appendBytes(t, seg, frame[:5])
	s := NewShipper(dir)
	recs, err := s.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("got %d records before tail completes", len(recs))
	}
	appendBytes(t, seg, frame[5:])
	recs, err = s.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 2 {
		t.Fatalf("completed tail not delivered: %+v", recs)
	}
	_ = w.Close()
}

func TestPumpResolvesSnapshotGap(t *testing.T) {
	dir := t.TempDir()
	leader := db.New(0)
	mgr, err := Open(dir, leader, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	for i := 0; i < 10; i++ {
		leader.UpsertNode(db.NodeRecord{ID: fmt.Sprintf("n%02d", i), Status: db.NodeActive})
	}
	s := NewShipper(dir)
	_, f := newStandby(t)
	if err := f.Pump(s); err != nil {
		t.Fatal(err)
	}
	caughtUp := f.AppliedLSN()
	// Checkpoint truncates the shipped segments out from under the
	// cursor; a caught-up follower skips to the surviving log.
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	leader.UpsertNode(db.NodeRecord{ID: "after", Status: db.NodeActive})
	if err := f.Pump(s); err != nil {
		t.Fatal(err)
	}
	if f.AppliedLSN() <= caughtUp {
		t.Fatalf("applied %d after gap, want > %d", f.AppliedLSN(), caughtUp)
	}
}

func TestPumpResyncsWhenBehindSnapshot(t *testing.T) {
	dir := t.TempDir()
	leader := db.New(0)
	mgr, err := Open(dir, leader, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	for i := 0; i < 10; i++ {
		leader.UpsertNode(db.NodeRecord{ID: fmt.Sprintf("n%02d", i), Status: db.NodeActive})
	}
	// The follower never pumped before the checkpoint: the truncated
	// records are gone from the log, so Pump must fall back to a full
	// resync from snapshot + surviving log.
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	leader.UpsertNode(db.NodeRecord{ID: "after", Status: db.NodeActive})
	s := NewShipper(dir)
	standby, f := newStandby(t)
	// Prime the cursor on the pre-checkpoint listing order by polling
	// once after the checkpoint: the oldest segment is already the
	// surviving one, so force the gap by pointing the cursor below it.
	s.mu.Lock()
	s.seg, s.off, s.primed = -1, 0, true
	s.mu.Unlock()
	if err := f.Pump(s); err != nil {
		t.Fatal(err)
	}
	st := standby.ExportState()
	if len(st.Nodes) != 11 {
		t.Fatalf("standby has %d nodes after resync, want 11", len(st.Nodes))
	}
}

func TestGapErrorIsTyped(t *testing.T) {
	var gap *GapError
	err := error(&GapError{Watermark: 7})
	if !errors.As(err, &gap) || gap.Watermark != 7 {
		t.Fatalf("GapError does not round-trip through errors.As")
	}
}

// appendBytes appends raw bytes to a segment file, simulating torn or
// in-flight writes.
func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
