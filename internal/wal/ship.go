package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gpunion/internal/db"
)

// Shipper tails a WAL directory incrementally: each Poll decodes the
// complete frames appended since the previous Poll, across segment
// rotations, and returns them in log order. It is the leader side of
// log shipping — the standby applies what Poll returns through a
// Follower.
//
// The shipper reads the same CRC-framed segments the recovery path
// reads, so every torn-tail rule carries over: a torn tail on the
// *latest* segment may be a group flush in flight and is retried on
// the next Poll (the cursor does not advance past it); a torn tail on
// a segment that already has a successor is permanent (the writer
// poisoned the segment and healed onto the next one — the torn frame
// was never acknowledged), so the shipper skips past it.
//
// A snapshot truncation that removes the cursor's segment surfaces as
// *GapError: the truncated records exist only in the snapshot now, and
// the caller decides whether the follower already has them (applied
// LSN at or above the snapshot watermark) or needs a full resync.
type Shipper struct {
	dir string

	mu     sync.Mutex
	seg    int   // segment index the cursor is on
	off    int64 // bytes of complete frames consumed in seg
	primed bool  // cursor initialized from the first Poll's listing
}

// GapError reports that log shipping hit a snapshot truncation: the
// cursor's segment was deleted, so records up to Watermark are only
// available via the snapshot.
type GapError struct {
	// Watermark is the truncating snapshot's LSN watermark; every
	// truncated record has an LSN at or below it.
	Watermark uint64
}

// Error implements the error interface.
func (e *GapError) Error() string {
	return fmt.Sprintf("wal: shipped-past segments truncated by snapshot (watermark %d)", e.Watermark)
}

// NewShipper tails the WAL segments in dir, starting from the oldest
// segment present at the first Poll.
func NewShipper(dir string) *Shipper {
	return &Shipper{dir: dir}
}

// Dir returns the directory being tailed.
func (s *Shipper) Dir() string { return s.dir }

// Poll returns every complete record appended since the last Poll, in
// log order. A nil slice with a nil error means nothing new. On
// *GapError the cursor has not moved; resolve via SkipToOldest (records
// already covered) or a full resync, then Poll again.
func (s *Shipper) Poll() ([]db.Mutation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := segmentIndexes(s.dir)
	if err != nil {
		return nil, err
	}
	if len(idx) == 0 {
		return nil, nil
	}
	if !s.primed {
		s.seg, s.off, s.primed = idx[0], 0, true
	}
	if s.seg < idx[0] {
		// The cursor's segment was truncated by a snapshot. Report the
		// snapshot's watermark so the caller can tell whether the
		// follower already holds everything the lost segments held.
		st, ok, err := readSnapshotFile(s.dir)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, &GapError{}
		}
		return nil, &GapError{Watermark: st.Watermark}
	}
	var out []db.Mutation
	for pos := 0; pos < len(idx); pos++ {
		i := idx[pos]
		if i < s.seg {
			continue
		}
		if i > s.seg {
			// Finished (or skipped past) the previous segment; start the
			// next one from its beginning.
			s.seg, s.off = i, 0
		}
		data, err := os.ReadFile(filepath.Join(s.dir, segmentName(s.seg)))
		if err != nil {
			if os.IsNotExist(err) {
				// Deleted between listing and read (racing truncation);
				// the next Poll sees the gap, if any remains.
				continue
			}
			return out, fmt.Errorf("wal: shipping segment %d: %w", s.seg, err)
		}
		if int64(len(data)) < s.off {
			// Append-only segments never shrink; a shorter file means the
			// segment was replaced out from under us.
			return out, fmt.Errorf("wal: segment %d shrank under the shipper", s.seg)
		}
		recs, consumed, torn := decodeFramesConsumed(data[s.off:])
		out = append(out, recs...)
		s.off += int64(consumed)
		if torn && pos == len(idx)-1 {
			// The latest segment's tail may be a flush in flight: leave
			// the cursor at the last complete frame and retry next Poll.
			break
		}
		// torn with a successor segment: the writer poisoned this segment
		// and healed onto the next; the torn bytes were never
		// acknowledged, so falling through to the next index skips them.
	}
	return out, nil
}

// LagBytes reports how many on-disk log bytes the cursor has not yet
// consumed: the unread remainder of the cursor's segment plus every
// later segment, in full. This is the shipping backlog an operator
// watches — a growing value means the standby is falling behind the
// leader's append rate. Before the first Poll primes the cursor, the
// entire log counts as lag.
func (s *Shipper) LagBytes() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := segmentIndexes(s.dir)
	if err != nil {
		return 0, err
	}
	var lag int64
	for _, i := range idx {
		if s.primed && i < s.seg {
			continue
		}
		fi, err := os.Stat(filepath.Join(s.dir, segmentName(i)))
		if err != nil {
			if os.IsNotExist(err) {
				continue // truncated between listing and stat
			}
			return 0, err
		}
		sz := fi.Size()
		if s.primed && i == s.seg {
			sz -= s.off
			if sz < 0 {
				sz = 0
			}
		}
		lag += sz
	}
	return lag, nil
}

// SkipToOldest moves the cursor to the start of the oldest segment now
// present. Callers use it to resolve a *GapError after confirming the
// follower already holds everything the truncated segments held.
func (s *Shipper) SkipToOldest() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := segmentIndexes(s.dir)
	if err != nil {
		return err
	}
	if len(idx) == 0 {
		s.primed = false
		return nil
	}
	s.seg, s.off, s.primed = idx[0], 0, true
	return nil
}

// Follower applies shipped records to a standby store in strict LSN
// order. LSNs are dense (the store allocates them with a +1 counter and
// every mutation is logged exactly once), so the follower applies the
// contiguous run starting at its applied watermark and buffers
// out-of-order arrivals — the group-commit queue and post-unlock hook
// calls can legally write records slightly out of LSN order, and
// after-images must land last-writer-wins (see Recover, which sorts for
// the same reason).
type Follower struct {
	store db.Store

	mu      sync.Mutex
	applied uint64                 // highest LSN applied, contiguously from bootstrap
	count   int                    // records applied in total
	pending map[uint64]db.Mutation // out-of-order arrivals awaiting their predecessors
}

// NewFollower wraps a standby store. Bootstrap the store first (e.g.
// wal.Recover from the leader's directory, or start empty and ship from
// the first segment); the follower resumes from the store's current LSN
// watermark.
func NewFollower(store db.Store) *Follower {
	return &Follower{store: store, applied: store.ExportState().Watermark, pending: map[uint64]db.Mutation{}}
}

// AppliedLSN returns the highest contiguously applied LSN.
func (f *Follower) AppliedLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Applied returns how many records have been applied in total.
func (f *Follower) Applied() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// Offer feeds shipped records to the standby: records at or below the
// applied watermark are duplicates (re-shipped segment prefixes) and
// dropped; the contiguous run above it is applied immediately; anything
// further ahead is buffered until its predecessors arrive.
func (f *Follower) Offer(recs []db.Mutation) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range recs {
		if m.LSN <= f.applied {
			continue
		}
		f.pending[m.LSN] = m
	}
	return f.applyContiguousLocked()
}

func (f *Follower) applyContiguousLocked() error {
	for {
		m, ok := f.pending[f.applied+1]
		if !ok {
			return nil
		}
		if err := f.store.Apply(m); err != nil {
			return err
		}
		delete(f.pending, m.LSN)
		f.applied = m.LSN
		f.count++
	}
}

// Drain force-applies every buffered record in LSN order, holes
// included, and returns how many it applied. This is the promotion
// step: an LSN hole at drain time is a record that was never durably
// logged on the old leader (its append failed — the operator was told
// durability was lost), so waiting for it is waiting forever. Sorting
// before applying preserves last-writer-wins, exactly as Recover does.
func (f *Follower) Drain() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.pending) == 0 {
		return 0, nil
	}
	lsns := make([]uint64, 0, len(f.pending))
	for lsn := range f.pending {
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	n := 0
	for _, lsn := range lsns {
		m := f.pending[lsn]
		if err := f.store.Apply(m); err != nil {
			return n, err
		}
		delete(f.pending, lsn)
		if lsn > f.applied {
			f.applied = lsn
		}
		f.count++
		n++
	}
	return n, nil
}

// Pump is the standard shipping step: Poll the shipper and Offer the
// result, resolving snapshot-truncation gaps automatically — if the
// follower's applied watermark already covers the truncating snapshot,
// the cursor skips to the oldest surviving segment; otherwise the
// standby has fallen behind what the log still holds and is
// re-bootstrapped wholesale from the leader directory (snapshot +
// replay through Recover).
func (f *Follower) Pump(s *Shipper) error {
	for attempt := 0; ; attempt++ {
		recs, err := s.Poll()
		if err == nil {
			return f.Offer(recs)
		}
		var gap *GapError
		if !errors.As(err, &gap) || attempt > 0 {
			return err
		}
		if gap.Watermark <= f.AppliedLSN() {
			if err := s.SkipToOldest(); err != nil {
				return err
			}
			continue
		}
		if err := f.Resync(s.Dir()); err != nil {
			return err
		}
		if err := s.SkipToOldest(); err != nil {
			return err
		}
	}
}

// Resync re-bootstraps the standby from the leader's directory: import
// the snapshot and replay the surviving log through Recover, then reset
// the follower's watermark to the store's. Used when shipping fell so
// far behind that a snapshot truncated records the follower never saw.
func (f *Follower) Resync(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := Recover(dir, f.store); err != nil {
		return err
	}
	f.applied = f.store.ExportState().Watermark
	f.pending = map[uint64]db.Mutation{}
	return nil
}
