package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpunion/internal/db"
)

func walDirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		info, err := os.Stat(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// TestBeatDeltaByteGrowth pins the whole point of the MutBeat encoding:
// an idle steady-state fleet — every beat a pure LastHeartbeat advance —
// must grow the log by compact per-node deltas, not by a full node
// after-image (GPU inventory included) per beat. The test drives the
// same beat traffic through both regimes over identical fleets and
// requires the delta log to stay an order of magnitude smaller, with a
// hard per-delta byte ceiling so record-size growth (bigger GPU lists)
// cannot creep back in.
func TestBeatDeltaByteGrowth(t *testing.T) {
	const fleet, rounds = 64, 20
	baseTime := time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

	newFleet := func(dir string) *db.DB {
		store := db.New(0)
		mgr, err := Open(dir, store, Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = mgr.Close() })
		for i := 0; i < fleet; i++ {
			gpus := make([]db.GPUInfo, 4)
			for g := range gpus {
				gpus[g] = db.GPUInfo{
					DeviceID: fmt.Sprintf("gpu%d", g), Model: "NVIDIA GeForce RTX 3090",
					Arch: "ampere", MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6,
				}
			}
			store.UpsertNode(db.NodeRecord{
				ID: fmt.Sprintf("node-%03d", i), Addr: fmt.Sprintf("inproc://node-%03d", i),
				Status: db.NodeActive, GPUs: gpus, Kernel: "5.15",
				Storage: 1 << 40, RegisteredAt: baseTime, LastHeartbeat: baseTime,
			})
		}
		return store
	}

	// Regime A: the old write path — one full after-image per beat.
	dirA := t.TempDir()
	storeA := newFleet(dirA)
	grewFrom := walDirBytes(t, dirA)
	for r := 1; r <= rounds; r++ {
		at := baseTime.Add(time.Duration(r) * 30 * time.Second)
		for i := 0; i < fleet; i++ {
			if err := storeA.UpdateNode(fmt.Sprintf("node-%03d", i), func(n *db.NodeRecord) {
				n.LastHeartbeat = at
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	fullGrowth := walDirBytes(t, dirA) - grewFrom

	// Regime B: the same beats coalesced into MutBeat deltas.
	dirB := t.TempDir()
	storeB := newFleet(dirB)
	grewFrom = walDirBytes(t, dirB)
	for r := 1; r <= rounds; r++ {
		at := baseTime.Add(time.Duration(r) * 30 * time.Second)
		batch := make([]db.BeatDelta, 0, fleet)
		for i := 0; i < fleet; i++ {
			batch = append(batch, db.BeatDelta{NodeID: fmt.Sprintf("node-%03d", i), At: at})
		}
		if applied := storeB.TouchNodes(batch); applied != fleet {
			t.Fatalf("round %d: applied %d of %d deltas", r, applied, fleet)
		}
	}
	deltaGrowth := walDirBytes(t, dirB) - grewFrom

	if deltaGrowth <= 0 || fullGrowth <= 0 {
		t.Fatalf("no measurable growth: full=%d delta=%d", fullGrowth, deltaGrowth)
	}
	if deltaGrowth*8 > fullGrowth {
		t.Fatalf("delta log not compact: %d bytes vs %d for full after-images (want ≥8x smaller)",
			deltaGrowth, fullGrowth)
	}
	perDelta := deltaGrowth / (rounds * fleet)
	if perDelta > 120 {
		t.Fatalf("per-beat delta costs %d bytes on disk, want ≤120 — after-image fields leaking into MutBeat?",
			perDelta)
	}
}
