package wal

import (
	"fmt"
	"log"
	"sync"
	"time"

	"gpunion/internal/db"
)

// Config tunes a Manager.
type Config struct {
	// GroupWindow is the group-commit accumulation window (see
	// Options.GroupWindow); zero is natural batching.
	GroupWindow time.Duration
	// PerRecordSync forces an fsync per record (baseline mode).
	PerRecordSync bool
	// SnapshotInterval is the background checkpoint period; zero means
	// snapshots happen only via Checkpoint.
	SnapshotInterval time.Duration
	// OnDurable, when non-nil, is invoked after a mutation is durably
	// logged but before the store acknowledges it to its caller. It is
	// the semi-synchronous replication hook: a harness that ships the
	// record to a standby inside OnDurable guarantees "acknowledged ⇒
	// on the standby", which is what the zero-lost-acked-mutations
	// invariant needs across a leader kill. May be called concurrently
	// (one call per committing goroutine).
	OnDurable func(db.Mutation)
	// OnAppendError is invoked the moment logging a mutation fails —
	// the store has already applied the mutation in memory, so from
	// that record on the process is running non-durable and the
	// operator must know *now*, not at Close. Nil logs via the standard
	// logger. The error also stays readable through Err.
	OnAppendError func(error)
	// FS opens log segment files (nil = the real filesystem); the
	// chaos harness injects disk faults through it.
	FS FS
}

// Manager ties a store to its WAL directory: Open recovers the store
// from snapshot + log, installs the mutation hook so every subsequent
// commit is group-logged before it is acknowledged, and runs the
// background snapshotter.
type Manager struct {
	store  db.Store
	writer *Writer
	snap   *Snapshotter
	// Recovery reports what Open restored.
	Recovery RecoveryResult

	mu        sync.Mutex
	appendErr error
	closeOnce sync.Once
	closeErr  error
}

// Open recovers store from dir and starts logging its mutations there.
func Open(dir string, store db.Store, cfg Config) (*Manager, error) {
	res, err := Recover(dir, store)
	if err != nil {
		return nil, err
	}
	w, err := OpenWriter(dir, Options{GroupWindow: cfg.GroupWindow, PerRecordSync: cfg.PerRecordSync, FS: cfg.FS})
	if err != nil {
		return nil, err
	}
	m := &Manager{store: store, writer: w, snap: NewSnapshotter(store, w), Recovery: res}
	onErr := cfg.OnAppendError
	if onErr == nil {
		onErr = func(err error) { log.Printf("wal: DURABILITY LOST, mutation not logged: %v", err) }
	}
	store.SetMutationHook(func(mut db.Mutation) {
		if err := w.Append(mut); err != nil {
			m.mu.Lock()
			m.appendErr = err
			m.mu.Unlock()
			onErr(err)
			return
		}
		if cfg.OnDurable != nil {
			cfg.OnDurable(mut)
		}
	})
	m.snap.Start(cfg.SnapshotInterval)
	return m, nil
}

// Writer exposes the underlying log writer (diagnostics and tests).
func (m *Manager) Writer() *Writer { return m.writer }

// Checkpoint takes one snapshot now and truncates obsolete segments.
func (m *Manager) Checkpoint() error { return m.snap.Snapshot() }

// Err surfaces the most recent append or snapshot failure, if any.
func (m *Manager) Err() error {
	m.mu.Lock()
	err := m.appendErr
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return m.snap.Err()
}

// Close detaches the hook, stops the snapshotter and closes the log.
// Records appended before Close remain durable; no final snapshot is
// taken (recovery replays the tail), so Close doubles as the "crash"
// boundary in tests that only guarantee what fsync guaranteed.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		m.store.SetMutationHook(nil)
		m.snap.Stop()
		m.closeErr = m.writer.Close()
		if m.closeErr == nil {
			if err := m.Err(); err != nil {
				m.closeErr = fmt.Errorf("wal: deferred failure: %w", err)
			}
		}
	})
	return m.closeErr
}
