package wal

import (
	"testing"

	"gpunion/internal/db"
)

// fuzzSeedFrames builds the torn-tail fixture family the reader tests
// use: intact frames, truncations at every interesting boundary, CRC
// damage, and hostile length fields.
func fuzzSeedFrames(f *testing.F) {
	one := encodedF(f, nodeMut(1, "a"))
	two := encodedF(f, nodeMut(1, "a"), nodeMut(2, "b"))

	f.Add([]byte{})
	f.Add(one)
	f.Add(two)
	// Torn tails: the second record cut at the header, mid-header,
	// first payload byte, and one byte short of complete.
	f.Add(two[:len(one)+1])
	f.Add(two[:len(one)+frameHeaderSize-1])
	f.Add(two[:len(one)+frameHeaderSize+1])
	f.Add(two[:len(two)-1])
	// CRC damage on the last record.
	crc := append([]byte{}, two...)
	crc[len(crc)-1] ^= 0xFF
	f.Add(crc)
	// Hostile length field: claims more than maxRecordSize.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 'x'})
	// Trailing garbage behind a good record.
	f.Add(append(append([]byte{}, one...), 0xDE, 0xAD, 0xBE, 0xEF))
}

func encodedF(f *testing.F, muts ...db.Mutation) []byte {
	f.Helper()
	var buf []byte
	for _, m := range muts {
		frame, err := encodeRecord(m)
		if err != nil {
			f.Fatal(err)
		}
		buf = append(buf, frame...)
	}
	return buf
}

// FuzzReaderFrame hammers the segment decoder with corrupt and
// truncated inputs. Properties:
//
//  1. decodeFrames never panics and never invents records from noise
//     that fails the CRC;
//  2. decoded records survive an encode/decode round trip;
//  3. prepending intact frames never loses them: whatever damage
//     follows, the good prefix always decodes (the torn-tail recovery
//     guarantee).
func FuzzReaderFrame(f *testing.F) {
	fuzzSeedFrames(f)
	goodPrefix := encodedF(f, nodeMut(101, "p1"), nodeMut(102, "p2"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, torn := decodeFrames(data)

		// Round-trip: every decoded record re-encodes and re-decodes
		// to the same LSN sequence, with no tear.
		var reenc []byte
		for _, m := range recs {
			frame, err := encodeRecord(m)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
			reenc = append(reenc, frame...)
		}
		again, tornAgain := decodeFrames(reenc)
		if tornAgain {
			t.Fatal("re-encoded stream reads as torn")
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip decoded %d of %d records", len(again), len(recs))
		}
		for i := range recs {
			if again[i].LSN != recs[i].LSN || again[i].Type != recs[i].Type {
				t.Fatalf("round trip diverged at %d: %+v vs %+v", i, recs[i], again[i])
			}
		}

		// A clean decode never yields more framed bytes than it read
		// (it may yield fewer: JSON decoding drops unknown fields a
		// hand-crafted valid-CRC payload could carry).
		if !torn && len(reenc) > len(data) {
			t.Fatalf("clean decode re-encodes to %d bytes from %d", len(reenc), len(data))
		}

		// Intact prefix is never lost, whatever follows it.
		recs2, _ := decodeFrames(append(append([]byte{}, goodPrefix...), data...))
		if len(recs2) < 2 || recs2[0].LSN != 101 || recs2[1].LSN != 102 {
			t.Fatalf("good prefix lost: decoded %d records", len(recs2))
		}
	})
}
