package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gpunion/internal/db"
)

func nodeMut(lsn uint64, id string) db.Mutation {
	return db.Mutation{LSN: lsn, Type: db.MutNodePut,
		Node: &db.NodeRecord{ID: id, Status: db.NodeActive}}
}

func openWriter(t *testing.T, dir string, opts Options) *Writer {
	t.Helper()
	w, err := OpenWriter(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestWriterReaderRoundTrip(t *testing.T) {
	for _, mode := range []Options{{}, {PerRecordSync: true}, {GroupWindow: time.Millisecond}} {
		t.Run(fmt.Sprintf("%+v", mode), func(t *testing.T) {
			dir := t.TempDir()
			w := openWriter(t, dir, mode)
			for i := 1; i <= 20; i++ {
				if err := w.Append(nodeMut(uint64(i), fmt.Sprintf("n%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			recs, stats, err := ReadAll(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 20 || stats.TornTails != 0 {
				t.Fatalf("read %d records, %d torn tails", len(recs), stats.TornTails)
			}
			for i, r := range recs {
				if r.LSN != uint64(i+1) {
					t.Fatalf("record %d has LSN %d", i, r.LSN)
				}
			}
		})
	}
}

func TestConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w := openWriter(t, dir, Options{})
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn := uint64(g*per + i + 1)
				if err := w.Append(nodeMut(lsn, fmt.Sprintf("n%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*per {
		t.Fatalf("read %d of %d records", len(recs), writers*per)
	}
}

// writeSegment hand-crafts segment 0 from the given frames/bytes.
func writeSegment(t *testing.T, dir string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, segmentName(0)), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func encoded(t *testing.T, muts ...db.Mutation) []byte {
	t.Helper()
	var buf []byte
	for _, m := range muts {
		frame, err := encodeRecord(m)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, frame...)
	}
	return buf
}

func TestReadTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	good := encoded(t, nodeMut(1, "a"), nodeMut(2, "b"))
	torn := encoded(t, nodeMut(3, "c"))
	// Tear the last record at every possible byte boundary: header cut
	// short, payload cut short, even a single trailing byte.
	for cut := 1; cut < len(torn); cut++ {
		writeSegment(t, dir, append(append([]byte{}, good...), torn[:cut]...))
		recs, stats, err := ReadAll(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || stats.TornTails != 1 {
			t.Fatalf("cut=%d: recovered %d records, %d torn", cut, len(recs), stats.TornTails)
		}
		if recs[1].LSN != 2 {
			t.Fatalf("cut=%d: last good record LSN %d", cut, recs[1].LSN)
		}
	}
}

func TestReadCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	data := encoded(t, nodeMut(1, "a"), nodeMut(2, "b"))
	data[len(data)-1] ^= 0xFF // flip a payload byte of the last record
	writeSegment(t, dir, data)
	recs, stats, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 || stats.TornTails != 1 {
		t.Fatalf("recovered %d records (torn=%d), want the 1 good one", len(recs), stats.TornTails)
	}
}

func TestReadEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	writeSegment(t, dir, nil) // empty segment: clean, zero records
	recs, stats, err := ReadAll(dir)
	if err != nil || len(recs) != 0 || stats.TornTails != 0 {
		t.Fatalf("empty segment: recs=%d stats=%+v err=%v", len(recs), stats, err)
	}
	// Missing directory is a clean empty log, not an error.
	recs, _, err = ReadAll(filepath.Join(dir, "nope"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing dir: recs=%d err=%v", len(recs), err)
	}
}

func TestTornTailOnlyHidesUnacknowledged(t *testing.T) {
	// A tear in an old segment must not swallow later segments: boot
	// always starts a new segment, so records after the tear live in
	// files of their own.
	dir := t.TempDir()
	w := openWriter(t, dir, Options{})
	if err := w.Append(nodeMut(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulated crash damage on segment 0's tail.
	path := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, 0xDE, 0xAD), 0o644); err != nil {
		t.Fatal(err)
	}
	// Next boot writes segment 1.
	w2 := openWriter(t, dir, Options{})
	if err := w2.Append(nodeMut(2, "b")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || stats.TornTails != 1 || stats.Segments != 2 {
		t.Fatalf("recs=%d stats=%+v", len(recs), stats)
	}
}

// populate drives a store through its public mutators so the hook
// logs. Records span [base, base+n); allocation episodes get distinct
// start times, as they do under any real clock.
func populate(store db.Store, base, n int) {
	for i := base; i < base+n; i++ {
		store.UpsertNode(db.NodeRecord{ID: fmt.Sprintf("node-%02d", i), Status: db.NodeActive})
		_ = store.InsertJob(db.JobRecord{ID: fmt.Sprintf("job-%03d", i), State: db.JobPending, ImageName: "img"})
		store.RecordAllocation(db.AllocationRecord{JobID: fmt.Sprintf("job-%03d", i),
			NodeID: "node-00", DeviceID: "gpu0", Start: time.Unix(int64(base*1000+i), 0).UTC()})
	}
}

func TestManagerRecoverRoundTrip(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func() db.Store
	}{
		{"sharded", func() db.Store { return db.New(0) }},
		{"singlemutex", func() db.Store { return db.NewSingleMutex(0) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			dir := t.TempDir()
			live := mk.new()
			m, err := Open(dir, live, Config{})
			if err != nil {
				t.Fatal(err)
			}
			populate(live, 0, 10)
			if err := m.Checkpoint(); err != nil { // snapshot mid-history
				t.Fatal(err)
			}
			// Tail beyond the snapshot: fresh records plus overlapping
			// re-puts of nodes 5-9 (idempotent after-images).
			populate(live, 5, 15)
			_ = live.UpdateJob("job-003", func(j *db.JobRecord) { j.State = db.JobRunning })
			_ = live.CloseAllocation("job-004", time.Now().UTC())
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}

			recovered := mk.new()
			res, err := Recover(dir, recovered)
			if err != nil {
				t.Fatal(err)
			}
			if !res.SnapshotLoaded || res.Replayed == 0 {
				t.Fatalf("recovery stats: %+v", res)
			}
			want, got := live.ExportState(), recovered.ExportState()
			if !statesEqual(want, got) {
				t.Fatalf("recovered state differs:\nwant %+v\ngot  %+v", want, got)
			}
			if recovered.CurrentLSN() != live.CurrentLSN() {
				t.Fatalf("LSN %d != %d", recovered.CurrentLSN(), live.CurrentLSN())
			}
		})
	}
}

func TestSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	store := db.New(0)
	m, err := Open(dir, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	populate(store, 0, 20)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	idx, err := segmentIndexes(dir)
	if err != nil {
		t.Fatal(err)
	}
	cur := m.Writer().Segment()
	for _, i := range idx {
		if i < cur {
			t.Fatalf("segment %d survived the snapshot cut at %d", i, cur)
		}
	}
	// Everything still recovers from snapshot alone.
	recovered := db.New(0)
	res, err := Recover(dir, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotLoaded || len(recovered.ListNodes()) != 20 {
		t.Fatalf("post-truncation recovery: %+v nodes=%d", res, len(recovered.ListNodes()))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func statesEqual(a, b db.State) bool {
	// Watermarks legitimately differ (export time vs recovery);
	// content equality is what matters.
	a.Watermark, b.Watermark = 0, 0
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}
