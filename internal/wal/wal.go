// Package wal is GPUnion's durability layer: an append-only,
// group-committed write-ahead log of the system database's typed
// mutation records, plus an asynchronous snapshotter that checkpoints
// the sharded store in the background and truncates the log.
//
// Layout of a WAL directory:
//
//	snapshot.json   latest checkpoint (atomically replaced via rename)
//	wal-%08d.log    log segments; a new segment starts on every boot
//	                and on every snapshot cut
//
// Each segment is a sequence of CRC-framed records:
//
//	[uint32 payload length][uint32 CRC-32C of payload][payload JSON]
//
// (little-endian header). A crash can tear the tail of the last frame a
// process was writing; the reader detects this — short header, short
// payload, length out of range, CRC mismatch, undecodable JSON — and
// recovers every record up to the tear, never failing the whole log.
// Torn records were never acknowledged (acknowledgement follows fsync),
// so dropping them is correct, not lossy.
//
// Recovery = load snapshot.json (a fuzzy, per-shard checkpoint with an
// LSN watermark) + replay all logged records above the watermark in LSN
// order through the store's idempotent Apply. See db.State for why the
// fuzzy snapshot plus idempotent replay converges.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gpunion/internal/db"
)

// castagnoli is the CRC-32C table (the polynomial storage systems use;
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the fixed per-record framing overhead.
const frameHeaderSize = 8

// maxRecordSize bounds one record's payload; a corrupt length field
// larger than this is classified as a torn tail instead of driving a
// giant allocation.
const maxRecordSize = 64 << 20

// appendFrame encodes one payload as a length+CRC framed record.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// encodeRecord frames one mutation record.
func encodeRecord(m db.Mutation) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding record: %w", err)
	}
	return appendFrame(nil, payload), nil
}

// decodeFrames parses framed records from a segment's bytes. It returns
// the decoded records and whether the segment ends in a torn tail
// (anything from a clean EOF mismatch to a CRC failure); records before
// the tear are always returned.
func decodeFrames(data []byte) (recs []db.Mutation, torn bool) {
	recs, _, torn = decodeFramesConsumed(data)
	return recs, torn
}

// decodeFramesConsumed is decodeFrames plus the byte length of the
// complete frames decoded — the cursor advance an incremental reader
// (the Shipper) needs: a torn tail's bytes are not consumed, so the
// next read retries them once the writer has finished (or healed past)
// the frame.
func decodeFramesConsumed(data []byte) (recs []db.Mutation, consumed int, torn bool) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeaderSize {
			return recs, off, true
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxRecordSize || length > len(data)-off-frameHeaderSize {
			return recs, off, true
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+length]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off, true
		}
		var m db.Mutation
		if err := json.Unmarshal(payload, &m); err != nil {
			return recs, off, true
		}
		recs = append(recs, m)
		off += frameHeaderSize + length
	}
	return recs, off, false
}

// segmentPrefix and segmentSuffix bracket the zero-padded segment index.
const (
	segmentPrefix = "wal-"
	segmentSuffix = ".log"
)

// segmentName returns the file name of segment i.
func segmentName(i int) string {
	return fmt.Sprintf("%s%08d%s", segmentPrefix, i, segmentSuffix)
}

// segmentIndexes lists the indexes of the WAL segments present in dir,
// ascending. Unparseable names are ignored.
func segmentIndexes(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var idx []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		var i int
		if _, err := fmt.Sscanf(name, segmentPrefix+"%d"+segmentSuffix, &i); err == nil {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// ReadStats summarizes one ReadAll pass.
type ReadStats struct {
	// Segments is how many log segments were read.
	Segments int
	// Records is how many intact records were decoded.
	Records int
	// TornTails counts segments that ended in a torn or corrupt frame
	// (normal after a crash; the records before the tear are kept).
	TornTails int
}

// ReadAll decodes every intact record from every segment in dir, in
// segment order. Torn tails are tolerated per segment: a record that
// was mid-write when the process died was never acknowledged, and a
// fresh segment is started on every boot, so records in later segments
// are still valid after an earlier segment's tear.
func ReadAll(dir string) ([]db.Mutation, ReadStats, error) {
	var (
		out   []db.Mutation
		stats ReadStats
	)
	idx, err := segmentIndexes(dir)
	if err != nil {
		return nil, stats, err
	}
	for _, i := range idx {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(i)))
		if err != nil {
			return nil, stats, fmt.Errorf("wal: reading segment %d: %w", i, err)
		}
		recs, torn := decodeFrames(data)
		stats.Segments++
		stats.Records += len(recs)
		if torn {
			stats.TornTails++
		}
		out = append(out, recs...)
	}
	return out, stats, nil
}
