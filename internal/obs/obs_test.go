package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"gpunion/internal/eventbus"
	"gpunion/internal/simclock"
)

var epoch = time.Date(2025, 3, 3, 9, 0, 0, 0, time.UTC)

func TestRecorderOrderAndSeq(t *testing.T) {
	clk := simclock.NewSim(epoch)
	r := NewRecorder(clk, 8)
	for i := 0; i < 5; i++ {
		r.Record("k", fmt.Sprintf("job-%d", i), "", nil)
		clk.Advance(time.Second)
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("want 5 events, got %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if want := epoch.Add(time.Duration(i) * time.Second); !ev.Time.Equal(want) {
			t.Errorf("event %d stamped %v, want %v", i, ev.Time, want)
		}
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped %d without wrap", r.Dropped())
	}
}

func TestRecorderRingWrap(t *testing.T) {
	clk := simclock.NewSim(epoch)
	r := NewRecorder(clk, 4)
	for i := 0; i < 10; i++ {
		r.Record("k", fmt.Sprintf("job-%d", i), "", nil)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("want 4 retained, got %d", len(evs))
	}
	// Oldest-first: the last four records, in order.
	for i, ev := range evs {
		if want := fmt.Sprintf("job-%d", 6+i); ev.Job != want {
			t.Errorf("slot %d holds %s, want %s", i, ev.Job, want)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record("k", "j", "n", nil)
	r.RecordAt(epoch, "k", "j", "n", nil)
	r.Attach(eventbus.New(0))
	if r.Events() != nil || r.Dropped() != 0 {
		t.Error("nil recorder not inert")
	}
}

func TestAttachConvertsBusEvents(t *testing.T) {
	clk := simclock.NewSim(epoch)
	bus := eventbus.New(0)
	r := NewRecorder(clk, 16)
	r.Attach(bus)
	bus.Publish(eventbus.Event{
		Type: eventbus.JobScheduled, Time: clk.Now(),
		Job: "j1", Node: "ws-1", Container: "c1",
		Detail: map[string]any{"latency": 250 * time.Microsecond, "n": 3},
	})
	evs := r.Events()
	if len(evs) != 1 {
		t.Fatalf("want 1 event, got %d", len(evs))
	}
	ev := evs[0]
	if ev.Kind != string(eventbus.JobScheduled) || ev.Job != "j1" || ev.Node != "ws-1" {
		t.Fatalf("bad conversion: %+v", ev)
	}
	if ev.Detail["container"] != "c1" || ev.Detail["n"] != "3" {
		t.Fatalf("bad detail: %v", ev.Detail)
	}
}

func TestExportJSONDeterministic(t *testing.T) {
	run := func() []byte {
		clk := simclock.NewSim(epoch)
		r := NewRecorder(clk, 8)
		r.Record("fault.injected", "", "ws-1", map[string]string{"kind": "node-crash", "z": "1", "a": "2"})
		clk.Advance(time.Minute)
		r.Record("job.completed", "j1", "ws-2", nil)
		var buf bytes.Buffer
		if err := r.ExportJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("exports differ:\n%s\nvs\n%s", a, b)
	}
	var exp Export
	if err := json.Unmarshal(a, &exp); err != nil {
		t.Fatal(err)
	}
	if len(exp.Events) != 2 || exp.Events[0].Kind != KindFaultInjected {
		t.Fatalf("bad export: %+v", exp)
	}
}

func TestSpansPairingByJobNodeGlobal(t *testing.T) {
	clk := simclock.NewSim(epoch)
	r := NewRecorder(clk, 32)
	// Two interleaved jobs.
	r.Record("job.submitted", "a", "", nil)
	clk.Advance(time.Second)
	r.Record("job.submitted", "b", "", nil)
	clk.Advance(2 * time.Second)
	r.Record("job.completed", "b", "", nil)
	clk.Advance(time.Second)
	r.Record("job.completed", "a", "", nil)
	spans := r.Spans("job.submitted", "job.completed")
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	if spans[0].Job != "b" || spans[0].Duration != 2*time.Second {
		t.Errorf("span[0] = %+v", spans[0])
	}
	if spans[1].Job != "a" || spans[1].Duration != 4*time.Second {
		t.Errorf("span[1] = %+v", spans[1])
	}

	// Node pairing when no job is set.
	r2 := NewRecorder(simclock.NewSim(epoch), 8)
	r2.Record("leader.deposed", "", "r1", nil)
	r2.Record("leader.elected", "", "r2", nil) // different node: no pair
	if got := r2.Spans("leader.deposed", "leader.elected"); len(got) != 0 {
		t.Fatalf("cross-node pair matched: %+v", got)
	}

	// Unmatched end events are skipped.
	r3 := NewRecorder(simclock.NewSim(epoch), 8)
	r3.Record("job.completed", "x", "", nil)
	if got := r3.Spans("job.submitted", "job.completed"); len(got) != 0 {
		t.Fatalf("orphan end paired: %+v", got)
	}
}

func TestJobTimelineAndKinds(t *testing.T) {
	clk := simclock.NewSim(epoch)
	r := NewRecorder(clk, 16)
	r.Record("job.submitted", "a", "", nil)
	r.Record("job.submitted", "b", "", nil)
	r.Record("job.completed", "a", "", nil)
	tl := JobTimeline(r.Events(), "a")
	if len(tl) != 2 || tl[0].Kind != "job.submitted" || tl[1].Kind != "job.completed" {
		t.Fatalf("timeline = %+v", tl)
	}
	k := Kinds(r.Events())
	if k["job.submitted"] != 2 || k["job.completed"] != 1 {
		t.Fatalf("kinds = %v", k)
	}
}

func TestStatSpans(t *testing.T) {
	spans := []Span{
		{Duration: time.Second},
		{Duration: 3 * time.Second},
		{Duration: 2 * time.Second},
	}
	st := StatSpans(spans)
	if st.Count != 3 || st.Min != time.Second || st.Max != 3*time.Second || st.Mean != 2*time.Second {
		t.Fatalf("stats = %+v", st)
	}
	if z := StatSpans(nil); z.Count != 0 || z.Mean != 0 {
		t.Fatalf("empty stats = %+v", z)
	}
}

// TestRecorderConcurrent exercises Record vs Events under the race
// detector.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(simclock.NewSim(epoch), 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record("k", fmt.Sprintf("g%d-%d", g, i), "", nil)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Events()
				_ = r.Dropped()
			}
		}
	}()
	wg.Wait()
	close(done)
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	// Seq must stay strictly increasing in the retained window.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq not increasing at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
