// Package obs is GPUnion's trace flight recorder: a bounded ring
// buffer of structured, simclock-timestamped trace events covering the
// control plane's interesting moments — job lifecycle transitions
// (submit → place → launch → checkpoint → migrate → terminal),
// leadership changes (lease lost → promotion → first fenced write) and
// chaos fault-injection annotations. The recorder attaches to the
// event bus for lifecycle coverage and accepts direct annotations from
// subsystems the bus does not see (fencing rejections, injected
// faults, invariant violations).
//
// Recording is cheap and never blocks the platform: a fixed-capacity
// ring overwrites the oldest event when full (the drop count is
// retained). Under the deterministic simulation clock the recorded
// timeline is byte-reproducible across identical seeds, so a chaos
// run's trace export is replayable evidence — an invariant violation
// can be localized against the faults that preceded it.
//
// All Recorder methods are nil-receiver safe: instrumentation sites
// may hold a nil *Recorder and record unconditionally.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"gpunion/internal/eventbus"
	"gpunion/internal/simclock"
)

// Well-known event kinds recorded outside the event bus. Bus-sourced
// events use their eventbus.Type string verbatim ("job.submitted",
// "leader.elected", ...).
const (
	// KindFaultInjected annotates one chaos fault delivery.
	KindFaultInjected = "fault.injected"
	// KindInvariantViolation annotates an invariant breach found by a
	// post-fault or periodic audit.
	KindInvariantViolation = "invariant.violation"
	// KindWriteFenced annotates a write rejected by epoch fencing — the
	// first of these after a leader.elected event closes the failover
	// span.
	KindWriteFenced = "write.fenced"
	// KindHealthDegraded annotates a node's health score crossing below
	// the unhealthy threshold (gray-failure detection).
	KindHealthDegraded = "health.degraded"
	// KindPredictiveMigrate annotates one job leaving a degraded node
	// via checkpoint-then-migrate, before the node actually fails.
	KindPredictiveMigrate = "migrate.predictive"
)

// DefaultCapacity is the ring size used when NewRecorder is given a
// non-positive capacity.
const DefaultCapacity = 4096

// Event is one recorded trace point.
type Event struct {
	// Seq is a strictly increasing sequence number: the recorder's
	// total order, independent of timestamp ties.
	Seq uint64 `json:"seq"`
	// Time is the (simulated or wall) clock reading at the event.
	Time time.Time `json:"time"`
	// Kind names the event: an eventbus.Type string or one of the
	// Kind* annotation constants.
	Kind string `json:"kind"`
	// Job and Node identify the subjects, when applicable.
	Job  string `json:"job,omitempty"`
	Node string `json:"node,omitempty"`
	// Detail carries event-specific payload as flat strings.
	Detail map[string]string `json:"detail,omitempty"`
}

// Export is the JSON document written by ExportJSON.
type Export struct {
	// Events is the retained window, oldest first.
	Events []Event `json:"events"`
	// Dropped counts events overwritten by ring wrap-around.
	Dropped uint64 `json:"dropped"`
}

// Recorder is the bounded flight recorder. Safe for concurrent use.
type Recorder struct {
	clock simclock.Clock

	mu      sync.Mutex
	buf     []Event // ring storage, len == capacity
	next    int     // next write slot
	full    bool    // ring has wrapped at least once
	seq     uint64  // next sequence number
	dropped uint64  // events overwritten
}

// NewRecorder creates a recorder stamping events from clock. A
// non-positive capacity selects DefaultCapacity.
func NewRecorder(clock simclock.Clock, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{clock: clock, buf: make([]Event, 0, capacity)}
}

// Record appends an event stamped with the recorder's clock.
func (r *Recorder) Record(kind, job, node string, detail map[string]string) {
	if r == nil {
		return
	}
	r.RecordAt(r.clock.Now(), kind, job, node, detail)
}

// RecordAt appends an event with an explicit timestamp (used for bus
// events, which carry the publisher's clock reading).
func (r *Recorder) RecordAt(at time.Time, kind, job, node string, detail map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev := Event{Seq: r.seq, Time: at, Kind: kind, Job: job, Node: node, Detail: detail}
	r.seq++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.full = true
		r.dropped++
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.mu.Unlock()
}

// Attach subscribes the recorder to every bus event, converting each
// into a trace event. Handlers run synchronously on the publisher's
// goroutine, so under the single-driver simulation the recorded order
// is deterministic. Attach at most once per recorder per bus.
func (r *Recorder) Attach(bus *eventbus.Bus) {
	if r == nil || bus == nil {
		return
	}
	bus.SubscribeFunc(func(ev eventbus.Event) {
		var detail map[string]string
		if len(ev.Detail) > 0 || ev.Container != "" {
			detail = make(map[string]string, len(ev.Detail)+1)
			for k, v := range ev.Detail {
				detail[k] = fmt.Sprint(v)
			}
			if ev.Container != "" {
				detail["container"] = ev.Container
			}
		}
		r.RecordAt(ev.Time, string(ev.Type), ev.Job, ev.Node, detail)
	})
}

// Events returns a copy of the retained window, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Dropped reports how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ExportJSON writes the retained window as a JSON Export document.
// encoding/json emits map keys sorted, so under the simulation clock
// identical runs export identical bytes.
func (r *Recorder) ExportJSON(w io.Writer) error {
	exp := Export{Events: r.Events(), Dropped: r.Dropped()}
	if exp.Events == nil {
		exp.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(exp)
}

// Spans pairs the recorder's events by subject; see the package-level
// Spans function.
func (r *Recorder) Spans(startKind, endKind string) []Span {
	return Spans(r.Events(), startKind, endKind)
}

// Span is one matched start/end event pair.
type Span struct {
	// Job / Node are the pairing subject (From's identifiers).
	Job  string `json:"job,omitempty"`
	Node string `json:"node,omitempty"`
	// From and To are the matched events.
	From Event `json:"from"`
	To   Event `json:"to"`
	// Duration is To.Time − From.Time.
	Duration time.Duration `json:"duration"`
}

// Spans matches each endKind event to the most recent unmatched
// startKind event with the same subject — the job ID when both carry
// one, otherwise the node, otherwise global order — and returns the
// pairs oldest-completion first. Events must be oldest first, as
// Recorder.Events returns them.
func Spans(events []Event, startKind, endKind string) []Span {
	open := make(map[string][]Event)
	var out []Span
	for _, ev := range events {
		key := spanKey(ev)
		switch ev.Kind {
		case startKind:
			open[key] = append(open[key], ev)
		case endKind:
			stack := open[key]
			if len(stack) == 0 {
				continue
			}
			from := stack[len(stack)-1]
			open[key] = stack[:len(stack)-1]
			out = append(out, Span{
				Job: from.Job, Node: from.Node,
				From: from, To: ev,
				Duration: ev.Time.Sub(from.Time),
			})
		}
	}
	return out
}

func spanKey(ev Event) string {
	if ev.Job != "" {
		return "j:" + ev.Job
	}
	if ev.Node != "" {
		return "n:" + ev.Node
	}
	return ""
}

// JobTimeline filters events to one job's, preserving order.
func JobTimeline(events []Event, job string) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Job == job {
			out = append(out, ev)
		}
	}
	return out
}

// Kinds tallies events by kind.
func Kinds(events []Event) map[string]int {
	out := make(map[string]int)
	for _, ev := range events {
		out[ev.Kind]++
	}
	return out
}

// SpanStats summarises a span set's durations.
type SpanStats struct {
	Count          int
	Min, Max, Mean time.Duration
}

// StatSpans computes duration statistics over spans.
func StatSpans(spans []Span) SpanStats {
	st := SpanStats{Count: len(spans)}
	if len(spans) == 0 {
		return st
	}
	ds := make([]time.Duration, len(spans))
	var sum time.Duration
	for i, s := range spans {
		ds[i] = s.Duration
		sum += s.Duration
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	st.Min, st.Max = ds[0], ds[len(ds)-1]
	st.Mean = sum / time.Duration(len(ds))
	return st
}
