package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"testing/quick"
)

func newDirStore(t *testing.T) *DirStore {
	t.Helper()
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDirStoreRoundTrip(t *testing.T) {
	s := newDirStore(t)
	if err := s.Put("ckpt/j1/00000001", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("ckpt/j1/00000001")
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestDirStoreMissingKey(t *testing.T) {
	s := newDirStore(t)
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDirStoreOverwrite(t *testing.T) {
	s := newDirStore(t)
	_ = s.Put("k", []byte("old"))
	if err := s.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("k")
	if string(got) != "new" {
		t.Fatalf("Get = %q", got)
	}
}

func TestDirStoreDelete(t *testing.T) {
	s := newDirStore(t)
	_ = s.Put("k", []byte("v"))
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("key survived delete")
	}
	if err := s.Delete("missing"); err != nil {
		t.Fatalf("deleting missing key: %v", err)
	}
}

func TestDirStoreListPrefix(t *testing.T) {
	s := newDirStore(t)
	for _, k := range []string{"ckpt/j1/1", "ckpt/j1/2", "ckpt/j2/1", "out/x"} {
		if err := s.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.List("ckpt/j1/")
	if err != nil || len(keys) != 2 {
		t.Fatalf("List = %v, %v", keys, err)
	}
	all, _ := s.List("")
	if len(all) != 4 {
		t.Fatalf("List(\"\") = %v", all)
	}
}

func TestDirStoreRejectsTraversal(t *testing.T) {
	s := newDirStore(t)
	for _, k := range []string{"../escape", "/abs/path", ""} {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", k)
		}
		if _, err := s.Get(k); err == nil {
			t.Errorf("Get(%q) accepted", k)
		}
	}
	// Nothing escaped the root.
	parent := filepath.Dir(s.Root())
	if _, err := os.Stat(filepath.Join(parent, "escape")); err == nil {
		t.Fatal("traversal escaped the store root")
	}
}

func TestDirStoreUsedBytes(t *testing.T) {
	s := newDirStore(t)
	_ = s.Put("a", make([]byte, 100))
	_ = s.Put("b/c", make([]byte, 50))
	if got := s.UsedBytes(); got != 150 {
		t.Fatalf("UsedBytes = %d, want 150", got)
	}
}

func TestDirStorePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("reopened Get = %q, %v", got, err)
	}
}

func TestDirStoreImplementsStore(t *testing.T) {
	var _ Store = newDirStore(t)
}

// Property: DirStore and MemStore agree on a random operation sequence.
func TestDirStoreMatchesMemStoreProperty(t *testing.T) {
	type op struct {
		Key uint8
		Val uint8
		Del bool
	}
	s := newDirStore(t)
	m := NewMemStore(0)
	f := func(ops []op) bool {
		for _, o := range ops {
			k := "k/" + string(rune('a'+o.Key%8))
			if o.Del {
				if (s.Delete(k) == nil) != (m.Delete(k) == nil) {
					return false
				}
			} else {
				v := []byte{o.Val}
				if (s.Put(k, v) == nil) != (m.Put(k, v) == nil) {
					return false
				}
			}
			dv, derr := s.Get(k)
			mv, merr := m.Get(k)
			if (derr == nil) != (merr == nil) {
				return false
			}
			if derr == nil && !bytes.Equal(dv, mv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
