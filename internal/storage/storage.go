// Package storage implements GPUnion's flexible data-storage
// architecture (§3.2): users pin workload data, checkpoints and outputs
// to storage locations they choose — their own machine, a lab NAS, or a
// provider node — while provider nodes offer local scratch space for
// temporary data.
//
// The package provides a uniform key/value blob Store interface, an
// in-memory implementation with a capacity bound (provider scratch), a
// replicated store (user-configured backup fan-out), and a Placement
// policy that resolves a user's storage preference list to a live target.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by stores.
var (
	ErrNotFound     = errors.New("storage: key not found")
	ErrCapacity     = errors.New("storage: capacity exceeded")
	ErrNoTarget     = errors.New("storage: no live storage target")
	ErrQuorumFailed = errors.New("storage: replication quorum not met")
)

// Store is a flat key → blob store. Implementations must be safe for
// concurrent use.
type Store interface {
	// Put stores data under key, overwriting any previous value.
	Put(key string, data []byte) error
	// Get returns the data stored under key.
	Get(key string) ([]byte, error)
	// Delete removes key. Deleting a missing key is not an error.
	Delete(key string) error
	// List returns the keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// UsedBytes reports the total size of stored values.
	UsedBytes() int64
}

// MemStore is an in-memory Store with an optional capacity bound,
// modelling a provider node's local scratch volume.
type MemStore struct {
	mu       sync.RWMutex
	data     map[string][]byte
	used     int64
	capacity int64 // 0 = unbounded
}

// NewMemStore creates a store bounded to capacity bytes (0 = unbounded).
func NewMemStore(capacity int64) *MemStore {
	return &MemStore{data: make(map[string][]byte), capacity: capacity}
}

// Put stores a copy of data under key.
func (m *MemStore) Put(key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := int64(len(m.data[key]))
	next := m.used - old + int64(len(data))
	if m.capacity > 0 && next > m.capacity {
		return fmt.Errorf("%w: %d + %d > %d", ErrCapacity, m.used-old, len(data), m.capacity)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.data[key] = cp
	m.used = next
	return nil
}

// Get returns a copy of the value stored under key.
func (m *MemStore) Get(key string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.data[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Delete removes key.
func (m *MemStore) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.data[key]; ok {
		m.used -= int64(len(v))
		delete(m.data, key)
	}
	return nil
}

// List returns sorted keys with the prefix.
func (m *MemStore) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var keys []string
	for k := range m.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// UsedBytes reports stored bytes.
func (m *MemStore) UsedBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used
}

// Capacity returns the configured bound (0 = unbounded).
func (m *MemStore) Capacity() int64 { return m.capacity }

// Replicated fans writes out to several stores and reads from the first
// that has the key. Users configure it when they want checkpoints kept on
// more than one node (§3.5: "Users can specify specific nodes for data
// storage and backup according to their own needs").
type Replicated struct {
	replicas []Store
	// writeQuorum is how many replicas must accept a Put for it to
	// succeed.
	writeQuorum int
}

// NewReplicated builds a replicated store over the given replicas.
// writeQuorum <= 0 defaults to all replicas.
func NewReplicated(writeQuorum int, replicas ...Store) (*Replicated, error) {
	if len(replicas) == 0 {
		return nil, errors.New("storage: replicated store needs at least one replica")
	}
	if writeQuorum <= 0 || writeQuorum > len(replicas) {
		writeQuorum = len(replicas)
	}
	return &Replicated{replicas: replicas, writeQuorum: writeQuorum}, nil
}

// Put writes to every replica; it succeeds if at least writeQuorum
// replicas accept.
func (r *Replicated) Put(key string, data []byte) error {
	okCount := 0
	var firstErr error
	for _, rep := range r.replicas {
		if err := rep.Put(key, data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		okCount++
	}
	if okCount < r.writeQuorum {
		return fmt.Errorf("%w: %d/%d (first error: %v)", ErrQuorumFailed, okCount, r.writeQuorum, firstErr)
	}
	return nil
}

// Get returns the value from the first replica holding the key.
func (r *Replicated) Get(key string) ([]byte, error) {
	var firstErr error
	for _, rep := range r.replicas {
		v, err := rep.Get(key)
		if err == nil {
			return v, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// Delete removes the key from every replica.
func (r *Replicated) Delete(key string) error {
	for _, rep := range r.replicas {
		if err := rep.Delete(key); err != nil {
			return err
		}
	}
	return nil
}

// List returns the union of replica listings.
func (r *Replicated) List(prefix string) ([]string, error) {
	set := make(map[string]bool)
	for _, rep := range r.replicas {
		keys, err := rep.List(prefix)
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// UsedBytes reports the maximum usage across replicas (logical usage).
func (r *Replicated) UsedBytes() int64 {
	var max int64
	for _, rep := range r.replicas {
		if u := rep.UsedBytes(); u > max {
			max = u
		}
	}
	return max
}

// Placement resolves a user's ordered storage preferences against node
// liveness. A user may pin checkpoints to "my-lab-nas" first, falling
// back to "provider-local" scratch.
type Placement struct {
	mu     sync.RWMutex
	stores map[string]Store // storage node name → store
	live   map[string]bool
}

// NewPlacement returns an empty placement registry.
func NewPlacement() *Placement {
	return &Placement{stores: make(map[string]Store), live: make(map[string]bool)}
}

// Register adds a named storage node (initially live).
func (p *Placement) Register(name string, s Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stores[name] = s
	p.live[name] = true
}

// SetLive marks a storage node live or dead (its provider departed).
func (p *Placement) SetLive(name string, live bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.stores[name]; ok {
		p.live[name] = live
	}
}

// Live reports whether the named node is registered and live.
func (p *Placement) Live(name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.live[name]
}

// Resolve returns the store for the first live name in prefs, together
// with the chosen name. It fails with ErrNoTarget when none is live.
func (p *Placement) Resolve(prefs []string) (Store, string, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, name := range prefs {
		if p.live[name] {
			return p.stores[name], name, nil
		}
	}
	return nil, "", fmt.Errorf("%w: preferences %v", ErrNoTarget, prefs)
}

// Names returns all registered storage node names, sorted.
func (p *Placement) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.stores))
	for n := range p.stores {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
