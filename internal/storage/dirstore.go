package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DirStore is a filesystem-backed Store used by the real daemons: each
// key becomes a file under the root directory. Keys may contain '/'
// (subdirectories are created as needed); path traversal outside the
// root is rejected.
type DirStore struct {
	root string
	mu   sync.Mutex
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("storage: resolving %s: %w", root, err)
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating %s: %w", abs, err)
	}
	return &DirStore{root: abs}, nil
}

// Root returns the store's base directory.
func (d *DirStore) Root() string { return d.root }

// path maps a key to a file path, rejecting traversal.
func (d *DirStore) path(key string) (string, error) {
	if key == "" {
		return "", errors.New("storage: empty key")
	}
	clean := filepath.Clean(filepath.FromSlash(key))
	if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("storage: key %q escapes the store root", key)
	}
	return filepath.Join(d.root, clean), nil
}

// Put writes data to the key's file atomically (write + rename).
func (d *DirStore) Put(key string, data []byte) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("storage: creating parent of %s: %w", key, err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: writing %s: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("storage: committing %s: %w", key, err)
	}
	return nil
}

// Get reads the key's file.
func (d *DirStore) Get(key string) ([]byte, error) {
	p, err := d.path(key)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %w", key, err)
	}
	return data, nil
}

// Delete removes the key's file; missing keys are not an error.
func (d *DirStore) Delete(key string) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("storage: deleting %s: %w", key, err)
	}
	return nil
}

// List returns sorted keys with the given prefix.
func (d *DirStore) List(prefix string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var keys []string
	err := filepath.WalkDir(d.root, func(p string, entry fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if entry.IsDir() || strings.HasSuffix(p, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: listing %s: %w", prefix, err)
	}
	sort.Strings(keys)
	return keys, nil
}

// UsedBytes sums stored file sizes.
func (d *DirStore) UsedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	_ = filepath.WalkDir(d.root, func(p string, entry fs.DirEntry, err error) error {
		if err != nil || entry.IsDir() || strings.HasSuffix(p, ".tmp") {
			return nil
		}
		if info, ierr := entry.Info(); ierr == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}
