package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemStorePutGetRoundTrip(t *testing.T) {
	s := NewMemStore(0)
	if err := s.Put("a/b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/b")
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestMemStoreGetMissing(t *testing.T) {
	s := NewMemStore(0)
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestMemStoreOverwriteAdjustsUsage(t *testing.T) {
	s := NewMemStore(0)
	if err := s.Put("k", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if s.UsedBytes() != 40 {
		t.Fatalf("UsedBytes = %d, want 40", s.UsedBytes())
	}
}

func TestMemStoreDelete(t *testing.T) {
	s := NewMemStore(0)
	if err := s.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("key survived delete")
	}
	if s.UsedBytes() != 0 {
		t.Fatalf("UsedBytes = %d after delete", s.UsedBytes())
	}
	if err := s.Delete("missing"); err != nil {
		t.Fatalf("deleting missing key: %v", err)
	}
}

func TestMemStoreCapacityEnforced(t *testing.T) {
	s := NewMemStore(100)
	if err := s.Put("a", make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", make([]byte, 30)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-capacity Put err = %v, want ErrCapacity", err)
	}
	// Overwriting within capacity is fine even when near the bound.
	if err := s.Put("a", make([]byte, 100)); err != nil {
		t.Fatalf("in-place overwrite to exactly capacity: %v", err)
	}
	if s.Capacity() != 100 {
		t.Fatalf("Capacity = %d", s.Capacity())
	}
}

func TestMemStoreFailedPutLeavesStateIntact(t *testing.T) {
	s := NewMemStore(50)
	if err := s.Put("a", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", make([]byte, 60)); !errors.Is(err, ErrCapacity) {
		t.Fatal("expected capacity error")
	}
	got, err := s.Get("a")
	if err != nil || string(got) != "old" {
		t.Fatalf("value after failed Put = %q, %v", got, err)
	}
}

func TestMemStoreListPrefix(t *testing.T) {
	s := NewMemStore(0)
	for _, k := range []string{"ckpt/j1/1", "ckpt/j1/2", "ckpt/j2/1", "out/j1"} {
		if err := s.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.List("ckpt/j1/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "ckpt/j1/1" || keys[1] != "ckpt/j1/2" {
		t.Fatalf("List = %v", keys)
	}
	all, _ := s.List("")
	if len(all) != 4 {
		t.Fatalf("List(\"\") = %v", all)
	}
}

func TestMemStoreGetReturnsCopy(t *testing.T) {
	s := NewMemStore(0)
	if err := s.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("k")
	v[0] = 'X'
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatal("Get exposed internal buffer")
	}
}

func TestMemStorePutCopiesInput(t *testing.T) {
	s := NewMemStore(0)
	buf := []byte("abc")
	if err := s.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatal("Put aliased caller buffer")
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	s := NewMemStore(0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			for j := 0; j < 50; j++ {
				if err := s.Put(key, []byte{byte(j)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s.UsedBytes() != 16 {
		t.Fatalf("UsedBytes = %d, want 16", s.UsedBytes())
	}
}

func TestReplicatedNeedsReplica(t *testing.T) {
	if _, err := NewReplicated(1); err == nil {
		t.Fatal("NewReplicated with no replicas succeeded")
	}
}

func TestReplicatedPutFansOut(t *testing.T) {
	a, b := NewMemStore(0), NewMemStore(0)
	r, err := NewReplicated(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i, rep := range []*MemStore{a, b} {
		if v, err := rep.Get("k"); err != nil || string(v) != "v" {
			t.Fatalf("replica %d missing value: %q, %v", i, v, err)
		}
	}
}

func TestReplicatedQuorum(t *testing.T) {
	a := NewMemStore(0)
	full := NewMemStore(1) // too small: every Put fails
	r, err := NewReplicated(1, a, full)
	if err != nil {
		t.Fatal(err)
	}
	// Quorum 1: succeeds via a.
	if err := r.Put("k", []byte("value")); err != nil {
		t.Fatalf("quorum-1 Put: %v", err)
	}
	// Quorum 2: fails because full rejects.
	r2, _ := NewReplicated(2, a, full)
	if err := r2.Put("k2", []byte("value")); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("quorum-2 Put err = %v, want ErrQuorumFailed", err)
	}
}

func TestReplicatedGetFallsBack(t *testing.T) {
	a, b := NewMemStore(0), NewMemStore(0)
	r, _ := NewReplicated(0, a, b)
	// Write only to the second replica (simulates a lost first replica).
	if err := b.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := r.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing err = %v", err)
	}
}

func TestReplicatedListUnion(t *testing.T) {
	a, b := NewMemStore(0), NewMemStore(0)
	r, _ := NewReplicated(0, a, b)
	_ = a.Put("x/1", []byte("1"))
	_ = b.Put("x/2", []byte("2"))
	keys, err := r.List("x/")
	if err != nil || len(keys) != 2 || keys[0] != "x/1" || keys[1] != "x/2" {
		t.Fatalf("List = %v, %v", keys, err)
	}
}

func TestReplicatedDeleteAll(t *testing.T) {
	a, b := NewMemStore(0), NewMemStore(0)
	r, _ := NewReplicated(0, a, b)
	_ = r.Put("k", []byte("v"))
	if err := r.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("replica a still has key")
	}
	if _, err := b.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("replica b still has key")
	}
}

func TestReplicatedUsedBytesLogical(t *testing.T) {
	a, b := NewMemStore(0), NewMemStore(0)
	r, _ := NewReplicated(0, a, b)
	_ = r.Put("k", make([]byte, 10))
	if r.UsedBytes() != 10 {
		t.Fatalf("UsedBytes = %d, want 10 (logical, not 20)", r.UsedBytes())
	}
}

func TestPlacementResolveOrder(t *testing.T) {
	p := NewPlacement()
	p.Register("nas", NewMemStore(0))
	p.Register("scratch", NewMemStore(0))
	_, name, err := p.Resolve([]string{"nas", "scratch"})
	if err != nil || name != "nas" {
		t.Fatalf("Resolve = %q, %v", name, err)
	}
}

func TestPlacementSkipsDeadNodes(t *testing.T) {
	p := NewPlacement()
	p.Register("nas", NewMemStore(0))
	p.Register("scratch", NewMemStore(0))
	p.SetLive("nas", false)
	_, name, err := p.Resolve([]string{"nas", "scratch"})
	if err != nil || name != "scratch" {
		t.Fatalf("Resolve = %q, %v", name, err)
	}
	if p.Live("nas") || !p.Live("scratch") {
		t.Fatal("liveness flags wrong")
	}
}

func TestPlacementNoTarget(t *testing.T) {
	p := NewPlacement()
	p.Register("nas", NewMemStore(0))
	p.SetLive("nas", false)
	if _, _, err := p.Resolve([]string{"nas", "unknown"}); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("err = %v, want ErrNoTarget", err)
	}
}

func TestPlacementSetLiveUnknownIgnored(t *testing.T) {
	p := NewPlacement()
	p.SetLive("ghost", true)
	if p.Live("ghost") {
		t.Fatal("unregistered node marked live")
	}
}

func TestPlacementNamesSorted(t *testing.T) {
	p := NewPlacement()
	p.Register("z", NewMemStore(0))
	p.Register("a", NewMemStore(0))
	names := p.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("Names = %v", names)
	}
}

func TestPlacementNodeReturns(t *testing.T) {
	p := NewPlacement()
	p.Register("nas", NewMemStore(0))
	p.SetLive("nas", false)
	p.SetLive("nas", true)
	_, name, err := p.Resolve([]string{"nas"})
	if err != nil || name != "nas" {
		t.Fatalf("Resolve after return = %q, %v", name, err)
	}
}

// Property: UsedBytes always equals the sum of current value lengths.
func TestMemStoreUsageInvariantProperty(t *testing.T) {
	type op struct {
		Key  uint8
		Size uint8
		Del  bool
	}
	f := func(ops []op) bool {
		s := NewMemStore(0)
		shadow := make(map[string]int64)
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%8)
			if o.Del {
				if err := s.Delete(k); err != nil {
					return false
				}
				delete(shadow, k)
			} else {
				if err := s.Put(k, make([]byte, o.Size)); err != nil {
					return false
				}
				shadow[k] = int64(o.Size)
			}
		}
		var want int64
		for _, n := range shadow {
			want += n
		}
		return s.UsedBytes() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a capacity-bounded store never reports usage above capacity.
func TestMemStoreCapacityInvariantProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		const capBytes = 200
		s := NewMemStore(capBytes)
		for i, n := range sizes {
			_ = s.Put(fmt.Sprintf("k%d", i), make([]byte, n)) // errors allowed
			if s.UsedBytes() > capBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
