// Package monitor is GPUnion's metrics layer: a Prometheus-style
// registry with counters, gauges and histograms, plus the text
// exposition format the paper's "Prometheus metrics exporters" (§3.5)
// would serve. Hardware collectors (GPU telemetry) and application
// collectors (container lifecycle, allocation history) register here,
// and the agent exposes the registry over HTTP.
package monitor

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Metric name validation is intentionally loose: [a-zA-Z_][a-zA-Z0-9_]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelsKey renders a deterministic key for a label set.
func labelsKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, labels[k])
	}
	return sb.String()
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu  sync.Mutex
	val float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative and NaN deltas are ignored
// (counters never decrease, and one bad sample must not poison the
// series — NaN compares false against everything, so it needs its own
// guard).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	c.mu.Lock()
	c.val += v
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

// Gauge is an arbitrary instantaneous value.
type Gauge struct {
	mu  sync.Mutex
	val float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// Add adjusts the value by v (may be negative).
func (g *Gauge) Add(v float64) {
	g.mu.Lock()
	g.val += v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// Histogram accumulates observations in cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []uint64  // per-bucket (non-cumulative) counts
	sum    float64
	total  uint64
}

// NewHistogram creates a histogram with the given ascending bucket
// upper bounds (a +Inf bucket is implicit).
func NewHistogram(bounds ...float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Observe records one observation. NaN and ±Inf observations are
// dropped: a single one would poison the running sum for every future
// scrape, and an infinite latency is a failure to measure, not a
// measurement.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += v
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns an estimate of the q-quantile (0..1) assuming
// observations are uniform within buckets. It returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.total)
	var cum float64
	lower := 0.0
	for i, c := range h.counts {
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		next := cum + float64(c)
		if rank <= next && c > 0 {
			if math.IsInf(upper, 1) {
				return lower
			}
			frac := (rank - cum) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum = next
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return lower
}

// metricKind tags a registered family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is a named metric with labelled children.
type family struct {
	name string
	help string
	kind metricKind

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	labels   map[string]map[string]string // key → label set
	bounds   []float64                    // histogram bucket template
}

// Registry holds metric families and renders the exposition text.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, bounds []float64) (*family, error) {
	if !validName(name) {
		return nil, fmt.Errorf("monitor: invalid metric name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			return nil, fmt.Errorf("monitor: metric %q re-registered with a different kind", name)
		}
		return f, nil
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		labels:   make(map[string]map[string]string),
		bounds:   bounds,
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f, nil
}

// Counter returns (creating if needed) the counter with labels.
func (r *Registry) Counter(name, help string, labels map[string]string) (*Counter, error) {
	f, err := r.family(name, help, kindCounter, nil)
	if err != nil {
		return nil, err
	}
	key := labelsKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.counters[key]
	if !ok {
		c = &Counter{}
		f.counters[key] = c
		f.labels[key] = copyLabels(labels)
	}
	return c, nil
}

// Gauge returns (creating if needed) the gauge with labels.
func (r *Registry) Gauge(name, help string, labels map[string]string) (*Gauge, error) {
	f, err := r.family(name, help, kindGauge, nil)
	if err != nil {
		return nil, err
	}
	key := labelsKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.gauges[key]
	if !ok {
		g = &Gauge{}
		f.gauges[key] = g
		f.labels[key] = copyLabels(labels)
	}
	return g, nil
}

// Histogram returns (creating if needed) the histogram with labels; the
// bucket bounds are fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels map[string]string) (*Histogram, error) {
	f, err := r.family(name, help, kindHistogram, bounds)
	if err != nil {
		return nil, err
	}
	key := labelsKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.hists[key]
	if !ok {
		h = NewHistogram(f.bounds...)
		f.hists[key] = h
		f.labels[key] = copyLabels(labels)
	}
	return h, nil
}

func copyLabels(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

func renderLabels(labels map[string]string, extra ...string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteText renders the registry in the Prometheus text exposition
// format (v0.0.4), deterministically ordered.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make(map[string]*family, len(names))
	for _, n := range names {
		fams[n] = r.families[n]
	}
	r.mu.Unlock()

	for _, name := range names {
		f := fams[name]
		typ := map[metricKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[f.kind]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, typ); err != nil {
			return err
		}
		f.mu.Lock()
		keys := make([]string, 0)
		switch f.kind {
		case kindCounter:
			for k := range f.counters {
				keys = append(keys, k)
			}
		case kindGauge:
			for k := range f.gauges {
				keys = append(keys, k)
			}
		case kindHistogram:
			for k := range f.hists {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var err error
		for _, k := range keys {
			labels := f.labels[k]
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %g\n", name, renderLabels(labels), f.counters[k].Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %g\n", name, renderLabels(labels), f.gauges[k].Value())
			case kindHistogram:
				err = writeHistogram(w, name, labels, f.hists[k])
			}
			if err != nil {
				f.mu.Unlock()
				return err
			}
		}
		f.mu.Unlock()
	}
	return nil
}

func writeHistogram(w io.Writer, name string, labels map[string]string, h *Histogram) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		le := fmt.Sprintf("le=%q", fmt.Sprintf("%g", b))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels, le), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels, `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, renderLabels(labels), h.sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), h.total)
	return err
}
