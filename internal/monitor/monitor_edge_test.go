package monitor

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

// A NaN sample must not poison a counter: NaN compares false against
// zero, so the sign guard alone would let it through and every later
// Value() and exposition line would read NaN forever.
func TestCounterIgnoresNaN(t *testing.T) {
	var c Counter
	c.Add(2)
	c.Add(math.NaN())
	c.Add(3)
	if c.Value() != 5 {
		t.Fatalf("Value = %v, want 5 (NaN leaked in)", c.Value())
	}
}

// NaN and ±Inf observations are failures to measure, not measurements:
// they must leave count, sum and every bucket untouched.
func TestHistogramIgnoresNaNAndInf(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(5)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Sum() != 5.5 {
		t.Fatalf("Sum = %v, want 5.5", h.Sum())
	}
	if math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("quantile poisoned by unmeasurable observations")
	}
}

// Gauges intentionally accept any value (a gauge mirrors external
// state, including a sensor reporting +Inf), but the exposition must
// still render — document the contract with a test.
func TestGaugeAcceptsInf(t *testing.T) {
	r := NewRegistry()
	g, err := r.Gauge("edge_gauge", "edge", nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(math.Inf(1))
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "edge_gauge +Inf") {
		t.Fatalf("inf gauge rendering:\n%s", sb.String())
	}
}

// Concurrent Observe against WriteText: the race lane's target. The
// renderer snapshots under the family and histogram locks, so a
// mid-render observation must neither race nor corrupt the output.
func TestConcurrentObserveVsWriteText(t *testing.T) {
	r := NewRegistry()
	h, err := r.Histogram("race_hist", "race", []float64{0.1, 1, 10}, map[string]string{"path": "/x"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Counter("race_total", "race", nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(float64(i % 20))
					c.Inc()
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if err := r.WriteText(io.Discard); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "race_hist_count") {
		t.Fatalf("final exposition malformed:\n%s", sb.String())
	}
}

// Label ordering in the text output is alphabetical by label name,
// regardless of insertion order — scrapes must be diffable.
func TestDeterministicLabelOrdering(t *testing.T) {
	render := func(labels map[string]string) string {
		r := NewRegistry()
		g, err := r.Gauge("ordered", "o", labels)
		if err != nil {
			t.Fatal(err)
		}
		g.Set(1)
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a := render(map[string]string{"zone": "z1", "node": "n1", "device": "gpu0"})
	want := `ordered{device="gpu0",node="n1",zone="z1"} 1`
	if !strings.Contains(a, want) {
		t.Fatalf("label order wrong:\nwant %s\ngot %s", want, a)
	}
	// Many children render sorted by their label-set key.
	r := NewRegistry()
	for _, n := range []string{"n9", "n1", "n5"} {
		g, _ := r.Gauge("multi", "m", map[string]string{"node": n})
		g.Set(1)
	}
	var sb strings.Builder
	_ = r.WriteText(&sb)
	out := sb.String()
	i1 := strings.Index(out, `node="n1"`)
	i5 := strings.Index(out, `node="n5"`)
	i9 := strings.Index(out, `node="n9"`)
	if !(i1 < i5 && i5 < i9) {
		t.Fatalf("children not sorted:\n%s", out)
	}
}
