package monitor

import (
	"testing"
	"time"

	"gpunion/internal/gpu"
)

var healthEpoch = time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)

// foldSeq replays a sequence of (offset, events) steps through
// FoldHealth the way the coordinator does: each step folds the
// previous (score, instant) pair forward to the step's instant.
func foldSeq(p HealthParams, steps []foldStep) float64 {
	score, at := 1.0, time.Time{}
	for _, st := range steps {
		next := healthEpoch.Add(st.after)
		score = FoldHealth(score, at, next, st.events, p)
		at = next
	}
	return score
}

type foldStep struct {
	after  time.Duration
	events []gpu.HealthEvent
}

func TestFoldHealthScenarios(t *testing.T) {
	p := DefaultHealthParams()
	thermalCrit := gpu.HealthEvent{Kind: gpu.HealthThermal, Severity: gpu.SeverityCritical, Value: 96}
	xidRec := gpu.HealthEvent{Kind: gpu.HealthXIDRecoverable, Severity: gpu.SeverityWarn, XID: 31}
	xidFatal := gpu.HealthEvent{Kind: gpu.HealthXIDFatal, Severity: gpu.SeverityCritical, XID: 79}

	cases := []struct {
		name      string
		steps     []foldStep
		unhealthy bool
		// bounds on the final score (inclusive)
		atLeast, atMost float64
	}{
		{
			name: "single-fatal-xid-crosses-immediately",
			steps: []foldStep{
				{after: time.Minute, events: []gpu.HealthEvent{xidFatal}},
			},
			unhealthy: true,
			atLeast:   p.Floor, atMost: p.XIDFatalPenalty,
		},
		{
			name: "recover-after-xid",
			// One fatal XID, then an hour of quiet decay: six half-lives
			// pull the score from 0.10 back above the threshold.
			steps: []foldStep{
				{after: time.Minute, events: []gpu.HealthEvent{xidFatal}},
				{after: time.Minute + time.Hour, events: nil},
			},
			unhealthy: false,
			atLeast:   0.9, atMost: 1,
		},
		{
			name: "sustained-thermal-grinds-below-threshold",
			// Critical thermal throttling every minute: the 0.75 penalty
			// outruns one minute of decay and the node goes unhealthy.
			steps: []foldStep{
				{after: 1 * time.Minute, events: []gpu.HealthEvent{thermalCrit}},
				{after: 2 * time.Minute, events: []gpu.HealthEvent{thermalCrit}},
				{after: 3 * time.Minute, events: []gpu.HealthEvent{thermalCrit}},
				{after: 4 * time.Minute, events: []gpu.HealthEvent{thermalCrit, xidRec}},
				{after: 5 * time.Minute, events: []gpu.HealthEvent{thermalCrit}},
			},
			unhealthy: true,
			atLeast:   p.Floor, atMost: UnhealthyBelow,
		},
		{
			name: "flapping-warns-stay-healthy",
			// A warn-grade blip every ten minutes is fully absorbed by
			// decay: the node must not oscillate across the threshold.
			steps: []foldStep{
				{after: 10 * time.Minute, events: []gpu.HealthEvent{{Kind: gpu.HealthThermal, Severity: gpu.SeverityWarn}}},
				{after: 20 * time.Minute, events: []gpu.HealthEvent{{Kind: gpu.HealthPower, Severity: gpu.SeverityWarn}}},
				{after: 30 * time.Minute, events: []gpu.HealthEvent{{Kind: gpu.HealthThermal, Severity: gpu.SeverityWarn}}},
				{after: 40 * time.Minute, events: []gpu.HealthEvent{{Kind: gpu.HealthPower, Severity: gpu.SeverityWarn}}},
			},
			unhealthy: false,
			atLeast:   0.8, atMost: 1,
		},
		{
			name: "slowdown-uses-observed-fraction",
			steps: []foldStep{
				{after: time.Minute, events: []gpu.HealthEvent{{Kind: gpu.HealthSlowdown, Value: 0.6}}},
			},
			unhealthy: false,
			atLeast:   0.6, atMost: 0.6,
		},
		{
			name: "slowdown-clamped-at-floor",
			// A wild 1% throughput sample cuts by SlowdownFloor, not 0.01.
			steps: []foldStep{
				{after: time.Minute, events: []gpu.HealthEvent{{Kind: gpu.HealthSlowdown, Value: 0.01}}},
			},
			unhealthy: false,
			atLeast:   p.SlowdownFloor, atMost: p.SlowdownFloor,
		},
		{
			name: "info-events-are-free",
			steps: []foldStep{
				{after: time.Minute, events: []gpu.HealthEvent{{Kind: gpu.HealthThermal, Severity: gpu.SeverityInfo}}},
			},
			unhealthy: false,
			atLeast:   1, atMost: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := foldSeq(p, tc.steps)
			if got < tc.atLeast || got > tc.atMost {
				t.Fatalf("final score %v outside [%v, %v]", got, tc.atLeast, tc.atMost)
			}
			if (got < UnhealthyBelow) != tc.unhealthy {
				t.Fatalf("final score %v: unhealthy=%v, want %v", got, got < UnhealthyBelow, tc.unhealthy)
			}
		})
	}
}

func TestFoldHealthProperties(t *testing.T) {
	p := DefaultHealthParams()
	ev := gpu.HealthEvent{Kind: gpu.HealthXIDRecoverable, Severity: gpu.SeverityWarn}

	t.Run("zero-prevAt-starts-at-one", func(t *testing.T) {
		if got := FoldHealth(0.2, time.Time{}, healthEpoch, nil, p); got != 1 {
			t.Fatalf("fold with zero prevAt = %v, want 1 (prev is ignored without history)", got)
		}
	})
	t.Run("events-only-lower", func(t *testing.T) {
		// With no elapsed time, any event batch is monotonically
		// non-increasing in the previous score.
		at := healthEpoch.Add(time.Minute)
		prev := 0.9
		if got := FoldHealth(prev, healthEpoch.Add(time.Minute-time.Nanosecond), at, []gpu.HealthEvent{ev}, p); got > prev {
			t.Fatalf("fold raised %v to %v with a penalty event", prev, got)
		}
	})
	t.Run("decay-is-monotonic-in-elapsed-time", func(t *testing.T) {
		prev, prevAt := 0.3, healthEpoch
		last := prev
		for _, d := range []time.Duration{time.Minute, 10 * time.Minute, time.Hour, 24 * time.Hour} {
			got := FoldHealth(prev, prevAt, prevAt.Add(d), nil, p)
			if got < last {
				t.Fatalf("decay over %v yields %v, below %v at a shorter gap", d, got, last)
			}
			if got > 1 {
				t.Fatalf("decay overshot 1: %v", got)
			}
			last = got
		}
		if halfway := FoldHealth(prev, prevAt, prevAt.Add(p.DecayHalfLife), nil, p); halfway < 0.64 || halfway > 0.66 {
			t.Fatalf("one half-life from 0.3 = %v, want ~0.65", halfway)
		}
	})
	t.Run("floor-holds", func(t *testing.T) {
		events := make([]gpu.HealthEvent, 50)
		for i := range events {
			events[i] = gpu.HealthEvent{Kind: gpu.HealthXIDFatal, Severity: gpu.SeverityCritical}
		}
		if got := FoldHealth(1, healthEpoch, healthEpoch.Add(time.Minute), events, p); got != p.Floor {
			t.Fatalf("50 fatal XIDs fold to %v, want the floor %v", got, p.Floor)
		}
	})
	t.Run("deterministic", func(t *testing.T) {
		events := []gpu.HealthEvent{ev, {Kind: gpu.HealthThermal, Severity: gpu.SeverityCritical}}
		a := FoldHealth(0.7, healthEpoch, healthEpoch.Add(3*time.Minute), events, p)
		b := FoldHealth(0.7, healthEpoch, healthEpoch.Add(3*time.Minute), events, p)
		if a != b {
			t.Fatalf("identical folds diverge: %v vs %v", a, b)
		}
	})
}

func TestFakeHealthSourceDrains(t *testing.T) {
	src := gpu.NewFakeHealthSource()
	if got := src.CollectHealthEvents(); len(got) != 0 {
		t.Fatalf("empty source returned %d events", len(got))
	}
	src.Inject(
		gpu.HealthEvent{Kind: gpu.HealthThermal, Severity: gpu.SeverityWarn},
		gpu.HealthEvent{Kind: gpu.HealthXIDFatal, Severity: gpu.SeverityCritical, XID: 79},
	)
	src.Inject(gpu.HealthEvent{Kind: gpu.HealthSlowdown, Value: 0.5})
	if got := src.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	got := src.CollectHealthEvents()
	if len(got) != 3 {
		t.Fatalf("collected %d events, want 3", len(got))
	}
	if got[0].Kind != gpu.HealthThermal || got[1].XID != 79 || got[2].Value != 0.5 {
		t.Fatalf("events out of injection order: %+v", got)
	}
	if again := src.CollectHealthEvents(); len(again) != 0 {
		t.Fatalf("second collection returned %d events, want 0 (drained)", len(again))
	}
}
