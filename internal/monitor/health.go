package monitor

import (
	"math"
	"time"

	"gpunion/internal/gpu"
)

// Health-score folding. A node's health score is a number in (0, 1]
// — 1 fully healthy — maintained exclusively by FoldHealth: every
// batch of health events the coordinator accepts folds the previous
// (score, instant) pair forward to a new one. The fold is a pure
// function of its inputs, which is what makes the score auditable:
// replaying the same event stream over the same base snapshot must
// land on exactly the stored score (the health-score-consistent
// invariant), on the live store, after WAL recovery, and on a promoted
// standby alike.
//
// Two forces move the score: events push it down multiplicatively
// (each kind/severity has a penalty factor), and elapsed time pulls it
// back toward 1 with a half-life (a node that stops misbehaving
// re-earns placements instead of being unhealthy forever). Decay is
// applied at fold time from the time delta, never from wall-clock
// reads, so the result is deterministic under replay.

// HealthParams tunes the fold. The zero value is not valid; use
// DefaultHealthParams.
type HealthParams struct {
	// DecayHalfLife is how long the score takes to recover half of its
	// distance back to 1.0 in the absence of new events.
	DecayHalfLife time.Duration
	// XIDFatalPenalty .. SlowdownFloor are multiplicative penalty
	// factors in (0, 1]; smaller is harsher.
	XIDFatalPenalty       float64
	XIDRecoverablePenalty float64
	// WarnPenalty and CriticalPenalty grade thermal/power throttling
	// events by severity (info-severity events are recorded but free).
	WarnPenalty     float64
	CriticalPenalty float64
	// SlowdownFloor clamps how harshly one slowdown observation (whose
	// Value is the observed throughput fraction) can cut the score.
	SlowdownFloor float64
	// Floor is the minimum score — degraded nodes stay comparable, and
	// the score stays in (0, 1] like the scheduler's reliability.
	Floor float64
}

// DefaultHealthParams returns the fold used by the coordinator and the
// health-score-consistent invariant. Both sides must use the same
// parameters or the audit recomputation diverges by construction.
func DefaultHealthParams() HealthParams {
	return HealthParams{
		DecayHalfLife:         10 * time.Minute,
		XIDFatalPenalty:       0.10,
		XIDRecoverablePenalty: 0.70,
		WarnPenalty:           0.90,
		CriticalPenalty:       0.75,
		SlowdownFloor:         0.50,
		Floor:                 0.001,
	}
}

// UnhealthyBelow is the platform-wide degradation threshold: a node
// whose health score falls under it stops receiving placements and has
// its jobs predictively checkpointed and migrated away.
const UnhealthyBelow = 0.4

// FoldHealth advances a node's health score: decay the previous score
// toward 1 over at−prevAt, then apply every event's penalty. A zero
// prevAt means no health history (the score starts at 1 and no decay
// applies). Events' own At stamps are informational; the fold is
// ordered by the coordinator's accept instants so replay cannot be
// reordered by skewed agent clocks.
func FoldHealth(prev float64, prevAt, at time.Time, events []gpu.HealthEvent, p HealthParams) float64 {
	score := prev
	if prevAt.IsZero() {
		score = 1
	} else if dt := at.Sub(prevAt); dt > 0 && p.DecayHalfLife > 0 && score < 1 {
		score = 1 - (1-score)*math.Pow(0.5, float64(dt)/float64(p.DecayHalfLife))
	}
	for _, ev := range events {
		score *= penalty(ev, p)
	}
	if score < p.Floor {
		score = p.Floor
	}
	if score > 1 {
		score = 1
	}
	return score
}

// penalty maps one event to its multiplicative factor.
func penalty(ev gpu.HealthEvent, p HealthParams) float64 {
	switch ev.Kind {
	case gpu.HealthXIDFatal:
		return p.XIDFatalPenalty
	case gpu.HealthXIDRecoverable:
		return p.XIDRecoverablePenalty
	case gpu.HealthThermal, gpu.HealthPower:
		switch ev.Severity {
		case gpu.SeverityCritical:
			return p.CriticalPenalty
		case gpu.SeverityWarn:
			return p.WarnPenalty
		}
		return 1
	case gpu.HealthSlowdown:
		// Value is the observed throughput fraction; running at 60% of
		// the expected rate multiplies the score by 0.6, clamped so one
		// wild sample cannot zero the node out.
		f := ev.Value
		if f < p.SlowdownFloor {
			f = p.SlowdownFloor
		}
		if f > 1 {
			f = 1
		}
		return f
	}
	return 1
}
