package monitor

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored
	if c.Value() != 3.5 {
		t.Fatalf("Value = %v, want 3.5", c.Value())
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("Value = %v", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 5, 10)
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 111.5 {
		t.Fatalf("Sum = %v", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 30))
	}
	med := h.Quantile(0.5)
	if med < 5 || med > 25 {
		t.Fatalf("median = %v, want ~15", med)
	}
	if !math.IsNaN(NewHistogram(1).Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(5)
	if q := h.Quantile(-1); math.IsNaN(q) {
		t.Fatal("q<0 returned NaN")
	}
	if q := h.Quantile(2); math.IsNaN(q) {
		t.Fatal("q>1 returned NaN")
	}
}

func TestHistogramUnsortedBounds(t *testing.T) {
	h := NewHistogram(10, 1, 5) // constructor sorts
	h.Observe(3)
	h.Observe(7)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestRegistryCounterReuse(t *testing.T) {
	r := NewRegistry()
	c1, err := r.Counter("jobs_total", "jobs", map[string]string{"state": "done"})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.Counter("jobs_total", "jobs", map[string]string{"state": "done"})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("same name+labels produced different counters")
	}
	c3, err := r.Counter("jobs_total", "jobs", map[string]string{"state": "failed"})
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c3 {
		t.Fatal("different labels shared a counter")
	}
}

func TestRegistryKindConflict(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Counter("x_total", "x", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Gauge("x_total", "x", nil); err == nil {
		t.Fatal("kind conflict not detected")
	}
}

func TestRegistryInvalidName(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "9lives", "has-dash", "has space", "ünïcode"} {
		if _, err := r.Counter(name, "bad", nil); err == nil {
			t.Errorf("invalid name %q accepted", name)
		}
	}
	for _, name := range []string{"a", "_hidden", "gpu_util_99", "CamelCase"} {
		if _, err := r.Counter(name, "good", nil); err != nil {
			t.Errorf("valid name %q rejected: %v", name, err)
		}
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	c, _ := r.Counter("gpunion_jobs_total", "Total jobs", map[string]string{"state": "completed"})
	c.Add(7)
	g, _ := r.Gauge("gpunion_gpu_utilization", "GPU utilization", map[string]string{"node": "n1", "device": "gpu0"})
	g.Set(0.67)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP gpunion_jobs_total Total jobs",
		"# TYPE gpunion_jobs_total counter",
		`gpunion_jobs_total{state="completed"} 7`,
		"# TYPE gpunion_gpu_utilization gauge",
		`gpunion_gpu_utilization{device="gpu0",node="n1"} 0.67`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
}

func TestWriteTextHistogram(t *testing.T) {
	r := NewRegistry()
	h, _ := r.Histogram("sched_latency_seconds", "Scheduling latency", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`sched_latency_seconds_bucket{le="0.1"} 1`,
		`sched_latency_seconds_bucket{le="1"} 2`,
		`sched_latency_seconds_bucket{le="+Inf"} 3`,
		"sched_latency_seconds_sum 5.55",
		"sched_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		for _, node := range []string{"n3", "n1", "n2"} {
			g, _ := r.Gauge("util", "u", map[string]string{"node": node})
			g.Set(1)
		}
		c, _ := r.Counter("total", "t", nil)
		c.Inc()
		var sb strings.Builder
		_ = r.WriteText(&sb)
		return sb.String()
	}
	if build() != build() {
		t.Fatal("exposition output not deterministic")
	}
}

func TestNoLabelsRendering(t *testing.T) {
	r := NewRegistry()
	c, _ := r.Counter("plain_total", "plain", nil)
	c.Inc()
	var sb strings.Builder
	_ = r.WriteText(&sb)
	if !strings.Contains(sb.String(), "plain_total 1\n") {
		t.Fatalf("unlabelled metric rendering wrong:\n%s", sb.String())
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c, err := r.Counter("hits_total", "hits", map[string]string{"path": "/a"})
				if err != nil {
					t.Error(err)
					return
				}
				c.Inc()
				h, err := r.Histogram("lat", "latency", []float64{1, 10}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				h.Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	c, _ := r.Counter("hits_total", "hits", map[string]string{"path": "/a"})
	if c.Value() != 800 {
		t.Fatalf("counter = %v, want 800", c.Value())
	}
}

// Property: histogram count always equals the number of measurable
// (finite) observations — NaN and ±Inf are dropped by Observe.
func TestHistogramCountProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(0, 1, 100)
		var n uint64
		for _, v := range vals {
			h.Observe(v)
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				n++
			}
		}
		return h.Count() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: labelsKey is order-insensitive and distinguishes values.
func TestLabelsKeyProperty(t *testing.T) {
	f := func(a, b string) bool {
		l1 := map[string]string{"x": a, "y": b}
		l2 := map[string]string{"y": b, "x": a}
		if labelsKey(l1) != labelsKey(l2) {
			return false
		}
		if a != b {
			l3 := map[string]string{"x": b, "y": a}
			if a != b && labelsKey(l1) == labelsKey(l3) && a != b {
				return labelsKey(l1) != labelsKey(l3)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
