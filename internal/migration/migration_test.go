package migration

import (
	"errors"
	"testing"
	"time"

	"gpunion/internal/checkpoint"
	"gpunion/internal/db"
	"gpunion/internal/netsim"
	"gpunion/internal/scheduler"
	"gpunion/internal/storage"
)

var now = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

func testNodes() []db.NodeRecord {
	mk := func(id string, status db.NodeStatus) db.NodeRecord {
		return db.NodeRecord{
			ID: id, Status: status,
			GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
				MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
			RegisteredAt: now.Add(-time.Hour),
		}
	}
	return []db.NodeRecord{
		mk("n-gone", db.NodeUnreachable),
		mk("n-alive", db.NodeActive),
		mk("n-other", db.NodeActive),
	}
}

func displacedJob() db.JobRecord {
	return db.JobRecord{
		ID: "j1", State: db.JobMigrating, NodeID: "n-gone",
		PreferredNode: "n-gone", GPUMemMiB: 8192,
		CapabilityMajor: 7, CapabilityMinor: 0,
	}
}

func newEngine(withNet bool) (*Engine, *checkpoint.Store, *netsim.Network) {
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	sched := scheduler.New(nil, scheduler.DefaultReliability())
	var net *netsim.Network
	storageNode := ""
	if withNet {
		net = netsim.New(10 * netsim.Gbps)
		for _, n := range []string{"storage", "n-alive", "n-other", "n-gone"} {
			net.AddNode(netsim.NodeLink{Name: n, Access: netsim.Gbps, Latency: 200 * time.Microsecond})
		}
		storageNode = "storage"
	}
	return New(sched, ckpts, net, storageNode), ckpts, net
}

func saveCheckpoints(t *testing.T, ckpts *checkpoint.Store, jobID string, fullBytes int64, steps ...int64) {
	t.Helper()
	for i, step := range steps {
		ck := checkpoint.Checkpoint{
			JobID: jobID, Seq: i + 1, Bytes: fullBytes,
			Progress:  checkpoint.Progress{Step: step},
			Mechanism: "alc", CreatedAt: now,
		}
		if i > 0 {
			ck.Incremental = true
			ck.BaseSeq = i
			ck.Bytes = fullBytes / 10
		}
		if err := ckpts.Save(ck); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlanAvoidsDepartedNode(t *testing.T) {
	e, ckpts, _ := newEngine(false)
	saveCheckpoints(t, ckpts, "j1", 1000, 500)
	p, err := e.Plan(displacedJob(), testNodes(), ReasonEmergency, now)
	if err != nil {
		t.Fatal(err)
	}
	if p.Placement.NodeID == "n-gone" {
		t.Fatal("migration landed on the departed node")
	}
	if !p.HasCheckpoint || p.RestoreStep != 500 || p.RestoreSeq != 1 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPlanStatelessRequeue(t *testing.T) {
	e, _, _ := newEngine(false)
	p, err := e.Plan(displacedJob(), testNodes(), ReasonEmergency, now)
	if err != nil {
		t.Fatal(err)
	}
	if p.HasCheckpoint || p.RestoreStep != 0 || p.TransferBytes != 0 {
		t.Fatalf("stateless plan = %+v", p)
	}
}

func TestPlanTransferBytesSumChain(t *testing.T) {
	e, ckpts, _ := newEngine(false)
	saveCheckpoints(t, ckpts, "j1", 1000, 100, 200, 300)
	p, err := e.Plan(displacedJob(), testNodes(), ReasonScheduled, now)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(1000 + 100 + 100) // full + two increments
	if p.TransferBytes != want {
		t.Fatalf("TransferBytes = %d, want %d", p.TransferBytes, want)
	}
	if p.RestoreStep != 300 {
		t.Fatalf("RestoreStep = %d", p.RestoreStep)
	}
}

func TestPlanNoTarget(t *testing.T) {
	e, _, _ := newEngine(false)
	job := displacedJob()
	job.GPUMemMiB = 999999 // nothing fits
	_, err := e.Plan(job, testNodes(), ReasonEmergency, now)
	if !errors.Is(err, ErrNoTarget) {
		t.Fatalf("err = %v, want ErrNoTarget", err)
	}
}

func TestPlanWithNetworkModelsTransferTime(t *testing.T) {
	e, ckpts, net := newEngine(true)
	// 1 GB checkpoint on a 1 Gbps access link ≈ 8 s.
	saveCheckpoints(t, ckpts, "j1", 1_000_000_000, 500)
	p, err := e.Plan(displacedJob(), testNodes(), ReasonEmergency, now)
	if err != nil {
		t.Fatal(err)
	}
	if p.TransferTime < 7*time.Second || p.TransferTime > 10*time.Second {
		t.Fatalf("TransferTime = %v, want ≈8 s", p.TransferTime)
	}
	if net.Accountant().TotalBytes(netsim.TrafficMigration) != p.TransferBytes {
		t.Fatal("migration traffic not accounted")
	}
}

func TestMigrateBackPrefersOriginalNode(t *testing.T) {
	e, _, _ := newEngine(false)
	nodes := testNodes()
	nodes[0].Status = db.NodeActive // n-gone has returned
	job := displacedJob()
	job.NodeID = "n-alive" // currently running elsewhere
	job.PreferredNode = "n-gone"
	p, err := e.Plan(job, nodes, ReasonMigrateBack, now)
	if err != nil {
		t.Fatal(err)
	}
	if p.Placement.NodeID != "n-gone" {
		t.Fatalf("migrate-back chose %s, want n-gone", p.Placement.NodeID)
	}
}

func TestStatsAccounting(t *testing.T) {
	e, _, _ := newEngine(false)
	e.RecordAttempt(ReasonScheduled)
	e.RecordAttempt(ReasonScheduled)
	e.RecordSuccess(ReasonScheduled, 100, 30*time.Second)
	e.RecordFailure(ReasonScheduled)
	e.RecordAttempt(ReasonEmergency)
	e.RecordSuccess(ReasonEmergency, 900, 2*time.Minute)

	s := e.Stats()
	if got := s.SuccessRate(ReasonScheduled); got != 0.5 {
		t.Fatalf("scheduled success rate = %v", got)
	}
	if got := s.SuccessRate(ReasonEmergency); got != 1.0 {
		t.Fatalf("emergency success rate = %v", got)
	}
	if got := s.SuccessRate(ReasonTemporary); got != 0 {
		t.Fatalf("unattempted success rate = %v", got)
	}
	if got := s.MeanDowntime(ReasonScheduled); got != 30*time.Second {
		t.Fatalf("mean downtime = %v", got)
	}
	if got := s.MeanLostSteps(ReasonEmergency); got != 900 {
		t.Fatalf("mean lost steps = %v", got)
	}
}

func TestStatsCloneIsolated(t *testing.T) {
	e, _, _ := newEngine(false)
	e.RecordAttempt(ReasonScheduled)
	snap := e.Stats()
	snap.Attempts[ReasonScheduled] = 999
	if e.Stats().Attempts[ReasonScheduled] != 1 {
		t.Fatal("Stats snapshot aliases engine state")
	}
}

func TestP95Downtime(t *testing.T) {
	e, _, _ := newEngine(false)
	for i := 1; i <= 100; i++ {
		e.RecordSuccess(ReasonEmergency, 0, time.Duration(i)*time.Second)
	}
	p95 := e.Stats().P95Downtime(ReasonEmergency)
	if p95 < 90*time.Second || p95 > 100*time.Second {
		t.Fatalf("p95 = %v, want ~95 s", p95)
	}
	if e.Stats().P95Downtime(ReasonTemporary) != 0 {
		t.Fatal("empty p95 should be 0")
	}
}
