package migration

import (
	"fmt"
	"testing"
	"time"

	"gpunion/internal/checkpoint"
	"gpunion/internal/db"
	"gpunion/internal/netsim"
	"gpunion/internal/scheduler"
	"gpunion/internal/storage"
)

// batchNodes builds a departed source plus targets with capacity GPUs
// each.
func batchNodes(targets, gpusEach int) []db.NodeRecord {
	nodes := []db.NodeRecord{{
		ID: "n-gone", Status: db.NodeUnreachable,
		RegisteredAt: now.Add(-time.Hour),
	}}
	for i := 0; i < targets; i++ {
		rec := db.NodeRecord{
			ID: fmt.Sprintf("t%d", i), Status: db.NodeActive,
			RegisteredAt: now.Add(-time.Hour),
		}
		for g := 0; g < gpusEach; g++ {
			rec.GPUs = append(rec.GPUs, db.GPUInfo{
				DeviceID: fmt.Sprintf("gpu%d", g), Model: "RTX 3090",
				MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6,
			})
		}
		nodes = append(nodes, rec)
	}
	return nodes
}

func displacedJobs(n int) []db.JobRecord {
	jobs := make([]db.JobRecord, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, db.JobRecord{
			ID: fmt.Sprintf("j%d", i), State: db.JobMigrating, NodeID: "n-gone",
			GPUMemMiB: 8192, CapabilityMajor: 7, CapabilityMinor: 0,
		})
	}
	return jobs
}

func TestPlanBatchNoDoubleDeviceAssignment(t *testing.T) {
	e, ckpts, _ := newEngine(false)
	for i := 0; i < 4; i++ {
		saveCheckpoints(t, ckpts, fmt.Sprintf("j%d", i), 1000, 100)
	}
	// 2 targets × 2 GPUs = exactly 4 slots for 4 jobs.
	items := e.PlanBatch(displacedJobs(4), batchNodes(2, 2), ReasonEmergency, now)
	seen := make(map[string]bool)
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
		key := item.Plan.Placement.NodeID + "/" + item.Plan.Placement.DeviceID
		if seen[key] {
			t.Fatalf("device %s assigned twice in one batch", key)
		}
		seen[key] = true
	}
}

func TestPlanBatchOverflowFailsCleanly(t *testing.T) {
	e, _, _ := newEngine(false)
	// 5 jobs, 4 slots: exactly one must fail with ErrNoTarget.
	items := e.PlanBatch(displacedJobs(5), batchNodes(2, 2), ReasonEmergency, now)
	failures := 0
	for _, item := range items {
		if item.Err != nil {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want exactly 1", failures)
	}
}

// newBatchNetEngine builds an engine over a LAN with the batch test's
// topology registered.
func newBatchNetEngine(targets int) (*Engine, *checkpoint.Store, *netsim.Network) {
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	sched := scheduler.New(nil, scheduler.DefaultReliability())
	net := netsim.New(10 * netsim.Gbps)
	net.AddNode(netsim.NodeLink{Name: "storage", Access: 10 * netsim.Gbps, Latency: 200 * time.Microsecond})
	net.AddNode(netsim.NodeLink{Name: "n-gone", Access: netsim.Gbps, Latency: 200 * time.Microsecond})
	for i := 0; i < targets; i++ {
		net.AddNode(netsim.NodeLink{Name: fmt.Sprintf("t%d", i), Access: netsim.Gbps, Latency: 200 * time.Microsecond})
	}
	return New(sched, ckpts, net, "storage"), ckpts, net
}

func TestPlanBatchTransfersOverlap(t *testing.T) {
	e, ckpts, net := newBatchNetEngine(1)
	// Two jobs with 1 GB chains, both restored to the same single
	// target node: their flows share the 1 Gbps downlink, so each takes
	// about twice the solo time.
	for i := 0; i < 2; i++ {
		saveCheckpoints(t, ckpts, fmt.Sprintf("j%d", i), 1_000_000_000, 100)
	}
	nodes := batchNodes(1, 2)
	items := e.PlanBatch(displacedJobs(2), nodes, ReasonEmergency, now)
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
	}
	solo := 8 * time.Second // 1 GB at 1 Gbps
	slower := items[0].Plan.TransferTime
	if items[1].Plan.TransferTime > slower {
		slower = items[1].Plan.TransferTime
	}
	if slower < time.Duration(1.5*float64(solo)) {
		t.Fatalf("contended transfer = %v, want ≈2× solo (%v)", slower, solo)
	}
	if got := net.ActiveFlows(); got != 0 {
		t.Fatalf("flows leaked: %d active after batch", got)
	}
}

func TestPlanBatchStatelessJobsSkipTransfers(t *testing.T) {
	e, _, net := newBatchNetEngine(2)
	items := e.PlanBatch(displacedJobs(3), batchNodes(2, 2), ReasonEmergency, now)
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
		if item.Plan.HasCheckpoint || item.Plan.TransferTime != 0 {
			t.Fatalf("stateless plan %d = %+v", i, item.Plan)
		}
	}
	if net.Accountant().TotalBytes(netsim.TrafficMigration) != 0 {
		t.Fatal("stateless batch moved bytes")
	}
}

func TestPlanBatchEmpty(t *testing.T) {
	e, _, _ := newEngine(false)
	if items := e.PlanBatch(nil, batchNodes(1, 1), ReasonEmergency, now); len(items) != 0 {
		t.Fatalf("items = %v", items)
	}
}
