// Package migration implements GPUnion's resilient-execution mechanism
// (§3.5): when a provider departs — gracefully, silently, or temporarily
// — the workloads it hosted are relaunched elsewhere from their latest
// application-level checkpoints; stateless work is simply requeued.
// When a temporarily-departed provider returns, displaced workloads can
// be migrated back to their original node.
//
// The package separates planning (pure decision: target node, restore
// point, bytes to move) from execution (the coordinator drives agents),
// and keeps the per-scenario statistics that reproduce the paper's
// Fig. 3.
package migration

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpunion/internal/checkpoint"
	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/netsim"
	"gpunion/internal/scheduler"
)

// Reason classifies why a migration happened, matching the paper's three
// interruption scenarios plus the migrate-back path.
type Reason string

// Migration reasons.
const (
	ReasonScheduled   Reason = "scheduled" // graceful provider shutdown
	ReasonEmergency   Reason = "emergency" // heartbeat loss
	ReasonTemporary   Reason = "temporary" // provider pause with return intent
	ReasonMigrateBack Reason = "migrate-back"
	// ReasonPredictive is a checkpoint-then-migrate drain off a node
	// whose health score crossed the unhealthy threshold: the node is
	// still alive, so the job checkpoints in place before moving — no
	// work is lost, unlike the emergency path.
	ReasonPredictive Reason = "predictive"
)

// ErrNoTarget is returned when no node can host the displaced job.
var ErrNoTarget = errors.New("migration: no compatible target node")

// Plan is a computed migration decision, ready for execution.
type Plan struct {
	JobID string
	// From is the node the job is leaving (may be gone already).
	From string
	// Placement is the chosen target.
	Placement scheduler.Placement
	// HasCheckpoint reports whether state is being restored; stateless
	// jobs restart from step 0.
	HasCheckpoint bool
	// RestoreSeq / RestoreStep locate the resume point.
	RestoreSeq  int
	RestoreStep int64
	// TransferBytes is the restore-chain payload that must move to the
	// target node.
	TransferBytes int64
	// TransferTime is the modelled LAN transfer duration (zero without
	// a network model).
	TransferTime time.Duration
	Reason       Reason
}

// Engine plans migrations and accumulates outcome statistics.
type Engine struct {
	sched *scheduler.Scheduler
	ckpts *checkpoint.Store
	// net and storageNode model the LAN transfer of checkpoint data
	// from the storage location to the target; both optional.
	net         *netsim.Network
	storageNode string

	stats Stats
	mu    sync.Mutex
}

// New creates an engine. net may be nil (no transfer-time modelling);
// storageNode names the netsim node holding checkpoint data.
func New(sched *scheduler.Scheduler, ckpts *checkpoint.Store, net *netsim.Network, storageNode string) *Engine {
	return &Engine{
		sched:       sched,
		ckpts:       ckpts,
		net:         net,
		storageNode: storageNode,
		stats:       newStats(),
	}
}

// Plan computes where and how to relaunch one displaced job. nodes is
// the current node set (the departed node may be included; it is
// excluded via AvoidNodes). reason drives statistics and the preference
// for the original node on migrate-back.
func (e *Engine) Plan(job db.JobRecord, nodes []db.NodeRecord, reason Reason, now time.Time) (Plan, error) {
	p := Plan{JobID: job.ID, From: job.NodeID, Reason: reason}
	e.fillRestorePoint(&p)

	req := scheduler.Request{
		JobID:       job.ID,
		GPUMemMiB:   job.GPUMemMiB,
		Capability:  gpu.ComputeCapability{Major: job.CapabilityMajor, Minor: job.CapabilityMinor},
		Priority:    job.Priority,
		LongRunning: true,
		AvoidNodes:  []string{job.NodeID},
	}
	if reason == ReasonMigrateBack {
		req.AvoidNodes = nil
		req.PreferNode = job.PreferredNode
	}
	placement, err := e.sched.Schedule(req, nodes, now)
	if err != nil {
		return Plan{}, fmt.Errorf("%w: job %s (%v)", ErrNoTarget, job.ID, err)
	}
	p.Placement = placement

	if e.net != nil && p.TransferBytes > 0 && e.storageNode != "" {
		end, terr := e.net.Transfer(e.storageNode, placement.NodeID, p.TransferBytes,
			netsim.TrafficMigration, now)
		if terr == nil {
			p.TransferTime = end.Sub(now)
		}
	}
	return p, nil
}

// fillRestorePoint resolves the job's restore chain once and derives
// both the resume point (the chain head) and the transfer size (the
// chain's byte total) from it — one verification walk, not the two that
// separate Latest + RestoreBytes calls would cost. No restorable chain
// means a stateless restart.
func (e *Engine) fillRestorePoint(p *Plan) {
	chain, err := e.ckpts.RestoreChain(p.JobID)
	if err != nil || len(chain) == 0 {
		return
	}
	head := chain[len(chain)-1]
	p.HasCheckpoint = true
	p.RestoreSeq = head.Seq
	p.RestoreStep = head.Progress.Step
	for _, ck := range chain {
		p.TransferBytes += ck.Bytes
	}
}

// BatchItem is one job's outcome within a PlanBatch call.
type BatchItem struct {
	Plan Plan
	Err  error
}

// PlanBatch plans migrations for all jobs displaced by one departure
// event. Unlike sequential Plan calls, the batch (i) tracks device
// assignments across decisions so two jobs never land on the same free
// device, and (ii) overlaps the restore transfers on the network model,
// so concurrent migrations contend for link bandwidth — the effect that
// produces the heavy tail in migration downtime.
func (e *Engine) PlanBatch(jobs []db.JobRecord, nodes []db.NodeRecord, reason Reason, now time.Time) []BatchItem {
	// Work on a private copy of the node view so in-batch device
	// assignments are visible to later decisions.
	view := make([]db.NodeRecord, len(nodes))
	for i, n := range nodes {
		view[i] = n
		view[i].GPUs = append([]db.GPUInfo(nil), n.GPUs...)
	}

	out := make([]BatchItem, len(jobs))
	var flows []*netsim.Flow
	flowIdx := make([]int, 0, len(jobs))

	for i, job := range jobs {
		p := Plan{JobID: job.ID, From: job.NodeID, Reason: reason}
		e.fillRestorePoint(&p)
		req := scheduler.Request{
			JobID:       job.ID,
			GPUMemMiB:   job.GPUMemMiB,
			Capability:  gpu.ComputeCapability{Major: job.CapabilityMajor, Minor: job.CapabilityMinor},
			Priority:    job.Priority,
			LongRunning: true,
			AvoidNodes:  []string{job.NodeID},
		}
		placement, err := e.sched.Schedule(req, view, now)
		if err != nil {
			out[i] = BatchItem{Err: fmt.Errorf("%w: job %s (%v)", ErrNoTarget, job.ID, err)}
			continue
		}
		p.Placement = placement
		// Mark the chosen device taken for the rest of the batch.
		for vi := range view {
			if view[vi].ID != placement.NodeID {
				continue
			}
			for di := range view[vi].GPUs {
				if view[vi].GPUs[di].DeviceID == placement.DeviceID {
					view[vi].GPUs[di].Allocated = true
				}
			}
		}
		out[i] = BatchItem{Plan: p}
		if e.net != nil && p.TransferBytes > 0 && e.storageNode != "" {
			f, ferr := e.net.StartFlow(e.storageNode, placement.NodeID, p.TransferBytes,
				netsim.TrafficMigration, now)
			if ferr == nil {
				flows = append(flows, f)
				flowIdx = append(flowIdx, i)
			}
		}
	}

	// All flows of the event overlap: durations reflect shared links.
	for k, f := range flows {
		d := f.Duration()
		out[flowIdx[k]].Plan.TransferTime = d
		_ = e.net.FinishFlow(f, now.Add(d))
	}
	return out
}

// Stats returns a snapshot of accumulated outcomes.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats.clone()
}

// RecordAttempt notes that a migration was initiated.
func (e *Engine) RecordAttempt(reason Reason) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Attempts[reason]++
}

// RecordSuccess notes a completed migration with the work lost (steps
// redone from the checkpoint) and the downtime until the job ran again.
func (e *Engine) RecordSuccess(reason Reason, lostSteps int64, downtime time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Successes[reason]++
	e.stats.LostSteps[reason] += lostSteps
	e.stats.Downtime[reason] += downtime
	e.stats.downtimes[reason] = append(e.stats.downtimes[reason], downtime)
}

// RecordFailure notes a migration that could not complete (no target).
func (e *Engine) RecordFailure(reason Reason) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Failures[reason]++
}

// Stats aggregates migration outcomes per reason — the data behind the
// paper's Fig. 3.
type Stats struct {
	Attempts  map[Reason]int
	Successes map[Reason]int
	Failures  map[Reason]int
	// LostSteps is total work redone after restores.
	LostSteps map[Reason]int64
	// Downtime is the cumulative out-of-service time.
	Downtime  map[Reason]time.Duration
	downtimes map[Reason][]time.Duration
}

func newStats() Stats {
	return Stats{
		Attempts:  make(map[Reason]int),
		Successes: make(map[Reason]int),
		Failures:  make(map[Reason]int),
		LostSteps: make(map[Reason]int64),
		Downtime:  make(map[Reason]time.Duration),
		downtimes: make(map[Reason][]time.Duration),
	}
}

func (s Stats) clone() Stats {
	out := newStats()
	for k, v := range s.Attempts {
		out.Attempts[k] = v
	}
	for k, v := range s.Successes {
		out.Successes[k] = v
	}
	for k, v := range s.Failures {
		out.Failures[k] = v
	}
	for k, v := range s.LostSteps {
		out.LostSteps[k] = v
	}
	for k, v := range s.Downtime {
		out.Downtime[k] = v
	}
	for k, v := range s.downtimes {
		out.downtimes[k] = append([]time.Duration(nil), v...)
	}
	return out
}

// SuccessRate returns successes/attempts for a reason (0 when no
// attempts were made).
func (s Stats) SuccessRate(reason Reason) float64 {
	a := s.Attempts[reason]
	if a == 0 {
		return 0
	}
	return float64(s.Successes[reason]) / float64(a)
}

// MeanDowntime returns the average downtime for a reason.
func (s Stats) MeanDowntime(reason Reason) time.Duration {
	n := s.Successes[reason]
	if n == 0 {
		return 0
	}
	return s.Downtime[reason] / time.Duration(n)
}

// P95Downtime returns the 95th-percentile downtime for a reason.
func (s Stats) P95Downtime(reason Reason) time.Duration {
	ds := append([]time.Duration(nil), s.downtimes[reason]...)
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(0.95 * float64(len(ds)-1))
	return ds[idx]
}

// RateWithin returns the fraction of attempted migrations of the reason
// that completed with downtime at most d. Failed migrations count
// against the rate — this is the paper's "successfully migrated within
// the specified time" metric.
func (s Stats) RateWithin(reason Reason, d time.Duration) float64 {
	attempts := s.Attempts[reason]
	if attempts == 0 {
		return 0
	}
	within := 0
	for _, dt := range s.downtimes[reason] {
		if dt <= d {
			within++
		}
	}
	return float64(within) / float64(attempts)
}

// MeanLostSteps returns the average steps redone per successful
// migration for a reason.
func (s Stats) MeanLostSteps(reason Reason) float64 {
	n := s.Successes[reason]
	if n == 0 {
		return 0
	}
	return float64(s.LostSteps[reason]) / float64(n)
}
