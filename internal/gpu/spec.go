// Package gpu models the GPU hardware that GPUnion schedules against.
//
// GPUnion itself never executes CUDA kernels: the platform allocates
// devices by attributes (memory capacity, compute capability), binds them
// to containers, and reads telemetry (utilization, memory, temperature,
// power) for monitoring and scheduling decisions. This package provides a
// parameterised device model that exercises exactly those code paths,
// standing in for PyNVML + physical boards in the paper's testbed.
package gpu

import "fmt"

// Architecture names a GPU micro-architecture family. Cross-architecture
// restore is the failure mode that rules out CRIU-style system
// checkpointing in the paper (§3.5), so architecture identity matters for
// the migration engine and the ALC-vs-CRIU ablation.
type Architecture string

// Architectures present in the paper's campus deployment.
const (
	Ampere Architecture = "ampere" // RTX 3090, A100, A6000
	Ada    Architecture = "ada"    // RTX 4090
)

// ComputeCapability is the CUDA compute capability (major, minor).
type ComputeCapability struct {
	Major int `json:"major"`
	Minor int `json:"minor"`
}

// AtLeast reports whether c satisfies a job's minimum requirement.
func (c ComputeCapability) AtLeast(min ComputeCapability) bool {
	if c.Major != min.Major {
		return c.Major > min.Major
	}
	return c.Minor >= min.Minor
}

// String renders the capability in the conventional "8.6" form.
func (c ComputeCapability) String() string {
	return fmt.Sprintf("%d.%d", c.Major, c.Minor)
}

// Spec is the static description of a GPU model.
type Spec struct {
	// Model is the marketing name, e.g. "RTX 3090".
	Model string `json:"model"`
	// Arch is the micro-architecture family.
	Arch Architecture `json:"arch"`
	// MemoryMiB is the on-board memory capacity.
	MemoryMiB int64 `json:"memory_mib"`
	// Capability is the CUDA compute capability.
	Capability ComputeCapability `json:"capability"`
	// FP32TFLOPS is peak single-precision throughput, used by the
	// workload model to convert training steps into wall time.
	FP32TFLOPS float64 `json:"fp32_tflops"`
	// MemBandwidthGBs is memory bandwidth in GB/s.
	MemBandwidthGBs float64 `json:"mem_bandwidth_gbs"`
	// PowerLimitW is the board power limit; IdlePowerW the idle draw.
	PowerLimitW float64 `json:"power_limit_w"`
	IdlePowerW  float64 `json:"idle_power_w"`
}

// Catalog of the GPU models in the paper's deployment (8 workstations
// with one RTX 3090 each, one 8×4090 server, one 2×A100 server, one
// 4×A6000 server). Values are the public board specifications.
var (
	RTX3090 = Spec{
		Model: "RTX 3090", Arch: Ampere, MemoryMiB: 24576,
		Capability: ComputeCapability{8, 6}, FP32TFLOPS: 35.6,
		MemBandwidthGBs: 936, PowerLimitW: 350, IdlePowerW: 25,
	}
	RTX4090 = Spec{
		Model: "RTX 4090", Arch: Ada, MemoryMiB: 24576,
		Capability: ComputeCapability{8, 9}, FP32TFLOPS: 82.6,
		MemBandwidthGBs: 1008, PowerLimitW: 450, IdlePowerW: 22,
	}
	A100 = Spec{
		Model: "A100", Arch: Ampere, MemoryMiB: 81920,
		Capability: ComputeCapability{8, 0}, FP32TFLOPS: 19.5,
		MemBandwidthGBs: 2039, PowerLimitW: 400, IdlePowerW: 35,
	}
	A6000 = Spec{
		Model: "A6000", Arch: Ampere, MemoryMiB: 49152,
		Capability: ComputeCapability{8, 6}, FP32TFLOPS: 38.7,
		MemBandwidthGBs: 768, PowerLimitW: 300, IdlePowerW: 25,
	}
)

// SpecByModel looks up a catalog spec by model name.
func SpecByModel(model string) (Spec, bool) {
	switch model {
	case RTX3090.Model:
		return RTX3090, true
	case RTX4090.Model:
		return RTX4090, true
	case A100.Model:
		return A100, true
	case A6000.Model:
		return A6000, true
	}
	return Spec{}, false
}
