package gpu

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestComputeCapabilityAtLeast(t *testing.T) {
	cases := []struct {
		have, min ComputeCapability
		want      bool
	}{
		{ComputeCapability{8, 6}, ComputeCapability{8, 0}, true},
		{ComputeCapability{8, 0}, ComputeCapability{8, 6}, false},
		{ComputeCapability{8, 6}, ComputeCapability{8, 6}, true},
		{ComputeCapability{9, 0}, ComputeCapability{8, 9}, true},
		{ComputeCapability{7, 5}, ComputeCapability{8, 0}, false},
		{ComputeCapability{8, 9}, ComputeCapability{0, 0}, true},
	}
	for _, c := range cases {
		if got := c.have.AtLeast(c.min); got != c.want {
			t.Errorf("%v.AtLeast(%v) = %v, want %v", c.have, c.min, got, c.want)
		}
	}
}

func TestComputeCapabilityString(t *testing.T) {
	if s := (ComputeCapability{8, 6}).String(); s != "8.6" {
		t.Fatalf("String() = %q", s)
	}
}

func TestSpecByModel(t *testing.T) {
	for _, m := range []string{"RTX 3090", "RTX 4090", "A100", "A6000"} {
		spec, ok := SpecByModel(m)
		if !ok || spec.Model != m {
			t.Errorf("SpecByModel(%q) = %+v, %v", m, spec, ok)
		}
	}
	if _, ok := SpecByModel("H100"); ok {
		t.Error("SpecByModel(H100) should be unknown")
	}
}

func TestCatalogSanity(t *testing.T) {
	for _, s := range []Spec{RTX3090, RTX4090, A100, A6000} {
		if s.MemoryMiB <= 0 || s.FP32TFLOPS <= 0 || s.PowerLimitW <= s.IdlePowerW {
			t.Errorf("catalog spec %q has nonsense values: %+v", s.Model, s)
		}
	}
	if RTX4090.Arch != Ada {
		t.Error("4090 should be Ada")
	}
	if A100.Arch != Ampere {
		t.Error("A100 should be Ampere")
	}
}

func TestAllocateRelease(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	if err := d.Allocate("c1", 8000); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if d.AllocatedTo() != "c1" || d.Free() {
		t.Fatal("device should be held by c1")
	}
	if err := d.Release("c1"); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if !d.Free() {
		t.Fatal("device should be free after release")
	}
}

func TestDoubleAllocateFails(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	if err := d.Allocate("c1", 1000); err != nil {
		t.Fatal(err)
	}
	err := d.Allocate("c2", 1000)
	if !errors.Is(err, ErrAlreadyAllocated) {
		t.Fatalf("second Allocate err = %v, want ErrAlreadyAllocated", err)
	}
}

func TestAllocateOverCapacityFails(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	err := d.Allocate("c1", RTX3090.MemoryMiB+1)
	if !errors.Is(err, ErrInsufficientMemory) {
		t.Fatalf("err = %v, want ErrInsufficientMemory", err)
	}
	if !d.Free() {
		t.Fatal("failed allocation must leave the device free")
	}
}

func TestReleaseWrongHolderFails(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	if err := d.Allocate("c1", 100); err != nil {
		t.Fatal(err)
	}
	if err := d.Release("c2"); !errors.Is(err, ErrAlreadyAllocated) {
		t.Fatalf("Release by wrong holder err = %v", err)
	}
	if d.AllocatedTo() != "c1" {
		t.Fatal("wrong-holder release must not free the device")
	}
}

func TestReleaseFreeDeviceFails(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	if err := d.Release("c1"); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("err = %v, want ErrNotAllocated", err)
	}
}

func TestTelemetryIdle(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	tel := d.Telemetry()
	if tel.Utilization != 0 || tel.Allocated {
		t.Fatalf("idle telemetry = %+v", tel)
	}
	if tel.PowerW != RTX3090.IdlePowerW {
		t.Fatalf("idle power = %v, want %v", tel.PowerW, RTX3090.IdlePowerW)
	}
	if tel.TemperatureC < 30 || tel.TemperatureC > 40 {
		t.Fatalf("idle temp = %v, want ~34", tel.TemperatureC)
	}
}

func TestTelemetryUnderLoad(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	if err := d.Allocate("c1", 20000); err != nil {
		t.Fatal(err)
	}
	d.SetUtilization(1.0)
	tel := d.Telemetry()
	if tel.PowerW != RTX3090.PowerLimitW {
		t.Fatalf("full-load power = %v, want %v", tel.PowerW, RTX3090.PowerLimitW)
	}
	if tel.TemperatureC < 80 {
		t.Fatalf("full-load temp = %v, want >=80", tel.TemperatureC)
	}
	if !tel.Allocated || tel.UsedMemMiB != 20000 {
		t.Fatalf("telemetry = %+v", tel)
	}
}

func TestSetUtilizationClamps(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	d.SetUtilization(2.5)
	if u := d.Telemetry().Utilization; u != 1 {
		t.Fatalf("util = %v, want clamp to 1", u)
	}
	d.SetUtilization(-1)
	if u := d.Telemetry().Utilization; u != 0 {
		t.Fatalf("util = %v, want clamp to 0", u)
	}
}

func TestSetUsedMemoryClamps(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	d.SetUsedMemory(RTX3090.MemoryMiB * 2)
	if m := d.Telemetry().UsedMemMiB; m != RTX3090.MemoryMiB {
		t.Fatalf("mem = %v, want clamp to capacity", m)
	}
	d.SetUsedMemory(-5)
	if m := d.Telemetry().UsedMemMiB; m != 0 {
		t.Fatalf("mem = %v, want clamp to 0", m)
	}
}

func TestReleaseResetsTelemetry(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	if err := d.Allocate("c1", 100); err != nil {
		t.Fatal(err)
	}
	d.SetUtilization(0.9)
	if err := d.Release("c1"); err != nil {
		t.Fatal(err)
	}
	tel := d.Telemetry()
	if tel.Utilization != 0 || tel.UsedMemMiB != 0 {
		t.Fatalf("post-release telemetry = %+v, want zeroed", tel)
	}
}

func TestInventoryLookup(t *testing.T) {
	inv := NewInventory(RTX4090, 8)
	if inv.Len() != 8 {
		t.Fatalf("Len = %d", inv.Len())
	}
	d, err := inv.Device("gpu7")
	if err != nil || d.Spec.Model != "RTX 4090" {
		t.Fatalf("Device(gpu7) = %v, %v", d, err)
	}
	if _, err := inv.Device("gpu8"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("missing device err = %v", err)
	}
}

func TestMixedInventory(t *testing.T) {
	inv := NewMixedInventory(A100, A100, A6000)
	if inv.Len() != 3 {
		t.Fatalf("Len = %d", inv.Len())
	}
	d0, _ := inv.Device("gpu0")
	d2, _ := inv.Device("gpu2")
	if d0.Spec.Model != "A100" || d2.Spec.Model != "A6000" {
		t.Fatalf("mixed inventory wrong specs: %s, %s", d0.Spec.Model, d2.Spec.Model)
	}
}

func TestFindFreeRespectsConstraints(t *testing.T) {
	inv := NewMixedInventory(RTX3090, A100)
	// 40 GiB only fits the A100.
	d := inv.FindFree(40960, ComputeCapability{})
	if d == nil || d.Spec.Model != "A100" {
		t.Fatalf("FindFree(40GiB) = %v, want the A100", d)
	}
	// Capability 8.9 fits neither (3090/A100 are 8.6/8.0).
	if d := inv.FindFree(1024, ComputeCapability{8, 9}); d != nil {
		t.Fatalf("FindFree(cc>=8.9) = %v, want nil", d.Spec.Model)
	}
}

func TestFindFreeSkipsAllocated(t *testing.T) {
	inv := NewInventory(RTX3090, 2)
	d0, _ := inv.Device("gpu0")
	if err := d0.Allocate("c1", 100); err != nil {
		t.Fatal(err)
	}
	d := inv.FindFree(100, ComputeCapability{})
	if d == nil || d.ID != "gpu1" {
		t.Fatalf("FindFree = %v, want gpu1", d)
	}
	if inv.CountFree() != 1 {
		t.Fatalf("CountFree = %d, want 1", inv.CountFree())
	}
}

func TestSnapshotCoversAllDevices(t *testing.T) {
	inv := NewInventory(A6000, 4)
	snap := inv.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for _, tel := range snap {
		if tel.Model != "A6000" || tel.TotalMemMiB != A6000.MemoryMiB {
			t.Fatalf("telemetry = %+v", tel)
		}
	}
}

func TestAvgUtilization(t *testing.T) {
	inv := NewInventory(RTX3090, 2)
	d0, _ := inv.Device("gpu0")
	d1, _ := inv.Device("gpu1")
	d0.SetUtilization(1.0)
	d1.SetUtilization(0.0)
	if got := inv.AvgUtilization(); got != 0.5 {
		t.Fatalf("AvgUtilization = %v, want 0.5", got)
	}
}

func TestAvgUtilizationEmptyInventory(t *testing.T) {
	inv := NewMixedInventory()
	if got := inv.AvgUtilization(); got != 0 {
		t.Fatalf("empty AvgUtilization = %v", got)
	}
}

func TestConcurrentAllocationExclusive(t *testing.T) {
	d := NewDevice("gpu0", RTX3090)
	var wg sync.WaitGroup
	wins := make(chan string, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := string(rune('a' + i))
			if err := d.Allocate(id, 100); err == nil {
				wins <- id
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var holders []string
	for h := range wins {
		holders = append(holders, h)
	}
	if len(holders) != 1 {
		t.Fatalf("%d goroutines won exclusive allocation, want 1", len(holders))
	}
	if d.AllocatedTo() != holders[0] {
		t.Fatalf("AllocatedTo = %q, winner %q", d.AllocatedTo(), holders[0])
	}
}

// Property: telemetry power and temperature are monotone in utilization
// and always within [idle, limit].
func TestTelemetryMonotoneProperty(t *testing.T) {
	f := func(rawU1, rawU2 uint8) bool {
		u1 := float64(rawU1) / 255
		u2 := float64(rawU2) / 255
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		d := NewDevice("gpu0", RTX4090)
		d.SetUtilization(u1)
		t1 := d.Telemetry()
		d.SetUtilization(u2)
		t2 := d.Telemetry()
		if t1.PowerW > t2.PowerW || t1.TemperatureC > t2.TemperatureC {
			return false
		}
		for _, tel := range []Telemetry{t1, t2} {
			if tel.PowerW < RTX4090.IdlePowerW-1e-9 || tel.PowerW > RTX4090.PowerLimitW+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FindFree never returns a device violating the constraints.
func TestFindFreeConstraintProperty(t *testing.T) {
	f := func(memRaw uint16, maj, min uint8) bool {
		mem := int64(memRaw) * 4 // 0..256 GiB in MiB steps
		cc := ComputeCapability{int(maj % 10), int(min % 10)}
		inv := NewMixedInventory(RTX3090, RTX4090, A100, A6000)
		d := inv.FindFree(mem, cc)
		if d == nil {
			return true
		}
		return d.Spec.MemoryMiB >= mem && d.Spec.Capability.AtLeast(cc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
