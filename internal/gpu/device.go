package gpu

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by device allocation operations.
var (
	ErrAlreadyAllocated   = errors.New("gpu: device already allocated")
	ErrNotAllocated       = errors.New("gpu: device not allocated")
	ErrInsufficientMemory = errors.New("gpu: insufficient device memory")
	ErrUnknownDevice      = errors.New("gpu: unknown device")
)

// Device is a single simulated GPU board. A device can be exclusively
// allocated to one workload at a time (GPUnion's containers get whole-GPU
// passthrough, matching NVIDIA_VISIBLE_DEVICES semantics in the paper).
type Device struct {
	// ID is the node-local index-based identifier, e.g. "gpu0".
	ID   string
	Spec Spec

	mu          sync.Mutex
	allocatedTo string // container ID, "" if free
	usedMemMiB  int64
	utilization float64 // 0..1, set by the attached workload
}

// NewDevice creates a free device with the given local ID and spec.
func NewDevice(id string, spec Spec) *Device {
	return &Device{ID: id, Spec: spec}
}

// Allocate exclusively assigns the device to a container. It fails if the
// device is busy or the requested memory exceeds capacity.
func (d *Device) Allocate(containerID string, memMiB int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.allocatedTo != "" {
		return fmt.Errorf("%w: held by %s", ErrAlreadyAllocated, d.allocatedTo)
	}
	if memMiB > d.Spec.MemoryMiB {
		return fmt.Errorf("%w: requested %d MiB > capacity %d MiB",
			ErrInsufficientMemory, memMiB, d.Spec.MemoryMiB)
	}
	d.allocatedTo = containerID
	d.usedMemMiB = memMiB
	return nil
}

// Release frees the device. Releasing a free device is an error so that
// double-release bugs surface in tests.
func (d *Device) Release(containerID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.allocatedTo == "" {
		return ErrNotAllocated
	}
	if d.allocatedTo != containerID {
		return fmt.Errorf("%w: held by %s, released by %s",
			ErrAlreadyAllocated, d.allocatedTo, containerID)
	}
	d.allocatedTo = ""
	d.usedMemMiB = 0
	d.utilization = 0
	return nil
}

// SetUtilization records the compute utilization (0..1) reported by the
// attached workload; values are clamped.
func (d *Device) SetUtilization(u float64) {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	d.mu.Lock()
	d.utilization = u
	d.mu.Unlock()
}

// SetUsedMemory updates the memory footprint of the attached workload,
// clamped to capacity.
func (d *Device) SetUsedMemory(memMiB int64) {
	if memMiB < 0 {
		memMiB = 0
	}
	if memMiB > d.Spec.MemoryMiB {
		memMiB = d.Spec.MemoryMiB
	}
	d.mu.Lock()
	d.usedMemMiB = memMiB
	d.mu.Unlock()
}

// AllocatedTo returns the holding container ID, or "" if free.
func (d *Device) AllocatedTo() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocatedTo
}

// Free reports whether the device is unallocated.
func (d *Device) Free() bool { return d.AllocatedTo() == "" }

// Telemetry returns a point-in-time PyNVML-style reading. Temperature and
// power are derived from utilization with a simple thermal/power model:
// idle values at 0 utilization rising linearly to limits at full load.
func (d *Device) Telemetry() Telemetry {
	d.mu.Lock()
	util := d.utilization
	mem := d.usedMemMiB
	holder := d.allocatedTo
	d.mu.Unlock()

	const (
		idleTempC = 34.0
		maxTempC  = 82.0
	)
	return Telemetry{
		DeviceID:     d.ID,
		Model:        d.Spec.Model,
		Utilization:  util,
		UsedMemMiB:   mem,
		TotalMemMiB:  d.Spec.MemoryMiB,
		TemperatureC: idleTempC + util*(maxTempC-idleTempC),
		PowerW:       d.Spec.IdlePowerW + util*(d.Spec.PowerLimitW-d.Spec.IdlePowerW),
		Allocated:    holder != "",
	}
}

// Telemetry is a single device reading, mirroring the fields the paper's
// agent collects through PyNVML (§3.4).
type Telemetry struct {
	DeviceID     string  `json:"device_id"`
	Model        string  `json:"model"`
	Utilization  float64 `json:"utilization"` // 0..1
	UsedMemMiB   int64   `json:"used_mem_mib"`
	TotalMemMiB  int64   `json:"total_mem_mib"`
	TemperatureC float64 `json:"temperature_c"`
	PowerW       float64 `json:"power_w"`
	Allocated    bool    `json:"allocated"`
}

// Inventory is the set of devices installed in one provider node.
type Inventory struct {
	mu      sync.Mutex
	devices []*Device
	byID    map[string]*Device
}

// NewInventory builds an inventory of n identical devices ("gpu0".."gpuN-1").
func NewInventory(spec Spec, n int) *Inventory {
	inv := &Inventory{byID: make(map[string]*Device, n)}
	for i := 0; i < n; i++ {
		d := NewDevice(fmt.Sprintf("gpu%d", i), spec)
		inv.devices = append(inv.devices, d)
		inv.byID[d.ID] = d
	}
	return inv
}

// NewMixedInventory builds an inventory from explicit specs, one device
// per spec, named "gpu0".."gpuN-1" in order.
func NewMixedInventory(specs ...Spec) *Inventory {
	inv := &Inventory{byID: make(map[string]*Device, len(specs))}
	for i, s := range specs {
		d := NewDevice(fmt.Sprintf("gpu%d", i), s)
		inv.devices = append(inv.devices, d)
		inv.byID[d.ID] = d
	}
	return inv
}

// Device returns the device with the given local ID.
func (inv *Inventory) Device(id string) (*Device, error) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	d, ok := inv.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDevice, id)
	}
	return d, nil
}

// Devices returns all devices in index order.
func (inv *Inventory) Devices() []*Device {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	out := make([]*Device, len(inv.devices))
	copy(out, inv.devices)
	return out
}

// Len reports the number of installed devices.
func (inv *Inventory) Len() int {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return len(inv.devices)
}

// FindFree returns a free device satisfying the memory and capability
// requirements, or nil if none is available. Devices are scanned in index
// order, so allocation is deterministic.
func (inv *Inventory) FindFree(memMiB int64, min ComputeCapability) *Device {
	for _, d := range inv.Devices() {
		if !d.Free() {
			continue
		}
		if d.Spec.MemoryMiB < memMiB {
			continue
		}
		if !d.Spec.Capability.AtLeast(min) {
			continue
		}
		return d
	}
	return nil
}

// CountFree reports how many devices are currently unallocated.
func (inv *Inventory) CountFree() int {
	n := 0
	for _, d := range inv.Devices() {
		if d.Free() {
			n++
		}
	}
	return n
}

// Snapshot returns telemetry for every installed device.
func (inv *Inventory) Snapshot() []Telemetry {
	devs := inv.Devices()
	out := make([]Telemetry, 0, len(devs))
	for _, d := range devs {
		out = append(out, d.Telemetry())
	}
	return out
}

// AvgUtilization returns the mean utilization across all devices
// (0 if the inventory is empty).
func (inv *Inventory) AvgUtilization() float64 {
	devs := inv.Devices()
	if len(devs) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range devs {
		sum += d.Telemetry().Utilization
	}
	return sum / float64(len(devs))
}
