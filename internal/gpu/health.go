package gpu

import (
	"sync"
	"time"
)

// Gray-failure health events. Real fleets fail gray long before they
// fail hard: XID-style driver errors, thermal and power throttling,
// and slow-but-alive devices that pass every liveness check while
// silently stalling their workload. A HealthSource surfaces those
// observations as typed events; the agent ships them to the
// coordinator on heartbeats, where they fold into a per-node health
// score the scheduler and the predictive-migration path consume.

// HealthEventKind names one class of degradation observation.
type HealthEventKind string

// Health event kinds.
const (
	// HealthXIDFatal is an unrecoverable device error (XID classes that
	// require a reset or mark the board bad).
	HealthXIDFatal HealthEventKind = "xid-fatal"
	// HealthXIDRecoverable is a transient device error the driver
	// recovered from (page retirement, corrected ECC storm, …).
	HealthXIDRecoverable HealthEventKind = "xid-recoverable"
	// HealthThermal reports thermal throttling: the device is shedding
	// clocks to stay inside its envelope.
	HealthThermal HealthEventKind = "thermal"
	// HealthPower reports power-brake throttling (PSU or board limit).
	HealthPower HealthEventKind = "power"
	// HealthSlowdown is a throughput observation: the workload on the
	// device is progressing at Value (0..1) of its expected rate with no
	// accompanying error — the classic slow-but-alive gray failure.
	HealthSlowdown HealthEventKind = "slowdown"
)

// HealthSeverity grades an event's impact.
type HealthSeverity string

// Health severities.
const (
	SeverityInfo     HealthSeverity = "info"
	SeverityWarn     HealthSeverity = "warn"
	SeverityCritical HealthSeverity = "critical"
)

// HealthEvent is one degradation observation on one device.
type HealthEvent struct {
	Kind     HealthEventKind `json:"kind"`
	Severity HealthSeverity  `json:"severity"`
	// DeviceID names the affected device ("" for node-wide events).
	DeviceID string `json:"device_id,omitempty"`
	// XID carries the driver error code for the xid-* kinds.
	XID int `json:"xid,omitempty"`
	// Value carries the kind-specific measurement: degrees Celsius for
	// thermal, watts for power, the observed throughput fraction (0..1)
	// for slowdown.
	Value float64 `json:"value,omitempty"`
	// At is the observation instant (the observer's clock).
	At time.Time `json:"at,omitempty"`
	// Message is a free-form human-readable annotation.
	Message string `json:"message,omitempty"`
}

// HealthSource surfaces health events observed since the previous
// collection. Implementations follow the Navarch GPU-manager shape:
// CollectHealthEvents drains the pending observations, so each event
// is reported exactly once per source.
type HealthSource interface {
	CollectHealthEvents() []HealthEvent
}

// FakeHealthSource is the injectable HealthSource used by tests and
// the chaos harness: events queued with Inject are returned — and
// drained — by the next CollectHealthEvents call, in injection order.
type FakeHealthSource struct {
	mu      sync.Mutex
	pending []HealthEvent
}

// NewFakeHealthSource creates an empty fake source.
func NewFakeHealthSource() *FakeHealthSource { return &FakeHealthSource{} }

// Inject queues events for the next collection.
func (f *FakeHealthSource) Inject(events ...HealthEvent) {
	f.mu.Lock()
	f.pending = append(f.pending, events...)
	f.mu.Unlock()
}

// Pending reports how many events are queued but not yet collected.
func (f *FakeHealthSource) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}

// CollectHealthEvents implements HealthSource: it returns the queued
// events and clears the queue.
func (f *FakeHealthSource) CollectHealthEvents() []HealthEvent {
	f.mu.Lock()
	out := f.pending
	f.pending = nil
	f.mu.Unlock()
	return out
}
