package checkpoint

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"gpunion/internal/gpu"
)

var now = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

func trainingSource(jobID string) Source {
	img := NewMemoryImage(1000, 4096) // ~4 MiB state
	return Source{
		JobID:    jobID,
		Image:    img,
		Progress: Progress{Step: 500, Epoch: 2},
		Env: Env{
			KernelVersion:  "5.15",
			GPUArch:        gpu.Ampere,
			HasCUDAContext: true,
			GPUMemMiB:      8192,
		},
	}
}

func TestMemoryImageSizes(t *testing.T) {
	img := NewMemoryImage(100, 4096)
	if img.TotalBytes() != 409600 {
		t.Fatalf("TotalBytes = %d", img.TotalBytes())
	}
	if img.NumPages() != 100 || img.PageSize() != 4096 {
		t.Fatalf("shape = %d x %d", img.NumPages(), img.PageSize())
	}
}

func TestMemoryImageDefaults(t *testing.T) {
	img := NewMemoryImage(-5, 0)
	if img.NumPages() != 0 || img.PageSize() != 4096 {
		t.Fatalf("defaults: %d pages, %d page size", img.NumPages(), img.PageSize())
	}
}

func TestTouchTracksDirtyPages(t *testing.T) {
	img := NewMemoryImage(10, 100)
	img.Touch(0)
	img.Touch(5)
	img.Touch(5)  // duplicate
	img.Touch(99) // out of range: ignored
	img.Touch(-1)
	if img.DirtyPages() != 2 {
		t.Fatalf("DirtyPages = %d, want 2", img.DirtyPages())
	}
	if img.DirtyBytes() != 200 {
		t.Fatalf("DirtyBytes = %d, want 200", img.DirtyBytes())
	}
}

func TestTouchFraction(t *testing.T) {
	img := NewMemoryImage(100, 10)
	img.TouchFraction(0.25)
	if img.DirtyPages() != 25 {
		t.Fatalf("DirtyPages = %d, want 25", img.DirtyPages())
	}
	img.TouchFraction(2.0) // clamps to all pages
	if img.DirtyPages() != 100 {
		t.Fatalf("DirtyPages = %d, want 100", img.DirtyPages())
	}
}

func TestTouchFractionTinyNonZero(t *testing.T) {
	img := NewMemoryImage(100, 10)
	img.TouchFraction(0.0001) // rounds up to at least one page
	if img.DirtyPages() != 1 {
		t.Fatalf("DirtyPages = %d, want 1", img.DirtyPages())
	}
}

func TestFileDeltaAccumulates(t *testing.T) {
	img := NewMemoryImage(10, 100)
	img.AppendFileDelta(50)
	img.AppendFileDelta(25)
	img.AppendFileDelta(-10) // ignored
	if img.DirtyBytes() != 75 {
		t.Fatalf("DirtyBytes = %d, want 75", img.DirtyBytes())
	}
}

func TestALCFullCapture(t *testing.T) {
	src := trainingSource("j1")
	ck, err := ALC{}.Capture(src, 1, false, now)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Bytes != src.Image.TotalBytes() {
		t.Fatalf("full capture bytes = %d, want %d", ck.Bytes, src.Image.TotalBytes())
	}
	if ck.Incremental || ck.Seq != 1 || ck.Mechanism != "alc" {
		t.Fatalf("checkpoint = %+v", ck)
	}
	if ck.Progress.Step != 500 {
		t.Fatalf("progress = %+v", ck.Progress)
	}
}

func TestALCIncrementalCapturesOnlyDirty(t *testing.T) {
	src := trainingSource("j1")
	if _, err := (ALC{}).Capture(src, 1, false, now); err != nil {
		t.Fatal(err)
	}
	src.Image.TouchFraction(0.1) // 100 pages
	src.Image.AppendFileDelta(1000)
	ck, err := ALC{}.Capture(src, 2, true, now.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(100)*4096 + 1000
	if !ck.Incremental || ck.Bytes != want {
		t.Fatalf("incremental = %v bytes = %d, want %d", ck.Incremental, ck.Bytes, want)
	}
	if ck.BaseSeq != 1 {
		t.Fatalf("BaseSeq = %d, want 1", ck.BaseSeq)
	}
}

func TestALCFirstCaptureAlwaysFull(t *testing.T) {
	src := trainingSource("j1")
	ck, err := ALC{}.Capture(src, 1, true, now) // incremental requested, seq 1
	if err != nil {
		t.Fatal(err)
	}
	if ck.Incremental {
		t.Fatal("first capture must be full")
	}
	if ck.Bytes != src.Image.TotalBytes() {
		t.Fatalf("bytes = %d", ck.Bytes)
	}
}

func TestALCCaptureMarksClean(t *testing.T) {
	src := trainingSource("j1")
	src.Image.TouchFraction(0.5)
	if _, err := (ALC{}).Capture(src, 1, false, now); err != nil {
		t.Fatal(err)
	}
	if src.Image.DirtyPages() != 0 || src.Image.DirtyBytes() != 0 {
		t.Fatal("capture did not reset dirty state")
	}
}

func TestALCNilImage(t *testing.T) {
	if _, err := (ALC{}).Capture(Source{JobID: "j"}, 1, false, now); err == nil {
		t.Fatal("nil image capture succeeded")
	}
}

func TestALCRestoreAnywhere(t *testing.T) {
	src := trainingSource("j1")
	ck, _ := ALC{}.Capture(src, 1, false, now)
	// Different kernel AND different GPU architecture: ALC doesn't care.
	prog, err := ALC{}.Restore(ck, Target{KernelVersion: "6.1", GPUArch: gpu.Ada})
	if err != nil {
		t.Fatalf("ALC restore failed: %v", err)
	}
	if prog.Step != 500 || prog.Epoch != 2 {
		t.Fatalf("restored progress = %+v", prog)
	}
}

func TestALCRejectsForeignImage(t *testing.T) {
	if _, err := (ALC{}).Restore(Checkpoint{Mechanism: "criu"}, Target{}); err == nil {
		t.Fatal("ALC restored a CRIU image")
	}
}

func TestCRIUFailsOnCUDAContext(t *testing.T) {
	src := trainingSource("j1") // HasCUDAContext: true
	_, err := CRIU{}.Capture(src, 1, false, now)
	if !errors.Is(err, ErrCUDAContext) {
		t.Fatalf("err = %v, want ErrCUDAContext", err)
	}
}

func TestCRIUCapturesCPUOnlyWorkload(t *testing.T) {
	src := trainingSource("j1")
	src.Env.HasCUDAContext = false
	ck, err := CRIU{}.Capture(src, 1, false, now)
	if err != nil {
		t.Fatal(err)
	}
	want := src.Image.TotalBytes() + src.Env.GPUMemMiB*1024*1024
	if ck.Bytes != want {
		t.Fatalf("CRIU bytes = %d, want %d (image + GPU memory)", ck.Bytes, want)
	}
}

func TestCRIUIgnoresIncrementalFlag(t *testing.T) {
	src := trainingSource("j1")
	src.Env.HasCUDAContext = false
	if _, err := (CRIU{}).Capture(src, 1, false, now); err != nil {
		t.Fatal(err)
	}
	src.Image.TouchFraction(0.01)
	ck, err := CRIU{}.Capture(src, 2, true, now)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Incremental {
		t.Fatal("CRIU produced an incremental checkpoint")
	}
	if ck.Bytes < src.Image.TotalBytes() {
		t.Fatalf("CRIU capture %d bytes < full image", ck.Bytes)
	}
}

func TestCRIURestoreKernelPinned(t *testing.T) {
	src := trainingSource("j1")
	src.Env.HasCUDAContext = false
	ck, _ := CRIU{}.Capture(src, 1, false, now)
	_, err := CRIU{}.Restore(ck, Target{KernelVersion: "6.1", GPUArch: gpu.Ampere})
	if !errors.Is(err, ErrKernelMismatch) {
		t.Fatalf("err = %v, want ErrKernelMismatch", err)
	}
}

func TestCRIURestoreArchPinned(t *testing.T) {
	src := trainingSource("j1")
	src.Env.HasCUDAContext = false
	ck, _ := CRIU{}.Capture(src, 1, false, now)
	_, err := CRIU{}.Restore(ck, Target{KernelVersion: "5.15", GPUArch: gpu.Ada})
	if !errors.Is(err, ErrArchMismatch) {
		t.Fatalf("err = %v, want ErrArchMismatch", err)
	}
}

func TestCRIURestoreMatchingTarget(t *testing.T) {
	src := trainingSource("j1")
	src.Env.HasCUDAContext = false
	ck, _ := CRIU{}.Capture(src, 1, false, now)
	prog, err := CRIU{}.Restore(ck, Target{KernelVersion: "5.15", GPUArch: gpu.Ampere})
	if err != nil || prog.Step != 500 {
		t.Fatalf("restore = %+v, %v", prog, err)
	}
}

func TestCRIURejectsForeignImage(t *testing.T) {
	if _, err := (CRIU{}).Restore(Checkpoint{Mechanism: "alc"}, Target{}); err == nil {
		t.Fatal("CRIU restored an ALC image")
	}
}

// Property: incremental ALC checkpoint bytes never exceed a full one for
// the same image, and both are non-negative.
func TestIncrementalNeverLargerProperty(t *testing.T) {
	f := func(fracRaw uint8, deltaKB uint8) bool {
		img := NewMemoryImage(256, 4096)
		src := Source{JobID: "p", Image: img, Env: Env{GPUArch: gpu.Ampere}}
		if _, err := (ALC{}).Capture(src, 1, false, now); err != nil {
			return false
		}
		img.TouchFraction(float64(fracRaw) / 255)
		full := img.TotalBytes()
		ck, err := ALC{}.Capture(src, 2, true, now)
		if err != nil {
			return false
		}
		// File deltas can exceed image size; exclude them here.
		return ck.Bytes >= 0 && ck.Bytes <= full && deltaKB >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
