package checkpoint

import (
	"errors"
	"testing"
	"time"

	"gpunion/internal/gpu"
	"gpunion/internal/storage"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	return NewStore(storage.NewMemStore(0))
}

// makeChain saves a full checkpoint followed by n increments for jobID
// and returns the per-checkpoint byte sizes.
func makeChain(t *testing.T, s *Store, jobID string, n int) []int64 {
	t.Helper()
	img := NewMemoryImage(1000, 4096)
	src := Source{JobID: jobID, Image: img, Env: Env{GPUArch: gpu.Ampere}}
	var sizes []int64
	for seq := 1; seq <= n+1; seq++ {
		if seq > 1 {
			img.TouchFraction(0.05 * float64(seq))
		}
		src.Progress = Progress{Step: int64(seq * 100)}
		ck, err := ALC{}.Capture(src, seq, seq > 1, now.Add(time.Duration(seq)*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Save(ck); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, ck.Bytes)
	}
	return sizes
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := newTestStore(t)
	ck := Checkpoint{JobID: "j1", Seq: 1, Bytes: 1234, Mechanism: "alc",
		Progress: Progress{Step: 7}, CreatedAt: now}
	if err := s.Save(ck); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("j1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bytes != 1234 || got.Progress.Step != 7 || !got.CreatedAt.Equal(now) {
		t.Fatalf("loaded = %+v", got)
	}
}

func TestStoreLoadMissing(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Load("j1", 1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreLatest(t *testing.T) {
	s := newTestStore(t)
	makeChain(t, s, "j1", 3)
	latest, err := s.Latest("j1")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Seq != 4 || latest.Progress.Step != 400 {
		t.Fatalf("latest = %+v", latest)
	}
}

func TestStoreLatestMissingJob(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Latest("ghost"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreLatestRehydratesFromBacking(t *testing.T) {
	backing := storage.NewMemStore(0)
	s1 := NewStore(backing)
	makeChain(t, s1, "j1", 2)
	// A fresh Store over the same backing must find the data via List.
	s2 := NewStore(backing)
	latest, err := s2.Latest("j1")
	if err != nil || latest.Seq != 3 {
		t.Fatalf("rehydrated latest = %+v, %v", latest, err)
	}
}

func TestStoreSequencesAscending(t *testing.T) {
	s := newTestStore(t)
	makeChain(t, s, "j1", 2)
	seqs, err := s.Sequences("j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[2] != 3 {
		t.Fatalf("Sequences = %v", seqs)
	}
}

func TestRestoreChainOrderAndBytes(t *testing.T) {
	s := newTestStore(t)
	sizes := makeChain(t, s, "j1", 3)
	chain, err := s.RestoreChain("j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 4 {
		t.Fatalf("chain length = %d, want 4", len(chain))
	}
	if chain[0].Incremental {
		t.Fatal("chain must start with the full snapshot")
	}
	for i := 1; i < len(chain); i++ {
		if !chain[i].Incremental || chain[i].Seq != chain[i-1].Seq+1 {
			t.Fatalf("chain[%d] = %+v", i, chain[i])
		}
	}
	total, err := s.RestoreBytes("j1")
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, b := range sizes {
		want += b
	}
	if total != want {
		t.Fatalf("RestoreBytes = %d, want %d", total, want)
	}
}

func TestRestoreChainSingleFull(t *testing.T) {
	s := newTestStore(t)
	makeChain(t, s, "j1", 0)
	chain, err := s.RestoreChain("j1")
	if err != nil || len(chain) != 1 || chain[0].Incremental {
		t.Fatalf("chain = %+v, %v", chain, err)
	}
}

func TestRestoreChainBrokenBase(t *testing.T) {
	s := newTestStore(t)
	// An incremental checkpoint whose base was never saved.
	ck := Checkpoint{JobID: "j1", Seq: 5, Incremental: true, BaseSeq: 4,
		Bytes: 10, Mechanism: "alc", CreatedAt: now}
	if err := s.Save(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RestoreChain("j1"); !errors.Is(err, ErrBadChain) {
		t.Fatalf("err = %v, want ErrBadChain", err)
	}
}

func TestNewFullCheckpointResetsChain(t *testing.T) {
	s := newTestStore(t)
	makeChain(t, s, "j1", 2) // seqs 1..3
	// A new full snapshot at seq 4.
	full := Checkpoint{JobID: "j1", Seq: 4, Bytes: 999, Mechanism: "alc",
		Progress: Progress{Step: 999}, CreatedAt: now}
	if err := s.Save(full); err != nil {
		t.Fatal(err)
	}
	chain, err := s.RestoreChain("j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0].Seq != 4 {
		t.Fatalf("chain after new full = %+v", chain)
	}
}

func TestPruneRemovesObsolete(t *testing.T) {
	s := newTestStore(t)
	makeChain(t, s, "j1", 2) // 1(full),2,3
	full := Checkpoint{JobID: "j1", Seq: 4, Bytes: 999, Mechanism: "alc", CreatedAt: now}
	if err := s.Save(full); err != nil {
		t.Fatal(err)
	}
	reclaimed, err := s.Prune("j1")
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed <= 0 {
		t.Fatalf("reclaimed = %d, want > 0", reclaimed)
	}
	seqs, _ := s.Sequences("j1")
	if len(seqs) != 1 || seqs[0] != 4 {
		t.Fatalf("sequences after prune = %v", seqs)
	}
	// The surviving chain still restores.
	if _, err := s.RestoreChain("j1"); err != nil {
		t.Fatal(err)
	}
}

func TestPruneKeepsLiveChain(t *testing.T) {
	s := newTestStore(t)
	makeChain(t, s, "j1", 3)
	reclaimed, err := s.Prune("j1")
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 0 {
		t.Fatalf("reclaimed = %d from a fully-live chain", reclaimed)
	}
	seqs, _ := s.Sequences("j1")
	if len(seqs) != 4 {
		t.Fatalf("sequences = %v", seqs)
	}
}

func TestStoreJobsIsolated(t *testing.T) {
	s := newTestStore(t)
	makeChain(t, s, "j1", 1)
	makeChain(t, s, "j2", 3)
	c1, err := s.RestoreChain("j1")
	if err != nil || len(c1) != 2 {
		t.Fatalf("j1 chain = %v, %v", c1, err)
	}
	c2, err := s.RestoreChain("j2")
	if err != nil || len(c2) != 4 {
		t.Fatalf("j2 chain = %v, %v", c2, err)
	}
}

// corruptBlob flips one bit of the stored frame for jobID/seq.
func corruptBlob(t *testing.T, backing storage.Store, jobID string, seq int) {
	t.Helper()
	key := ckptKey(jobID, seq)
	raw, err := backing.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x04
	if err := backing.Put(key, bad); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDetectsBitFlip(t *testing.T) {
	backing := storage.NewMemStore(0)
	s := NewStore(backing)
	makeChain(t, s, "j1", 2)
	corruptBlob(t, backing, "j1", 2)
	if _, err := s.Load("j1", 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if s.CorruptionsDetected() == 0 {
		t.Fatal("detection not counted")
	}
	// The undamaged links still load.
	if _, err := s.Load("j1", 1); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDetectsTruncation(t *testing.T) {
	backing := storage.NewMemStore(0)
	s := NewStore(backing)
	makeChain(t, s, "j1", 0)
	key := ckptKey("j1", 1)
	raw, _ := backing.Get(key)
	_ = backing.Put(key, raw[:len(raw)/2])
	if _, err := s.Load("j1", 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestLatestFallsBackPastCorruptHead: when the newest checkpoint is
// damaged, Latest restores the previous generation instead of failing
// or returning damaged state.
func TestLatestFallsBackPastCorruptHead(t *testing.T) {
	backing := storage.NewMemStore(0)
	s := NewStore(backing)
	makeChain(t, s, "j1", 3) // seqs 1..4
	corruptBlob(t, backing, "j1", 4)
	latest, err := s.Latest("j1")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Seq != 3 {
		t.Fatalf("Latest fell back to seq %d, want 3", latest.Seq)
	}
	// The fallback re-anchors the hint: repeated queries go straight to
	// the verified chain without re-reading (and re-counting) the
	// corrupt head.
	detections := s.CorruptionsDetected()
	for i := 0; i < 3; i++ {
		if _, err := s.Latest("j1"); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.CorruptionsDetected(); got != detections {
		t.Fatalf("repeated Latest re-counted corruption: %d -> %d", detections, got)
	}
}

// TestLatestFallsBackPastCorruptBase: an intact head whose chain runs
// through a damaged base is unusable; the fallback must keep walking to
// a generation whose whole chain verifies.
func TestLatestFallsBackPastCorruptBase(t *testing.T) {
	backing := storage.NewMemStore(0)
	s := NewStore(backing)
	makeChain(t, s, "j1", 3) // full@1 + increments 2,3,4
	corruptBlob(t, backing, "j1", 3)
	// Head 4 loads fine but chains through the damaged 3; head 3 is
	// damaged; head 2 chains to the intact full@1.
	latest, err := s.Latest("j1")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Seq != 2 {
		t.Fatalf("Latest fell back to seq %d, want 2", latest.Seq)
	}
	chain, err := s.RestoreChain("j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0].Seq != 1 || chain[1].Seq != 2 {
		t.Fatalf("chain = %+v", chain)
	}
}

// TestRestoreChainAllCorrupt: when nothing restorable survives, the
// store says so (ErrBadChain) rather than handing out damage.
func TestRestoreChainAllCorrupt(t *testing.T) {
	backing := storage.NewMemStore(0)
	s := NewStore(backing)
	makeChain(t, s, "j1", 1)
	corruptBlob(t, backing, "j1", 1)
	corruptBlob(t, backing, "j1", 2)
	if _, err := s.RestoreChain("j1"); !errors.Is(err, ErrBadChain) {
		t.Fatalf("err = %v, want ErrBadChain", err)
	}
}
