package checkpoint

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"gpunion/internal/storage"
)

// Store persists checkpoint metadata in a storage.Store and answers the
// restore-chain questions the migration engine needs: what is the latest
// checkpoint for a job, and how many bytes must move to restore it
// (last full snapshot plus every subsequent increment).
type Store struct {
	mu      sync.Mutex
	backing storage.Store
	// latest caches the highest sequence number per job.
	latest map[string]int
}

// NewStore wraps a backing blob store.
func NewStore(backing storage.Store) *Store {
	return &Store{backing: backing, latest: make(map[string]int)}
}

func ckptKey(jobID string, seq int) string {
	return fmt.Sprintf("ckpt/%s/%08d", jobID, seq)
}

// Save persists the checkpoint's metadata.
func (s *Store) Save(ck Checkpoint) error {
	raw, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding: %w", err)
	}
	if err := s.backing.Put(ckptKey(ck.JobID, ck.Seq), raw); err != nil {
		return fmt.Errorf("checkpoint: persisting %s/%d: %w", ck.JobID, ck.Seq, err)
	}
	s.mu.Lock()
	if ck.Seq > s.latest[ck.JobID] {
		s.latest[ck.JobID] = ck.Seq
	}
	s.mu.Unlock()
	return nil
}

// Load fetches one checkpoint by job and sequence number.
func (s *Store) Load(jobID string, seq int) (Checkpoint, error) {
	raw, err := s.backing.Get(ckptKey(jobID, seq))
	if err != nil {
		return Checkpoint{}, fmt.Errorf("%w: %s/%d (%v)", ErrNoCheckpoint, jobID, seq, err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		return Checkpoint{}, fmt.Errorf("checkpoint: decoding %s/%d: %w", jobID, seq, err)
	}
	return ck, nil
}

// Latest returns the most recent checkpoint for the job.
func (s *Store) Latest(jobID string) (Checkpoint, error) {
	s.mu.Lock()
	seq := s.latest[jobID]
	s.mu.Unlock()
	if seq == 0 {
		// Fall back to a listing (covers stores rehydrated from disk).
		seqs, err := s.Sequences(jobID)
		if err != nil || len(seqs) == 0 {
			return Checkpoint{}, fmt.Errorf("%w: job %s", ErrNoCheckpoint, jobID)
		}
		seq = seqs[len(seqs)-1]
		s.mu.Lock()
		s.latest[jobID] = seq
		s.mu.Unlock()
	}
	return s.Load(jobID, seq)
}

// Sequences lists the stored sequence numbers for a job, ascending.
func (s *Store) Sequences(jobID string) ([]int, error) {
	keys, err := s.backing.List(fmt.Sprintf("ckpt/%s/", jobID))
	if err != nil {
		return nil, err
	}
	seqs := make([]int, 0, len(keys))
	for _, k := range keys {
		var seq int
		if _, err := fmt.Sscanf(k[len(fmt.Sprintf("ckpt/%s/", jobID)):], "%d", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// RestoreChain returns the checkpoints that must be fetched to restore
// the job's latest state: the newest full checkpoint followed by every
// later increment, in application order. The total of their Bytes fields
// is the migration transfer size.
func (s *Store) RestoreChain(jobID string) ([]Checkpoint, error) {
	latest, err := s.Latest(jobID)
	if err != nil {
		return nil, err
	}
	chain := []Checkpoint{latest}
	cur := latest
	for cur.Incremental {
		base, err := s.Load(jobID, cur.BaseSeq)
		if err != nil {
			return nil, fmt.Errorf("%w: missing base %d for %s/%d",
				ErrBadChain, cur.BaseSeq, jobID, cur.Seq)
		}
		chain = append(chain, base)
		cur = base
	}
	// Reverse: oldest (the full snapshot) first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, nil
}

// RestoreBytes returns the total bytes that must move to restore the
// job's latest state.
func (s *Store) RestoreBytes(jobID string) (int64, error) {
	chain, err := s.RestoreChain(jobID)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, ck := range chain {
		total += ck.Bytes
	}
	return total, nil
}

// Prune deletes checkpoints older than the newest full snapshot, which
// are no longer needed for any restore. It returns the bytes reclaimed.
func (s *Store) Prune(jobID string) (int64, error) {
	chain, err := s.RestoreChain(jobID)
	if err != nil {
		return 0, err
	}
	needed := make(map[int]bool, len(chain))
	for _, ck := range chain {
		needed[ck.Seq] = true
	}
	seqs, err := s.Sequences(jobID)
	if err != nil {
		return 0, err
	}
	var reclaimed int64
	for _, seq := range seqs {
		if needed[seq] {
			continue
		}
		ck, err := s.Load(jobID, seq)
		if err == nil {
			reclaimed += ck.Bytes
		}
		if err := s.backing.Delete(ckptKey(jobID, seq)); err != nil {
			return reclaimed, err
		}
	}
	return reclaimed, nil
}
