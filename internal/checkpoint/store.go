package checkpoint

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"gpunion/internal/storage"
)

// Writer is the slice of Store a provider agent needs: persisting the
// checkpoints it captures and pruning the generations a new full
// snapshot obsoletes. Keeping it an interface is the data-plane fault
// seam — the chaos harness wraps it per node to sever checkpoint
// transfers during data-plane partitions, exactly as the network would.
type Writer interface {
	// Save persists one checkpoint's metadata.
	Save(ck Checkpoint) error
	// Prune drops checkpoints no restore needs, returning bytes freed.
	Prune(jobID string) (int64, error)
}

// Store persists checkpoint metadata in a storage.Store and answers the
// restore-chain questions the migration engine needs: what is the latest
// restorable checkpoint for a job, and how many bytes must move to
// restore it (last full snapshot plus every subsequent increment).
//
// Every blob is framed with a CRC over its payload. Loads verify the
// frame, so bit rot or truncation in the backing store surfaces as
// ErrCorrupt instead of silently restoring damaged state — and the
// chain queries (Latest, RestoreChain, RestoreBytes) fall back to the
// newest older generation whose full chain still verifies. A corrupt
// newest checkpoint costs the work since the previous one, never the
// job.
type Store struct {
	mu      sync.Mutex
	backing storage.Store
	// latest caches the head sequence of the last known-good chain per
	// job (a hint; chain queries re-verify it on every use).
	latest map[string]int
	// corruptions counts frames that failed verification.
	corruptions int
	// fallbacks counts restore-chain heads that had to be skipped for an
	// older generation because their chain failed to verify.
	fallbacks int
}

var _ Writer = (*Store)(nil)

// NewStore wraps a backing blob store.
func NewStore(backing storage.Store) *Store {
	return &Store{backing: backing, latest: make(map[string]int)}
}

func ckptKey(jobID string, seq int) string {
	return fmt.Sprintf("ckpt/%s/%08d", jobID, seq)
}

// ckptCRC is the frame checksum (Castagnoli, same table as the WAL).
var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// frame is the stored envelope: a CRC over the checkpoint's canonical
// JSON encoding. Any single-bit flip in the payload (or the CRC field
// itself) fails verification; truncation fails the JSON decode.
type frame struct {
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// Save persists the checkpoint's metadata under a CRC frame.
func (s *Store) Save(ck Checkpoint) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding: %w", err)
	}
	raw, err := json.Marshal(frame{CRC: crc32.Checksum(payload, ckptCRC), Payload: payload})
	if err != nil {
		return fmt.Errorf("checkpoint: framing: %w", err)
	}
	if err := s.backing.Put(ckptKey(ck.JobID, ck.Seq), raw); err != nil {
		return fmt.Errorf("checkpoint: persisting %s/%d: %w", ck.JobID, ck.Seq, err)
	}
	s.mu.Lock()
	if ck.Seq > s.latest[ck.JobID] {
		s.latest[ck.JobID] = ck.Seq
	}
	s.mu.Unlock()
	return nil
}

// Load fetches one checkpoint by job and sequence number, verifying its
// frame. A blob that fails verification returns ErrCorrupt.
func (s *Store) Load(jobID string, seq int) (Checkpoint, error) {
	raw, err := s.backing.Get(ckptKey(jobID, seq))
	if err != nil {
		return Checkpoint{}, fmt.Errorf("%w: %s/%d (%v)", ErrNoCheckpoint, jobID, seq, err)
	}
	var f frame
	if err := json.Unmarshal(raw, &f); err != nil || len(f.Payload) == 0 {
		return Checkpoint{}, s.corrupt(jobID, seq, "unreadable frame")
	}
	if crc32.Checksum(f.Payload, ckptCRC) != f.CRC {
		return Checkpoint{}, s.corrupt(jobID, seq, "checksum mismatch")
	}
	var ck Checkpoint
	if err := json.Unmarshal(f.Payload, &ck); err != nil {
		return Checkpoint{}, s.corrupt(jobID, seq, "unreadable payload")
	}
	return ck, nil
}

// corrupt counts one detection and builds the error.
func (s *Store) corrupt(jobID string, seq int, reason string) error {
	s.mu.Lock()
	s.corruptions++
	s.mu.Unlock()
	return fmt.Errorf("%w: %s/%d: %s", ErrCorrupt, jobID, seq, reason)
}

// CorruptionsDetected reports how many frames failed verification over
// the store's lifetime (chaos scenarios assert the detector really ran).
func (s *Store) CorruptionsDetected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corruptions
}

// FallbacksUsed reports how many restore-chain queries had to fall back
// past a damaged newest generation to an older restorable one.
func (s *Store) FallbacksUsed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fallbacks
}

// Latest returns the most recent restorable checkpoint for the job: the
// head of the newest generation whose full restore chain verifies.
func (s *Store) Latest(jobID string) (Checkpoint, error) {
	chain, err := s.RestoreChain(jobID)
	if err != nil {
		return Checkpoint{}, err
	}
	return chain[len(chain)-1], nil
}

// Sequences lists the stored sequence numbers for a job, ascending.
func (s *Store) Sequences(jobID string) ([]int, error) {
	keys, err := s.backing.List(fmt.Sprintf("ckpt/%s/", jobID))
	if err != nil {
		return nil, err
	}
	seqs := make([]int, 0, len(keys))
	for _, k := range keys {
		var seq int
		if _, err := fmt.Sscanf(k[len(fmt.Sprintf("ckpt/%s/", jobID)):], "%d", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// RestoreChain returns the checkpoints that must be fetched to restore
// the job's newest restorable state: a full checkpoint followed by every
// later increment, in application order. The total of their Bytes fields
// is the migration transfer size.
//
// Heads are tried newest-first; a head whose chain contains a corrupt or
// missing link is skipped — the previous generation restores instead,
// costing at most the work since it. ErrNoCheckpoint means the job has
// no checkpoints at all; ErrBadChain means checkpoints exist but none
// anchors a fully-verifiable chain (the job restarts from scratch).
func (s *Store) RestoreChain(jobID string) ([]Checkpoint, error) {
	s.mu.Lock()
	hint := s.latest[jobID]
	s.mu.Unlock()
	if hint > 0 {
		if chain, ok := s.chainAt(jobID, hint); ok {
			return chain, nil
		}
	}
	seqs, err := s.Sequences(jobID)
	if err != nil || len(seqs) == 0 {
		return nil, fmt.Errorf("%w: job %s", ErrNoCheckpoint, jobID)
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		if chain, ok := s.chainAt(jobID, seqs[i]); ok {
			if i < len(seqs)-1 {
				// A newer head existed but could not anchor a verifiable
				// chain: this restore fell back a generation.
				s.mu.Lock()
				s.fallbacks++
				s.mu.Unlock()
			}
			// Re-anchor the hint on the verified head: later queries go
			// straight to this chain instead of re-scanning (and
			// re-counting) the corrupt newer blobs on every call — but
			// only if no concurrent Save advanced the hint past the
			// snapshot this scan was built from; a fresh checkpoint must
			// never be shadowed by a stale fallback.
			s.mu.Lock()
			if s.latest[jobID] == hint {
				s.latest[jobID] = seqs[i]
			}
			s.mu.Unlock()
			return chain, nil
		}
	}
	return nil, fmt.Errorf("%w: job %s has %d checkpoints but none restorable",
		ErrBadChain, jobID, len(seqs))
}

// chainAt builds and verifies the restore chain headed at seq, oldest
// (the full snapshot) first. ok is false when any link is corrupt,
// missing, or structurally wrong.
func (s *Store) chainAt(jobID string, seq int) (chain []Checkpoint, ok bool) {
	cur, err := s.Load(jobID, seq)
	if err != nil {
		return nil, false
	}
	chain = []Checkpoint{cur}
	for cur.Incremental {
		if cur.BaseSeq >= cur.Seq {
			return nil, false // a cycle would loop forever; treat as damage
		}
		base, err := s.Load(jobID, cur.BaseSeq)
		if err != nil {
			return nil, false
		}
		chain = append(chain, base)
		cur = base
	}
	// Reverse: oldest (the full snapshot) first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, true
}

// RestoreBytes returns the total bytes that must move to restore the
// job's latest state.
func (s *Store) RestoreBytes(jobID string) (int64, error) {
	chain, err := s.RestoreChain(jobID)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, ck := range chain {
		total += ck.Bytes
	}
	return total, nil
}

// Prune deletes checkpoints older than the newest full snapshot, which
// are no longer needed for any restore. It returns the bytes reclaimed.
func (s *Store) Prune(jobID string) (int64, error) {
	chain, err := s.RestoreChain(jobID)
	if err != nil {
		return 0, err
	}
	needed := make(map[int]bool, len(chain))
	for _, ck := range chain {
		needed[ck.Seq] = true
	}
	seqs, err := s.Sequences(jobID)
	if err != nil {
		return 0, err
	}
	var reclaimed int64
	for _, seq := range seqs {
		if needed[seq] {
			continue
		}
		ck, err := s.Load(jobID, seq)
		if err == nil {
			reclaimed += ck.Bytes
		}
		if err := s.backing.Delete(ckptKey(jobID, seq)); err != nil {
			return reclaimed, err
		}
	}
	return reclaimed, nil
}
