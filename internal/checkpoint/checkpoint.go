// Package checkpoint implements GPUnion's state-preservation layer.
//
// The cornerstone is application-level checkpointing (ALC, §3.5): the
// workload itself defines what constitutes recoverable state (model
// weights, optimizer state, current step), which makes checkpoints
// portable across heterogeneous GPU architectures — the property that
// rules out system-level CRIU snapshots in campus environments.
//
// The package provides:
//
//   - a page-granular MemoryImage model used to compute *incremental*
//     checkpoint sizes (only pages modified since the previous
//     checkpoint, plus file-system deltas, are transmitted — the §4
//     traffic analysis depends on this);
//   - the ALC checkpointer;
//   - a CRIU-model checkpointer reproducing the failure modes the paper
//     cites (no CUDA-context support, kernel-version pinning, no
//     cross-architecture restore) for the ALC-vs-CRIU ablation;
//   - a Store that persists checkpoint metadata and resolves the
//     restore chain (last full checkpoint + subsequent increments).
package checkpoint

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gpunion/internal/gpu"
)

// Errors returned by checkpoint operations.
var (
	ErrCUDAContext    = errors.New("checkpoint: CRIU cannot snapshot live CUDA contexts")
	ErrKernelMismatch = errors.New("checkpoint: CRIU restore requires matching kernel version")
	ErrArchMismatch   = errors.New("checkpoint: CRIU image is not portable across GPU architectures")
	ErrNoCheckpoint   = errors.New("checkpoint: no checkpoint available")
	ErrBadChain       = errors.New("checkpoint: broken incremental chain")
	ErrCorrupt        = errors.New("checkpoint: corrupt checkpoint frame")
)

// Progress is the application-defined recoverable state marker: how far
// the workload has advanced. Restoring a checkpoint resumes from exactly
// this point; work after the checkpoint is lost.
type Progress struct {
	// Step is the training step (or generic unit of work) completed.
	Step int64 `json:"step"`
	// Epoch is the enclosing epoch, informational.
	Epoch int `json:"epoch"`
}

// MemoryImage models a workload's mutable state at page granularity.
// Training loops touch a characteristic fraction of their state between
// checkpoints; incremental checkpoints ship only those dirty pages.
type MemoryImage struct {
	mu       sync.Mutex
	pageSize int64
	numPages int
	dirty    map[int]bool
	// fileDelta accumulates file-system bytes written since the last
	// checkpoint (logs, samples, metrics).
	fileDelta int64
}

// NewMemoryImage creates an image of numPages pages of pageSize bytes.
func NewMemoryImage(numPages int, pageSize int64) *MemoryImage {
	if numPages < 0 {
		numPages = 0
	}
	if pageSize <= 0 {
		pageSize = 4096
	}
	return &MemoryImage{
		pageSize: pageSize,
		numPages: numPages,
		dirty:    make(map[int]bool),
	}
}

// TotalBytes is the full image size.
func (m *MemoryImage) TotalBytes() int64 {
	return int64(m.numPages) * m.pageSize
}

// PageSize returns the page size in bytes.
func (m *MemoryImage) PageSize() int64 { return m.pageSize }

// NumPages returns the page count.
func (m *MemoryImage) NumPages() int { return m.numPages }

// Touch marks the page dirty. Out-of-range pages are ignored.
func (m *MemoryImage) Touch(page int) {
	if page < 0 || page >= m.numPages {
		return
	}
	m.mu.Lock()
	m.dirty[page] = true
	m.mu.Unlock()
}

// TouchFraction marks the first ceil(frac·numPages) pages dirty,
// modelling a training step that rewrites a characteristic share of
// state (optimizer moments, activations). frac is clamped to [0,1].
func (m *MemoryImage) TouchFraction(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac * float64(m.numPages))
	if frac > 0 && n == 0 {
		n = 1
	}
	m.mu.Lock()
	for i := 0; i < n && i < m.numPages; i++ {
		m.dirty[i] = true
	}
	m.mu.Unlock()
}

// AppendFileDelta records bytes written to the file system since the
// last checkpoint.
func (m *MemoryImage) AppendFileDelta(bytes int64) {
	if bytes <= 0 {
		return
	}
	m.mu.Lock()
	m.fileDelta += bytes
	m.mu.Unlock()
}

// DirtyBytes returns the current incremental payload: dirty pages plus
// file deltas.
func (m *MemoryImage) DirtyBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.dirty))*m.pageSize + m.fileDelta
}

// DirtyPages returns the number of dirty pages.
func (m *MemoryImage) DirtyPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dirty)
}

// markClean resets the dirty set and file delta (called after a capture).
func (m *MemoryImage) markClean() {
	m.mu.Lock()
	m.dirty = make(map[int]bool)
	m.fileDelta = 0
	m.mu.Unlock()
}

// Env describes the execution environment a checkpoint was captured in.
// The CRIU model's portability failures key off these fields.
type Env struct {
	// KernelVersion is the host kernel, e.g. "5.15".
	KernelVersion string `json:"kernel_version"`
	// GPUArch is the architecture of the bound GPU.
	GPUArch gpu.Architecture `json:"gpu_arch"`
	// HasCUDAContext reports whether the workload holds a live CUDA
	// context (true for anything actually using the GPU).
	HasCUDAContext bool `json:"has_cuda_context"`
	// GPUMemMiB is the device memory in use, which a system-level
	// snapshot would also have to capture.
	GPUMemMiB int64 `json:"gpu_mem_mib"`
}

// Source is everything a checkpointer needs to capture a workload.
type Source struct {
	JobID    string
	Image    *MemoryImage
	Progress Progress
	Env      Env
}

// Checkpoint is one captured snapshot. Payload bytes are modelled (the
// platform's decisions depend on sizes and metadata, not the literal
// tensor data).
type Checkpoint struct {
	JobID string `json:"job_id"`
	// Seq is the per-job sequence number, starting at 1.
	Seq int `json:"seq"`
	// Incremental marks a delta checkpoint; BaseSeq is the snapshot it
	// builds on (the previous Seq).
	Incremental bool `json:"incremental"`
	BaseSeq     int  `json:"base_seq"`
	// Bytes is the payload size that must be stored and shipped.
	Bytes int64 `json:"bytes"`
	// Progress is the application state marker restored on recovery.
	Progress Progress `json:"progress"`
	// Env is the capture environment (used for CRIU restore checks).
	Env Env `json:"env"`
	// Mechanism is the checkpointer that produced this snapshot.
	Mechanism string `json:"mechanism"`
	// CreatedAt is the capture time.
	CreatedAt time.Time `json:"created_at"`
}

// Target describes the node a checkpoint would be restored onto.
type Target struct {
	KernelVersion string
	GPUArch       gpu.Architecture
}

// Checkpointer is a state capture/restore mechanism.
type Checkpointer interface {
	// Name identifies the mechanism ("alc", "criu").
	Name() string
	// Capture snapshots the source. incremental requests a delta
	// checkpoint relative to the previous capture; mechanisms that do
	// not support increments may return a full snapshot.
	Capture(src Source, seq int, incremental bool, now time.Time) (Checkpoint, error)
	// Restore validates that ck can be restored onto target and returns
	// the progress the workload resumes from.
	Restore(ck Checkpoint, target Target) (Progress, error)
}

// ALC is the application-level checkpointer. Full captures persist the
// application-defined state (the full memory image stands in for model +
// optimizer state); incremental captures persist only dirty pages and
// file deltas. ALC restores onto any kernel and GPU architecture.
type ALC struct{}

// Name implements Checkpointer.
func (ALC) Name() string { return "alc" }

// Capture implements Checkpointer. Capturing marks the image clean: the
// next incremental capture ships only subsequent modifications.
func (ALC) Capture(src Source, seq int, incremental bool, now time.Time) (Checkpoint, error) {
	if src.Image == nil {
		return Checkpoint{}, errors.New("checkpoint: nil memory image")
	}
	ck := Checkpoint{
		JobID:     src.JobID,
		Seq:       seq,
		Progress:  src.Progress,
		Env:       src.Env,
		Mechanism: "alc",
		CreatedAt: now,
	}
	if incremental && seq > 1 {
		ck.Incremental = true
		ck.BaseSeq = seq - 1
		ck.Bytes = src.Image.DirtyBytes()
	} else {
		ck.Bytes = src.Image.TotalBytes()
	}
	src.Image.markClean()
	return ck, nil
}

// Restore implements Checkpointer. ALC state is portable by
// construction: users write framework-level save/load code, so any
// compatible node can resume.
func (ALC) Restore(ck Checkpoint, _ Target) (Progress, error) {
	if ck.Mechanism != "alc" {
		return Progress{}, fmt.Errorf("checkpoint: alc cannot restore %q image", ck.Mechanism)
	}
	return ck.Progress, nil
}

// CRIU models system-level checkpoint/restore with the limitations the
// paper cites (§3.5): live CUDA contexts cannot be captured, restore
// requires the same kernel version, and images are not portable across
// GPU architectures. Captures are always full process images including
// GPU memory — there is no incremental mode.
type CRIU struct{}

// Name implements Checkpointer.
func (CRIU) Name() string { return "criu" }

// Capture implements Checkpointer.
func (CRIU) Capture(src Source, seq int, _ bool, now time.Time) (Checkpoint, error) {
	if src.Image == nil {
		return Checkpoint{}, errors.New("checkpoint: nil memory image")
	}
	if src.Env.HasCUDAContext {
		return Checkpoint{}, fmt.Errorf("%w (job %s)", ErrCUDAContext, src.JobID)
	}
	ck := Checkpoint{
		JobID:     src.JobID,
		Seq:       seq,
		Bytes:     src.Image.TotalBytes() + src.Env.GPUMemMiB*1024*1024,
		Progress:  src.Progress,
		Env:       src.Env,
		Mechanism: "criu",
		CreatedAt: now,
	}
	src.Image.markClean()
	return ck, nil
}

// Restore implements Checkpointer, enforcing kernel and architecture
// compatibility.
func (CRIU) Restore(ck Checkpoint, target Target) (Progress, error) {
	if ck.Mechanism != "criu" {
		return Progress{}, fmt.Errorf("checkpoint: criu cannot restore %q image", ck.Mechanism)
	}
	if ck.Env.KernelVersion != target.KernelVersion {
		return Progress{}, fmt.Errorf("%w: image %s, target %s",
			ErrKernelMismatch, ck.Env.KernelVersion, target.KernelVersion)
	}
	if ck.Env.GPUArch != target.GPUArch {
		return Progress{}, fmt.Errorf("%w: image %s, target %s",
			ErrArchMismatch, ck.Env.GPUArch, target.GPUArch)
	}
	return ck.Progress, nil
}
