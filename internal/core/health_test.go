package core

import (
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/invariant"
)

func warnThermal() gpu.HealthEvent {
	return gpu.HealthEvent{Kind: gpu.HealthThermal, Severity: gpu.SeverityWarn, Value: 88}
}

// TestHealthBeatBypassesCoalescing: a beat carrying health events is
// not a no-op and must not park in the coalescing buffer — the fold
// has to commit at the beat's own instant (the predictive drain hangs
// off the crossing), not a quarter-interval later at the flush tick.
func TestHealthBeatBypassesCoalescing(t *testing.T) {
	store := db.New(0)
	b := newBeatRig(t, time.Minute, store)
	b.addSilentNode("n1")
	lg := &mutationLog{}
	cancel := store.AddMutationObserver(lg.observe)
	defer cancel()

	b.clock.Advance(10 * time.Second)
	req := b.beatReq("n1")
	req.HealthEvents = []gpu.HealthEvent{warnThermal()}
	beatAt := b.clock.Now()
	if resp, err := b.coord.Heartbeat(req); err != nil || !resp.Acknowledged {
		t.Fatalf("health beat = %+v, %v", resp, err)
	}

	// Committed immediately, on the full-image path: the heartbeat
	// advance and the health fold are both in the store before any
	// flush tick, and nothing sits in the buffer.
	rec, _ := store.GetNode("n1")
	if !rec.LastHeartbeat.Equal(beatAt) {
		t.Fatalf("health beat buffered: LastHeartbeat %s, want %s", rec.LastHeartbeat, beatAt)
	}
	if !rec.HealthAt.Equal(beatAt) || rec.HealthScore() >= 1 {
		t.Fatalf("health fold not committed at the beat instant: score %v at %s",
			rec.HealthScore(), rec.HealthAt)
	}
	if folds := lg.byType(db.MutNodeHealth); len(folds) != 1 || len(folds[0].Health.Events) != 1 {
		t.Fatalf("want one MutNodeHealth carrying one event, got %+v", folds)
	}
	if _, buffered := guardEntries(b.coord); len(buffered) != 0 {
		t.Fatalf("health-carrying beat also buffered: %v", buffered)
	}
}

// TestReplayedHealthBeatNotDoubleFolded: a replayed beat carrying the
// same health events must be swallowed whole by the dedup guard — no
// second fold, no store write of any kind — or every retried packet
// would push the node toward unhealthy twice.
func TestReplayedHealthBeatNotDoubleFolded(t *testing.T) {
	store := db.New(0)
	b := newBeatRig(t, time.Minute, store)
	b.addSilentNode("n1")
	audit, cancel := invariant.NewHealthAudit(store)
	defer cancel()

	b.clock.Advance(10 * time.Second)
	req := b.beatReq("n1")
	req.HealthEvents = []gpu.HealthEvent{warnThermal(), warnThermal()}
	if resp, err := b.coord.Heartbeat(req); err != nil || !resp.Acknowledged {
		t.Fatalf("original = %+v, %v", resp, err)
	}
	rec, _ := store.GetNode("n1")
	scoreAfterOne := rec.HealthScore()
	lsnBefore := store.CurrentLSN()

	for i := 0; i < 3; i++ {
		resp, err := b.coord.Heartbeat(req)
		if err != nil || !resp.Acknowledged {
			t.Fatalf("replay %d = %+v, %v", i, resp, err)
		}
	}
	if lsn := store.CurrentLSN(); lsn != lsnBefore {
		t.Fatalf("replays mutated the store: LSN %d -> %d", lsnBefore, lsn)
	}
	rec, _ = store.GetNode("n1")
	if rec.HealthScore() != scoreAfterOne {
		t.Fatalf("replays re-folded health: %v -> %v", scoreAfterOne, rec.HealthScore())
	}
	if vs := audit.Check(store); len(vs) != 0 {
		t.Fatalf("health fold diverged after replays: %v", vs)
	}
}

// TestHealthEventsTruncatedPerBeat: a beat stuffed past the protocol
// bound folds only the first MaxHealthEventsPerBeat events — the cap
// is the coordinator's defense against a babbling agent.
func TestHealthEventsTruncatedPerBeat(t *testing.T) {
	store := db.New(0)
	b := newBeatRig(t, time.Minute, store)
	b.addSilentNode("n1")
	lg := &mutationLog{}
	cancel := store.AddMutationObserver(lg.observe)
	defer cancel()

	b.clock.Advance(10 * time.Second)
	req := b.beatReq("n1")
	for i := 0; i < api.MaxHealthEventsPerBeat+8; i++ {
		req.HealthEvents = append(req.HealthEvents, gpu.HealthEvent{
			Kind: gpu.HealthThermal, Severity: gpu.SeverityInfo,
		})
	}
	if resp, err := b.coord.Heartbeat(req); err != nil || !resp.Acknowledged {
		t.Fatalf("beat = %+v, %v", resp, err)
	}
	folds := lg.byType(db.MutNodeHealth)
	if len(folds) != 1 || len(folds[0].Health.Events) != api.MaxHealthEventsPerBeat {
		got := -1
		if len(folds) == 1 {
			got = len(folds[0].Health.Events)
		}
		t.Fatalf("fold carries %d events, want the %d cap", got, api.MaxHealthEventsPerBeat)
	}
}
