package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
)

// fakeAgent is a scriptable AgentHandle: launches succeed on free
// devices unless the agent is set to refuse, tracking what ran.
type fakeAgent struct {
	mu       sync.Mutex
	devices  []string
	inUse    map[string]bool
	refuse   bool
	launched []string
}

func newFakeAgent(devices ...string) *fakeAgent {
	return &fakeAgent{devices: devices, inUse: make(map[string]bool)}
}

func (f *fakeAgent) Launch(req api.LaunchRequest) (api.LaunchResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refuse {
		return api.LaunchResponse{}, errors.New("fake: node refuses launches")
	}
	for _, d := range f.devices {
		if !f.inUse[d] {
			f.inUse[d] = true
			f.launched = append(f.launched, req.JobID)
			return api.LaunchResponse{ContainerID: "ctr-" + req.JobID, DeviceID: d}, nil
		}
	}
	return api.LaunchResponse{}, errors.New("fake: no free device")
}

func (f *fakeAgent) Kill(req api.KillRequest) error { return nil }

func (f *fakeAgent) Checkpoint(jobID string, incremental bool) (api.CheckpointResponse, error) {
	return api.CheckpointResponse{}, errors.New("fake: no checkpoints")
}

// batchRig is a coordinator wired to fakeAgents, bypassing the full
// agent stack so launch failures can be scripted.
type batchRig struct {
	coord *Coordinator
	fakes map[string]*fakeAgent
}

func newBatchRig(t *testing.T, batchSize int, nodeIDs ...string) *batchRig {
	t.Helper()
	clock := simclock.NewSim(t0)
	coord, err := New(Config{HeartbeatInterval: 10 * time.Second, BatchSize: batchSize},
		clock, db.New(0), checkpoint.NewStore(storage.NewMemStore(0)), eventbus.New(256))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	r := &batchRig{coord: coord, fakes: make(map[string]*fakeAgent)}
	for _, id := range nodeIDs {
		fake := newFakeAgent("gpu0")
		r.fakes[id] = fake
		_, err := coord.Register(api.RegisterRequest{
			MachineID: id, Addr: "fake://" + id,
			GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
				MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
		}, fake)
		if err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func (r *batchRig) submit(t *testing.T, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, err := r.coord.SubmitJob(api.SubmitJobRequest{
			User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
			GPUMemMiB: 8192,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestBatchSchedulingDrainsQueue: one submission burst larger than the
// batch size still drains fully across cycles.
func TestBatchSchedulingDrainsQueue(t *testing.T) {
	nodes := make([]string, 6)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%d", i)
	}
	r := newBatchRig(t, 2, nodes...) // batch of 2, queue of 6
	ids := r.submit(t, 6)
	for _, id := range ids {
		st, err := r.coord.JobStatus(id)
		if err != nil || st.State != db.JobRunning {
			t.Fatalf("job %s = %+v, %v (want running)", id, st, err)
		}
	}
	// Each node got exactly one job — batching didn't pile onto one.
	for id, fake := range r.fakes {
		if len(fake.launched) != 1 {
			t.Fatalf("node %s launched %v, want exactly 1", id, fake.launched)
		}
	}
}

// TestBatchMemberFailureRollsBack: a node that accepts a placement but
// refuses the launch must not strand the job or any device — the job
// stays pending with no node recorded, the refusing node's device
// stays unallocated in the resource view, and other batch members
// commit normally.
func TestBatchMemberFailureRollsBack(t *testing.T) {
	r := newBatchRig(t, 8, "good", "bad")
	r.fakes["bad"].refuse = true
	ids := r.submit(t, 2)

	running, pending := 0, 0
	for _, id := range ids {
		st, err := r.coord.JobStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case db.JobRunning:
			running++
			if st.NodeID != "good" {
				t.Fatalf("running job on %s, want good", st.NodeID)
			}
		case db.JobPending:
			pending++
			if st.NodeID != "" {
				t.Fatalf("pending job still bound to node %s", st.NodeID)
			}
		default:
			t.Fatalf("job %s in state %s", id, st.State)
		}
	}
	if running != 1 || pending != 1 {
		t.Fatalf("running=%d pending=%d, want 1/1", running, pending)
	}
	// The refusing node's device must not be marked allocated: the
	// failed member's reservation died with the batch.
	for _, n := range r.coord.Nodes() {
		if n.ID == "bad" && n.GPUs[0].Allocated {
			t.Fatal("failed launch stranded a device reservation on bad")
		}
	}
	// Capacity returning later picks the pending job up.
	r.fakes["bad"].mu.Lock()
	r.fakes["bad"].refuse = false
	r.fakes["bad"].mu.Unlock()
	r.coord.TrySchedule()
	for _, id := range ids {
		st, _ := r.coord.JobStatus(id)
		if st.State != db.JobRunning {
			t.Fatalf("job %s = %s after capacity returned, want running", id, st.State)
		}
	}
}

// TestBatchRespectsPriorityOrder: higher-priority submissions win the
// devices when the batch is bigger than capacity.
func TestBatchRespectsPriorityOrder(t *testing.T) {
	r := newBatchRig(t, 8, "n0")
	// Stop the single node from scheduling during submission by pausing
	// launches, so all jobs queue and one batch decides the order.
	r.fakes["n0"].refuse = true
	var low, high string
	var err error
	if low, err = r.coord.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: 8192, Priority: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if high, err = r.coord.SubmitJob(api.SubmitJobRequest{
		User: "bob", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: 8192, Priority: 9,
	}); err != nil {
		t.Fatal(err)
	}
	r.fakes["n0"].mu.Lock()
	r.fakes["n0"].refuse = false
	r.fakes["n0"].mu.Unlock()
	r.coord.TrySchedule()
	st, _ := r.coord.JobStatus(high)
	if st.State != db.JobRunning {
		t.Fatalf("high-priority job = %s, want running", st.State)
	}
	st, _ = r.coord.JobStatus(low)
	if st.State != db.JobPending {
		t.Fatalf("low-priority job = %s, want pending", st.State)
	}
}
