package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/migration"
	"gpunion/internal/workload"
)

// These tests exercise resilience corners beyond the happy paths in
// coordinator_test.go.

func TestKillDuringMigrationDoesNotResurrect(t *testing.T) {
	// A job displaced by a departure is killed by its user while its
	// checkpoint is (conceptually) in flight; the delayed relaunch must
	// notice and stand down.
	r := newRig(t, 10*time.Second)
	ag1 := r.addNode("n1", gpu.RTX3090)
	r.addNode("n2", gpu.RTX3090)
	id := submitTraining(t, r, workload.SmallCNN, 30)
	r.clock.Advance(time.Minute)

	// Depart and immediately kill the job before any further clock
	// advance (the migration in this no-netsim rig is synchronous, so
	// exercise the guard directly via the killed state).
	ag1.Depart(api.DepartScheduled, time.Minute)
	if err := r.coord.KillJob(id); err != nil {
		t.Fatal(err)
	}
	r.clock.Advance(time.Minute)
	st, _ := r.coord.JobStatus(id)
	if st.State != db.JobKilled {
		t.Fatalf("state = %s, want killed to stick", st.State)
	}
	if len(r.ags["n2"].Status().RunningJobs) != 0 {
		t.Fatal("killed job resurrected on n2")
	}
}

func TestRepeatedDeparturesDegradeReliability(t *testing.T) {
	r := newRig(t, 10*time.Second)
	flaky := r.addNode("n-flaky", gpu.RTX3090)
	r.addNode("n-solid", gpu.RTX3090)

	// The flaky provider churns five times.
	for i := 0; i < 5; i++ {
		flaky.Depart(api.DepartTemporary, 0)
		r.clock.Advance(time.Minute)
		flaky.Return()
		r.clock.Advance(30 * time.Second) // heartbeat brings it back
	}
	nodes := r.coord.Nodes()
	var flakyRec api.NodeSummary
	for _, n := range nodes {
		if n.ID == "n-flaky" {
			flakyRec = n
		}
	}
	if flakyRec.Departures != 5 {
		t.Fatalf("departures = %d, want 5", flakyRec.Departures)
	}

	// A long-running job now prefers the solid node even though the
	// flaky one sorts first alphabetically.
	spec := workload.LargeCNN
	spec.GPUMemMiB = 16000
	id, err := r.coord.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := r.coord.JobStatus(id)
	if st.NodeID != "n-solid" {
		t.Fatalf("long job placed on %s, want the reliable node", st.NodeID)
	}
}

func TestDatabaseSnapshotRoundTripThroughCoordinator(t *testing.T) {
	r := newRig(t, 10*time.Second)
	r.addNode("n1", gpu.RTX3090)
	id := submitTraining(t, r, workload.SmallCNN, 0)
	r.clock.Advance(time.Minute)

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(r.coord.DB().ExportState()); err != nil {
		t.Fatal(err)
	}
	var st db.State
	if err := json.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatal(err)
	}
	restored := db.New(0)
	restored.ImportState(st)
	job, err := restored.GetJob(id)
	if err != nil || job.State != db.JobRunning {
		t.Fatalf("restored job = %+v, %v", job, err)
	}
	if _, err := restored.GetNode("n1"); err != nil {
		t.Fatalf("restored node: %v", err)
	}
	if len(restored.SamplesInRange("gpu_utilization", "n1",
		t0, t0.Add(2*time.Minute))) == 0 {
		t.Fatal("telemetry history lost in snapshot")
	}
}

func TestPausedNodeKeepsRunningJobs(t *testing.T) {
	r := newRig(t, 10*time.Second)
	ag := r.addNode("n1", gpu.RTX3090)
	id := submitTraining(t, r, workload.SmallCNN, 0)
	ag.Pause()
	r.clock.Advance(2 * time.Minute)

	// The running job continues; only new allocations stop.
	st, _ := r.coord.JobStatus(id)
	if st.State != db.JobRunning {
		t.Fatalf("running job state = %s after pause", st.State)
	}
	job, ok := ag.RunningJob(id)
	if !ok || job.Step() == 0 {
		t.Fatal("job stopped progressing on a paused node")
	}
	// New work queues.
	id2 := submitTraining(t, r, workload.SmallCNN, 0)
	st2, _ := r.coord.JobStatus(id2)
	if st2.State != db.JobPending {
		t.Fatalf("new job state = %s on a fully-paused campus", st2.State)
	}
}

func TestConsecutiveEmergenciesExhaustCampus(t *testing.T) {
	// Every node dies; the job parks pending; a re-registration revives
	// the campus and the job resumes from its checkpoint.
	r := newRig(t, 10*time.Second)
	ag1 := r.addNode("n1", gpu.RTX3090)
	ag2 := r.addNode("n2", gpu.RTX3090)
	id := submitTraining(t, r, workload.SmallCNN, 15)
	r.clock.Advance(time.Minute)

	ag1.Depart(api.DepartEmergency, 0)
	ag2.Depart(api.DepartEmergency, 0)
	r.clock.Advance(time.Minute) // detection for both

	st, _ := r.coord.JobStatus(id)
	if st.State != db.JobPending {
		t.Fatalf("state = %s with no nodes left, want pending", st.State)
	}

	// One provider returns via re-registration.
	ag1.Return()
	resp, err := r.coord.Register(ag1.RegisterRequest("inproc://n1", 1<<30), LocalAgent{A: ag1})
	if err != nil {
		t.Fatal(err)
	}
	ag1.SetToken(resp.Token)

	st, _ = r.coord.JobStatus(id)
	if st.State != db.JobRunning || st.NodeID != "n1" {
		t.Fatalf("after revival: %+v", st)
	}
	job, ok := ag1.RunningJob(id)
	if !ok || job.Step() == 0 {
		t.Fatal("revived job lost its checkpointed progress")
	}
}

func TestMigrationStatsExposedThroughCoordinator(t *testing.T) {
	r := newRig(t, 10*time.Second)
	ag1 := r.addNode("n1", gpu.RTX3090)
	r.addNode("n2", gpu.RTX3090)
	submitTraining(t, r, workload.SmallCNN, 30)
	r.clock.Advance(time.Minute)
	ag1.Depart(api.DepartScheduled, time.Minute)

	stats := r.coord.Migration().Stats()
	if stats.Attempts[migration.ReasonScheduled] != 1 {
		t.Fatalf("attempts = %+v", stats.Attempts)
	}
	if stats.SuccessRate(migration.ReasonScheduled) != 1 {
		t.Fatalf("success rate = %v", stats.SuccessRate(migration.ReasonScheduled))
	}
}
