package core

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/obs"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

// TestHTTPMetricsExposition scrapes the coordinator's /v1/metrics after
// real traffic and asserts the full observability surface is present:
// WAL shipping lag, per-state job counts, heartbeat ingest, scheduler
// pool and batch instrumentation, leadership gauges, and per-shard
// store mutation counters.
func TestHTTPMetricsExposition(t *testing.T) {
	r := newHTTPRig(t)
	r.addHTTPNode("n1", gpu.RTX3090)

	if _, err := r.client.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: 8192, Training: &workload.SmallCNN,
	}); err != nil {
		t.Fatal(err)
	}
	// Let a few heartbeats land so the ingest counter moves.
	r.clock.Advance(500 * time.Millisecond)

	body, err := r.client.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gpunion_wal_ship_lag_bytes",
		"gpunion_wal_ship_lag_records",
		`gpunion_jobs{state="running"} 1`,
		`gpunion_jobs{state="pending"} 0`,
		"gpunion_heartbeats_total",
		"gpunion_heartbeat_duplicates_total",
		"gpunion_sched_pool_hits_total",
		"gpunion_sched_pool_misses_total",
		"gpunion_sched_batch_fill_bucket",
		"gpunion_scheduling_latency_seconds",
		"gpunion_leader_epoch 0",
		"gpunion_leading 1",
		`gpunion_store_mutations_total{shard="`,
		"gpunion_checkpoint_corruptions_total",
		"gpunion_checkpoint_fallbacks_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestHTTPTraceEndpoint drives one job to completion over the REST path
// and asserts /v1/trace returns its lifecycle as ordered, simclock-
// timestamped events.
func TestHTTPTraceEndpoint(t *testing.T) {
	r := newHTTPRig(t)
	r.addHTTPNode("n1", gpu.RTX3090)

	spec := workload.SmallCNN
	spec.TotalSteps = 20
	jobID, err := r.client.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.waitFor(30*time.Second, func() bool {
		st, err := r.client.JobStatus(jobID)
		return err == nil && st.State == db.JobCompleted
	})

	exp, err := r.client.TraceExport()
	if err != nil {
		t.Fatal(err)
	}
	timeline := obs.JobTimeline(exp.Events, jobID)
	kinds := obs.Kinds(timeline)
	for _, want := range []string{"job.submitted", "job.scheduled", "job.completed"} {
		if kinds[want] == 0 {
			t.Errorf("trace missing %s for %s (got %v)", want, jobID, kinds)
		}
	}
	spans := obs.Spans(timeline, "job.submitted", "job.completed")
	if len(spans) != 1 || spans[0].Duration <= 0 {
		t.Fatalf("lifecycle span = %+v", spans)
	}
}

// TestHTTPPprofGated verifies profiling endpoints exist only when
// Config.EnableProfiling is set.
func TestHTTPPprofGated(t *testing.T) {
	r := newHTTPRig(t)
	resp, err := r.coordSrv.Client().Get(r.coordSrv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("pprof served without opt-in: %d", resp.StatusCode)
	}

	clock := simclock.NewSim(t0)
	coord, err := New(Config{EnableProfiling: true}, clock,
		db.New(0), checkpoint.NewStore(storage.NewMemStore(0)), eventbus.New(16))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	srv := httptest.NewServer(coord.Handler(nil))
	t.Cleanup(srv.Close)
	resp2, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("pprof index with opt-in: %d", resp2.StatusCode)
	}
}
