package core

import (
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/workload"
)

// TestHeartbeatKillsOrphanCopy: a node that kept executing a job
// through a control-plane outage, while the platform migrated that job
// elsewhere, must have its stale copy killed by the next heartbeat's
// reconciliation — one job must never run twice.
func TestHeartbeatKillsOrphanCopy(t *testing.T) {
	r := newRig(t, time.Minute)
	ag1 := r.addNode("n1", gpu.RTX3090)
	r.addNode("n2", gpu.RTX3090)

	jobID := submitTraining(t, r, workload.SmallCNN, 60)
	rec, err := r.coord.db.GetJob(jobID)
	if err != nil || rec.State != db.JobRunning || rec.NodeID != "n1" {
		t.Fatalf("job = %+v, %v (want running on n1)", rec, err)
	}

	// Simulate the platform's view moving on without the agent hearing
	// about it: the coordinator requeues and re-places the job on n2,
	// as Sweep would for an unreachable n1. The copy on n1 lives on.
	_ = r.coord.db.CloseAllocation(jobID, r.clock.Now())
	_ = r.coord.db.UpdateJob(jobID, func(j *db.JobRecord) {
		j.State = db.JobPending
		j.NodeID, j.DeviceID = "", ""
	})
	r.coord.markDevice("n1", rec.DeviceID, false)
	r.coord.TrySchedule()
	moved, _ := r.coord.db.GetJob(jobID)
	if moved.State != db.JobRunning || moved.NodeID != "n2" {
		t.Fatalf("job after re-placement = %+v (want running on n2)", moved)
	}
	if len(ag1.Status().RunningJobs) != 1 {
		t.Fatal("n1 should still hold the orphan copy")
	}

	// Once the new placement has outlived the report-skew grace, the
	// next heartbeat reporting the orphan gets it killed.
	r.clock.Advance(2 * time.Minute)
	if _, err := r.coord.Heartbeat(ag1.HeartbeatRequest()); err != nil {
		t.Fatal(err)
	}
	if n := len(ag1.Status().RunningJobs); n != 0 {
		t.Fatalf("orphan survived reconciliation: %d jobs on n1", n)
	}
	// The migrated placement is untouched.
	after, _ := r.coord.db.GetJob(jobID)
	if after.State != db.JobRunning || after.NodeID != "n2" {
		t.Fatalf("reconciliation disturbed the live placement: %+v", after)
	}
}

// TestHeartbeatRequeuesLostPlacement: a node that loses power and
// returns inside the missed-heartbeat window (so the sweep never
// fires) lost its workloads. Its next heartbeat — empty running-job
// report, devices free — must requeue the placements the platform
// still believes are running there.
func TestHeartbeatRequeuesLostPlacement(t *testing.T) {
	r := newRig(t, time.Minute)
	ag1 := r.addNode("n1", gpu.RTX3090)
	r.addNode("n2", gpu.RTX3090)

	jobID := submitTraining(t, r, workload.SmallCNN, 60)
	rec, _ := r.coord.db.GetJob(jobID)
	if rec.State != db.JobRunning || rec.NodeID != "n1" {
		t.Fatalf("job = %+v (want running on n1)", rec)
	}

	// Power blip: everything on n1 dies, silently. Advance past the
	// placement grace but stay inside the missed threshold.
	r.clock.Advance(2 * time.Minute)
	ag1.KillSwitch()

	if _, err := r.coord.Heartbeat(ag1.HeartbeatRequest()); err != nil {
		t.Fatal(err)
	}
	after, _ := r.coord.db.GetJob(jobID)
	if after.NodeID == "n1" {
		t.Fatalf("lost placement not recovered: %+v", after)
	}
	// The requeue frees n1's device and the scheduling pass re-places
	// the job (n2 is free), so it must be running again somewhere.
	if after.State != db.JobRunning && after.State != db.JobPending {
		t.Fatalf("job in state %s after reconciliation", after.State)
	}
}

// TestHeartbeatProtectsFreshPlacement: a job placed moments ago must
// NOT be requeued just because the agent's in-flight report predates
// it — and its device flag must survive the stale telemetry.
func TestHeartbeatProtectsFreshPlacement(t *testing.T) {
	r := newRig(t, time.Minute)
	ag1 := r.addNode("n1", gpu.RTX3090)

	// Build the report BEFORE the job exists: the stale-report race.
	stale := ag1.HeartbeatRequest()

	jobID := submitTraining(t, r, workload.SmallCNN, 60)
	rec, _ := r.coord.db.GetJob(jobID)
	if rec.State != db.JobRunning {
		t.Fatalf("job = %+v", rec)
	}
	if _, err := r.coord.Heartbeat(stale); err != nil {
		t.Fatal(err)
	}
	after, _ := r.coord.db.GetJob(jobID)
	if after.State != db.JobRunning || after.NodeID != "n1" {
		t.Fatalf("fresh placement requeued by stale report: %+v", after)
	}
	node, _ := r.coord.db.GetNode("n1")
	if !node.GPUs[0].Allocated {
		t.Fatal("stale report freed the fresh placement's device")
	}
}

// TestJobUpdateFromStaleNodeIgnored: a terminal report from a node the
// job no longer runs on must not flip the record or free the new
// host's device.
func TestJobUpdateFromStaleNodeIgnored(t *testing.T) {
	r := newRig(t, time.Minute)
	r.addNode("n1", gpu.RTX3090)
	jobID := submitTraining(t, r, workload.SmallCNN, 60)
	rec, _ := r.coord.db.GetJob(jobID)
	if rec.NodeID != "n1" {
		t.Fatalf("job on %s", rec.NodeID)
	}

	r.coord.JobUpdate("ghost-node", jobID, db.JobCompleted, 10)
	after, _ := r.coord.db.GetJob(jobID)
	if after.State != db.JobRunning {
		t.Fatalf("stale completion flipped job to %s", after.State)
	}
	// The genuine host's report still lands.
	r.coord.JobUpdate("n1", jobID, db.JobCompleted, 10)
	after, _ = r.coord.db.GetJob(jobID)
	if after.State != db.JobCompleted {
		t.Fatalf("genuine completion dropped: %s", after.State)
	}
}

// TestStoppedCoordinatorIsFenced: deferred work (sweeps, scheduling,
// migration finishes) fired after Stop must not touch agents or the
// database — the zombie-coordinator fence the chaos kill/restart
// scenario depends on.
func TestStoppedCoordinatorIsFenced(t *testing.T) {
	r := newRig(t, time.Minute)
	r.addNode("n1", gpu.RTX3090)

	// A pending job that would schedule instantly if the fence leaked.
	spec := workload.SmallCNN
	huge := spec
	huge.GPUMemMiB = 1 << 30 // unplaceable now
	pendID, err := r.coord.SubmitJob(api.SubmitJobRequest{
		User: "bob", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: huge.GPUMemMiB, Training: &huge,
	})
	if err != nil {
		t.Fatal(err)
	}

	r.coord.Stop()
	_ = r.coord.db.UpdateJob(pendID, func(j *db.JobRecord) { j.GPUMemMiB = spec.GPUMemMiB })
	r.coord.TrySchedule()
	r.coord.Sweep()
	if rec, _ := r.coord.db.GetJob(pendID); rec.State != db.JobPending {
		t.Fatalf("stopped coordinator still scheduled: %s", rec.State)
	}
}
