package core

import (
	"fmt"
	"html/template"
	"net/http"
	"time"

	"gpunion/internal/db"
)

// dashboardTmpl renders the coordinator's status page — the paper's
// "Web Interface" user client (Fig. 1). It is a read-only view over the
// same state the REST API serves.
var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html>
<head>
<title>GPUnion — campus status</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
  h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
  table { border-collapse: collapse; min-width: 40rem; }
  th, td { text-align: left; padding: .3rem .8rem; border-bottom: 1px solid #ddd; }
  th { background: #f5f5f5; }
  .active { color: #087f23; } .departed, .unreachable { color: #b00020; }
  .paused, .departing { color: #b26a00; }
  .muted { color: #888; }
</style>
</head>
<body>
<h1>GPUnion campus status</h1>
<p class="muted">{{.Now}} — {{.NodeCount}} nodes, {{.GPUTotal}} GPUs ({{.GPUFree}} free), {{.RunningJobs}} jobs running, {{.PendingJobs}} queued, {{.Sessions}} interactive sessions to date</p>

<h2>Provider nodes</h2>
<table>
<tr><th>Node</th><th>Status</th><th>GPUs</th><th>Free</th><th>Last heartbeat</th><th>Departures</th></tr>
{{range .Nodes}}<tr>
  <td>{{.ID}}</td><td class="{{.Status}}">{{.Status}}</td>
  <td>{{.GPUs}}</td><td>{{.Free}}</td><td>{{.LastBeat}}</td><td>{{.Departures}}</td>
</tr>{{end}}
</table>

<h2>Jobs</h2>
<table>
<tr><th>Job</th><th>User</th><th>Kind</th><th>State</th><th>Node</th><th>Migrations</th><th>Submitted</th></tr>
{{range .Jobs}}<tr>
  <td>{{.ID}}</td><td>{{.User}}</td><td>{{.Kind}}</td><td>{{.State}}</td>
  <td>{{.Node}}</td><td>{{.Migrations}}</td><td>{{.Submitted}}</td>
</tr>{{end}}
</table>
</body>
</html>
`))

type dashboardNode struct {
	ID         string
	Status     db.NodeStatus
	GPUs       int
	Free       int
	LastBeat   string
	Departures int
}

type dashboardJob struct {
	ID, User, Kind string
	State          db.JobState
	Node           string
	Migrations     int
	Submitted      string
}

type dashboardData struct {
	Now         string
	NodeCount   int
	GPUTotal    int
	GPUFree     int
	RunningJobs int
	PendingJobs int
	Sessions    int
	Nodes       []dashboardNode
	Jobs        []dashboardJob
}

// Dashboard returns the HTML status page handler, mounted at / by the
// coordinator's Handler.
func (c *Coordinator) Dashboard() http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		now := c.clock.Now()
		data := dashboardData{
			Now:         now.Format(time.RFC1123),
			RunningJobs: c.db.CountJobsInState(db.JobRunning),
			PendingJobs: c.db.CountJobsInState(db.JobPending),
			Sessions:    c.InteractiveSessions(),
		}
		for _, n := range c.db.ListNodes() {
			free := 0
			for _, g := range n.GPUs {
				if !g.Allocated {
					free++
				}
			}
			data.NodeCount++
			data.GPUTotal += len(n.GPUs)
			if n.Status == db.NodeActive {
				data.GPUFree += free
			}
			beat := "never"
			if !n.LastHeartbeat.IsZero() {
				beat = fmt.Sprintf("%s ago", now.Sub(n.LastHeartbeat).Round(time.Second))
			}
			data.Nodes = append(data.Nodes, dashboardNode{
				ID: n.ID, Status: n.Status, GPUs: len(n.GPUs), Free: free,
				LastBeat: beat, Departures: n.Departures,
			})
		}
		// Show the most recent jobs first, capped for page size.
		jobs := c.db.ListJobs()
		const maxRows = 50
		for i := len(jobs) - 1; i >= 0 && len(data.Jobs) < maxRows; i-- {
			j := jobs[i]
			node := j.NodeID
			if node == "" {
				node = "—"
			}
			data.Jobs = append(data.Jobs, dashboardJob{
				ID: j.ID, User: j.User, Kind: j.Kind, State: j.State,
				Node: node, Migrations: j.Migrations,
				Submitted: j.SubmittedAt.Format("Jan 2 15:04"),
			})
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := dashboardTmpl.Execute(w, data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
