package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/migration"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

var t0 = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

// rig is an in-process campus: one coordinator, several agents, shared
// checkpoint store, all on one simulated clock with automatic heartbeats.
type rig struct {
	t     *testing.T
	clock *simclock.Sim
	coord *Coordinator
	ckpts *checkpoint.Store
	ags   map[string]*agent.Agent
}

func newRig(t *testing.T, hbInterval time.Duration) *rig {
	t.Helper()
	clock := simclock.NewSim(t0)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	coord, err := New(Config{HeartbeatInterval: hbInterval}, clock,
		db.New(0), ckpts, eventbus.New(1024))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	return &rig{t: t, clock: clock, coord: coord, ckpts: ckpts, ags: make(map[string]*agent.Agent)}
}

// addNode creates an agent with the given GPUs, registers it, and starts
// its heartbeat loop on the simulated clock.
func (r *rig) addNode(id string, specs ...gpu.Spec) *agent.Agent {
	r.t.Helper()
	rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(specs...), 0, 0)
	ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15"},
		r.clock, rt, r.ckpts, nil, r.coord)
	r.t.Cleanup(ag.Stop)
	resp, err := r.coord.Register(ag.RegisterRequest("inproc://"+id, 1<<30), LocalAgent{A: ag})
	if err != nil {
		r.t.Fatal(err)
	}
	ag.SetToken(resp.Token)
	r.ags[id] = ag
	r.heartbeatLoop(ag, resp.HeartbeatInterval)
	return ag
}

func (r *rig) heartbeatLoop(ag *agent.Agent, interval time.Duration) {
	var loop func()
	loop = func() {
		if !ag.Departed() {
			_, _ = r.coord.Heartbeat(ag.HeartbeatRequest())
		}
		r.clock.AfterFunc(interval, loop)
	}
	r.clock.AfterFunc(interval, loop)
}

func submitTraining(t *testing.T, r *rig, spec workload.TrainingSpec, ckptSec int) string {
	t.Helper()
	id, err := r.coord.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, CheckpointIntervalSec: ckptSec, Training: &spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestSubmitSchedulesAndCompletes(t *testing.T) {
	r := newRig(t, 10*time.Second)
	r.addNode("n1", gpu.RTX3090)
	spec := workload.SmallCNN
	spec.TotalSteps = 100
	id := submitTraining(t, r, spec, 0)

	st, err := r.coord.JobStatus(id)
	if err != nil || st.State != db.JobRunning || st.NodeID != "n1" {
		t.Fatalf("status = %+v, %v", st, err)
	}
	r.clock.Advance(2 * time.Minute)
	st, _ = r.coord.JobStatus(id)
	if st.State != db.JobCompleted {
		t.Fatalf("state = %s, want completed", st.State)
	}
	// Device freed in the coordinator's resource view.
	nodes := r.coord.Nodes()
	if nodes[0].GPUs[0].Allocated {
		t.Fatal("device still marked allocated after completion")
	}
}

func TestSubmitValidation(t *testing.T) {
	r := newRig(t, 10*time.Second)
	if _, err := r.coord.SubmitJob(api.SubmitJobRequest{Kind: "weird", ImageName: "x"}); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := r.coord.SubmitJob(api.SubmitJobRequest{Kind: "batch"}); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestJobQueuesWhenFull(t *testing.T) {
	r := newRig(t, 10*time.Second)
	r.addNode("n1", gpu.RTX3090) // one device
	long := workload.SmallCNN
	id1 := submitTraining(t, r, long, 0)
	id2 := submitTraining(t, r, long, 0)

	st1, _ := r.coord.JobStatus(id1)
	st2, _ := r.coord.JobStatus(id2)
	if st1.State != db.JobRunning || st2.State != db.JobPending {
		t.Fatalf("states = %s, %s", st1.State, st2.State)
	}
}

func TestQueuedJobStartsWhenCapacityFrees(t *testing.T) {
	r := newRig(t, 10*time.Second)
	r.addNode("n1", gpu.RTX3090)
	short := workload.SmallCNN
	short.TotalSteps = 50
	id1 := submitTraining(t, r, short, 0)
	id2 := submitTraining(t, r, workload.SmallCNN, 0)
	r.clock.Advance(2 * time.Minute) // id1 finishes, id2 should start
	st1, _ := r.coord.JobStatus(id1)
	st2, _ := r.coord.JobStatus(id2)
	if st1.State != db.JobCompleted {
		t.Fatalf("job1 = %s", st1.State)
	}
	if st2.State != db.JobRunning {
		t.Fatalf("job2 = %s, want running after capacity freed", st2.State)
	}
}

func TestScheduledDepartureMigratesJob(t *testing.T) {
	r := newRig(t, 10*time.Second)
	ag1 := r.addNode("n1", gpu.RTX3090)
	r.addNode("n2", gpu.RTX3090)
	id := submitTraining(t, r, workload.SmallCNN, 30)

	st, _ := r.coord.JobStatus(id)
	if st.NodeID != "n1" {
		t.Fatalf("job started on %s", st.NodeID)
	}
	r.clock.Advance(time.Minute) // progress + periodic checkpoints

	ag1.Depart(api.DepartScheduled, time.Minute)

	st, _ = r.coord.JobStatus(id)
	if st.State != db.JobRunning || st.NodeID != "n2" {
		t.Fatalf("after departure: %+v, want running on n2", st)
	}
	if st.Migrations != 1 {
		t.Fatalf("migrations = %d", st.Migrations)
	}
	// Progress resumed from the final checkpoint, not zero.
	job, ok := r.ags["n2"].RunningJob(id)
	if !ok || job.Step() == 0 {
		t.Fatal("migrated job lost all progress")
	}
	stats := r.coord.Migration().Stats()
	if stats.SuccessRate(migration.ReasonScheduled) != 1.0 {
		t.Fatalf("scheduled success rate = %v", stats.SuccessRate(migration.ReasonScheduled))
	}
}

func TestEmergencyDepartureDetectedByHeartbeatLoss(t *testing.T) {
	r := newRig(t, 10*time.Second)
	ag1 := r.addNode("n1", gpu.RTX3090)
	r.addNode("n2", gpu.RTX3090)
	id := submitTraining(t, r, workload.SmallCNN, 15)
	r.clock.Advance(time.Minute) // build up checkpoints

	stepBefore := func() int64 {
		if job, ok := ag1.RunningJob(id); ok {
			return job.Step()
		}
		return -1
	}()
	ckBefore, err := r.ckpts.Latest(id)
	if err != nil {
		t.Fatal(err)
	}
	ag1.Depart(api.DepartEmergency, 0) // silent

	// Within 2 intervals: not yet detected.
	r.clock.Advance(20 * time.Second)
	st, _ := r.coord.JobStatus(id)
	if st.NodeID != "n1" {
		t.Fatalf("job moved before detection threshold: %+v", st)
	}
	// After 3+ intervals: detected and migrated.
	r.clock.Advance(30 * time.Second)
	st, _ = r.coord.JobStatus(id)
	if st.State != db.JobRunning || st.NodeID != "n2" {
		t.Fatalf("after loss: %+v, want running on n2", st)
	}
	// Emergency loses work back to the last checkpoint.
	job, ok := r.ags["n2"].RunningJob(id)
	if !ok {
		t.Fatal("job not running on n2")
	}
	if job.Step() < ckBefore.Progress.Step {
		t.Fatalf("restored below checkpoint: %d < %d", job.Step(), ckBefore.Progress.Step)
	}
	// The pre-departure checkpoint can never be ahead of real progress.
	if stepBefore > 0 && ckBefore.Progress.Step > stepBefore {
		t.Fatalf("checkpoint ahead of actual progress: %d > %d", ckBefore.Progress.Step, stepBefore)
	}
	nodes := r.coord.Nodes()
	for _, n := range nodes {
		if n.ID == "n1" && n.Status != db.NodeUnreachable {
			t.Fatalf("n1 status = %s, want unreachable", n.Status)
		}
	}
}

func TestTemporaryDepartureMigratesBackOnReturn(t *testing.T) {
	r := newRig(t, 10*time.Second)
	ag1 := r.addNode("n1", gpu.RTX3090)
	r.addNode("n2", gpu.RTX3090)
	id := submitTraining(t, r, workload.SmallCNN, 30)
	r.clock.Advance(time.Minute)

	ag1.Depart(api.DepartTemporary, time.Minute)
	st, _ := r.coord.JobStatus(id)
	if st.NodeID != "n2" {
		t.Fatalf("job not displaced to n2: %+v", st)
	}

	// Provider returns; next heartbeat triggers migrate-back.
	ag1.Return()
	r.clock.Advance(20 * time.Second)

	st, _ = r.coord.JobStatus(id)
	if st.NodeID != "n1" {
		t.Fatalf("job not migrated back: %+v", st)
	}
	if st.Migrations < 2 {
		t.Fatalf("migrations = %d, want >= 2 (out and back)", st.Migrations)
	}
	stats := r.coord.Migration().Stats()
	if stats.Successes[migration.ReasonMigrateBack] != 1 {
		t.Fatalf("migrate-back successes = %d", stats.Successes[migration.ReasonMigrateBack])
	}
}

func TestKillSwitchJobRequeuedByDetection(t *testing.T) {
	// Kill-switch is silent at the platform level: the job dies on the
	// node but the node keeps heartbeating. The coordinator only learns
	// via the agent's job list going empty... which GPUnion handles by
	// the job simply never completing on that node. The coordinator's
	// job record still says running on n1 — this is the trade-off of
	// provider supremacy. Here we verify the kill-switch path itself.
	r := newRig(t, 10*time.Second)
	ag1 := r.addNode("n1", gpu.RTX3090)
	id := submitTraining(t, r, workload.SmallCNN, 30)
	killed := ag1.KillSwitch()
	if len(killed) != 1 || killed[0] != id {
		t.Fatalf("killed = %v", killed)
	}
	if len(ag1.Status().RunningJobs) != 0 {
		t.Fatal("job survived kill-switch")
	}
}

func TestCoordinatorKillJob(t *testing.T) {
	r := newRig(t, 10*time.Second)
	r.addNode("n1", gpu.RTX3090)
	id := submitTraining(t, r, workload.SmallCNN, 0)
	if err := r.coord.KillJob(id); err != nil {
		t.Fatal(err)
	}
	st, _ := r.coord.JobStatus(id)
	if st.State != db.JobKilled {
		t.Fatalf("state = %s", st.State)
	}
	if len(r.ags["n1"].Status().RunningJobs) != 0 {
		t.Fatal("agent still running the killed job")
	}
	if err := r.coord.KillJob("ghost"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v", err)
	}
}

func TestHeartbeatBadToken(t *testing.T) {
	r := newRig(t, 10*time.Second)
	ag := r.addNode("n1", gpu.RTX3090)
	req := ag.HeartbeatRequest()
	req.Token = "forged.token"
	if _, err := r.coord.Heartbeat(req); !errors.Is(err, ErrBadToken) {
		t.Fatalf("err = %v, want ErrBadToken", err)
	}
}

func TestHeartbeatUnknownNodeAsksReregister(t *testing.T) {
	r := newRig(t, 10*time.Second)
	ag := r.addNode("n1", gpu.RTX3090)
	// A token for a node the DB doesn't know (fresh coordinator state).
	r2 := newRig(t, 10*time.Second)
	tok, _ := r2.coord.authy.Issue("n1", "provider", t0)
	req := ag.HeartbeatRequest()
	req.Token = tok
	resp, err := r2.coord.Heartbeat(req)
	if err != nil || !resp.Reregister {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
}

func TestRegisterEmptyMachineID(t *testing.T) {
	r := newRig(t, 10*time.Second)
	if _, err := r.coord.Register(api.RegisterRequest{}, nil); err == nil {
		t.Fatal("empty machine id accepted")
	}
}

func TestDepartureIncrementsReliabilityHistory(t *testing.T) {
	r := newRig(t, 10*time.Second)
	ag1 := r.addNode("n1", gpu.RTX3090)
	ag1.Depart(api.DepartScheduled, 0)
	nodes := r.coord.Nodes()
	if nodes[0].Departures != 1 {
		t.Fatalf("departures = %d", nodes[0].Departures)
	}
	if nodes[0].Status != db.NodeDeparted {
		t.Fatalf("status = %s", nodes[0].Status)
	}
}

func TestInteractiveSessionCounted(t *testing.T) {
	r := newRig(t, 10*time.Second)
	r.addNode("n1", gpu.RTX3090)
	_, err := r.coord.SubmitJob(api.SubmitJobRequest{
		User: "bob", Kind: "interactive", ImageName: "gpunion/jupyter-dl:latest",
		GPUMemMiB: 4096, SessionSeconds: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.coord.InteractiveSessions() != 1 {
		t.Fatalf("interactive sessions = %d", r.coord.InteractiveSessions())
	}
}

func TestTelemetryPersistedOnHeartbeat(t *testing.T) {
	r := newRig(t, 10*time.Second)
	r.addNode("n1", gpu.RTX3090)
	submitTraining(t, r, workload.SmallCNN, 0)
	r.clock.Advance(time.Minute)
	samples := r.coord.DB().SamplesInRange("gpu_utilization", "n1", t0, t0.Add(2*time.Minute))
	if len(samples) == 0 {
		t.Fatal("no utilization samples persisted")
	}
	var busy bool
	for _, s := range samples {
		if s.Value > 0.9 {
			busy = true
		}
	}
	if !busy {
		t.Fatal("no sample reflects training load")
	}
}

func TestMetricsExposition(t *testing.T) {
	r := newRig(t, 10*time.Second)
	r.addNode("n1", gpu.RTX3090)
	submitTraining(t, r, workload.SmallCNN, 0)
	var sb strings.Builder
	if err := r.coord.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gpunion_scheduling_latency_seconds_count") {
		t.Fatalf("metrics missing scheduling latency:\n%s", sb.String())
	}
}

func TestNoCapacityJobWaitsForNewNode(t *testing.T) {
	r := newRig(t, 10*time.Second)
	id := submitTraining(t, r, workload.SmallCNN, 0) // no nodes at all
	st, _ := r.coord.JobStatus(id)
	if st.State != db.JobPending {
		t.Fatalf("state = %s, want pending", st.State)
	}
	// A node joins: dynamic node joining is native (Table 1).
	r.addNode("n1", gpu.RTX3090)
	st, _ = r.coord.JobStatus(id)
	if st.State != db.JobRunning {
		t.Fatalf("state = %s, want running after node join", st.State)
	}
}

func TestRequeueWhenNoMigrationTarget(t *testing.T) {
	r := newRig(t, 10*time.Second)
	ag1 := r.addNode("n1", gpu.RTX3090) // the only node
	id := submitTraining(t, r, workload.SmallCNN, 30)
	r.clock.Advance(time.Minute)
	ag1.Depart(api.DepartScheduled, time.Minute)

	st, _ := r.coord.JobStatus(id)
	if st.State != db.JobPending {
		t.Fatalf("state = %s, want pending (no target)", st.State)
	}
	// Capacity returns: the job resumes from its checkpoint.
	r.addNode("n2", gpu.RTX3090)
	st, _ = r.coord.JobStatus(id)
	if st.State != db.JobRunning || st.NodeID != "n2" {
		t.Fatalf("after new node: %+v", st)
	}
	job, ok := r.ags["n2"].RunningJob(id)
	if !ok {
		t.Fatal("job not running")
	}
	if job.Step() == 0 {
		t.Fatal("requeued job lost its checkpointed progress")
	}
}

// TestHeartbeatDuplicateDropped: a replayed heartbeat (same BeatSeq) is
// acknowledged but processed zero times — no samples, no telemetry
// refresh, no mutation-sequence advance.
func TestHeartbeatDuplicateDropped(t *testing.T) {
	r := newRig(t, time.Minute)
	ag := r.addNode("n1", gpu.RTX3090)
	r.clock.Advance(2 * time.Minute)

	req := ag.HeartbeatRequest()
	if req.BeatSeq == 0 {
		t.Fatal("agent built a beat without a sequence number")
	}
	if resp, err := r.coord.Heartbeat(req); err != nil || !resp.Acknowledged {
		t.Fatalf("first delivery = %+v, %v", resp, err)
	}
	before := r.coord.DB().CurrentLSN()
	for i := 0; i < 3; i++ {
		resp, err := r.coord.Heartbeat(req)
		if err != nil || !resp.Acknowledged {
			t.Fatalf("duplicate delivery = %+v, %v", resp, err)
		}
	}
	if after := r.coord.DB().CurrentLSN(); after != before {
		t.Fatalf("duplicate heartbeats mutated the store: LSN %d -> %d", before, after)
	}
	// A genuinely new beat is still processed.
	if _, err := r.coord.Heartbeat(ag.HeartbeatRequest()); err != nil {
		t.Fatal(err)
	}
	if after := r.coord.DB().CurrentLSN(); after == before {
		t.Fatal("fresh beat was swallowed by the duplicate guard")
	}
}

// TestHeartbeatSeqResetOnReregister: an agent restart restarts its beat
// counter; re-registration must clear the guard so the node is not
// permanently muted.
func TestHeartbeatSeqResetOnReregister(t *testing.T) {
	r := newRig(t, time.Minute)
	ag := r.addNode("n1", gpu.RTX3090)
	// Drive the counter well past 1.
	for i := 0; i < 5; i++ {
		if _, err := r.coord.Heartbeat(ag.HeartbeatRequest()); err != nil {
			t.Fatal(err)
		}
	}
	// "Restart": a fresh agent process for the same machine, counter
	// back at one.
	rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(gpu.RTX3090), 0, 0)
	ag2 := agent.New(agent.Config{MachineID: "n1", Kernel: "5.15"}, r.clock, rt, r.ckpts, nil, r.coord)
	defer ag2.Stop()
	resp, err := r.coord.Register(ag2.RegisterRequest("inproc://n1", 1<<30), LocalAgent{A: ag2})
	if err != nil {
		t.Fatal(err)
	}
	ag2.SetToken(resp.Token)
	req := ag2.HeartbeatRequest()
	if req.BeatSeq != 1 {
		t.Fatalf("restarted agent's first beat seq = %d", req.BeatSeq)
	}
	before := r.coord.DB().CurrentLSN()
	if resp, err := r.coord.Heartbeat(req); err != nil || !resp.Acknowledged {
		t.Fatalf("first beat after restart = %+v, %v", resp, err)
	}
	if r.coord.DB().CurrentLSN() == before {
		t.Fatal("restarted agent's beats are muted by the stale guard")
	}
}

// TestJobUpdateDuplicateIsNoOp: a replayed terminal report must not
// re-stamp the record, advance the mutation sequence, or disturb the
// (long since closed) allocation.
func TestJobUpdateDuplicateIsNoOp(t *testing.T) {
	r := newRig(t, time.Minute)
	r.addNode("n1", gpu.RTX3090)
	spec := workload.SmallCNN
	spec.TotalSteps = 50
	jobID := submitTraining(t, r, spec, 0)
	r.clock.Advance(2 * time.Minute) // completes and reports

	rec, err := r.coord.DB().GetJob(jobID)
	if err != nil || rec.State != db.JobCompleted {
		t.Fatalf("job = %+v, %v", rec, err)
	}
	before := r.coord.DB().CurrentLSN()
	r.coord.JobUpdate("n1", jobID, db.JobCompleted, 50)
	r.coord.JobUpdate("n1", jobID, db.JobFailed, 50) // conflicting replay loses too
	if after := r.coord.DB().CurrentLSN(); after != before {
		t.Fatalf("duplicate terminal reports mutated the store: LSN %d -> %d", before, after)
	}
	rec2, _ := r.coord.DB().GetJob(jobID)
	if rec2.State != db.JobCompleted || !rec2.FinishedAt.Equal(rec.FinishedAt) {
		t.Fatalf("record disturbed by duplicates: %+v vs %+v", rec2, rec)
	}
}

// TestHeartbeatRetryAfterReregisterNotSwallowed: a beat that bounced
// with Reregister (dead handle after a coordinator restart) was NOT
// processed, so retrying the identical request must bounce again — not
// be acknowledged as a duplicate of a beat that never landed.
func TestHeartbeatRetryAfterReregisterNotSwallowed(t *testing.T) {
	secret := []byte("shared-coordinator-secret")
	clock := simclock.NewSim(t0)
	store := db.New(0)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	coord1, err := New(Config{HeartbeatInterval: time.Minute, AuthSecret: secret},
		clock, store, ckpts, eventbus.New(64))
	if err != nil {
		t.Fatal(err)
	}
	rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(gpu.RTX3090), 0, 0)
	ag := agent.New(agent.Config{MachineID: "n1", Kernel: "5.15"}, clock, rt, ckpts, nil, NopCoordNotifier{})
	defer ag.Stop()
	resp, err := coord1.Register(ag.RegisterRequest("inproc://n1", 1<<30), LocalAgent{A: ag})
	if err != nil {
		t.Fatal(err)
	}
	ag.SetToken(resp.Token)
	coord1.Stop()

	// The successor recovered the store (same records, same secret) but
	// has no transport to the agent yet.
	coord2, err := New(Config{HeartbeatInterval: time.Minute, AuthSecret: secret},
		clock, store, ckpts, eventbus.New(64))
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Stop()
	req := ag.HeartbeatRequest()
	hb1, err := coord2.Heartbeat(req)
	if err != nil || !hb1.Reregister {
		t.Fatalf("first delivery = %+v, %v (want Reregister)", hb1, err)
	}
	// The response was lost; the transport retries the identical beat.
	hb2, err := coord2.Heartbeat(req)
	if err != nil || !hb2.Reregister {
		t.Fatalf("retried delivery = %+v, %v — the bounced beat was swallowed as a duplicate", hb2, err)
	}
}

// NopCoordNotifier discards agent notifications in coordinator tests.
type NopCoordNotifier struct{}

func (NopCoordNotifier) JobUpdate(string, string, db.JobState, int64) {}
func (NopCoordNotifier) Departing(string, api.DepartReason)           {}
