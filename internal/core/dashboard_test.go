package core

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/gpu"
	"gpunion/internal/workload"
)

func TestDashboardRendersCampusState(t *testing.T) {
	r := newRig(t, 10*time.Second)
	r.addNode("n1", gpu.RTX3090, gpu.RTX3090)
	id := submitTraining(t, r, workload.SmallCNN, 0)
	_, err := r.coord.SubmitJob(sessionRequest())
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(r.coord.Handler(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{
		"GPUnion campus status",
		"n1",          // the node row
		id,            // the job row
		"interactive", // the session row
		"2 GPUs",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

func TestDashboardEmptyCampus(t *testing.T) {
	r := newRig(t, 10*time.Second)
	srv := httptest.NewServer(r.coord.Handler(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d for empty campus", resp.StatusCode)
	}
}

func TestDashboardUnknownPathIs404(t *testing.T) {
	r := newRig(t, 10*time.Second)
	srv := httptest.NewServer(r.coord.Handler(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/not-a-page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func sessionRequest() api.SubmitJobRequest {
	return api.SubmitJobRequest{
		User: "student", Kind: "interactive",
		ImageName: "gpunion/jupyter-dl:latest",
		GPUMemMiB: 4096, SessionSeconds: 600,
	}
}
