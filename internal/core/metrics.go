package core

import (
	"strconv"
	"strings"
	"sync"

	"gpunion/internal/db"
	"gpunion/internal/monitor"
)

// coordMetrics is the coordinator's full-surface instrumentation: the
// counters and histograms hot paths feed inline (pre-resolved handles,
// no registry lookups per request), plus refresh-on-scrape gauges
// derived from subsystem state — job-state indexes, leadership,
// scheduler pool cache effectiveness, checkpoint verification. Sources
// that expose lifetime totals (pool stats, checkpoint detectors) are
// re-exported as counters via delta tracking so scrapes stay
// monotonic even though the coordinator polls rather than intercepts.
type coordMetrics struct {
	heartbeats    *monitor.Counter
	heartbeatDups *monitor.Counter
	batchFill     *monitor.Histogram
	beatBatch     *monitor.Histogram
	leaderChanges *monitor.Counter
	fencedWrites  *monitor.Counter
	aggBatches    *monitor.Counter
	aggDeltas     *monitor.Counter
	aggPassthru   *monitor.Counter

	shipLagRecords *monitor.Gauge
	shipLagBytes   *monitor.Gauge
	leaderEpoch    *monitor.Gauge
	leading        *monitor.Gauge

	poolHits      *monitor.Counter
	poolMisses    *monitor.Counter
	ckptCorrupt   *monitor.Counter
	ckptFallbacks *monitor.Counter

	reg *monitor.Registry

	mu sync.Mutex
	// mutations caches one counter handle per (type, shard) pair so the
	// store's mutation hook — called on every committed write — does a
	// map hit, not a registry registration.
	mutations map[string]*monitor.Counter
	jobGauges map[db.JobState]*monitor.Gauge
	// healthEvents caches one counter per (kind, severity) pair and
	// nodeHealth one gauge per node, both registered lazily on first
	// sight — same reasoning as mutations: the heartbeat ingest path
	// must do a map hit, not a registry registration.
	healthEvents map[string]*monitor.Counter
	nodeHealth   map[string]*monitor.Gauge
	// Last-seen values for the polled lifetime totals (delta-Add keeps
	// the exported counters monotonic across scrapes).
	lastPoolHits, lastPoolMisses uint64
	lastCorrupt, lastFallbacks   int
}

// jobStates is every state a job record can be in, in lifecycle order;
// refresh exports one per-state gauge for each.
var jobStates = []db.JobState{
	db.JobPending, db.JobRunning, db.JobMigrating,
	db.JobCompleted, db.JobFailed, db.JobKilled,
}

// newCoordMetrics registers the coordinator's instruments on reg.
func newCoordMetrics(reg *monitor.Registry) (*coordMetrics, error) {
	m := &coordMetrics{
		reg:          reg,
		mutations:    make(map[string]*monitor.Counter),
		jobGauges:    make(map[db.JobState]*monitor.Gauge),
		healthEvents: make(map[string]*monitor.Counter),
		nodeHealth:   make(map[string]*monitor.Gauge),
	}
	var err error
	register := func(dst **monitor.Counter, name, help string) {
		if err != nil {
			return
		}
		*dst, err = reg.Counter(name, help, nil)
	}
	gauge := func(dst **monitor.Gauge, name, help string) {
		if err != nil {
			return
		}
		*dst, err = reg.Gauge(name, help, nil)
	}
	register(&m.heartbeats, "gpunion_heartbeats_total",
		"Heartbeat reports accepted for processing")
	register(&m.heartbeatDups, "gpunion_heartbeat_duplicates_total",
		"Heartbeat replays swallowed by the beat-sequence guard")
	register(&m.leaderChanges, "gpunion_leader_transitions_total",
		"Leadership acquisitions and step-downs on this replica")
	register(&m.fencedWrites, "gpunion_fenced_writes_total",
		"Mutating requests rejected because this replica is not the leader")
	register(&m.aggBatches, "gpunion_agg_batches_total",
		"Aggregated heartbeat batches ingested from rack aggregators")
	register(&m.aggDeltas, "gpunion_agg_deltas_total",
		"Rolled-up per-node liveness deltas ingested from aggregated batches")
	register(&m.aggPassthru, "gpunion_agg_passthrough_total",
		"State-changing beats forwarded verbatim inside aggregated batches")
	register(&m.poolHits, "gpunion_sched_pool_hits_total",
		"Scheduling cycles served from the cached candidate set")
	register(&m.poolMisses, "gpunion_sched_pool_misses_total",
		"Scheduling cycles that rebuilt the candidate set")
	register(&m.ckptCorrupt, "gpunion_checkpoint_corruptions_total",
		"Checkpoint frames that failed CRC verification")
	register(&m.ckptFallbacks, "gpunion_checkpoint_fallbacks_total",
		"Restores that fell back past a damaged checkpoint generation")
	gauge(&m.shipLagRecords, "gpunion_wal_ship_lag_records",
		"Records the standby has not yet applied (leader LSN minus follower LSN)")
	gauge(&m.shipLagBytes, "gpunion_wal_ship_lag_bytes",
		"On-disk WAL bytes the shipper cursor has not yet consumed")
	gauge(&m.leaderEpoch, "gpunion_leader_epoch",
		"Fencing epoch of this replica's current (or last) leadership term")
	gauge(&m.leading, "gpunion_leading",
		"1 while this replica believes it holds the lease, else 0")
	if err != nil {
		return nil, err
	}
	m.batchFill, err = reg.Histogram("gpunion_sched_batch_fill",
		"Pending requests drained per scheduling cycle",
		[]float64{1, 2, 4, 8, 16, 32, 64}, nil)
	if err != nil {
		return nil, err
	}
	m.beatBatch, err = reg.Histogram("gpunion_heartbeat_coalesce_batch_size",
		"No-op heartbeats committed per coalesced flush",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}, nil)
	if err != nil {
		return nil, err
	}
	for _, st := range jobStates {
		g, gerr := reg.Gauge("gpunion_jobs",
			"Jobs currently in each lifecycle state",
			map[string]string{"state": string(st)})
		if gerr != nil {
			return nil, gerr
		}
		m.jobGauges[st] = g
	}
	return m, nil
}

// observeMutation counts one committed store mutation under its
// (type, shard) labels. Fed by the store's mutation hook, so it runs
// after the shard lock drops — same delivery guarantees as the
// scheduler pool's feed.
func (m *coordMetrics) observeMutation(typ db.MutationType, shard int) {
	key := string(typ) + "|" + strconv.Itoa(shard)
	m.mu.Lock()
	ctr := m.mutations[key]
	m.mu.Unlock()
	if ctr == nil {
		c, err := m.reg.Counter("gpunion_store_mutations_total",
			"Committed store mutations by type and shard",
			map[string]string{"type": string(typ), "shard": strconv.Itoa(shard)})
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.mutations[key] == nil {
			m.mutations[key] = c
		}
		ctr = m.mutations[key]
		m.mu.Unlock()
	}
	ctr.Inc()
}

// observeHealthEvent counts one ingested health event under its
// (kind, severity) labels.
func (m *coordMetrics) observeHealthEvent(kind, severity string) {
	key := kind + "|" + severity
	m.mu.Lock()
	ctr := m.healthEvents[key]
	m.mu.Unlock()
	if ctr == nil {
		c, err := m.reg.Counter("gpunion_health_events_total",
			"Health events ingested from agents by kind and severity",
			map[string]string{"kind": kind, "severity": severity})
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.healthEvents[key] == nil {
			m.healthEvents[key] = c
		}
		ctr = m.healthEvents[key]
		m.mu.Unlock()
	}
	ctr.Inc()
}

// setNodeHealth exports one node's current health score.
func (m *coordMetrics) setNodeHealth(nodeID string, score float64) {
	m.mu.Lock()
	g := m.nodeHealth[nodeID]
	m.mu.Unlock()
	if g == nil {
		ng, err := m.reg.Gauge("gpunion_node_health",
			"Per-node health score in (0, 1]; 1 is fully healthy",
			map[string]string{"node": nodeID})
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.nodeHealth[nodeID] == nil {
			m.nodeHealth[nodeID] = ng
		}
		g = m.nodeHealth[nodeID]
		m.mu.Unlock()
	}
	g.Set(score)
}

// refresh recomputes every derived gauge and rolls the polled lifetime
// totals forward. The coordinator calls it on each metrics scrape, so
// idle systems pay nothing and scrapes see current state.
func (c *Coordinator) refreshGauges() {
	m := c.met
	for _, st := range jobStates {
		m.jobGauges[st].Set(float64(c.db.CountJobsInState(st)))
	}
	m.leaderEpoch.Set(float64(c.Epoch()))
	if c.Leading() {
		m.leading.Set(1)
	} else {
		m.leading.Set(0)
	}
	ps := c.pool.Stats()
	m.mu.Lock()
	dh, dm := ps.Hits-m.lastPoolHits, ps.Misses-m.lastPoolMisses
	m.lastPoolHits, m.lastPoolMisses = ps.Hits, ps.Misses
	var dc, df int
	if c.ckpts != nil {
		cor, fb := c.ckpts.CorruptionsDetected(), c.ckpts.FallbacksUsed()
		dc, df = cor-m.lastCorrupt, fb-m.lastFallbacks
		m.lastCorrupt, m.lastFallbacks = cor, fb
	}
	m.mu.Unlock()
	m.poolHits.Add(float64(dh))
	m.poolMisses.Add(float64(dm))
	m.ckptCorrupt.Add(float64(dc))
	m.ckptFallbacks.Add(float64(df))
}

// MetricsSnapshot refreshes the derived gauges and renders the full
// registry in the Prometheus text exposition format — the same output
// GET /v1/metrics serves.
func (c *Coordinator) MetricsSnapshot() (string, error) {
	c.refreshGauges()
	var sb strings.Builder
	if err := c.metrics.WriteText(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// ObserveReplication publishes the log-shipping backlog: how many
// records the standby still has to apply and how many on-disk WAL
// bytes the shipper has not consumed. The replication driver (the
// harness, or the daemon's shipping loop) owns both numbers — the
// coordinator only exports them.
func (c *Coordinator) ObserveReplication(lagRecords uint64, lagBytes int64) {
	c.met.shipLagRecords.Set(float64(lagRecords))
	c.met.shipLagBytes.Set(float64(lagBytes))
}
