package core

import (
	"errors"
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
)

// --- Lease arbiter ---

func TestLeaseSingleHolderAndEpochMonotonic(t *testing.T) {
	clock := simclock.NewSim(t0)
	l := NewLease(clock, 10*time.Second, 2*time.Second)

	e1, _, err := l.Acquire("a")
	if err != nil || e1 != 1 {
		t.Fatalf("first acquire: epoch=%d err=%v", e1, err)
	}
	if _, _, err := l.Acquire("b"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("contender acquired a held lease: %v", err)
	}
	// Re-acquire by the same holder is allowed but burns a new epoch.
	e2, _, err := l.Acquire("a")
	if err != nil || e2 != e1+1 {
		t.Fatalf("re-acquire: epoch=%d err=%v", e2, err)
	}
}

func TestLeaseRegrantWaitsForSkewTolerance(t *testing.T) {
	clock := simclock.NewSim(t0)
	l := NewLease(clock, 10*time.Second, 2*time.Second)
	if _, _, err := l.Acquire("a"); err != nil {
		t.Fatal(err)
	}
	// Expired but inside the skew grace: still held.
	clock.Advance(11 * time.Second)
	if _, _, err := l.Acquire("b"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("regrant inside skew tolerance: %v", err)
	}
	clock.Advance(1 * time.Second) // now at expiry + skewTolerance
	e, _, err := l.Acquire("b")
	if err != nil || e != 2 {
		t.Fatalf("regrant after grace: epoch=%d err=%v", e, err)
	}
	// The old holder's renew must now fail — its term is over.
	if _, err := l.Renew("a", 1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale holder renewed: %v", err)
	}
}

func TestLeaseRenewExtendsAndLapsedRenewFails(t *testing.T) {
	clock := simclock.NewSim(t0)
	l := NewLease(clock, 10*time.Second, 2*time.Second)
	e, _, err := l.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	until, err := l.Renew("a", e)
	if err != nil || !until.Equal(clock.Now().Add(10*time.Second)) {
		t.Fatalf("renew: until=%v err=%v", until, err)
	}
	// Let it fully lapse (past expiry + skew tolerance): renewal must
	// not silently resume the old term.
	clock.Advance(13 * time.Second)
	if _, err := l.Renew("a", e); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("lapsed renew succeeded: %v", err)
	}
}

// --- Coordinator in lease mode ---

// leaseRig is a coordinator in replicated mode against an in-process
// arbiter sharing its clock.
type leaseRig struct {
	clock *simclock.Sim
	lease *Lease
	coord *Coordinator
	bus   *eventbus.Bus
}

func newLeaseRig(t *testing.T, replica string) *leaseRig {
	t.Helper()
	clock := simclock.NewSim(t0)
	lease := NewLease(clock, 30*time.Second, 5*time.Second)
	bus := eventbus.New(256)
	coord, err := New(Config{
		HeartbeatInterval: 10 * time.Second,
		Lease:             lease,
		ReplicaID:         replica,
	}, clock, db.New(0), checkpoint.NewStore(storage.NewMemStore(0)), bus)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	return &leaseRig{clock: clock, lease: lease, coord: coord, bus: bus}
}

func (r *leaseRig) register(t *testing.T, id string) {
	t.Helper()
	if _, err := r.coord.Register(api.RegisterRequest{
		MachineID: id, Addr: "fake://" + id,
		GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
			MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
	}, newFakeAgent("gpu0")); err != nil {
		t.Fatal(err)
	}
}

func TestStandbyRejectsMutationsWithLeaderHint(t *testing.T) {
	r := newLeaseRig(t, "coord-b")
	// Another replica holds the lease; this one never led.
	if _, _, err := r.lease.Acquire("coord-a"); err != nil {
		t.Fatal(err)
	}
	_, err := r.coord.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12", GPUMemMiB: 8192,
	})
	var nl api.ErrNotLeader
	if !errors.As(err, &nl) {
		t.Fatalf("standby accepted a submit: %v", err)
	}
	if nl.LeaderHint != "coord-a" || nl.Epoch != 1 {
		t.Fatalf("redirect hint = %+v", nl)
	}
	// Reads stay available on standbys.
	if got := r.coord.Jobs(); len(got) != 0 {
		t.Fatalf("jobs on standby = %v", got)
	}
}

func TestTryLeadAdmitsMutationsAndStampsEpoch(t *testing.T) {
	r := newLeaseRig(t, "coord-a")
	if !r.coord.TryLead() {
		t.Fatal("TryLead failed on a free lease")
	}
	if !r.coord.Leading() || r.coord.Epoch() != 1 {
		t.Fatalf("leading=%v epoch=%d", r.coord.Leading(), r.coord.Epoch())
	}
	resp, err := r.coord.Register(api.RegisterRequest{
		MachineID: "n1", Addr: "fake://n1",
		GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
			MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
	}, newFakeAgent("gpu0"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.LeaderEpoch != 1 || resp.ProtocolVersion != api.ProtocolV1 {
		t.Fatalf("register response not stamped: %+v", resp)
	}
	if _, err := r.coord.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12", GPUMemMiB: 8192,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLeaderRenewsAcrossExpiry(t *testing.T) {
	r := newLeaseRig(t, "coord-a")
	if !r.coord.TryLead() {
		t.Fatal("TryLead failed")
	}
	// Well past the original 30 s grant: the renewal loop must have
	// kept the lease alive on the shared clock.
	r.clock.Advance(5 * time.Minute)
	if !r.coord.Leading() {
		t.Fatal("leader lapsed despite reachable arbiter")
	}
	holder, _ := r.lease.Leader()
	if holder != "coord-a" {
		t.Fatalf("arbiter holder = %q", holder)
	}
}

// cutLease simulates a partition between a replica and the arbiter:
// every call fails with a transport error.
type cutLease struct {
	inner LeaseClient
	cut   bool
}

func (c *cutLease) Acquire(h string) (uint64, time.Time, error) {
	if c.cut {
		return 0, time.Time{}, errors.New("cut: arbiter unreachable")
	}
	return c.inner.Acquire(h)
}

func (c *cutLease) Renew(h string, e uint64) (time.Time, error) {
	if c.cut {
		return time.Time{}, errors.New("cut: arbiter unreachable")
	}
	return c.inner.Renew(h, e)
}

func (c *cutLease) Leader() (string, uint64) {
	if c.cut {
		return "", 0
	}
	return c.inner.Leader()
}

func TestPartitionedLeaderSelfFencesBeforeSuccessor(t *testing.T) {
	clock := simclock.NewSim(t0)
	arbiter := NewLease(clock, 30*time.Second, 5*time.Second)
	cut := &cutLease{inner: arbiter}
	bus := eventbus.New(256)
	coord, err := New(Config{
		HeartbeatInterval: 10 * time.Second, Lease: cut, ReplicaID: "coord-a",
	}, clock, db.New(0), checkpoint.NewStore(storage.NewMemStore(0)), bus)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	if !coord.TryLead() {
		t.Fatal("TryLead failed")
	}
	cut.cut = true
	// Advance to just before the cached grant expires: still leading
	// (transport failures alone do not demote).
	clock.Advance(29 * time.Second)
	if !coord.Leading() {
		t.Fatal("leader dropped before its cached grant expired")
	}
	// Past the grant: the replica self-fences — and only after the
	// extra skew tolerance can a standby take over. No epoch overlap.
	clock.Advance(2 * time.Second)
	if coord.Leading() {
		t.Fatal("zombie kept leading past its cached grant")
	}
	if _, _, err := arbiter.Acquire("coord-b"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("successor elected inside skew grace: %v", err)
	}
	clock.Advance(5 * time.Second)
	e, _, err := arbiter.Acquire("coord-b")
	if err != nil || e != 2 {
		t.Fatalf("successor after grace: epoch=%d err=%v", e, err)
	}
}

func TestHigherEpochRequestDeposesStaleLeader(t *testing.T) {
	r := newLeaseRig(t, "coord-a")
	if !r.coord.TryLead() {
		t.Fatal("TryLead failed")
	}
	// A request stamped with a future epoch proves a newer leader
	// exists: the replica must step down before answering.
	_, err := r.coord.SubmitJob(api.SubmitJobRequest{
		Envelope: api.Envelope{LeaderEpoch: 7},
		User:     "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12", GPUMemMiB: 8192,
	})
	var nl api.ErrNotLeader
	if !errors.As(err, &nl) {
		t.Fatalf("stale leader served a higher-epoch request: %v", err)
	}
	if r.coord.Leading() {
		t.Fatal("replica still leading after seeing a higher epoch")
	}
	deposed := r.bus.HistoryByType(eventbus.LeaderDeposed)
	if len(deposed) != 1 {
		t.Fatalf("deposed events = %d", len(deposed))
	}
}

func TestRegisterNegotiatesProtocolVersion(t *testing.T) {
	r := newLeaseRig(t, "coord-a")
	if !r.coord.TryLead() {
		t.Fatal("TryLead failed")
	}
	// Legacy client (no version field) negotiates down to v1.
	resp, err := r.coord.Register(api.RegisterRequest{
		MachineID: "n1", Addr: "fake://n1",
		GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
			MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
	}, newFakeAgent("gpu0"))
	if err != nil || resp.ProtocolVersion != api.ProtocolV1 {
		t.Fatalf("legacy negotiation: v=%d err=%v", resp.ProtocolVersion, err)
	}
	// Current client gets the current version.
	resp, err = r.coord.Register(api.RegisterRequest{
		Envelope:  api.Envelope{ProtocolVersion: api.ProtocolVersion},
		MachineID: "n2", Addr: "fake://n2",
		GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
			MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
	}, newFakeAgent("gpu0"))
	if err != nil || resp.ProtocolVersion != api.ProtocolVersion {
		t.Fatalf("current negotiation: v=%d err=%v", resp.ProtocolVersion, err)
	}
	// A future version the coordinator does not speak is refused.
	_, err = r.coord.Register(api.RegisterRequest{
		Envelope:  api.Envelope{ProtocolVersion: api.ProtocolVersion + 1},
		MachineID: "n3", Addr: "fake://n3",
		GPUs: []db.GPUInfo{{DeviceID: "gpu0", Model: "RTX 3090",
			MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6}},
	}, newFakeAgent("gpu0"))
	var vm api.ErrVersionMismatch
	if !errors.As(err, &vm) {
		t.Fatalf("future version admitted: %v", err)
	}
}
